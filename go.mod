module warping

go 1.22
