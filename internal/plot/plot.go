// Package plot renders small ASCII line charts for the experiment CLI: the
// paper's figures are line plots, and a terminal sketch of each curve makes
// the shape claims (crossovers, growth, who wins) visible at a glance
// without leaving the shell.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Values []float64
	// Marker is the character used for this curve (assigned from a
	// default cycle when zero).
	Marker byte
}

// Options controls chart geometry.
type Options struct {
	// Width and Height of the plot area in characters (defaults 60x16).
	Width, Height int
	// Title is printed above the chart.
	Title string
	// XLabels are printed under the first and last column when given.
	XLabels [2]string
}

var defaultMarkers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the series into a text chart. All series must have the same
// number of points (>= 1); the x axis is the point index, evenly spaced.
func Render(series []Series, opts Options) string {
	if len(series) == 0 {
		return ""
	}
	n := len(series[0].Values)
	for _, s := range series {
		if len(s.Values) != n {
			panic("plot: series length mismatch")
		}
	}
	if n == 0 {
		return ""
	}
	if opts.Width == 0 {
		opts.Width = 60
	}
	if opts.Height == 0 {
		opts.Height = 16
	}

	// Bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i, v := range s.Values {
			col := 0
			if n > 1 {
				col = i * (opts.Width - 1) / (n - 1)
			}
			row := int((hi - v) / (hi - lo) * float64(opts.Height-1))
			if row < 0 {
				row = 0
			}
			if row >= opts.Height {
				row = opts.Height - 1
			}
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		b.WriteString(opts.Title)
		b.WriteByte('\n')
	}
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.3g |%s|\n", hi, row)
		case opts.Height - 1:
			fmt.Fprintf(&b, "%10.3g |%s|\n", lo, row)
		default:
			fmt.Fprintf(&b, "%10s |%s|\n", "", row)
		}
	}
	if opts.XLabels[0] != "" || opts.XLabels[1] != "" {
		pad := opts.Width - len(opts.XLabels[0]) - len(opts.XLabels[1])
		if pad < 1 {
			pad = 1
		}
		fmt.Fprintf(&b, "%10s  %s%s%s\n", "", opts.XLabels[0], strings.Repeat(" ", pad), opts.XLabels[1])
	}
	// Legend.
	var legend []string
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "   "))
	return b.String()
}
