package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render([]Series{
		{Name: "up", Values: []float64{0, 1, 2, 3}},
		{Name: "down", Values: []float64{3, 2, 1, 0}},
	}, Options{Title: "trends", Width: 20, Height: 5, XLabels: [2]string{"0.0", "0.3"}})
	if !strings.Contains(out, "trends") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "0.0") || !strings.Contains(out, "0.3") {
		t.Error("missing x labels")
	}
	// Axis labels for min and max.
	if !strings.Contains(out, "3") || !strings.Contains(out, "0") {
		t.Error("missing y bounds")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+5+1+1 { // title + rows + xlabels + legend
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
}

func TestRenderMarkersLandCorrectly(t *testing.T) {
	// A single rising series: first point bottom-left, last top-right.
	out := Render([]Series{{Name: "s", Values: []float64{0, 10}}}, Options{Width: 10, Height: 4})
	lines := strings.Split(out, "\n")
	top := lines[0]
	bottom := lines[3]
	if top[len(top)-2] != '*' {
		t.Errorf("top-right marker missing: %q", top)
	}
	if !strings.Contains(bottom, "|*") {
		t.Errorf("bottom-left marker missing: %q", bottom)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Render([]Series{{Name: "flat", Values: []float64{5, 5, 5}}}, Options{})
	if out == "" || !strings.Contains(out, "flat") {
		t.Error("constant series render failed")
	}
}

func TestRenderEmpty(t *testing.T) {
	if Render(nil, Options{}) != "" {
		t.Error("nil series should render empty")
	}
	if Render([]Series{{Name: "e", Values: nil}}, Options{}) != "" {
		t.Error("empty values should render empty")
	}
}

func TestRenderMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Render([]Series{
		{Name: "a", Values: []float64{1}},
		{Name: "b", Values: []float64{1, 2}},
	}, Options{})
}

func TestRenderSinglePoint(t *testing.T) {
	out := Render([]Series{{Name: "pt", Values: []float64{7}}}, Options{Width: 8, Height: 3})
	if !strings.Contains(out, "*") {
		t.Errorf("single point missing:\n%s", out)
	}
}
