package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"warping/internal/pager"
)

func testSpace(t *testing.T, pageSize, poolPages int) *pager.Space {
	t.Helper()
	sp, err := pager.Open(pager.Config{PageSize: pageSize, PoolPages: poolPages, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.Close() })
	return sp
}

func randItems(rng *rand.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 10
		}
		items[i] = Item{ID: int64(i + 1), Slot: int32(i), Point: p}
	}
	return items
}

func idSet(items []Item) map[int64]int32 {
	m := make(map[int64]int32, len(items))
	for _, it := range items {
		m[it.ID] = it.Slot
	}
	return m
}

// buildPaged bulk-loads items at page capacity and serializes to sp.
func buildPaged(t *testing.T, sp *pager.Space, dim int, items []Item) (*Tree, *PagedTree) {
	t.Helper()
	capacity := PageCapacity(dim, sp.PageSize())
	ram := BulkLoad(dim, Config{MaxEntries: capacity}, items)
	pt, err := WritePaged(ram, sp)
	if err != nil {
		t.Fatal(err)
	}
	return ram, pt
}

// TestPagedRangeMatchesRAM compares paged range search against the in-RAM
// tree under a pool far smaller than the tree.
func TestPagedRangeMatchesRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim, n = 6, 3000
	sp := testSpace(t, 512, 8)
	items := randItems(rng, n, dim)
	ram, pt := buildPaged(t, sp, dim, items)

	for qi := 0; qi < 50; qi++ {
		q := PointRect(randItems(rng, 1, dim)[0].Point)
		radius := 2 + rng.Float64()*15
		var ramSt, pagedSt Stats
		wantItems := ram.RangeSearchRectStats(q, radius, &ramSt)
		gotItems, err := pt.RangeSearchInto(q, radius, nil, &pagedSt)
		if err != nil {
			t.Fatal(err)
		}
		want, got := idSet(wantItems), idSet(gotItems)
		if len(want) != len(got) {
			t.Fatalf("query %d: %d results RAM, %d paged", qi, len(want), len(got))
		}
		for id, slot := range want {
			if gs, ok := got[id]; !ok || gs != slot {
				t.Fatalf("query %d: id %d slot %d missing or wrong (got %d)", qi, id, slot, gs)
			}
		}
	}
	if st := sp.Stats(); st.Misses == 0 {
		t.Fatalf("expected pool misses with 8-frame pool over %d items: %+v", n, st)
	}
}

// TestPagedNNMatchesRAM compares the paged NN iterator stream against the
// RAM iterator: same distances in the same order (ties may reorder equal
// distances; compare sorted (dist,id) prefixes).
func TestPagedNNMatchesRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim, n, k = 5, 2000, 64
	sp := testSpace(t, 512, 8)
	items := randItems(rng, n, dim)
	ram, pt := buildPaged(t, sp, dim, items)

	for qi := 0; qi < 20; qi++ {
		q := PointRect(randItems(rng, 1, dim)[0].Point)
		ramIt := ram.NNIter(q, nil)
		pagedIt := pt.NNIter(q, nil)
		type nb struct {
			d  float64
			id int64
		}
		var ramN, pagedN []nb
		for len(ramN) < k {
			x, ok := ramIt.Next()
			if !ok {
				break
			}
			ramN = append(ramN, nb{x.Dist, x.Item.ID})
		}
		ramIt.Close()
		for len(pagedN) < k {
			x, ok := pagedIt.Next()
			if !ok {
				break
			}
			pagedN = append(pagedN, nb{x.Dist, x.Item.ID})
		}
		if err := pagedIt.Err(); err != nil {
			t.Fatal(err)
		}
		if len(ramN) != len(pagedN) {
			t.Fatalf("query %d: %d RAM vs %d paged", qi, len(ramN), len(pagedN))
		}
		less := func(s []nb) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].d != s[j].d {
					return s[i].d < s[j].d
				}
				return s[i].id < s[j].id
			}
		}
		sort.Slice(ramN, less(ramN))
		sort.Slice(pagedN, less(pagedN))
		for i := range ramN {
			if ramN[i] != pagedN[i] {
				t.Fatalf("query %d pos %d: RAM %+v paged %+v", qi, i, ramN[i], pagedN[i])
			}
		}
	}
}

// TestPagedVisitLeaves proves serialization kept every item exactly once.
func TestPagedVisitLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const dim, n = 4, 1500
	sp := testSpace(t, 512, 8)
	items := randItems(rng, n, dim)
	_, pt := buildPaged(t, sp, dim, items)
	seen := make(map[int64]int32)
	if err := pt.VisitLeaves(func(it Item) { seen[it.ID] = it.Slot }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("visited %d items, want %d", len(seen), n)
	}
	for _, it := range items {
		if s, ok := seen[it.ID]; !ok || s != it.Slot {
			t.Fatalf("item %d slot %d: got %d ok=%v", it.ID, it.Slot, s, ok)
		}
	}
}

// TestPagedEmptyAndTiny covers the degenerate shapes: empty tree and a
// single root leaf.
func TestPagedEmptyAndTiny(t *testing.T) {
	sp := testSpace(t, 512, 8)
	const dim = 3
	_, pt := buildPaged(t, sp, dim, nil)
	out, err := pt.RangeSearchInto(PointRect([]float64{0, 0, 0}), 100, nil, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty tree range: %v %v", out, err)
	}
	it := pt.NNIter(PointRect([]float64{0, 0, 0}), nil)
	if _, ok := it.Next(); ok {
		t.Fatal("empty tree yielded a neighbor")
	}

	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 3, dim)
	_, tiny := buildPaged(t, sp, dim, items)
	if tiny.Height() != 1 {
		t.Fatalf("3-item tree height %d", tiny.Height())
	}
	out, err = tiny.RangeSearchInto(PointRect(items[0].Point), 0.001, nil, nil)
	if err != nil || len(out) != 1 || out[0].ID != items[0].ID {
		t.Fatalf("tiny range: %v %v", out, err)
	}
	nb, ok := tiny.NNIter(PointRect(items[1].Point), nil).Next()
	if !ok || nb.Item.ID != items[1].ID || nb.Dist != 0 {
		t.Fatalf("tiny NN: %+v %v", nb, ok)
	}
}

// TestPagedAccounting checks logical vs real accounting: a warm pool large
// enough for the whole tree serves repeats with zero misses while logical
// node accesses keep counting.
func TestPagedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const dim, n = 4, 800
	sp := testSpace(t, 512, 256) // whole tree fits the pool
	items := randItems(rng, n, dim)
	_, pt := buildPaged(t, sp, dim, items)
	q := PointRect(items[0].Point)

	var cold Stats
	if _, err := pt.RangeSearchInto(q, 5, nil, &cold); err != nil {
		t.Fatal(err)
	}
	// Leaves were resident from the build (PinNew); a second identical
	// query must be all hits either way.
	var warm Stats
	if _, err := pt.RangeSearchInto(q, 5, nil, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.PageMisses != 0 {
		t.Fatalf("warm query missed %d pages", warm.PageMisses)
	}
	if warm.NodeAccesses == 0 || warm.NodeAccesses != cold.NodeAccesses {
		t.Fatalf("logical accounting diverged: cold %d warm %d", cold.NodeAccesses, warm.NodeAccesses)
	}

	// After a pool reset every leaf visit is a real miss.
	if err := sp.Pool().Reset(); err != nil {
		t.Fatal(err)
	}
	var reset Stats
	if _, err := pt.RangeSearchInto(q, 5, nil, &reset); err != nil {
		t.Fatal(err)
	}
	if reset.PageMisses == 0 {
		t.Fatal("cold query after reset reported zero page misses")
	}
	if reset.PageMisses > reset.NodeAccesses {
		t.Fatalf("misses %d exceed node accesses %d", reset.PageMisses, reset.NodeAccesses)
	}
}

// TestPagedClose removes the file and its pool pages.
func TestPagedClose(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sp := testSpace(t, 512, 16)
	_, pt := buildPaged(t, sp, 4, randItems(rng, 500, 4))
	if err := pt.Close(sp); err != nil {
		t.Fatal(err)
	}
	if st := sp.Stats(); st.Resident != 0 {
		t.Fatalf("resident pages after close: %+v", st)
	}
}
