// Package rtree implements an R*-tree (Beckmann et al., SIGMOD 1990) over
// low-dimensional points, the multidimensional index structure the paper
// uses (via LibGist) to index reduced-dimension feature vectors.
//
// The tree supports:
//
//   - point insertion with the R* forced-reinsert and split heuristics,
//   - range search around a point or around an axis-aligned box (the shape
//     of a feature-space envelope query),
//   - incremental nearest-neighbor traversal by MINDIST, used by the
//     multi-step kNN algorithm,
//   - page-access accounting: every node visited during a search counts as
//     one page access, the implementation-bias-free IO measure of the
//     paper's Figures 9 and 10.
package rtree

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle (MBR). Lo and Hi have equal length and
// Lo[i] <= Hi[i] for all i. A point is a Rect with Lo == Hi.
type Rect struct {
	Lo, Hi []float64
}

// PointRect returns the degenerate rectangle covering a single point. The
// point slice is shared, not copied.
func PointRect(p []float64) Rect {
	return Rect{Lo: p, Hi: p}
}

// NewRect validates and returns a rectangle.
func NewRect(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("rtree: rect dims %d vs %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("rtree: rect lo[%d]=%v > hi[%d]=%v", i, lo[i], i, hi[i])
		}
	}
	return Rect{Lo: lo, Hi: hi}, nil
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone deep-copies the rectangle.
func (r Rect) Clone() Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return Rect{Lo: lo, Hi: hi}
}

// Area returns the volume of the rectangle.
func (r Rect) Area() float64 {
	area := 1.0
	for i := range r.Lo {
		area *= r.Hi[i] - r.Lo[i]
	}
	return area
}

// Margin returns the sum of edge lengths (the R* "margin" criterion).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Center returns the rectangle center.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Lo))
	for i := range c {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	for i := range lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// unionInPlace grows r to cover s, reusing r's slices.
func (r *Rect) unionInPlace(s Rect) {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] {
			r.Lo[i] = s.Lo[i]
		}
		if s.Hi[i] > r.Hi[i] {
			r.Hi[i] = s.Hi[i]
		}
	}
}

// Intersects reports whether the rectangles overlap (closed boxes).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Lo[i] > s.Hi[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// OverlapArea returns the volume of the intersection (0 if disjoint).
func (r Rect) OverlapArea(s Rect) float64 {
	area := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if hi <= lo {
			return 0
		}
		area *= hi - lo
	}
	return area
}

// Contains reports whether point p lies inside the rectangle.
func (r Rect) Contains(p []float64) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Enlargement returns the area increase needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// SquaredMinDist returns MINDIST^2: the squared Euclidean distance from
// point p to the closest point of the rectangle (0 if inside).
func (r Rect) SquaredMinDist(p []float64) float64 {
	var sum float64
	for i, v := range p {
		switch {
		case v < r.Lo[i]:
			d := r.Lo[i] - v
			sum += d * d
		case v > r.Hi[i]:
			d := v - r.Hi[i]
			sum += d * d
		}
	}
	return sum
}

// squaredMinDistLeq reports whether SquaredMinDist(p) <= r2, abandoning the
// accumulation as soon as it exceeds r2. Range searches test every item of
// every visited leaf against the query box, so in high dimensions most
// points fail after the first coordinate or two; the early exit makes the
// leaf scan proportional to how close a point is rather than to dim.
func (r Rect) squaredMinDistLeq(p []float64, r2 float64) bool {
	lo, hi := r.Lo[:len(p)], r.Hi[:len(p)] // bounds-check elimination
	var sum float64
	for i, v := range p {
		switch {
		case v < lo[i]:
			d := lo[i] - v
			sum += d * d
		case v > hi[i]:
			d := v - hi[i]
			sum += d * d
		default:
			continue
		}
		if sum > r2 {
			return false
		}
	}
	return true
}

// SquaredMinDistRect returns the squared minimum distance between two
// rectangles (0 if they intersect). With a degenerate query rectangle this
// reduces to SquaredMinDist; with a feature-envelope box it is exactly the
// pruning distance needed for DTW range queries.
func (r Rect) SquaredMinDistRect(s Rect) float64 {
	var sum float64
	for i := range r.Lo {
		switch {
		case s.Hi[i] < r.Lo[i]:
			d := r.Lo[i] - s.Hi[i]
			sum += d * d
		case s.Lo[i] > r.Hi[i]:
			d := s.Lo[i] - r.Hi[i]
			sum += d * d
		}
	}
	return sum
}
