package rtree

import (
	"container/heap"
	"fmt"
	"math"
)

// RangeSearch returns the IDs of all items within Euclidean distance radius
// of the query point.
func (t *Tree) RangeSearch(point []float64, radius float64) []Item {
	return t.RangeSearchRect(PointRect(point), radius)
}

// RangeSearchRect is RangeSearchRectStats without cost accounting.
func (t *Tree) RangeSearchRect(q Rect, radius float64) []Item {
	return t.RangeSearchRectStats(q, radius, nil)
}

// RangeSearchRectStats returns all items whose Euclidean distance to the
// query rectangle (e.g. a feature-space envelope box) is at most radius. A
// node is visited only if MINDIST(node MBR, query rect) <= radius; every
// visited node counts as one page access, accumulated into st (which may be
// nil). Searches never mutate the tree, so any number may run concurrently
// as long as each query uses its own Stats.
func (t *Tree) RangeSearchRectStats(q Rect, radius float64, st *Stats) []Item {
	if q.Dim() != t.dim {
		panic("rtree: query dimension mismatch")
	}
	if st == nil {
		st = &Stats{}
	}
	r2 := radius * radius
	var out []Item
	var walk func(n *node)
	walk = func(n *node) {
		st.NodeAccesses++
		if n.leaf {
			for i, it := range n.items {
				if q.SquaredMinDist(n.rects[i].Lo) <= r2 {
					out = append(out, it)
					st.LeafHits++
				}
			}
			return
		}
		for i, child := range n.children {
			if n.rects[i].SquaredMinDistRect(q) <= r2 {
				walk(child)
			}
		}
	}
	walk(t.root)
	return out
}

// Neighbor is one result of a nearest-neighbor search.
type Neighbor struct {
	Item Item
	// Dist is the Euclidean distance from the query (point or rect) to
	// the item's point.
	Dist float64
}

// KNN returns the k nearest items to the query point by Euclidean distance,
// closest first, using best-first MINDIST traversal.
func (t *Tree) KNN(point []float64, k int) []Neighbor {
	return t.KNNRect(PointRect(point), k)
}

// KNNRect returns the k items nearest to the query rectangle (distance 0
// for points inside the rect).
func (t *Tree) KNNRect(q Rect, k int) []Neighbor {
	var out []Neighbor
	t.IncrementalNN(q, func(nb Neighbor) bool {
		out = append(out, nb)
		return len(out) < k
	})
	return out
}

// IncrementalNN is IncrementalNNStats without cost accounting.
func (t *Tree) IncrementalNN(q Rect, yield func(Neighbor) bool) {
	t.IncrementalNNStats(q, yield, nil)
}

// IncrementalNNStats enumerates items in ascending order of distance to the
// query rectangle, invoking yield for each; traversal stops when yield
// returns false. This is the incremental ranking primitive of the optimal
// multi-step kNN algorithm (Seidl & Kriegel): the caller can keep pulling
// candidates until the feature-space distance exceeds its current exact
// kth-best distance. Node and leaf accesses accumulate into st (which may be
// nil); the tree itself is never mutated, so concurrent searches are safe.
func (t *Tree) IncrementalNNStats(q Rect, yield func(Neighbor) bool, st *Stats) {
	if q.Dim() != t.dim {
		panic("rtree: query dimension mismatch")
	}
	if st == nil {
		st = &Stats{}
	}
	pq := &nnHeap{}
	heap.Init(pq)
	heap.Push(pq, nnEntry{node: t.root, dist: math.Sqrt(t.root.mbrOrZero().SquaredMinDistRect(q))})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nnEntry)
		if e.node != nil {
			n := e.node
			st.NodeAccesses++
			if n.leaf {
				for i, it := range n.items {
					d := math.Sqrt(q.SquaredMinDist(n.rects[i].Lo))
					heap.Push(pq, nnEntry{item: it, hasItem: true, dist: d})
				}
			} else {
				for i, child := range n.children {
					d := math.Sqrt(n.rects[i].SquaredMinDistRect(q))
					heap.Push(pq, nnEntry{node: child, dist: d})
				}
			}
			continue
		}
		st.LeafHits++
		if !yield(Neighbor{Item: e.item, Dist: e.dist}) {
			return
		}
	}
}

// mbrOrZero returns the node MBR, or a degenerate rect when empty.
func (n *node) mbrOrZero() Rect {
	if len(n.rects) == 0 {
		return Rect{Lo: []float64{}, Hi: []float64{}}
	}
	return n.mbr()
}

type nnEntry struct {
	node    *node
	item    Item
	hasItem bool
	dist    float64
}

type nnHeap []nnEntry

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	// Prefer items over nodes at equal distance so results surface first.
	return h[i].hasItem && !h[j].hasItem
}
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Visit walks every item in the tree (no stats impact), for tests and
// linear-scan baselines.
func (t *Tree) Visit(fn func(Item)) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for _, it := range n.items {
				fn(it)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// CheckInvariants validates structural invariants (for tests): MBR
// containment, entry counts, uniform leaf depth. It returns the first
// violation found, or nil.
func (t *Tree) CheckInvariants() error {
	return t.check(t.root, nil, true)
}

func (t *Tree) check(n *node, parentRect *Rect, isRoot bool) error {
	count := len(n.rects)
	if n.leaf {
		if len(n.items) != count {
			return errf("leaf has %d rects but %d items", count, len(n.items))
		}
		if n.level != 0 {
			return errf("leaf at level %d", n.level)
		}
	} else {
		if len(n.children) != count {
			return errf("internal node has %d rects but %d children", count, len(n.children))
		}
	}
	if !isRoot {
		if count < t.cfg.MinEntries {
			return errf("underfull node: %d < %d", count, t.cfg.MinEntries)
		}
	}
	if count > t.cfg.MaxEntries {
		return errf("overfull node: %d > %d", count, t.cfg.MaxEntries)
	}
	if parentRect != nil && count > 0 {
		m := n.mbr()
		for i := range m.Lo {
			if m.Lo[i] < parentRect.Lo[i]-1e-9 || m.Hi[i] > parentRect.Hi[i]+1e-9 {
				return errf("child MBR escapes parent rect")
			}
		}
	}
	if !n.leaf {
		for i, c := range n.children {
			if c.level != n.level-1 {
				return errf("child level %d under node level %d", c.level, n.level)
			}
			r := n.rects[i]
			if err := t.check(c, &r, false); err != nil {
				return err
			}
		}
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("rtree: "+format, args...)
}
