package rtree

import (
	"fmt"
	"math"
	"sync"
)

// RangeSearch returns the IDs of all items within Euclidean distance radius
// of the query point.
func (t *Tree) RangeSearch(point []float64, radius float64) []Item {
	return t.RangeSearchRect(PointRect(point), radius)
}

// RangeSearchRect is RangeSearchRectStats without cost accounting.
func (t *Tree) RangeSearchRect(q Rect, radius float64) []Item {
	return t.RangeSearchRectStats(q, radius, nil)
}

// RangeSearchRectStats returns all items whose Euclidean distance to the
// query rectangle (e.g. a feature-space envelope box) is at most radius. A
// node is visited only if MINDIST(node MBR, query rect) <= radius; every
// visited node counts as one page access, accumulated into st (which may be
// nil). Searches never mutate the tree, so any number may run concurrently
// as long as each query uses its own Stats.
func (t *Tree) RangeSearchRectStats(q Rect, radius float64, st *Stats) []Item {
	return t.RangeSearchRectInto(q, radius, nil, st)
}

// RangeSearchRectInto is RangeSearchRectStats appending results to dst
// (which may be nil), so steady-state callers can reuse one candidate
// buffer across queries instead of allocating per call.
func (t *Tree) RangeSearchRectInto(q Rect, radius float64, dst []Item, st *Stats) []Item {
	if q.Dim() != t.dim {
		panic("rtree: query dimension mismatch")
	}
	if st == nil {
		st = &Stats{}
	}
	r2 := radius * radius
	out := dst
	var walk func(n *node)
	walk = func(n *node) {
		st.NodeAccesses++
		if n.leaf {
			for i, it := range n.items {
				if q.squaredMinDistLeq(n.rects[i].Lo, r2) {
					out = append(out, it)
					st.LeafHits++
				}
			}
			return
		}
		for i, child := range n.children {
			if n.rects[i].SquaredMinDistRect(q) <= r2 {
				walk(child)
			}
		}
	}
	walk(t.root)
	return out
}

// Neighbor is one result of a nearest-neighbor search.
type Neighbor struct {
	Item Item
	// Dist is the Euclidean distance from the query (point or rect) to
	// the item's point.
	Dist float64
}

// KNN returns the k nearest items to the query point by Euclidean distance,
// closest first, using best-first MINDIST traversal.
func (t *Tree) KNN(point []float64, k int) []Neighbor {
	return t.KNNRect(PointRect(point), k)
}

// KNNRect returns the k items nearest to the query rectangle (distance 0
// for points inside the rect).
func (t *Tree) KNNRect(q Rect, k int) []Neighbor {
	var out []Neighbor
	t.IncrementalNN(q, func(nb Neighbor) bool {
		out = append(out, nb)
		return len(out) < k
	})
	return out
}

// IncrementalNN is IncrementalNNStats without cost accounting.
func (t *Tree) IncrementalNN(q Rect, yield func(Neighbor) bool) {
	t.IncrementalNNStats(q, yield, nil)
}

// IncrementalNNStats enumerates items in ascending order of distance to the
// query rectangle, invoking yield for each; traversal stops when yield
// returns false. This is the incremental ranking primitive of the optimal
// multi-step kNN algorithm (Seidl & Kriegel): the caller can keep pulling
// candidates until the feature-space distance exceeds its current exact
// kth-best distance. Node and leaf accesses accumulate into st (which may be
// nil); the tree itself is never mutated, so concurrent searches are safe.
func (t *Tree) IncrementalNNStats(q Rect, yield func(Neighbor) bool, st *Stats) {
	it := t.NNIter(q, st)
	defer it.Close()
	for {
		nb, ok := it.Next()
		if !ok {
			return
		}
		if !yield(nb) {
			return
		}
	}
}

// NNIter is the pull-based form of IncrementalNNStats: Next returns
// neighbors in ascending distance order on demand. The pull form lets a
// caller lazily merge several ranked streams (the paged base tree and the
// in-RAM delta tree) without materializing either. Close releases the
// pooled frontier; it is safe to call once, after which Next must not be
// used.
type NNIter struct {
	t  *Tree
	q  Rect
	st *Stats
	pq *nnHeap
}

// NNIter starts an incremental nearest-neighbor traversal. st may be nil.
func (t *Tree) NNIter(q Rect, st *Stats) *NNIter {
	if q.Dim() != t.dim {
		panic("rtree: query dimension mismatch")
	}
	if st == nil {
		st = &Stats{}
	}
	pq := nnHeapPool.Get().(*nnHeap)
	pq.push(nnEntry{node: t.root, dist: math.Sqrt(t.root.mbrOrZero().SquaredMinDistRect(q))})
	return &NNIter{t: t, q: q, st: st, pq: pq}
}

// Next returns the next-nearest item, or ok=false when exhausted.
func (it *NNIter) Next() (Neighbor, bool) {
	pq := it.pq
	for pq.len() > 0 {
		e := pq.pop()
		if e.node != nil {
			n := e.node
			it.st.NodeAccesses++
			if n.leaf {
				for i, item := range n.items {
					d := math.Sqrt(it.q.SquaredMinDist(n.rects[i].Lo))
					pq.push(nnEntry{item: item, hasItem: true, dist: d})
				}
			} else {
				for i, child := range n.children {
					d := math.Sqrt(n.rects[i].SquaredMinDistRect(it.q))
					pq.push(nnEntry{node: child, dist: d})
				}
			}
			continue
		}
		it.st.LeafHits++
		return Neighbor{Item: e.item, Dist: e.dist}, true
	}
	return Neighbor{}, false
}

// Close returns the frontier to the pool.
func (it *NNIter) Close() {
	if it.pq != nil {
		it.pq.reset() // drop Item.Point references before pooling
		nnHeapPool.Put(it.pq)
		it.pq = nil
	}
}

// mbrOrZero returns the node MBR, or a degenerate rect when empty.
func (n *node) mbrOrZero() Rect {
	if len(n.rects) == 0 {
		return Rect{Lo: []float64{}, Hi: []float64{}}
	}
	return n.mbr()
}

type nnEntry struct {
	node    *node
	item    Item
	hasItem bool
	dist    float64
}

// nnLess orders the best-first frontier: nearer first, and items before
// nodes at equal distance so results surface as soon as they are final.
func nnLess(a, b nnEntry) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.hasItem && !b.hasItem
}

// nnHeap is a typed binary min-heap. container/heap would box every entry
// through interface{} — one allocation per push/pop — which dominated the
// kNN query allocation profile; the typed form is allocation-free once the
// backing slice is warm, and the pool reuses that slice across queries.
type nnHeap struct{ es []nnEntry }

var nnHeapPool = sync.Pool{New: func() interface{} { return new(nnHeap) }}

func (h *nnHeap) len() int { return len(h.es) }

// reset clears retained entries (Item.Point slices would otherwise pin their
// backing arrays while pooled) and empties the heap.
func (h *nnHeap) reset() {
	for i := range h.es {
		h.es[i] = nnEntry{}
	}
	h.es = h.es[:0]
}

func (h *nnHeap) push(e nnEntry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nnLess(h.es[i], h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *nnHeap) pop() nnEntry {
	es := h.es
	top := es[0]
	n := len(es) - 1
	es[0] = es[n]
	es[n] = nnEntry{}
	h.es = es[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && nnLess(es[r], es[l]) {
			c = r
		}
		if !nnLess(es[c], es[i]) {
			break
		}
		es[i], es[c] = es[c], es[i]
		i = c
	}
	return top
}

// Visit walks every item in the tree (no stats impact), for tests and
// linear-scan baselines.
func (t *Tree) Visit(fn func(Item)) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for _, it := range n.items {
				fn(it)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// CheckInvariants validates structural invariants (for tests): MBR
// containment, entry counts, uniform leaf depth. It returns the first
// violation found, or nil.
func (t *Tree) CheckInvariants() error {
	return t.check(t.root, nil, true)
}

func (t *Tree) check(n *node, parentRect *Rect, isRoot bool) error {
	count := len(n.rects)
	if n.leaf {
		if len(n.items) != count {
			return errf("leaf has %d rects but %d items", count, len(n.items))
		}
		if n.level != 0 {
			return errf("leaf at level %d", n.level)
		}
	} else {
		if len(n.children) != count {
			return errf("internal node has %d rects but %d children", count, len(n.children))
		}
	}
	if !isRoot {
		if count < t.cfg.MinEntries {
			return errf("underfull node: %d < %d", count, t.cfg.MinEntries)
		}
	}
	if count > t.cfg.MaxEntries {
		return errf("overfull node: %d > %d", count, t.cfg.MaxEntries)
	}
	if parentRect != nil && count > 0 {
		m := n.mbr()
		for i := range m.Lo {
			if m.Lo[i] < parentRect.Lo[i]-1e-9 || m.Hi[i] > parentRect.Hi[i]+1e-9 {
				return errf("child MBR escapes parent rect")
			}
		}
	}
	if !n.leaf {
		for i, c := range n.children {
			if c.level != n.level-1 {
				return errf("child level %d under node level %d", c.level, n.level)
			}
			r := n.rects[i]
			if err := t.check(c, &r, false); err != nil {
				return err
			}
		}
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("rtree: "+format, args...)
}
