package rtree

import (
	"fmt"
	"math"
	"sort"
)

// DefaultPageSize is the assumed disk page size in bytes used to derive
// node capacities, mirroring a conventional 4 KiB database page.
const DefaultPageSize = 4096

// Config controls tree shape.
type Config struct {
	// MaxEntries is the node capacity M. If zero, it is derived from
	// PageSize and the dimensionality at first insert.
	MaxEntries int
	// MinEntries is the minimum fill m (default 40% of MaxEntries).
	MinEntries int
	// PageSize in bytes, used only when MaxEntries is zero.
	PageSize int
	// DisableReinsert turns off R* forced reinsertion (for ablation
	// benchmarks); splits then happen immediately on overflow.
	DisableReinsert bool
}

// Stats accumulates cost counters. Search-time counters (NodeAccesses,
// LeafHits) are accumulated per query: pass a *Stats to the ...Stats search
// variants. The tree's own Stats hold only insert-time structural counters
// (Splits, Reinserts).
type Stats struct {
	// NodeAccesses counts every node visited by a query — the paper's
	// "page accesses" measure (one node = one page). For a paged tree this
	// is the logical count; PageMisses is the subset that really hit disk.
	NodeAccesses int
	// PageMisses counts node visits the buffer pool could not serve from
	// memory (paged trees only; always 0 for in-RAM trees).
	PageMisses int
	// LeafHits counts leaf entries returned as candidates.
	LeafHits int
	// Splits and Reinserts count structural events during inserts.
	Splits    int
	Reinserts int
}

// Item is a stored object: an identifier and its point in feature space.
// Slot is an opaque caller tag carried through searches untouched (the
// index package stores the item's corpus arena slot there, so candidate
// resolution is a direct arena access instead of an id→slot map lookup).
type Item struct {
	ID    int64
	Slot  int32
	Point []float64
}

type node struct {
	leaf     bool
	level    int // 0 = leaf
	rects    []Rect
	children []*node // internal nodes
	items    []Item  // leaf nodes
}

// Tree is an R*-tree over points. Searches are read-pure — cost counters
// accumulate into a caller-provided per-query Stats — so any number of
// searches may run concurrently with each other. Inserts and deletes mutate
// the tree and require exclusive access.
type Tree struct {
	dim     int
	size    int
	root    *node
	cfg     Config
	stats   Stats
	reinLvl map[int]bool // levels already reinserted during current insert
}

// New creates an empty R*-tree for points of the given dimensionality.
func New(dim int, cfg Config) *Tree {
	if dim < 1 {
		panic(fmt.Sprintf("rtree: invalid dimension %d", dim))
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.MaxEntries == 0 {
		// Entry cost: MBR (2*dim float64) + pointer/id (8 bytes).
		entryBytes := 16*dim + 8
		cfg.MaxEntries = cfg.PageSize / entryBytes
		if cfg.MaxEntries < 4 {
			cfg.MaxEntries = 4
		}
	}
	if cfg.MaxEntries < 4 {
		panic(fmt.Sprintf("rtree: MaxEntries %d < 4", cfg.MaxEntries))
	}
	if cfg.MinEntries == 0 {
		cfg.MinEntries = cfg.MaxEntries * 2 / 5
	}
	if cfg.MinEntries < 2 {
		cfg.MinEntries = 2
	}
	if cfg.MinEntries > cfg.MaxEntries/2 {
		cfg.MinEntries = cfg.MaxEntries / 2
	}
	return &Tree{
		dim:  dim,
		cfg:  cfg,
		root: &node{leaf: true, level: 0},
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Dim returns the point dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Height returns the tree height (1 for a root-only tree).
func (t *Tree) Height() int { return t.root.level + 1 }

// Stats returns a snapshot of the insert-time structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// ResetStats zeroes the structural counters.
func (t *Tree) ResetStats() { t.stats = Stats{} }

// Insert adds an item. The point slice is retained; callers must not
// mutate it afterwards.
func (t *Tree) Insert(id int64, point []float64) {
	t.InsertItem(Item{ID: id, Point: point})
}

// InsertItem is Insert for a caller-built Item (carrying the Slot tag).
// The point slice is retained; callers must not mutate it afterwards.
func (t *Tree) InsertItem(it Item) {
	if len(it.Point) != t.dim {
		panic(fmt.Sprintf("rtree: point dim %d, tree dim %d", len(it.Point), t.dim))
	}
	t.reinLvl = map[int]bool{}
	t.insertItem(it, 0)
	t.size++
}

// insertItem inserts an item at leaf level (level 0).
func (t *Tree) insertItem(it Item, level int) {
	r := PointRect(it.Point).Clone()
	t.insertRect(r, it, nil, level)
}

// insertRect routes either an item (child == nil) or a subtree to the given
// level, handling overflow with forced reinsert then split.
func (t *Tree) insertRect(r Rect, it Item, child *node, level int) {
	path := t.choosePath(r, level)
	n := path[len(path)-1]
	if child == nil {
		n.items = append(n.items, it)
		n.rects = append(n.rects, r)
	} else {
		n.children = append(n.children, child)
		n.rects = append(n.rects, r)
	}
	t.adjustPath(path, r)
	// Handle overflow bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.rects) <= t.cfg.MaxEntries {
			continue
		}
		if !t.cfg.DisableReinsert && n != t.root && !t.reinLvl[n.level] {
			t.reinLvl[n.level] = true
			t.reinsert(n, path[:i])
		} else {
			t.splitNode(n, path[:i])
		}
		// Structure may have changed; stop and let subsequent inserts
		// find their own paths. Overflows higher up were handled by
		// splitNode's recursion.
		break
	}
}

// choosePath descends from the root to the node at the target level using
// the R* ChooseSubtree criteria and returns the path (root first).
func (t *Tree) choosePath(r Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		best := t.chooseSubtree(n, r)
		n = n.children[best]
		path = append(path, n)
	}
	return path
}

// chooseSubtree picks the child index of n to descend into for rectangle r.
func (t *Tree) chooseSubtree(n *node, r Rect) int {
	childrenAreLeaves := n.level == 1
	best := 0
	if childrenAreLeaves {
		// Minimize overlap enlargement, ties by area enlargement, then area.
		bestOverlap := math.Inf(1)
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, cr := range n.rects {
			union := cr.Union(r)
			var before, after float64
			for j, or := range n.rects {
				if j == i {
					continue
				}
				before += cr.OverlapArea(or)
				after += union.OverlapArea(or)
			}
			overlapEnl := after - before
			enl := union.Area() - cr.Area()
			area := cr.Area()
			if overlapEnl < bestOverlap ||
				(overlapEnl == bestOverlap && enl < bestEnl) ||
				(overlapEnl == bestOverlap && enl == bestEnl && area < bestArea) {
				bestOverlap, bestEnl, bestArea, best = overlapEnl, enl, area, i
			}
		}
		return best
	}
	// Minimize area enlargement, ties by area.
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, cr := range n.rects {
		enl := cr.Enlargement(r)
		area := cr.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			bestEnl, bestArea, best = enl, area, i
		}
	}
	return best
}

// adjustPath grows the MBRs along the path to cover r.
func (t *Tree) adjustPath(path []*node, r Rect) {
	for i := 0; i < len(path)-1; i++ {
		parent := path[i]
		child := path[i+1]
		for j, c := range parent.children {
			if c == child {
				parent.rects[j].unionInPlace(r)
				break
			}
		}
	}
}

// mbr recomputes the bounding rectangle of all entries of n.
func (n *node) mbr() Rect {
	out := n.rects[0].Clone()
	for _, r := range n.rects[1:] {
		out.unionInPlace(r)
	}
	return out
}

// reinsert removes the p entries of n farthest from its center and
// reinserts them (R* forced reinsert, p = 30% of M).
func (t *Tree) reinsert(n *node, ancestors []*node) {
	t.stats.Reinserts++
	p := len(n.rects) * 3 / 10
	if p < 1 {
		p = 1
	}
	center := n.mbr().Center()
	type distEntry struct {
		idx  int
		dist float64
	}
	des := make([]distEntry, len(n.rects))
	for i, r := range n.rects {
		c := r.Center()
		var d float64
		for j := range c {
			dd := c[j] - center[j]
			d += dd * dd
		}
		des[i] = distEntry{i, d}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].dist > des[j].dist })
	removed := map[int]bool{}
	for _, de := range des[:p] {
		removed[de.idx] = true
	}
	var keepRects []Rect
	var keepChildren []*node
	var keepItems []Item
	var reRects []Rect
	var reChildren []*node
	var reItems []Item
	for i, r := range n.rects {
		if removed[i] {
			reRects = append(reRects, r)
			if n.leaf {
				reItems = append(reItems, n.items[i])
			} else {
				reChildren = append(reChildren, n.children[i])
			}
		} else {
			keepRects = append(keepRects, r)
			if n.leaf {
				keepItems = append(keepItems, n.items[i])
			} else {
				keepChildren = append(keepChildren, n.children[i])
			}
		}
	}
	n.rects = keepRects
	n.items = keepItems
	n.children = keepChildren
	t.tightenPath(ancestors, n)
	// Reinsert far entries (close reinsert: farthest first).
	for i := range reRects {
		if n.leaf {
			t.insertRect(reRects[i], reItems[i], nil, n.level)
		} else {
			// A child of a level-L node lives at level L-1 and must be
			// re-routed into some node at level L.
			t.insertRect(reRects[i], Item{}, reChildren[i], n.level)
		}
	}
}

// tightenPath recomputes MBRs on the ancestor path after removals.
func (t *Tree) tightenPath(ancestors []*node, child *node) {
	for i := len(ancestors) - 1; i >= 0; i-- {
		parent := ancestors[i]
		for j, c := range parent.children {
			if c == child {
				parent.rects[j] = child.mbr()
				break
			}
		}
		child = parent
	}
}

// splitNode splits an overflowing node with the R* split algorithm and
// propagates overflow upward.
func (t *Tree) splitNode(n *node, ancestors []*node) {
	t.stats.Splits++
	left, right := t.rstarSplit(n)
	if n == t.root {
		newRoot := &node{
			leaf:     false,
			level:    n.level + 1,
			rects:    []Rect{left.mbr(), right.mbr()},
			children: []*node{left, right},
		}
		t.root = newRoot
		return
	}
	parent := ancestors[len(ancestors)-1]
	// Replace n with left, append right.
	for j, c := range parent.children {
		if c == n {
			parent.children[j] = left
			parent.rects[j] = left.mbr()
			break
		}
	}
	parent.children = append(parent.children, right)
	parent.rects = append(parent.rects, right.mbr())
	t.tightenPath(ancestors[:len(ancestors)-1], parent)
	if len(parent.rects) > t.cfg.MaxEntries {
		t.splitNode(parent, ancestors[:len(ancestors)-1])
	}
}

// rstarSplit partitions the entries of n into two nodes using the R*
// topological split: choose the axis minimizing total margin over all
// distributions, then the distribution minimizing overlap (ties: area).
func (t *Tree) rstarSplit(n *node) (*node, *node) {
	total := len(n.rects)
	m := t.cfg.MinEntries
	type sortedView struct {
		order []int
	}
	bestAxis := -1
	bestAxisMargin := math.Inf(1)
	var bestOrder []int
	for axis := 0; axis < t.dim; axis++ {
		// Sort by lower then upper bound.
		order := make([]int, total)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ra, rb := n.rects[order[a]], n.rects[order[b]]
			if ra.Lo[axis] != rb.Lo[axis] {
				return ra.Lo[axis] < rb.Lo[axis]
			}
			return ra.Hi[axis] < rb.Hi[axis]
		})
		var marginSum float64
		for split := m; split <= total-m; split++ {
			l := n.rects[order[0]].Clone()
			for _, idx := range order[1:split] {
				l.unionInPlace(n.rects[idx])
			}
			r := n.rects[order[split]].Clone()
			for _, idx := range order[split+1:] {
				r.unionInPlace(n.rects[idx])
			}
			marginSum += l.Margin() + r.Margin()
		}
		if marginSum < bestAxisMargin {
			bestAxisMargin = marginSum
			bestAxis = axis
			bestOrder = order
		}
	}
	_ = bestAxis
	// Choose split index minimizing overlap, ties by combined area.
	bestSplit := m
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for split := m; split <= total-m; split++ {
		l := n.rects[bestOrder[0]].Clone()
		for _, idx := range bestOrder[1:split] {
			l.unionInPlace(n.rects[idx])
		}
		r := n.rects[bestOrder[split]].Clone()
		for _, idx := range bestOrder[split+1:] {
			r.unionInPlace(n.rects[idx])
		}
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestSplit = overlap, area, split
		}
	}
	left := &node{leaf: n.leaf, level: n.level}
	right := &node{leaf: n.leaf, level: n.level}
	for pos, idx := range bestOrder {
		dst := left
		if pos >= bestSplit {
			dst = right
		}
		dst.rects = append(dst.rects, n.rects[idx])
		if n.leaf {
			dst.items = append(dst.items, n.items[idx])
		} else {
			dst.children = append(dst.children, n.children[idx])
		}
	}
	return left, right
}
