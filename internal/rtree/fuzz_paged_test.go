package rtree

import (
	"encoding/binary"
	"os"
	"testing"

	"warping/internal/pager"
)

// FuzzNodeDecode feeds arbitrary bytes as a node page payload: searches
// over it must reject malformed metadata with an error — never panic, never
// read out of bounds. (Checksum rejection of disk corruption is covered by
// the pager's FuzzPageCodec; this fuzzes the layer above, the node layout
// decoder, with CRC-valid but hostile payloads.)
func FuzzNodeDecode(f *testing.F) {
	// Seed with a genuine leaf payload and mutations of its meta word.
	valid := make([]byte, 496) // 512-byte page payload
	binary.LittleEndian.PutUint64(valid, encodeMeta(true, 0, 2, 3))
	for i := 8; i < len(valid); i++ {
		valid[i] = byte(i)
	}
	f.Add(valid, 3)
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge, encodeMeta(true, 0, 40000, 3)) // count OOB
	f.Add(huge, 3)
	inner := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(inner, encodeMeta(false, 1, 2, 3)) // not a leaf
	f.Add(inner, 3)
	f.Add([]byte{1, 2, 3}, 5)

	f.Fuzz(func(t *testing.T, payload []byte, dim int) {
		if dim < 1 || dim > 16 {
			return
		}
		dir, err := os.MkdirTemp("", "nodefuzz")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		sp, err := pager.Open(pager.Config{PageSize: 512, PoolPages: 8, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		file, err := sp.NewFile(pager.KindRTree)
		if err != nil {
			t.Fatal(err)
		}
		pid := file.Allocate()
		fr, err := sp.Pool().PinNew(file, pid)
		if err != nil {
			t.Fatal(err)
		}
		copy(fr.Bytes()[16:], payload)
		sp.Pool().Unpin(fr)

		pt := &PagedTree{dim: dim, f: file, pool: sp.Pool(), size: 1, height: 1, root: pid,
			inner: map[uint64]*pnode{}}
		q := PointRect(make([]float64, dim))
		_, _ = pt.RangeSearchInto(q, 10, nil, nil) // error or results; no panic
		it := pt.NNIter(q, nil)
		for i := 0; i < 4; i++ {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		_ = pt.VisitLeaves(func(Item) {})
	})
}

// FuzzNodeRoundTrip builds a tree from fuzz-derived points, serializes it
// twice, and proves (a) every item survives decode with identical id/slot,
// and (b) the encoding is byte-stable: both serializations produce
// identical page files.
func FuzzNodeRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 2)
	f.Add([]byte{0xFF, 0, 0x80, 0x40, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}, 3)
	f.Fuzz(func(t *testing.T, data []byte, dim int) {
		if dim < 1 || dim > 8 || len(data) < dim {
			return
		}
		var items []Item
		for off := 0; off+dim <= len(data) && len(items) < 200; off += dim {
			p := make([]float64, dim)
			for j := 0; j < dim; j++ {
				p[j] = float64(int8(data[off+j]))
			}
			items = append(items, Item{ID: int64(len(items) + 1), Slot: int32(len(items)), Point: p})
		}
		dir, err := os.MkdirTemp("", "rtfuzz")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		encode := func(sub string) ([]byte, int) {
			sp, err := pager.Open(pager.Config{PageSize: 512, PoolPages: 64, Dir: dir + "/" + sub})
			if err != nil {
				t.Fatal(err)
			}
			defer sp.Close()
			capacity := PageCapacity(dim, 512)
			ram := BulkLoad(dim, Config{MaxEntries: capacity}, items)
			pt, err := WritePaged(ram, sp)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			if err := pt.VisitLeaves(func(it Item) {
				seen++
				if it.ID < 1 || it.ID > int64(len(items)) || items[it.ID-1].Slot != it.Slot {
					t.Fatalf("decode corrupted item %d slot %d", it.ID, it.Slot)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if err := sp.Pool().FlushAll(); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(dir + "/" + sub + "/000000.pages")
			if err != nil {
				t.Fatal(err)
			}
			return raw, seen
		}
		raw1, seen1 := encode("a")
		raw2, _ := encode("b")
		if seen1 != len(items) {
			t.Fatalf("visited %d of %d items", seen1, len(items))
		}
		if len(raw1) != len(raw2) {
			t.Fatalf("re-encode length diverged: %d vs %d", len(raw1), len(raw2))
		}
		for i := range raw1 {
			if raw1[i] != raw2[i] {
				t.Fatalf("re-encode byte %d diverged", i)
			}
		}
	})
}
