package rtree

// Delete removes the item with the given id stored at the given point. It
// returns false when no such item exists. Underflowing nodes are dissolved
// and their remaining items reinserted (the classic R-tree CondenseTree),
// and the root is collapsed when it loses all but one child.
func (t *Tree) Delete(id int64, point []float64) bool {
	if len(point) != t.dim {
		panic("rtree: point dimension mismatch")
	}
	path, idx := t.findLeaf(point, id)
	if path == nil {
		return false
	}
	leaf := path[len(path)-1]
	leaf.rects = append(leaf.rects[:idx], leaf.rects[idx+1:]...)
	leaf.items = append(leaf.items[:idx], leaf.items[idx+1:]...)
	t.condense(path)
	t.size--
	return true
}

// findLeaf locates the leaf containing (id, point), returning the root-to-
// leaf path and the entry index, or (nil, 0) when absent.
func (t *Tree) findLeaf(point []float64, id int64) ([]*node, int) {
	var path []*node
	var walk func(n *node) int
	walk = func(n *node) int {
		path = append(path, n)
		if n.leaf {
			for i, it := range n.items {
				if it.ID != id {
					continue
				}
				same := true
				for d, v := range it.Point {
					if v != point[d] {
						same = false
						break
					}
				}
				if same {
					return i
				}
			}
			path = path[:len(path)-1]
			return -1
		}
		for i, child := range n.children {
			if n.rects[i].Contains(point) {
				if idx := walk(child); idx >= 0 {
					return idx
				}
			}
		}
		path = path[:len(path)-1]
		return -1
	}
	idx := walk(t.root)
	if idx < 0 {
		return nil, 0
	}
	return path, idx
}

// condense walks the path bottom-up after a removal: underflowing non-root
// nodes are detached and their leaf items collected for reinsertion;
// surviving nodes have their parent rectangles tightened.
func (t *Tree) condense(path []*node) {
	var orphans []Item
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		pos := -1
		for j, c := range parent.children {
			if c == n {
				pos = j
				break
			}
		}
		if pos < 0 {
			// Node was already detached along with an ancestor.
			continue
		}
		if len(n.rects) < t.cfg.MinEntries {
			parent.children = append(parent.children[:pos], parent.children[pos+1:]...)
			parent.rects = append(parent.rects[:pos], parent.rects[pos+1:]...)
			n.collectItems(&orphans)
		} else {
			parent.rects[pos] = n.mbr()
		}
	}
	// Collapse a chain of single-child internal roots.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true, level: 0}
	}
	// Reinsert orphaned items through the normal insertion path.
	for _, it := range orphans {
		t.reinLvl = map[int]bool{}
		t.insertItem(it, 0)
	}
}

// collectItems appends every leaf item under n to out.
func (n *node) collectItems(out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		c.collectItems(out)
	}
}
