package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPoint(r *rand.Rand, dim int) []float64 {
	p := make([]float64, dim)
	for i := range p {
		p[i] = r.Float64() * 100
	}
	return p
}

func buildRandomTree(r *rand.Rand, n, dim int, cfg Config) (*Tree, [][]float64) {
	t := New(dim, cfg)
	points := make([][]float64, n)
	for i := 0; i < n; i++ {
		points[i] = randomPoint(r, dim)
		t.Insert(int64(i), points[i])
	}
	return t, points
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestRectBasics(t *testing.T) {
	r, err := NewRect([]float64{0, 0}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Area() != 6 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Margin() != 5 {
		t.Errorf("Margin = %v", r.Margin())
	}
	c := r.Center()
	if c[0] != 1 || c[1] != 1.5 {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains([]float64{1, 1}) || r.Contains([]float64{3, 1}) {
		t.Error("Contains wrong")
	}
}

func TestNewRectRejects(t *testing.T) {
	if _, err := NewRect([]float64{1}, []float64{0}); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := NewRect([]float64{1}, []float64{0, 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestRectUnionOverlap(t *testing.T) {
	a, _ := NewRect([]float64{0, 0}, []float64{2, 2})
	b, _ := NewRect([]float64{1, 1}, []float64{3, 3})
	u := a.Union(b)
	if u.Lo[0] != 0 || u.Hi[1] != 3 {
		t.Errorf("Union = %v", u)
	}
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	c, _ := NewRect([]float64{5, 5}, []float64{6, 6})
	if a.OverlapArea(c) != 0 || a.Intersects(c) {
		t.Error("disjoint rects should not overlap")
	}
	if !a.Intersects(b) {
		t.Error("overlapping rects should intersect")
	}
}

func TestRectMinDist(t *testing.T) {
	r, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	if d := r.SquaredMinDist([]float64{0.5, 0.5}); d != 0 {
		t.Errorf("inside: %v", d)
	}
	if d := r.SquaredMinDist([]float64{2, 0.5}); d != 1 {
		t.Errorf("right: %v", d)
	}
	if d := r.SquaredMinDist([]float64{2, 2}); d != 2 {
		t.Errorf("corner: %v", d)
	}
	s, _ := NewRect([]float64{3, 0}, []float64{4, 1})
	if d := r.SquaredMinDistRect(s); d != 4 {
		t.Errorf("rect-rect: %v", d)
	}
	if d := r.SquaredMinDistRect(r); d != 0 {
		t.Errorf("self: %v", d)
	}
}

func TestTreeInsertAndLen(t *testing.T) {
	tr := New(2, Config{MaxEntries: 8})
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i), []float64{float64(i), float64(i % 10)})
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Error("tree should have split")
	}
}

func TestTreeVisitFindsAll(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, _ := buildRandomTree(r, 500, 3, Config{MaxEntries: 10})
	seen := map[int64]bool{}
	tr.Visit(func(it Item) { seen[it.ID] = true })
	if len(seen) != 500 {
		t.Errorf("Visit found %d items", len(seen))
	}
}

func TestRangeSearchMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr, points := buildRandomTree(r, 1000, 4, Config{MaxEntries: 16})
	for trial := 0; trial < 20; trial++ {
		q := randomPoint(r, 4)
		radius := 5 + r.Float64()*40
		got := tr.RangeSearch(q, radius)
		gotIDs := map[int64]bool{}
		for _, it := range got {
			gotIDs[it.ID] = true
		}
		count := 0
		for id, p := range points {
			if euclid(q, p) <= radius {
				count++
				if !gotIDs[int64(id)] {
					t.Fatalf("missing id %d at dist %v radius %v", id, euclid(q, p), radius)
				}
			}
		}
		if count != len(got) {
			t.Fatalf("got %d results, want %d", len(got), count)
		}
	}
}

func TestRangeSearchRectMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr, points := buildRandomTree(r, 800, 3, Config{MaxEntries: 12})
	for trial := 0; trial < 20; trial++ {
		lo := randomPoint(r, 3)
		hi := make([]float64, 3)
		for i := range hi {
			hi[i] = lo[i] + r.Float64()*20
		}
		q := Rect{Lo: lo, Hi: hi}
		radius := r.Float64() * 15
		got := tr.RangeSearchRect(q, radius)
		gotIDs := map[int64]bool{}
		for _, it := range got {
			gotIDs[it.ID] = true
		}
		count := 0
		for id, p := range points {
			if math.Sqrt(q.SquaredMinDist(p)) <= radius {
				count++
				if !gotIDs[int64(id)] {
					t.Fatalf("missing id %d", id)
				}
			}
		}
		if count != len(got) {
			t.Fatalf("got %d, want %d", len(got), count)
		}
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr, points := buildRandomTree(r, 600, 3, Config{MaxEntries: 10})
	for trial := 0; trial < 10; trial++ {
		q := randomPoint(r, 3)
		k := 1 + r.Intn(20)
		got := tr.KNN(q, k)
		if len(got) != k {
			t.Fatalf("got %d neighbors, want %d", len(got), k)
		}
		dists := make([]float64, len(points))
		for i, p := range points {
			dists[i] = euclid(q, p)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("neighbor %d dist %v, want %v", i, nb.Dist, dists[i])
			}
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("neighbors not sorted")
			}
		}
	}
}

func TestIncrementalNNStops(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr, _ := buildRandomTree(r, 300, 2, Config{MaxEntries: 8})
	calls := 0
	tr.IncrementalNN(PointRect([]float64{50, 50}), func(Neighbor) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Errorf("yield called %d times", calls)
	}
}

func TestKNNMoreThanSize(t *testing.T) {
	tr := New(2, Config{MaxEntries: 4})
	for i := 0; i < 3; i++ {
		tr.Insert(int64(i), []float64{float64(i), 0})
	}
	got := tr.KNN([]float64{0, 0}, 10)
	if len(got) != 3 {
		t.Errorf("got %d, want all 3", len(got))
	}
}

func TestEmptyTreeSearches(t *testing.T) {
	tr := New(2, Config{})
	if got := tr.RangeSearch([]float64{0, 0}, 10); len(got) != 0 {
		t.Error("range on empty tree")
	}
	if got := tr.KNN([]float64{0, 0}, 3); len(got) != 0 {
		t.Error("knn on empty tree")
	}
}

func TestStatsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	tr, _ := buildRandomTree(r, 2000, 4, Config{MaxEntries: 16})
	var st Stats
	tr.RangeSearchRectStats(PointRect(randomPoint(r, 4)), 10, &st)
	if st.NodeAccesses == 0 {
		t.Error("no node accesses recorded")
	}
	// Searches must not touch the tree's own (structural) counters.
	before := tr.Stats()
	tr.RangeSearch(randomPoint(r, 4), 10)
	if tr.Stats() != before {
		t.Error("search mutated tree counters")
	}
	// A tiny-radius search must access far fewer nodes than a full scan.
	var small, large Stats
	tr.RangeSearchRectStats(PointRect(randomPoint(r, 4)), 1, &small)
	tr.RangeSearchRectStats(PointRect(randomPoint(r, 4)), 1000, &large)
	if small.NodeAccesses >= large.NodeAccesses {
		t.Errorf("small-radius accesses %d >= full-scan accesses %d", small.NodeAccesses, large.NodeAccesses)
	}
}

func TestInvariantsManyConfigs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, cfg := range []Config{
		{MaxEntries: 4},
		{MaxEntries: 8, MinEntries: 3},
		{MaxEntries: 50},
		{MaxEntries: 10, DisableReinsert: true},
		{}, // derived from page size
	} {
		tr, _ := buildRandomTree(r, 700, 3, cfg)
		if err := tr.CheckInvariants(); err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
		if tr.Len() != 700 {
			t.Errorf("cfg %+v: len %d", cfg, tr.Len())
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(2, Config{MaxEntries: 4})
	p := []float64{1, 1}
	for i := 0; i < 50; i++ {
		tr.Insert(int64(i), []float64{1, 1})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.RangeSearch(p, 0)
	if len(got) != 50 {
		t.Errorf("found %d duplicates, want 50", len(got))
	}
}

func TestReinsertionHappens(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr, _ := buildRandomTree(r, 1000, 2, Config{MaxEntries: 8})
	if tr.Stats().Reinserts == 0 {
		t.Error("expected forced reinserts with default config")
	}
	tr2, _ := buildRandomTree(r, 1000, 2, Config{MaxEntries: 8, DisableReinsert: true})
	if tr2.Stats().Reinserts != 0 {
		t.Error("reinserts happened despite DisableReinsert")
	}
}

// Property: every inserted point is findable with a zero-radius search.
func TestPropAllPointsFindable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		dim := 1 + r.Intn(5)
		tr, points := buildRandomTree(r, n, dim, Config{MaxEntries: 4 + r.Intn(20)})
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for id, p := range points {
			found := false
			for _, it := range tr.RangeSearch(p, 1e-9) {
				if it.ID == int64(id) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnMismatchedDims(t *testing.T) {
	tr := New(3, Config{})
	cases := []func(){
		func() { tr.Insert(0, []float64{1, 2}) },
		func() { tr.RangeSearch([]float64{1}, 5) },
		func() { New(0, Config{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(8, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), randomPoint(r, 8))
	}
}

func BenchmarkRangeSearch50k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr, _ := buildRandomTree(r, 50000, 8, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RangeSearch(randomPoint(r, 8), 20)
	}
}
