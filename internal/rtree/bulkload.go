package rtree

import (
	"fmt"
	"sort"
)

// BulkLoad builds a tree from a static item set using Sort-Tile-Recursive
// (STR) packing: items are recursively sorted and tiled one dimension at a
// time into fully packed leaves, and upper levels are packed the same way
// over node centers. The resulting tree is far better clustered than one
// grown by repeated insertion (fewer overlapping MBRs, fewer page accesses
// per query) and builds in O(n log n).
//
// The tree remains fully dynamic afterwards: Insert and Delete work as
// usual. Item point slices are retained.
func BulkLoad(dim int, cfg Config, items []Item) *Tree {
	t := New(dim, cfg)
	if len(items) == 0 {
		return t
	}
	for i, it := range items {
		if len(it.Point) != dim {
			panic(fmt.Sprintf("rtree: item %d has dim %d, tree dim %d", i, len(it.Point), dim))
		}
	}
	// Build leaves.
	leafEntries := make([]packEntry, len(items))
	for i, it := range items {
		leafEntries[i] = packEntry{rect: PointRect(it.Point).Clone(), item: it}
	}
	nodes := t.packLevel(leafEntries, 0)
	level := 0
	for len(nodes) > 1 {
		level++
		entries := make([]packEntry, len(nodes))
		for i, n := range nodes {
			entries[i] = packEntry{rect: n.mbr(), child: n}
		}
		nodes = t.packLevel(entries, level)
	}
	t.root = nodes[0]
	t.size = len(items)
	return t
}

// packEntry is one unit being packed: either an item (leaf level) or a
// child node (upper levels).
type packEntry struct {
	rect  Rect
	item  Item
	child *node
}

// packLevel tiles the entries into nodes of the given level using STR
// ordering and returns the nodes.
func (t *Tree) packLevel(entries []packEntry, level int) []*node {
	m := t.cfg.MaxEntries
	strSort(entries, 0, t.dim, m)
	count := (len(entries) + m - 1) / m
	nodes := make([]*node, 0, count)
	for start := 0; start < len(entries); start += m {
		end := start + m
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		// Avoid an underfull final node: borrow from the previous chunk.
		if len(chunk) < t.cfg.MinEntries && len(nodes) > 0 {
			prev := nodes[len(nodes)-1]
			for len(chunk) < t.cfg.MinEntries {
				last := len(prev.rects) - 1
				borrowed := packEntry{rect: prev.rects[last]}
				if prev.leaf {
					borrowed.item = prev.items[last]
					prev.items = prev.items[:last]
				} else {
					borrowed.child = prev.children[last]
					prev.children = prev.children[:last]
				}
				prev.rects = prev.rects[:last]
				chunk = append([]packEntry{borrowed}, chunk...)
			}
		}
		n := &node{leaf: level == 0, level: level}
		for _, e := range chunk {
			n.rects = append(n.rects, e.rect)
			if n.leaf {
				n.items = append(n.items, e.item)
			} else {
				n.children = append(n.children, e.child)
			}
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// strSort recursively orders entries for tiling: sort by the center of the
// current axis, split into vertical slabs sized so that each slab holds a
// near-cubic number of pages, and recurse on the next axis within slabs.
func strSort(entries []packEntry, axis, dim, capacity int) {
	if len(entries) <= capacity || axis >= dim {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].rect.Lo[axis] + entries[i].rect.Hi[axis]
		cj := entries[j].rect.Lo[axis] + entries[j].rect.Hi[axis]
		return ci < cj
	})
	pages := (len(entries) + capacity - 1) / capacity
	// Number of slabs along this axis: pages^(1/(dim-axis)).
	slabs := iroot(pages, dim-axis)
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	// Round slab size to a multiple of capacity so pages don't straddle
	// slab boundaries.
	if rem := slabSize % capacity; rem != 0 {
		slabSize += capacity - rem
	}
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		strSort(entries[start:end], axis+1, dim, capacity)
	}
}

// iroot returns floor-ish n^(1/k), at least 1.
func iroot(n, k int) int {
	if n <= 1 || k <= 1 {
		if k <= 1 {
			return n
		}
		return 1
	}
	r := 1
	for pow(r+1, k) <= n {
		r++
	}
	return r
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out < 0 || out > 1<<40 {
			return 1 << 40
		}
	}
	return out
}
