package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func bulkItems(r *rand.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), Point: randomPoint(r, dim)}
	}
	return items
}

func TestBulkLoadBasics(t *testing.T) {
	r := rand.New(rand.NewSource(121))
	items := bulkItems(r, 1000, 4)
	tr := BulkLoad(4, Config{MaxEntries: 16}, items)
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	tr.Visit(func(it Item) { seen[it.ID] = true })
	if len(seen) != 1000 {
		t.Errorf("Visit found %d", len(seen))
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr := BulkLoad(2, Config{}, nil)
	if tr.Len() != 0 {
		t.Error("empty bulk load")
	}
	tr.Insert(1, []float64{1, 2}) // still usable
	if tr.Len() != 1 {
		t.Error("insert after empty bulk load")
	}

	one := BulkLoad(2, Config{MaxEntries: 4}, []Item{{ID: 9, Point: []float64{3, 4}}})
	if one.Len() != 1 {
		t.Error("single-item bulk load")
	}
	if got := one.RangeSearch([]float64{3, 4}, 0); len(got) != 1 || got[0].ID != 9 {
		t.Errorf("got %v", got)
	}
}

func TestBulkLoadSearchesMatchLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(122))
	items := bulkItems(r, 2000, 5)
	tr := BulkLoad(5, Config{MaxEntries: 20}, items)
	for trial := 0; trial < 15; trial++ {
		q := randomPoint(r, 5)
		radius := 5 + r.Float64()*40
		got := map[int64]bool{}
		for _, it := range tr.RangeSearch(q, radius) {
			got[it.ID] = true
		}
		for _, it := range items {
			want := euclid(q, it.Point) <= radius
			if got[it.ID] != want {
				t.Fatalf("id %d: got %v want %v", it.ID, got[it.ID], want)
			}
		}
	}
}

func TestBulkLoadDynamicAfterwards(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	items := bulkItems(r, 500, 3)
	tr := BulkLoad(3, Config{MaxEntries: 8}, items)
	// Insert more.
	for i := 500; i < 800; i++ {
		tr.Insert(int64(i), randomPoint(r, 3))
	}
	// Delete some originals.
	for i := 0; i < 200; i++ {
		if !tr.Delete(items[i].ID, items[i].Point) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 600 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBulkLoadBetterClusteringThanInserts(t *testing.T) {
	// STR packing should need no more page accesses than incremental
	// insertion for the same workload (usually far fewer).
	r := rand.New(rand.NewSource(124))
	const n, dim = 20000, 8
	items := bulkItems(r, n, dim)
	packed := BulkLoad(dim, Config{}, items)
	grown := New(dim, Config{})
	for _, it := range items {
		grown.Insert(it.ID, it.Point)
	}
	var packedPages, grownPages int
	for trial := 0; trial < 30; trial++ {
		q := randomPoint(r, dim)
		var ps, gs Stats
		a := packed.RangeSearchRectStats(PointRect(q), 25, &ps)
		packedPages += ps.NodeAccesses
		b := grown.RangeSearchRectStats(PointRect(q), 25, &gs)
		grownPages += gs.NodeAccesses
		if len(a) != len(b) {
			t.Fatalf("result mismatch: %d vs %d", len(a), len(b))
		}
	}
	if packedPages > grownPages {
		t.Errorf("STR pages %d > incremental pages %d", packedPages, grownPages)
	}
}

func TestPropBulkLoadInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(3000)
		dim := 1 + r.Intn(6)
		items := bulkItems(r, n, dim)
		tr := BulkLoad(dim, Config{MaxEntries: 4 + r.Intn(30)}, items)
		if tr.Len() != n {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		// Every item findable.
		for _, it := range items[:min(n, 50)] {
			found := false
			for _, hit := range tr.RangeSearch(it.Point, 1e-12) {
				if hit.ID == it.ID {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BulkLoad(3, Config{}, []Item{{ID: 1, Point: []float64{1, 2}}})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkBulkLoadVsInsert50k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := bulkItems(r, 50000, 8)
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BulkLoad(8, Config{}, items)
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New(8, Config{})
			for _, it := range items {
				tr.Insert(it.ID, it.Point)
			}
		}
	})
}
