package rtree

import (
	"fmt"
	"math"

	"warping/internal/pager"
)

// Paged R*-tree: an immutable tree whose nodes are serialized one-per-page
// into a pager file. Node layout in the page payload (uint64 words, after
// the 16-byte checksummed page header):
//
//	word 0: meta = leaf(1 bit) | level<<1 (15 bits) | count<<16 (16 bits) |
//	        dim<<32 (16 bits)
//	internal entry i, at 1+i*(2*dim+1):
//	        Lo[dim] | Hi[dim] | child page id
//	leaf entry i, at 1+i*(dim+2):
//	        point[dim] | item id (int64 bits) | item slot
//
// All entries are fixed width, so capacity is a pure function of page size
// and dimensionality (PageCapacity) — node = page, the paper's accounting
// unit, now for real. Upper levels (every internal node) are decoded once
// at build time and cached in RAM — they are a tiny fraction of the tree —
// while leaf pages are pinned on demand, so leaf visits are the real I/O.
//
// The paged tree is immutable: the index layers mutation on top as an
// in-RAM delta tree plus tombstones, merging into a fresh paged tree at
// compaction. Items returned from searches carry a nil Point (the caller
// resolves features through the corpus columns); ID and Slot are enough.

// PageCapacity returns the node capacity M for the given dimensionality and
// page size: the larger of 4 and the count fitting both node layouts.
func PageCapacity(dim, pageSize int) int {
	payloadWords := (pageSize - 16) / 8
	mInternal := (payloadWords - 1) / (2*dim + 1)
	mLeaf := (payloadWords - 1) / (dim + 2)
	m := mInternal
	if mLeaf < m {
		m = mLeaf
	}
	if m < 4 {
		m = 4
	}
	return m
}

// pnode is a decoded internal node. children are page ids: nodes at level
// >= 2 resolve them through the cache, level-1 nodes point at leaf pages.
type pnode struct {
	level    int
	rects    []Rect
	children []uint64
}

// PagedTree is an immutable page-resident R*-tree.
type PagedTree struct {
	dim    int
	f      *pager.File
	pool   *pager.Pool
	size   int
	height int
	root   uint64
	inner  map[uint64]*pnode // decoded internal nodes (hot upper levels)
}

// WritePaged serializes t into a fresh page file of sp and returns the
// paged tree. t's node capacity must not exceed PageCapacity for sp's page
// size (build the tree with that capacity). t itself is untouched.
func WritePaged(t *Tree, sp *pager.Space) (*PagedTree, error) {
	capacity := PageCapacity(t.dim, sp.PageSize())
	f, err := sp.NewFile(pager.KindRTree)
	if err != nil {
		return nil, err
	}
	pt := &PagedTree{
		dim:    t.dim,
		f:      f,
		pool:   sp.Pool(),
		size:   t.size,
		height: t.root.level + 1,
		inner:  make(map[uint64]*pnode),
	}
	if t.size == 0 {
		pt.height = 0
		return pt, nil
	}
	root, err := pt.writeNode(t.root, capacity)
	if err != nil {
		_ = sp.Remove(f)
		return nil, err
	}
	pt.root = root
	return pt, nil
}

// writeNode serializes n (children first, so child page ids are known) and
// returns its page id. Internal nodes are also cached decoded.
func (pt *PagedTree) writeNode(n *node, capacity int) (uint64, error) {
	count := len(n.rects)
	if count > capacity {
		return 0, fmt.Errorf("rtree: node with %d entries exceeds page capacity %d", count, capacity)
	}
	var childPids []uint64
	if !n.leaf {
		childPids = make([]uint64, len(n.children))
		for i, c := range n.children {
			pid, err := pt.writeNode(c, capacity)
			if err != nil {
				return 0, err
			}
			childPids[i] = pid
		}
	}
	pid := pt.f.Allocate()
	fr, err := pt.pool.PinNew(pt.f, pid)
	if err != nil {
		return 0, err
	}
	wd, fl := fr.Words(), fr.Floats()
	wd[0] = encodeMeta(n.leaf, n.level, count, pt.dim)
	d := pt.dim
	if n.leaf {
		ew := d + 2
		for i, it := range n.items {
			off := 1 + i*ew
			copy(fl[off:off+d], it.Point)
			wd[off+d] = uint64(it.ID)
			wd[off+d+1] = uint64(uint32(it.Slot))
		}
	} else {
		ew := 2*d + 1
		for i := range n.rects {
			off := 1 + i*ew
			copy(fl[off:off+d], n.rects[i].Lo)
			copy(fl[off+d:off+2*d], n.rects[i].Hi)
			wd[off+2*d] = childPids[i]
		}
	}
	pt.pool.Unpin(fr) // PinNew left it dirty; eviction or flush writes it
	if !n.leaf {
		pn := &pnode{level: n.level, children: childPids, rects: make([]Rect, count)}
		for i := range n.rects {
			pn.rects[i] = n.rects[i].Clone()
		}
		pt.inner[pid] = pn
	}
	return pid, nil
}

func encodeMeta(leaf bool, level, count, dim int) uint64 {
	m := uint64(level)<<1 | uint64(count)<<16 | uint64(dim)<<32
	if leaf {
		m |= 1
	}
	return m
}

func decodeMeta(m uint64) (leaf bool, level, count, dim int) {
	return m&1 == 1, int(m >> 1 & 0x7FFF), int(m >> 16 & 0xFFFF), int(m >> 32 & 0xFFFF)
}

// Len returns the number of stored items.
func (pt *PagedTree) Len() int { return pt.size }

// Dim returns the point dimensionality.
func (pt *PagedTree) Dim() int { return pt.dim }

// Height returns the tree height (0 when empty).
func (pt *PagedTree) Height() int { return pt.height }

// InnerNodes returns how many internal nodes are cached in RAM.
func (pt *PagedTree) InnerNodes() int { return len(pt.inner) }

// Close removes the backing file; the tree is unusable afterwards.
func (pt *PagedTree) Close(sp *pager.Space) error {
	if pt.f == nil {
		return nil
	}
	err := sp.Remove(pt.f)
	pt.f = nil
	return err
}

// pinLeaf pins a leaf page, validates its meta, and returns the frame with
// decoded words/floats views. Counts one node access, and a page miss when
// the pool had to read disk.
func (pt *PagedTree) pinLeaf(pid uint64, st *Stats) (*pager.Frame, []uint64, []float64, int, error) {
	fr, miss, err := pt.pool.Pin(pt.f, pid)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	st.NodeAccesses++
	if miss {
		st.PageMisses++
	}
	wd := fr.Words()
	leaf, _, count, dim := decodeMeta(wd[0])
	if !leaf || dim != pt.dim || count < 0 || 1+count*(pt.dim+2) > len(wd) {
		pt.pool.Unpin(fr)
		return nil, nil, nil, 0, fmt.Errorf("rtree: page %d is not a valid leaf (meta %#x)", pid, wd[0])
	}
	return fr, wd, fr.Floats(), count, nil
}

// RangeSearchInto appends all items within radius of the query rect to dst.
// Returned Items carry nil Points. Cached internal levels count as logical
// node accesses; leaf pins through the pool count misses as real I/O.
func (pt *PagedTree) RangeSearchInto(q Rect, radius float64, dst []Item, st *Stats) ([]Item, error) {
	if q.Dim() != pt.dim {
		panic("rtree: query dimension mismatch")
	}
	if st == nil {
		st = &Stats{}
	}
	if pt.size == 0 {
		return dst, nil
	}
	r2 := radius * radius
	out := dst
	d := pt.dim
	var walkLeaf func(pid uint64) error
	walkLeaf = func(pid uint64) error {
		fr, wd, fl, count, err := pt.pinLeaf(pid, st)
		if err != nil {
			return err
		}
		ew := d + 2
		for i := 0; i < count; i++ {
			off := 1 + i*ew
			if q.squaredMinDistLeq(fl[off:off+d], r2) {
				out = append(out, Item{ID: int64(wd[off+d]), Slot: int32(uint32(wd[off+d+1]))})
				st.LeafHits++
			}
		}
		pt.pool.Unpin(fr)
		return nil
	}
	var walk func(pid uint64, level int) error
	walk = func(pid uint64, level int) error {
		if level == 0 {
			return walkLeaf(pid)
		}
		n := pt.inner[pid]
		if n == nil {
			return fmt.Errorf("rtree: internal node %d missing from cache", pid)
		}
		st.NodeAccesses++
		for i, child := range n.children {
			if n.rects[i].SquaredMinDistRect(q) <= r2 {
				if err := walk(child, level-1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(pt.root, pt.height-1); err != nil {
		return out, err
	}
	return out, nil
}

// pagedNNEntry is one frontier element of a paged NN traversal: an internal
// cached node, a leaf page id, or a surfaced item.
type pagedNNEntry struct {
	pn      *pnode
	leafPID uint64
	item    Item
	kind    uint8 // 0 node, 1 leaf pid, 2 item
	dist    float64
}

func pagedNNLess(a, b pagedNNEntry) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	// Items surface before containers at equal distance, matching nnLess.
	return a.kind == 2 && b.kind != 2
}

// PagedNNIter enumerates items of a paged tree in ascending distance order.
// Like NNIter it is pull-based so callers can merge it with the delta
// tree's stream. Pages are pinned only while a leaf is expanded.
type PagedNNIter struct {
	pt  *PagedTree
	q   Rect
	st  *Stats
	es  []pagedNNEntry
	err error
}

// NNIter starts a best-first traversal. st may be nil.
func (pt *PagedTree) NNIter(q Rect, st *Stats) *PagedNNIter {
	if q.Dim() != pt.dim {
		panic("rtree: query dimension mismatch")
	}
	if st == nil {
		st = &Stats{}
	}
	it := &PagedNNIter{pt: pt, q: q, st: st}
	if pt.size > 0 {
		if pt.height == 1 {
			it.push(pagedNNEntry{leafPID: pt.root, kind: 1})
		} else {
			it.push(pagedNNEntry{pn: pt.inner[pt.root], kind: 0})
		}
	}
	return it
}

// Next returns the next-nearest item (nil Point), or ok=false when the
// traversal is exhausted or failed; check Err after exhaustion.
func (it *PagedNNIter) Next() (Neighbor, bool) {
	pt := it.pt
	d := pt.dim
	for len(it.es) > 0 && it.err == nil {
		e := it.pop()
		switch e.kind {
		case 0: // cached internal node
			n := e.pn
			if n == nil {
				it.err = fmt.Errorf("rtree: internal node missing from cache")
				return Neighbor{}, false
			}
			it.st.NodeAccesses++
			for i, child := range n.children {
				dist := math.Sqrt(n.rects[i].SquaredMinDistRect(it.q))
				if n.level == 1 {
					it.push(pagedNNEntry{leafPID: child, kind: 1, dist: dist})
				} else {
					it.push(pagedNNEntry{pn: pt.inner[child], kind: 0, dist: dist})
				}
			}
		case 1: // leaf page
			fr, wd, fl, count, err := pt.pinLeaf(e.leafPID, it.st)
			if err != nil {
				it.err = err
				return Neighbor{}, false
			}
			ew := d + 2
			for i := 0; i < count; i++ {
				off := 1 + i*ew
				dist := math.Sqrt(it.q.SquaredMinDist(fl[off : off+d]))
				item := Item{ID: int64(wd[off+d]), Slot: int32(uint32(wd[off+d+1]))}
				it.push(pagedNNEntry{item: item, kind: 2, dist: dist})
			}
			pt.pool.Unpin(fr)
		case 2:
			it.st.LeafHits++
			return Neighbor{Item: e.item, Dist: e.dist}, true
		}
	}
	return Neighbor{}, false
}

// Err returns the traversal error, if any.
func (it *PagedNNIter) Err() error { return it.err }

func (it *PagedNNIter) push(e pagedNNEntry) {
	it.es = append(it.es, e)
	i := len(it.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pagedNNLess(it.es[i], it.es[p]) {
			break
		}
		it.es[i], it.es[p] = it.es[p], it.es[i]
		i = p
	}
}

func (it *PagedNNIter) pop() pagedNNEntry {
	es := it.es
	top := es[0]
	n := len(es) - 1
	es[0] = es[n]
	es[n] = pagedNNEntry{}
	it.es = es[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && pagedNNLess(es[r], es[l]) {
			c = r
		}
		if !pagedNNLess(es[c], es[i]) {
			break
		}
		es[i], es[c] = es[c], es[i]
		i = c
	}
	return top
}

// VisitLeaves walks every leaf item (nil Points), for tests.
func (pt *PagedTree) VisitLeaves(fn func(Item)) error {
	if pt.size == 0 {
		return nil
	}
	st := &Stats{}
	var walk func(pid uint64, level int) error
	walk = func(pid uint64, level int) error {
		if level == 0 {
			fr, wd, _, count, err := pt.pinLeaf(pid, st)
			if err != nil {
				return err
			}
			ew := pt.dim + 2
			for i := 0; i < count; i++ {
				off := 1 + i*ew
				fn(Item{ID: int64(wd[off+pt.dim]), Slot: int32(uint32(wd[off+pt.dim+1]))})
			}
			pt.pool.Unpin(fr)
			return nil
		}
		n := pt.inner[pid]
		if n == nil {
			return fmt.Errorf("rtree: internal node %d missing from cache", pid)
		}
		for _, child := range n.children {
			if err := walk(child, level-1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(pt.root, pt.height-1)
}
