package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeleteBasic(t *testing.T) {
	tr := New(2, Config{MaxEntries: 4})
	tr.Insert(1, []float64{1, 1})
	tr.Insert(2, []float64{2, 2})
	if !tr.Delete(1, []float64{1, 1}) {
		t.Fatal("delete failed")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.RangeSearch([]float64{1, 1}, 0.1); len(got) != 0 {
		t.Errorf("deleted item still found: %v", got)
	}
	if got := tr.RangeSearch([]float64{2, 2}, 0.1); len(got) != 1 {
		t.Errorf("surviving item lost: %v", got)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New(2, Config{MaxEntries: 4})
	tr.Insert(1, []float64{1, 1})
	if tr.Delete(99, []float64{1, 1}) {
		t.Error("deleted non-existent id")
	}
	if tr.Delete(1, []float64{5, 5}) {
		t.Error("deleted with wrong point")
	}
	if tr.Len() != 1 {
		t.Errorf("Len changed: %d", tr.Len())
	}
}

func TestDeleteEmptyTree(t *testing.T) {
	tr := New(2, Config{})
	if tr.Delete(1, []float64{0, 0}) {
		t.Error("delete on empty tree returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, points := buildRandomTree(r, 500, 3, Config{MaxEntries: 8})
	for id, p := range points {
		if !tr.Delete(int64(id), p) {
			t.Fatalf("delete %d failed", id)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after deleting %d: %v", id, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if got := tr.RangeSearch(points[0], 1000); len(got) != 0 {
		t.Errorf("items remain: %v", got)
	}
	// Tree stays usable after emptying.
	tr.Insert(7, []float64{1, 2, 3})
	if got := tr.RangeSearch([]float64{1, 2, 3}, 0.1); len(got) != 1 {
		t.Error("insert after emptying failed")
	}
}

func TestDeleteHalfThenSearch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr, points := buildRandomTree(r, 1000, 4, Config{MaxEntries: 12})
	// Delete every even id.
	for id := 0; id < 1000; id += 2 {
		if !tr.Delete(int64(id), points[id]) {
			t.Fatalf("delete %d failed", id)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Searches must exactly match a linear scan of survivors.
	for trial := 0; trial < 10; trial++ {
		q := randomPoint(r, 4)
		radius := 10 + r.Float64()*30
		got := map[int64]bool{}
		for _, it := range tr.RangeSearch(q, radius) {
			got[it.ID] = true
		}
		for id := 1; id < 1000; id += 2 {
			want := euclid(q, points[id]) <= radius
			if got[int64(id)] != want {
				t.Fatalf("id %d: got %v want %v", id, got[int64(id)], want)
			}
		}
		for id := 0; id < 1000; id += 2 {
			if got[int64(id)] {
				t.Fatalf("deleted id %d returned", id)
			}
		}
	}
}

func TestDeleteDuplicatePointsById(t *testing.T) {
	tr := New(2, Config{MaxEntries: 4})
	for i := 0; i < 20; i++ {
		tr.Insert(int64(i), []float64{3, 3})
	}
	if !tr.Delete(7, []float64{3, 3}) {
		t.Fatal("delete failed")
	}
	got := tr.RangeSearch([]float64{3, 3}, 0)
	if len(got) != 19 {
		t.Fatalf("%d items remain", len(got))
	}
	for _, it := range got {
		if it.ID == 7 {
			t.Fatal("id 7 still present")
		}
	}
}

// Property: random interleaving of inserts and deletes preserves invariants
// and exact search results.
func TestPropInsertDeleteInterleaved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		tr := New(dim, Config{MaxEntries: 4 + r.Intn(12)})
		live := map[int64][]float64{}
		nextID := int64(0)
		for op := 0; op < 300; op++ {
			if len(live) == 0 || r.Float64() < 0.6 {
				p := randomPoint(r, dim)
				tr.Insert(nextID, p)
				live[nextID] = p
				nextID++
			} else {
				// Delete a random live item.
				var id int64
				for k := range live {
					id = k
					break
				}
				if !tr.Delete(id, live[id]) {
					return false
				}
				delete(live, id)
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		// Zero-radius search finds exactly the live items.
		for id, p := range live {
			found := false
			for _, it := range tr.RangeSearch(p, 1e-12) {
				if it.ID == id {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
