package index

import (
	"math"
	"math/rand"
	"testing"

	"warping/internal/core"
)

func TestRemove(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	ix, _, data := buildIndex(r, core.NewPAA(testN, testDim), 200)
	if !ix.Remove(42) {
		t.Fatal("remove failed")
	}
	if ix.Remove(42) {
		t.Error("double remove succeeded")
	}
	if ix.Len() != 199 {
		t.Errorf("Len = %d", ix.Len())
	}
	if _, ok := ix.Get(42); ok {
		t.Error("removed id still gettable")
	}
	// The removed series must no longer appear in query results; the
	// rest must be unaffected.
	matches, _ := ix.RangeQuery(data[42], 1e-6, 0.1)
	for _, m := range matches {
		if m.ID == 42 {
			t.Error("removed series still matches")
		}
	}
	got, _ := ix.KNN(data[41], 1, 0.1)
	if len(got) != 1 || got[0].ID != 41 || got[0].Dist != 0 {
		t.Errorf("survivor query broken: %+v", got)
	}
}

func TestRemoveUnknown(t *testing.T) {
	ix := New(core.NewPAA(testN, testDim), Config{})
	if ix.Remove(5) {
		t.Error("remove on empty index succeeded")
	}
}

func TestRemoveThenReAdd(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	ix, scan, data := buildIndex(r, core.NewPAA(testN, testDim), 150)
	// Remove a third, re-add them under new ids, verify against a
	// freshly built scan.
	for id := int64(0); id < 50; id++ {
		if !ix.Remove(id) {
			t.Fatalf("remove %d", id)
		}
		if err := ix.Add(id+1000, data[id]); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 150 {
		t.Fatalf("Len = %d", ix.Len())
	}
	q := randomWalk(r, testN)
	want, _ := scan.RangeQuery(q, float64(testN)*0.06, 0.1)
	got, _ := ix.RangeQuery(q, float64(testN)*0.06, 0.1)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	for i := range got {
		id := got[i].ID
		if id >= 1000 {
			id -= 1000
		}
		if id != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("match %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
