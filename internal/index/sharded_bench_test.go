package index

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"warping/internal/core"
	"warping/internal/ts"
)

// benchCorpus builds a sharded R*-tree index over `count` random walks and
// returns it with a handful of query series drawn from the same
// distribution.
func benchCorpus(b *testing.B, shards, count int) (*Sharded, []ts.Series) {
	b.Helper()
	r := rand.New(rand.NewSource(int64(1000 + shards)))
	entries := make([]Entry, count)
	for i := range entries {
		entries[i] = Entry{ID: int64(i), Series: randomWalk(r, testN)}
	}
	sh, err := NewSharded(BackendRTree, core.NewPAA(testN, testDim), Config{}, shards)
	if err != nil {
		b.Fatal(err)
	}
	if err := sh.BulkAdd(entries); err != nil {
		b.Fatal(err)
	}
	queries := make([]ts.Series, 8)
	for i := range queries {
		queries[i] = randomWalk(r, testN)
	}
	return sh, queries
}

var benchShardCounts = []int{1, 2, 4, 8}

func shardName(n int) string {
	return "shards=" + string(rune('0'+n))
}

// BenchmarkShardedRange sweeps shard counts for a single-caller range
// query: the fan-out searches shards in parallel, so latency should drop
// as shards are added (until per-shard work no longer dominates the
// goroutine handoff).
func BenchmarkShardedRange(b *testing.B) {
	for _, n := range benchShardCounts {
		b.Run(shardName(n), func(b *testing.B) {
			sh, queries := benchCorpus(b, n, 4000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.RangeQuery(queries[i%len(queries)], 40, 0.1)
			}
		})
	}
}

// BenchmarkShardedKNN sweeps shard counts for k-nearest-neighbour
// search. Shards share one atomic best-k bound, so a tight radius found
// on one shard prunes the others mid-flight.
func BenchmarkShardedKNN(b *testing.B) {
	for _, n := range benchShardCounts {
		b.Run(shardName(n), func(b *testing.B) {
			sh, queries := benchCorpus(b, n, 4000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.KNN(queries[i%len(queries)], 5, 0.1)
			}
		})
	}
}

// BenchmarkShardedAddUnderQueryLoad measures write latency while query
// goroutines hammer the index — the scenario the sharding exists for.
// With one shard every Add waits for the exclusive lock behind in-flight
// readers; with many shards an Add locks only 1/n of the index, so the
// sweep should show Add ns/op falling as shards are added.
func BenchmarkShardedAddUnderQueryLoad(b *testing.B) {
	for _, n := range benchShardCounts {
		b.Run(shardName(n), func(b *testing.B) {
			sh, queries := benchCorpus(b, n, 4000)
			r := rand.New(rand.NewSource(int64(2000 + n)))
			// Pre-generate the series to insert so the walk generation
			// isn't on the measured path.
			toAdd := make([]ts.Series, b.N)
			for i := range toAdd {
				toAdd[i] = randomWalk(r, testN)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			var queriesRun atomic.Int64
			started := make(chan struct{}, 4)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						sh.RangeQuery(queries[(g+i)%len(queries)], 40, 0.1)
						if i == 0 {
							started <- struct{}{}
						}
						queriesRun.Add(1)
					}
				}(g)
			}
			// Wait until every load goroutine has a query in flight before
			// the timer starts: otherwise the N=1 calibration run measures
			// an uncontended Add, and the benchmark framework extrapolates
			// an absurdly large iteration count for the contended runs.
			for g := 0; g < 4; g++ {
				<-started
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sh.Add(int64(1_000_000+i), toAdd[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(queriesRun.Load())/float64(b.N), "queries/add")
		})
	}
}
