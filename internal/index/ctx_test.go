package index

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"warping/internal/core"
	"warping/internal/ts"
)

// TestKNNCtxCancellationPrompt demonstrates the acceptance criterion: a
// context-cancelled query returns well within deadline + slack even when
// every candidate verification is artificially slow, while concurrent
// uncancelled queries on the same index complete normally.
func TestKNNCtxCancellationPrompt(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 300)
	q := randomWalk(r, testN)

	// kNN with k=5 performs at least five exact verifications (the first
	// five candidates fill the heap unconditionally), so the 5ms-per-hook
	// sleep forces >= 25ms of verification time: the deadline below fires
	// mid-query no matter how tightly the cascade prunes.
	const deadline = 20 * time.Millisecond
	const slack = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	var wg sync.WaitGroup
	var otherErr error
	var otherMatches []Match
	wg.Add(1)
	go func() {
		defer wg.Done()
		// An in-flight query with no deadline must be unaffected.
		var e error
		otherMatches, _, e = ix.KNNCtx(context.Background(), q, 5, 0.1, Limits{})
		otherErr = e
	}()

	start := time.Now()
	lim := Limits{CandidateHook: func() { time.Sleep(5 * time.Millisecond) }}
	matches, _, err := ix.KNNCtx(ctx, q, 5, 0.1, lim)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > deadline+slack {
		t.Errorf("cancelled query took %v, want < %v", elapsed, deadline+slack)
	}
	// Partial results are allowed but must never exceed k.
	if len(matches) > 5 {
		t.Errorf("partial result has %d matches, want <= 5", len(matches))
	}

	wg.Wait()
	if otherErr != nil {
		t.Errorf("concurrent query failed: %v", otherErr)
	}
	if len(otherMatches) != 5 {
		t.Errorf("concurrent query returned %d matches, want 5", len(otherMatches))
	}
}

func TestKNNCtxAlreadyCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	matches, _, err := ix.KNNCtx(ctx, randomWalk(r, testN), 3, 0.1, Limits{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if len(matches) != 0 {
		t.Errorf("got %d matches from a pre-cancelled query", len(matches))
	}
}

func TestRangeQueryCtxCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	ix, scan, _ := buildIndex(r, core.NewPAA(testN, testDim), 200)
	q := randomWalk(r, testN)
	// Pick an epsilon that yields plenty of verification work.
	full, _ := scan.RangeQuery(q, 40, 0.1)
	if len(full) == 0 {
		t.Skip("no matches at this epsilon; seed needs adjusting")
	}
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	lim := Limits{CandidateHook: func() {
		if !fired {
			fired = true
			cancel()
		}
	}}
	defer cancel()
	_, _, err := ix.RangeQueryCtx(ctx, q, 40, 0.1, lim)
	if fired && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled after mid-query cancel", err)
	}
}

func TestKNNCtxBudgetDegrades(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 200)
	q := randomWalk(r, testN)

	// Unlimited: exact, not degraded.
	_, stats, err := ix.KNNCtx(context.Background(), q, 10, 0.1, Limits{})
	if err != nil || stats.Degraded {
		t.Fatalf("unlimited query: err=%v degraded=%v", err, stats.Degraded)
	}
	if stats.ExactDTW < 2 {
		t.Skip("query too cheap to exercise the budget")
	}

	// Budget of 1: must stop early and flag degradation, not error.
	matches, stats2, err := ix.KNNCtx(context.Background(), q, 10, 0.1, Limits{MaxExactDTW: 1})
	if err != nil {
		t.Fatalf("budgeted query errored: %v", err)
	}
	if !stats2.Degraded {
		t.Error("budgeted query not marked degraded")
	}
	if stats2.ExactDTW > 1 {
		t.Errorf("budget 1 but %d exact DTW computations", stats2.ExactDTW)
	}
	if len(matches) > 10 {
		t.Errorf("%d matches exceed k", len(matches))
	}
}

func TestRangeQueryCtxBudgetDegrades(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 200)
	q := randomWalk(r, testN)
	_, stats, err := ix.RangeQueryCtx(context.Background(), q, 40, 0.1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExactDTW < 2 {
		t.Skip("query too cheap to exercise the budget")
	}
	_, stats2, err := ix.RangeQueryCtx(context.Background(), q, 40, 0.1, Limits{MaxExactDTW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Degraded || stats2.ExactDTW > 1 {
		t.Errorf("degraded=%v exactDTW=%d, want degraded with <= 1", stats2.Degraded, stats2.ExactDTW)
	}
}

// TestConcurrentQueriesRace exercises read-purity: many goroutines query
// the same index simultaneously (run under -race).
func TestConcurrentQueriesRace(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 300)
	qlist := make([]ts.Series, 8)
	for i := range qlist {
		qlist[i] = randomWalk(r, testN)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := qlist[i%len(qlist)]
			if i%2 == 0 {
				ix.KNN(q, 5, 0.1)
			} else {
				ix.RangeQuery(q, 30, 0.1)
			}
		}(i)
	}
	wg.Wait()
}
