// Batched multi-query execution: a small gather window groups concurrent
// in-flight query plans and executes each batch with one corpus sweep per
// shard instead of one per query. The spatial fetch (for all-range batches
// with feature boxes, a single merged-envelope search at the maximum
// epsilon; otherwise the full live-slot list) runs once per batch, the
// candidate slots are sorted ascending, and a single corpusReader streams
// them — so in paged mode every page is pinned once per batch, not once
// per query. The four-stage cascade still runs per (query, candidate)
// pair at that query's own threshold, so results are bit-identical to
// serial execution:
//
//   - every pruning stage is a sound lower bound (Theorem 1; Lemire's
//     two-pass argument for LB_Improved), so enumerating a candidate
//     superset can never add or drop a match — membership is decided
//     solely by the final exact banded DTW at the query's own epsilon
//     (or running kth-best cutoff), computed by the same kernel on the
//     same operands as the serial path;
//   - distances are the same math.Sqrt(SquaredBandedWithin) values, and
//     the final (distance, id) sortMatches gives the same tie-break order.
//
// QueryStats are the one deliberate divergence: candidate counts and
// page/node accesses reflect the shared batch sweep (each request reports
// the work of the sweep it rode), not the counts a lone serial query would
// have seen. The differential tests therefore compare matches, not stats.
package index

import (
	"context"
	"math"
	"slices"
	"sync"
	"time"

	"warping/internal/core"
	"warping/internal/gridfile"
	"warping/internal/rtree"
)

// DefaultBatchWindow is the gather window used when a Batcher is built
// with a non-positive window: long enough for concurrent arrivals at a few
// hundred QPS to coalesce, short enough to be invisible next to a DTW
// verification cascade.
const DefaultBatchWindow = 200 * time.Microsecond

// DefaultBatchMax is the batch size that flushes a gather window early.
const DefaultBatchMax = 16

// Batcher groups concurrent queries against one Sharded searcher into
// batches. The first request of a batch arms the gather window; the batch
// flushes when the window elapses or DefaultBatchMax requests are waiting,
// whichever comes first. A batch of one falls through to the serial path,
// so sparse traffic pays only the window's latency, never extra work.
// Batcher is safe for concurrent use.
type Batcher struct {
	sh       *Sharded
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending []*batchReq
}

// NewBatcher creates a batcher over sh. window <= 0 selects
// DefaultBatchWindow; maxBatch <= 0 selects DefaultBatchMax.
func NewBatcher(sh *Sharded, window time.Duration, maxBatch int) *Batcher {
	if window <= 0 {
		window = DefaultBatchWindow
	}
	if maxBatch <= 0 {
		maxBatch = DefaultBatchMax
	}
	return &Batcher{sh: sh, window: window, maxBatch: maxBatch}
}

// Window returns the configured gather window.
func (b *Batcher) Window() time.Duration { return b.window }

type batchOp uint8

const (
	opRange batchOp = iota
	opKNN
)

// batchReq is one in-flight query waiting for its batch to flush. done is
// buffered so the flusher never blocks on a slow requester.
type batchReq struct {
	ctx  context.Context
	p    *Plan
	op   batchOp
	eps  float64 // range threshold (opRange)
	k    int     // result size (opKNN)
	lim  Limits
	done chan batchOut
}

type batchOut struct {
	matches []Match
	stats   QueryStats
	err     error
}

// RangeQueryPlan is Sharded.RangeQueryPlan through the gather window:
// the call blocks for at most the window (plus execution) and may share
// its corpus sweep with other queries that arrived inside it.
func (b *Batcher) RangeQueryPlan(ctx context.Context, p *Plan, epsilon float64, lim Limits) ([]Match, QueryStats, error) {
	return b.submit(&batchReq{ctx: ctx, p: p, op: opRange, eps: epsilon, lim: lim, done: make(chan batchOut, 1)})
}

// KNNPlan is Sharded.KNNPlan through the gather window; see RangeQueryPlan.
func (b *Batcher) KNNPlan(ctx context.Context, p *Plan, k int, lim Limits) ([]Match, QueryStats, error) {
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	return b.submit(&batchReq{ctx: ctx, p: p, op: opKNN, k: k, lim: lim, done: make(chan batchOut, 1)})
}

func (b *Batcher) submit(r *batchReq) ([]Match, QueryStats, error) {
	b.mu.Lock()
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.maxBatch {
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()
		b.run(batch)
	} else {
		if len(b.pending) == 1 {
			time.AfterFunc(b.window, b.flush)
		}
		b.mu.Unlock()
	}
	out := <-r.done
	return out.matches, out.stats, out.err
}

// flush drains whatever gathered during the window. A batch that already
// flushed on size leaves pending empty and this fire is a no-op.
func (b *Batcher) flush() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) > 0 {
		b.run(batch)
	}
}

// run executes one batch and delivers each request's result. A batch of
// one is exactly the serial path (same code, same stats); larger batches
// fan one shared sweep per shard across the shards in parallel, then merge
// per request.
func (b *Batcher) run(reqs []*batchReq) {
	if len(reqs) == 1 {
		r := reqs[0]
		var out batchOut
		switch r.op {
		case opRange:
			out.matches, out.stats, out.err = b.sh.RangeQueryPlan(r.ctx, r.p, r.eps, r.lim)
		default:
			out.matches, out.stats, out.err = b.sh.KNNPlan(r.ctx, r.p, r.k, r.lim)
		}
		r.done <- out
		return
	}
	nsh := len(b.sh.shards)
	if nsh > 1 {
		// Couple each request's per-shard sub-sweeps exactly as the serial
		// fan-out does: one shared exact-DTW budget and, for kNN, the
		// cross-shard kth-best bound.
		for _, r := range reqs {
			if r.lim.shared == nil {
				r.lim.shared = newSharedQuery(r.lim.MaxExactDTW, nsh)
			}
		}
	}
	perShard := make([][]batchOut, nsh)
	var wg sync.WaitGroup
	for i, s := range b.sh.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			s.mu.RLock()
			defer s.mu.RUnlock()
			perShard[i] = sweepShard(s.s, reqs)
		}(i, s)
	}
	wg.Wait()
	for j, r := range reqs {
		var out []Match
		var stats QueryStats
		var err error
		for i := range perShard {
			res := perShard[i][j]
			out = append(out, res.matches...)
			stats.add(res.stats)
			if res.err != nil && err == nil {
				err = res.err
			}
		}
		sortMatches(out)
		if r.op == opKNN && len(out) > r.k {
			out = out[:r.k]
		}
		r.done <- batchOut{matches: out, stats: stats, err: err}
	}
}

// batchCand is one candidate of a shard's shared sweep.
type batchCand struct {
	slot int32
	id   int64
}

// batchExec is the per-(shard, request) verification state of one shared
// sweep: the request's own thresholds and cascade constants, its running
// matches, and its private stats.
type batchExec struct {
	req  *batchReq
	fe   *core.FeatureEnvelope
	rq   rangeQuery // opRange
	ks   knnState   // opKNN
	best topK       // opKNN result heap (not scratch-pooled: the sweep owns it)

	out   []Match
	stats QueryStats
	err   error
	done  bool
}

// sweepShard runs every request of a batch over one shard with a single
// candidate fetch and a single slot-ordered corpus pass. Requests are
// independent: each keeps its own cascade thresholds, budget, hook,
// context and result list, and a request that finishes early (cancelled,
// budget-exhausted) just stops participating in the sweep.
func sweepShard(s Searcher, reqs []*batchReq) []batchOut {
	st := corpusOf(s)
	v := getVerifier()
	defer putVerifier(v)

	execs := make([]batchExec, len(reqs))
	for i, r := range reqs {
		e := &execs[i]
		e.req = r
		e.fe = r.p.featureEnvelope()
		if r.op == opRange {
			// The sweep enumerates a shared candidate superset, so the fine
			// feature box is applied inside the cascade (the linear-scan
			// form) rather than spatially.
			e.rq = rangeQuery{q: r.p.q, env: r.p.env, fe: e.fe, cfe: r.p.coarseEnvelope(), band: r.p.band, eps2: r.eps * r.eps, useLB: true}
		} else {
			e.best = topK{k: r.k}
			e.ks = knnState{v: v, q: r.p.q, env: r.p.env, cfe: r.p.coarseEnvelope(), band: r.p.band, best: &e.best, lim: r.lim, stats: &e.stats, useLB: true}
		}
	}

	cands, logical, misses := batchCandidates(s, st, reqs)
	r := st.reader()
	live := len(reqs)
	for _, c := range cands {
		if live == 0 {
			break
		}
		var ent entry
		resolved := false
		for i := range execs {
			e := &execs[i]
			if e.done {
				continue
			}
			if err := e.req.ctx.Err(); err != nil {
				e.err, e.done = err, true
				live--
				continue
			}
			if !resolved {
				var rerr error
				if ent, rerr = r.at(int(c.slot)); rerr != nil {
					// A torn spill read fails every request still sweeping
					// this shard; the merged error surfaces per request.
					for j := range execs {
						if !execs[j].done {
							execs[j].err, execs[j].done = rerr, true
						}
					}
					live = 0
					break
				}
				resolved = true
			}
			if e.req.op == opRange {
				e.stepRange(v, c.id, ent)
			} else {
				e.stepKNN(c.id, ent)
			}
			if e.done {
				live--
			}
		}
	}
	sweepMisses := r.misses()
	r.release()

	res := make([]batchOut, len(reqs))
	for i := range execs {
		e := &execs[i]
		if e.req.op == opKNN {
			e.out = append(e.out, e.best.m...)
			sortMatches(e.out)
			if len(e.out) > e.req.k {
				e.out = e.out[:e.req.k]
			}
		}
		// Shared-sweep accounting: every rider reports the batch's fetch and
		// I/O (the sweep ran once on their collective behalf).
		e.stats.LogicalPages += logical
		if st.paged != nil {
			e.stats.PageAccesses += misses + sweepMisses
		} else {
			e.stats.PageAccesses += logical
		}
		res[i] = batchOut{matches: e.out, stats: e.stats, err: e.err}
	}
	return res
}

// stepRange verifies one candidate for one range request: the exact loop
// body of the serial verifyRange (budget, cascade at the request's own
// eps², DTW kernel), so a completed sweep yields the identical match set.
func (e *batchExec) stepRange(v *verifier, id int64, ent entry) {
	lim := e.req.lim
	if lim.exhausted(e.stats.ExactDTW) {
		e.stats.Degraded = true
		e.done = true
		return
	}
	e.stats.Candidates++
	o := v.rangeCascade(ent, &e.rq)
	countStage(&e.stats, o)
	if o != lbPassed {
		return
	}
	if !lim.reserveDTW(e.stats.ExactDTW) {
		e.stats.Degraded = true
		e.done = true
		return
	}
	e.stats.LBSurvivors++
	if lim.CandidateHook != nil {
		lim.CandidateHook()
	}
	e.stats.ExactDTW++
	if d2, ok := v.ws.SquaredBandedWithin(ent.x, e.rq.q, e.rq.band, e.rq.eps2); ok {
		e.out = append(e.out, Match{ID: id, Dist: math.Sqrt(d2)})
	}
}

// stepKNN verifies one candidate for one kNN request: a feature-box gate
// at the running cutoff (the grid backend's expanding-ring pattern — a
// sound Theorem 1 prune, so skipped candidates provably cannot enter the
// top-k), then the shared knnState refinement.
func (e *batchExec) stepKNN(id int64, ent entry) {
	if e.fe != nil {
		if c := e.ks.cutoff(); !math.IsInf(c, 1) && core.SquaredDistToBox(ent.feat, *e.fe) > c*c {
			return
		}
	}
	if !e.ks.refine(e.req.ctx, id, ent) {
		e.err = e.ks.err
		e.done = true
	}
}

// batchCandidates builds the shared candidate list of one shard's sweep,
// sorted by slot so the corpus pass is sequential (and, paged, pins each
// page once). All-range batches whose plans carry feature boxes fetch
// through the shard's spatial structure with the elementwise-merged box at
// the maximum epsilon — a superset of every request's own fetch region, so
// no request can lose a candidate it would have seen serially. Batches
// with a kNN request (no epsilon to bound the fetch at flush time) or a
// box-less plan sweep every live slot instead. Returns the fetch's logical
// node/bucket accesses and real page misses.
func batchCandidates(s Searcher, st *corpus, reqs []*batchReq) (cands []batchCand, logical, misses int) {
	mergeable := true
	for _, r := range reqs {
		if r.op != opRange || !r.p.hasFE {
			mergeable = false
			break
		}
	}
	if mergeable {
		if c, l, m, ok := mergedFetch(s, st, reqs); ok {
			cands, logical, misses = c, l, m
		} else {
			mergeable = false
		}
	}
	if !mergeable {
		for slot, id := range st.ids {
			if st.alive[slot] {
				cands = append(cands, batchCand{slot: int32(slot), id: id})
			}
		}
		return cands, 0, 0
	}
	slices.SortFunc(cands, func(a, b batchCand) int {
		switch {
		case a.slot < b.slot:
			return -1
		case a.slot > b.slot:
			return 1
		}
		return 0
	})
	return cands, logical, misses
}

// mergedFetch runs one spatial search covering every request of an
// all-range batch. ok is false when the backend has no mergeable spatial
// structure (linear scan) or the paged base read failed — the caller then
// falls back to the exhaustive live-slot sweep, which is always a sound
// superset.
func mergedFetch(s Searcher, st *corpus, reqs []*batchReq) (cands []batchCand, logical, misses int, ok bool) {
	lo := slices.Clone(reqs[0].p.fe.Lower)
	hi := slices.Clone(reqs[0].p.fe.Upper)
	maxEps := reqs[0].eps
	for _, r := range reqs[1:] {
		for d := range lo {
			lo[d] = math.Min(lo[d], r.p.fe.Lower[d])
			hi[d] = math.Max(hi[d], r.p.fe.Upper[d])
		}
		maxEps = math.Max(maxEps, r.eps)
	}
	switch ix := s.(type) {
	case *Index:
		var tstats rtree.Stats
		box := rtree.Rect{Lo: lo, Hi: hi}
		items := ix.tree.RangeSearchRectInto(box, maxEps, nil, &tstats)
		if ix.ptree != nil {
			nDelta := len(items)
			all, err := ix.ptree.RangeSearchInto(box, maxEps, items, &tstats)
			if err != nil {
				return nil, 0, 0, false
			}
			live := all[:nDelta]
			for _, it := range all[nDelta:] {
				if st.alive[it.Slot] {
					live = append(live, it)
				}
			}
			items = live
		}
		for _, it := range items {
			cands = append(cands, batchCand{slot: it.Slot, id: it.ID})
		}
		return cands, tstats.NodeAccesses, tstats.PageMisses, true
	case *GridIndex:
		var gstats gridfile.Stats
		items := ix.grid.RangeSearchBoxInto(lo, hi, maxEps, nil, &gstats)
		for _, it := range items {
			cands = append(cands, batchCand{slot: it.Slot, id: it.ID})
		}
		return cands, gstats.BucketAccesses, 0, true
	}
	return nil, 0, 0, false
}
