package index

import (
	"math"
	"sort"

	"warping/internal/dtw"
	"warping/internal/ts"
)

// LinearScan is the brute-force baseline (the approach of the direct-audio
// matchers the paper criticizes as "very slow"): every query computes DTW
// against every database series, optionally short-circuited by the
// full-dimensional LB_Keogh bound.
type LinearScan struct {
	ids    []int64
	series []ts.Series
	n      int
	// UseLB enables the envelope lower-bound pre-check (global
	// lower-bounding pipeline of Yi et al.); disable for the pure
	// brute-force baseline.
	UseLB bool
}

// NewLinearScan creates an empty scan baseline for series of length n.
func NewLinearScan(n int, useLB bool) *LinearScan {
	return &LinearScan{n: n, UseLB: useLB}
}

// Add appends a series.
func (s *LinearScan) Add(id int64, x ts.Series) {
	if len(x) != s.n {
		panic("index: linear scan series length mismatch")
	}
	s.ids = append(s.ids, id)
	s.series = append(s.series, x)
}

// Len returns the database size.
func (s *LinearScan) Len() int { return len(s.ids) }

// RangeQuery returns all matches within epsilon under banded DTW with
// warping width delta. Stats report exact-DTW invocations; Candidates is
// always the full database size (no index pruning).
func (s *LinearScan) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	k := dtw.BandRadius(s.n, delta)
	env := dtw.NewEnvelope(q, k)
	stats := QueryStats{Candidates: len(s.ids)}
	var out []Match
	for i, x := range s.series {
		if s.UseLB {
			if dtw.DistToEnvelope(x, env) > epsilon {
				continue
			}
		}
		stats.LBSurvivors++
		stats.ExactDTW++
		if d2, ok := dtw.SquaredBandedWithin(x, q, k, epsilon*epsilon); ok {
			out = append(out, Match{ID: s.ids[i], Dist: math.Sqrt(d2)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out, stats
}

// KNN returns the k nearest series under banded DTW, closest first.
func (s *LinearScan) KNN(q ts.Series, k int, delta float64) ([]Match, QueryStats) {
	if k <= 0 {
		return nil, QueryStats{}
	}
	band := dtw.BandRadius(s.n, delta)
	env := dtw.NewEnvelope(q, band)
	stats := QueryStats{Candidates: len(s.ids)}
	best := newTopK(k)
	for i, x := range s.series {
		if s.UseLB && best.full() {
			if dtw.DistToEnvelope(x, env) > best.worst() {
				continue
			}
		}
		stats.LBSurvivors++
		stats.ExactDTW++
		best.offer(Match{ID: s.ids[i], Dist: dtw.Banded(x, q, band)})
	}
	return best.sorted(), stats
}
