package index

import (
	"context"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/ts"
)

// LinearScan is the brute-force baseline (the approach of the direct-audio
// matchers the paper criticizes as "very slow"): every query verifies
// against every database series, optionally short-circuited by the same
// lower-bound cascade as the indexed backends. It implements Searcher, so
// it gains context cancellation, Limits/Degraded budgets and QueryStats
// accounting; PageAccesses is always zero (there is no index structure to
// page through).
type LinearScan struct {
	st corpus
	// ids preserves insertion order so candidate verification (and its
	// stats) is deterministic, matching the pre-Searcher behavior.
	ids []int64
	// UseLB enables the lower-bound cascade pre-check (global
	// lower-bounding pipeline of Yi et al.); disable for the pure
	// brute-force baseline.
	UseLB bool
}

// NewLinearScan creates an empty scan baseline for series of length n,
// with no feature transform (the cascade skips the feature-box pre-check).
func NewLinearScan(n int, useLB bool) *LinearScan {
	return &LinearScan{st: newCorpus(nil, n), UseLB: useLB}
}

// NewLinearScanTransform is NewLinearScan with a feature transform: the
// cascade then also applies the O(dim) feature-box pre-check, making the
// scan the strongest non-indexed baseline (and the BackendScan Searcher).
func NewLinearScanTransform(t core.Transform, useLB bool) *LinearScan {
	return &LinearScan{st: newCorpus(t, 0), UseLB: useLB}
}

// Add appends a series. The series must have length SeriesLen() and a new
// id; violations return an error (previously this panicked — the Searcher
// contract forbids that).
func (s *LinearScan) Add(id int64, x ts.Series) error {
	if _, err := s.st.add(id, x); err != nil {
		return err
	}
	s.ids = append(s.ids, id)
	return nil
}

// Remove deletes the series stored under id. It returns false when the id
// is unknown.
func (s *LinearScan) Remove(id int64) bool {
	if _, ok := s.st.remove(id); !ok {
		return false
	}
	for i, v := range s.ids {
		if v == id {
			s.ids = append(s.ids[:i], s.ids[i+1:]...)
			break
		}
	}
	return true
}

// Len returns the database size.
func (s *LinearScan) Len() int { return len(s.ids) }

// SeriesLen returns the required series length n.
func (s *LinearScan) SeriesLen() int { return s.st.n }

// Get returns the stored series for an id.
func (s *LinearScan) Get(id int64) (ts.Series, bool) { return s.st.get(id) }

// Visit calls fn for every stored (id, series) pair, in unspecified order.
func (s *LinearScan) Visit(fn func(id int64, x ts.Series)) { s.st.visit(fn) }

// RangeQuery returns all matches within epsilon under banded DTW with
// warping width delta. Stats report exact-DTW invocations; Candidates is
// always the full database size (no index pruning).
func (s *LinearScan) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	out, stats, _ := s.RangeQueryCtx(context.Background(), q, epsilon, delta, Limits{})
	return out, stats
}

// RangeQueryCtx implements Searcher: every stored series is a candidate,
// refined through the same shared cascade (feature-box pre-check when a
// transform is present, LB_Keogh, reversed pass, budgeted DTW) as the
// indexed backends. A query of the wrong length returns ErrQueryLength.
func (s *LinearScan) RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := s.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	k := dtw.BandRadius(s.st.n, delta)
	env := dtw.NewEnvelope(q, k)
	var stats QueryStats
	stats.Candidates = len(s.ids)

	rq := &rangeQuery{q: q, env: env, band: k, eps2: epsilon * epsilon, useLB: s.UseLB}
	if s.st.transform != nil && s.UseLB {
		fe := s.st.transform.ApplyEnvelope(env)
		rq.fe = &fe
	}
	out, err := verifyRange(ctx, &s.st, rq, s.ids, int64ID, lim, &stats)
	sortMatches(out)
	return out, stats, err
}

func int64ID(id int64) int64 { return id }

// KNN returns the k nearest series under banded DTW, closest first.
func (s *LinearScan) KNN(q ts.Series, k int, delta float64) ([]Match, QueryStats) {
	out, stats, _ := s.KNNCtx(context.Background(), q, k, delta, Limits{})
	return out, stats
}

// KNNCtx implements Searcher: a single pass over the database through the
// shared kNN refinement (cascade at the running kth-best cutoff when UseLB
// is set; full DTW per series otherwise). A query of the wrong length
// returns ErrQueryLength.
func (s *LinearScan) KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := s.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	band := dtw.BandRadius(s.st.n, delta)
	env := dtw.NewEnvelope(q, band)

	v := getVerifier()
	defer putVerifier(v)

	var stats QueryStats
	st := &knnState{v: v, q: q, env: env, band: band, best: newTopK(k), lim: lim, stats: &stats, useLB: s.UseLB}
	for _, id := range s.ids {
		if !st.refine(ctx, id, s.st.series[id]) {
			break
		}
	}
	return st.best.sorted(), stats, st.err
}
