package index

import (
	"context"

	"warping/internal/core"
	"warping/internal/ts"
)

// LinearScan is the brute-force baseline (the approach of the direct-audio
// matchers the paper criticizes as "very slow"): every query verifies
// against every database series, optionally short-circuited by the same
// lower-bound cascade as the indexed backends. It implements Searcher, so
// it gains context cancellation, Limits/Degraded budgets and QueryStats
// accounting; LogicalPages is always zero (there is no index structure to
// page through), and PageAccesses counts the corpus-column pool misses when
// the scan runs out-of-core. Candidates stream straight out of the columnar
// arena in slot (= insertion) order, so verification (and its stats) is
// deterministic.
type LinearScan struct {
	st corpus
	// UseLB enables the lower-bound cascade pre-check (global
	// lower-bounding pipeline of Yi et al.); disable for the pure
	// brute-force baseline.
	UseLB bool
}

// NewLinearScan creates an empty scan baseline for series of length n,
// with no feature transform (the cascade skips the feature-box pre-check).
func NewLinearScan(n int, useLB bool) *LinearScan {
	return &LinearScan{st: newCorpus(nil, n), UseLB: useLB}
}

// NewLinearScanTransform is NewLinearScan with a feature transform: the
// cascade then also applies the O(dim) feature-box pre-check, making the
// scan the strongest non-indexed baseline (and the BackendScan Searcher).
func NewLinearScanTransform(t core.Transform, useLB bool) *LinearScan {
	return &LinearScan{st: newCorpus(t, 0), UseLB: useLB}
}

// Add appends a series. The series must have length SeriesLen() and a new
// id; violations return an error (previously this panicked — the Searcher
// contract forbids that).
func (s *LinearScan) Add(id int64, x ts.Series) error {
	_, _, err := s.st.add(id, x)
	return err
}

// Remove deletes the series stored under id. It returns false when the id
// is unknown. When tombstones come to dominate the arena it compacts; the
// scan has no spatial structure to rebuild afterwards.
func (s *LinearScan) Remove(id int64) bool {
	if _, ok := s.st.remove(id); !ok {
		return false
	}
	if s.st.shouldCompact() {
		if s.st.paged != nil {
			// All-or-nothing; on failure the tombstones stay and the next
			// removal retries.
			_ = s.st.compactPagedCols()
		} else {
			s.st.compact()
		}
	}
	return true
}

// Close releases the scan's spill files (paged mode; no-op in RAM).
func (s *LinearScan) Close() error { return s.st.close() }

// Len returns the database size.
func (s *LinearScan) Len() int { return s.st.len() }

// SeriesLen returns the required series length n.
func (s *LinearScan) SeriesLen() int { return s.st.n }

// Get returns the stored series for an id.
func (s *LinearScan) Get(id int64) (ts.Series, bool) { return s.st.get(id) }

// Visit calls fn for every stored (id, series) pair, in insertion order.
func (s *LinearScan) Visit(fn func(id int64, x ts.Series)) { s.st.visit(fn) }

// RangeQuery returns all matches within epsilon under banded DTW with
// warping width delta. Stats report exact-DTW invocations; Candidates is
// always the full database size (no index pruning).
func (s *LinearScan) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	out, stats, _ := s.RangeQueryCtx(context.Background(), q, epsilon, delta, Limits{})
	return out, stats
}

// RangeQueryCtx implements Searcher: every stored series is a candidate,
// refined through the same shared cascade (coarse New_PAA and feature-box
// pre-checks when present, LB_Keogh, LB_Improved, budgeted DTW) as the
// indexed backends. A query of the wrong length returns ErrQueryLength.
func (s *LinearScan) RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := s.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	p := makePlan(q, delta, s.st.n, s.st.transform, s.st.coarse)
	sc := getScratch()
	out, stats, err := s.rangePlan(ctx, p, epsilon, lim, sc)
	return finish(out, sc, true), stats, err
}

func (s *LinearScan) rangePlan(ctx context.Context, p *Plan, epsilon float64, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	sc.slots = s.st.liveSlots(sc.slots[:0])
	var stats QueryStats
	stats.Candidates = len(sc.slots)

	rq := &rangeQuery{q: p.q, env: p.env, band: p.band, eps2: epsilon * epsilon, useLB: s.UseLB}
	if s.UseLB {
		rq.fe = p.featureEnvelope()
		rq.cfe = p.coarseEnvelope()
	}
	out, err := verifyRange(ctx, &s.st, rq, sc.slots, slotCand, lim, &stats, sc.out[:0])
	sc.out = out
	return out, stats, err
}

// KNN returns the k nearest series under banded DTW, closest first.
func (s *LinearScan) KNN(q ts.Series, k int, delta float64) ([]Match, QueryStats) {
	out, stats, _ := s.KNNCtx(context.Background(), q, k, delta, Limits{})
	return out, stats
}

// KNNCtx implements Searcher: a single pass over the database through the
// shared kNN refinement (cascade at the running kth-best cutoff when UseLB
// is set; full DTW per series otherwise). A query of the wrong length
// returns ErrQueryLength.
func (s *LinearScan) KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := s.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	p := makePlan(q, delta, s.st.n, s.st.transform, s.st.coarse)
	sc := getScratch()
	out, stats, err := s.knnPlan(ctx, p, k, lim, sc)
	return finish(out, sc, false), stats, err
}

func (s *LinearScan) knnPlan(ctx context.Context, p *Plan, k int, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	v := getVerifier()
	defer putVerifier(v)

	var stats QueryStats
	st := &knnState{v: v, q: p.q, env: p.env, cfe: p.coarseEnvelope(), band: p.band, best: sc.topK(k), lim: lim, stats: &stats, useLB: s.UseLB}
	r := s.st.reader()
	defer r.release()
	for slot, id := range s.st.ids {
		if !s.st.alive[slot] {
			continue
		}
		e, err := r.at(slot)
		if err != nil {
			st.err = err
			break
		}
		if !st.refine(ctx, id, e) {
			break
		}
	}
	stats.PageAccesses += r.misses()
	return st.best.sortedInto(sc), stats, st.err
}
