package index

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/ts"
)

// compactionsOf sums arena compaction counts across the (possibly
// sharded) backend — white-box observability for the churn test.
func compactionsOf(s Searcher) int {
	switch b := s.(type) {
	case *Index:
		return b.st.compactions
	case *GridIndex:
		return b.st.compactions
	case *LinearScan:
		return b.st.compactions
	case *Sharded:
		total := 0
		for _, sh := range b.shards {
			total += compactionsOf(sh.s)
		}
		return total
	}
	return 0
}

// TestChurnCompactionBackendsAgree drives every backend × shard count
// through the same heavy interleaved Add/Remove script — waves of inserts
// followed by removal bursts sized to push tombstones past the arena's
// compaction threshold — and checks after every wave that all backends
// still return bit-identical range and kNN results, that removed ids are
// gone and survivors read back with the right values, and (white-box)
// that the churn really did force at least one compaction per backend.
// Run under -race this also exercises compaction against the parallel
// fan-out and verification paths.
func TestChurnCompactionBackendsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(411))
	tr := core.NewPAA(testN, testDim)

	type backend struct {
		name string
		s    Searcher
	}
	var backends []backend
	for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
		s, err := NewBackend(kind, tr, Config{})
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, backend{string(kind), s})
		for _, shards := range []int{2, 5} {
			sh, err := NewSharded(kind, tr, Config{}, shards)
			if err != nil {
				t.Fatal(err)
			}
			backends = append(backends, backend{fmt.Sprintf("%s-sharded-%d", kind, shards), sh})
		}
	}

	live := make(map[int64]ts.Series)
	var liveIDs []int64
	next := int64(0)
	ctx := context.Background()

	applyAll := func(op string, fn func(s Searcher) error) {
		t.Helper()
		for _, b := range backends {
			if err := fn(b.s); err != nil {
				t.Fatalf("%s: %s: %v", b.name, op, err)
			}
		}
	}

	const waves = 6
	for wave := 0; wave < waves; wave++ {
		// Insert a wave of fresh series into every backend.
		for i := 0; i < 120; i++ {
			id := next
			next++
			x := randomWalk(r, testN)
			live[id] = x
			liveIDs = append(liveIDs, id)
			applyAll(fmt.Sprintf("Add(%d)", id), func(s Searcher) error { return s.Add(id, x) })
		}
		// Remove a burst of random survivors: enough dead slots per wave
		// that tombstones overtake live entries and trigger compaction.
		r.Shuffle(len(liveIDs), func(i, j int) { liveIDs[i], liveIDs[j] = liveIDs[j], liveIDs[i] })
		burst := 80
		if burst > len(liveIDs)-20 {
			burst = len(liveIDs) - 20
		}
		for i := 0; i < burst; i++ {
			id := liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			delete(live, id)
			applyAll(fmt.Sprintf("Remove(%d)", id), func(s Searcher) error {
				if !s.Remove(id) {
					return fmt.Errorf("live id not found")
				}
				return nil
			})
		}

		// Every backend agrees with the reference on size and content.
		for _, b := range backends {
			if b.s.Len() != len(live) {
				t.Fatalf("wave %d: %s: Len = %d, want %d", wave, b.name, b.s.Len(), len(live))
			}
		}
		// Spot-check values and misses on one sharded and one single backend.
		for _, b := range []backend{backends[0], backends[len(backends)-1]} {
			for _, id := range liveIDs[:10] {
				got, ok := b.s.Get(id)
				if !ok {
					t.Fatalf("wave %d: %s: Get(%d) missed a live id", wave, b.name, id)
				}
				want := live[id]
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("wave %d: %s: Get(%d)[%d] = %v, want %v", wave, b.name, id, j, got[j], want[j])
					}
				}
			}
			if _, ok := b.s.Get(next + 1000); ok {
				t.Fatalf("wave %d: %s: Get hit an id never added", wave, b.name)
			}
		}

		// Differential queries: identical ids and distances everywhere.
		q := randomWalk(r, testN)
		epsilon := float64(testN) * (0.03 + r.Float64()*0.05)
		delta := 0.05 + r.Float64()*0.1
		k := 3 + r.Intn(10)
		wantRange, _, err := backends[0].s.RangeQueryCtx(ctx, q, epsilon, delta, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		wantKNN, _, err := backends[0].s.KNNCtx(ctx, q, k, delta, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range backends[1:] {
			gotRange, _, err := b.s.RangeQueryCtx(ctx, q, epsilon, delta, Limits{})
			if err != nil {
				t.Fatalf("%s: range: %v", b.name, err)
			}
			diffMatches(t, fmt.Sprintf("wave %d/%s/range", wave, b.name), gotRange, wantRange)
			gotKNN, _, err := b.s.KNNCtx(ctx, q, k, delta, Limits{})
			if err != nil {
				t.Fatalf("%s: knn: %v", b.name, err)
			}
			diffMatches(t, fmt.Sprintf("wave %d/%s/knn", wave, b.name), gotKNN, wantKNN)
		}
	}

	// The script must actually have exercised compaction, or the test
	// proves nothing about post-compaction correctness.
	for _, b := range backends {
		if compactionsOf(b.s) == 0 {
			t.Errorf("%s: churn script never triggered a compaction", b.name)
		}
	}
}

// countingEnvTransform counts ApplyEnvelope calls atomically: without
// plan sharing each fan-out shard (and each growth round) would call it
// from its own goroutine.
type countingEnvTransform struct {
	core.Transform
	envApplies atomic.Int64
}

func (c *countingEnvTransform) ApplyEnvelope(e dtw.Envelope) core.FeatureEnvelope {
	c.envApplies.Add(1)
	return c.Transform.ApplyEnvelope(e)
}

// TestApplyEnvelopeOncePerLogicalQuery is the plan-sharing acceptance
// test: one logical query runs the envelope transform exactly once, no
// matter the backend, the shard count, or how many times a precomputed
// plan is reused.
func TestApplyEnvelopeOncePerLogicalQuery(t *testing.T) {
	r := rand.New(rand.NewSource(412))
	ctx := context.Background()
	for _, shards := range []int{1, 4, 7} {
		for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
			name := fmt.Sprintf("%s-%d", kind, shards)
			tr := &countingEnvTransform{Transform: core.NewPAA(testN, testDim)}
			sh, err := NewSharded(kind, tr, Config{}, shards)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 150; i++ {
				if err := sh.Add(int64(i), randomWalk(r, testN)); err != nil {
					t.Fatal(err)
				}
			}
			q := randomWalk(r, testN)

			tr.envApplies.Store(0)
			if _, _, err := sh.RangeQueryCtx(ctx, q, float64(testN)*0.05, 0.1, Limits{}); err != nil {
				t.Fatal(err)
			}
			if got := tr.envApplies.Load(); got != 1 {
				t.Errorf("%s: RangeQueryCtx ran ApplyEnvelope %d times, want 1", name, got)
			}

			tr.envApplies.Store(0)
			if _, _, err := sh.KNNCtx(ctx, q, 5, 0.1, Limits{}); err != nil {
				t.Fatal(err)
			}
			if got := tr.envApplies.Load(); got != 1 {
				t.Errorf("%s: KNNCtx ran ApplyEnvelope %d times, want 1", name, got)
			}

			// An explicitly shared plan amortizes across any number of
			// queries — the qbh growth loop's reuse pattern.
			tr.envApplies.Store(0)
			p, err := sh.NewPlan(q, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, _, err := sh.RangeQueryPlan(ctx, p, float64(testN)*0.05, Limits{}); err != nil {
					t.Fatal(err)
				}
				if _, _, err := sh.KNNPlan(ctx, p, 4+i, Limits{}); err != nil {
					t.Fatal(err)
				}
			}
			if got := tr.envApplies.Load(); got != 1 {
				t.Errorf("%s: plan reused 6 times ran ApplyEnvelope %d times, want 1", name, got)
			}
		}
	}
}
