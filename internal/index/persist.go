package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"warping/internal/core"
	"warping/internal/store"
	"warping/internal/ts"
)

// persistFormat versions the gob payload; bump on incompatible change.
const persistFormat = 1

// SnapshotKind identifies an index snapshot container.
const SnapshotKind = "qbh/index"

const sectionIndex = "index"

// persisted is the gob payload. The R*-tree is not serialized — it is
// rebuilt deterministically from the series on load, which keeps the format
// small and immune to internal tree-layout changes.
type persisted struct {
	Format    int
	Transform core.Snapshot
	IDs       []int64
	Series    []ts.Series
}

// Save writes the index to w: the transform (including fitted SVD
// matrices) and all stored series as a gob payload, wrapped in a
// checksummed store container. The search tree is rebuilt on Load.
func (ix *Index) Save(w io.Writer) error {
	snap, err := core.SnapshotOf(ix.transform)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	p := persisted{Format: persistFormat, Transform: snap}
	p.IDs = make([]int64, 0, len(ix.series))
	for id := range ix.series {
		p.IDs = append(p.IDs, id)
	}
	sort.Slice(p.IDs, func(i, j int) bool { return p.IDs[i] < p.IDs[j] })
	p.Series = make([]ts.Series, len(p.IDs))
	for i, id := range p.IDs {
		p.Series[i] = ix.series[id].x
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return fmt.Errorf("index: encoding: %w", err)
	}
	return store.WriteContainer(w, SnapshotKind, []store.Section{
		{Name: sectionIndex, Data: payload.Bytes()},
	})
}

// Load reads an index previously written by Save. The tree configuration of
// the reconstructed index comes from cfg (it is not part of the format).
// Corrupt, truncated or foreign input is rejected with the store package's
// typed errors before any gob decoding runs.
func Load(r io.Reader, cfg Config) (*Index, error) {
	kind, sections, err := store.ReadContainer(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading snapshot: %w", err)
	}
	if kind != SnapshotKind {
		return nil, fmt.Errorf("index: %w: got %q, want %q", store.ErrKind, kind, SnapshotKind)
	}
	var payload []byte
	for _, s := range sections {
		if s.Name == sectionIndex {
			payload = s.Data
		}
	}
	if payload == nil {
		return nil, fmt.Errorf("index: snapshot has no %q section", sectionIndex)
	}
	var p persisted
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("index: decoding: %w", err)
	}
	if p.Format != persistFormat {
		return nil, fmt.Errorf("index: unsupported format %d", p.Format)
	}
	if len(p.IDs) != len(p.Series) {
		return nil, fmt.Errorf("index: corrupt payload: %d ids, %d series", len(p.IDs), len(p.Series))
	}
	tr, err := core.FromSnapshot(p.Transform)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	ix := New(tr, cfg)
	for i, id := range p.IDs {
		if err := ix.Add(id, p.Series[i]); err != nil {
			return nil, fmt.Errorf("index: rebuilding: %w", err)
		}
	}
	return ix, nil
}
