package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"warping/internal/core"
	"warping/internal/ts"
)

// persistFormat versions the on-disk encoding; bump on incompatible change.
const persistFormat = 1

// persisted is the gob payload. The R*-tree is not serialized — it is
// rebuilt deterministically from the series on load, which keeps the format
// small and immune to internal tree-layout changes.
type persisted struct {
	Format    int
	Transform core.Snapshot
	IDs       []int64
	Series    []ts.Series
}

// Save writes the index to w in a self-contained binary format (gob). The
// format captures the transform (including fitted SVD matrices) and all
// stored series; the search tree is rebuilt on Load.
func (ix *Index) Save(w io.Writer) error {
	snap, err := core.SnapshotOf(ix.transform)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	p := persisted{Format: persistFormat, Transform: snap}
	p.IDs = make([]int64, 0, len(ix.series))
	for id := range ix.series {
		p.IDs = append(p.IDs, id)
	}
	sort.Slice(p.IDs, func(i, j int) bool { return p.IDs[i] < p.IDs[j] })
	p.Series = make([]ts.Series, len(p.IDs))
	for i, id := range p.IDs {
		p.Series[i] = ix.series[id].x
	}
	return gob.NewEncoder(w).Encode(p)
}

// Load reads an index previously written by Save. The tree configuration of
// the reconstructed index comes from cfg (it is not part of the format).
func Load(r io.Reader, cfg Config) (*Index, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("index: decoding: %w", err)
	}
	if p.Format != persistFormat {
		return nil, fmt.Errorf("index: unsupported format %d", p.Format)
	}
	if len(p.IDs) != len(p.Series) {
		return nil, fmt.Errorf("index: corrupt payload: %d ids, %d series", len(p.IDs), len(p.Series))
	}
	tr, err := core.FromSnapshot(p.Transform)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	ix := New(tr, cfg)
	for i, id := range p.IDs {
		if err := ix.Add(id, p.Series[i]); err != nil {
			return nil, fmt.Errorf("index: rebuilding: %w", err)
		}
	}
	return ix, nil
}
