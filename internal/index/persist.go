package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"warping/internal/core"
	"warping/internal/store"
	"warping/internal/ts"
)

// persistFormat versions the gob payload; bump on incompatible change.
// Format 2 stores the series as one flat arena section (IDs + Flat + N)
// mirroring the in-memory columnar corpus; format 1 (per-series slices)
// is still read.
const persistFormat = 2

// SnapshotKind identifies an index snapshot container.
const SnapshotKind = "qbh/index"

const sectionIndex = "index"

// persisted is the gob payload. The R*-tree is not serialized — it is
// rebuilt deterministically from the series on load, which keeps the format
// small and immune to internal tree-layout changes.
type persisted struct {
	Format    int
	Transform core.Snapshot
	IDs       []int64
	// Series carries the per-series payload of format-1 snapshots (read
	// compatibility only; format 2 writes Flat instead).
	Series []ts.Series
	// Flat is the format-2 series arena: series i at Flat[i*N:(i+1)*N],
	// in IDs order. One gob allocation for the whole corpus on both ends.
	Flat []float64
	N    int
}

// flatten gob-encodes ids plus the matching arena block: ids are sorted so
// saving the same corpus always produces identical bytes, and the series
// go out as one flat []float64 in id order. In paged mode the series stream
// out of the buffer pool; a spill read failure fails the snapshot loudly
// (always nil in RAM mode).
func flattenCorpus(st *corpus) ([]int64, []float64, error) {
	ids := make([]int64, 0, st.len())
	for id := range st.slots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	flat := make([]float64, 0, len(ids)*st.n)
	r := st.reader()
	defer r.release()
	for _, id := range ids {
		e, err := r.at(int(st.slots[id]))
		if err != nil {
			return nil, nil, err
		}
		flat = append(flat, e.x...)
	}
	return ids, flat, nil
}

// entriesOf reconstructs bulk-load entries from a decoded payload,
// accepting both the flat format-2 arena and format-1 per-series slices.
func (p *persisted) entries() ([]Entry, error) {
	if p.Format >= 2 {
		if p.N <= 0 && len(p.IDs) > 0 {
			return nil, fmt.Errorf("index: corrupt payload: series length %d", p.N)
		}
		if len(p.IDs)*p.N != len(p.Flat) {
			return nil, fmt.Errorf("index: corrupt payload: %d ids x len %d, %d samples", len(p.IDs), p.N, len(p.Flat))
		}
		entries := make([]Entry, len(p.IDs))
		for i, id := range p.IDs {
			entries[i] = Entry{ID: id, Series: ts.Series(p.Flat[i*p.N : (i+1)*p.N])}
		}
		return entries, nil
	}
	if len(p.IDs) != len(p.Series) {
		return nil, fmt.Errorf("index: corrupt payload: %d ids, %d series", len(p.IDs), len(p.Series))
	}
	entries := make([]Entry, len(p.IDs))
	for i, id := range p.IDs {
		entries[i] = Entry{ID: id, Series: p.Series[i]}
	}
	return entries, nil
}

// Save writes the index to w: the transform (including fitted SVD
// matrices) and all stored series as a gob payload — the series as one
// flat arena section mirroring the in-memory layout — wrapped in a
// checksummed store container. The search tree is rebuilt on Load.
func (ix *Index) Save(w io.Writer) error {
	snap, err := core.SnapshotOf(ix.st.transform)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	p := persisted{Format: persistFormat, Transform: snap, N: ix.st.n}
	if p.IDs, p.Flat, err = flattenCorpus(&ix.st); err != nil {
		return fmt.Errorf("index: snapshotting corpus: %w", err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return fmt.Errorf("index: encoding: %w", err)
	}
	return store.WriteContainer(w, SnapshotKind, []store.Section{
		{Name: sectionIndex, Data: payload.Bytes()},
	})
}

// Load reads an index previously written by Save. The tree configuration of
// the reconstructed index comes from cfg (it is not part of the format).
// Corrupt, truncated or foreign input is rejected with the store package's
// typed errors before any gob decoding runs.
func Load(r io.Reader, cfg Config) (*Index, error) {
	kind, sections, err := store.ReadContainer(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading snapshot: %w", err)
	}
	if kind != SnapshotKind {
		return nil, fmt.Errorf("index: %w: got %q, want %q", store.ErrKind, kind, SnapshotKind)
	}
	var payload []byte
	for _, s := range sections {
		if s.Name == sectionIndex {
			payload = s.Data
		}
	}
	if payload == nil {
		return nil, fmt.Errorf("index: snapshot has no %q section", sectionIndex)
	}
	var p persisted
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("index: decoding: %w", err)
	}
	if p.Format < 1 || p.Format > persistFormat {
		return nil, fmt.Errorf("index: unsupported format %d", p.Format)
	}
	entries, err := p.entries()
	if err != nil {
		return nil, err
	}
	tr, err := core.FromSnapshot(p.Transform)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	ix, err := BulkLoad(tr, cfg, entries)
	if err != nil {
		return nil, fmt.Errorf("index: rebuilding: %w", err)
	}
	return ix, nil
}

// ShardedSnapshotKind identifies a sharded-index snapshot container.
const ShardedSnapshotKind = "qbh/sharded-index"

const sectionShardedMeta = "meta"

// shardedMeta is the gob payload of the meta section: everything needed
// to reconstruct the empty shards before the per-shard sections stream in.
type shardedMeta struct {
	Format    int
	Backend   BackendKind
	Shards    int
	SeriesLen int
	Transform core.Snapshot
	// HasTransform distinguishes a transform-less scan backend.
	HasTransform bool
}

// shardPayload is the gob payload of one per-shard section. Format 2
// writes the shard's series as one flat arena (Flat, N); Series carries
// format-1 payloads for read compatibility.
type shardPayload struct {
	IDs    []int64
	Series []ts.Series
	Flat   []float64
	N      int
}

// Save writes the sharded index to w as one checksummed container with a
// meta section plus one section per shard ("shard-0", "shard-1", ...).
// Shards are gob-encoded in parallel; ids within a shard are sorted, so
// saving the same corpus always produces identical bytes. Save holds each
// shard's read lock only while copying that shard out, so queries (and
// writes to other shards) keep flowing during a snapshot.
func (sh *Sharded) Save(w io.Writer) error {
	meta := shardedMeta{
		Format:    persistFormat,
		Backend:   sh.kind,
		Shards:    len(sh.shards),
		SeriesLen: sh.SeriesLen(),
	}
	if tr := transformOf(sh.shards[0].s); tr != nil {
		snap, err := core.SnapshotOf(tr)
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		meta.Transform = snap
		meta.HasTransform = true
	}
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(meta); err != nil {
		return fmt.Errorf("index: encoding meta: %w", err)
	}
	sections := make([]store.Section, 1+len(sh.shards))
	sections[0] = store.Section{Name: sectionShardedMeta, Data: metaBuf.Bytes()}

	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i := range sh.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sh.shards[i]
			var p shardPayload
			s.mu.RLock()
			verr := corpusOf(s.s).visitErr(func(id int64, x ts.Series) {
				p.IDs = append(p.IDs, id)
				p.Series = append(p.Series, x)
			})
			s.mu.RUnlock()
			if verr != nil {
				errs[i] = fmt.Errorf("index: snapshotting shard %d: %w", i, verr)
				return
			}
			// Sort by id for deterministic bytes, then flatten the series
			// into one arena block (format 2); the per-series views held
			// here stay value-correct after the unlock because arena
			// generations are never mutated in place (and paged visits hand
			// out copies).
			sort.Sort(&shardSorter{p: &p})
			p.N = meta.SeriesLen
			p.Flat = make([]float64, 0, len(p.IDs)*p.N)
			for _, x := range p.Series {
				p.Flat = append(p.Flat, x...)
			}
			p.Series = nil
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(p); err != nil {
				errs[i] = fmt.Errorf("index: encoding shard %d: %w", i, err)
				return
			}
			sections[1+i] = store.Section{Name: fmt.Sprintf("shard-%d", i), Data: buf.Bytes()}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return store.WriteContainer(w, ShardedSnapshotKind, sections)
}

// shardSorter sorts a shardPayload's parallel IDs/Series slices by id.
type shardSorter struct{ p *shardPayload }

func (s *shardSorter) Len() int           { return len(s.p.IDs) }
func (s *shardSorter) Less(i, j int) bool { return s.p.IDs[i] < s.p.IDs[j] }
func (s *shardSorter) Swap(i, j int) {
	s.p.IDs[i], s.p.IDs[j] = s.p.IDs[j], s.p.IDs[i]
	s.p.Series[i], s.p.Series[j] = s.p.Series[j], s.p.Series[i]
}

// LoadSharded reads a sharded index previously written by Sharded.Save,
// rebuilding the shards in parallel. The backend configuration comes from
// cfg (it is not part of the format beyond the backend kind).
func LoadSharded(r io.Reader, cfg Config) (*Sharded, error) {
	kind, sections, err := store.ReadContainer(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading sharded snapshot: %w", err)
	}
	if kind != ShardedSnapshotKind {
		return nil, fmt.Errorf("index: %w: got %q, want %q", store.ErrKind, kind, ShardedSnapshotKind)
	}
	byName := make(map[string][]byte, len(sections))
	for _, s := range sections {
		byName[s.Name] = s.Data
	}
	metaData, ok := byName[sectionShardedMeta]
	if !ok {
		return nil, fmt.Errorf("index: sharded snapshot has no %q section", sectionShardedMeta)
	}
	var meta shardedMeta
	if err := gob.NewDecoder(bytes.NewReader(metaData)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("index: decoding meta: %w", err)
	}
	if meta.Format < 1 || meta.Format > persistFormat {
		return nil, fmt.Errorf("index: unsupported format %d", meta.Format)
	}
	if meta.Shards < 1 {
		return nil, fmt.Errorf("index: corrupt meta: %d shards", meta.Shards)
	}
	var sh *Sharded
	if meta.HasTransform {
		tr, err := core.FromSnapshot(meta.Transform)
		if err != nil {
			return nil, fmt.Errorf("index: %w", err)
		}
		sh, err = NewSharded(meta.Backend, tr, cfg, meta.Shards)
		if err != nil {
			return nil, err
		}
	} else {
		if meta.Backend != BackendScan {
			return nil, fmt.Errorf("index: backend %q snapshot has no transform", meta.Backend)
		}
		sh = &Sharded{kind: BackendScan, shards: make([]*shard, meta.Shards)}
		for i := range sh.shards {
			sh.shards[i] = &shard{s: NewLinearScan(meta.SeriesLen, true)}
		}
	}
	errs := make([]error, meta.Shards)
	var wg sync.WaitGroup
	for i := 0; i < meta.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, ok := byName[fmt.Sprintf("shard-%d", i)]
			if !ok {
				errs[i] = fmt.Errorf("index: sharded snapshot missing shard %d", i)
				return
			}
			var p shardPayload
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
				errs[i] = fmt.Errorf("index: decoding shard %d: %w", i, err)
				return
			}
			if meta.Format >= 2 {
				if p.N <= 0 && len(p.IDs) > 0 {
					errs[i] = fmt.Errorf("index: corrupt shard %d: series length %d", i, p.N)
					return
				}
				if len(p.IDs)*p.N != len(p.Flat) {
					errs[i] = fmt.Errorf("index: corrupt shard %d: %d ids x len %d, %d samples", i, len(p.IDs), p.N, len(p.Flat))
					return
				}
				p.Series = make([]ts.Series, len(p.IDs))
				for j := range p.IDs {
					p.Series[j] = ts.Series(p.Flat[j*p.N : (j+1)*p.N])
				}
			} else if len(p.IDs) != len(p.Series) {
				errs[i] = fmt.Errorf("index: corrupt shard %d: %d ids, %d series", i, len(p.IDs), len(p.Series))
				return
			}
			s := sh.shards[i]
			for j, id := range p.IDs {
				if sh.shardOf(id) != i {
					errs[i] = fmt.Errorf("index: corrupt shard %d: id %d belongs to shard %d", i, id, sh.shardOf(id))
					return
				}
				if err := s.s.Add(id, p.Series[j]); err != nil {
					errs[i] = fmt.Errorf("index: rebuilding shard %d: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sh, nil
}
