package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"warping/internal/core"
	"warping/internal/store"
	"warping/internal/ts"
)

// persistFormat versions the gob payload; bump on incompatible change.
const persistFormat = 1

// SnapshotKind identifies an index snapshot container.
const SnapshotKind = "qbh/index"

const sectionIndex = "index"

// persisted is the gob payload. The R*-tree is not serialized — it is
// rebuilt deterministically from the series on load, which keeps the format
// small and immune to internal tree-layout changes.
type persisted struct {
	Format    int
	Transform core.Snapshot
	IDs       []int64
	Series    []ts.Series
}

// Save writes the index to w: the transform (including fitted SVD
// matrices) and all stored series as a gob payload, wrapped in a
// checksummed store container. The search tree is rebuilt on Load.
func (ix *Index) Save(w io.Writer) error {
	snap, err := core.SnapshotOf(ix.st.transform)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	p := persisted{Format: persistFormat, Transform: snap}
	p.IDs = make([]int64, 0, len(ix.st.series))
	for id := range ix.st.series {
		p.IDs = append(p.IDs, id)
	}
	sort.Slice(p.IDs, func(i, j int) bool { return p.IDs[i] < p.IDs[j] })
	p.Series = make([]ts.Series, len(p.IDs))
	for i, id := range p.IDs {
		p.Series[i] = ix.st.series[id].x
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return fmt.Errorf("index: encoding: %w", err)
	}
	return store.WriteContainer(w, SnapshotKind, []store.Section{
		{Name: sectionIndex, Data: payload.Bytes()},
	})
}

// Load reads an index previously written by Save. The tree configuration of
// the reconstructed index comes from cfg (it is not part of the format).
// Corrupt, truncated or foreign input is rejected with the store package's
// typed errors before any gob decoding runs.
func Load(r io.Reader, cfg Config) (*Index, error) {
	kind, sections, err := store.ReadContainer(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading snapshot: %w", err)
	}
	if kind != SnapshotKind {
		return nil, fmt.Errorf("index: %w: got %q, want %q", store.ErrKind, kind, SnapshotKind)
	}
	var payload []byte
	for _, s := range sections {
		if s.Name == sectionIndex {
			payload = s.Data
		}
	}
	if payload == nil {
		return nil, fmt.Errorf("index: snapshot has no %q section", sectionIndex)
	}
	var p persisted
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("index: decoding: %w", err)
	}
	if p.Format != persistFormat {
		return nil, fmt.Errorf("index: unsupported format %d", p.Format)
	}
	if len(p.IDs) != len(p.Series) {
		return nil, fmt.Errorf("index: corrupt payload: %d ids, %d series", len(p.IDs), len(p.Series))
	}
	tr, err := core.FromSnapshot(p.Transform)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	ix := New(tr, cfg)
	for i, id := range p.IDs {
		if err := ix.Add(id, p.Series[i]); err != nil {
			return nil, fmt.Errorf("index: rebuilding: %w", err)
		}
	}
	return ix, nil
}

// ShardedSnapshotKind identifies a sharded-index snapshot container.
const ShardedSnapshotKind = "qbh/sharded-index"

const sectionShardedMeta = "meta"

// shardedMeta is the gob payload of the meta section: everything needed
// to reconstruct the empty shards before the per-shard sections stream in.
type shardedMeta struct {
	Format    int
	Backend   BackendKind
	Shards    int
	SeriesLen int
	Transform core.Snapshot
	// HasTransform distinguishes a transform-less scan backend.
	HasTransform bool
}

// shardPayload is the gob payload of one per-shard section.
type shardPayload struct {
	IDs    []int64
	Series []ts.Series
}

// Save writes the sharded index to w as one checksummed container with a
// meta section plus one section per shard ("shard-0", "shard-1", ...).
// Shards are gob-encoded in parallel; ids within a shard are sorted, so
// saving the same corpus always produces identical bytes. Save holds each
// shard's read lock only while copying that shard out, so queries (and
// writes to other shards) keep flowing during a snapshot.
func (sh *Sharded) Save(w io.Writer) error {
	meta := shardedMeta{
		Format:    persistFormat,
		Backend:   sh.kind,
		Shards:    len(sh.shards),
		SeriesLen: sh.SeriesLen(),
	}
	if tr := transformOf(sh.shards[0].s); tr != nil {
		snap, err := core.SnapshotOf(tr)
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		meta.Transform = snap
		meta.HasTransform = true
	}
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(meta); err != nil {
		return fmt.Errorf("index: encoding meta: %w", err)
	}
	sections := make([]store.Section, 1+len(sh.shards))
	sections[0] = store.Section{Name: sectionShardedMeta, Data: metaBuf.Bytes()}

	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i := range sh.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sh.shards[i]
			var p shardPayload
			s.mu.RLock()
			s.s.Visit(func(id int64, x ts.Series) {
				p.IDs = append(p.IDs, id)
				p.Series = append(p.Series, x)
			})
			s.mu.RUnlock()
			// Visit order is map order; sort for deterministic bytes.
			sort.Sort(&shardSorter{p: &p})
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(p); err != nil {
				errs[i] = fmt.Errorf("index: encoding shard %d: %w", i, err)
				return
			}
			sections[1+i] = store.Section{Name: fmt.Sprintf("shard-%d", i), Data: buf.Bytes()}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return store.WriteContainer(w, ShardedSnapshotKind, sections)
}

// shardSorter sorts a shardPayload's parallel IDs/Series slices by id.
type shardSorter struct{ p *shardPayload }

func (s *shardSorter) Len() int           { return len(s.p.IDs) }
func (s *shardSorter) Less(i, j int) bool { return s.p.IDs[i] < s.p.IDs[j] }
func (s *shardSorter) Swap(i, j int) {
	s.p.IDs[i], s.p.IDs[j] = s.p.IDs[j], s.p.IDs[i]
	s.p.Series[i], s.p.Series[j] = s.p.Series[j], s.p.Series[i]
}

// transformOf extracts the transform of a single-shard backend (nil for
// the transform-less linear scan).
func transformOf(s Searcher) core.Transform {
	switch b := s.(type) {
	case *Index:
		return b.Transform()
	case *GridIndex:
		return b.Transform()
	case *LinearScan:
		return b.st.transform
	}
	return nil
}

// LoadSharded reads a sharded index previously written by Sharded.Save,
// rebuilding the shards in parallel. The backend configuration comes from
// cfg (it is not part of the format beyond the backend kind).
func LoadSharded(r io.Reader, cfg Config) (*Sharded, error) {
	kind, sections, err := store.ReadContainer(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading sharded snapshot: %w", err)
	}
	if kind != ShardedSnapshotKind {
		return nil, fmt.Errorf("index: %w: got %q, want %q", store.ErrKind, kind, ShardedSnapshotKind)
	}
	byName := make(map[string][]byte, len(sections))
	for _, s := range sections {
		byName[s.Name] = s.Data
	}
	metaData, ok := byName[sectionShardedMeta]
	if !ok {
		return nil, fmt.Errorf("index: sharded snapshot has no %q section", sectionShardedMeta)
	}
	var meta shardedMeta
	if err := gob.NewDecoder(bytes.NewReader(metaData)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("index: decoding meta: %w", err)
	}
	if meta.Format != persistFormat {
		return nil, fmt.Errorf("index: unsupported format %d", meta.Format)
	}
	if meta.Shards < 1 {
		return nil, fmt.Errorf("index: corrupt meta: %d shards", meta.Shards)
	}
	var sh *Sharded
	if meta.HasTransform {
		tr, err := core.FromSnapshot(meta.Transform)
		if err != nil {
			return nil, fmt.Errorf("index: %w", err)
		}
		sh, err = NewSharded(meta.Backend, tr, cfg, meta.Shards)
		if err != nil {
			return nil, err
		}
	} else {
		if meta.Backend != BackendScan {
			return nil, fmt.Errorf("index: backend %q snapshot has no transform", meta.Backend)
		}
		sh = &Sharded{kind: BackendScan, shards: make([]*shard, meta.Shards)}
		for i := range sh.shards {
			sh.shards[i] = &shard{s: NewLinearScan(meta.SeriesLen, true)}
		}
	}
	errs := make([]error, meta.Shards)
	var wg sync.WaitGroup
	for i := 0; i < meta.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, ok := byName[fmt.Sprintf("shard-%d", i)]
			if !ok {
				errs[i] = fmt.Errorf("index: sharded snapshot missing shard %d", i)
				return
			}
			var p shardPayload
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
				errs[i] = fmt.Errorf("index: decoding shard %d: %w", i, err)
				return
			}
			if len(p.IDs) != len(p.Series) {
				errs[i] = fmt.Errorf("index: corrupt shard %d: %d ids, %d series", i, len(p.IDs), len(p.Series))
				return
			}
			s := sh.shards[i]
			for j, id := range p.IDs {
				if sh.shardOf(id) != i {
					errs[i] = fmt.Errorf("index: corrupt shard %d: id %d belongs to shard %d", i, id, sh.shardOf(id))
					return
				}
				if err := s.s.Add(id, p.Series[j]); err != nil {
					errs[i] = fmt.Errorf("index: rebuilding shard %d: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sh, nil
}
