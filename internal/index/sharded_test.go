package index

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"warping/internal/core"
	"warping/internal/ts"
)

// The cross-backend differential test of the Searcher refactor: the same
// corpus and the same queries through the R*-tree, the grid file, the
// linear scan and every shard count in {1, 4, 7} must return identical
// match sets and distances — Theorem 1 is backend-independent, and the
// shared refinement cascade plus the kNN shared-bound merge must not
// change a single result. Run under -race this also exercises the
// parallel fan-out.
func TestBackendsAndShardCountsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tr := core.NewPAA(testN, testDim)
	const count = 300

	data := make([]ts.Series, count)
	for i := range data {
		data[i] = randomWalk(r, testN)
	}

	type backend struct {
		name string
		s    Searcher
	}
	var backends []backend
	for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
		s, err := NewBackend(kind, tr, Config{})
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, backend{name: string(kind), s: s})
	}
	for _, shards := range []int{1, 4, 7} {
		for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
			sh, err := NewSharded(kind, tr, Config{}, shards)
			if err != nil {
				t.Fatal(err)
			}
			backends = append(backends, backend{name: fmt.Sprintf("%s-sharded-%d", kind, shards), s: sh})
		}
	}
	for _, b := range backends {
		for i, x := range data {
			if err := b.s.Add(int64(i), x); err != nil {
				t.Fatalf("%s: Add(%d): %v", b.name, i, err)
			}
		}
		if b.s.Len() != count {
			t.Fatalf("%s: Len = %d, want %d", b.name, b.s.Len(), count)
		}
	}

	reference := backends[len(backends)-1].s // any; diffed all-vs-first below
	_ = reference
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		q := randomWalk(r, testN)
		epsilon := float64(testN) * (0.03 + r.Float64()*0.05)
		delta := 0.02 + r.Float64()*0.15
		k := 1 + r.Intn(12)

		wantRange, _, err := backends[0].s.RangeQueryCtx(ctx, q, epsilon, delta, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		wantKNN, _, err := backends[0].s.KNNCtx(ctx, q, k, delta, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range backends[1:] {
			gotRange, _, err := b.s.RangeQueryCtx(ctx, q, epsilon, delta, Limits{})
			if err != nil {
				t.Fatalf("%s: range: %v", b.name, err)
			}
			diffMatches(t, b.name+"/range", gotRange, wantRange)
			gotKNN, _, err := b.s.KNNCtx(ctx, q, k, delta, Limits{})
			if err != nil {
				t.Fatalf("%s: knn: %v", b.name, err)
			}
			diffMatches(t, b.name+"/knn", gotKNN, wantKNN)
		}
	}
}

func diffMatches(t *testing.T, name string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("%s: match %d = {%d %v}, want {%d %v}",
				name, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// Satellite fix: LinearScan.Add used to panic on a length mismatch. The
// Searcher contract makes every backend return an error instead.
func TestLinearScanAddValidation(t *testing.T) {
	scan := NewLinearScan(testN, true)
	if err := scan.Add(1, make(ts.Series, 5)); err == nil {
		t.Error("wrong length accepted (previously panicked)")
	}
	if err := scan.Add(1, make(ts.Series, testN)); err != nil {
		t.Errorf("valid add failed: %v", err)
	}
	if err := scan.Add(1, make(ts.Series, testN)); err == nil {
		t.Error("duplicate id accepted")
	}
	if scan.Len() != 1 {
		t.Errorf("Len = %d after rejected adds, want 1", scan.Len())
	}
}

// Every backend rejects bad adds and bad queries identically — the
// uniformity the Searcher interface promises.
func TestBackendsUniformValidation(t *testing.T) {
	tr := core.NewPAA(testN, testDim)
	for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
		s, err := NewBackend(kind, tr, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Add(1, make(ts.Series, 3)); err == nil {
			t.Errorf("%s: wrong length accepted", kind)
		}
		if err := s.Add(1, make(ts.Series, testN)); err != nil {
			t.Errorf("%s: valid add failed: %v", kind, err)
		}
		if err := s.Add(1, make(ts.Series, testN)); err == nil {
			t.Errorf("%s: duplicate id accepted", kind)
		}
		bad := make(ts.Series, 9)
		if _, _, err := s.RangeQueryCtx(context.Background(), bad, 1, 0.1, Limits{}); !errors.Is(err, ErrQueryLength) {
			t.Errorf("%s: range err = %v, want ErrQueryLength", kind, err)
		}
		if _, _, err := s.KNNCtx(context.Background(), bad, 1, 0.1, Limits{}); !errors.Is(err, ErrQueryLength) {
			t.Errorf("%s: knn err = %v, want ErrQueryLength", kind, err)
		}
	}
}

func TestShardedBasics(t *testing.T) {
	tr := core.NewPAA(testN, testDim)
	if _, err := NewSharded(BackendRTree, tr, Config{}, 0); err == nil {
		t.Error("0 shards accepted")
	}
	sh, err := NewSharded("", tr, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Kind() != BackendRTree {
		t.Errorf("Kind = %q, want default rtree", sh.Kind())
	}
	if sh.NumShards() != 4 {
		t.Errorf("NumShards = %d", sh.NumShards())
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 64; i++ {
		if err := sh.Add(int64(i), randomWalk(r, testN)); err != nil {
			t.Fatal(err)
		}
	}
	if sh.Len() != 64 {
		t.Errorf("Len = %d", sh.Len())
	}
	if err := sh.Add(10, randomWalk(r, testN)); err == nil {
		t.Error("duplicate id accepted")
	}
	lens := sh.ShardLens()
	total := 0
	for _, n := range lens {
		total += n
		if n == 0 {
			t.Errorf("empty shard in %v: hash is not spreading sequential ids", lens)
		}
	}
	if total != 64 {
		t.Errorf("ShardLens sum = %d, want 64", total)
	}
	if _, ok := sh.Get(10); !ok {
		t.Error("Get(10) missed")
	}
	if !sh.Remove(10) {
		t.Error("Remove(10) failed")
	}
	if sh.Remove(10) {
		t.Error("double Remove succeeded")
	}
	if sh.Len() != 63 {
		t.Errorf("Len after remove = %d", sh.Len())
	}
	seen := 0
	sh.Visit(func(id int64, x ts.Series) { seen++ })
	if seen != 63 {
		t.Errorf("Visit saw %d", seen)
	}
}

// The acceptance-criteria race test: with one shard's writer blocked
// mid-Add (holding that shard's write lock via AddHook), single-shard
// operations on every other shard complete, and a deadline-bounded
// fanned-out query returns promptly with the partial results collected
// from the shards that could answer — a write no longer stalls unrelated
// reads. Run with -race.
func TestShardedWriteDoesNotStallOtherShards(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr := core.NewPAA(testN, testDim)
	const shards = 4
	sh, err := NewSharded(BackendRTree, tr, Config{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := sh.Add(int64(i), randomWalk(r, testN)); err != nil {
			t.Fatal(err)
		}
	}

	// Pick fresh ids on distinct shards.
	nextOn := func(shard int, from int64) int64 {
		for id := from; ; id++ {
			if _, ok := sh.Get(id); !ok && sh.shardOf(id) == shard {
				return id
			}
		}
	}
	const blockedShard = 0
	blockedID := nextOn(blockedShard, 1000)
	otherShard := 1
	otherID := nextOn(otherShard, 1000)

	block := make(chan struct{})
	entered := make(chan struct{})
	sh.AddHook = func(idx int) {
		if idx == blockedShard {
			close(entered)
			<-block // hold shard 0's write lock until released
		}
	}

	writerDone := make(chan error, 1)
	go func() { writerDone <- sh.Add(blockedID, randomWalk(rand.New(rand.NewSource(1)), testN)) }()
	<-entered // shard 0's write lock is now held

	// 1. A write to another shard completes while shard 0 is blocked.
	addDone := make(chan error, 1)
	go func() { addDone <- sh.Add(otherID, randomWalk(rand.New(rand.NewSource(2)), testN)) }()
	select {
	case err := <-addDone:
		if err != nil {
			t.Fatalf("Add on unblocked shard: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Add on unblocked shard stalled behind shard 0's writer")
	}

	// 2. A point read on another shard completes.
	readDone := make(chan bool, 1)
	go func() { _, ok := sh.Get(otherID); readDone <- ok }()
	select {
	case ok := <-readDone:
		if !ok {
			t.Fatal("Get on unblocked shard missed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Get on unblocked shard stalled")
	}

	// 3. A fanned-out query with a deadline returns promptly with the
	// partial results from the three unblocked shards instead of waiting
	// for shard 0's reader lock.
	q := randomWalk(r, testN)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	matches, _, qerr := sh.KNNCtx(ctx, q, 5, 0.1, Limits{})
	elapsed := time.Since(start)
	if !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("query err = %v, want DeadlineExceeded (shard 0 is blocked)", qerr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("query took %v despite its 300ms deadline", elapsed)
	}
	if len(matches) == 0 {
		t.Fatal("no partial results from the unblocked shards")
	}

	// Release the writer; the system returns to full service.
	close(block)
	if err := <-writerDone; err != nil {
		t.Fatalf("blocked Add finished with: %v", err)
	}
	full, _, err := sh.KNNCtx(context.Background(), q, 5, 0.1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 5 {
		t.Fatalf("post-release query returned %d matches", len(full))
	}
}

// Concurrent mixed load over a Sharded index; meaningful under -race.
func TestShardedConcurrentStress(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tr := core.NewPAA(testN, testDim)
	sh, err := NewSharded(BackendRTree, tr, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := sh.Add(int64(i), randomWalk(r, testN)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]ts.Series, 8)
	for i := range queries {
		queries[i] = randomWalk(r, testN)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				id := int64(1000 + w*100 + i)
				if err := sh.Add(id, randomWalk(rr, testN)); err != nil {
					t.Errorf("Add(%d): %v", id, err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(g+i)%len(queries)]
				if _, _, err := sh.KNNCtx(context.Background(), q, 3, 0.1, Limits{}); err != nil {
					t.Errorf("KNNCtx: %v", err)
					return
				}
				if _, _, err := sh.RangeQueryCtx(context.Background(), q, float64(testN)*0.04, 0.1, Limits{}); err != nil {
					t.Errorf("RangeQueryCtx: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if sh.Len() != 200 {
		t.Errorf("Len = %d, want 200", sh.Len())
	}
}

// The shared exact-DTW budget spans all shards of one query: the summed
// ExactDTW across shards never exceeds the budget, and a capped query is
// flagged Degraded.
func TestShardedSharedDTWBudget(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tr := core.NewPAA(testN, testDim)
	sh, err := NewSharded(BackendRTree, tr, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := sh.Add(int64(i), randomWalk(r, testN)); err != nil {
			t.Fatal(err)
		}
	}
	q := randomWalk(r, testN)
	// Unlimited baseline to know the query's true cost.
	_, free, err := sh.KNNCtx(context.Background(), q, 10, 0.1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if free.ExactDTW < 20 {
		t.Skipf("query too cheap to cap (ExactDTW=%d)", free.ExactDTW)
	}
	budget := free.ExactDTW / 4
	_, capped, err := sh.KNNCtx(context.Background(), q, 10, 0.1, Limits{MaxExactDTW: budget})
	if err != nil {
		t.Fatal(err)
	}
	if capped.ExactDTW > budget {
		t.Errorf("ExactDTW %d exceeds the shared budget %d", capped.ExactDTW, budget)
	}
	if !capped.Degraded {
		t.Error("capped query not flagged Degraded")
	}
}

// Sharded snapshots round-trip: per-shard sections reload into an
// equivalent index for every backend kind, and re-saving produces
// byte-identical output (deterministic sections).
func TestShardedPersistRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
		tr := core.NewPAA(testN, testDim)
		sh, err := NewSharded(kind, tr, Config{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]ts.Series, 120)
		for i := range data {
			data[i] = randomWalk(r, testN)
			if err := sh.Add(int64(i), data[i]); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := sh.Save(&buf); err != nil {
			t.Fatalf("%s: Save: %v", kind, err)
		}
		back, err := LoadSharded(bytes.NewReader(buf.Bytes()), Config{})
		if err != nil {
			t.Fatalf("%s: LoadSharded: %v", kind, err)
		}
		if back.Kind() != kind || back.NumShards() != 4 || back.Len() != len(data) {
			t.Fatalf("%s: reloaded kind=%q shards=%d len=%d", kind, back.Kind(), back.NumShards(), back.Len())
		}
		q := randomWalk(r, testN)
		want, _ := sh.KNN(q, 7, 0.1)
		got, _ := back.KNN(q, 7, 0.1)
		diffMatches(t, string(kind)+"/reloaded", got, want)

		var again bytes.Buffer
		if err := back.Save(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Errorf("%s: re-save diverged from original bytes", kind)
		}
	}
}

// BuildSearcher is the one-call construction path qbh uses; single shard
// and multi shard must produce identical query results.
func TestBuildSearcherAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	tr := core.NewPAA(testN, testDim)
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{ID: int64(i), Series: randomWalk(r, testN)}
	}
	single, err := BuildSearcher(BackendRTree, tr, Config{}, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BuildSearcher(BackendRTree, tr, Config{}, 5, entries)
	if err != nil {
		t.Fatal(err)
	}
	q := randomWalk(r, testN)
	want, _, err := single.KNNCtx(context.Background(), q, 9, 0.1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := multi.KNNCtx(context.Background(), q, 9, 0.1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	diffMatches(t, "buildsearcher", got, want)
}
