// Query plans: the per-query constants of one logical query — the query
// series, its k-envelope, the feature-space envelope box and the band
// radius — computed exactly once and threaded through the Searcher
// internals. Before plans, every backend call recomputed
// dtw.NewEnvelope + Transform.ApplyEnvelope from scratch: an 8-shard
// fan-out repeated that per shard, and each qbh growth round repeated it
// again per shard per round. A Plan is immutable after construction and
// safe to share across the goroutines of a fan-out and across growth
// rounds.
//
// This file also owns the pooled per-shard query scratch: candidate
// buffers, the kNN heap and the match output buffer a single backend query
// builds its result in, so steady-state query allocations stop scaling
// with shard count (BENCH_pr4 measured range-query allocs growing 45→337
// from 1→8 shards; the pool plus plan sharing flattens that).
package index

import (
	"context"
	"sync"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/gridfile"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// Plan is the precomputed state of one logical query. Obtain one from
// Sharded.NewPlan (or internally via makePlan) and pass it to
// RangeQueryPlan/KNNPlan any number of times: the envelope transform runs
// exactly once per Plan regardless of shard count, backend or how many
// times the plan is reused (the qbh growth loop issues several kNN rounds
// against one plan).
type Plan struct {
	q      ts.Series
	band   int
	env    dtw.Envelope
	fe     core.FeatureEnvelope
	hasFE  bool
	cfe    core.FeatureEnvelope
	hasCFE bool
}

// makePlan computes the plan for query q at warping width delta over
// series of length n. tr may be nil (transform-less linear scan): the
// plan then carries no feature box and the cascade skips the box
// pre-check. coarse, when non-nil, adds the 4-dim New_PAA box of the
// cascade's coarse pre-stage (computed once here, like the fine box).
func makePlan(q ts.Series, delta float64, n int, tr, coarse core.Transform) *Plan {
	band := dtw.BandRadius(n, delta)
	p := &Plan{q: q, band: band, env: dtw.NewEnvelope(q, band)}
	if tr != nil {
		p.fe = tr.ApplyEnvelope(p.env)
		p.hasFE = true
	}
	if coarse != nil {
		p.cfe = coarse.ApplyEnvelope(p.env)
		p.hasCFE = true
	}
	return p
}

// featureEnvelope returns the plan's feature box, nil when the backend has
// no transform (the rangeQuery cascade form).
func (p *Plan) featureEnvelope() *core.FeatureEnvelope {
	if !p.hasFE {
		return nil
	}
	return &p.fe
}

// coarseEnvelope returns the plan's coarse New_PAA box, nil when the
// corpus carries no coarse column.
func (p *Plan) coarseEnvelope() *core.FeatureEnvelope {
	if !p.hasCFE {
		return nil
	}
	return &p.cfe
}

// scratch is the reusable buffer set of one backend query: candidate
// lists from the spatial structures, the kNN top-k heap and the match
// output buffer. Pooled so that per-shard sub-queries of a fan-out (and
// repeated single-shard queries) run allocation-free in steady state.
// Results returned by rangePlan/knnPlan alias sc.out, so a scratch goes
// back to the pool only after the caller has copied the matches out.
type scratch struct {
	ritems []rtree.Item
	gitems []gridfile.Item
	slots  []int32
	heap   []Match
	out    []Match
	top    topK
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	// Drop value references so pooled buffers don't pin match data; keep
	// capacity.
	sc.ritems = sc.ritems[:0]
	sc.gitems = sc.gitems[:0]
	sc.slots = sc.slots[:0]
	sc.heap = sc.heap[:0]
	sc.out = sc.out[:0]
	sc.top = topK{}
	scratchPool.Put(sc)
}

// finish copies the scratch-aliased matches into caller-owned memory,
// sorts them if asked, and re-pools the scratch.
func finish(out []Match, sc *scratch, sortThem bool) []Match {
	var res []Match
	if len(out) > 0 {
		res = make([]Match, len(out))
		copy(res, out)
	}
	putScratch(sc)
	if sortThem {
		sortMatches(res)
	}
	return res
}

// NewPlan validates q and computes the shared query plan: envelope,
// feature envelope and band radius, exactly once. The plan may then be
// passed to RangeQueryPlan and KNNPlan any number of times (the qbh
// growth loop reuses one plan across all its rounds). A query of the
// wrong length returns ErrQueryLength.
func (sh *Sharded) NewPlan(q ts.Series, delta float64) (*Plan, error) {
	n := sh.SeriesLen()
	if len(q) != n {
		return nil, queryLengthError(len(q), n)
	}
	st := corpusOf(sh)
	return makePlan(q, delta, n, st.transform, st.coarse), nil
}

// RangeQueryPlan is RangeQueryCtx against a precomputed plan: no envelope
// or transform work happens here, so fan-out shards and repeated calls
// share the plan's one computation. Matches are sorted by (distance, id).
func (sh *Sharded) RangeQueryPlan(ctx context.Context, p *Plan, epsilon float64, lim Limits) ([]Match, QueryStats, error) {
	sc := getScratch()
	out, stats, err := sh.rangePlan(ctx, p, epsilon, lim, sc)
	return finish(out, sc, true), stats, err
}

// KNNPlan is KNNCtx against a precomputed plan; see RangeQueryPlan.
func (sh *Sharded) KNNPlan(ctx context.Context, p *Plan, k int, lim Limits) ([]Match, QueryStats, error) {
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	sc := getScratch()
	out, stats, err := sh.knnPlan(ctx, p, k, lim, sc)
	return finish(out, sc, false), stats, err
}
