// The Searcher interface: one backend-independent contract for every index
// structure in this package. Theorem 1 holds for any container-invariant
// feature-space filter, so the R*-tree index, the grid file and the linear
// scan all expose the same query surface — context cancellation, per-query
// Limits, QueryStats accounting, range and kNN search — and share one
// refinement cascade (see verify.go). The Sharded wrapper composes N of
// them behind per-shard locks for stall-free writes and parallel fan-out.
package index

import (
	"context"
	"fmt"

	"warping/internal/core"
	"warping/internal/ts"
)

// Searcher is the backend-independent surface of a DTW similarity index
// over fixed-length normal-form series. *Index (R*-tree), *GridIndex (grid
// file), *LinearScan (brute force) and *Sharded (hash-partitioned
// composite) all implement it with identical exactness guarantees: every
// query method returns the same match set and distances on the same data.
//
// Unless stated otherwise (Sharded), implementations are not internally
// synchronized: queries are read-pure and may run concurrently with each
// other, but Add/Remove require exclusive access.
type Searcher interface {
	// Add inserts a series under id. The series must have length
	// SeriesLen() and the id must be new; violations return an error
	// (never panic — enforced uniformly across backends).
	Add(id int64, x ts.Series) error
	// Remove deletes the series stored under id, reporting whether it was
	// present.
	Remove(id int64) bool
	// Len returns the number of indexed series.
	Len() int
	// SeriesLen returns the required series length n.
	SeriesLen() int
	// Get returns the stored series for an id.
	Get(id int64) (ts.Series, bool)
	// Visit calls fn for every stored (id, series) pair, in unspecified
	// order.
	Visit(fn func(id int64, x ts.Series))
	// RangeQueryCtx returns all series whose banded DTW distance to q is
	// at most epsilon (warping width delta), sorted by (distance, id),
	// with cancellation and per-query work limits. QueryStats reports
	// candidates, LB survivors, exact DTW count and page accesses.
	RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error)
	// KNNCtx returns the k nearest series under banded DTW, closest
	// first, with cancellation and per-query work limits.
	KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error)
}

// BackendKind names a Searcher implementation for configuration surfaces
// (qbh.Options.Backend, the qbhd -backend flag).
type BackendKind string

// Supported backends.
const (
	// BackendRTree is the default: an R*-tree with incremental
	// best-first kNN.
	BackendRTree BackendKind = "rtree"
	// BackendGrid is the grid file ([35], StatStream); kNN uses an
	// expanding-ring search.
	BackendGrid BackendKind = "grid"
	// BackendScan is the LB-pruned linear scan baseline.
	BackendScan BackendKind = "scan"
)

// DefaultGridCell is the grid-file cell edge used when Config.GridCell is
// zero, sized near the typical query extent of the 8-dimensional New_PAA
// feature spaces this library produces.
const DefaultGridCell = 40.0

// NewBackend constructs an empty single-shard Searcher of the given kind.
func NewBackend(kind BackendKind, t core.Transform, cfg Config) (Searcher, error) {
	switch kind {
	case BackendRTree, "":
		return New(t, cfg), nil
	case BackendGrid:
		cell := cfg.GridCell
		if cell <= 0 {
			cell = DefaultGridCell
		}
		return NewGrid(t, cell), nil
	case BackendScan:
		return NewLinearScanTransform(t, true), nil
	default:
		return nil, fmt.Errorf("index: unknown backend %q", kind)
	}
}

// corpus is the backend-independent state every Searcher carries: the
// retained series with their feature vectors cached at Add time (so
// queries and removals never recompute transform.Apply), plus the
// transform itself. The spatial structure (tree, grid, none) lives in the
// concrete backend; corpus keeps the entry cache and validation uniform.
type corpus struct {
	transform core.Transform // nil for the transform-less linear scan
	series    map[int64]entry
	n         int
}

func newCorpus(t core.Transform, n int) corpus {
	if t != nil {
		n = t.InputLen()
	}
	return corpus{transform: t, series: make(map[int64]entry), n: n}
}

// add validates and caches one series, returning its entry. The returned
// error mirrors Index.Add for every backend.
func (st *corpus) add(id int64, x ts.Series) (entry, error) {
	if len(x) != st.n {
		return entry{}, fmt.Errorf("index: series length %d, want %d", len(x), st.n)
	}
	if _, dup := st.series[id]; dup {
		return entry{}, fmt.Errorf("index: duplicate id %d", id)
	}
	e := entry{x: x}
	if st.transform != nil {
		e.feat = st.transform.Apply(x)
	}
	st.series[id] = e
	return e, nil
}

// remove drops the entry for id, returning it for spatial-structure
// cleanup.
func (st *corpus) remove(id int64) (entry, bool) {
	e, ok := st.series[id]
	if ok {
		delete(st.series, id)
	}
	return e, ok
}

func (st *corpus) get(id int64) (ts.Series, bool) {
	e, ok := st.series[id]
	return e.x, ok
}

func (st *corpus) visit(fn func(id int64, x ts.Series)) {
	for id, e := range st.series {
		fn(id, e.x)
	}
}

// checkQuery validates a query series length uniformly across backends.
func (st *corpus) checkQuery(q ts.Series) error {
	if len(q) != st.n {
		return fmt.Errorf("index: %w: got %d, want %d", ErrQueryLength, len(q), st.n)
	}
	return nil
}
