// The Searcher interface: one backend-independent contract for every index
// structure in this package. Theorem 1 holds for any container-invariant
// feature-space filter, so the R*-tree index, the grid file and the linear
// scan all expose the same query surface — context cancellation, per-query
// Limits, QueryStats accounting, range and kNN search — and share one
// refinement cascade (see verify.go). The Sharded wrapper composes N of
// them behind per-shard locks for stall-free writes and parallel fan-out.
package index

import (
	"context"
	"fmt"

	"warping/internal/core"
	"warping/internal/pager"
	"warping/internal/ts"
)

// Searcher is the backend-independent surface of a DTW similarity index
// over fixed-length normal-form series. *Index (R*-tree), *GridIndex (grid
// file), *LinearScan (brute force) and *Sharded (hash-partitioned
// composite) all implement it with identical exactness guarantees: every
// query method returns the same match set and distances on the same data.
//
// Unless stated otherwise (Sharded), implementations are not internally
// synchronized: queries are read-pure and may run concurrently with each
// other, but Add/Remove require exclusive access.
type Searcher interface {
	// Add inserts a series under id. The series must have length
	// SeriesLen() and the id must be new; violations return an error
	// (never panic — enforced uniformly across backends).
	Add(id int64, x ts.Series) error
	// Remove deletes the series stored under id, reporting whether it was
	// present.
	Remove(id int64) bool
	// Len returns the number of indexed series.
	Len() int
	// SeriesLen returns the required series length n.
	SeriesLen() int
	// Get returns the stored series for an id.
	Get(id int64) (ts.Series, bool)
	// Visit calls fn for every stored (id, series) pair, in unspecified
	// order.
	Visit(fn func(id int64, x ts.Series))
	// RangeQueryCtx returns all series whose banded DTW distance to q is
	// at most epsilon (warping width delta), sorted by (distance, id),
	// with cancellation and per-query work limits. QueryStats reports
	// candidates, LB survivors, exact DTW count and page accesses.
	RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error)
	// KNNCtx returns the k nearest series under banded DTW, closest
	// first, with cancellation and per-query work limits.
	KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error)
	// Close releases backend resources: in paged mode it removes the
	// backend's spill files from the shared pager space (the space itself
	// belongs to the caller). RAM backends are no-ops. The backend is
	// unusable afterwards.
	Close() error

	// rangePlan and knnPlan are the plan-threaded internals of the two
	// query methods: the envelope, feature box and band arrive
	// precomputed in p (exactly once per logical query — Sharded fan-out
	// and the qbh growth loop share one Plan), and results are built in
	// the pooled scratch sc (returned matches alias sc.out; callers copy
	// before re-pooling). Unexported, so the interface stays sealed to
	// this package. rangePlan returns unsorted matches; knnPlan returns
	// the top k sorted by (distance, id).
	rangePlan(ctx context.Context, p *Plan, epsilon float64, lim Limits, sc *scratch) ([]Match, QueryStats, error)
	knnPlan(ctx context.Context, p *Plan, k int, lim Limits, sc *scratch) ([]Match, QueryStats, error)
}

// BackendKind names a Searcher implementation for configuration surfaces
// (qbh.Options.Backend, the qbhd -backend flag).
type BackendKind string

// Supported backends.
const (
	// BackendRTree is the default: an R*-tree with incremental
	// best-first kNN.
	BackendRTree BackendKind = "rtree"
	// BackendGrid is the grid file ([35], StatStream); kNN uses an
	// expanding-ring search.
	BackendGrid BackendKind = "grid"
	// BackendScan is the LB-pruned linear scan baseline.
	BackendScan BackendKind = "scan"
)

// DefaultGridCell is the grid-file cell edge used when Config.GridCell is
// zero, sized near the typical query extent of the 8-dimensional New_PAA
// feature spaces this library produces.
const DefaultGridCell = 40.0

// NewBackend constructs an empty single-shard Searcher of the given kind.
// When cfg.Pager is set, the backend's corpus arenas (and, for the R*-tree
// backend, the base tree nodes) live in page files behind the shared buffer
// pool instead of RAM.
func NewBackend(kind BackendKind, t core.Transform, cfg Config) (Searcher, error) {
	switch kind {
	case BackendRTree, "":
		return newIndex(t, cfg)
	case BackendGrid:
		cell := cfg.GridCell
		if cell <= 0 {
			cell = DefaultGridCell
		}
		g := NewGrid(t, cell)
		if cfg.Pager != nil {
			if err := g.st.pageTo(cfg.Pager); err != nil {
				return nil, err
			}
		}
		return g, nil
	case BackendScan:
		s := NewLinearScanTransform(t, true)
		if cfg.Pager != nil {
			if err := s.st.pageTo(cfg.Pager); err != nil {
				return nil, err
			}
		}
		return s, nil
	default:
		return nil, fmt.Errorf("index: unknown backend %q", kind)
	}
}

// transformOf returns the feature transform a backend indexes under (nil
// for the transform-less linear scan). Plans built by the composite need
// it to run ApplyEnvelope exactly once for all shards.
func transformOf(s Searcher) core.Transform {
	if st := corpusOf(s); st != nil {
		return st.transform
	}
	return nil
}

// corpusOf returns the corpus of a backend (the first shard's for the
// composite — all shards share one transform configuration). Plans built by
// the composite read both the fine transform and the coarse companion from
// it.
func corpusOf(s Searcher) *corpus {
	switch b := s.(type) {
	case *Index:
		return &b.st
	case *GridIndex:
		return &b.st
	case *LinearScan:
		return &b.st
	case *Sharded:
		return corpusOf(b.shards[0].s)
	}
	return nil
}

// coarseCompanion returns the coarse New_PAA pre-stage transform paired
// with a fine transform tr over series of length n, or nil when the
// pre-stage cannot pay for itself: series too short (or not divisible by
// the coarse dimensionality), or a fine transform already at or below the
// coarse dimensionality, whose own box check is at least as tight for the
// same cost. The rule is a pure function of (n, tr's output length) so the
// coordinator-side planner and every replica corpus agree on whether a
// plan carries a coarse box.
func coarseCompanion(n int, tr core.Transform) core.Transform {
	if n < core.CoarsePAADim || n%core.CoarsePAADim != 0 {
		return nil
	}
	if tr != nil && tr.OutputLen() <= core.CoarsePAADim {
		return nil
	}
	return core.NewCoarsePAA(n)
}

// corpus is the backend-independent state every Searcher carries: the
// retained series and their feature vectors (cached at Add time, so
// queries and removals never recompute transform.Apply), plus the
// transform itself. The spatial structure (tree, grid, none) lives in the
// concrete backend; corpus keeps the storage and validation uniform.
//
// Storage is a columnar slot arena, not a map of per-entry slices: every
// retained series lives in one contiguous []float64 block (slot s at
// xs[s*n : (s+1)*n]) and every cached feature vector in another, with a
// small id→slot map on the side. The box pre-check and LB_Keogh of the
// verification cascade therefore stream sequential memory instead of
// chasing one heap pointer per candidate. Remove tombstones its slot;
// when tombstones outnumber live slots the arena compacts into fresh
// blocks (never in place — outstanding entry views and spatial-structure
// point slices keep reading the old, still-correct generation) and the
// owning backend rebuilds its structure over the new arena.
//
// In out-of-core mode (paged != nil) the three arenas live in page-backed
// columns instead: record slot s is page s/perPage of the column's spill
// file, resident only while the buffer pool holds it. The id→slot map,
// ids and alive stay in RAM (a few bytes per series — the pageable bulk is
// the float data). All slot reads then go through a corpusReader, whose
// per-column cursors pin pages and attribute real pool misses to the query
// driving them.
type corpus struct {
	transform core.Transform // nil for the transform-less linear scan
	coarse    core.Transform // coarse New_PAA pre-stage, nil when n forbids it
	n         int            // series length
	dim       int            // feature dimensionality (0 without transform)
	cdim      int            // coarse feature dimensionality (0 without coarse)

	slots map[int64]int32 // id -> live slot
	ids   []int64         // slot -> id (meaningful only while live)
	alive []bool          // slot liveness; false = tombstone
	xs    []float64       // series arena, len == len(ids)*n
	fs    []float64       // feature arena, len == len(ids)*dim
	cfs   []float64       // coarse feature arena, len == len(ids)*cdim
	dead  int             // tombstone count
	// paged, when non-nil, replaces the xs/fs/cfs arenas with page-backed
	// columns (out-of-core mode).
	paged *pagedCols
	// compactions counts arena compactions (test observability).
	compactions int
}

// pagedCols is the out-of-core form of the corpus arenas: one page-backed
// column per arena, all sharing the space's buffer pool. Appends are
// serialized by the owning backend's write lock; concurrent queries read
// through per-query corpusReaders.
type pagedCols struct {
	sp  *pager.Space
	xs  *pager.Column // series records, width n
	fs  *pager.Column // feature records, width dim (nil when dim == 0)
	cfs *pager.Column // coarse feature records, width cdim (nil when cdim == 0)
}

func (p *pagedCols) close() error {
	var first error
	for _, c := range []*pager.Column{p.xs, p.fs, p.cfs} {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.xs, p.fs, p.cfs = nil, nil, nil
	return first
}

// pageTo switches an empty corpus into out-of-core mode: the three arenas
// become page-backed columns in sp. Must run before the first add.
func (st *corpus) pageTo(sp *pager.Space) error {
	if len(st.ids) != 0 {
		return fmt.Errorf("index: cannot page a non-empty corpus")
	}
	p := &pagedCols{sp: sp}
	var err error
	if p.xs, err = sp.NewColumn(st.n); err != nil {
		return err
	}
	if st.dim > 0 {
		if p.fs, err = sp.NewColumn(st.dim); err != nil {
			_ = p.close()
			return err
		}
	}
	if st.cdim > 0 {
		if p.cfs, err = sp.NewColumn(st.cdim); err != nil {
			_ = p.close()
			return err
		}
	}
	st.paged = p
	return nil
}

// close releases the corpus's spill files (no-op in RAM mode).
func (st *corpus) close() error {
	if st.paged == nil {
		return nil
	}
	err := st.paged.close()
	st.paged = nil
	return err
}

// corpusReader resolves slots to entries for one query or worker. In RAM
// mode it is a free view over the arenas; in paged mode it owns one pinned
// cursor per column, so clustered slot accesses hit without re-pinning and
// every real pool miss is attributed to this reader. Readers must not be
// shared across goroutines; release when done.
type corpusReader struct {
	st         *corpus
	cx, cf, cc pager.Cursor
}

// reader returns a fresh reader over the corpus.
func (st *corpus) reader() corpusReader {
	r := corpusReader{st: st}
	if p := st.paged; p != nil {
		r.cx = p.xs.Reader()
		if p.fs != nil {
			r.cf = p.fs.Reader()
		}
		if p.cfs != nil {
			r.cc = p.cfs.Reader()
		}
	}
	return r
}

// at resolves one live slot. In RAM mode the entry's views alias the arenas
// and stay valid indefinitely; in paged mode they alias pinned pool pages
// and are valid only until this reader's next at or release.
func (r *corpusReader) at(slot int) (entry, error) {
	st := r.st
	if st.paged == nil {
		return st.at(slot), nil
	}
	x, err := r.cx.At(slot)
	if err != nil {
		return entry{}, err
	}
	e := entry{x: ts.Series(x)}
	if st.dim > 0 {
		if e.feat, err = r.cf.At(slot); err != nil {
			return entry{}, err
		}
	}
	if st.cdim > 0 {
		if e.cfeat, err = r.cc.At(slot); err != nil {
			return entry{}, err
		}
	}
	return e, nil
}

// featAt resolves just the feature vector of a slot (paged removals need
// only it, and skip pinning the series page).
func (r *corpusReader) featAt(slot int) ([]float64, error) {
	if r.st.paged == nil {
		return r.st.at(slot).feat, nil
	}
	return r.cf.At(slot)
}

// misses returns the real pool misses this reader has caused so far.
func (r *corpusReader) misses() int { return r.cx.Misses + r.cf.Misses + r.cc.Misses }

// release unpins the reader's cursors. The reader stays usable: the next
// at re-pins.
func (r *corpusReader) release() {
	r.cx.Release()
	r.cf.Release()
	r.cc.Release()
}

func newCorpus(t core.Transform, n int) corpus {
	dim := 0
	if t != nil {
		n = t.InputLen()
		dim = t.OutputLen()
	}
	st := corpus{transform: t, n: n, dim: dim, slots: make(map[int64]int32)}
	if st.coarse = coarseCompanion(n, t); st.coarse != nil {
		st.cdim = st.coarse.OutputLen()
	}
	return st
}

// at returns the entry stored in a live slot as views into the arena. RAM
// mode only: paged corpora resolve slots through a corpusReader.
func (st *corpus) at(slot int) entry {
	e := entry{x: ts.Series(st.xs[slot*st.n : (slot+1)*st.n : (slot+1)*st.n])}
	if st.dim > 0 {
		e.feat = st.fs[slot*st.dim : (slot+1)*st.dim : (slot+1)*st.dim]
	}
	if st.cdim > 0 {
		e.cfeat = st.cfs[slot*st.cdim : (slot+1)*st.cdim : (slot+1)*st.cdim]
	}
	return e
}

// entryOf resolves an id known to be present (an id obtained from the
// backend's spatial structure, which stays in lockstep with the corpus).
func (st *corpus) entryOf(id int64) entry { return st.at(int(st.slots[id])) }

// add validates and stores one series in a fresh arena slot, returning its
// entry and slot (for the backend to tag its spatial item with). The series
// is copied into the arena; the returned error mirrors Index.Add for every
// backend.
func (st *corpus) add(id int64, x ts.Series) (entry, int32, error) {
	if len(x) != st.n {
		return entry{}, 0, fmt.Errorf("index: series length %d, want %d", len(x), st.n)
	}
	if _, dup := st.slots[id]; dup {
		return entry{}, 0, fmt.Errorf("index: duplicate id %d", id)
	}
	slot := len(st.ids)
	if st.paged != nil {
		// Out-of-core: records are copied into pool pages; the returned
		// entry's vectors are freshly computed and owned by the caller
		// (spatial structures may retain them). A failed append means the
		// spill files are torn mid-slot — the caller must treat it as
		// fatal for this corpus.
		e := entry{x: x}
		if err := st.paged.xs.Append(x); err != nil {
			return entry{}, 0, err
		}
		if st.transform != nil {
			e.feat = st.transform.Apply(x)
			if err := st.paged.fs.Append(e.feat); err != nil {
				return entry{}, 0, err
			}
		}
		if st.coarse != nil {
			e.cfeat = st.coarse.Apply(x)
			if err := st.paged.cfs.Append(e.cfeat); err != nil {
				return entry{}, 0, err
			}
		}
		st.ids = append(st.ids, id)
		st.alive = append(st.alive, true)
		st.slots[id] = int32(slot)
		return e, int32(slot), nil
	}
	st.ids = append(st.ids, id)
	st.alive = append(st.alive, true)
	st.xs = append(st.xs, x...)
	if st.transform != nil {
		st.fs = append(st.fs, st.transform.Apply(x)...)
	}
	if st.coarse != nil {
		st.cfs = append(st.cfs, st.coarse.Apply(x)...)
	}
	st.slots[id] = int32(slot)
	return st.at(slot), int32(slot), nil
}

// remove tombstones the slot for id, returning its (still readable) entry
// for spatial-structure cleanup. The caller decides when to compact; the
// returned entry is valid until then. In paged mode only the feature
// vector is returned (copied out of the pool — it is all the spatial
// structures need); a spill read failure panics, because the corpus and
// its structures would otherwise fall out of lockstep.
func (st *corpus) remove(id int64) (entry, bool) {
	slot, ok := st.slots[id]
	if !ok {
		return entry{}, false
	}
	var e entry
	if st.paged != nil {
		if st.dim > 0 {
			r := st.reader()
			f, err := r.featAt(int(slot))
			if err != nil {
				r.release()
				panic(fmt.Sprintf("index: reading features of slot %d: %v", slot, err))
			}
			e.feat = append([]float64(nil), f...)
			r.release()
		}
	} else {
		e = st.at(int(slot))
	}
	delete(st.slots, id)
	st.alive[slot] = false
	st.dead++
	return e, true
}

// compactMinDead is the minimum tombstone count before compaction is
// considered: below it the dead space cannot be worth a rebuild.
const compactMinDead = 32

// shouldCompact reports whether tombstones dominate the arena. Checked by
// backends after each Remove; a true return is followed by compact() plus
// a spatial-structure rebuild over the fresh arena.
func (st *corpus) shouldCompact() bool {
	return st.dead >= compactMinDead && st.dead*2 > len(st.ids)
}

// compact repacks the live slots into fresh contiguous arenas, preserving
// slot order (and thus the deterministic insertion order the linear scan
// iterates in). The old blocks are left untouched so concurrently held
// entry views and spatial-structure point slices stay value-correct; they
// are garbage once the owning backend rebuilds its structure.
func (st *corpus) compact() {
	liveCount := len(st.ids) - st.dead
	ids := make([]int64, 0, liveCount)
	alive := make([]bool, 0, liveCount)
	xs := make([]float64, 0, liveCount*st.n)
	var fs, cfs []float64
	if st.dim > 0 {
		fs = make([]float64, 0, liveCount*st.dim)
	}
	if st.cdim > 0 {
		cfs = make([]float64, 0, liveCount*st.cdim)
	}
	for slot, id := range st.ids {
		if !st.alive[slot] {
			continue
		}
		st.slots[id] = int32(len(ids))
		ids = append(ids, id)
		alive = append(alive, true)
		xs = append(xs, st.xs[slot*st.n:(slot+1)*st.n]...)
		if st.dim > 0 {
			fs = append(fs, st.fs[slot*st.dim:(slot+1)*st.dim]...)
		}
		if st.cdim > 0 {
			cfs = append(cfs, st.cfs[slot*st.cdim:(slot+1)*st.cdim]...)
		}
	}
	st.ids, st.alive, st.xs, st.fs, st.cfs = ids, alive, xs, fs, cfs
	st.dead = 0
	st.compactions++
}

// compactPagedCols is compact for an out-of-core corpus: live records
// stream from the old columns into fresh ones (slot order preserved), and
// the swap — columns, ids, alive, slots — happens only after every copy
// succeeded. On error the corpus is untouched (the fresh columns are
// discarded), so the caller may simply retry at the next removal.
func (st *corpus) compactPagedCols() error {
	old := st.paged
	fresh := &pagedCols{sp: old.sp}
	var err error
	if fresh.xs, err = old.sp.NewColumn(st.n); err != nil {
		return err
	}
	if st.dim > 0 {
		if fresh.fs, err = old.sp.NewColumn(st.dim); err != nil {
			_ = fresh.close()
			return err
		}
	}
	if st.cdim > 0 {
		if fresh.cfs, err = old.sp.NewColumn(st.cdim); err != nil {
			_ = fresh.close()
			return err
		}
	}
	liveCount := len(st.ids) - st.dead
	ids := make([]int64, 0, liveCount)
	r := st.reader()
	for slot, id := range st.ids {
		if !st.alive[slot] {
			continue
		}
		var e entry
		if e, err = r.at(slot); err == nil {
			// Append copies into the target page while the source page
			// stays pinned by the cursor; the pool handles both pins.
			if err = fresh.xs.Append(e.x); err == nil && st.dim > 0 {
				err = fresh.fs.Append(e.feat)
			}
			if err == nil && st.cdim > 0 {
				err = fresh.cfs.Append(e.cfeat)
			}
		}
		if err != nil {
			r.release()
			_ = fresh.close()
			return err
		}
		ids = append(ids, id)
	}
	r.release()
	for i, id := range ids {
		st.slots[id] = int32(i)
	}
	alive := make([]bool, len(ids))
	for i := range alive {
		alive[i] = true
	}
	st.ids, st.alive = ids, alive
	st.dead = 0
	st.compactions++
	st.paged = fresh
	_ = old.close()
	return nil
}

func (st *corpus) len() int { return len(st.slots) }

func (st *corpus) get(id int64) (ts.Series, bool) {
	slot, ok := st.slots[id]
	if !ok {
		return nil, false
	}
	if st.paged == nil {
		return st.at(int(slot)).x, true
	}
	r := st.reader()
	defer r.release()
	e, err := r.at(int(slot))
	if err != nil {
		return nil, false
	}
	return append(ts.Series(nil), e.x...), true
}

// visit walks live slots in slot (= insertion) order — deterministic,
// unlike the map iteration it replaced. In paged mode each series is
// copied out of the pool (fn may retain it) and a spill read failure
// panics; error-aware callers (snapshots) use visitErr instead.
func (st *corpus) visit(fn func(id int64, x ts.Series)) {
	if err := st.visitErr(fn); err != nil {
		panic(fmt.Sprintf("index: visiting paged corpus: %v", err))
	}
}

// visitErr is visit propagating paged read failures (always nil in RAM
// mode). Snapshot paths use it so a torn spill page fails the snapshot
// loudly instead of silently dropping series.
func (st *corpus) visitErr(fn func(id int64, x ts.Series)) error {
	if st.paged == nil {
		for slot, id := range st.ids {
			if st.alive[slot] {
				fn(id, st.at(slot).x)
			}
		}
		return nil
	}
	r := st.reader()
	defer r.release()
	for slot, id := range st.ids {
		if !st.alive[slot] {
			continue
		}
		e, err := r.at(slot)
		if err != nil {
			return err
		}
		fn(id, append(ts.Series(nil), e.x...))
	}
	return nil
}

// visitEntries is visit with the slot and cached feature vector included
// (used by backend rebuilds after compaction, which tag the fresh spatial
// items with their arena slots). In paged mode the entry's vectors are
// copied out of the pool, so fn may retain them; a spill read failure
// panics (rebuilds have no error channel, and a partial rebuild would
// break the corpus/structure lockstep).
func (st *corpus) visitEntries(fn func(slot int32, id int64, e entry)) {
	if st.paged == nil {
		for slot, id := range st.ids {
			if st.alive[slot] {
				fn(int32(slot), id, st.at(slot))
			}
		}
		return
	}
	r := st.reader()
	defer r.release()
	for slot, id := range st.ids {
		if !st.alive[slot] {
			continue
		}
		e, err := r.at(slot)
		if err != nil {
			panic(fmt.Sprintf("index: reading slot %d during rebuild: %v", slot, err))
		}
		cp := entry{x: append(ts.Series(nil), e.x...)}
		if st.dim > 0 {
			cp.feat = append([]float64(nil), e.feat...)
		}
		if st.cdim > 0 {
			cp.cfeat = append([]float64(nil), e.cfeat...)
		}
		fn(int32(slot), id, cp)
	}
}

// liveSlots appends every live slot index to dst in slot order (the linear
// scan's candidate list, built into pooled scratch).
func (st *corpus) liveSlots(dst []int32) []int32 {
	for slot := range st.ids {
		if st.alive[slot] {
			dst = append(dst, int32(slot))
		}
	}
	return dst
}

// checkQuery validates a query series length uniformly across backends.
func (st *corpus) checkQuery(q ts.Series) error {
	if len(q) != st.n {
		return fmt.Errorf("index: %w: got %d, want %d", ErrQueryLength, len(q), st.n)
	}
	return nil
}
