package index

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"warping/internal/core"
	"warping/internal/store"
	"warping/internal/ts"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for _, tr := range []core.Transform{
		core.NewPAA(testN, testDim),
		core.NewKeoghPAA(testN, testDim),
		core.NewDFT(testN, testDim),
		core.NewHaar(testN, testDim),
	} {
		ix, _, data := buildIndex(r, tr, 100)
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		back, err := Load(&buf, Config{})
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if back.Len() != ix.Len() {
			t.Fatalf("%s: len %d vs %d", tr.Name(), back.Len(), ix.Len())
		}
		if back.Transform().Name() != tr.Name() {
			t.Errorf("%s: transform name %q", tr.Name(), back.Transform().Name())
		}
		// Queries must return identical results.
		for trial := 0; trial < 5; trial++ {
			q := randomWalk(r, testN)
			a, _ := ix.RangeQuery(q, float64(testN)*0.06, 0.1)
			b, _ := back.RangeQuery(q, float64(testN)*0.06, 0.1)
			if len(a) != len(b) {
				t.Fatalf("%s: %d vs %d matches", tr.Name(), len(a), len(b))
			}
			for i := range a {
				if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
					t.Fatalf("%s: match %d differs", tr.Name(), i)
				}
			}
		}
		_ = data
	}
}

func TestSaveLoadSVD(t *testing.T) {
	// SVD matrices are data-fitted; the snapshot must restore the exact
	// matrix, not refit.
	r := rand.New(rand.NewSource(52))
	training := make([]ts.Series, 30)
	for i := range training {
		training[i] = randomWalk(r, testN)
	}
	tr := core.NewSVD(training, testDim)
	ix := New(tr, Config{})
	for i := 0; i < 50; i++ {
		ix.MustAdd(int64(i), randomWalk(r, testN))
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	x := randomWalk(r, testN)
	a := ix.Transform().Apply(x)
	b := back.Transform().Apply(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d: %v vs %v (matrix not restored exactly)", i, a[i], b[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk")), Config{}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil), Config{}); err == nil {
		t.Error("empty payload accepted")
	}
}

// Truncated, bit-flipped and foreign payloads must surface the store
// package's typed errors instead of raw gob decode failures.
func TestLoadTypedErrors(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 40)
	var snap bytes.Buffer
	if err := ix.Save(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	flip := func(i int) []byte {
		mut := bytes.Clone(good)
		mut[i] ^= 0x08
		return mut
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, store.ErrTruncated},
		{"truncated magic", good[:3], store.ErrTruncated},
		{"truncated header", good[:10], store.ErrTruncated},
		{"truncated mid payload", good[:len(good)/3], store.ErrTruncated},
		{"truncated last byte", good[:len(good)-1], store.ErrTruncated},
		{"bit flip in magic", flip(0), store.ErrBadMagic},
		{"bit flip in header", flip(8), store.ErrChecksum},
		{"bit flip in payload", flip(len(good) / 2), store.ErrChecksum},
		{"foreign bytes", []byte("RIFFxxxxWAVE definitely not an index snapshot"), store.ErrBadMagic},
	}
	for _, tc := range cases {
		_, err := Load(bytes.NewReader(tc.data), Config{})
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestSaveLoadEmptyIndex(t *testing.T) {
	ix := New(core.NewPAA(testN, testDim), Config{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("Len = %d", back.Len())
	}
}
