package index

import (
	"fmt"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/ts"
)

// Plan shipping: a coordinator computes one Plan for a logical query —
// normal form, k-envelope, feature-space box — and fans it out to shard
// groups over the wire, so the envelope transform runs exactly once per
// query for the whole cluster instead of once per replica. PlanWire is
// the JSON-serializable projection; PlanFromWire validates and rebuilds a
// Plan without recomputing any transform work.

// PlanWire is the serialized form of a Plan.
type PlanWire struct {
	// Q is the normalized query series.
	Q []float64 `json:"q"`
	// Band is the warping band radius the envelope was computed at.
	Band int `json:"band"`
	// EnvLo/EnvHi are the query's k-envelope (same length as Q).
	EnvLo []float64 `json:"env_lo"`
	EnvHi []float64 `json:"env_hi"`
	// FeLo/FeHi are the feature-space envelope box; empty when the plan
	// carries no transform.
	FeLo []float64 `json:"fe_lo,omitempty"`
	FeHi []float64 `json:"fe_hi,omitempty"`
	// CoarseLo/CoarseHi are the coarse New_PAA pre-stage box; empty when
	// the series length forbids a coarse companion (see coarseCompanion).
	CoarseLo []float64 `json:"coarse_lo,omitempty"`
	CoarseHi []float64 `json:"coarse_hi,omitempty"`
}

// NewQueryPlan computes a standalone plan — the coordinator-side
// constructor, for callers that hold a transform but no index. tr may be
// nil (no feature box; only meaningful for transform-less backends). The
// coarse pre-stage box is included exactly when a replica corpus of the
// same shape would carry a coarse column (coarseCompanion is a pure
// function of the series length and tr), so the planned-query path and the
// single-node path run the identical cascade.
func NewQueryPlan(q ts.Series, delta float64, tr core.Transform) *Plan {
	return makePlan(q, delta, len(q), tr, coarseCompanion(len(q), tr))
}

// SeriesLen returns the length of the plan's query series, which must
// match the normal-form length of any index the plan is executed against.
func (p *Plan) SeriesLen() int { return len(p.q) }

// Wire returns the serializable projection of the plan. The slices alias
// the plan's internal state, which is immutable — callers must not write
// through them.
func (p *Plan) Wire() PlanWire {
	w := PlanWire{
		Q:     p.q,
		Band:  p.band,
		EnvLo: p.env.Lower,
		EnvHi: p.env.Upper,
	}
	if p.hasFE {
		w.FeLo = p.fe.Lower
		w.FeHi = p.fe.Upper
	}
	if p.hasCFE {
		w.CoarseLo = p.cfe.Lower
		w.CoarseHi = p.cfe.Upper
	}
	return w
}

// CheckPlan verifies that a (possibly shipped) plan is executable against
// this index: the query length matches the normal-form length and, when
// both sides carry a feature box, the dimensionalities agree. A plan
// without a feature box is allowed — the cascade just skips the box
// pre-check — but a box of the wrong dimensionality would index out of
// bounds in the verification kernels and is rejected up front.
func (sh *Sharded) CheckPlan(p *Plan) error {
	if p.SeriesLen() != sh.SeriesLen() {
		return queryLengthError(p.SeriesLen(), sh.SeriesLen())
	}
	st := corpusOf(sh)
	if st.transform != nil && p.hasFE && p.fe.Len() != st.transform.OutputLen() {
		return fmt.Errorf("index: plan feature box has dim %d, index transform has %d", p.fe.Len(), st.transform.OutputLen())
	}
	if st.cdim > 0 && p.hasCFE && p.cfe.Len() != st.cdim {
		return fmt.Errorf("index: plan coarse box has dim %d, index coarse column has %d", p.cfe.Len(), st.cdim)
	}
	return nil
}

// PlanFromWire validates a shipped plan and rebuilds it. The envelope and
// feature box are trusted as computed (that is the point of shipping: no
// recomputation) but must be structurally sound — matching lengths, a
// well-formed lower<=upper envelope — so a corrupt or adversarial plan
// cannot index out of bounds or break the no-false-negative cascade in
// silent ways.
func PlanFromWire(w PlanWire) (*Plan, error) {
	if len(w.Q) == 0 {
		return nil, fmt.Errorf("index: shipped plan has empty query")
	}
	if w.Band < 0 || w.Band >= len(w.Q) {
		return nil, fmt.Errorf("index: shipped plan band %d out of range for length %d", w.Band, len(w.Q))
	}
	env := dtw.Envelope{Lower: w.EnvLo, Upper: w.EnvHi}
	if len(w.EnvLo) != len(w.Q) || !env.Valid() {
		return nil, fmt.Errorf("index: shipped plan envelope malformed")
	}
	p := &Plan{q: w.Q, band: w.Band, env: env}
	if len(w.FeLo) > 0 || len(w.FeHi) > 0 {
		fe := core.FeatureEnvelope{Lower: w.FeLo, Upper: w.FeHi}
		if !fe.Valid() {
			return nil, fmt.Errorf("index: shipped plan feature box malformed")
		}
		p.fe = fe
		p.hasFE = true
	}
	if len(w.CoarseLo) > 0 || len(w.CoarseHi) > 0 {
		cfe := core.FeatureEnvelope{Lower: w.CoarseLo, Upper: w.CoarseHi}
		if !cfe.Valid() {
			return nil, fmt.Errorf("index: shipped plan coarse box malformed")
		}
		p.cfe = cfe
		p.hasCFE = true
	}
	return p, nil
}
