package index

import (
	"math"
	"testing"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/ts"
)

// cascadeSeries decodes a byte string into a query/candidate pair whose
// length is a positive multiple of 8 (so both the 8-dim New_PAA and the
// 4-dim coarse companion divide it) plus a band radius, mirroring the dtw
// package's fuzz decoding.
func cascadeSeries(data []byte) (x, q ts.Series, k int, ok bool) {
	if len(data) < 17 {
		return nil, nil, 0, false
	}
	kByte := data[0]
	payload := data[1:]
	n := (len(payload) / 2) &^ 7
	if n < 8 || n > 96 {
		return nil, nil, 0, false
	}
	x = make(ts.Series, n)
	q = make(ts.Series, n)
	for i := 0; i < n; i++ {
		x[i] = float64(payload[i])/16 - 8
		q[i] = float64(payload[n+i])/16 - 8
	}
	k = int(kByte) % n
	return x, q, k, true
}

// FuzzCascadeSoundness pins the whole four-stage chain on arbitrary series:
//
//	coarse New_PAA box <= fine New_PAA box <= LB_Keogh <= LB_Improved <= banded DTW²
//
// and then runs the production cascade itself at a cutoff equal to the
// exact distance, asserting no stage dismisses the true match — the
// exactness guarantee every query result rests on.
func FuzzCascadeSoundness(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Add(append([]byte{0}, make([]byte, 64)...))
	long := make([]byte, 129)
	for i := range long {
		long[i] = byte(i * 2)
	}
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		x, q, k, ok := cascadeSeries(data)
		if !ok {
			t.Skip()
		}
		n := len(x)
		exact := dtw.SquaredBanded(x, q, k)
		tol := 1e-9 * (1 + exact)

		env := dtw.NewEnvelope(q, k)
		fine := core.NewPAA(n, 8)
		coarse := core.NewCoarsePAA(n)
		fe := fine.ApplyEnvelope(env)
		cfe := coarse.ApplyEnvelope(env)
		e := entry{x: x, feat: fine.Apply(x), cfeat: coarse.Apply(x)}

		cb := core.SquaredDistToBox(e.cfeat, cfe)
		fb := core.SquaredDistToBox(e.feat, fe)
		fwd, ok2 := dtw.SquaredDistToEnvelopeWithin(x, env, math.MaxFloat64)
		if !ok2 {
			t.Fatal("infinite cutoff abandoned")
		}
		v := getVerifier()
		defer putVerifier(v)
		improved := fwd
		if k > 0 {
			improved, ok2 = v.ws.SquaredLBImprovedWithin(q, x, env, k, fwd, math.MaxFloat64)
			if !ok2 {
				t.Fatal("infinite cutoff abandoned")
			}
		}
		// New_PAA coarsens the fine PAA frames, so its box is nested inside
		// the fine one; both are Theorem 1 bounds below LB_Keogh.
		if cb > fb+tol {
			t.Fatalf("coarse box %v > fine box %v (n=%d k=%d)", cb, fb, n, k)
		}
		if fb > fwd+tol {
			t.Fatalf("fine box %v > LB_Keogh %v (n=%d k=%d)", fb, fwd, n, k)
		}
		if improved < fwd {
			t.Fatalf("LB_Improved %v < LB_Keogh %v (n=%d k=%d)", improved, fwd, n, k)
		}
		if improved > exact+tol {
			t.Fatalf("LB_Improved %v > exact %v (n=%d k=%d)", improved, exact, n, k)
		}

		// The production cascade at cutoff == the exact distance must pass
		// the candidate through every stage.
		if o := v.cascade(q, env, &cfe, &fe, k, e, exact+tol); o != lbPassed {
			t.Fatalf("cascade pruned a true match at stage %d (n=%d k=%d)", o, n, k)
		}
	})
}
