package index

import (
	"fmt"
	"math/rand"
	"testing"

	"warping/internal/core"
	"warping/internal/pager"
	"warping/internal/ts"
)

// pagedBenchPools sweeps the buffer pool from pathologically small (every
// query thrashes) to comfortably larger than the hot set. 0 is the
// all-in-RAM baseline.
var pagedBenchPools = []int{0, 16, 64, 256, 1024}

func poolName(n int) string {
	if n == 0 {
		return "ram"
	}
	return fmt.Sprintf("pool=%d", n)
}

// pagedBenchCorpus bulk-loads `count` random walks into an R*-tree index,
// out-of-core behind a pool of `pool` pages (or all-in-RAM for pool 0),
// and returns query series drawn from the same distribution.
func pagedBenchCorpus(b *testing.B, pool, count int) (*Index, *pager.Space, []ts.Series) {
	b.Helper()
	cfg := Config{}
	var sp *pager.Space
	if pool > 0 {
		pcfg := pager.Config{Dir: b.TempDir(), PoolPages: pool}
		pcfg.PageSize = pcfg.FitPageSize(testN)
		var err error
		if sp, err = pager.Open(pcfg); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			if err := sp.Close(); err != nil {
				b.Errorf("closing space: %v", err)
			}
		})
		cfg.Pager = sp
	}
	r := rand.New(rand.NewSource(int64(4000 + pool)))
	entries := make([]Entry, count)
	for i := range entries {
		entries[i] = Entry{ID: int64(i + 1), Series: randomWalk(r, testN)}
	}
	ix, err := BulkLoad(core.NewPAA(testN, testDim), cfg, entries)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	queries := make([]ts.Series, 8)
	for i := range queries {
		queries[i] = randomWalk(r, testN)
	}
	return ix, sp, queries
}

func reportPool(b *testing.B, sp *pager.Space, before pager.Stats) {
	if sp == nil {
		return
	}
	after := sp.Stats()
	hits := float64(after.Hits - before.Hits)
	misses := float64(after.Misses - before.Misses)
	if hits+misses > 0 {
		b.ReportMetric(100*hits/(hits+misses), "hit%")
	}
	b.ReportMetric(misses/float64(b.N), "misses/op")
}

// BenchmarkPagedRangeWarm measures steady-state range-query latency as the
// pool shrinks: once the hot pages (upper tree levels, frequently re-read
// leaves) fit, the paged index should track the RAM baseline, and the hit%
// metric shows where that knee is.
func BenchmarkPagedRangeWarm(b *testing.B) {
	for _, pool := range pagedBenchPools {
		b.Run(poolName(pool), func(b *testing.B) {
			ix, sp, queries := pagedBenchCorpus(b, pool, 4000)
			// Warm the pool with one pass over the query set.
			for _, q := range queries {
				ix.RangeQuery(q, 40, 0.1)
			}
			var before pager.Stats
			if sp != nil {
				before = sp.Stats()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.RangeQuery(queries[i%len(queries)], 40, 0.1)
			}
			b.StopTimer()
			reportPool(b, sp, before)
		})
	}
}

// BenchmarkPagedRangeCold resets the pool before every query, so each
// iteration pays the full fault-in cost from page files: the worst case a
// freshly started (or badly undersized) server sees. The RAM baseline has
// nothing to fault and bounds the achievable latency.
func BenchmarkPagedRangeCold(b *testing.B) {
	for _, pool := range pagedBenchPools {
		b.Run(poolName(pool), func(b *testing.B) {
			ix, sp, queries := pagedBenchCorpus(b, pool, 4000)
			// Reset zeroes the pool counters along with the frames, so
			// per-iteration totals are accumulated rather than diffed
			// against a pre-loop snapshot.
			var hits, misses uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sp != nil {
					b.StopTimer()
					if err := sp.Pool().Reset(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				ix.RangeQuery(queries[i%len(queries)], 40, 0.1)
				if sp != nil {
					b.StopTimer()
					st := sp.Stats()
					hits += st.Hits
					misses += st.Misses
					b.StartTimer()
				}
			}
			b.StopTimer()
			if sp != nil {
				if h, m := float64(hits), float64(misses); h+m > 0 {
					b.ReportMetric(100*h/(h+m), "hit%")
				}
				b.ReportMetric(float64(misses)/float64(b.N), "misses/op")
			}
		})
	}
}

// BenchmarkPagedKNNWarm is the kNN twin of the warm range sweep: the
// shrinking best-k radius makes page demand data-dependent, so hit rates
// degrade differently than for fixed-radius search.
func BenchmarkPagedKNNWarm(b *testing.B) {
	for _, pool := range pagedBenchPools {
		b.Run(poolName(pool), func(b *testing.B) {
			ix, sp, queries := pagedBenchCorpus(b, pool, 4000)
			for _, q := range queries {
				ix.KNN(q, 5, 0.1)
			}
			var before pager.Stats
			if sp != nil {
				before = sp.Stats()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.KNN(queries[i%len(queries)], 5, 0.1)
			}
			b.StopTimer()
			reportPool(b, sp, before)
		})
	}
}
