// Result-cache keys: a compact, deterministic identity for a query plan,
// quantized so near-identical hums of the same melody collapse onto one
// key. Two queries share a key exactly when they agree on band radius,
// result size and every feature-envelope coordinate rounded to the
// quantization step — by construction the cache then serves one
// representative's verified result set for the whole equivalence class
// (that is the point: hot QBH traffic is thousands of near-identical
// contours of the same trending song). The key is a plain byte string so
// the coordinator can ship it to replicas verbatim and every replica's
// cache agrees on hits without recomputing the transform.
package index

import (
	"math"
	"strconv"
)

// CacheKeyQuantum is the feature-space rounding step of CacheKey. Feature
// coordinates are sums of semitone values over envelope segments; half a
// semitone absorbs pitch-tracking jitter between two hums of the same
// phrase without conflating genuinely different contours.
const CacheKeyQuantum = 0.5

// CacheKey returns the quantized identity of this plan for a kNN query of
// the given result size. Plans without a feature envelope (transform-less
// scan) quantize the raw normal-form series instead — longer, but still
// deterministic and collision-safe at the same resolution.
func (p *Plan) CacheKey(topK int) string {
	b := make([]byte, 0, 16+18*2*len(p.fe.Lower))
	b = append(b, 'k')
	b = strconv.AppendInt(b, int64(topK), 10)
	b = append(b, '|', 'b')
	b = strconv.AppendInt(b, int64(p.band), 10)
	b = append(b, '|')
	quant := func(v float64) {
		b = strconv.AppendInt(b, int64(math.Round(v/CacheKeyQuantum)), 10)
		b = append(b, ',')
	}
	if p.hasFE {
		b = append(b, 'f')
		for _, v := range p.fe.Lower {
			quant(v)
		}
		for _, v := range p.fe.Upper {
			quant(v)
		}
	} else {
		b = append(b, 'q')
		for _, v := range p.q {
			quant(v)
		}
	}
	return string(b)
}
