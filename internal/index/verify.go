// Candidate verification: the refinement step shared by the range-query
// backends. Candidates surviving the feature-space filter run through a
// cascade of ever-tighter lower bounds and finally exact banded DTW, all of
// it allocation-free in steady state (pooled dtw.Workspaces) and — for
// large candidate sets — fanned out across GOMAXPROCS workers.
package index

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// verifier bundles the scratch state one goroutine needs to verify
// candidates. Obtained from a sync.Pool so concurrent queries (and the
// workers of one parallel query) never contend on shared buffers.
type verifier struct {
	ws dtw.Workspace
}

var verifierPool = sync.Pool{New: func() interface{} { return new(verifier) }}

func getVerifier() *verifier  { return verifierPool.Get().(*verifier) }
func putVerifier(v *verifier) { verifierPool.Put(v) }

// The reversed-role LB_Keogh pass costs an O(n) candidate envelope (three
// deque sweeps) per call, while the exact DP it tries to save costs
// O(n*(2k+1)) — but abandons early, so for narrow bands the DP dismisses a
// non-match almost as cheaply as the reversed bound would. Benchmarks on
// random-walk data (n=128) show the reversed pass is a net loss below
// k≈8 and only pays off when the band is wide enough that each avoided DP
// run covers many envelope computations. Both gates are purely performance
// heuristics: skipping a lower bound can only send more candidates to
// exact DTW, never dismiss a true match.
//
// reversedLBMinBand: engage the reversed pass only at band radii where the
// DP is expensive enough to insure against. reversedLBGate: even then,
// only when the forward bound landed within this fraction of the cutoff —
// the two bounds are strongly correlated, so a candidate with lots of
// forward slack is almost never pruned by the reversed pass.
const (
	reversedLBMinBand = 8
	reversedLBGate    = 0.25
)

// passesLB runs the lower-bound cascade for a range query at threshold
// eps2 (squared): the O(dim) feature-space box distance against the cached
// feature vector, the full-dimensional LB_Keogh distance to the query
// envelope, and — when the forward bound is tight enough to make it
// worthwhile — the reversed-role LB_Keogh second pass (envelope of the
// candidate, Lemire's two-pass bound). Every stage abandons at eps2; a
// false return means the candidate provably cannot match (no false
// dismissals, Theorem 1 / Lemma 2 symmetry).
func (v *verifier) passesLB(e entry, q ts.Series, env dtw.Envelope, fe core.FeatureEnvelope, k int, eps2 float64) bool {
	if core.SquaredDistToBox(e.feat, fe) > eps2 {
		return false
	}
	fwd, ok := dtw.SquaredDistToEnvelopeWithin(e.x, env, eps2)
	if !ok {
		return false
	}
	if k >= reversedLBMinBand && fwd > eps2*reversedLBGate {
		if _, ok := v.ws.SquaredReversedLBKeoghWithin(q, e.x, k, eps2); !ok {
			return false
		}
	}
	return true
}

// parallelVerifyMin is the candidate-set size below which verification
// stays sequential: spawning workers costs more than the cascade saves on
// small sets.
const parallelVerifyMin = 64

// verifyCandidates refines the candidate set of a range query into exact
// matches (unsorted). It updates stats.LBSurvivors, stats.ExactDTW and
// stats.Degraded, honors the context and lim.MaxExactDTW, and picks the
// sequential or parallel strategy by candidate-set size. The returned
// error is ctx.Err() when the query was abandoned mid-verification.
func (ix *Index) verifyCandidates(ctx context.Context, q ts.Series, env dtw.Envelope, fe core.FeatureEnvelope, items []rtree.Item, k int, epsilon float64, lim Limits, stats *QueryStats) ([]Match, error) {
	if len(items) >= parallelVerifyMin && runtime.GOMAXPROCS(0) > 1 {
		return ix.verifyParallel(ctx, q, env, fe, items, k, epsilon, lim, stats)
	}

	v := getVerifier()
	defer putVerifier(v)
	eps2 := epsilon * epsilon
	var out []Match
	var err error
	for _, it := range items {
		if e := ctx.Err(); e != nil {
			err = e
			break
		}
		if lim.MaxExactDTW > 0 && stats.ExactDTW >= lim.MaxExactDTW {
			stats.Degraded = true
			break
		}
		e := ix.series[it.ID]
		if !v.passesLB(e, q, env, fe, k, eps2) {
			continue
		}
		stats.LBSurvivors++
		if lim.CandidateHook != nil {
			lim.CandidateHook()
		}
		stats.ExactDTW++
		// Early-abandoning DTW: most candidates blow past epsilon in the
		// first few DP rows.
		if d2, ok := v.ws.SquaredBandedWithin(e.x, q, k, eps2); ok {
			out = append(out, Match{ID: it.ID, Dist: math.Sqrt(d2)})
		}
	}
	return out, err
}

// verifyParallel fans candidate verification out across GOMAXPROCS
// workers. Each worker pulls candidates from a shared atomic cursor (cheap
// dynamic load balancing: early-abandoned candidates cost far less than
// verified ones), verifies with its own pooled workspace, and appends to a
// private match list; the caller's deterministic (dist, id) sort makes the
// merged result independent of scheduling. Cancellation, the MaxExactDTW
// budget (an atomic reservation counter) and CandidateHook serialization
// are preserved, so results are bit-identical to the sequential path
// whenever the query runs to completion.
func (ix *Index) verifyParallel(ctx context.Context, q ts.Series, env dtw.Envelope, fe core.FeatureEnvelope, items []rtree.Item, k int, epsilon float64, lim Limits, stats *QueryStats) ([]Match, error) {
	workers := runtime.GOMAXPROCS(0)
	if max := len(items) / (parallelVerifyMin / 4); workers > max {
		workers = max
	}
	eps2 := epsilon * epsilon
	var (
		cursor    int64 // next candidate index to claim
		survivors int64 // candidates that passed the LB cascade
		reserved  int64 // exact-DTW budget reservations
		degraded  int32 // budget exhausted with work left
		aborted   int32 // a worker observed ctx cancellation
		hookMu    sync.Mutex
		wg        sync.WaitGroup
	)
	perWorker := make([][]Match, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := getVerifier()
			defer putVerifier(v)
			var local []Match
			for {
				if atomic.LoadInt32(&degraded) != 0 {
					break
				}
				if ctx.Err() != nil {
					atomic.StoreInt32(&aborted, 1)
					break
				}
				i := int(atomic.AddInt64(&cursor, 1)) - 1
				if i >= len(items) {
					break
				}
				e := ix.series[items[i].ID]
				if !v.passesLB(e, q, env, fe, k, eps2) {
					continue
				}
				n := atomic.AddInt64(&reserved, 1)
				if lim.MaxExactDTW > 0 && n > int64(lim.MaxExactDTW) {
					atomic.StoreInt32(&degraded, 1)
					break
				}
				atomic.AddInt64(&survivors, 1)
				if lim.CandidateHook != nil {
					hookMu.Lock()
					lim.CandidateHook()
					hookMu.Unlock()
				}
				if d2, ok := v.ws.SquaredBandedWithin(e.x, q, k, eps2); ok {
					local = append(local, Match{ID: items[i].ID, Dist: math.Sqrt(d2)})
				}
			}
			perWorker[w] = local
		}(w)
	}
	wg.Wait()

	performed := reserved
	if lim.MaxExactDTW > 0 && performed > int64(lim.MaxExactDTW) {
		performed = int64(lim.MaxExactDTW)
	}
	stats.LBSurvivors += int(survivors)
	stats.ExactDTW += int(performed)
	stats.Degraded = stats.Degraded || degraded != 0

	var total int
	for _, l := range perWorker {
		total += len(l)
	}
	out := make([]Match, 0, total)
	for _, l := range perWorker {
		out = append(out, l...)
	}
	var err error
	if aborted != 0 {
		err = ctx.Err()
	}
	return out, err
}
