// Candidate verification: the refinement cascade shared by every backend.
// Candidates surviving a backend's feature-space filter (R*-tree box
// search, grid-file cell scan, or the trivial all-candidates filter of the
// linear scan) run through a cascade of ever-tighter lower bounds and
// finally exact banded DTW, all of it allocation-free in steady state
// (pooled dtw.Workspaces) and — for large candidate sets — fanned out
// across GOMAXPROCS workers. The cascade is generic over the backend's
// candidate type, so no backend pays an allocation to adapt its candidate
// list.
package index

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/gridfile"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// verifier bundles the scratch state one goroutine needs to verify
// candidates. Obtained from a sync.Pool so concurrent queries (and the
// workers of one parallel query) never contend on shared buffers.
type verifier struct {
	ws dtw.Workspace
}

var verifierPool = sync.Pool{New: func() interface{} { return new(verifier) }}

func getVerifier() *verifier  { return verifierPool.Get().(*verifier) }
func putVerifier(v *verifier) { verifierPool.Put(v) }

// lbOutcome reports how far a candidate got through the lower-bound
// cascade: which stage pruned it, or lbPassed when it must go to exact
// DTW. The ordering matters — stage survivor counters increment for every
// outcome strictly beyond that stage.
type lbOutcome uint8

const (
	prunedCoarse lbOutcome = iota
	prunedKeogh
	prunedImproved
	lbPassed
)

// rangeQuery carries the per-query constants of one range verification:
// the query, its envelope and (when the backend has a transform) the
// feature-space box and the coarse New_PAA box, the band radius and the
// squared threshold. useLB false disables the whole lower-bound cascade —
// the brute-force scan baseline used by the experiments package.
type rangeQuery struct {
	q     ts.Series
	env   dtw.Envelope
	fe    *core.FeatureEnvelope // nil: no transform, skip the box pre-check
	cfe   *core.FeatureEnvelope // nil: no coarse column, skip the pre-stage
	band  int
	eps2  float64
	useLB bool
}

// cascade runs the four-stage lower-bound cascade against one candidate at
// squared threshold w2:
//
//  1. the O(4) coarse New_PAA box distance (an independent instance of
//     Theorem 1 — sound regardless of the fine transform);
//  2. the O(dim) fine feature-space box distance (when the caller did not
//     already apply it spatially);
//  3. the full-dimensional LB_Keogh distance to the query envelope, early
//     abandoning at w2;
//  4. Lemire's LB_Improved second pass over LB_Keogh survivors: the
//     candidate is projected onto the query envelope (SIMD clamp kernel)
//     and the distance from the query to the projection's envelope is
//     added to the forward bound, early abandoning at the remaining
//     budget w2-fwd. At band 0 the projection's envelope degenerates to
//     the query itself (the second term is identically zero), so the pass
//     is skipped.
//
// Every stage is a lower bound of squared banded DTW, so a pruned outcome
// means the candidate provably cannot match (no false dismissals); each
// stage is tighter and costlier than the one before it.
func (v *verifier) cascade(q ts.Series, env dtw.Envelope, cfe, fe *core.FeatureEnvelope, band int, e entry, w2 float64) lbOutcome {
	if cfe != nil && len(e.cfeat) > 0 && core.SquaredDistToBox(e.cfeat, *cfe) > w2 {
		return prunedCoarse
	}
	if fe != nil && core.SquaredDistToBox(e.feat, *fe) > w2 {
		return prunedKeogh
	}
	fwd, ok := dtw.SquaredDistToEnvelopeWithin(e.x, env, w2)
	if !ok {
		return prunedKeogh
	}
	if band > 0 {
		if _, ok := v.ws.SquaredLBImprovedWithin(q, e.x, env, band, fwd, w2); !ok {
			return prunedImproved
		}
	}
	return lbPassed
}

// rangeCascade is cascade at the range query's fixed threshold; useLB
// false passes everything (brute-force baseline).
func (v *verifier) rangeCascade(e entry, rq *rangeQuery) lbOutcome {
	if !rq.useLB {
		return lbPassed
	}
	return v.cascade(rq.q, rq.env, rq.cfe, rq.fe, rq.band, e, rq.eps2)
}

// countStage accumulates the per-stage survivor counters for one cascade
// outcome (LBSurvivors is counted by the caller next to the DTW budget
// reservation, preserving the established counting order).
func countStage(stats *QueryStats, o lbOutcome) {
	if o > prunedCoarse {
		stats.CoarseSurvivors++
	}
	if o > prunedKeogh {
		stats.KeoghSurvivors++
	}
}

// Candidate resolvers: each backend names its candidate element type
// once, and the generic cascade resolves (id, entry) through a static
// function — no per-query conversion of the candidate list, no closure
// allocation. Every resolver goes through a corpusReader: in RAM mode that
// is a direct arena access (spatial items carry their corpus slot, tagged
// at insert/rebuild time, so no candidate pays an id→slot map lookup); in
// paged mode the reader pins the slot's pages and counts real pool misses.
func rtreeCand(r *corpusReader, it rtree.Item) (int64, entry, error) {
	e, err := r.at(int(it.Slot))
	return it.ID, e, err
}
func gridCand(r *corpusReader, it gridfile.Item) (int64, entry, error) {
	e, err := r.at(int(it.Slot))
	return it.ID, e, err
}
func slotCand(r *corpusReader, s int32) (int64, entry, error) {
	e, err := r.at(int(s))
	return r.st.ids[s], e, err
}

// knnState is the refinement state of one kNN query, shared by every
// backend's traversal (R*-tree best-first, grid-file expanding ring,
// linear scan): the running top-k, the lower-bound cascade at the current
// cutoff, budget/cancellation handling, and — for fanned-out queries —
// the shared cross-shard bound.
type knnState struct {
	v     *verifier
	q     ts.Series
	env   dtw.Envelope
	cfe   *core.FeatureEnvelope // nil: no coarse column
	band  int
	best  *topK
	lim   Limits
	stats *QueryStats
	// useLB false disables the cascade (brute-force baseline): every
	// candidate goes straight to exact DTW.
	useLB bool
	err   error
}

// cutoff is the current pruning threshold: the local kth-best exact
// distance (infinite until k results are held) tightened by the shared
// cross-shard bound of a fanned-out query.
func (s *knnState) cutoff() float64 {
	c := math.Inf(1)
	if s.best.full() {
		c = s.best.worst()
	}
	return s.lim.knnCutoff(c)
}

// refine processes one candidate: cancellation and budget checks, the
// lower-bound cascade at the current cutoff, exact banded DTW, and the
// top-k update (publishing the new kth-best to the other shards of a
// fanned-out query). It returns false when the whole traversal must stop —
// cancellation (s.err records it) or an exhausted exact-DTW budget
// (s.stats.Degraded records it). A pruned candidate returns true: the
// caller keeps traversing.
func (s *knnState) refine(ctx context.Context, id int64, e entry) bool {
	if err := ctx.Err(); err != nil {
		s.err = err
		return false
	}
	if s.lim.exhausted(s.stats.ExactDTW) {
		s.stats.Degraded = true
		return false
	}
	s.stats.Candidates++
	cutoff := s.cutoff()
	if s.useLB && !math.IsInf(cutoff, 1) {
		// Lower-bound cascade at the current cutoff; each stage is cheaper
		// than the next and abandons early. The fine box stage is nil: the
		// spatial traversals already order/filter by the fine box distance.
		w2 := cutoff * cutoff
		o := s.v.cascade(s.q, s.env, s.cfe, nil, s.band, e, w2)
		countStage(s.stats, o)
		if o != lbPassed {
			return true
		}
		s.stats.LBSurvivors++
		if !s.lim.reserveDTW(s.stats.ExactDTW) {
			s.stats.Degraded = true
			return false
		}
		if s.lim.CandidateHook != nil {
			s.lim.CandidateHook()
		}
		s.stats.ExactDTW++
		if d2, ok := s.v.ws.SquaredBandedWithin(e.x, s.q, s.band, w2); ok {
			s.best.offer(Match{ID: id, Dist: math.Sqrt(d2)})
		}
	} else {
		s.stats.CoarseSurvivors++
		s.stats.KeoghSurvivors++
		s.stats.LBSurvivors++
		if !s.lim.reserveDTW(s.stats.ExactDTW) {
			s.stats.Degraded = true
			return false
		}
		if s.lim.CandidateHook != nil {
			s.lim.CandidateHook()
		}
		s.stats.ExactDTW++
		s.best.offer(Match{ID: id, Dist: math.Sqrt(s.v.ws.SquaredBandedExact(e.x, s.q, s.band))})
	}
	if s.best.full() {
		s.lim.publishKNNBound(s.best.worst())
	}
	return true
}

// parallelVerifyMin is the candidate-set size below which verification
// stays sequential: spawning workers costs more than the cascade saves on
// small sets.
const parallelVerifyMin = 64

// verifyWorkers is the worker budget for one query's parallel
// verification. A query fanned out across N shards already runs on N
// cores, so each shard's share of the machine is GOMAXPROCS/N; going wider
// would oversubscribe and pay goroutine overhead for negative return. A
// paged corpus additionally bounds workers by its pool size: every worker
// pins pages, and a small pool must not drown in overflow frames.
func verifyWorkers(lim Limits, st *corpus) int {
	w := runtime.GOMAXPROCS(0)
	if lim.shared != nil && lim.shared.fan > 1 {
		w /= lim.shared.fan
	}
	if st.paged != nil {
		if b := st.paged.sp.WorkerBound(); b < w {
			w = b
		}
	}
	return w
}

// verifyRange refines the candidate set of a range query into exact
// matches (unsorted), appending them to dst. It updates the per-stage
// survivor counters, stats.ExactDTW and stats.Degraded, honors the
// context and the exact-DTW budget (per-query, or shared across shards
// when the query was fanned out by Sharded), and picks the sequential or
// parallel strategy by candidate-set size and the query's share of the
// machine. The returned error is ctx.Err() when the query was abandoned
// mid-verification.
func verifyRange[T any](ctx context.Context, st *corpus, rq *rangeQuery, items []T, cand func(*corpusReader, T) (int64, entry, error), lim Limits, stats *QueryStats, dst []Match) ([]Match, error) {
	if workers := verifyWorkers(lim, st); len(items) >= parallelVerifyMin && workers > 1 {
		return verifyRangeParallel(ctx, st, rq, items, cand, lim, stats, dst, workers)
	}

	v := getVerifier()
	defer putVerifier(v)
	r := st.reader()
	defer func() {
		stats.PageAccesses += r.misses()
		r.release()
	}()
	out := dst
	var err error
	for _, it := range items {
		if e := ctx.Err(); e != nil {
			err = e
			break
		}
		if lim.exhausted(stats.ExactDTW) {
			stats.Degraded = true
			break
		}
		id, e, cerr := cand(&r, it)
		if cerr != nil {
			err = cerr
			break
		}
		o := v.rangeCascade(e, rq)
		countStage(stats, o)
		if o != lbPassed {
			continue
		}
		if !lim.reserveDTW(stats.ExactDTW) {
			stats.Degraded = true
			break
		}
		stats.LBSurvivors++
		if lim.CandidateHook != nil {
			lim.CandidateHook()
		}
		stats.ExactDTW++
		// Early-abandoning DTW: most candidates blow past epsilon in the
		// first few DP rows.
		if d2, ok := v.ws.SquaredBandedWithin(e.x, rq.q, rq.band, rq.eps2); ok {
			out = append(out, Match{ID: id, Dist: math.Sqrt(d2)})
		}
	}
	return out, err
}

// verifyRangeParallel fans candidate verification out across workers
// goroutines (the query's share of the machine; see verifyWorkers). Each
// worker pulls candidates from a shared atomic cursor (cheap dynamic load
// balancing: early-abandoned candidates cost far less than verified
// ones), verifies with its own pooled workspace, and appends to a private
// match list merged into dst at the end; the caller's deterministic
// (dist, id) sort makes the result independent of scheduling.
// Cancellation, the exact-DTW budget (an atomic reservation counter — the
// query's own, or the shared cross-shard counter of a fanned-out query)
// and CandidateHook serialization are preserved, so results are
// bit-identical to the sequential path whenever the query runs to
// completion.
func verifyRangeParallel[T any](ctx context.Context, st *corpus, rq *rangeQuery, items []T, cand func(*corpusReader, T) (int64, entry, error), lim Limits, stats *QueryStats, dst []Match, workers int) ([]Match, error) {
	if max := len(items) / (parallelVerifyMin / 4); workers > max {
		workers = max
	}
	if workers < 2 {
		workers = 2
	}
	var (
		cursor     int64 // next candidate index to claim
		coarseSurv int64 // candidates past the coarse New_PAA pre-stage
		keoghSurv  int64 // candidates past the fine box + LB_Keogh stage
		survivors  int64 // candidates that passed the whole LB cascade
		reserved   int64 // local exact-DTW budget reservations
		performed  int64 // exact DTW verifications actually run
		pageMisses int64 // real pool misses across all workers (paged mode)
		degraded   int32 // budget exhausted with work left
		aborted    int32 // a worker observed ctx cancellation
		failed     int32 // a worker hit a paged read error
		errMu      sync.Mutex
		readErr    error
		hookMu     sync.Mutex
		wg         sync.WaitGroup
	)
	perWorker := make([][]Match, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := getVerifier()
			defer putVerifier(v)
			r := st.reader()
			defer func() {
				atomic.AddInt64(&pageMisses, int64(r.misses()))
				r.release()
			}()
			var local []Match
			for {
				if atomic.LoadInt32(&degraded) != 0 || atomic.LoadInt32(&failed) != 0 {
					break
				}
				if ctx.Err() != nil {
					atomic.StoreInt32(&aborted, 1)
					break
				}
				i := int(atomic.AddInt64(&cursor, 1)) - 1
				if i >= len(items) {
					break
				}
				id, e, cerr := cand(&r, items[i])
				if cerr != nil {
					errMu.Lock()
					if readErr == nil {
						readErr = cerr
					}
					errMu.Unlock()
					atomic.StoreInt32(&failed, 1)
					break
				}
				o := v.rangeCascade(e, rq)
				if o > prunedCoarse {
					atomic.AddInt64(&coarseSurv, 1)
				}
				if o > prunedKeogh {
					atomic.AddInt64(&keoghSurv, 1)
				}
				if o != lbPassed {
					continue
				}
				var ok bool
				if lim.shared != nil {
					ok = lim.shared.maxDTW <= 0 || lim.shared.reserved.Add(1) <= lim.shared.maxDTW
				} else {
					ok = lim.MaxExactDTW <= 0 || atomic.AddInt64(&reserved, 1) <= int64(lim.MaxExactDTW)
				}
				if !ok {
					atomic.StoreInt32(&degraded, 1)
					break
				}
				atomic.AddInt64(&survivors, 1)
				atomic.AddInt64(&performed, 1)
				if lim.CandidateHook != nil {
					hookMu.Lock()
					lim.CandidateHook()
					hookMu.Unlock()
				}
				if d2, ok := v.ws.SquaredBandedWithin(e.x, rq.q, rq.band, rq.eps2); ok {
					local = append(local, Match{ID: id, Dist: math.Sqrt(d2)})
				}
			}
			perWorker[w] = local
		}(w)
	}
	wg.Wait()

	stats.CoarseSurvivors += int(coarseSurv)
	stats.KeoghSurvivors += int(keoghSurv)
	stats.LBSurvivors += int(survivors)
	stats.ExactDTW += int(performed)
	stats.PageAccesses += int(pageMisses)
	stats.Degraded = stats.Degraded || degraded != 0

	out := dst
	for _, l := range perWorker {
		out = append(out, l...)
	}
	var err error
	if aborted != 0 {
		err = ctx.Err()
	} else if failed != 0 {
		err = readErr
	}
	return out, err
}
