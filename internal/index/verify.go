// Candidate verification: the refinement cascade shared by every backend.
// Candidates surviving a backend's feature-space filter (R*-tree box
// search, grid-file cell scan, or the trivial all-candidates filter of the
// linear scan) run through a cascade of ever-tighter lower bounds and
// finally exact banded DTW, all of it allocation-free in steady state
// (pooled dtw.Workspaces) and — for large candidate sets — fanned out
// across GOMAXPROCS workers. The cascade is generic over the backend's
// candidate type, so no backend pays an allocation to adapt its candidate
// list.
package index

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/gridfile"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// verifier bundles the scratch state one goroutine needs to verify
// candidates. Obtained from a sync.Pool so concurrent queries (and the
// workers of one parallel query) never contend on shared buffers.
type verifier struct {
	ws dtw.Workspace
}

var verifierPool = sync.Pool{New: func() interface{} { return new(verifier) }}

func getVerifier() *verifier  { return verifierPool.Get().(*verifier) }
func putVerifier(v *verifier) { verifierPool.Put(v) }

// The reversed-role LB_Keogh pass costs an O(n) candidate envelope (three
// deque sweeps) per call, while the exact DP it tries to save costs
// O(n*(2k+1)) — but abandons early, so for narrow bands the DP dismisses a
// non-match almost as cheaply as the reversed bound would. Benchmarks on
// random-walk data (n=128) show the reversed pass is a net loss below
// k≈8 and only pays off when the band is wide enough that each avoided DP
// run covers many envelope computations. Both gates are purely performance
// heuristics: skipping a lower bound can only send more candidates to
// exact DTW, never dismiss a true match.
//
// reversedLBMinBand: engage the reversed pass only at band radii where the
// DP is expensive enough to insure against. reversedLBGate: even then,
// only when the forward bound landed within this fraction of the cutoff —
// the two bounds are strongly correlated, so a candidate with lots of
// forward slack is almost never pruned by the reversed pass.
const (
	reversedLBMinBand = 8
	reversedLBGate    = 0.25
)

// rangeQuery carries the per-query constants of one range verification:
// the query, its envelope and (when the backend has a transform) the
// feature-space box, the band radius and the squared threshold. useLB
// false disables the whole lower-bound cascade — the brute-force scan
// baseline used by the experiments package.
type rangeQuery struct {
	q     ts.Series
	env   dtw.Envelope
	fe    *core.FeatureEnvelope // nil: no transform, skip the box pre-check
	band  int
	eps2  float64
	useLB bool
}

// passesLB runs the lower-bound cascade for a range query at threshold
// rq.eps2: the O(dim) feature-space box distance against the cached
// feature vector, the full-dimensional LB_Keogh distance to the query
// envelope, and — when the forward bound is tight enough to make it
// worthwhile — the reversed-role LB_Keogh second pass (envelope of the
// candidate, Lemire's two-pass bound). Every stage abandons at eps2; a
// false return means the candidate provably cannot match (no false
// dismissals, Theorem 1 / Lemma 2 symmetry).
func (v *verifier) passesLB(e entry, rq *rangeQuery) bool {
	if !rq.useLB {
		return true
	}
	if rq.fe != nil && core.SquaredDistToBox(e.feat, *rq.fe) > rq.eps2 {
		return false
	}
	fwd, ok := dtw.SquaredDistToEnvelopeWithin(e.x, rq.env, rq.eps2)
	if !ok {
		return false
	}
	if rq.band >= reversedLBMinBand && fwd > rq.eps2*reversedLBGate {
		if _, ok := v.ws.SquaredReversedLBKeoghWithin(rq.q, e.x, rq.band, rq.eps2); !ok {
			return false
		}
	}
	return true
}

// Candidate resolvers: each backend names its candidate element type
// once, and the generic cascade resolves (id, entry) through a static
// function — no per-query conversion of the candidate list, no closure
// allocation. Every resolver is a direct arena access: spatial items carry
// their corpus slot (tagged at insert/rebuild time), and the linear scan
// hands over raw slots, so no candidate pays an id→slot map lookup.
func rtreeCand(st *corpus, it rtree.Item) (int64, entry) { return it.ID, st.at(int(it.Slot)) }
func gridCand(st *corpus, it gridfile.Item) (int64, entry) {
	return it.ID, st.at(int(it.Slot))
}
func slotCand(st *corpus, s int32) (int64, entry) { return st.ids[s], st.at(int(s)) }

// knnState is the refinement state of one kNN query, shared by every
// backend's traversal (R*-tree best-first, grid-file expanding ring,
// linear scan): the running top-k, the lower-bound cascade at the current
// cutoff, budget/cancellation handling, and — for fanned-out queries —
// the shared cross-shard bound.
type knnState struct {
	v     *verifier
	q     ts.Series
	env   dtw.Envelope
	band  int
	best  *topK
	lim   Limits
	stats *QueryStats
	// useLB false disables the cascade (brute-force baseline): every
	// candidate goes straight to exact DTW.
	useLB bool
	err   error
}

// cutoff is the current pruning threshold: the local kth-best exact
// distance (infinite until k results are held) tightened by the shared
// cross-shard bound of a fanned-out query.
func (s *knnState) cutoff() float64 {
	c := math.Inf(1)
	if s.best.full() {
		c = s.best.worst()
	}
	return s.lim.knnCutoff(c)
}

// refine processes one candidate: cancellation and budget checks, the
// lower-bound cascade at the current cutoff, exact banded DTW, and the
// top-k update (publishing the new kth-best to the other shards of a
// fanned-out query). It returns false when the whole traversal must stop —
// cancellation (s.err records it) or an exhausted exact-DTW budget
// (s.stats.Degraded records it). A pruned candidate returns true: the
// caller keeps traversing.
func (s *knnState) refine(ctx context.Context, id int64, e entry) bool {
	if err := ctx.Err(); err != nil {
		s.err = err
		return false
	}
	if s.lim.exhausted(s.stats.ExactDTW) {
		s.stats.Degraded = true
		return false
	}
	s.stats.Candidates++
	cutoff := s.cutoff()
	if s.useLB && !math.IsInf(cutoff, 1) {
		// Lower-bound cascade at the current cutoff; each stage is cheaper
		// than the next and abandons early.
		w2 := cutoff * cutoff
		fwd, ok := dtw.SquaredDistToEnvelopeWithin(e.x, s.env, w2)
		if !ok {
			return true
		}
		// The reversed-role bound costs an O(n) envelope per candidate;
		// see the gate rationale above (wide bands only, and only when the
		// forward bound landed near the cutoff).
		if s.band >= reversedLBMinBand && fwd > w2*reversedLBGate {
			if _, ok := s.v.ws.SquaredReversedLBKeoghWithin(s.q, e.x, s.band, w2); !ok {
				return true
			}
		}
		s.stats.LBSurvivors++
		if !s.lim.reserveDTW(s.stats.ExactDTW) {
			s.stats.Degraded = true
			return false
		}
		if s.lim.CandidateHook != nil {
			s.lim.CandidateHook()
		}
		s.stats.ExactDTW++
		if d2, ok := s.v.ws.SquaredBandedWithin(e.x, s.q, s.band, w2); ok {
			s.best.offer(Match{ID: id, Dist: math.Sqrt(d2)})
		}
	} else {
		s.stats.LBSurvivors++
		if !s.lim.reserveDTW(s.stats.ExactDTW) {
			s.stats.Degraded = true
			return false
		}
		if s.lim.CandidateHook != nil {
			s.lim.CandidateHook()
		}
		s.stats.ExactDTW++
		s.best.offer(Match{ID: id, Dist: math.Sqrt(s.v.ws.SquaredBandedExact(e.x, s.q, s.band))})
	}
	if s.best.full() {
		s.lim.publishKNNBound(s.best.worst())
	}
	return true
}

// parallelVerifyMin is the candidate-set size below which verification
// stays sequential: spawning workers costs more than the cascade saves on
// small sets.
const parallelVerifyMin = 64

// verifyWorkers is the worker budget for one query's parallel
// verification. A query fanned out across N shards already runs on N
// cores, so each shard's share of the machine is GOMAXPROCS/N; going wider
// would oversubscribe and pay goroutine overhead for negative return.
func verifyWorkers(lim Limits) int {
	w := runtime.GOMAXPROCS(0)
	if lim.shared != nil && lim.shared.fan > 1 {
		w /= lim.shared.fan
	}
	return w
}

// verifyRange refines the candidate set of a range query into exact
// matches (unsorted), appending them to dst. It updates
// stats.LBSurvivors, stats.ExactDTW and stats.Degraded, honors the
// context and the exact-DTW budget (per-query, or shared across shards
// when the query was fanned out by Sharded), and picks the sequential or
// parallel strategy by candidate-set size and the query's share of the
// machine. The returned error is ctx.Err() when the query was abandoned
// mid-verification.
func verifyRange[T any](ctx context.Context, st *corpus, rq *rangeQuery, items []T, cand func(*corpus, T) (int64, entry), lim Limits, stats *QueryStats, dst []Match) ([]Match, error) {
	if workers := verifyWorkers(lim); len(items) >= parallelVerifyMin && workers > 1 {
		return verifyRangeParallel(ctx, st, rq, items, cand, lim, stats, dst, workers)
	}

	v := getVerifier()
	defer putVerifier(v)
	out := dst
	var err error
	for _, it := range items {
		if e := ctx.Err(); e != nil {
			err = e
			break
		}
		if lim.exhausted(stats.ExactDTW) {
			stats.Degraded = true
			break
		}
		id, e := cand(st, it)
		if !v.passesLB(e, rq) {
			continue
		}
		if !lim.reserveDTW(stats.ExactDTW) {
			stats.Degraded = true
			break
		}
		stats.LBSurvivors++
		if lim.CandidateHook != nil {
			lim.CandidateHook()
		}
		stats.ExactDTW++
		// Early-abandoning DTW: most candidates blow past epsilon in the
		// first few DP rows.
		if d2, ok := v.ws.SquaredBandedWithin(e.x, rq.q, rq.band, rq.eps2); ok {
			out = append(out, Match{ID: id, Dist: math.Sqrt(d2)})
		}
	}
	return out, err
}

// verifyRangeParallel fans candidate verification out across workers
// goroutines (the query's share of the machine; see verifyWorkers). Each
// worker pulls candidates from a shared atomic cursor (cheap dynamic load
// balancing: early-abandoned candidates cost far less than verified
// ones), verifies with its own pooled workspace, and appends to a private
// match list merged into dst at the end; the caller's deterministic
// (dist, id) sort makes the result independent of scheduling.
// Cancellation, the exact-DTW budget (an atomic reservation counter — the
// query's own, or the shared cross-shard counter of a fanned-out query)
// and CandidateHook serialization are preserved, so results are
// bit-identical to the sequential path whenever the query runs to
// completion.
func verifyRangeParallel[T any](ctx context.Context, st *corpus, rq *rangeQuery, items []T, cand func(*corpus, T) (int64, entry), lim Limits, stats *QueryStats, dst []Match, workers int) ([]Match, error) {
	if max := len(items) / (parallelVerifyMin / 4); workers > max {
		workers = max
	}
	if workers < 2 {
		workers = 2
	}
	var (
		cursor    int64 // next candidate index to claim
		survivors int64 // candidates that passed the LB cascade
		reserved  int64 // local exact-DTW budget reservations
		performed int64 // exact DTW verifications actually run
		degraded  int32 // budget exhausted with work left
		aborted   int32 // a worker observed ctx cancellation
		hookMu    sync.Mutex
		wg        sync.WaitGroup
	)
	perWorker := make([][]Match, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := getVerifier()
			defer putVerifier(v)
			var local []Match
			for {
				if atomic.LoadInt32(&degraded) != 0 {
					break
				}
				if ctx.Err() != nil {
					atomic.StoreInt32(&aborted, 1)
					break
				}
				i := int(atomic.AddInt64(&cursor, 1)) - 1
				if i >= len(items) {
					break
				}
				id, e := cand(st, items[i])
				if !v.passesLB(e, rq) {
					continue
				}
				var ok bool
				if lim.shared != nil {
					ok = lim.shared.maxDTW <= 0 || lim.shared.reserved.Add(1) <= lim.shared.maxDTW
				} else {
					ok = lim.MaxExactDTW <= 0 || atomic.AddInt64(&reserved, 1) <= int64(lim.MaxExactDTW)
				}
				if !ok {
					atomic.StoreInt32(&degraded, 1)
					break
				}
				atomic.AddInt64(&survivors, 1)
				atomic.AddInt64(&performed, 1)
				if lim.CandidateHook != nil {
					hookMu.Lock()
					lim.CandidateHook()
					hookMu.Unlock()
				}
				if d2, ok := v.ws.SquaredBandedWithin(e.x, rq.q, rq.band, rq.eps2); ok {
					local = append(local, Match{ID: id, Dist: math.Sqrt(d2)})
				}
			}
			perWorker[w] = local
		}(w)
	}
	wg.Wait()

	stats.LBSurvivors += int(survivors)
	stats.ExactDTW += int(performed)
	stats.Degraded = stats.Degraded || degraded != 0

	out := dst
	for _, l := range perWorker {
		out = append(out, l...)
	}
	var err error
	if aborted != 0 {
		err = ctx.Err()
	}
	return out, err
}
