package index

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"warping/internal/core"
	"warping/internal/ts"
)

// buildBatchCorpus returns a sharded backend loaded with count random
// walks, plus the raw data.
func buildBatchCorpus(t testing.TB, kind BackendKind, shards, count int, seed int64) (*Sharded, []ts.Series) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr := core.NewPAA(testN, testDim)
	sh, err := NewSharded(kind, tr, Config{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]ts.Series, count)
	for i := range data {
		data[i] = randomWalk(r, testN)
		if err := sh.Add(int64(i), data[i]); err != nil {
			t.Fatal(err)
		}
	}
	return sh, data
}

// The differential test of batched execution: a group of concurrent
// queries submitted through a Batcher — forced into one batch by a long
// gather window sized to the group — must return bit-identical results
// (same IDs, same distances, same order) to the same plans executed
// serially, across every backend and shard count. Batching only changes
// which candidate superset is enumerated; membership is decided by the
// same exact-DTW kernel at each query's own threshold, so any divergence
// is a bug. Run under -race this also proves the shared sweep is sound
// under the shard read locks.
func TestBatchedMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
		for _, shards := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s-shards-%d", kind, shards), func(t *testing.T) {
				sh, _ := buildBatchCorpus(t, kind, shards, 300, 42)
				for trial := 0; trial < 4; trial++ {
					const group = 6
					// A mixed group: range queries at different radii plus
					// kNN, so one batch exercises both the merged-envelope
					// fetch (all-range batches) and the full-sweep fallback.
					type job struct {
						p    *Plan
						op   string
						eps  float64
						k    int
						want []Match
					}
					jobs := make([]*job, group)
					for i := range jobs {
						q := randomWalk(r, testN)
						delta := 0.02 + r.Float64()*0.15
						p, err := sh.NewPlan(q, delta)
						if err != nil {
							t.Fatal(err)
						}
						j := &job{p: p}
						if trial%2 == 0 || i < group/2 {
							j.op = "range"
							j.eps = float64(testN) * (0.03 + r.Float64()*0.05)
							j.want, _, err = sh.RangeQueryPlan(ctx, p, j.eps, Limits{})
						} else {
							j.op = "knn"
							j.k = 1 + r.Intn(12)
							j.want, _, err = sh.KNNPlan(ctx, p, j.k, Limits{})
						}
						if err != nil {
							t.Fatal(err)
						}
						jobs[i] = j
					}
					// maxBatch = group and a generous window: all submitters
					// land in one batch, and the last arrival flushes it.
					b := NewBatcher(sh, time.Second, group)
					var wg sync.WaitGroup
					errs := make([]error, group)
					got := make([][]Match, group)
					for i, j := range jobs {
						wg.Add(1)
						go func(i int, j *job) {
							defer wg.Done()
							if j.op == "range" {
								got[i], _, errs[i] = b.RangeQueryPlan(ctx, j.p, j.eps, Limits{})
							} else {
								got[i], _, errs[i] = b.KNNPlan(ctx, j.p, j.k, Limits{})
							}
						}(i, j)
					}
					wg.Wait()
					for i, j := range jobs {
						if errs[i] != nil {
							t.Fatalf("trial %d %s[%d]: %v", trial, j.op, i, errs[i])
						}
						diffMatches(t, fmt.Sprintf("trial-%d/%s-%d", trial, j.op, i), got[i], j.want)
					}
				}
			})
		}
	}
}

// A batch of one must take the serial path and still agree; a kNN with
// k <= 0 returns empty without touching the index.
func TestBatcherSingleAndDegenerate(t *testing.T) {
	sh, _ := buildBatchCorpus(t, BackendRTree, 4, 100, 7)
	b := NewBatcher(sh, 50*time.Microsecond, 8)
	r := rand.New(rand.NewSource(3))
	ctx := context.Background()
	q := randomWalk(r, testN)
	p, err := sh.NewPlan(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	eps := float64(testN) * 0.05
	want, _, err := sh.RangeQueryPlan(ctx, p, eps, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := b.RangeQueryPlan(ctx, p, eps, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	diffMatches(t, "single", got, want)
	if m, _, err := b.KNNPlan(ctx, p, 0, Limits{}); err != nil || len(m) != 0 {
		t.Fatalf("k=0: %v matches, err %v", m, err)
	}
}

// Cancellation mid-batch: every query in the batch observes the error
// rather than hanging on its done channel.
func TestBatcherCancellation(t *testing.T) {
	sh, _ := buildBatchCorpus(t, BackendScan, 1, 200, 11)
	b := NewBatcher(sh, time.Second, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := rand.New(rand.NewSource(5))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		q := randomWalk(r, testN)
		p, err := sh.NewPlan(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p *Plan) {
			defer wg.Done()
			if _, _, err := b.RangeQueryPlan(ctx, p, float64(testN)*0.05, Limits{}); err == nil {
				t.Error("cancelled batch returned no error")
			}
		}(p)
	}
	wg.Wait()
}
