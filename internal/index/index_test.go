package index

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warping/internal/core"
	"warping/internal/ts"
)

const (
	testN   = 128
	testDim = 8
)

func randomWalk(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	for i := range s {
		v += r.NormFloat64()
		s[i] = v
	}
	return s.ZeroMean()
}

func buildIndex(r *rand.Rand, t core.Transform, count int) (*Index, *LinearScan, []ts.Series) {
	ix := New(t, Config{})
	scan := NewLinearScan(testN, true)
	data := make([]ts.Series, count)
	for i := 0; i < count; i++ {
		data[i] = randomWalk(r, testN)
		ix.MustAdd(int64(i), data[i])
		scan.Add(int64(i), data[i])
	}
	return ix, scan, data
}

func matchIDs(ms []Match) map[int64]bool {
	out := map[int64]bool{}
	for _, m := range ms {
		out[m.ID] = true
	}
	return out
}

func TestAddValidation(t *testing.T) {
	ix := New(core.NewPAA(testN, testDim), Config{})
	if err := ix.Add(1, make(ts.Series, 5)); err == nil {
		t.Error("wrong length accepted")
	}
	if err := ix.Add(1, make(ts.Series, testN)); err != nil {
		t.Errorf("valid add failed: %v", err)
	}
	if err := ix.Add(1, make(ts.Series, testN)); err == nil {
		t.Error("duplicate id accepted")
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
	if _, ok := ix.Get(1); !ok {
		t.Error("Get(1) failed")
	}
	if _, ok := ix.Get(99); ok {
		t.Error("Get(99) should miss")
	}
}

// The fundamental exactness property: the index returns exactly the same
// matches as the brute-force linear scan (no false negatives from pruning,
// no false positives after refinement).
func TestRangeQueryMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, tr := range []core.Transform{
		core.NewPAA(testN, testDim),
		core.NewKeoghPAA(testN, testDim),
		core.NewDFT(testN, testDim),
		core.NewHaar(testN, testDim),
	} {
		ix, scan, _ := buildIndex(r, tr, 300)
		for trial := 0; trial < 10; trial++ {
			q := randomWalk(r, testN)
			epsilon := float64(testN) * (0.2 + r.Float64()*0.6) * 0.1
			delta := 0.02 + r.Float64()*0.18
			got, stats := ix.RangeQuery(q, epsilon, delta)
			want, _ := scan.RangeQuery(q, epsilon, delta)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d matches, scan %d", tr.Name(), len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("%s: match %d differs: %+v vs %+v", tr.Name(), i, got[i], want[i])
				}
			}
			if stats.Candidates < len(want) {
				t.Fatalf("%s: candidates %d < matches %d (false negative)", tr.Name(), stats.Candidates, len(want))
			}
		}
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ix, scan, _ := buildIndex(r, core.NewPAA(testN, testDim), 400)
	for trial := 0; trial < 10; trial++ {
		q := randomWalk(r, testN)
		k := 1 + r.Intn(10)
		delta := 0.05 + r.Float64()*0.15
		got, _ := ix.KNN(q, k, delta)
		want, _ := scan.KNN(q, k, delta)
		if len(got) != k || len(want) != k {
			t.Fatalf("sizes: %d %d want %d", len(got), len(want), k)
		}
		// Distances must agree (IDs may tie-swap only at equal distance).
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d: kth=%d dist %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 5)
	q := randomWalk(r, testN)
	if got, _ := ix.KNN(q, 0, 0.1); got != nil {
		t.Error("k=0 should return nil")
	}
	got, _ := ix.KNN(q, 10, 0.1)
	if len(got) != 5 {
		t.Errorf("k > size: got %d, want 5", len(got))
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ix, _, data := buildIndex(r, core.NewPAA(testN, testDim), 100)
	for i := 0; i < 10; i++ {
		got, _ := ix.KNN(data[i], 1, 0.1)
		if len(got) != 1 || got[0].Dist != 0 {
			t.Fatalf("self-query %d: %+v", i, got)
		}
	}
}

// Property: New_PAA retrieves no more candidates than Keogh_PAA for the
// same query (tighter feature boxes prune more) — the mechanism behind
// Figures 8-10.
func TestPropNewPAAFewerCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ixNew, _, data := buildIndex(r, core.NewPAA(testN, testDim), 300)
	ixKeogh := New(core.NewKeoghPAA(testN, testDim), Config{})
	for i, x := range data {
		ixKeogh.MustAdd(int64(i), x)
	}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		q := randomWalk(rr, testN)
		epsilon := float64(testN) * 0.05
		delta := 0.02 + rr.Float64()*0.18
		_, sNew := ixNew.RangeQuery(q, epsilon, delta)
		_, sKeogh := ixKeogh.RangeQuery(q, epsilon, delta)
		return sNew.Candidates <= sKeogh.Candidates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: stats are internally consistent.
func TestPropStatsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 200)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		q := randomWalk(rr, testN)
		matches, s := ix.RangeQuery(q, float64(testN)*0.08, 0.1)
		return s.LBSurvivors <= s.Candidates &&
			s.ExactDTW == s.LBSurvivors &&
			len(matches) <= s.LBSurvivors &&
			s.PageAccesses > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLinearScanNoLB(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	scanLB := NewLinearScan(testN, true)
	scanRaw := NewLinearScan(testN, false)
	for i := 0; i < 150; i++ {
		x := randomWalk(r, testN)
		scanLB.Add(int64(i), x)
		scanRaw.Add(int64(i), x)
	}
	q := randomWalk(r, testN)
	a, sa := scanLB.RangeQuery(q, float64(testN)*0.05, 0.1)
	b, sb := scanRaw.RangeQuery(q, float64(testN)*0.05, 0.1)
	if len(a) != len(b) {
		t.Fatalf("LB pruning changed results: %d vs %d", len(a), len(b))
	}
	if sa.ExactDTW > sb.ExactDTW {
		t.Error("LB pruning did not reduce exact DTW count")
	}
	if sb.ExactDTW != 150 {
		t.Errorf("raw scan should compute DTW for all: %d", sb.ExactDTW)
	}
}

func TestRangeQueryEmptyIndex(t *testing.T) {
	ix := New(core.NewPAA(testN, testDim), Config{})
	q := make(ts.Series, testN)
	got, _ := ix.RangeQuery(q, 1, 0.1)
	if len(got) != 0 {
		t.Error("matches on empty index")
	}
}

func TestCandidatesGrowWithWidth(t *testing.T) {
	// Larger warping widths loosen the bounds -> more candidates (the
	// x-axis trend of Figures 8-10).
	r := rand.New(rand.NewSource(8))
	ix, _, _ := buildIndex(r, core.NewKeoghPAA(testN, testDim), 400)
	q := randomWalk(r, testN)
	epsilon := float64(testN) * 0.05
	var prev int
	for _, delta := range []float64{0.02, 0.1, 0.2} {
		_, s := ix.RangeQuery(q, epsilon, delta)
		if s.Candidates < prev {
			t.Fatalf("candidates decreased with width: %d -> %d", prev, s.Candidates)
		}
		prev = s.Candidates
	}
}

// A malformed query must never kill a serving goroutine: the Ctx variants
// report ErrQueryLength and the convenience wrappers return no matches.
func TestQueryBadLengthErrors(t *testing.T) {
	ix := New(core.NewPAA(testN, testDim), Config{})
	ix.MustAdd(1, make(ts.Series, testN))
	bad := make(ts.Series, 3)
	if _, _, err := ix.RangeQueryCtx(context.Background(), bad, 1, 0.1, Limits{}); !errors.Is(err, ErrQueryLength) {
		t.Errorf("RangeQueryCtx err = %v, want ErrQueryLength", err)
	}
	if _, _, err := ix.KNNCtx(context.Background(), bad, 1, 0.1, Limits{}); !errors.Is(err, ErrQueryLength) {
		t.Errorf("KNNCtx err = %v, want ErrQueryLength", err)
	}
	if _, _, err := ix.RangeQueryEuclidean(bad, 1); !errors.Is(err, ErrQueryLength) {
		t.Errorf("RangeQueryEuclidean err = %v, want ErrQueryLength", err)
	}
	if got, _ := ix.RangeQuery(bad, 1, 0.1); len(got) != 0 {
		t.Errorf("RangeQuery on bad length returned %d matches", len(got))
	}
	if got, _ := ix.KNN(bad, 1, 0.1); len(got) != 0 {
		t.Errorf("KNN on bad length returned %d matches", len(got))
	}
}

// KNN consistency: the kth best distance from KNN equals the threshold at
// which a range query returns exactly >= k results.
func TestKNNRangeConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 200)
	q := randomWalk(r, testN)
	const k = 5
	knn, _ := ix.KNN(q, k, 0.1)
	eps := knn[k-1].Dist
	rq, _ := ix.RangeQuery(q, eps+1e-9, 0.1)
	if len(rq) < k {
		t.Errorf("range at kth distance returned %d < %d", len(rq), k)
	}
	ids := matchIDs(rq)
	for _, m := range knn {
		if !ids[m.ID] {
			t.Errorf("kNN result %d missing from range query", m.ID)
		}
	}
}

func BenchmarkRangeQueryNewPAA(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 2000)
	q := randomWalk(r, testN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.RangeQuery(q, float64(testN)*0.05, 0.1)
	}
}

func BenchmarkDTWvsIndex(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ix, scan, _ := buildIndex(r, core.NewPAA(testN, testDim), 1000)
	q := randomWalk(r, testN)
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.RangeQuery(q, float64(testN)*0.05, 0.1)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan.RangeQuery(q, float64(testN)*0.05, 0.1)
		}
	})
}

// The retrofit claim: one index serves both Euclidean and DTW queries.
func TestRangeQueryEuclidean(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	ix, _, data := buildIndex(r, core.NewPAA(testN, testDim), 400)
	for trial := 0; trial < 10; trial++ {
		q := randomWalk(r, testN)
		eps := float64(testN) * (0.03 + r.Float64()*0.06)
		got, stats, err := ix.RangeQueryEuclidean(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force reference.
		want := 0
		for id, x := range data {
			if ts.Dist(x, q) <= eps {
				want++
				found := false
				for _, m := range got {
					if m.ID == int64(id) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: missing id %d", trial, id)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), want)
		}
		if stats.PageAccesses == 0 {
			t.Error("no page accounting")
		}
		// A Euclidean match is always a DTW match at the same epsilon
		// (DTW <= Euclidean), so the DTW result set is a superset.
		dtwGot, _ := ix.RangeQuery(q, eps, 0.1)
		dtwIDs := matchIDs(dtwGot)
		for _, m := range got {
			if !dtwIDs[m.ID] {
				t.Fatalf("Euclidean match %d missing from DTW results", m.ID)
			}
		}
	}
}

func TestRangeQueryEuclideanBadLength(t *testing.T) {
	ix := New(core.NewPAA(testN, testDim), Config{})
	if _, _, err := ix.RangeQueryEuclidean(make(ts.Series, 2), 1); !errors.Is(err, ErrQueryLength) {
		t.Errorf("err = %v, want ErrQueryLength", err)
	}
}
