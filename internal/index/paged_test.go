package index

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"warping/internal/core"
	"warping/internal/pager"
	"warping/internal/ts"
)

// tinySpace opens a pager space with a pathologically small pool — pages
// just big enough for one series record, and only the minimum 8 frames —
// so every query thrashes and paged code paths (evictions, re-reads,
// cursor misses) all exercise.
func tinySpace(t testing.TB) *pager.Space {
	t.Helper()
	cfg := pager.Config{Dir: t.TempDir(), PoolPages: 8}
	cfg.PageSize = cfg.FitPageSize(testN)
	sp, err := pager.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sp.Close(); err != nil {
			t.Errorf("closing space: %v", err)
		}
	})
	return sp
}

// buildPair builds the same corpus twice — once all-in-RAM, once out-of-core
// behind a tiny pool — through identical Add/Remove churn: an initial load,
// a removal wave heavy enough to force compaction, and a re-add wave that in
// paged mode lands in the delta tree on top of a merged base.
func buildPair(t *testing.T, kind BackendKind, shards int, sp *pager.Space) (ram, paged Searcher, queries []ts.Series) {
	t.Helper()
	tr := core.NewPAA(testN, testDim)
	mk := func(cfg Config) Searcher {
		var s Searcher
		var err error
		if shards > 1 {
			s, err = NewSharded(kind, tr, cfg, shards)
		} else {
			s, err = NewBackend(kind, tr, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ram = mk(Config{})
	paged = mk(Config{Pager: sp})

	r := rand.New(rand.NewSource(7))
	const n = 300
	series := make([]ts.Series, n)
	for i := range series {
		series[i] = randomWalk(r, testN)
	}
	for _, s := range []Searcher{ram, paged} {
		for i, x := range series {
			if err := s.Add(int64(i+1), x); err != nil {
				t.Fatal(err)
			}
		}
		// Remove more than half of the first 200 ids: enough tombstones to
		// cross the compaction threshold (in every shard when sharded).
		for i := 0; i < 150; i++ {
			if !s.Remove(int64(i + 1)) {
				t.Fatalf("remove %d: not present", i+1)
			}
		}
		// Re-add under fresh ids; paged mode absorbs these in the delta.
		for i := 0; i < 100; i++ {
			if err := s.Add(int64(1000+i), series[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := paged.Len(), ram.Len(); got != want {
		t.Fatalf("paged Len %d, ram Len %d", got, want)
	}
	queries = make([]ts.Series, 12)
	for i := range queries {
		queries[i] = randomWalk(r, testN)
	}
	return ram, paged, queries
}

func sameMatches(t *testing.T, label string, a, b []Match) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d matches in RAM, %d paged", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: match %d differs: RAM %+v, paged %+v", label, i, a[i], b[i])
		}
	}
}

// TestPagedDifferential proves the acceptance property of the out-of-core
// refactor: a corpus far larger than the buffer pool answers range and kNN
// queries bit-identically to the all-in-RAM configuration, across every
// backend and shard count, with churn (tombstones, compaction, delta
// merges) in the history, and with real pool misses observed.
func TestPagedDifferential(t *testing.T) {
	for _, kind := range []BackendKind{BackendRTree, BackendGrid, BackendScan} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", kind, shards), func(t *testing.T) {
				sp := tinySpace(t)
				ram, paged, queries := buildPair(t, kind, shards, sp)
				defer func() {
					if err := paged.Close(); err != nil {
						t.Errorf("close: %v", err)
					}
					if err := ram.Close(); err != nil {
						t.Errorf("ram close: %v", err)
					}
				}()

				ctx := context.Background()
				radii := []float64{20, 60, 120}
				if kind == BackendGrid {
					// The grid file enumerates O((box/cell)^dim) cells per
					// box search; big radii make that the test's bottleneck
					// without exercising any more paged-storage code.
					radii = []float64{20, 45}
				}
				for qi, q := range queries {
					for _, eps := range radii {
						mr, _, err := ram.RangeQueryCtx(ctx, q, eps, 0.06, Limits{})
						if err != nil {
							t.Fatal(err)
						}
						mp, pstats, err := paged.RangeQueryCtx(ctx, q, eps, 0.06, Limits{})
						if err != nil {
							t.Fatal(err)
						}
						sameMatches(t, fmt.Sprintf("range q%d eps=%g", qi, eps), mr, mp)
						if pstats.Candidates > 0 && pstats.LogicalPages == 0 && kind != BackendScan {
							t.Fatalf("range q%d: no logical pages with %d candidates", qi, pstats.Candidates)
						}
					}
					kr, _, err := ram.KNNCtx(ctx, q, 7, 0.06, Limits{})
					if err != nil {
						t.Fatal(err)
					}
					kp, _, err := paged.KNNCtx(ctx, q, 7, 0.06, Limits{})
					if err != nil {
						t.Fatal(err)
					}
					sameMatches(t, fmt.Sprintf("knn q%d", qi), kr, kp)
				}
				if st := sp.Stats(); st.Misses == 0 {
					t.Fatalf("tiny pool served everything from memory: %+v", st)
				}
			})
		}
	}
}

// TestPagedDifferentialConcurrent runs the same differential under query
// concurrency: many goroutines hammer the paged backend (each query pins
// pages through its own readers) while a RAM twin provides the expected
// answers. Run under -race this is the data-race proof for the pool's
// pin/evict machinery as driven by real query traffic.
func TestPagedDifferentialConcurrent(t *testing.T) {
	sp := tinySpace(t)
	ram, paged, queries := buildPair(t, BackendRTree, 4, sp)
	defer paged.Close()
	defer ram.Close()

	ctx := context.Background()
	type want struct {
		rng []Match
		knn []Match
	}
	wants := make([]want, len(queries))
	for i, q := range queries {
		mr, _, err := ram.RangeQueryCtx(ctx, q, 80, 0.06, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		kr, _, err := ram.KNNCtx(ctx, q, 5, 0.06, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want{rng: mr, knn: kr}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (w + rep) % len(queries)
				mp, _, err := paged.RangeQueryCtx(ctx, queries[i], 80, 0.06, Limits{})
				if err != nil {
					errCh <- err
					return
				}
				if len(mp) != len(wants[i].rng) {
					errCh <- fmt.Errorf("worker %d: range q%d: %d matches, want %d", w, i, len(mp), len(wants[i].rng))
					return
				}
				for j := range mp {
					if mp[j] != wants[i].rng[j] {
						errCh <- fmt.Errorf("worker %d: range q%d match %d: %+v != %+v", w, i, j, mp[j], wants[i].rng[j])
						return
					}
				}
				kp, _, err := paged.KNNCtx(ctx, queries[i], 5, 0.06, Limits{})
				if err != nil {
					errCh <- err
					return
				}
				for j := range kp {
					if kp[j] != wants[i].knn[j] {
						errCh <- fmt.Errorf("worker %d: knn q%d match %d: %+v != %+v", w, i, j, kp[j], wants[i].knn[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestPagedMergeAndCompact drives the R*-tree base/delta machinery directly:
// a bulk-loaded paged base, delta inserts, a forced merge, tombstoned base
// items, and a compaction that renumbers every slot — checking Len and query
// results against a RAM twin at each step.
func TestPagedMergeAndCompact(t *testing.T) {
	sp := tinySpace(t)
	tr := core.NewPAA(testN, testDim)
	r := rand.New(rand.NewSource(11))

	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{ID: int64(i + 1), Series: randomWalk(r, testN)}
	}
	paged, err := BulkLoad(tr, Config{Pager: sp}, entries)
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	ram, err := BulkLoad(tr, Config{}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if paged.ptree == nil {
		t.Fatal("bulk load did not build a paged base")
	}
	if paged.tree.Len() != 0 {
		t.Fatalf("bulk load left %d items in the delta", paged.tree.Len())
	}

	check := func(stage string) {
		t.Helper()
		q := randomWalk(r, testN)
		mr, _ := ram.RangeQuery(q, 100, 0.06)
		mp, pstats := paged.RangeQuery(q, 100, 0.06)
		sameMatches(t, stage+"/range", mr, mp)
		kr, _ := ram.KNN(q, 9, 0.06)
		kp, _ := paged.KNN(q, 9, 0.06)
		sameMatches(t, stage+"/knn", kr, kp)
		if paged.Len() != ram.Len() {
			t.Fatalf("%s: paged Len %d, ram Len %d", stage, paged.Len(), ram.Len())
		}
		if pstats.PageAccesses == 0 && pstats.Candidates > 0 {
			t.Fatalf("%s: candidates with zero page accesses through a tiny pool", stage)
		}
	}
	check("after-bulk")

	// Delta inserts on both, then a forced merge of the paged twin.
	for i := 0; i < 60; i++ {
		x := randomWalk(r, testN)
		if err := paged.Add(int64(500+i), x); err != nil {
			t.Fatal(err)
		}
		if err := ram.Add(int64(500+i), x); err != nil {
			t.Fatal(err)
		}
	}
	if paged.tree.Len() == 0 {
		t.Fatal("delta empty after adds")
	}
	check("with-delta")
	baseBefore := paged.ptree.Len()
	if err := paged.mergePaged(); err != nil {
		t.Fatal(err)
	}
	if paged.tree.Len() != 0 || paged.ptree.Len() != baseBefore+60 {
		t.Fatalf("merge left delta=%d base=%d, want 0/%d", paged.tree.Len(), paged.ptree.Len(), baseBefore+60)
	}
	check("after-merge")

	// Tombstone enough base items to force a renumbering compaction.
	for i := 0; i < 140; i++ {
		if !paged.Remove(int64(i + 1)) {
			t.Fatalf("paged remove %d", i+1)
		}
		if !ram.Remove(int64(i + 1)) {
			t.Fatalf("ram remove %d", i+1)
		}
	}
	if paged.st.compactions == 0 {
		t.Fatal("removal wave never compacted the paged corpus")
	}
	check("after-compaction")
}
