// Sharded: a hash-partitioned composite Searcher for stall-free writes
// and parallel query fan-out. Ids are hashed across N per-shard backends,
// each guarded by its own RWMutex, so a write locks 1/N of the corpus
// while queries proceed on every other shard, and a query's tree descent
// and refinement run on N cores instead of one.
//
// Exactness is preserved shard by shard: range queries are simply the
// concatenation of per-shard range results (every shard applies the full
// no-false-negative cascade to its partition), and kNN merges per-shard
// top-k sets under a shared atomic distance bound — the global kth-best
// distance is never larger than any shard-local kth-best, so a candidate
// pruned against the shared bound could not have entered the merged top-k.
package index

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"warping/internal/core"
	"warping/internal/ts"
)

// shard is one partition: a backend plus its lock. Queries take the read
// lock, Add/Remove the write lock, so a blocked writer stalls only its own
// partition.
type shard struct {
	mu sync.RWMutex
	s  Searcher
}

// Sharded partitions a corpus across N single-shard backends by id hash.
// It implements Searcher and, unlike the single-shard backends, is
// internally synchronized: Add/Remove/queries may all be called
// concurrently.
type Sharded struct {
	kind   BackendKind
	shards []*shard

	// AddHook, when non-nil, runs inside the shard's write lock during
	// Add, after the insert. It exists for tests that must hold one
	// shard's writer mid-flight (proving writes no longer stall unrelated
	// reads); set it before any concurrent use.
	AddHook func(shardIdx int)
}

// NewSharded creates n shards of the given backend kind. n < 1 is an
// error; n == 1 still works (one shard, useful for differential testing)
// but buys no parallelism.
func NewSharded(kind BackendKind, t core.Transform, cfg Config, n int) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("index: shard count %d < 1", n)
	}
	if kind == "" {
		kind = BackendRTree
	}
	sh := &Sharded{kind: kind, shards: make([]*shard, n)}
	for i := range sh.shards {
		s, err := NewBackend(kind, t, cfg)
		if err != nil {
			return nil, err
		}
		sh.shards[i] = &shard{s: s}
	}
	return sh, nil
}

// shardOf hashes an id to its shard: a multiplicative (Fibonacci) hash so
// sequential ids — the common case for phrase ids — spread evenly instead
// of striding one shard.
func (sh *Sharded) shardOf(id int64) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15 >> 32) % uint64(len(sh.shards)))
}

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Kind returns the backend kind the shards were built with.
func (sh *Sharded) Kind() BackendKind { return sh.kind }

// ShardLens returns the number of series in each shard (for stats
// surfaces and balance monitoring).
func (sh *Sharded) ShardLens() []int {
	out := make([]int, len(sh.shards))
	for i, s := range sh.shards {
		s.mu.RLock()
		out[i] = s.s.Len()
		s.mu.RUnlock()
	}
	return out
}

// Add inserts a series, locking only the owning shard: writers on other
// shards and queries that can proceed without this shard are unaffected.
func (sh *Sharded) Add(id int64, x ts.Series) error {
	i := sh.shardOf(id)
	s := sh.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.s.Add(id, x)
	if err == nil && sh.AddHook != nil {
		sh.AddHook(i)
	}
	return err
}

// Remove deletes the series stored under id, locking only the owning
// shard.
func (sh *Sharded) Remove(id int64) bool {
	s := sh.shards[sh.shardOf(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Remove(id)
}

// Len returns the total number of indexed series.
func (sh *Sharded) Len() int {
	n := 0
	for _, s := range sh.shards {
		s.mu.RLock()
		n += s.s.Len()
		s.mu.RUnlock()
	}
	return n
}

// SeriesLen returns the required series length n.
func (sh *Sharded) SeriesLen() int { return sh.shards[0].s.SeriesLen() }

// Get returns the stored series for an id.
func (sh *Sharded) Get(id int64) (ts.Series, bool) {
	s := sh.shards[sh.shardOf(id)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.Get(id)
}

// Visit calls fn for every stored (id, series) pair, shard by shard. fn
// runs under the shard's read lock and must not call back into sh.
func (sh *Sharded) Visit(fn func(id int64, x ts.Series)) {
	for _, s := range sh.shards {
		s.mu.RLock()
		s.s.Visit(fn)
		s.mu.RUnlock()
	}
}

// Close closes every shard, releasing spill files in paged mode. First
// error wins; every shard is closed regardless.
func (sh *Sharded) Close() error {
	var first error
	for _, s := range sh.shards {
		s.mu.Lock()
		if err := s.s.Close(); err != nil && first == nil {
			first = err
		}
		s.mu.Unlock()
	}
	return first
}

// shardResult is one shard's contribution to a fanned-out query. It
// carries the shard goroutine's pooled scratch alongside the matches
// (which alias sc.out): the merger copies the matches out and only then
// re-pools the scratch. Scratches of shards abandoned by a cancelled
// merge are never re-pooled — they drain into the buffered channel and
// fall to the garbage collector, which is the safe direction (a pooled
// buffer must never be handed out while an abandoned goroutine could
// still be writing to it).
type shardResult struct {
	matches []Match
	stats   QueryStats
	err     error
	sc      *scratch
}

// fanOut runs query against every shard in parallel (each with its own
// pooled scratch, under its shard's read lock) and merges completed
// results into dst in completion order. On cancellation the merge stops
// waiting — a shard stuck behind a blocked writer cannot stall the whole
// query — and returns the matches collected from the shards that did
// complete, together with ctx.Err() (the same partial-result contract as
// the single-shard Ctx methods).
func (sh *Sharded) fanOut(ctx context.Context, dst []Match, query func(s Searcher, sc *scratch) ([]Match, QueryStats, error)) ([]Match, QueryStats, error) {
	ch := make(chan shardResult, len(sh.shards))
	for _, s := range sh.shards {
		go func(s *shard) {
			sc := getScratch()
			s.mu.RLock()
			m, st, err := query(s.s, sc)
			s.mu.RUnlock()
			ch <- shardResult{matches: m, stats: st, err: err, sc: sc}
		}(s)
	}
	out := dst
	var stats QueryStats
	var firstErr error
	for done := 0; done < len(sh.shards); done++ {
		select {
		case r := <-ch:
			out = append(out, r.matches...)
			putScratch(r.sc)
			stats.add(r.stats)
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			return out, stats, ctx.Err()
		}
	}
	return out, stats, firstErr
}

// rangePlan implements the sealed Searcher internals for the composite:
// per-shard rangePlan calls fan out in parallel against the one shared
// Plan and concatenate into sc.out. Every shard applies the full
// refinement cascade to its partition, so the union is exactly the
// unsharded result set; the shared exact-DTW budget (lim.MaxExactDTW)
// applies to the whole query, claimed atomically across shards.
func (sh *Sharded) rangePlan(ctx context.Context, p *Plan, epsilon float64, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	if len(sh.shards) == 1 {
		s := sh.shards[0]
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.s.rangePlan(ctx, p, epsilon, lim, sc)
	}
	if lim.shared == nil {
		lim.shared = newSharedQuery(lim.MaxExactDTW, len(sh.shards))
	}
	out, stats, err := sh.fanOut(ctx, sc.out[:0], func(s Searcher, ssc *scratch) ([]Match, QueryStats, error) {
		return s.rangePlan(ctx, p, epsilon, lim, ssc)
	})
	sc.out = out
	return out, stats, err
}

// knnPlan implements the sealed Searcher internals for the composite:
// per-shard kNN against the one shared Plan under a shared atomic best-k
// distance bound (see KNNCtx), merged, sorted and truncated to k in
// sc.out.
func (sh *Sharded) knnPlan(ctx context.Context, p *Plan, k int, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	if len(sh.shards) == 1 {
		s := sh.shards[0]
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.s.knnPlan(ctx, p, k, lim, sc)
	}
	if lim.shared == nil {
		lim.shared = newSharedQuery(lim.MaxExactDTW, len(sh.shards))
	}
	out, stats, err := sh.fanOut(ctx, sc.out[:0], func(s Searcher, ssc *scratch) ([]Match, QueryStats, error) {
		return s.knnPlan(ctx, p, k, lim, ssc)
	})
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	sc.out = out
	return out, stats, err
}

// RangeQueryCtx implements Searcher: the query plan (envelope, feature
// box, band) is computed exactly once here and shared by every shard's
// fanned-out sub-query; see rangePlan for the exactness argument.
func (sh *Sharded) RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error) {
	p, err := sh.NewPlan(q, delta)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return sh.RangeQueryPlan(ctx, p, epsilon, lim)
}

// RangeQuery is RangeQueryCtx without cancellation or limits.
func (sh *Sharded) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	out, stats, _ := sh.RangeQueryCtx(context.Background(), q, epsilon, delta, Limits{})
	return out, stats
}

// KNNCtx implements Searcher: per-shard kNN under a shared atomic best-k
// distance bound, against one shared query plan. Each shard publishes its
// kth-best exact distance as it improves; every other shard prunes
// candidates (and terminates its traversal) against the minimum published
// bound. No false negatives: the global kth-best distance is at most any
// shard-local kth-best, so any candidate whose lower bound exceeds the
// shared bound is outside the merged top-k. The merged result is the k
// closest of the per-shard results.
func (sh *Sharded) KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	p, err := sh.NewPlan(q, delta)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return sh.KNNPlan(ctx, p, k, lim)
}

// KNN is KNNCtx without cancellation or limits.
func (sh *Sharded) KNN(q ts.Series, k int, delta float64) ([]Match, QueryStats) {
	out, stats, _ := sh.KNNCtx(context.Background(), q, k, delta, Limits{})
	return out, stats
}

// BuildSearcher constructs a backend of the given kind and bulk-indexes
// entries into it. nShards > 1 builds an N-shard Sharded with every shard
// indexed in parallel (the "parallel compaction" path used when a
// snapshot or WAL replay rebuilds the whole corpus); nShards <= 1 builds
// a single-shard backend, using STR bulk loading for the R*-tree.
func BuildSearcher(kind BackendKind, t core.Transform, cfg Config, nShards int, entries []Entry) (Searcher, error) {
	if nShards <= 1 {
		if kind == BackendRTree || kind == "" {
			return BulkLoad(t, cfg, entries)
		}
		s, err := NewBackend(kind, t, cfg)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if err := s.Add(e.ID, e.Series); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	sh, err := NewSharded(kind, t, cfg, nShards)
	if err != nil {
		return nil, err
	}
	if err := sh.BulkAdd(entries); err != nil {
		return nil, err
	}
	return sh, nil
}

// BulkAdd partitions entries by shard and indexes the shards in parallel,
// bounded by GOMAXPROCS. Each shard is locked only while its own
// partition loads, so queries on already-loaded shards proceed during a
// bulk build.
func (sh *Sharded) BulkAdd(entries []Entry) error {
	parts := make([][]Entry, len(sh.shards))
	for _, e := range entries {
		i := sh.shardOf(e.ID)
		parts[i] = append(parts[i], e)
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []Entry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := sh.shards[i]
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, e := range part {
				if err := s.s.Add(e.ID, e.Series); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
