package index

import (
	"fmt"
	"runtime"
	"sync"

	"warping/internal/core"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// Entry is one (id, series) pair for bulk loading.
type Entry struct {
	ID     int64
	Series ts.Series
}

// BulkLoad builds an index from a static collection in one pass: both
// arena blocks of the columnar corpus are sized up front and filled
// directly (one series allocation and one feature allocation for the whole
// corpus, instead of per-entry slices), feature vectors are computed in
// parallel across CPUs, and the R*-tree is packed with Sort-Tile-Recursive
// bulk loading, which both builds faster and clusters better (fewer page
// accesses per query) than repeated Add calls. IDs must be unique and
// every series must have length t.InputLen().
func BulkLoad(t core.Transform, cfg Config, entries []Entry) (*Index, error) {
	n := t.InputLen()
	dim := t.OutputLen()
	st := corpus{
		transform: t,
		n:         n,
		dim:       dim,
		slots:     make(map[int64]int32, len(entries)),
		ids:       make([]int64, len(entries)),
		alive:     make([]bool, len(entries)),
		xs:        make([]float64, len(entries)*n),
		fs:        make([]float64, len(entries)*dim),
	}
	if st.coarse = coarseCompanion(n, t); st.coarse != nil {
		st.cdim = st.coarse.OutputLen()
		st.cfs = make([]float64, len(entries)*st.cdim)
	}
	for i, e := range entries {
		if len(e.Series) != n {
			return nil, fmt.Errorf("index: entry %d has length %d, want %d", i, len(e.Series), n)
		}
		if _, dup := st.slots[e.ID]; dup {
			return nil, fmt.Errorf("index: duplicate id %d", e.ID)
		}
		st.slots[e.ID] = int32(i)
		st.ids[i] = e.ID
		st.alive[i] = true
		copy(st.xs[i*n:(i+1)*n], e.Series)
	}

	// Parallel feature extraction straight into the feature arena; the
	// tree items point into the arena, so queries touching a candidate's
	// feature vector and its neighbors stream one contiguous block.
	items := make([]rtree.Item, len(entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(entries) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(entries) {
			hi = len(entries)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				feat := st.fs[i*dim : (i+1)*dim : (i+1)*dim]
				copy(feat, t.Apply(entries[i].Series))
				if st.coarse != nil {
					copy(st.cfs[i*st.cdim:(i+1)*st.cdim], st.coarse.Apply(entries[i].Series))
				}
				items[i] = rtree.Item{ID: entries[i].ID, Slot: int32(i), Point: feat}
			}
		}(lo, hi)
	}
	wg.Wait()

	if cfg.Pager == nil {
		return &Index{
			st:   st,
			tree: rtree.BulkLoad(dim, cfg.Tree, items),
			cfg:  cfg,
		}, nil
	}

	// Out-of-core: the staged arenas stream into page-backed columns and
	// become garbage, the tree is STR-packed at the page-capacity node size
	// and serialized as the paged base, and the in-RAM delta starts empty.
	// (The staging arenas briefly hold the whole corpus; bulk loads happen
	// at recovery/rebuild time, before any query-serving working set
	// exists.)
	sp := cfg.Pager
	paged := &pagedCols{sp: sp}
	fail := func(err error) (*Index, error) {
		_ = paged.close()
		return nil, err
	}
	var err error
	if paged.xs, err = sp.NewColumn(n); err != nil {
		return fail(err)
	}
	if paged.fs, err = sp.NewColumn(dim); err != nil {
		return fail(err)
	}
	if st.cdim > 0 {
		if paged.cfs, err = sp.NewColumn(st.cdim); err != nil {
			return fail(err)
		}
	}
	for i := range entries {
		if err = paged.xs.Append(st.xs[i*n : (i+1)*n]); err != nil {
			return fail(err)
		}
		if err = paged.fs.Append(st.fs[i*dim : (i+1)*dim]); err != nil {
			return fail(err)
		}
		if st.cdim > 0 {
			if err = paged.cfs.Append(st.cfs[i*st.cdim : (i+1)*st.cdim]); err != nil {
				return fail(err)
			}
		}
	}
	// WritePaged copies point values into node pages, so the staging arenas
	// (which items still reference) can be dropped right after.
	ram := rtree.BulkLoad(dim, rtree.Config{MaxEntries: rtree.PageCapacity(dim, sp.PageSize())}, items)
	pt, err := rtree.WritePaged(ram, sp)
	if err != nil {
		return fail(err)
	}
	st.xs, st.fs, st.cfs = nil, nil, nil
	st.paged = paged
	return &Index{
		st:    st,
		tree:  rtree.New(dim, cfg.Tree),
		ptree: pt,
		cfg:   cfg,
	}, nil
}
