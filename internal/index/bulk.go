package index

import (
	"fmt"
	"runtime"
	"sync"

	"warping/internal/core"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// Entry is one (id, series) pair for bulk loading.
type Entry struct {
	ID     int64
	Series ts.Series
}

// BulkLoad builds an index from a static collection in one pass: feature
// vectors are computed in parallel across CPUs and the R*-tree is packed
// with Sort-Tile-Recursive bulk loading, which both builds faster and
// clusters better (fewer page accesses per query) than repeated Add calls.
// IDs must be unique and every series must have length t.InputLen().
func BulkLoad(t core.Transform, cfg Config, entries []Entry) (*Index, error) {
	n := t.InputLen()
	series := make(map[int64]entry, len(entries))
	for i, e := range entries {
		if len(e.Series) != n {
			return nil, fmt.Errorf("index: entry %d has length %d, want %d", i, len(e.Series), n)
		}
		if _, dup := series[e.ID]; dup {
			return nil, fmt.Errorf("index: duplicate id %d", e.ID)
		}
		series[e.ID] = entry{x: e.Series}
	}

	// Parallel feature extraction.
	items := make([]rtree.Item, len(entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(entries) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(entries) {
			hi = len(entries)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				items[i] = rtree.Item{ID: entries[i].ID, Point: t.Apply(entries[i].Series)}
			}
		}(lo, hi)
	}
	wg.Wait()

	// Cache the feature vectors computed above so queries and removals
	// never recompute transform.Apply.
	for i, it := range items {
		e := series[entries[i].ID]
		e.feat = it.Point
		series[entries[i].ID] = e
	}

	return &Index{
		st:   corpus{transform: t, series: series, n: n},
		tree: rtree.BulkLoad(t.OutputLen(), cfg.Tree, items),
	}, nil
}
