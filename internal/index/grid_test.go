package index

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"warping/internal/core"
	"warping/internal/ts"
)

func TestGridIndexMatchesRTreeIndex(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	tr := core.NewPAA(testN, testDim)
	rt := New(tr, Config{})
	// Grid files need coarse cells in 8 dimensions: the probe count is
	// (cells per dim)^dim, so the cell edge is sized near the typical
	// query extent.
	gr := NewGrid(tr, 40)
	for i := 0; i < 300; i++ {
		s := randomWalk(r, testN)
		rt.MustAdd(int64(i), s)
		if err := gr.Add(int64(i), s); err != nil {
			t.Fatal(err)
		}
	}
	if gr.Len() != 300 {
		t.Fatalf("Len = %d", gr.Len())
	}
	for trial := 0; trial < 10; trial++ {
		q := randomWalk(r, testN)
		eps := float64(testN) * (0.03 + r.Float64()*0.05)
		delta := 0.05 + r.Float64()*0.15
		a, sa := rt.RangeQuery(q, eps, delta)
		b, sb := gr.RangeQuery(q, eps, delta)
		if len(a) != len(b) {
			t.Fatalf("trial %d: rtree %d vs grid %d matches", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
				t.Fatalf("trial %d match %d differs", trial, i)
			}
		}
		if sb.PageAccesses == 0 || sa.PageAccesses == 0 {
			t.Error("missing page accounting")
		}
	}
}

func TestGridIndexValidation(t *testing.T) {
	gr := NewGrid(core.NewPAA(testN, testDim), 2)
	if err := gr.Add(1, make(ts.Series, 3)); err == nil {
		t.Error("wrong length accepted")
	}
	if err := gr.Add(1, make(ts.Series, testN)); err != nil {
		t.Fatal(err)
	}
	if err := gr.Add(1, make(ts.Series, testN)); err == nil {
		t.Error("duplicate accepted")
	}
	// A malformed query must return ErrQueryLength, never panic (the
	// Searcher contract: a bad request cannot kill a serving goroutine).
	if _, _, err := gr.RangeQueryCtx(context.Background(), make(ts.Series, 2), 1, 0.1, Limits{}); !errors.Is(err, ErrQueryLength) {
		t.Errorf("RangeQueryCtx error = %v, want ErrQueryLength", err)
	}
	if _, _, err := gr.KNNCtx(context.Background(), make(ts.Series, 2), 3, 0.1, Limits{}); !errors.Is(err, ErrQueryLength) {
		t.Errorf("KNNCtx error = %v, want ErrQueryLength", err)
	}
	if out, _ := gr.RangeQuery(make(ts.Series, 2), 1, 0.1); out != nil {
		t.Errorf("RangeQuery on bad length = %v, want nil", out)
	}
}
