package index

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"warping/internal/core"
	"warping/internal/ts"
)

// benchQueryGroup builds a group of near-duplicate query plans: one base
// walk with per-query jitter small enough that all plans fetch overlapping
// candidate sets — the duplicate-heavy traffic shape batching is for.
func benchQueryGroup(b *testing.B, sh *Sharded, r *rand.Rand, group int) []*Plan {
	b.Helper()
	base := randomWalk(r, testN)
	plans := make([]*Plan, group)
	for i := range plans {
		q := make(ts.Series, len(base))
		for j := range q {
			q[j] = base[j] + r.NormFloat64()*0.05
		}
		p, err := sh.NewPlan(q, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		plans[i] = p
	}
	return plans
}

// BenchmarkBatchedRange compares one group of concurrent near-duplicate
// range queries executed serially (each its own fan-out, tree search and
// corpus sweep) against the same group through a Batcher (one merged
// fetch and one sweep per shard). One op is the whole group, so ns/op and
// allocs/op are directly comparable across the two modes; the batched
// mode must win both — that is the perf claim of this PR's tentpole.
func BenchmarkBatchedRange(b *testing.B) {
	const (
		corpusSize = 4000
		group      = 8
		shards     = 4
	)
	r := rand.New(rand.NewSource(21))
	tr := core.NewPAA(testN, testDim)
	sh, err := NewSharded(BackendRTree, tr, Config{}, shards)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < corpusSize; i++ {
		if err := sh.Add(int64(i), randomWalk(r, testN)); err != nil {
			b.Fatal(err)
		}
	}
	plans := benchQueryGroup(b, sh, r, group)
	eps := float64(testN) * 0.05
	ctx := context.Background()

	run := func(b *testing.B, exec func(p *Plan) ([]Match, QueryStats, error)) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, p := range plans {
				wg.Add(1)
				go func(p *Plan) {
					defer wg.Done()
					if _, _, err := exec(p); err != nil {
						b.Error(err)
					}
				}(p)
			}
			wg.Wait()
		}
	}

	b.Run("serial", func(b *testing.B) {
		run(b, func(p *Plan) ([]Match, QueryStats, error) {
			return sh.RangeQueryPlan(ctx, p, eps, Limits{})
		})
	})
	b.Run("batched", func(b *testing.B) {
		bt := NewBatcher(sh, time.Second, group)
		run(b, func(p *Plan) ([]Match, QueryStats, error) {
			return bt.RangeQueryPlan(ctx, p, eps, Limits{})
		})
	})
}
