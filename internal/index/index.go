// Package index implements the paper's end-to-end indexing scheme for
// similarity search under Dynamic Time Warping (Section 4.3):
//
//  1. every database series (already in UTW + shift normal form) is reduced
//     to an N-dimensional feature vector and inserted into an R*-tree;
//  2. a query series is expanded to its k-envelope, the envelope is
//     transformed container-invariantly into a feature-space box, and an
//     epsilon-range (or kNN) search on the tree returns candidates;
//  3. candidates pass through the full-dimensional LB_Keogh second filter
//     and finally the exact banded DTW computation.
//
// Theorem 1 guarantees no false negatives at every stage. The QueryStats
// returned with each result expose the candidate counts and page accesses
// that Figures 8-10 of the paper report.
package index

import (
	"context"
	"fmt"
	"math"
	"sort"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// Match is one query result.
type Match struct {
	ID int64
	// Dist is the exact banded DTW distance to the query.
	Dist float64
}

// QueryStats reports the work done by one query, in the paper's
// implementation-bias-free measures.
type QueryStats struct {
	// Candidates is the number of series returned by the index structure
	// (feature-space filter) before any refinement.
	Candidates int
	// LBSurvivors is the number of candidates remaining after the
	// full-dimensional LB_Keogh second filter.
	LBSurvivors int
	// ExactDTW is the number of exact banded DTW computations performed.
	ExactDTW int
	// PageAccesses is the number of index nodes visited.
	PageAccesses int
	// Degraded reports that the query hit its Limits.MaxExactDTW budget
	// and returned without refining every candidate: the results are the
	// best found within budget, not guaranteed exact.
	Degraded bool
}

// Limits bounds the work a single query may perform. The zero value means
// unlimited.
type Limits struct {
	// MaxExactDTW caps the number of exact DTW verifications per query.
	// When the cap is reached the query stops refining, returns the
	// matches found so far, and sets QueryStats.Degraded. Zero means no
	// cap.
	MaxExactDTW int
	// CandidateHook, when non-nil, is invoked before each exact-DTW
	// verification. It exists for fault injection in tests (slow-query
	// simulation) and lightweight instrumentation; it must not mutate the
	// index.
	CandidateHook func()
}

// Index is a DTW similarity index over fixed-length normal-form series.
type Index struct {
	transform core.Transform
	tree      *rtree.Tree
	series    map[int64]ts.Series
	n         int
}

// Config controls index construction.
type Config struct {
	// Tree configures the underlying R*-tree (zero value = defaults).
	Tree rtree.Config
}

// New creates an index using the given envelope transform. All series added
// and queried must have length transform.InputLen().
func New(t core.Transform, cfg Config) *Index {
	return &Index{
		transform: t,
		tree:      rtree.New(t.OutputLen(), cfg.Tree),
		series:    make(map[int64]ts.Series),
		n:         t.InputLen(),
	}
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.tree.Len() }

// SeriesLen returns the required series length n.
func (ix *Index) SeriesLen() int { return ix.n }

// Transform returns the envelope transform in use.
func (ix *Index) Transform() core.Transform { return ix.transform }

// Add inserts a series under the given id. The series must already be in
// normal form (fixed length n, typically mean-subtracted); it is retained.
// Adding an existing id replaces nothing and returns an error.
func (ix *Index) Add(id int64, x ts.Series) error {
	if len(x) != ix.n {
		return fmt.Errorf("index: series length %d, want %d", len(x), ix.n)
	}
	if _, dup := ix.series[id]; dup {
		return fmt.Errorf("index: duplicate id %d", id)
	}
	ix.series[id] = x
	ix.tree.Insert(id, ix.transform.Apply(x))
	return nil
}

// MustAdd is Add that panics on error, for bulk loading of trusted data.
func (ix *Index) MustAdd(id int64, x ts.Series) {
	if err := ix.Add(id, x); err != nil {
		panic(err)
	}
}

// Remove deletes the series stored under id. It returns false when the id
// is unknown.
func (ix *Index) Remove(id int64) bool {
	s, ok := ix.series[id]
	if !ok {
		return false
	}
	if !ix.tree.Delete(id, ix.transform.Apply(s)) {
		// The tree and the series map must stay in lockstep.
		panic(fmt.Sprintf("index: series %d present in map but not in tree", id))
	}
	delete(ix.series, id)
	return true
}

// Get returns the stored series for an id.
func (ix *Index) Get(id int64) (ts.Series, bool) {
	s, ok := ix.series[id]
	return s, ok
}

// RangeQuery returns all series whose banded DTW distance to q is at most
// epsilon, with the band radius derived from the warping width delta
// (delta = (2k+1)/n). Results are sorted by distance. The query series must
// be in the same normal form as the indexed data.
func (ix *Index) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	out, stats, _ := ix.RangeQueryCtx(context.Background(), q, epsilon, delta, Limits{})
	return out, stats
}

// RangeQueryCtx is RangeQuery with cancellation and work limits. The
// context is checked between candidates: a cancelled query stops promptly
// (without finishing the current DTW computation's candidate loop) and
// returns the matches verified so far together with ctx.Err(). Queries
// never mutate the index, so any number may run concurrently.
func (ix *Index) RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if len(q) != ix.n {
		panic(fmt.Sprintf("index: query length %d, want %d", len(q), ix.n))
	}
	k := dtw.BandRadius(ix.n, delta)
	env := dtw.NewEnvelope(q, k)
	fe := ix.transform.ApplyEnvelope(env)
	box := rtree.Rect{Lo: fe.Lower, Hi: fe.Upper}

	var tstats rtree.Stats
	items := ix.tree.RangeSearchRectStats(box, epsilon, &tstats)
	var stats QueryStats
	stats.Candidates = len(items)
	stats.PageAccesses = tstats.NodeAccesses

	var out []Match
	var err error
	for _, it := range items {
		if e := ctx.Err(); e != nil {
			err = e
			break
		}
		if lim.MaxExactDTW > 0 && stats.ExactDTW >= lim.MaxExactDTW {
			stats.Degraded = true
			break
		}
		x := ix.series[it.ID]
		// Second filter: full-dimensional envelope bound (cheap, no DP).
		if dtw.DistToEnvelope(x, env) > epsilon {
			continue
		}
		stats.LBSurvivors++
		if lim.CandidateHook != nil {
			lim.CandidateHook()
		}
		stats.ExactDTW++
		// Early-abandoning DTW: most candidates blow past epsilon in the
		// first few DP rows.
		if d2, ok := dtw.SquaredBandedWithin(x, q, k, epsilon*epsilon); ok {
			out = append(out, Match{ID: it.ID, Dist: math.Sqrt(d2)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out, stats, err
}

// RangeQueryEuclidean returns all series within Euclidean distance epsilon
// of q, using the very same index structure and feature vectors as the DTW
// queries. This realizes the paper's retrofit claim: "for existing time
// series databases indexed by DFT, DWT, PAA, SVD, etc., we can add Dynamic
// Time Warping support without rebuilding indices ... adding the DTW
// support requires changes only to the time series query" — conversely, a
// DTW index keeps serving classic Euclidean queries.
func (ix *Index) RangeQueryEuclidean(q ts.Series, epsilon float64) ([]Match, QueryStats) {
	if len(q) != ix.n {
		panic(fmt.Sprintf("index: query length %d, want %d", len(q), ix.n))
	}
	fq := ix.transform.Apply(q)

	var tstats rtree.Stats
	items := ix.tree.RangeSearchRectStats(rtree.PointRect(fq), epsilon, &tstats)
	var stats QueryStats
	stats.Candidates = len(items)
	stats.PageAccesses = tstats.NodeAccesses

	var out []Match
	eps2 := epsilon * epsilon
	for _, it := range items {
		x := ix.series[it.ID]
		stats.LBSurvivors++
		var sum float64
		exceeded := false
		for i, v := range x {
			d := v - q[i]
			sum += d * d
			if sum > eps2 {
				exceeded = true
				break
			}
		}
		if !exceeded {
			out = append(out, Match{ID: it.ID, Dist: math.Sqrt(sum)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out, stats
}

// KNN returns the k nearest series to q under banded DTW (warping width
// delta), closest first, using the optimal multi-step algorithm: candidates
// are drawn from the index in ascending feature-space lower-bound order and
// refined with exact DTW until the next lower bound exceeds the current
// kth-best exact distance. Guaranteed exact (no false dismissals).
func (ix *Index) KNN(q ts.Series, k int, delta float64) ([]Match, QueryStats) {
	out, stats, _ := ix.KNNCtx(context.Background(), q, k, delta, Limits{})
	return out, stats
}

// KNNCtx is KNN with cancellation and work limits. The context is checked
// between candidates; on cancellation the neighbors verified so far are
// returned (closest first) together with ctx.Err(). If lim.MaxExactDTW is
// hit, traversal stops, stats.Degraded is set, and the exactness guarantee
// no longer holds for the tail of the result. Queries never mutate the
// index, so any number may run concurrently.
func (ix *Index) KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if len(q) != ix.n {
		panic(fmt.Sprintf("index: query length %d, want %d", len(q), ix.n))
	}
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	band := dtw.BandRadius(ix.n, delta)
	env := dtw.NewEnvelope(q, band)
	fe := ix.transform.ApplyEnvelope(env)
	box := rtree.Rect{Lo: fe.Lower, Hi: fe.Upper}

	var tstats rtree.Stats
	var stats QueryStats
	var err error
	best := newTopK(k)
	ix.tree.IncrementalNNStats(box, func(nb rtree.Neighbor) bool {
		if e := ctx.Err(); e != nil {
			err = e
			return false
		}
		// Termination: the feature-space bound of the next candidate
		// already exceeds the kth best exact distance.
		if best.full() && nb.Dist > best.worst() {
			return false
		}
		if lim.MaxExactDTW > 0 && stats.ExactDTW >= lim.MaxExactDTW {
			stats.Degraded = true
			return false
		}
		stats.Candidates++
		x := ix.series[nb.Item.ID]
		if best.full() && dtw.DistToEnvelope(x, env) > best.worst() {
			return true
		}
		stats.LBSurvivors++
		if lim.CandidateHook != nil {
			lim.CandidateHook()
		}
		stats.ExactDTW++
		if best.full() {
			w := best.worst()
			if d2, ok := dtw.SquaredBandedWithin(x, q, band, w*w); ok {
				best.offer(Match{ID: nb.Item.ID, Dist: math.Sqrt(d2)})
			}
		} else {
			best.offer(Match{ID: nb.Item.ID, Dist: dtw.Banded(x, q, band)})
		}
		return true
	}, &tstats)
	stats.PageAccesses = tstats.NodeAccesses
	return best.sorted(), stats, err
}

// topK keeps the k smallest matches seen.
type topK struct {
	k       int
	matches []Match
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) full() bool { return len(t.matches) >= t.k }

func (t *topK) worst() float64 {
	w := t.matches[0].Dist
	for _, m := range t.matches[1:] {
		if m.Dist > w {
			w = m.Dist
		}
	}
	return w
}

func (t *topK) offer(m Match) {
	if len(t.matches) < t.k {
		t.matches = append(t.matches, m)
		return
	}
	wi := 0
	for i, mm := range t.matches {
		if mm.Dist > t.matches[wi].Dist {
			wi = i
		}
	}
	if m.Dist < t.matches[wi].Dist {
		t.matches[wi] = m
	}
}

func (t *topK) sorted() []Match {
	out := make([]Match, len(t.matches))
	copy(out, t.matches)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Visit calls fn for every stored (id, series) pair, in unspecified order.
func (ix *Index) Visit(fn func(id int64, x ts.Series)) {
	for id, s := range ix.series {
		fn(id, s)
	}
}
