// Package index implements the paper's end-to-end indexing scheme for
// similarity search under Dynamic Time Warping (Section 4.3):
//
//  1. every database series (already in UTW + shift normal form) is reduced
//     to an N-dimensional feature vector and inserted into an R*-tree;
//  2. a query series is expanded to its k-envelope, the envelope is
//     transformed container-invariantly into a feature-space box, and an
//     epsilon-range (or kNN) search on the tree returns candidates;
//  3. candidates pass through a cascade of ever-tighter lower bounds — the
//     coarse 4-dim New_PAA box distance, the feature-space box distance, the
//     full-dimensional LB_Keogh filter, the two-pass LB_Improved bound — and
//     finally the exact banded DTW computation, every stage early-abandoning
//     at the query threshold.
//
// Theorem 1 (applied independently at both feature resolutions; for
// LB_Improved, Lemire's two-pass argument) guarantees no false negatives at
// every stage. The QueryStats returned with each
// query expose the candidate counts and page accesses that Figures 8-10 of
// the paper report.
//
// The refinement hot path is allocation-free in steady state: each series'
// feature vector is cached at Add time, and all DP rows, envelope buffers
// and deque scratch live in pooled dtw.Workspaces. Large range-query
// candidate sets are verified in parallel across GOMAXPROCS workers; see
// verify.go.
package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"warping/internal/core"
	"warping/internal/pager"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// ErrQueryLength reports a query whose length does not match the index's
// series length. Returned (never panicked) by the query methods so a
// malformed request cannot kill a serving goroutine.
var ErrQueryLength = errors.New("query length mismatch")

// queryLengthError wraps ErrQueryLength with the got/want lengths, the
// uniform error of every query surface.
func queryLengthError(got, want int) error {
	return fmt.Errorf("index: %w: got %d, want %d", ErrQueryLength, got, want)
}

// Match is one query result.
type Match struct {
	ID int64
	// Dist is the exact banded DTW distance to the query.
	Dist float64
}

// QueryStats reports the work done by one query, in the paper's
// implementation-bias-free measures.
type QueryStats struct {
	// Candidates is the number of series returned by the index structure
	// (feature-space filter) before any refinement.
	Candidates int
	// CoarseSurvivors is the number of candidates remaining after the
	// coarse 4-dim New_PAA box pre-stage (== Candidates when the corpus
	// carries no coarse column).
	CoarseSurvivors int
	// KeoghSurvivors is the number of candidates remaining after the
	// full-dimensional box check and LB_Keogh.
	KeoghSurvivors int
	// LBSurvivors is the number of candidates remaining after the whole
	// lower-bound cascade (LB_Improved second pass included).
	LBSurvivors int
	// ExactDTW is the number of exact banded DTW computations performed.
	ExactDTW int
	// LogicalPages is the number of index nodes (R*-tree nodes or grid
	// buckets) visited — the implementation-bias-free simulated measure the
	// paper's figures report, independent of cache state.
	LogicalPages int
	// PageAccesses is the number of real page reads the query caused: the
	// buffer-pool misses of its node visits and corpus-column reads when
	// the backend runs out-of-core (Config.Pager). When everything is in
	// RAM there is no pool, and PageAccesses equals LogicalPages (every
	// logical visit is as real as it gets).
	PageAccesses int
	// Degraded reports that the query hit its Limits.MaxExactDTW budget
	// and returned without refining every candidate: the results are the
	// best found within budget, not guaranteed exact.
	Degraded bool
	// Cached reports that the result set was served from a result cache
	// without executing the query (qbh layer); the other counters then
	// describe the original execution that populated the cache entry.
	Cached bool
}

// add accumulates the counters of another query round into s. Degraded is
// sticky: one degraded round degrades the whole query.
func (s *QueryStats) add(o QueryStats) {
	s.Candidates += o.Candidates
	s.CoarseSurvivors += o.CoarseSurvivors
	s.KeoghSurvivors += o.KeoghSurvivors
	s.LBSurvivors += o.LBSurvivors
	s.ExactDTW += o.ExactDTW
	s.LogicalPages += o.LogicalPages
	s.PageAccesses += o.PageAccesses
	s.Degraded = s.Degraded || o.Degraded
	s.Cached = s.Cached || o.Cached
}

// Add is the exported form of add, for callers (like the qbh growth loop)
// that issue several index rounds on behalf of one logical query and must
// report cumulative work.
func (s *QueryStats) Add(o QueryStats) { s.add(o) }

// Limits bounds the work a single query may perform. The zero value means
// unlimited.
type Limits struct {
	// MaxExactDTW caps the number of exact DTW verifications per query.
	// When the cap is reached the query stops refining, returns the
	// matches found so far, and sets QueryStats.Degraded. Zero means no
	// cap. When the query fans out across shards the cap applies to the
	// whole query, shared atomically by every shard.
	MaxExactDTW int
	// CandidateHook, when non-nil, is invoked before each exact-DTW
	// verification. It exists for fault injection in tests (slow-query
	// simulation) and lightweight instrumentation; it must not mutate the
	// index. Parallel range verification serializes hook invocations, so
	// the hook itself needs no internal locking.
	CandidateHook func()

	// shared, when non-nil, couples the per-shard sub-queries of one
	// fanned-out logical query (set by Sharded, never by callers): a
	// common exact-DTW budget and, for kNN, the global kth-best distance
	// bound that lets every shard prune against the best results found
	// anywhere.
	shared *sharedQuery
}

// sharedQuery is the cross-shard state of one fanned-out query.
type sharedQuery struct {
	// maxDTW is the whole-query exact-DTW budget (0 = unlimited);
	// reserved counts reservations across all shards.
	maxDTW   int64
	reserved atomic.Int64
	// fan is the number of shards the query fanned out across. Per-shard
	// verification divides its worker budget by it: the fan-out already
	// occupies one core per shard, so nested parallel verification would
	// oversubscribe the machine.
	fan int
	// bound is the kNN pruning cutoff: the smallest kth-best exact
	// distance any shard has established so far (Float64bits; +Inf until
	// some shard holds k results). The global kth-best distance can only
	// be smaller than any shard-local one, so pruning candidates whose
	// lower bound exceeds it can never cause a false dismissal.
	bound atomic.Uint64
}

func newSharedQuery(maxDTW, fan int) *sharedQuery {
	s := &sharedQuery{maxDTW: int64(maxDTW), fan: fan}
	s.bound.Store(math.Float64bits(math.Inf(1)))
	return s
}

// shrinkBound lowers the shared kNN cutoff to d if d is smaller.
func (s *sharedQuery) shrinkBound(d float64) {
	for {
		cur := s.bound.Load()
		if math.Float64frombits(cur) <= d {
			return
		}
		if s.bound.CompareAndSwap(cur, math.Float64bits(d)) {
			return
		}
	}
}

func (s *sharedQuery) loadBound() float64 { return math.Float64frombits(s.bound.Load()) }

// exhausted reports whether the query's exact-DTW budget is already spent.
// done is the caller's locally performed count (used when the query is not
// fanned out and so has no shared counter).
func (l *Limits) exhausted(done int) bool {
	if l.shared != nil {
		return l.shared.maxDTW > 0 && l.shared.reserved.Load() >= l.shared.maxDTW
	}
	return l.MaxExactDTW > 0 && done >= l.MaxExactDTW
}

// reserveDTW claims one exact-DTW verification, returning false when the
// budget is exhausted (the caller must stop and mark the query degraded).
func (l *Limits) reserveDTW(done int) bool {
	if l.shared != nil {
		if l.shared.maxDTW <= 0 {
			return true
		}
		return l.shared.reserved.Add(1) <= l.shared.maxDTW
	}
	return l.MaxExactDTW <= 0 || done < l.MaxExactDTW
}

// knnCutoff combines a shard-local kth-best distance (math.Inf(1) until k
// results are held) with the shared cross-shard bound.
func (l *Limits) knnCutoff(local float64) float64 {
	if l.shared != nil {
		if b := l.shared.loadBound(); b < local {
			return b
		}
	}
	return local
}

// publishKNNBound exports a shard-local kth-best distance to the other
// shards of a fanned-out query.
func (l *Limits) publishKNNBound(d float64) {
	if l.shared != nil {
		l.shared.shrinkBound(d)
	}
}

// entry is a view of one indexed series and its feature vectors (cached at
// Add time, so queries and removals never recompute transform.Apply).
// All slices alias the corpus arenas; cfeat is nil when the corpus carries
// no coarse column.
type entry struct {
	x     ts.Series
	feat  []float64
	cfeat []float64
}

// Index is a DTW similarity index over fixed-length normal-form series,
// backed by an R*-tree. It implements Searcher.
//
// In RAM mode (Config.Pager nil) tree holds every item. In out-of-core
// mode the index is a two-part structure: ptree is an immutable paged base
// whose nodes live one-per-page in the buffer pool's spill files, and tree
// is a small in-RAM delta absorbing inserts since the last merge. Removals
// of base items are tombstones (corpus alive[] filters them out of base
// candidates); when the delta outgrows deltaMergeMin or base/4, or when
// tombstones dominate the corpus, base and delta merge into a fresh paged
// base via STR bulk loading at the page-capacity node size.
type Index struct {
	st    corpus
	tree  *rtree.Tree
	ptree *rtree.PagedTree // paged base; nil in RAM mode or before first merge
	cfg   Config
}

// Config controls backend construction.
type Config struct {
	// Tree configures the underlying R*-tree (zero value = defaults). In
	// paged mode this shapes only the in-RAM delta tree; the paged base's
	// node capacity is derived from the pager's page size.
	Tree rtree.Config
	// GridCell is the grid-file cell edge length in feature-space units
	// (BackendGrid only; zero selects DefaultGridCell).
	GridCell float64
	// Pager, when non-nil, switches backends built with this config into
	// out-of-core mode: corpus arenas (and R*-tree base nodes) live in
	// page files behind the space's shared buffer pool. The Space is owned
	// by the caller and may be shared by many backends (all shards of a
	// system).
	Pager *pager.Space
}

// New creates an index using the given envelope transform. All series added
// and queried must have length transform.InputLen(). It panics if paged
// spill files cannot be created (use NewBackend for the error form).
func New(t core.Transform, cfg Config) *Index {
	ix, err := newIndex(t, cfg)
	if err != nil {
		panic(err)
	}
	return ix
}

func newIndex(t core.Transform, cfg Config) (*Index, error) {
	ix := &Index{
		st:   newCorpus(t, 0),
		tree: rtree.New(t.OutputLen(), cfg.Tree),
		cfg:  cfg,
	}
	if cfg.Pager != nil {
		if err := ix.st.pageTo(cfg.Pager); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.st.len() }

// SeriesLen returns the required series length n.
func (ix *Index) SeriesLen() int { return ix.st.n }

// Transform returns the envelope transform in use.
func (ix *Index) Transform() core.Transform { return ix.st.transform }

// Add inserts a series under the given id. The series must already be in
// normal form (fixed length n, typically mean-subtracted); it is retained.
// Adding an existing id replaces nothing and returns an error.
func (ix *Index) Add(id int64, x ts.Series) error {
	e, slot, err := ix.st.add(id, x)
	if err != nil {
		return err
	}
	ix.tree.InsertItem(rtree.Item{ID: id, Slot: slot, Point: e.feat})
	if ix.st.paged != nil && ix.tree.Len() >= ix.deltaThreshold() {
		// Fold the delta into a fresh paged base. The add itself succeeded
		// and a failed merge leaves both trees intact (the delta just stays
		// large and the next add retries), so the error is not the caller's.
		_ = ix.mergePaged()
	}
	return nil
}

// MustAdd is Add that panics on error, for bulk loading of trusted data.
func (ix *Index) MustAdd(id int64, x ts.Series) {
	if err := ix.Add(id, x); err != nil {
		panic(err)
	}
}

// Remove deletes the series stored under id. It returns false when the id
// is unknown. The arena slot is tombstoned; when tombstones dominate, the
// corpus compacts and the tree is rebuilt over the fresh arena (bulk
// loaded — better clustered than the incrementally grown tree it
// replaces, and the old arena generation becomes garbage).
func (ix *Index) Remove(id int64) bool {
	e, ok := ix.st.remove(id)
	if !ok {
		return false
	}
	if ix.st.paged != nil {
		// A delta item comes straight out of the RAM tree; a base item is
		// not in it (the paged base is immutable) and its tombstone alone
		// hides it from queries, so a false return is expected here.
		ix.tree.Delete(id, e.feat)
		if ix.st.shouldCompact() {
			// A failed compaction leaves the tombstones in place; the next
			// removal retries.
			_ = ix.compactPaged()
		}
		return true
	}
	if !ix.tree.Delete(id, e.feat) {
		// The tree and the arena must stay in lockstep.
		panic(fmt.Sprintf("index: series %d present in arena but not in tree", id))
	}
	if ix.st.shouldCompact() {
		ix.st.compact()
		ix.rebuild()
	}
	return true
}

// rebuild repacks the R*-tree from the (just compacted) arena so its item
// points reference the current arena generation and its slot tags the
// fresh slot assignment. Slots only move at compaction, and compaction is
// always followed by this rebuild, so item slots never go stale.
func (ix *Index) rebuild() {
	items := make([]rtree.Item, 0, ix.st.len())
	ix.st.visitEntries(func(slot int32, id int64, e entry) {
		items = append(items, rtree.Item{ID: id, Slot: slot, Point: e.feat})
	})
	ix.tree = rtree.BulkLoad(ix.st.transform.OutputLen(), ix.cfg.Tree, items)
}

// deltaMergeMin is the smallest delta-tree size that triggers a merge into
// the paged base. Below it a rebuild cannot pay for itself; above it the
// threshold scales with the base (base/4), so merge work stays amortized
// O(log n) per insert.
const deltaMergeMin = 1024

// deltaThreshold is the delta-tree size at which the next Add folds base
// and delta into a fresh paged base.
func (ix *Index) deltaThreshold() int {
	t := deltaMergeMin
	if ix.ptree != nil {
		if b := ix.ptree.Len() / 4; b > t {
			t = b
		}
	}
	return t
}

// buildPagedBase STR-bulk-loads every live series (base and delta alike,
// tombstones excluded) into a RAM tree at the page-capacity node size and
// serializes it into fresh pages, returning the new immutable base. When
// renumber is set, items are tagged with the slots the arena compaction
// about to follow will assign — rank in live-slot order, exactly the
// deterministic assignment compactPagedCols makes — instead of their
// current slots. On error nothing of the index has changed.
func (ix *Index) buildPagedBase(renumber bool) (*rtree.PagedTree, error) {
	sp := ix.st.paged.sp
	dim := ix.st.dim
	items := make([]rtree.Item, 0, ix.st.len())
	r := ix.st.reader()
	for slot, id := range ix.st.ids {
		if !ix.st.alive[slot] {
			continue
		}
		f, err := r.featAt(slot)
		if err != nil {
			r.release()
			return nil, err
		}
		s := int32(slot)
		if renumber {
			s = int32(len(items))
		}
		items = append(items, rtree.Item{ID: id, Slot: s, Point: append([]float64(nil), f...)})
	}
	r.release()
	ram := rtree.BulkLoad(dim, rtree.Config{MaxEntries: rtree.PageCapacity(dim, sp.PageSize())}, items)
	return rtree.WritePaged(ram, sp)
}

// mergePaged replaces the paged base with a fresh one covering base plus
// delta, and empties the delta. Slots do not move. All-or-nothing: on error
// the old base and delta stand.
func (ix *Index) mergePaged() error {
	pt, err := ix.buildPagedBase(false)
	if err != nil {
		return err
	}
	if old := ix.ptree; old != nil {
		_ = old.Close(ix.st.paged.sp)
	}
	ix.ptree = pt
	ix.tree = rtree.New(ix.st.dim, ix.cfg.Tree)
	return nil
}

// compactPaged is the out-of-core form of compact+rebuild: a fresh base is
// built first under the predicted post-compaction slot assignment, then the
// columns compact (their commit renumbers the live slots exactly as
// predicted), then the base swaps in and the delta empties. A failure at
// either stage leaves the old columns, slots, base and delta fully intact.
func (ix *Index) compactPaged() error {
	pt, err := ix.buildPagedBase(true)
	if err != nil {
		return err
	}
	sp := ix.st.paged.sp
	if err := ix.st.compactPagedCols(); err != nil {
		_ = pt.Close(sp)
		return err
	}
	if old := ix.ptree; old != nil {
		_ = old.Close(sp)
	}
	ix.ptree = pt
	ix.tree = rtree.New(ix.st.dim, ix.cfg.Tree)
	return nil
}

// Close releases the index's spill files (paged mode; RAM indexes no-op).
func (ix *Index) Close() error {
	var first error
	if ix.ptree != nil {
		first = ix.ptree.Close(ix.st.paged.sp)
		ix.ptree = nil
	}
	if err := ix.st.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Get returns the stored series for an id.
func (ix *Index) Get(id int64) (ts.Series, bool) { return ix.st.get(id) }

// RangeQuery returns all series whose banded DTW distance to q is at most
// epsilon, with the band radius derived from the warping width delta
// (delta = (2k+1)/n). Results are sorted by distance. The query series must
// be in the same normal form as the indexed data; a query of the wrong
// length returns no matches (use RangeQueryCtx for the error).
func (ix *Index) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	out, stats, _ := ix.RangeQueryCtx(context.Background(), q, epsilon, delta, Limits{})
	return out, stats
}

// RangeQueryCtx is RangeQuery with cancellation and work limits. The
// context is checked between candidates: a cancelled query stops promptly
// (without finishing the current DTW computation's candidate loop) and
// returns the matches verified so far together with ctx.Err(). A query of
// the wrong length returns ErrQueryLength. Queries never mutate the index,
// so any number may run concurrently.
func (ix *Index) RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := ix.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	p := makePlan(q, delta, ix.st.n, ix.st.transform, ix.st.coarse)
	sc := getScratch()
	out, stats, err := ix.rangePlan(ctx, p, epsilon, lim, sc)
	return finish(out, sc, true), stats, err
}

// rangePlan implements Searcher: the box search and refinement cascade
// against a precomputed plan, building candidates and matches in pooled
// scratch. Returned matches alias sc.out (unsorted).
func (ix *Index) rangePlan(ctx context.Context, p *Plan, epsilon float64, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	box := rtree.Rect{Lo: p.fe.Lower, Hi: p.fe.Upper}

	var tstats rtree.Stats
	sc.ritems = ix.tree.RangeSearchRectInto(box, epsilon, sc.ritems[:0], &tstats)
	var stats QueryStats
	if ix.ptree != nil {
		// Append the paged base's candidates, then drop tombstoned base
		// items in place (alive is indexed by slot; delta items are always
		// live — remove takes them out of the delta tree directly).
		nDelta := len(sc.ritems)
		all, err := ix.ptree.RangeSearchInto(box, epsilon, sc.ritems, &tstats)
		sc.ritems = all
		if err != nil {
			return nil, stats, err
		}
		live := all[:nDelta]
		for _, it := range all[nDelta:] {
			if ix.st.alive[it.Slot] {
				live = append(live, it)
			}
		}
		sc.ritems = live
	}
	stats.Candidates = len(sc.ritems)
	stats.LogicalPages = tstats.NodeAccesses
	if ix.st.paged != nil {
		// Real I/O: node-pin misses here, column-read misses added by
		// verifyRange below.
		stats.PageAccesses = tstats.PageMisses
	} else {
		stats.PageAccesses = stats.LogicalPages
	}

	// fe is nil: the tree's leaf filter already applied the exact
	// point-to-box distance test at this epsilon, so re-running the box
	// pre-check per candidate could never prune — only cost O(dim) each.
	// The coarse pre-stage still runs: an O(4) check ahead of the O(n)
	// LB_Keogh, and for transforms whose coarse box is not nested inside
	// the fine one (DFT/DWT/SVD) it prunes candidates the tree let through.
	rq := &rangeQuery{q: p.q, env: p.env, cfe: p.coarseEnvelope(), band: p.band, eps2: epsilon * epsilon, useLB: true}
	out, err := verifyRange(ctx, &ix.st, rq, sc.ritems, rtreeCand, lim, &stats, sc.out[:0])
	sc.out = out
	return out, stats, err
}

// RangeQueryEuclidean returns all series within Euclidean distance epsilon
// of q, using the very same index structure and feature vectors as the DTW
// queries. This realizes the paper's retrofit claim: "for existing time
// series databases indexed by DFT, DWT, PAA, SVD, etc., we can add Dynamic
// Time Warping support without rebuilding indices ... adding the DTW
// support requires changes only to the time series query" — conversely, a
// DTW index keeps serving classic Euclidean queries. A query of the wrong
// length returns ErrQueryLength.
func (ix *Index) RangeQueryEuclidean(q ts.Series, epsilon float64) ([]Match, QueryStats, error) {
	if err := ix.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	fq := ix.st.transform.Apply(q)

	var tstats rtree.Stats
	items := ix.tree.RangeSearchRectStats(rtree.PointRect(fq), epsilon, &tstats)
	var stats QueryStats
	if ix.ptree != nil {
		nDelta := len(items)
		all, err := ix.ptree.RangeSearchInto(rtree.PointRect(fq), epsilon, items, &tstats)
		if err != nil {
			return nil, stats, err
		}
		live := all[:nDelta]
		for _, it := range all[nDelta:] {
			if ix.st.alive[it.Slot] {
				live = append(live, it)
			}
		}
		items = live
	}
	stats.Candidates = len(items)
	stats.LogicalPages = tstats.NodeAccesses

	r := ix.st.reader()
	defer r.release()
	var out []Match
	eps2 := epsilon * epsilon
	var rerr error
	for _, it := range items {
		e, err := r.at(int(it.Slot))
		if err != nil {
			rerr = err
			break
		}
		x := e.x
		stats.LBSurvivors++
		var sum float64
		exceeded := false
		for i, v := range x {
			d := v - q[i]
			sum += d * d
			if sum > eps2 {
				exceeded = true
				break
			}
		}
		if !exceeded {
			out = append(out, Match{ID: it.ID, Dist: math.Sqrt(sum)})
		}
	}
	if ix.st.paged != nil {
		stats.PageAccesses = tstats.PageMisses + r.misses()
	} else {
		stats.PageAccesses = stats.LogicalPages
	}
	sortMatches(out)
	return out, stats, rerr
}

// KNN returns the k nearest series to q under banded DTW (warping width
// delta), closest first, using the optimal multi-step algorithm: candidates
// are drawn from the index in ascending feature-space lower-bound order and
// refined with exact DTW until the next lower bound exceeds the current
// kth-best exact distance. Guaranteed exact (no false dismissals). A query
// of the wrong length returns no matches (use KNNCtx for the error).
func (ix *Index) KNN(q ts.Series, k int, delta float64) ([]Match, QueryStats) {
	out, stats, _ := ix.KNNCtx(context.Background(), q, k, delta, Limits{})
	return out, stats
}

// KNNCtx is KNN with cancellation and work limits. The context is checked
// between candidates; on cancellation the neighbors verified so far are
// returned (closest first) together with ctx.Err(). If lim.MaxExactDTW is
// hit, traversal stops, stats.Degraded is set, and the exactness guarantee
// no longer holds for the tail of the result. A query of the wrong length
// returns ErrQueryLength. Queries never mutate the index, so any number may
// run concurrently.
func (ix *Index) KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := ix.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	p := makePlan(q, delta, ix.st.n, ix.st.transform, ix.st.coarse)
	sc := getScratch()
	out, stats, err := ix.knnPlan(ctx, p, k, lim, sc)
	return finish(out, sc, false), stats, err
}

// knnPlan implements Searcher: best-first traversal and refinement
// against a precomputed plan, with the top-k heap and sorted result built
// in pooled scratch. Returned matches alias sc.out (sorted). In paged mode
// two ascending-distance streams — the in-RAM delta tree's and the paged
// base's — merge into one globally ordered candidate stream (both iterators
// break distance ties items-before-nodes, so the merged order matches what
// a single tree over the union would produce), with tombstoned base items
// skipped as they surface.
func (ix *Index) knnPlan(ctx context.Context, p *Plan, k int, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	box := rtree.Rect{Lo: p.fe.Lower, Hi: p.fe.Upper}

	v := getVerifier()
	defer putVerifier(v)

	var tstats rtree.Stats
	var stats QueryStats
	best := sc.topK(k)
	s := &knnState{v: v, q: p.q, env: p.env, cfe: p.coarseEnvelope(), band: p.band, best: best, lim: lim, stats: &stats, useLB: true}

	r := ix.st.reader()
	defer r.release()

	ramIt := ix.tree.NNIter(box, &tstats)
	defer ramIt.Close()
	ramNb, ramOK := ramIt.Next()
	var pagedIt *rtree.PagedNNIter
	var pagedNb rtree.Neighbor
	var pagedOK bool
	if ix.ptree != nil {
		pagedIt = ix.ptree.NNIter(box, &tstats)
		pagedNb, pagedOK = ix.nextAlive(pagedIt)
	}
	for (ramOK || pagedOK) && s.err == nil {
		fromRAM := ramOK && (!pagedOK || ramNb.Dist <= pagedNb.Dist)
		nb := pagedNb
		if fromRAM {
			nb = ramNb
		}
		if e := ctx.Err(); e != nil {
			s.err = e
			break
		}
		// Termination: the feature-space bound of the next candidate
		// already exceeds the kth best exact distance (locally, or
		// established by any other shard of a fanned-out query).
		if nb.Dist > s.cutoff() {
			break
		}
		e, err := r.at(int(nb.Item.Slot))
		if err != nil {
			s.err = err
			break
		}
		if !s.refine(ctx, nb.Item.ID, e) {
			break
		}
		if fromRAM {
			ramNb, ramOK = ramIt.Next()
		} else {
			pagedNb, pagedOK = ix.nextAlive(pagedIt)
		}
	}
	if s.err == nil && pagedIt != nil {
		s.err = pagedIt.Err()
	}
	stats.LogicalPages = tstats.NodeAccesses
	if ix.st.paged != nil {
		stats.PageAccesses = tstats.PageMisses + r.misses()
	} else {
		stats.PageAccesses = stats.LogicalPages
	}
	return best.sortedInto(sc), stats, s.err
}

// nextAlive pulls the paged base's NN stream past tombstoned items.
func (ix *Index) nextAlive(it *rtree.PagedNNIter) (rtree.Neighbor, bool) {
	for {
		nb, ok := it.Next()
		if !ok || ix.st.alive[nb.Item.Slot] {
			return nb, ok
		}
	}
}

// sortMatches orders matches by (distance, id), the deterministic result
// order of every query method. slices.SortFunc keeps the hot fan-out
// merge free of the sort.Slice closure/interface allocations.
func sortMatches(out []Match) {
	slices.SortFunc(out, func(a, b Match) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// topK keeps the k smallest matches seen in a max-heap keyed on distance:
// worst() is O(1) and offer() O(log k). (The former linear scans made
// Rank/RankPhrase — which ask for k = every phrase — O(n·k).) Its storage
// lives in the query's pooled scratch (scratch.topK), so steady-state kNN
// queries allocate no heap memory for it.
type topK struct {
	k int
	m []Match // max-heap by Dist; m[0] is the current worst kept match
}

// topK readies the scratch-resident top-k heap for a query.
func (sc *scratch) topK(k int) *topK {
	sc.top.k = k
	sc.top.m = sc.heap[:0]
	return &sc.top
}

func (t *topK) full() bool { return len(t.m) >= t.k }

// worst returns the largest kept distance. Callers must ensure the heap is
// non-empty (guarded by full() with k > 0).
func (t *topK) worst() float64 { return t.m[0].Dist }

func (t *topK) offer(m Match) {
	if len(t.m) < t.k {
		t.m = append(t.m, m)
		i := len(t.m) - 1
		for i > 0 {
			p := (i - 1) / 2
			if t.m[p].Dist >= t.m[i].Dist {
				break
			}
			t.m[p], t.m[i] = t.m[i], t.m[p]
			i = p
		}
		return
	}
	if m.Dist >= t.m[0].Dist {
		return
	}
	t.m[0] = m
	i, n := 0, len(t.m)
	for {
		big := i
		if l := 2*i + 1; l < n && t.m[l].Dist > t.m[big].Dist {
			big = l
		}
		if r := 2*i + 2; r < n && t.m[r].Dist > t.m[big].Dist {
			big = r
		}
		if big == i {
			break
		}
		t.m[i], t.m[big] = t.m[big], t.m[i]
		i = big
	}
}

// sortedInto copies the kept matches into the scratch output buffer in
// (distance, id) order, handing the heap's grown storage back to the
// scratch for reuse. The returned slice aliases sc.out.
func (t *topK) sortedInto(sc *scratch) []Match {
	sc.heap = t.m[:0]
	out := append(sc.out[:0], t.m...)
	sortMatches(out)
	sc.out = out
	return out
}

// Visit calls fn for every stored (id, series) pair, in unspecified order.
func (ix *Index) Visit(fn func(id int64, x ts.Series)) { ix.st.visit(fn) }
