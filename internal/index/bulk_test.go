package index

import (
	"math"
	"math/rand"
	"testing"

	"warping/internal/core"
	"warping/internal/ts"
)

func TestBulkLoadMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	tr := core.NewPAA(testN, testDim)
	entries := make([]Entry, 800)
	inc := New(tr, Config{})
	for i := range entries {
		s := randomWalk(r, testN)
		entries[i] = Entry{ID: int64(i), Series: s}
		inc.MustAdd(int64(i), s)
	}
	bulk, err := BulkLoad(tr, Config{}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != 800 {
		t.Fatalf("Len = %d", bulk.Len())
	}
	for trial := 0; trial < 10; trial++ {
		q := randomWalk(r, testN)
		eps := float64(testN) * (0.03 + r.Float64()*0.05)
		delta := 0.05 + r.Float64()*0.15
		a, _ := inc.RangeQuery(q, eps, delta)
		b, sb := bulk.RangeQuery(q, eps, delta)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d matches", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
				t.Fatalf("trial %d match %d differs", trial, i)
			}
		}
		if sb.PageAccesses == 0 {
			t.Error("no page accounting on bulk-loaded index")
		}
		// kNN too.
		ka, _ := inc.KNN(q, 5, delta)
		kb, _ := bulk.KNN(q, 5, delta)
		for i := range ka {
			if math.Abs(ka[i].Dist-kb[i].Dist) > 1e-12 {
				t.Fatalf("trial %d kNN %d differs", trial, i)
			}
		}
	}
}

func TestBulkLoadValidation(t *testing.T) {
	tr := core.NewPAA(testN, testDim)
	if _, err := BulkLoad(tr, Config{}, []Entry{{ID: 1, Series: make(ts.Series, 3)}}); err == nil {
		t.Error("wrong length accepted")
	}
	dup := []Entry{
		{ID: 1, Series: make(ts.Series, testN)},
		{ID: 1, Series: make(ts.Series, testN)},
	}
	if _, err := BulkLoad(tr, Config{}, dup); err == nil {
		t.Error("duplicate ids accepted")
	}
	empty, err := BulkLoad(tr, Config{}, nil)
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty bulk load: %v len=%d", err, empty.Len())
	}
}

func TestBulkLoadedIndexIsDynamic(t *testing.T) {
	r := rand.New(rand.NewSource(132))
	tr := core.NewPAA(testN, testDim)
	entries := make([]Entry, 100)
	for i := range entries {
		entries[i] = Entry{ID: int64(i), Series: randomWalk(r, testN)}
	}
	ix, err := BulkLoad(tr, Config{}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1000, randomWalk(r, testN)); err != nil {
		t.Fatal(err)
	}
	if !ix.Remove(50) {
		t.Fatal("remove failed")
	}
	if ix.Len() != 100 {
		t.Errorf("Len = %d", ix.Len())
	}
}
