package index

import (
	"context"

	"warping/internal/core"
	"warping/internal/gridfile"
	"warping/internal/ts"
)

// GridIndex is a DTW similarity index backed by a grid file instead of an
// R*-tree — the alternative multidimensional structure the paper cites
// (used by StatStream [35]). It implements Searcher with the same
// exactness guarantees and the same shared refinement cascade as the
// R*-tree backend; kNN uses an expanding-ring search around the query's
// feature-space box (cells are visited shell by shell outward, stopping
// when the next shell's distance bound exceeds the current kth-best).
// PageAccesses counts grid buckets visited.
type GridIndex struct {
	st   corpus
	grid *gridfile.Grid
}

// NewGrid creates a grid-file DTW index. cellSize is the grid cell edge
// length in feature-space units.
func NewGrid(t core.Transform, cellSize float64) *GridIndex {
	return &GridIndex{
		st:   newCorpus(t, 0),
		grid: gridfile.New(t.OutputLen(), cellSize),
	}
}

// Len returns the number of indexed series.
func (ix *GridIndex) Len() int { return ix.grid.Len() }

// SeriesLen returns the required series length n.
func (ix *GridIndex) SeriesLen() int { return ix.st.n }

// Transform returns the envelope transform in use.
func (ix *GridIndex) Transform() core.Transform { return ix.st.transform }

// Add inserts a normal-form series under id. The feature vector is
// computed once here and cached for the verification cascade.
func (ix *GridIndex) Add(id int64, x ts.Series) error {
	e, slot, err := ix.st.add(id, x)
	if err != nil {
		return err
	}
	ix.grid.InsertItem(gridfile.Item{ID: id, Slot: slot, Point: e.feat})
	return nil
}

// Remove deletes the series stored under id. It returns false when the id
// is unknown. When tombstones come to dominate the arena it compacts and
// rebuilds the grid over the fresh arena (unpinning the old generation's
// feature slices).
func (ix *GridIndex) Remove(id int64) bool {
	e, ok := ix.st.remove(id)
	if !ok {
		return false
	}
	if !ix.grid.Delete(id, e.feat) {
		// The grid and the corpus must stay in lockstep.
		panic("index: series present in corpus but not in grid")
	}
	if ix.st.shouldCompact() {
		if ix.st.paged != nil {
			// All-or-nothing column compaction; on failure the tombstones
			// stay and the next removal retries.
			if ix.st.compactPagedCols() != nil {
				return true
			}
		} else {
			ix.st.compact()
		}
		ix.rebuild()
	}
	return true
}

// Close releases the grid backend's spill files (paged mode; no-op in RAM).
func (ix *GridIndex) Close() error { return ix.st.close() }

// rebuild reconstructs the grid over the current arena generation, with
// item slots tagging the fresh slot assignment (slots only move at
// compaction, and compaction is always followed by this rebuild).
func (ix *GridIndex) rebuild() {
	g := gridfile.New(ix.st.transform.OutputLen(), ix.grid.CellSize())
	ix.st.visitEntries(func(slot int32, id int64, e entry) {
		g.InsertItem(gridfile.Item{ID: id, Slot: slot, Point: e.feat})
	})
	ix.grid = g
}

// Get returns the stored series for an id.
func (ix *GridIndex) Get(id int64) (ts.Series, bool) { return ix.st.get(id) }

// Visit calls fn for every stored (id, series) pair, in insertion order.
func (ix *GridIndex) Visit(fn func(id int64, x ts.Series)) { ix.st.visit(fn) }

// RangeQuery returns all series within epsilon under banded DTW with
// warping width delta, exactly as Index.RangeQuery.
func (ix *GridIndex) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	out, stats, _ := ix.RangeQueryCtx(context.Background(), q, epsilon, delta, Limits{})
	return out, stats
}

// RangeQueryCtx implements Searcher: the grid's box search feeds the same
// refinement cascade (and the same cancellation, budget and stats
// semantics) as the R*-tree backend. A query of the wrong length returns
// ErrQueryLength.
func (ix *GridIndex) RangeQueryCtx(ctx context.Context, q ts.Series, epsilon, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := ix.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	p := makePlan(q, delta, ix.st.n, ix.st.transform, ix.st.coarse)
	sc := getScratch()
	out, stats, err := ix.rangePlan(ctx, p, epsilon, lim, sc)
	return finish(out, sc, true), stats, err
}

func (ix *GridIndex) rangePlan(ctx context.Context, p *Plan, epsilon float64, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	fe := p.featureEnvelope()
	var gstats gridfile.Stats
	sc.gitems = ix.grid.RangeSearchBoxInto(fe.Lower, fe.Upper, epsilon, sc.gitems[:0], &gstats)
	var stats QueryStats
	stats.Candidates = len(sc.gitems)
	stats.LogicalPages = gstats.BucketAccesses
	if ix.st.paged == nil {
		// RAM mode: every bucket visit is as real as it gets. In paged mode
		// the grid directory itself stays in RAM; the real page reads are
		// the corpus-column misses verifyRange adds below.
		stats.PageAccesses = stats.LogicalPages
	}

	// fe is nil in the cascade: the grid's box search already applied the
	// exact point-to-box distance test at this epsilon, so re-running the
	// box pre-check per candidate could never prune — only cost O(dim).
	// The O(4) coarse pre-stage still runs (see the R*-tree rangePlan).
	rq := &rangeQuery{q: p.q, env: p.env, cfe: p.coarseEnvelope(), band: p.band, eps2: epsilon * epsilon, useLB: true}
	out, err := verifyRange(ctx, &ix.st, rq, sc.gitems, gridCand, lim, &stats, sc.out[:0])
	sc.out = out
	return out, stats, err
}

// KNN returns the k nearest series under banded DTW, closest first.
func (ix *GridIndex) KNN(q ts.Series, k int, delta float64) ([]Match, QueryStats) {
	out, stats, _ := ix.KNNCtx(context.Background(), q, k, delta, Limits{})
	return out, stats
}

// KNNCtx implements Searcher using an expanding-ring search: grid cells
// are visited shell by shell outward from the query's feature-space box.
// Every point in a ring-r cell is at least (r-1)·cellSize from the box in
// feature space, and the feature-space box distance lower-bounds the DTW
// distance (Theorem 1), so stopping when that shell bound exceeds the
// current kth-best exact distance dismisses no true neighbor — the same
// optimal multi-step argument as the R*-tree's best-first traversal, at
// shell granularity. Within a shell, candidates are pruned individually
// against their exact feature-space box distance before entering the
// shared cascade.
func (ix *GridIndex) KNNCtx(ctx context.Context, q ts.Series, k int, delta float64, lim Limits) ([]Match, QueryStats, error) {
	if err := ix.st.checkQuery(q); err != nil {
		return nil, QueryStats{}, err
	}
	if k <= 0 {
		return nil, QueryStats{}, nil
	}
	p := makePlan(q, delta, ix.st.n, ix.st.transform, ix.st.coarse)
	sc := getScratch()
	out, stats, err := ix.knnPlan(ctx, p, k, lim, sc)
	return finish(out, sc, false), stats, err
}

func (ix *GridIndex) knnPlan(ctx context.Context, p *Plan, k int, lim Limits, sc *scratch) ([]Match, QueryStats, error) {
	if k <= 0 || ix.grid.Len() == 0 {
		return nil, QueryStats{}, nil
	}
	fe := p.fe

	v := getVerifier()
	defer putVerifier(v)

	var gstats gridfile.Stats
	var stats QueryStats
	s := &knnState{v: v, q: p.q, env: p.env, cfe: p.coarseEnvelope(), band: p.band, best: sc.topK(k), lim: lim, stats: &stats, useLB: true}

	r := ix.st.reader()
	defer r.release()
	cLo, cHi := ix.grid.CellRange(fe.Lower, fe.Upper)
	maxRing := ix.grid.MaxRing(cLo, cHi)
	stop := false
	for ring := 0; ring <= maxRing && !stop; ring++ {
		// Everything in shell `ring` is at least (ring-1)·cellSize from the
		// query box in feature space.
		if float64(ring-1)*ix.grid.CellSize() > s.cutoff() {
			break
		}
		ix.grid.VisitBoxShell(cLo, cHi, ring, &gstats, func(bucket []gridfile.Item) {
			if stop {
				return
			}
			gstats.BucketAccesses++
			for _, it := range bucket {
				// Exact feature-space lower bound for this candidate; the
				// shell bound above is only the coarse shell-level floor.
				if core.SquaredDistToBox(it.Point, fe) > s.cutoff()*s.cutoff() {
					continue
				}
				e, err := r.at(int(it.Slot))
				if err != nil {
					s.err = err
					stop = true
					return
				}
				if !s.refine(ctx, it.ID, e) {
					stop = true
					return
				}
			}
		})
	}
	stats.LogicalPages = gstats.BucketAccesses
	if ix.st.paged != nil {
		stats.PageAccesses = r.misses()
	} else {
		stats.PageAccesses = stats.LogicalPages
	}
	return s.best.sortedInto(sc), stats, s.err
}
