package index

import (
	"fmt"
	"math"
	"sort"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/gridfile"
	"warping/internal/ts"
)

// GridIndex is a DTW range-query index backed by a grid file instead of an
// R*-tree — the alternative multidimensional structure the paper cites
// (used by StatStream [35]). It supports the same epsilon-range pipeline
// with identical exactness guarantees; it does not support incremental kNN
// (a grid has no best-first traversal), which is why the R*-tree is the
// default backend.
type GridIndex struct {
	transform core.Transform
	grid      *gridfile.Grid
	series    map[int64]entry
	n         int
}

// NewGrid creates a grid-file DTW index. cellSize is the grid cell edge
// length in feature-space units.
func NewGrid(t core.Transform, cellSize float64) *GridIndex {
	return &GridIndex{
		transform: t,
		grid:      gridfile.New(t.OutputLen(), cellSize),
		series:    make(map[int64]entry),
		n:         t.InputLen(),
	}
}

// Len returns the number of indexed series.
func (ix *GridIndex) Len() int { return ix.grid.Len() }

// Add inserts a normal-form series under id. The feature vector is
// computed once here and cached for the verification cascade.
func (ix *GridIndex) Add(id int64, x ts.Series) error {
	if len(x) != ix.n {
		return fmt.Errorf("index: series length %d, want %d", len(x), ix.n)
	}
	if _, dup := ix.series[id]; dup {
		return fmt.Errorf("index: duplicate id %d", id)
	}
	feat := ix.transform.Apply(x)
	ix.series[id] = entry{x: x, feat: feat}
	ix.grid.Insert(id, feat)
	return nil
}

// RangeQuery returns all series within epsilon under banded DTW with
// warping width delta, exactly as Index.RangeQuery; PageAccesses counts
// grid buckets visited. Candidates run through the same lower-bound
// cascade as the R*-tree backend (box check, LB_Keogh, reversed LB_Keogh)
// before exact DTW.
func (ix *GridIndex) RangeQuery(q ts.Series, epsilon, delta float64) ([]Match, QueryStats) {
	if len(q) != ix.n {
		panic(fmt.Sprintf("index: query length %d, want %d", len(q), ix.n))
	}
	k := dtw.BandRadius(ix.n, delta)
	env := dtw.NewEnvelope(q, k)
	fe := ix.transform.ApplyEnvelope(env)

	var gstats gridfile.Stats
	items := ix.grid.RangeSearchBoxStats(fe.Lower, fe.Upper, epsilon, &gstats)
	var stats QueryStats
	stats.Candidates = len(items)
	stats.PageAccesses = gstats.BucketAccesses

	v := getVerifier()
	defer putVerifier(v)
	eps2 := epsilon * epsilon
	var out []Match
	for _, it := range items {
		e := ix.series[it.ID]
		if !v.passesLB(e, q, env, fe, k, eps2) {
			continue
		}
		stats.LBSurvivors++
		stats.ExactDTW++
		if d2, ok := v.ws.SquaredBandedWithin(e.x, q, k, eps2); ok {
			out = append(out, Match{ID: it.ID, Dist: math.Sqrt(d2)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out, stats
}
