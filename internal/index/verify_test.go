package index

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"warping/internal/core"
	"warping/internal/dtw"
	"warping/internal/rtree"
	"warping/internal/ts"
)

// bigCandidateQuery returns an index and a query whose candidate set is
// comfortably above parallelVerifyMin, so RangeQueryCtx takes the parallel
// verification path.
func bigCandidateQuery(t testing.TB, seed int64) (*Index, ts.Series, float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 600)
	q := randomWalk(r, testN)
	epsilon := 40.0
	_, stats := ix.RangeQuery(q, epsilon, 0.1)
	if stats.Candidates < parallelVerifyMin {
		t.Skipf("only %d candidates; seed needs adjusting", stats.Candidates)
	}
	return ix, q, epsilon
}

// The parallel path must return bit-identical results to the sequential
// path (forced via GOMAXPROCS=1) for completed queries.
func TestParallelVerificationMatchesSequential(t *testing.T) {
	ix, q, epsilon := bigCandidateQuery(t, 120)
	par, pstats, err := ix.RangeQueryCtx(context.Background(), q, epsilon, 0.1, Limits{})
	if err != nil {
		t.Fatal(err)
	}

	old := runtime.GOMAXPROCS(1)
	seq, sstats, err := ix.RangeQueryCtx(context.Background(), q, epsilon, 0.1, Limits{})
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}

	if len(par) != len(seq) {
		t.Fatalf("parallel %d matches, sequential %d", len(par), len(seq))
	}
	for i := range par {
		if par[i] != seq[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, par[i], seq[i])
		}
	}
	if pstats != sstats {
		t.Errorf("stats differ: parallel %+v, sequential %+v", pstats, sstats)
	}
}

// Cancellation mid-verification must stop promptly and report ctx.Err()
// even when the work is spread across workers.
func TestParallelVerificationCancellation(t *testing.T) {
	ix, q, epsilon := bigCandidateQuery(t, 121)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	lim := Limits{CandidateHook: func() { once.Do(cancel) }}
	defer cancel()
	_, _, err := ix.RangeQueryCtx(ctx, q, epsilon, 0.1, lim)
	if !errors.Is(err, context.Canceled) {
		// The hook only fires for LB survivors; if none survived, the
		// cancel never happened and a nil error is correct.
		if ctx.Err() == nil {
			t.Skip("no candidate survived the LB cascade")
		}
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The MaxExactDTW budget must hold exactly under parallel verification:
// no more exact computations than the cap, and Degraded set.
func TestParallelVerificationBudget(t *testing.T) {
	ix, q, epsilon := bigCandidateQuery(t, 122)
	_, full, err := ix.RangeQueryCtx(context.Background(), q, epsilon, 0.1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if full.ExactDTW < 4 {
		t.Skip("too little exact work to exercise the budget")
	}
	budget := full.ExactDTW / 2
	var hookCalls int
	var mu sync.Mutex
	lim := Limits{
		MaxExactDTW:   budget,
		CandidateHook: func() { mu.Lock(); hookCalls++; mu.Unlock() },
	}
	_, stats, err := ix.RangeQueryCtx(context.Background(), q, epsilon, 0.1, lim)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded {
		t.Error("budgeted query not marked degraded")
	}
	if stats.ExactDTW > budget {
		t.Errorf("ExactDTW = %d exceeds budget %d", stats.ExactDTW, budget)
	}
	if hookCalls > budget {
		t.Errorf("hook fired %d times, budget %d", hookCalls, budget)
	}
	if stats.LBSurvivors != stats.ExactDTW {
		t.Errorf("LBSurvivors %d != ExactDTW %d", stats.LBSurvivors, stats.ExactDTW)
	}
}

// Concurrent queries through the parallel verification path share the
// verifier pool; run under -race in CI.
func TestParallelVerificationConcurrentRace(t *testing.T) {
	ix, q, epsilon := bigCandidateQuery(t, 123)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, _, err := ix.RangeQueryCtx(context.Background(), q, epsilon, 0.1, Limits{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Removing a series must not recompute the transform: the feature vector
// cached at Add time is reused, so Remove works even for transforms whose
// Apply is expensive, and stays consistent with what the tree stored.
func TestRemoveUsesCachedFeature(t *testing.T) {
	tr := &countingTransform{Transform: core.NewPAA(testN, testDim)}
	ix := New(tr, Config{})
	r := rand.New(rand.NewSource(124))
	for i := 0; i < 50; i++ {
		ix.MustAdd(int64(i), randomWalk(r, testN))
	}
	applies := tr.applies
	for i := 0; i < 50; i++ {
		if !ix.Remove(int64(i)) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	if tr.applies != applies {
		t.Errorf("Remove recomputed Apply %d times, want 0", tr.applies-applies)
	}
	if ix.Len() != 0 {
		t.Errorf("Len = %d after removing everything", ix.Len())
	}
}

type countingTransform struct {
	core.Transform
	applies int
}

func (c *countingTransform) Apply(x ts.Series) []float64 {
	c.applies++
	return c.Transform.Apply(x)
}

// The cascade inside the index must never drop a true match relative to
// DistToEnvelope-only filtering: exercised against the brute-force scan at
// many epsilons (the parallel path included).
func TestCascadeNoFalseDismissals(t *testing.T) {
	r := rand.New(rand.NewSource(125))
	ix, scan, _ := buildIndex(r, core.NewPAA(testN, testDim), 400)
	for _, epsilon := range []float64{5, 15, 30, 45} {
		q := randomWalk(r, testN)
		got, _ := ix.RangeQuery(q, epsilon, 0.1)
		want, _ := scan.RangeQuery(q, epsilon, 0.1)
		if len(got) != len(want) {
			t.Fatalf("eps=%v: got %d matches, scan %d", epsilon, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("eps=%v: match %d differs", epsilon, i)
			}
		}
	}
}

// BenchmarkVerifyCandidates measures the verification cascade alone on a
// warm workspace: steady state must be allocation-free (the acceptance
// criterion of the zero-allocation pipeline).
func BenchmarkVerifyCandidates(b *testing.B) {
	r := rand.New(rand.NewSource(126))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 2000)
	q := randomWalk(r, testN)
	k := dtw.BandRadius(testN, 0.1)
	env := dtw.NewEnvelope(q, k)
	fe := ix.st.transform.ApplyEnvelope(env)
	box := rtree.Rect{Lo: fe.Lower, Hi: fe.Upper}
	epsilon := 10.0 // plenty of LB work, no matches to accumulate
	items := ix.tree.RangeSearchRect(box, epsilon)
	if len(items) == 0 {
		b.Skip("no candidates")
	}
	v := getVerifier()
	defer putVerifier(v)
	eps2 := epsilon * epsilon
	// fe is nil, as in the production range path: the tree's leaf filter
	// already applied the box test to these candidates.
	var cfe *core.FeatureEnvelope
	if ix.st.coarse != nil {
		c := ix.st.coarse.ApplyEnvelope(env)
		cfe = &c
	}
	rq := &rangeQuery{q: q, env: env, cfe: cfe, band: k, eps2: eps2, useLB: true}
	rd := ix.st.reader()
	defer rd.release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			_, e, _ := rtreeCand(&rd, it)
			if v.rangeCascade(e, rq) != lbPassed {
				continue
			}
			v.ws.SquaredBandedWithin(e.x, q, k, eps2)
		}
	}
	b.ReportMetric(float64(len(items)), "candidates")
}

func BenchmarkRangeQueryParallel(b *testing.B) {
	r := rand.New(rand.NewSource(127))
	ix, _, _ := buildIndex(r, core.NewPAA(testN, testDim), 2000)
	q := randomWalk(r, testN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.RangeQuery(q, 40, 0.1)
	}
}
