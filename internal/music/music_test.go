package music

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoteValidation(t *testing.T) {
	if err := (Melody{{Pitch: 60, Duration: 4}}).Validate(); err != nil {
		t.Errorf("valid melody rejected: %v", err)
	}
	cases := []Melody{
		{},
		{{Pitch: -1, Duration: 4}},
		{{Pitch: 128, Duration: 4}},
		{{Pitch: 60, Duration: 0}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid melody accepted", i)
		}
	}
}

func TestTimeSeriesRendering(t *testing.T) {
	m := Melody{{Pitch: 60, Duration: 2}, {Pitch: 62, Duration: 3}}
	s := m.TimeSeries()
	want := []float64{60, 60, 62, 62, 62}
	if len(s) != len(want) {
		t.Fatalf("len = %d", len(s))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("s[%d] = %v", i, s[i])
		}
	}
	if m.TotalDuration() != 5 || m.NumNotes() != 2 {
		t.Error("duration/notes wrong")
	}
}

func TestTranspose(t *testing.T) {
	m := Melody{{Pitch: 60, Duration: 1}, {Pitch: 127, Duration: 1}}
	up := m.Transpose(2)
	if up[0].Pitch != 62 || up[1].Pitch != 127 {
		t.Errorf("Transpose = %v", up)
	}
	down := m.Transpose(-100)
	if down[0].Pitch != 0 {
		t.Errorf("clamp failed: %v", down)
	}
}

func TestScaleTempo(t *testing.T) {
	m := Melody{{Pitch: 60, Duration: 4}, {Pitch: 62, Duration: 1}}
	double := m.ScaleTempo(2)
	if double[0].Duration != 8 || double[1].Duration != 2 {
		t.Errorf("double = %v", double)
	}
	half := m.ScaleTempo(0.25)
	if half[0].Duration != 1 || half[1].Duration != 1 {
		t.Errorf("durations must stay >= 1: %v", half)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for factor 0")
		}
	}()
	m.ScaleTempo(0)
}

func TestPitchName(t *testing.T) {
	cases := map[int]string{60: "C4", 69: "A4", 61: "C#4", 0: "C-1", 127: "G9"}
	for p, want := range cases {
		if got := PitchName(p); got != want {
			t.Errorf("PitchName(%d) = %q, want %q", p, got, want)
		}
	}
}

func TestMelodyString(t *testing.T) {
	m := Melody{{Pitch: 60, Duration: 2}, {Pitch: 62, Duration: 4}}
	if got := m.String(); got != "C4:2 D4:4" {
		t.Errorf("String = %q", got)
	}
}

func TestSegmentPhrasesBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := GenerateMelody(r, 200)
	phrases := SegmentPhrases(m, 15, 30)
	total := 0
	for i, p := range phrases {
		total += len(p)
		// All but possibly the last must be within bounds; the last may
		// absorb a short tail (up to maxNotes + minNotes - 1 notes).
		if len(p) < 15 && i != len(phrases)-1 {
			t.Errorf("phrase %d has %d notes", i, len(p))
		}
		if len(p) > 30+15-1 {
			t.Errorf("phrase %d has %d notes", i, len(p))
		}
	}
	if total != 200 {
		t.Errorf("phrases cover %d notes, want 200", total)
	}
}

func TestSegmentPhrasesPreservesOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := GenerateMelody(r, 100)
	phrases := SegmentPhrases(m, 10, 20)
	var rebuilt Melody
	for _, p := range phrases {
		rebuilt = append(rebuilt, p...)
	}
	if len(rebuilt) != len(m) {
		t.Fatalf("rebuilt %d notes", len(rebuilt))
	}
	for i := range m {
		if rebuilt[i] != m[i] {
			t.Fatalf("note %d differs", i)
		}
	}
}

func TestSegmentShortMelody(t *testing.T) {
	m := Melody{{60, 4}, {62, 4}}
	phrases := SegmentPhrases(m, 5, 10)
	if len(phrases) != 1 || len(phrases[0]) != 2 {
		t.Errorf("phrases = %v", phrases)
	}
}

func TestGenerateMelodyProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		m := GenerateMelody(r, n)
		if len(m) != n {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenerateMelodyVocalRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := GenerateMelody(r, 60)
		for i, n := range m {
			if n.Pitch < 30 || n.Pitch > 90 {
				t.Fatalf("trial %d note %d pitch %d outside plausible range", trial, i, n.Pitch)
			}
		}
	}
}

func TestGenerateSongsDeterministic(t *testing.T) {
	a := GenerateSongs(5, 10, 50, 80)
	b := GenerateSongs(5, 10, 50, 80)
	if len(a) != 10 {
		t.Fatalf("count = %d", len(a))
	}
	for i := range a {
		if a[i].Title != b[i].Title || len(a[i].Melody) != len(b[i].Melody) {
			t.Fatal("songs not reproducible")
		}
		for j := range a[i].Melody {
			if a[i].Melody[j] != b[i].Melody[j] {
				t.Fatal("melody differs between runs")
			}
		}
		if n := len(a[i].Melody); n < 50 || n > 80 {
			t.Errorf("song %d has %d notes", i, n)
		}
	}
}

func TestBuiltinSongsValid(t *testing.T) {
	songs := BuiltinSongs()
	if len(songs) < 5 {
		t.Fatalf("only %d builtin songs", len(songs))
	}
	for _, s := range songs {
		if err := s.Melody.Validate(); err != nil {
			t.Errorf("%s: %v", s.Title, err)
		}
		if s.Melody.NumNotes() < 10 {
			t.Errorf("%s: suspiciously short (%d notes)", s.Title, s.Melody.NumNotes())
		}
	}
}

func TestOdeToJoyStartsOnE(t *testing.T) {
	m := OdeToJoy()
	if m[0].Pitch != 64 || m[1].Pitch != 64 || m[2].Pitch != 65 {
		t.Error("Ode to Joy opening wrong")
	}
}

func TestSlice(t *testing.T) {
	m := Melody{{60, 1}, {62, 1}, {64, 1}}
	s := m.Slice(1, 3)
	if len(s) != 2 || s[0].Pitch != 62 {
		t.Errorf("Slice = %v", s)
	}
	s[0].Pitch = 0
	if m[1].Pitch != 62 {
		t.Error("Slice aliases melody")
	}
}
