package music

import (
	"fmt"
	"math/rand"
)

// Scale intervals (semitones from the tonic) used by the generator.
var (
	majorScale = []int{0, 2, 4, 5, 7, 9, 11}
	minorScale = []int{0, 2, 3, 5, 7, 8, 10}
)

// Durations drawn by the generator, in 16th-note ticks, weighted toward
// quarter and eighth notes like real melodies.
var durationChoices = []int{2, 2, 2, 4, 4, 4, 4, 8, 8, 1, 6, 12}

// GenerateMelody produces a tonal melody of numNotes notes: a biased random
// walk over scale degrees with occasional leaps, phrase-final long notes
// and a preference for returning to the tonic. The output is deterministic
// for a fixed source.
func GenerateMelody(r *rand.Rand, numNotes int) Melody {
	if numNotes < 1 {
		panic(fmt.Sprintf("music: numNotes %d < 1", numNotes))
	}
	scale := majorScale
	if r.Intn(3) == 0 {
		scale = minorScale
	}
	tonic := 55 + r.Intn(14) // G3..G4 tonics keep melodies in vocal range
	degree := 0              // scale degree relative to tonic, can exceed octave
	m := make(Melody, 0, numNotes)
	for i := 0; i < numNotes; i++ {
		// Step distribution: mostly steps, some thirds, rare leaps,
		// with gravity toward the tonic.
		var step int
		switch p := r.Float64(); {
		case p < 0.35:
			step = 1
		case p < 0.70:
			step = -1
		case p < 0.82:
			step = 2
		case p < 0.94:
			step = -2
		case p < 0.97:
			step = 3 + r.Intn(2)
		default:
			step = -(3 + r.Intn(2))
		}
		if degree > 7 {
			step -= 1
		}
		if degree < -4 {
			step += 1
		}
		degree += step
		oct := degree / len(scale)
		idx := degree % len(scale)
		if idx < 0 {
			idx += len(scale)
			oct--
		}
		pitch := tonic + 12*oct + scale[idx]
		if pitch < 36 {
			pitch += 12
		}
		if pitch > 84 {
			pitch -= 12
		}
		dur := durationChoices[r.Intn(len(durationChoices))]
		// Lengthen phrase-final notes (every ~8 notes).
		if (i+1)%8 == 0 {
			dur += 4
		}
		m = append(m, Note{Pitch: pitch, Duration: dur})
	}
	return m
}

// Song is a named melody in a database.
type Song struct {
	ID     int64
	Title  string
	Melody Melody
}

// GenerateSongs builds a deterministic corpus of count songs with
// noteCount notes in [minNotes, maxNotes]. Seeded generation makes
// databases reproducible across runs (required for the benchmark harness).
func GenerateSongs(seed int64, count, minNotes, maxNotes int) []Song {
	if minNotes < 1 || maxNotes < minNotes {
		panic(fmt.Sprintf("music: invalid note bounds [%d,%d]", minNotes, maxNotes))
	}
	r := rand.New(rand.NewSource(seed))
	songs := make([]Song, count)
	for i := range songs {
		n := minNotes + r.Intn(maxNotes-minNotes+1)
		songs[i] = Song{
			ID:     int64(i),
			Title:  fmt.Sprintf("Generated Song %04d", i),
			Melody: GenerateMelody(r, n),
		}
	}
	return songs
}
