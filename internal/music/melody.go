// Package music models symbolic melodies — the contents of the paper's
// music database. A melody is a sequence of (Note, Duration) tuples
// (Section 3.2); its time-series representation repeats each pitch for its
// duration. The package also provides phrase segmentation (the paper
// matches whole phrases rather than subsequences), a tonal melody
// generator used to build databases at the paper's scales, and a handful
// of public-domain tunes for examples and tests.
package music

import (
	"fmt"
	"strings"

	"warping/internal/ts"
)

// Note is one melody element: a MIDI pitch number held for Duration ticks.
// Following the paper, rests are not represented ("we simply ignore the
// silent information").
type Note struct {
	// Pitch is the MIDI note number (60 = middle C). Valid range 0-127.
	Pitch int
	// Duration is the length in ticks (a tick is typically a 16th note).
	// Must be >= 1.
	Duration int
}

// Melody is a monophonic sequence of notes.
type Melody []Note

// Validate checks pitch and duration ranges.
func (m Melody) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("music: empty melody")
	}
	for i, n := range m {
		if n.Pitch < 0 || n.Pitch > 127 {
			return fmt.Errorf("music: note %d pitch %d out of MIDI range", i, n.Pitch)
		}
		if n.Duration < 1 {
			return fmt.Errorf("music: note %d has duration %d", i, n.Duration)
		}
	}
	return nil
}

// NumNotes returns the number of notes.
func (m Melody) NumNotes() int { return len(m) }

// TotalDuration returns the sum of note durations in ticks.
func (m Melody) TotalDuration() int {
	var d int
	for _, n := range m {
		d += n.Duration
	}
	return d
}

// TimeSeries renders the melody as a pitch time series: pitch N1 repeated
// d1 times, then N2 repeated d2 times, and so on (Section 3.2).
func (m Melody) TimeSeries() ts.Series {
	out := make(ts.Series, 0, m.TotalDuration())
	for _, n := range m {
		for i := 0; i < n.Duration; i++ {
			out = append(out, float64(n.Pitch))
		}
	}
	return out
}

// Transpose returns the melody shifted by semitones (clamped to MIDI range).
func (m Melody) Transpose(semitones int) Melody {
	out := make(Melody, len(m))
	for i, n := range m {
		p := n.Pitch + semitones
		if p < 0 {
			p = 0
		}
		if p > 127 {
			p = 127
		}
		out[i] = Note{Pitch: p, Duration: n.Duration}
	}
	return out
}

// ScaleTempo returns the melody with every duration multiplied by factor
// (durations are rounded and kept >= 1). factor must be > 0.
func (m Melody) ScaleTempo(factor float64) Melody {
	if factor <= 0 {
		panic("music: non-positive tempo factor")
	}
	out := make(Melody, len(m))
	for i, n := range m {
		d := int(float64(n.Duration)*factor + 0.5)
		if d < 1 {
			d = 1
		}
		out[i] = Note{Pitch: n.Pitch, Duration: d}
	}
	return out
}

// Slice returns the sub-melody of notes [from, to).
func (m Melody) Slice(from, to int) Melody {
	out := make(Melody, to-from)
	copy(out, m[from:to])
	return out
}

// String renders a compact human-readable form like "C4:2 D4:1 ...".
func (m Melody) String() string {
	var b strings.Builder
	for i, n := range m {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", PitchName(n.Pitch), n.Duration)
	}
	return b.String()
}

var pitchNames = [12]string{"C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B"}

// PitchName returns the note name of a MIDI pitch, e.g. 60 -> "C4".
func PitchName(pitch int) string {
	octave := pitch/12 - 1
	return fmt.Sprintf("%s%d", pitchNames[((pitch%12)+12)%12], octave)
}

// SegmentPhrases cuts a melody into phrases of between minNotes and
// maxNotes notes, preferring boundaries after long notes (phrase endings
// tend to be held). This reproduces the paper's whole-sequence-matching
// design: "we segment each melody into several pieces based on the musical
// information, because most people will hum melodic sections."
func SegmentPhrases(m Melody, minNotes, maxNotes int) []Melody {
	if minNotes < 1 || maxNotes < minNotes {
		panic(fmt.Sprintf("music: invalid phrase bounds [%d,%d]", minNotes, maxNotes))
	}
	var phrases []Melody
	start := 0
	for start < len(m) {
		remaining := len(m) - start
		if remaining <= maxNotes {
			// Absorb a short tail into the previous phrase when it
			// cannot stand alone.
			if remaining < minNotes && len(phrases) > 0 {
				last := phrases[len(phrases)-1]
				phrases[len(phrases)-1] = append(last, m[start:]...)
			} else {
				phrases = append(phrases, m.Slice(start, len(m)))
			}
			break
		}
		// Choose the boundary with the longest note ending within the
		// allowed window [start+minNotes, start+maxNotes].
		bestEnd := start + maxNotes
		bestDur := -1
		for end := start + minNotes; end <= start+maxNotes; end++ {
			if d := m[end-1].Duration; d > bestDur {
				bestDur = d
				bestEnd = end
			}
		}
		phrases = append(phrases, m.Slice(start, bestEnd))
		start = bestEnd
	}
	return phrases
}
