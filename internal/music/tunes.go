package music

// Built-in public-domain tunes used by examples and tests. Durations are in
// 16th-note ticks (4 = quarter note). These stand in for the hand-entered
// song collection of the paper's experiments; being real, widely known
// melodies they make example output easy to eyeball.

// OdeToJoy is the main theme of Beethoven's 9th, first phrase pair.
func OdeToJoy() Melody {
	p := []int{64, 64, 65, 67, 67, 65, 64, 62, 60, 60, 62, 64, 64, 62, 62,
		64, 64, 65, 67, 67, 65, 64, 62, 60, 60, 62, 64, 62, 60, 60}
	d := []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 6, 2, 8,
		4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 6, 2, 8}
	return fromSlices(p, d)
}

// TwinkleTwinkle is the first two phrases of "Twinkle, Twinkle, Little Star".
func TwinkleTwinkle() Melody {
	p := []int{60, 60, 67, 67, 69, 69, 67, 65, 65, 64, 64, 62, 62, 60}
	d := []int{4, 4, 4, 4, 4, 4, 8, 4, 4, 4, 4, 4, 4, 8}
	return fromSlices(p, d)
}

// FrereJacques is the first half of "Frère Jacques".
func FrereJacques() Melody {
	p := []int{60, 62, 64, 60, 60, 62, 64, 60, 64, 65, 67, 64, 65, 67}
	d := []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 8, 4, 4, 8}
	return fromSlices(p, d)
}

// AmazingGrace is the opening phrase of "Amazing Grace".
func AmazingGrace() Melody {
	p := []int{60, 65, 69, 65, 69, 67, 65, 62, 60, 60, 65, 69, 65, 69, 67, 72}
	d := []int{4, 8, 2, 2, 4, 4, 8, 4, 4, 4, 8, 2, 2, 4, 4, 12}
	return fromSlices(p, d)
}

// Greensleeves is the opening phrase of "Greensleeves".
func Greensleeves() Melody {
	p := []int{57, 60, 62, 64, 65, 64, 62, 59, 55, 57, 59, 60, 57, 57, 56, 57, 59, 56, 52}
	d := []int{4, 8, 4, 6, 2, 4, 8, 4, 6, 2, 4, 8, 4, 6, 2, 4, 8, 4, 8}
	return fromSlices(p, d)
}

// BuiltinSongs returns the public-domain tunes as a song collection.
func BuiltinSongs() []Song {
	return []Song{
		{ID: 0, Title: "Ode to Joy", Melody: OdeToJoy()},
		{ID: 1, Title: "Twinkle, Twinkle, Little Star", Melody: TwinkleTwinkle()},
		{ID: 2, Title: "Frere Jacques", Melody: FrereJacques()},
		{ID: 3, Title: "Amazing Grace", Melody: AmazingGrace()},
		{ID: 4, Title: "Greensleeves", Melody: Greensleeves()},
	}
}

func fromSlices(pitches, durations []int) Melody {
	if len(pitches) != len(durations) {
		panic("music: tune table mismatch")
	}
	m := make(Melody, len(pitches))
	for i := range pitches {
		m[i] = Note{Pitch: pitches[i], Duration: durations[i]}
	}
	return m
}
