package membership

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"
)

// RegistryConfig tunes the seed server. Zero values select defaults.
type RegistryConfig struct {
	// BootstrapGroups, when set, is the initial ring: it commits (version
	// 1) as soon as every named group has at least one live record. Empty
	// selects quiet-period bootstrap: BootstrapDelay after the first
	// heartbeat, the ring initializes with every group seen so far.
	BootstrapGroups []string
	// BootstrapDelay is the quiet period for automatic ring bootstrap
	// (default 2s; only used when BootstrapGroups is empty).
	BootstrapDelay time.Duration
	// Logf receives membership diagnostics; nil selects log.Printf.
	Logf func(format string, args ...interface{})
	// now is a test hook for freshness clocks; nil selects time.Now.
	now func() time.Time
}

func (c *RegistryConfig) fill() {
	if c.BootstrapDelay <= 0 {
		c.BootstrapDelay = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Registry is the seed server: the star center of the gossip exchange and
// the only place that mutates the ring. It is intentionally soft-state —
// everything it knows arrives in heartbeats, so killing and restarting it
// loses nothing the next gossip round does not restore — and the cluster
// keeps serving reads and writes while it is down (nodes and coordinators
// work from their last merged view; only failover and rebalancing pause).
type Registry struct {
	cfg RegistryConfig

	mu   sync.Mutex
	view View
	// seen tracks, per node id, when the registry last saw that node's
	// record advance — local observation time, deliberately NOT part of
	// the gossiped view (wall clocks don't merge; counters do). Freshness
	// judgments (failover, election eligibility) come from here.
	seen      map[string]observation
	firstBeat time.Time
	// rebalanceHook runs the migration for a freshly proposed rebalance
	// (the Rebalancer installs itself here via SetRebalanceHook).
	rebalanceHook func(Rebalance)
}

type observation struct {
	inc     int64
	counter uint64
	at      time.Time
}

// NewRegistry builds a seed server.
func NewRegistry(cfg RegistryConfig) *Registry {
	cfg.fill()
	return &Registry{cfg: cfg, seen: make(map[string]observation)}
}

// Mount registers the membership endpoints.
func (g *Registry) Mount(mux interface {
	Handle(pattern string, handler http.Handler)
}) {
	mux.Handle(PathHeartbeat, http.HandlerFunc(g.handleHeartbeat))
	mux.Handle(PathView, http.HandlerFunc(g.handleView))
	mux.Handle(PathGroups, http.HandlerFunc(g.handleGroups))
}

// View returns the registry's current merged view.
func (g *Registry) View() View {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.Clone()
}

// Absorb merges an incoming view (a heartbeat body, or a locally produced
// update) and returns the merged whole. Observation times update for every
// record that advanced.
func (g *Registry) Absorb(v View) View {
	now := g.cfg.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.firstBeat.IsZero() && len(v.Nodes) > 0 {
		g.firstBeat = now
	}
	g.view = Merge(g.view, v)
	for id, rec := range g.view.Nodes {
		if prev, ok := g.seen[id]; !ok || rec.Incarnation > prev.inc ||
			(rec.Incarnation == prev.inc && rec.Counter > prev.counter) {
			g.seen[id] = observation{inc: rec.Incarnation, counter: rec.Counter, at: now}
		}
	}
	g.maybeBootstrapLocked(now)
	return g.view.Clone()
}

// FreshSince reports whether the node's record has advanced within d.
func (g *Registry) FreshSince(id string, d time.Duration) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	obs, ok := g.seen[id]
	return ok && g.cfg.now().Sub(obs.at) <= d
}

// maybeBootstrapLocked commits the initial ring. With BootstrapGroups the
// ring forms exactly when all named groups are represented; otherwise it
// forms from whatever groups showed up within the quiet period. Until the
// ring exists there is no write placement, so coordinators fall back to
// refusing writes — bootstrap is a startup event, not steady state.
func (g *Registry) maybeBootstrapLocked(now time.Time) {
	if g.view.Ring.Version != 0 || len(g.view.Nodes) == 0 {
		return
	}
	have := map[string]bool{}
	for _, rec := range g.view.Nodes {
		if rec.Group != "" {
			have[rec.Group] = true
		}
	}
	if len(g.cfg.BootstrapGroups) > 0 {
		for _, want := range g.cfg.BootstrapGroups {
			if !have[want] {
				return
			}
		}
		g.view.Ring = NewRing(1, g.cfg.BootstrapGroups)
	} else {
		if now.Sub(g.firstBeat) < g.cfg.BootstrapDelay {
			return
		}
		groups := make([]string, 0, len(have))
		for grp := range have {
			groups = append(groups, grp)
		}
		sort.Strings(groups)
		g.view.Ring = NewRing(1, groups)
	}
	g.cfg.Logf("membership: ring bootstrapped at v%d with groups %v", g.view.Ring.Version, g.view.Ring.Groups)
}

// ProposeRebalance announces a ring change: the current ring stays
// committed (reads and single-owner writes keep routing by it) while the
// pending target makes coordinators dual-route writes whose owner moves.
// It fails if no ring exists yet or another rebalance is in flight — the
// state machine is strictly one migration at a time.
func (g *Registry) ProposeRebalance(op, group string) (Rebalance, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.view.Ring
	if cur.Version == 0 {
		return Rebalance{}, fmt.Errorf("membership: no committed ring yet")
	}
	if g.view.Rebalance.Active() {
		return Rebalance{}, fmt.Errorf("membership: rebalance to ring v%d already in flight", g.view.Rebalance.To.Version)
	}
	var next Ring
	switch op {
	case "add":
		if cur.Contains(group) {
			return Rebalance{}, fmt.Errorf("membership: group %q already in the ring", group)
		}
		next = NewRing(cur.Version+1, append(append([]string(nil), cur.Groups...), group))
	case "remove":
		if !cur.Contains(group) {
			return Rebalance{}, fmt.Errorf("membership: group %q not in the ring", group)
		}
		if len(cur.Groups) == 1 {
			return Rebalance{}, fmt.Errorf("membership: cannot remove the last group")
		}
		var rest []string
		for _, g := range cur.Groups {
			if g != group {
				rest = append(rest, g)
			}
		}
		next = NewRing(cur.Version+1, rest)
	default:
		return Rebalance{}, fmt.Errorf("membership: unknown op %q (add or remove)", op)
	}
	g.view.Rebalance = Rebalance{From: cur.clone(), To: next}
	g.cfg.Logf("membership: rebalance proposed: ring v%d %v -> v%d %v",
		cur.Version, cur.Groups, next.Version, next.Groups)
	return g.view.Rebalance, nil
}

// CommitRebalance bumps the committed ring to the pending target — the
// atomic read cutover — and clears the rebalance (normalize does).
func (g *Registry) CommitRebalance(to Ring) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if to.dominates(g.view.Ring) {
		g.view.Ring = to.clone()
	}
	g.view.normalize()
	g.cfg.Logf("membership: ring committed at v%d with groups %v", g.view.Ring.Version, g.view.Ring.Groups)
}

// AbortRebalance clears a pending rebalance without committing (migration
// failed; dual-writes simply stop and placement stays on the old ring —
// any songs already copied are idempotent duplicates the coordinator
// dedupes on read).
func (g *Registry) AbortRebalance() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.view.Rebalance = Rebalance{}
}

func (g *Registry) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	v, err := DecodeView(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	merged := g.Absorb(v)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(EncodeView(merged))
}

func (g *Registry) handleView(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(EncodeView(g.View()))
}

// groupsRequest is the PathGroups operator payload.
type groupsRequest struct {
	Op    string `json:"op"`
	Group string `json:"group"`
}

func (g *Registry) handleGroups(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req groupsRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return
	}
	rb, err := g.ProposeRebalance(req.Op, req.Group)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	g.mu.Lock()
	hook := g.rebalanceHook
	g.mu.Unlock()
	if hook != nil {
		go hook(rb)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rb)
}

// SetRebalanceHook installs the migration runner invoked (in its own
// goroutine) whenever PathGroups proposes a rebalance.
func (g *Registry) SetRebalanceHook(fn func(Rebalance)) {
	g.mu.Lock()
	g.rebalanceHook = fn
	g.mu.Unlock()
}
