package membership

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"
)

// AgentConfig configures one node's gossip participation.
type AgentConfig struct {
	// Seeds are the Registry base URLs. Each round gossips with the first
	// seed that answers; the rest are fallbacks.
	Seeds []string
	// Self, when non-nil, produces this node's own record each round (id,
	// group, role, watermark). The agent fills Incarnation and Counter.
	// Nil makes the agent a pure observer (a coordinator): it still
	// exchanges views, it just has no record of its own.
	Self func() NodeRecord
	// OnView is called with the merged view after every change — the hook
	// fencing checks and topology refreshes hang off. Called from the
	// gossip goroutine; keep it fast.
	OnView func(View)
	// Interval paces gossip rounds (DefaultHeartbeatInterval).
	Interval time.Duration
	// Incarnation distinguishes this process lifetime; 0 selects the
	// start-time in nanoseconds, which is strictly larger than any prior
	// life's on any sanely-clocked machine.
	Incarnation int64
	// Client is the HTTP client for heartbeats; nil builds one with a
	// per-request timeout of Interval (a slow seed must not stall beats).
	Client *http.Client
	// Logf receives diagnostics; nil selects log.Printf.
	Logf func(format string, args ...interface{})
}

// Agent runs the gossip loop: bump own record, push the local view to a
// seed, merge the reply. The local view is the node's knowledge of the
// cluster between rounds — it survives seed death (stale but serviceable)
// and reseeds a restarted registry.
type Agent struct {
	cfg     AgentConfig
	mu      sync.Mutex
	view    View
	counter uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	poke     chan chan struct{}
}

// StartAgent begins gossiping immediately (one synchronous round attempt
// before returning, so a caller on a healthy cluster starts with a view).
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("membership: agent needs at least one seed URL")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHeartbeatInterval
	}
	if cfg.Incarnation == 0 {
		cfg.Incarnation = time.Now().UnixNano()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Interval * 4}
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	a := &Agent{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		poke: make(chan chan struct{}),
	}
	a.gossipOnce() // best-effort initial view; errors just wait for the loop
	go a.loop()
	return a, nil
}

// View returns the agent's current merged view.
func (a *Agent) View() View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view.Clone()
}

// Absorb merges an externally obtained view (e.g. a 421 re-resolution
// fetched a fresh one) into the agent's local view.
func (a *Agent) Absorb(v View) {
	a.mu.Lock()
	a.view = Merge(a.view, v)
	merged := a.view.Clone()
	a.mu.Unlock()
	if a.cfg.OnView != nil {
		a.cfg.OnView(merged)
	}
}

// Poke forces an immediate gossip round and waits for it to finish —
// tests and cutover paths use it to skip the interval wait.
func (a *Agent) Poke() {
	ack := make(chan struct{})
	select {
	case a.poke <- ack:
		<-ack
	case <-a.stop:
	}
}

// Stop ends the gossip loop.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

func (a *Agent) loop() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case ack := <-a.poke:
			a.gossipOnce()
			close(ack)
		case <-t.C:
			a.gossipOnce()
		}
	}
}

// gossipOnce performs one push-pull round: stamp own record into the local
// view, POST the view to the first answering seed, merge the reply.
func (a *Agent) gossipOnce() {
	a.mu.Lock()
	if a.cfg.Self != nil {
		a.counter++
		rec := a.cfg.Self()
		rec.Incarnation = a.cfg.Incarnation
		rec.Counter = a.counter
		if a.view.Nodes == nil {
			a.view.Nodes = make(map[string]NodeRecord)
		}
		a.view.Nodes[rec.ID] = rec
	}
	body := EncodeView(a.view)
	a.mu.Unlock()

	var reply View
	var err error
	ok := false
	for _, seed := range a.cfg.Seeds {
		reply, err = postView(a.cfg.Client, seed+PathHeartbeat, body)
		if err == nil {
			ok = true
			break
		}
	}
	if !ok {
		// Seed down: keep serving from the last view; the next round
		// retries. This is what makes seed death a non-event for traffic.
		a.cfg.Logf("membership: heartbeat failed against all %d seed(s): %v", len(a.cfg.Seeds), err)
		return
	}
	a.mu.Lock()
	a.view = Merge(a.view, reply)
	merged := a.view.Clone()
	a.mu.Unlock()
	if a.cfg.OnView != nil {
		a.cfg.OnView(merged)
	}
}

func postView(client *http.Client, url string, body []byte) (View, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return View{}, fmt.Errorf("membership: seed returned %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return View{}, err
	}
	return DecodeView(data)
}

// FetchView GETs a registry's current view — the client-side 421
// re-resolution path, which has no running agent.
func FetchView(client *http.Client, seeds []string) (View, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var lastErr error
	for _, seed := range seeds {
		resp, err := client.Get(seed + PathView)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("membership: seed returned %s", resp.Status)
			continue
		}
		v, err := DecodeView(data)
		if err != nil {
			lastErr = err
			continue
		}
		return v, nil
	}
	return View{}, fmt.Errorf("membership: no seed answered: %w", lastErr)
}
