// Membership chaos tests: replicas and seeds run as real OS processes
// (the test binary re-execed in helper mode) and die by SIGKILL. The
// parent asserts the cluster-level contracts of dynamic membership:
//
//   - promote-under-load: a primary SIGKILLed mid write-stream is
//     replaced automatically (director election by acked WAL watermark)
//     and not one acknowledged write is lost;
//   - rebalance-under-load: adding a shard group mid write-stream
//     migrates placement onto the new ring with zero lost acked writes
//     and query results bit-identical to a single-node system;
//   - seed death: the cluster keeps serving reads AND writes while the
//     seed is down, and a restarted seed relearns the whole view from
//     heartbeats alone.
package membership_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"warping/internal/hum"
	"warping/internal/index"
	"warping/internal/membership"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/replica"
	"warping/internal/retry"
	"warping/internal/server"
	"warping/internal/store"
	"warping/internal/ts"
)

const (
	helperEnv = "QBH_MCHAOS_HELPER"
	// heartbeat is the gossip interval every helper and director runs at;
	// failover fires after ~3 missed beats.
	heartbeat = 100 * time.Millisecond
)

var chaosOpts = qbh.Options{PhraseMin: 8, PhraseMax: 20}

func chaosCorpus(seed int64, offset int64) []music.Song {
	songs := music.GenerateSongs(seed, 8, 100, 200)
	for i := range songs {
		songs[i].ID += offset
	}
	return songs
}

func TestMain(m *testing.M) {
	switch os.Getenv(helperEnv) {
	case "replica":
		replicaMain()
		return
	case "seed":
		seedMain()
		return
	}
	os.Exit(m.Run())
}

// replicaMain is a re-execed replica process: durable store, replication
// node, full HTTP API, and a gossip agent announcing it to the seeds.
func replicaMain() {
	dir := os.Getenv("QBH_MCHAOS_DIR")
	role := replica.Role(os.Getenv("QBH_MCHAOS_ROLE"))
	primaryURL := os.Getenv("QBH_MCHAOS_PRIMARY")
	seed, _ := strconv.ParseInt(os.Getenv("QBH_MCHAOS_CORPUS"), 10, 64)
	offset, _ := strconv.ParseInt(os.Getenv("QBH_MCHAOS_OFFSET"), 10, 64)
	minSync, _ := strconv.Atoi(os.Getenv("QBH_MCHAOS_MINSYNC"))

	// A negative corpus seed starts the node empty — how a group joining
	// an existing ring must come up (it is filled by migration).
	var base []music.Song
	if seed >= 0 {
		base = chaosCorpus(seed, offset)
	}
	d, err := qbh.OpenDurable(dir, qbh.DurableOptions{
		FS:                 store.OS(),
		SnapshotWALRecords: -1,
		SnapshotWALBytes:   -1,
		Build:              func() (*qbh.System, error) { return qbh.Build(base, chaosOpts) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: open durable: %v\n", err)
		os.Exit(1)
	}
	n, err := replica.NewNode(d, replica.NodeConfig{
		Group:            os.Getenv("QBH_MCHAOS_GROUP"),
		Role:             role,
		PrimaryURL:       primaryURL,
		MinSyncFollowers: minSync,
		PollWait:         200 * time.Millisecond,
		Backoff:          retry.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: new node: %v\n", err)
		os.Exit(1)
	}
	h := server.NewBackend(n, server.Config{})
	h.EnablePlannedQueries()
	n.Mount(h)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: listen: %v\n", err)
		os.Exit(1)
	}
	self := "http://" + ln.Addr().String()
	if seeds := os.Getenv("QBH_MCHAOS_SEEDS"); seeds != "" {
		id := os.Getenv("QBH_MCHAOS_ID")
		a, err := membership.StartAgent(membership.AgentConfig{
			Seeds:    strings.Split(seeds, ","),
			Interval: heartbeat,
			Self:     func() membership.NodeRecord { return n.MembershipRecord(id, self) },
			OnView:   func(v membership.View) { n.ObserveView(id, v) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "helper: agent: %v\n", err)
			os.Exit(1)
		}
		h.SetMembershipView(func() (membership.View, bool) {
			v := a.View()
			return v, len(v.Nodes) > 0
		})
	}
	fmt.Printf("ADDR=%s\n", self)
	_ = (&http.Server{Handler: h}).Serve(ln)
}

// seedMain is a re-execed seed process: registry, failover director, and
// rebalance migrator — the full control plane, killable as one unit.
func seedMain() {
	reg := membership.NewRegistry(membership.RegistryConfig{
		BootstrapGroups: strings.Split(os.Getenv("QBH_MCHAOS_BOOTSTRAP"), ","),
	})
	rb := membership.NewRebalancer(reg, membership.RebalancerConfig{
		SettleDelay: 4 * heartbeat,
		Backoff:     retry.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
	})
	reg.SetRebalanceHook(func(r membership.Rebalance) {
		if err := rb.Run(context.Background(), r); err != nil {
			fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		}
	})
	go membership.NewDirector(reg, membership.DirectorConfig{
		Interval:    heartbeat,
		MissedBeats: 3,
	}).Run(context.Background())

	mux := http.NewServeMux()
	reg.Mount(mux)
	addr := os.Getenv("QBH_MCHAOS_ADDR")
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR=http://%s\n", ln.Addr().String())
	_ = (&http.Server{Handler: mux}).Serve(ln)
}

type proc struct {
	cmd *exec.Cmd
	url string
}

func startProc(t *testing.T, kind string, env map[string]string) *proc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), helperEnv+"="+kind)
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() { p.kill() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if s, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
				addrCh <- s
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatalf("%s process exited before reporting its address", kind)
		}
		p.url = addr
	case <-time.After(60 * time.Second):
		t.Fatalf("%s process never reported its address", kind)
	}
	return p
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

func startReplica(t *testing.T, seedURL, id, group, role, primaryURL string, corpusSeed, offset int64, minSync int) *proc {
	t.Helper()
	env := map[string]string{
		"QBH_MCHAOS_DIR":     t.TempDir(),
		"QBH_MCHAOS_ROLE":    role,
		"QBH_MCHAOS_GROUP":   group,
		"QBH_MCHAOS_PRIMARY": primaryURL,
		"QBH_MCHAOS_CORPUS":  strconv.FormatInt(corpusSeed, 10),
		"QBH_MCHAOS_OFFSET":  strconv.FormatInt(offset, 10),
		"QBH_MCHAOS_MINSYNC": strconv.Itoa(minSync),
		"QBH_MCHAOS_SEEDS":   seedURL,
		"QBH_MCHAOS_ID":      id,
	}
	p := startProc(t, "replica", env)
	waitState(t, p.url)
	return p
}

func waitState(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + replica.PathState)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("replica at %s never became ready", url)
}

func nodeState(t *testing.T, url string) replica.StateResponse {
	t.Helper()
	var st replica.StateResponse
	resp, err := http.Get(url + replica.PathState)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitSynced(t *testing.T, primaryURL, followerURL string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		p, f := nodeState(t, primaryURL), nodeState(t, followerURL)
		if p.Digest == f.Digest && p.Songs == f.Songs {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("follower never synced with primary")
}

// waitView polls the seed until its view satisfies ok.
func waitView(t *testing.T, seedURL string, what string, ok func(membership.View) bool) membership.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := membership.FetchView(nil, []string{seedURL})
		if err == nil && ok(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed view never reached %q (last: %s, err %v)", what, membership.EncodeView(v), err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func seedCoordinator(t *testing.T, seedURL string) *server.Coordinator {
	t.Helper()
	coord, err := server.NewCoordinator(server.CoordinatorConfig{
		Seeds:          []string{seedURL},
		Opts:           chaosOpts,
		ReplicaTimeout: 10 * time.Second,
		HedgeAfter:     150 * time.Millisecond,
		Backoff:        retry.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Logf:           func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close() })
	return coord
}

func chaosPitch(songs []music.Song, which int, seed int64) ts.Series {
	r := rand.New(rand.NewSource(seed))
	return hum.StripSilence(hum.GoodSinger().RenderPitch(songs[which%len(songs)].Melody, r))
}

// ackWriter streams writes through the coordinator, recording every song
// the cluster acknowledged (with its assigned id and melody, so tests can
// rebuild a reference system). Failed writes are fine (they are not
// acked); lost acked writes are the bug the chaos tests hunt.
type ackWriter struct {
	mu    sync.Mutex
	acked []music.Song
}

func (w *ackWriter) run(ctx context.Context, coord *server.Coordinator, prefix string, melodies []music.Song) {
	for i := 0; ctx.Err() == nil; i++ {
		title := fmt.Sprintf("%s-%d", prefix, i)
		if song, err := coord.AddSongTitled(title, melodies[i%len(melodies)].Melody); err == nil {
			w.mu.Lock()
			w.acked = append(w.acked, song)
			w.mu.Unlock()
		}
		select {
		case <-ctx.Done():
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (w *ackWriter) ackedSongs() []music.Song {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]music.Song(nil), w.acked...)
}

func (w *ackWriter) ackedTitles() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, len(w.acked))
	for i, s := range w.acked {
		out[i] = s.Title
	}
	return out
}

func (w *ackWriter) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.acked)
}

// requireAllTitles fails unless every acked title is present in songs.
func requireAllTitles(t *testing.T, songs []music.Song, acked []string, when string) {
	t.Helper()
	have := make(map[string]bool, len(songs))
	for _, s := range songs {
		have[s.Title] = true
	}
	for _, title := range acked {
		if !have[title] {
			t.Fatalf("acknowledged write %q lost (%s)", title, when)
		}
	}
}

// TestChaosMembershipPromoteUnderLoad SIGKILLs a semi-sync primary while
// writes and queries stream through a seed-discovered coordinator. The
// director must promote the follower, writes must resume against it
// without reconfiguration, and every acknowledged write — before and
// after the kill — must be present on the promoted node.
func TestChaosMembershipPromoteUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tests spawn real processes")
	}
	seed := startProc(t, "seed", map[string]string{"QBH_MCHAOS_BOOTSTRAP": "g"})
	primary := startReplica(t, seed.url, "p1", "g", "primary", "", 110, 0, 1)
	follower := startReplica(t, seed.url, "f1", "g", "follower", primary.url, 110, 0, 0)
	waitSynced(t, primary.url, follower.url)
	waitView(t, seed.url, "both nodes and a ring", func(v membership.View) bool {
		return len(v.Nodes) == 2 && !v.Ring.Empty()
	})

	coord := seedCoordinator(t, seed.url)
	corpus := chaosCorpus(110, 0)
	extras := chaosCorpus(111, 10000)

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	w := &ackWriter{}
	writerDone := make(chan struct{})
	go func() { defer close(writerDone); w.run(ctx, coord, "pload", extras) }()

	var queryErrs int
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		for round := 0; ctx.Err() == nil; round++ {
			qctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_, _, err := coord.QueryCtx(qctx, chaosPitch(corpus, round, int64(round)), 3, 0.1, index.Limits{})
			cancel()
			if err != nil && ctx.Err() == nil {
				queryErrs++
			}
			time.Sleep(30 * time.Millisecond)
		}
	}()

	// Let a few writes get acknowledged, then kill the primary cold.
	waitFor(t, 30*time.Second, "first acked writes", func() bool { return w.count() >= 3 })
	preKill := w.count()
	primary.kill()

	// The director must promote the follower and writes must resume: wait
	// for acked writes to grow well past the pre-kill count.
	waitFor(t, 60*time.Second, "writes resumed after failover", func() bool {
		return w.count() >= preKill+3
	})
	if nodeState(t, follower.url).Role != replica.RolePrimary {
		t.Fatal("follower did not take over as primary")
	}

	stop()
	<-writerDone
	<-queryDone

	// Zero-loss: every acknowledged write lives on the promoted node.
	sys := serverSongs(t, follower.url)
	requireAllTitles(t, sys, w.ackedTitles(), "after SIGKILL + automatic promotion")
	if queryErrs > 0 {
		t.Logf("note: %d transient query errors during failover (tolerated; zero-loss held)", queryErrs)
	}
	// And the cluster is healthy again: a final query answers cleanly.
	if _, _, err := coord.QueryCtx(context.Background(), chaosPitch(corpus, 0, 99), 3, 0.1, index.Limits{}); err != nil {
		t.Fatalf("query after failover: %v", err)
	}
}

// TestChaosMembershipRebalanceUnderLoad adds a third shard group while
// writes stream through the coordinator: the seed proposes the new ring,
// dual-writes cover the window, the migrator snapshot-ships the moving
// songs, and the commit cuts reads over. Afterwards: zero lost acked
// writes and query results bit-identical to a single-node system over
// the coordinator's corpus.
func TestChaosMembershipRebalanceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tests spawn real processes")
	}
	seed := startProc(t, "seed", map[string]string{"QBH_MCHAOS_BOOTSTRAP": "a,b"})
	pa := startReplica(t, seed.url, "p-a", "a", "primary", "", 120, 0, 0)
	pb := startReplica(t, seed.url, "p-b", "b", "primary", "", 121, 2000, 0)
	waitView(t, seed.url, "ring v1 over a,b", func(v membership.View) bool {
		return v.Ring.Version == 1 && len(v.Ring.Groups) == 2
	})
	_ = pa
	_ = pb

	coord := seedCoordinator(t, seed.url)
	extras := chaosCorpus(122, 20000)

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	w := &ackWriter{}
	writerDone := make(chan struct{})
	go func() { defer close(writerDone); w.run(ctx, coord, "rload", extras) }()
	waitFor(t, 30*time.Second, "writes flowing", func() bool { return w.count() >= 3 })

	// Group c joins empty (new groups receive songs only through
	// migration): its primary gossips in, then the operator asks the seed
	// to rebalance onto it.
	startReplica(t, seed.url, "p-c", "c", "primary", "", -1, 0, 0)
	waitView(t, seed.url, "group c in view", func(v membership.View) bool {
		for _, rec := range v.Nodes {
			if rec.Group == "c" {
				return true
			}
		}
		return false
	})
	body, _ := json.Marshal(map[string]string{"op": "add", "group": "c"})
	resp, err := http.Post(seed.url+membership.PathGroups, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance proposal: %s", resp.Status)
	}

	// The migration runs while writes continue; the commit bumps the ring.
	waitView(t, seed.url, "ring v2 including c", func(v membership.View) bool {
		return v.Ring.Version == 2 && v.Ring.Contains("c") && !v.Rebalance.Active()
	})
	// Keep writing a little on the new ring, then stop.
	post := w.count()
	waitFor(t, 30*time.Second, "writes on the new ring", func() bool { return w.count() >= post+3 })
	stop()
	<-writerDone

	// Give the coordinator one gossip round to see the committed ring,
	// then check zero loss + bit-identical results.
	waitFor(t, 15*time.Second, "coordinator on ring v2", func() bool {
		v, ok := coord.MembershipView()
		return ok && v.Ring.Version == 2
	})
	songs := coord.Songs()
	requireAllTitles(t, songs, w.ackedTitles(), "after consistent-hash rebalance")

	// The cluster must hold exactly the two base corpora plus the acked
	// writes — nothing lost, nothing stray — and queries against it must
	// be bit-identical to a single node over that corpus. (The coordinator
	// reports ids and titles only; melodies come from the known inputs.)
	reference := chaosCorpus(120, 0)
	reference = append(reference, chaosCorpus(121, 2000)...)
	reference = append(reference, w.ackedSongs()...)
	wantSet := make(map[int64]string, len(reference))
	for _, s := range reference {
		wantSet[s.ID] = s.Title
	}
	if len(songs) != len(wantSet) {
		t.Fatalf("coordinator reports %d songs, reference has %d", len(songs), len(wantSet))
	}
	for _, s := range songs {
		if title, ok := wantSet[s.ID]; !ok || title != s.Title {
			t.Fatalf("cluster song %d %q not in reference (want title %q)", s.ID, s.Title, title)
		}
	}

	single, err := qbh.Build(reference, chaosOpts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		pitch := chaosPitch(reference, round*5, int64(300+round))
		want, _, err := single.QueryCtx(context.Background(), pitch, 3, 0.1, index.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := coord.QueryCtx(context.Background(), pitch, 3, 0.1, index.Limits{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.Degraded {
			t.Fatalf("round %d degraded after rebalance", round)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d matches, single node had %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i].SongID != want[i].SongID {
				t.Fatalf("round %d rank %d: song %d, single node had %d (results not bit-identical)",
					round, i, got[i].SongID, want[i].SongID)
			}
		}
	}
}

// TestChaosMembershipSeedDeath kills the seed mid-flight: the data plane
// must keep serving reads AND writes from its last merged view, and a
// seed restarted cold on the same address must relearn the nodes and the
// committed ring purely from heartbeats.
func TestChaosMembershipSeedDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tests spawn real processes")
	}
	// Reserve a port so the seed can be restarted at the same URL.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	seedAddr := ln.Addr().String()
	_ = ln.Close()
	seedEnv := map[string]string{"QBH_MCHAOS_BOOTSTRAP": "g", "QBH_MCHAOS_ADDR": seedAddr}

	seed := startProc(t, "seed", seedEnv)
	primary := startReplica(t, seed.url, "p1", "g", "primary", "", 130, 0, 0)
	follower := startReplica(t, seed.url, "f1", "g", "follower", primary.url, 130, 0, 0)
	waitSynced(t, primary.url, follower.url)
	waitView(t, seed.url, "both nodes and a ring", func(v membership.View) bool {
		return len(v.Nodes) == 2 && v.Ring.Version == 1
	})

	coord := seedCoordinator(t, seed.url)
	corpus := chaosCorpus(130, 0)
	extras := chaosCorpus(131, 30000)
	if _, _, err := coord.QueryCtx(context.Background(), chaosPitch(corpus, 0, 1), 3, 0.1, index.Limits{}); err != nil {
		t.Fatalf("query before seed death: %v", err)
	}

	seed.kill()

	// Control plane down, data plane up: queries and writes keep working
	// off the last merged view.
	for round := 0; round < 3; round++ {
		if _, _, err := coord.QueryCtx(context.Background(), chaosPitch(corpus, round, int64(round)), 3, 0.1, index.Limits{}); err != nil {
			t.Fatalf("query with seed dead: %v", err)
		}
	}
	if _, err := coord.AddSongTitled("seedless-write", extras[0].Melody); err != nil {
		t.Fatalf("write with seed dead: %v", err)
	}

	// A cold restart on the same address repopulates from heartbeats: the
	// nodes push their full local views, ring included.
	restarted := startProc(t, "seed", seedEnv)
	if restarted.url != seed.url {
		t.Fatalf("restarted seed at %s, want %s", restarted.url, seed.url)
	}
	waitView(t, restarted.url, "view repopulated after restart", func(v membership.View) bool {
		return len(v.Nodes) == 2 && v.Ring.Version >= 1
	})
	requireAllTitles(t, serverSongs(t, primary.url), []string{"seedless-write"}, "write accepted while seed was dead")
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// serverSongs fetches a node's full song set (with melodies) through the
// replica export endpoint — /songs only reports titles, and the chaos
// assertions need the corpus itself.
func serverSongs(t *testing.T, url string) []music.Song {
	t.Helper()
	infos, err := server.NewClient(url, nil).Songs()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]music.Song, 0, len(infos))
	for _, s := range infos {
		out = append(out, music.Song{ID: s.ID, Title: s.Title})
	}
	return out
}
