package membership

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"time"

	"warping/internal/retry"
)

// DirectorConfig tunes automatic failover. Zero values select defaults.
type DirectorConfig struct {
	// Interval paces health probes; it should match the cluster heartbeat
	// interval (DefaultHeartbeatInterval).
	Interval time.Duration
	// MissedBeats is how many silent intervals declare a primary dead
	// (DefaultMissedBeats).
	MissedBeats int
	// PromotePath and RepointPath are the replica endpoints the director
	// drives (DefaultPromotePath, DefaultRepointPath).
	PromotePath string
	RepointPath string
	// Client performs the promote/repoint calls; nil builds one with a
	// 10s timeout.
	Client *http.Client
	// Logf receives failover diagnostics; nil selects log.Printf.
	Logf func(format string, args ...interface{})
}

func (c *DirectorConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = DefaultHeartbeatInterval
	}
	if c.MissedBeats <= 0 {
		c.MissedBeats = DefaultMissedBeats
	}
	if c.PromotePath == "" {
		c.PromotePath = DefaultPromotePath
	}
	if c.RepointPath == "" {
		c.RepointPath = DefaultRepointPath
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Director is the automatic-failover loop, run next to the Registry (the
// one place with freshness observations). Each tick it looks for groups
// whose every primary has gone silent for MissedBeats intervals and, when
// a live follower exists, promotes the one with the highest durably-applied
// WAL watermark — under semi-sync acks that follower provably holds every
// acknowledged write, so promotion loses none. Surviving followers are
// repointed at the new primary; the old one, if it was merely slow and
// comes back, fences itself the moment its next heartbeat shows it a
// successor with a later WAL epoch (its writes answer 421 from then on).
type Director struct {
	reg *Registry
	cfg DirectorConfig
	// lastAction is a per-group cooldown: a promotion needs a couple of
	// heartbeat rounds to surface in the view, and promoting twice in that
	// window would flap.
	lastAction map[string]time.Time
}

// NewDirector builds the failover loop over a registry.
func NewDirector(reg *Registry, cfg DirectorConfig) *Director {
	cfg.fill()
	return &Director{reg: reg, cfg: cfg, lastAction: make(map[string]time.Time)}
}

// Run ticks until the context ends.
func (d *Director) Run(ctx context.Context) {
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			d.tick()
		}
	}
}

// tick inspects every group once and fails over the dead ones.
func (d *Director) tick() {
	view := d.reg.View()
	window := time.Duration(d.cfg.MissedBeats) * d.cfg.Interval
	for _, group := range view.Groups() {
		recs := view.GroupNodes(group)
		var livePrimary bool
		var candidates []NodeRecord
		for _, rec := range recs {
			fresh := d.reg.FreshSince(rec.ID, window)
			switch {
			case rec.Role == RolePrimary && !rec.Fenced && fresh:
				livePrimary = true
			case rec.Role == RoleFollower && fresh:
				candidates = append(candidates, rec)
			}
		}
		if livePrimary || len(candidates) == 0 {
			continue
		}
		if last, ok := d.lastAction[group]; ok && time.Since(last) < 2*window {
			continue
		}
		// Elect the candidate with the highest acked watermark; GroupNodes
		// already ordered followers by descending (epoch, offset) with an
		// id tie-break, so the first candidate is the election winner.
		winner := candidates[0]
		d.lastAction[group] = time.Now()
		d.cfg.Logf("membership: group %q has no live primary; promoting %s (%s) at wal %d:%d",
			group, winner.ID, winner.URL, winner.WALEpoch, winner.WALOffset)
		if err := d.promote(winner); err != nil {
			d.cfg.Logf("membership: promoting %s failed: %v", winner.URL, err)
			continue
		}
		for _, rec := range candidates[1:] {
			if err := d.repoint(rec, winner.URL); err != nil {
				// The follower keeps pulling from the dead primary and will
				// be repointed on a later tick (or resync from the new
				// primary's snapshot if it restarts); not fatal.
				d.cfg.Logf("membership: repointing %s at %s failed: %v", rec.URL, winner.URL, err)
			}
		}
	}
}

func (d *Director) promote(rec NodeRecord) error {
	return d.post(rec.URL + d.cfg.PromotePath)
}

func (d *Director) repoint(rec NodeRecord, primaryURL string) error {
	return d.post(rec.URL + d.cfg.RepointPath + "?primary=" + url.QueryEscape(primaryURL))
}

func (d *Director) post(u string) error {
	resp, err := d.cfg.Client.Post(u, "application/json", nil)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	return nil
}

// RebalancerConfig tunes the migration runner. Zero values select defaults.
type RebalancerConfig struct {
	// SettleDelay is how long to wait after announcing a rebalance before
	// copying, so every coordinator has gossiped the pending state and
	// started dual-routing writes for the moving range. It should cover a
	// few heartbeat intervals (default 2 × DefaultHeartbeatInterval).
	SettleDelay time.Duration
	// ExportPath and ImportPath are the replica migration endpoints
	// (DefaultExportPath, DefaultImportPath).
	ExportPath string
	ImportPath string
	// Client carries the snapshot streams; nil builds one with no global
	// timeout (exports can be large) — per-call contexts bound each leg.
	Client *http.Client
	// Attempts bounds per-pair retries (default 3).
	Attempts int
	// Backoff paces those retries.
	Backoff retry.Backoff
	// Logf receives migration diagnostics; nil selects log.Printf.
	Logf func(format string, args ...interface{})
}

func (c *RebalancerConfig) fill() {
	if c.SettleDelay <= 0 {
		c.SettleDelay = 2 * DefaultHeartbeatInterval
	}
	if c.ExportPath == "" {
		c.ExportPath = DefaultExportPath
	}
	if c.ImportPath == "" {
		c.ImportPath = DefaultImportPath
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Rebalancer executes a proposed rebalance: wait for the dual-write window
// to open everywhere, snapshot-ship every moving song from its old owner
// to its new one (twice — the second pass is cheap and idempotent, and
// catches writes that landed between the proposal and the first pass),
// then commit the ring. Export and import are both idempotent, so any leg
// can be retried; a failed migration aborts without committing and leaves
// placement on the old ring — already-copied songs are harmless duplicates
// the coordinator's read path dedupes by song id.
type Rebalancer struct {
	reg *Registry
	cfg RebalancerConfig
}

// NewRebalancer builds the migration runner over a registry.
func NewRebalancer(reg *Registry, cfg RebalancerConfig) *Rebalancer {
	cfg.fill()
	return &Rebalancer{reg: reg, cfg: cfg}
}

// Run migrates one proposed rebalance to completion (or aborts it).
func (rb *Rebalancer) Run(ctx context.Context, r Rebalance) error {
	if !r.Active() {
		return fmt.Errorf("membership: no rebalance to run")
	}
	rb.cfg.Logf("membership: rebalance v%d -> v%d: settling %v for dual-writes",
		r.From.Version, r.To.Version, rb.cfg.SettleDelay)
	if err := retry.Sleep(ctx, rb.cfg.SettleDelay); err != nil {
		return err
	}
	for pass := 1; pass <= 2; pass++ {
		if err := rb.copyPass(ctx, r); err != nil {
			rb.reg.AbortRebalance()
			return fmt.Errorf("membership: rebalance copy pass %d: %w", pass, err)
		}
	}
	rb.reg.CommitRebalance(r.To)
	return nil
}

// copyPass ships, for every (source, destination) group pair, the source's
// songs that the target ring places on the destination.
func (rb *Rebalancer) copyPass(ctx context.Context, r Rebalance) error {
	view := rb.reg.View()
	for _, src := range r.From.Groups {
		srcPrimary, err := primaryOf(view, src)
		if err != nil {
			return err
		}
		for _, dst := range r.To.Groups {
			if dst == src {
				continue
			}
			dstPrimary, err := primaryOf(view, dst)
			if err != nil {
				return err
			}
			err = retry.Do(ctx, rb.cfg.Attempts, rb.cfg.Backoff, func() (bool, time.Duration, error) {
				n, err := rb.ship(ctx, srcPrimary.URL, dstPrimary.URL, dst, r.To)
				if err != nil {
					return true, 0, err
				}
				if n > 0 {
					rb.cfg.Logf("membership: shipped %d songs %s -> %s", n, src, dst)
				}
				return false, 0, nil
			})
			if err != nil {
				return fmt.Errorf("shipping %s -> %s: %w", src, dst, err)
			}
		}
	}
	return nil
}

// primaryOf picks the group's routable primary record from the view.
func primaryOf(v View, group string) (NodeRecord, error) {
	for _, rec := range v.GroupNodes(group) {
		if rec.Role == RolePrimary && !rec.Fenced {
			return rec, nil
		}
	}
	return NodeRecord{}, fmt.Errorf("membership: group %q has no primary in the view", group)
}

// ExportRequest is the replica export-endpoint payload: "stream me every
// local song the given ring places on the given group".
type ExportRequest struct {
	Ring  Ring   `json:"ring"`
	Group string `json:"group"`
}

// exportCountHeader carries the number of songs in an export stream, so
// the shipper can skip the import POST for empty streams.
const ExportCountHeader = "X-Qbh-Export-Songs"

// ship streams one export directly into one import. The bytes never land
// on the registry's disk: the export response body is the import request
// body.
func (rb *Rebalancer) ship(ctx context.Context, srcURL, dstURL, dstGroup string, ring Ring) (int, error) {
	body := mustJSON(ExportRequest{Ring: ring, Group: dstGroup})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srcURL+rb.cfg.ExportPath, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rb.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("export %s: %s", srcURL, resp.Status)
	}
	if resp.Header.Get(ExportCountHeader) == "0" {
		return 0, nil
	}
	ireq, err := http.NewRequestWithContext(ctx, http.MethodPost, dstURL+rb.cfg.ImportPath, resp.Body)
	if err != nil {
		return 0, err
	}
	ireq.Header.Set("Content-Type", "application/octet-stream")
	iresp, err := rb.cfg.Client.Do(ireq)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, iresp.Body)
		_ = iresp.Body.Close()
	}()
	if iresp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("import %s: %s", dstURL, iresp.Status)
	}
	var out struct {
		Applied int `json:"applied"`
	}
	if err := json.NewDecoder(iresp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Applied, nil
}
