package membership

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is how many points each group contributes to the hash circle.
// More points smooth the key distribution between groups; 64 keeps the
// worst-case imbalance within a few percent for the group counts this
// system runs at while the ring stays a few KB.
const ringVnodes = 64

// Ring is a versioned consistent-hash ring over shard groups. Placement is
// pure: every node computes the same owner from the same (Version, Groups)
// pair, so the ring can travel in the membership view with no coordination
// beyond version dominance. Unlike the rendezvous hash it replaces, a ring
// is explicit about its version — the unit the rebalance state machine cuts
// reads over on — and adding or removing one group only moves the keys in
// the arcs that group gains or loses.
type Ring struct {
	// Version orders rings; higher wins a merge. Version 0 with groups is
	// the static-topology ring (no membership view involved).
	Version uint64 `json:"version"`
	// Groups is the sorted, deduplicated set of member group names.
	Groups []string `json:"groups,omitempty"`
}

// NewRing builds a canonical ring (sorted, deduplicated groups).
func NewRing(version uint64, groups []string) Ring {
	out := append([]string(nil), groups...)
	sort.Strings(out)
	dedup := out[:0]
	for _, g := range out {
		if g != "" && (len(dedup) == 0 || dedup[len(dedup)-1] != g) {
			dedup = append(dedup, g)
		}
	}
	return Ring{Version: version, Groups: dedup}
}

func (r Ring) clone() Ring {
	r.Groups = append([]string(nil), r.Groups...)
	return r
}

// Empty reports a ring with no groups.
func (r Ring) Empty() bool { return len(r.Groups) == 0 }

// Contains reports whether the group is a ring member.
func (r Ring) Contains(group string) bool {
	for _, g := range r.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// dominates orders rings by version, with the same deterministic content
// tie-break as records; an empty ring never dominates a populated one at
// equal version (so a freshly-booted member cannot erase the topology).
func (r Ring) dominates(o Ring) bool {
	if r.Version != o.Version {
		return r.Version > o.Version
	}
	if (len(r.Groups) == 0) != (len(o.Groups) == 0) {
		return len(r.Groups) > 0
	}
	return string(mustJSON(r)) > string(mustJSON(o))
}

// validate enforces the canonical form DecodeView relies on.
func (r Ring) validate() error {
	for i, g := range r.Groups {
		if g == "" {
			return fmt.Errorf("membership: ring has empty group name")
		}
		if i > 0 && r.Groups[i-1] >= g {
			return fmt.Errorf("membership: ring groups not sorted and unique at %q", g)
		}
	}
	return nil
}

// Owner maps a placement key (a song title) to its owning group: the key
// hashes to a point on the circle and the first virtual node clockwise
// claims it. Empty rings own nothing ("").
func (r Ring) Owner(key string) string {
	if len(r.Groups) == 0 {
		return ""
	}
	if len(r.Groups) == 1 {
		return r.Groups[0]
	}
	points := r.points()
	kh := ringHash(key)
	i := sort.Search(len(points), func(i int) bool { return points[i].hash >= kh })
	if i == len(points) {
		i = 0 // wrap: past the last point, the first one claims it
	}
	return r.Groups[points[i].group]
}

type ringPoint struct {
	hash  uint64
	group int // index into Groups
}

// points lays the virtual nodes on the circle, sorted by hash. Ties —
// astronomically unlikely with 64-bit hashes but the placement must still
// be a function of the ring alone — resolve to the lexicographically
// smaller group via the sort's group-index tie-break on the sorted Groups
// slice.
func (r Ring) points() []ringPoint {
	pts := make([]ringPoint, 0, len(r.Groups)*ringVnodes)
	for gi, g := range r.Groups {
		for v := 0; v < ringVnodes; v++ {
			pts = append(pts, ringPoint{ringHash(g + "#" + strconv.Itoa(v)), gi})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].group < pts[j].group
	})
	return pts
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// FNV barely avalanches on short, similar inputs — the vnode labels
	// "a#0".."a#63" hash to one tight arc and the circle degenerates. The
	// murmur3 fmix64 finalizer spreads them uniformly.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Moved returns the keys among the given that change owner between two
// rings — the migration set of a rebalance.
func Moved(from, to Ring, keys []string) []string {
	var out []string
	for _, k := range keys {
		if from.Owner(k) != to.Owner(k) {
			out = append(out, k)
		}
	}
	return out
}
