package membership

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"
)

// randRecord builds a node record with every dominance-relevant field
// randomized, so merge properties are exercised across ties and
// dominance in both directions.
func randRecord(r *rand.Rand, id string) NodeRecord {
	groups := []string{"a", "b", "c"}
	roles := []string{RolePrimary, RoleFollower}
	return NodeRecord{
		ID:          id,
		URL:         "http://" + id,
		Group:       groups[r.Intn(len(groups))],
		Role:        roles[r.Intn(len(roles))],
		Fenced:      r.Intn(4) == 0,
		Incarnation: int64(r.Intn(3)),
		Counter:     uint64(r.Intn(5)),
		WALEpoch:    int64(r.Intn(3)),
		WALOffset:   int64(r.Intn(100)),
	}
}

func randView(r *rand.Rand) View {
	v := View{Nodes: map[string]NodeRecord{}}
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		if r.Intn(3) > 0 {
			v.Nodes[id] = randRecord(r, id)
		}
	}
	if r.Intn(2) == 0 {
		all := []string{"a", "b", "c"}
		v.Ring = NewRing(uint64(r.Intn(3)), all[:1+r.Intn(len(all))])
	}
	if r.Intn(3) == 0 {
		from := NewRing(uint64(1+r.Intn(2)), []string{"a"})
		v.Rebalance = Rebalance{From: from, To: NewRing(from.Version+1, []string{"a", "b"})}
	}
	return v
}

// viewKey is the canonical byte form views are compared by: EncodeView is
// deterministic (encoding/json sorts map keys).
func viewKey(v View) string { return string(EncodeView(v)) }

// TestMergeProperties checks the lattice laws the gossip protocol leans
// on: merging in any order, any grouping, any number of times converges
// on the same view. Without them, two nodes gossiping the same facts
// could disagree forever.
func TestMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := randView(r), randView(r), randView(r)
		ab, ba := Merge(a, b), Merge(b, a)
		if viewKey(ab) != viewKey(ba) {
			t.Fatalf("iter %d: merge not commutative:\n a=%s\n b=%s\nab=%s\nba=%s",
				i, viewKey(a), viewKey(b), viewKey(ab), viewKey(ba))
		}
		left, right := Merge(ab, c), Merge(a, Merge(b, c))
		if viewKey(left) != viewKey(right) {
			t.Fatalf("iter %d: merge not associative:\n(a+b)+c=%s\na+(b+c)=%s",
				i, viewKey(left), viewKey(right))
		}
		if m := Merge(ab, ab); viewKey(m) != viewKey(ab) {
			t.Fatalf("iter %d: merge not idempotent:\n m=%s\nmm=%s", i, viewKey(ab), viewKey(m))
		}
	}
}

// TestViewCodecRoundTrip: encode/decode is the gossip wire format; a view
// must survive it byte-identically.
func TestViewCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		v := Merge(randView(r), randView(r)) // merged = normalized, as on the wire
		dec, err := DecodeView(EncodeView(v))
		if err != nil {
			t.Fatalf("iter %d: decode: %v (view %s)", i, err, viewKey(v))
		}
		if viewKey(dec) != viewKey(v) {
			t.Fatalf("iter %d: round trip changed the view:\nin  %s\nout %s", i, viewKey(v), viewKey(dec))
		}
	}
}

// TestDecodeViewRejects pins the validation DecodeView applies to
// untrusted wire input.
func TestDecodeViewRejects(t *testing.T) {
	bad := []string{
		`{`, // not JSON
		`{"nodes":{"a":{"id":"b"}}}`,                        // map key != record id
		`{"ring":{"version":1,"groups":["b","a"]}}`,         // unsorted ring
		`{"ring":{"version":1,"groups":["a","a"]}}`,         // duplicate group
		`{"ring":{"version":1,"groups":[""]}}`,              // empty group name
		`{"rebalance":{"from":{"version":2,"groups":["a"]},"to":{"version":2,"groups":["a","b"]}}}`, // to not newer
	}
	for _, s := range bad {
		if _, err := DecodeView([]byte(s)); err == nil {
			t.Errorf("DecodeView accepted %s", s)
		}
	}
}

// TestRingPlacement checks the consistent-hash ring's three contracts:
// determinism, rough balance across groups, and minimal movement when the
// membership changes.
func TestRingPlacement(t *testing.T) {
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = "Song Title " + strconv.Itoa(i)
	}
	two := NewRing(1, []string{"a", "b"})
	three := NewRing(2, []string{"a", "b", "c"})

	counts := map[string]int{}
	for _, k := range keys {
		o1, o2 := three.Owner(k), three.Owner(k)
		if o1 != o2 || !three.Contains(o1) {
			t.Fatalf("placement of %q not deterministic or off-ring: %q/%q", k, o1, o2)
		}
		counts[o1]++
	}
	for _, g := range three.Groups {
		if frac := float64(counts[g]) / float64(len(keys)); frac < 0.15 || frac > 0.55 {
			t.Fatalf("group %q owns %.0f%% of keys; vnode spread degenerated (counts %v)",
				g, 100*frac, counts)
		}
	}

	// Growing a→b into a→b→c may move keys only ONTO c: a key moving
	// between a and b would be pointless migration churn.
	moved := Moved(two, three, keys)
	if len(moved) == 0 {
		t.Fatal("adding a group moved no keys")
	}
	if frac := float64(len(moved)) / float64(len(keys)); frac > 0.6 {
		t.Fatalf("adding one group moved %.0f%% of keys; want roughly 1/3", 100*frac)
	}
	for _, k := range moved {
		if got := three.Owner(k); got != "c" {
			t.Fatalf("key %q moved from %q to %q, not to the new group", k, two.Owner(k), got)
		}
	}
}

// fakeClock drives registry freshness deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func beat(id, group, role string, epoch, offset int64, counter uint64) View {
	return View{Nodes: map[string]NodeRecord{id: {
		ID: id, URL: "http://" + id, Group: group, Role: role,
		Incarnation: 1, Counter: counter, WALEpoch: epoch, WALOffset: offset,
	}}}
}

// TestRegistryBootstrap covers both ring-bootstrap modes: the exact-set
// mode waits for every named group, the quiet-period mode takes whatever
// showed up.
func TestRegistryBootstrap(t *testing.T) {
	t.Run("exact set", func(t *testing.T) {
		reg := NewRegistry(RegistryConfig{BootstrapGroups: []string{"a", "b"}, Logf: t.Logf})
		reg.Absorb(beat("p-a", "a", RolePrimary, 1, 0, 1))
		if !reg.View().Ring.Empty() {
			t.Fatal("ring bootstrapped before every named group appeared")
		}
		reg.Absorb(beat("p-b", "b", RolePrimary, 1, 0, 1))
		ring := reg.View().Ring
		if ring.Version != 1 || len(ring.Groups) != 2 {
			t.Fatalf("ring after bootstrap = %+v, want v1 {a,b}", ring)
		}
	})
	t.Run("quiet period", func(t *testing.T) {
		clock := &fakeClock{now: time.Unix(1000, 0)}
		reg := NewRegistry(RegistryConfig{BootstrapDelay: time.Second, Logf: t.Logf})
		reg.cfg.now = clock.Now
		reg.Absorb(beat("p-a", "a", RolePrimary, 1, 0, 1))
		reg.Absorb(beat("p-b", "b", RolePrimary, 1, 0, 1))
		if !reg.View().Ring.Empty() {
			t.Fatal("ring bootstrapped before the quiet period elapsed")
		}
		clock.Advance(2 * time.Second)
		reg.Absorb(beat("p-a", "a", RolePrimary, 1, 0, 2))
		ring := reg.View().Ring
		if ring.Version != 1 || len(ring.Groups) != 2 {
			t.Fatalf("ring after quiet period = %+v, want v1 {a,b}", ring)
		}
	})
}

// TestRegistryRebalanceStateMachine drives propose → commit and propose →
// abort directly, pinning the one-at-a-time rule and the version bumps.
func TestRegistryRebalanceStateMachine(t *testing.T) {
	reg := NewRegistry(RegistryConfig{BootstrapGroups: []string{"a", "b"}, Logf: t.Logf})
	reg.Absorb(beat("p-a", "a", RolePrimary, 1, 0, 1))
	reg.Absorb(beat("p-b", "b", RolePrimary, 1, 0, 1))

	if _, err := reg.ProposeRebalance("add", "a"); err == nil {
		t.Fatal("adding an existing group did not fail")
	}
	rb, err := reg.ProposeRebalance("add", "c")
	if err != nil {
		t.Fatal(err)
	}
	if rb.From.Version != 1 || rb.To.Version != 2 || !rb.To.Contains("c") {
		t.Fatalf("proposed rebalance = %+v", rb)
	}
	if _, err := reg.ProposeRebalance("add", "d"); err == nil {
		t.Fatal("second in-flight rebalance accepted")
	}
	reg.CommitRebalance(rb.To)
	v := reg.View()
	if v.Ring.Version != 2 || !v.Ring.Contains("c") || v.Rebalance.Active() {
		t.Fatalf("after commit: ring %+v rebalance %+v", v.Ring, v.Rebalance)
	}

	rb2, err := reg.ProposeRebalance("remove", "c")
	if err != nil {
		t.Fatal(err)
	}
	reg.AbortRebalance()
	v = reg.View()
	if v.Ring.Version != 2 || v.Rebalance.Active() {
		t.Fatalf("after abort: ring %+v rebalance %+v (proposed %+v)", v.Ring, v.Rebalance, rb2)
	}
}

// TestDirectorFailover drives one tick against fake replica servers: a
// group whose primary went silent must promote the freshest follower with
// the HIGHEST acked watermark and repoint the other survivor at it.
func TestDirectorFailover(t *testing.T) {
	var mu sync.Mutex
	calls := map[string][]string{} // node -> paths hit
	node := func(name string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			calls[name] = append(calls[name], r.URL.Path+"?"+r.URL.RawQuery)
			mu.Unlock()
			w.WriteHeader(http.StatusOK)
		}))
	}
	behind, ahead := node("behind"), node("ahead")
	defer behind.Close()
	defer ahead.Close()

	clock := &fakeClock{now: time.Unix(2000, 0)}
	reg := NewRegistry(RegistryConfig{Logf: t.Logf})
	reg.cfg.now = clock.Now

	const interval = 100 * time.Millisecond
	rec := func(id, url, role string, offset int64, counter uint64) View {
		return View{Nodes: map[string]NodeRecord{id: {
			ID: id, URL: url, Group: "g", Role: role,
			Incarnation: 1, Counter: counter, WALEpoch: 3, WALOffset: offset,
		}}}
	}
	reg.Absorb(rec("p", "http://dead-primary", RolePrimary, 50, 1))
	reg.Absorb(rec("f-behind", behind.URL, RoleFollower, 40, 1))
	reg.Absorb(rec("f-ahead", ahead.URL, RoleFollower, 50, 1))

	d := NewDirector(reg, DirectorConfig{Interval: interval, MissedBeats: 3, Logf: t.Logf})

	// Everyone fresh: no action.
	d.tick()
	mu.Lock()
	if len(calls["behind"])+len(calls["ahead"]) != 0 {
		mu.Unlock()
		t.Fatalf("director acted on a healthy group: %v", calls)
	}
	mu.Unlock()

	// The primary goes silent; the followers keep beating.
	clock.Advance(time.Second)
	reg.Absorb(rec("f-behind", behind.URL, RoleFollower, 40, 2))
	reg.Absorb(rec("f-ahead", ahead.URL, RoleFollower, 50, 2))
	d.tick()

	mu.Lock()
	defer mu.Unlock()
	if len(calls["ahead"]) != 1 || calls["ahead"][0] != DefaultPromotePath+"?" {
		t.Fatalf("most-caught-up follower calls = %v, want one promote", calls["ahead"])
	}
	want := DefaultRepointPath + "?primary=" + url.QueryEscape(ahead.URL)
	if len(calls["behind"]) != 1 || calls["behind"][0] != want {
		t.Fatalf("survivor calls = %v, want repoint %q", calls["behind"], want)
	}
}
