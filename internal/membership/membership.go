// Package membership makes the replicated shard-group topology dynamic.
// It has three pieces, all built on one data structure — an epoch-versioned
// membership View that merges as a join-semilattice:
//
//   - Every replica heartbeats a NodeRecord (node id, group, role, WAL ack
//     watermark) to a tiny seed server (Registry), shipping its whole local
//     View and merging the Registry's reply back — push-pull gossip through
//     a star. Records merge by (incarnation, heartbeat-counter) dominance,
//     the ring and rebalance state by version dominance, so merge is
//     commutative, associative and idempotent: any exchange order converges
//     and a restarted seed repopulates from the first round of heartbeats.
//   - A Director watches the Registry's view: a primary whose heartbeat
//     counter stops advancing for K probe intervals is presumed dead, the
//     group's freshest follower — the one with the highest durably-applied
//     (epoch, offset) watermark, which under semi-sync acks is guaranteed
//     to hold every acknowledged write — is promoted through the existing
//     /replica/promote path, and surviving followers are repointed at it.
//   - The View carries a versioned consistent-hash Ring that places songs
//     on groups. Changing the group set is a Rebalance: the new ring is
//     announced first (coordinators dual-route writes for moving keys while
//     it is pending), the moving songs are snapshot-shipped to their new
//     owners, and only then does the ring version bump — the atomic read
//     cutover.
//
// The package deliberately knows nothing about the replica or server
// packages (they import it, not vice versa); the HTTP paths it drives on
// replicas are configuration with defaults that the replica package pins
// with a compile-coupled test.
package membership

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Roles a NodeRecord can claim. They mirror replica.Role; membership keeps
// its own constants to stay import-free.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// Protocol endpoints served by the Registry (seed server).
const (
	// PathHeartbeat (POST) receives a node's full local view and answers
	// with the merged view — one round of push-pull gossip.
	PathHeartbeat = "/membership/heartbeat"
	// PathView (GET) returns the registry's current merged view.
	PathView = "/membership/view"
	// PathGroups (POST) is the operator surface: {"op":"add"|"remove",
	// "group":name} starts a consistent-hash rebalance that migrates the
	// moving songs and then bumps the ring version.
	PathGroups = "/membership/groups"
)

// Default paths the Director and Rebalancer drive on replica nodes. The
// replica package pins these against its own constants in a test, so the
// two packages cannot drift apart silently.
const (
	DefaultPromotePath = "/replica/promote"
	DefaultRepointPath = "/replica/repoint"
	DefaultExportPath  = "/replica/export"
	DefaultImportPath  = "/replica/import"
)

// Tunables with package-wide defaults.
const (
	// DefaultHeartbeatInterval paces the Agent's gossip rounds.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultMissedBeats is how many consecutive silent heartbeat
	// intervals make the Director presume a primary dead.
	DefaultMissedBeats = 4
)

// NodeRecord is one node's self-description inside a View. A node only
// ever publishes records about itself; everyone else just relays them.
type NodeRecord struct {
	// ID is the node's stable identity (its data directory by default).
	ID string `json:"id"`
	// URL is the base URL other cluster members reach the node at.
	URL string `json:"url"`
	// Group names the shard group the node belongs to.
	Group string `json:"group"`
	// Role is the node's current duty: RolePrimary or RoleFollower.
	Role string `json:"role"`
	// Fenced reports that a primary has fenced itself after observing a
	// successor with a later WAL epoch: it refuses writes (421) until an
	// operator restarts it as a follower.
	Fenced bool `json:"fenced,omitempty"`
	// Incarnation distinguishes process lifetimes of the same node id; a
	// restart picks a strictly larger value, so records from a previous
	// life can never dominate current ones.
	Incarnation int64 `json:"inc"`
	// Counter is the heartbeat counter, bumped every gossip round.
	// (Incarnation, Counter) totally orders one node's records.
	Counter uint64 `json:"ctr"`
	// WALEpoch and WALOffset are the node's durably-applied replication
	// position: the primary's own frontier, or the follower's ack
	// watermark in the primary's stream — exactly what semi-sync writes
	// wait on, and therefore what failover elects the successor by.
	WALEpoch  int64 `json:"wal_epoch"`
	WALOffset int64 `json:"wal_offset"`
}

// dominates reports whether r supersedes o in a merge. Records are ordered
// by (Incarnation, Counter); a full tie with different content — which a
// correct node never produces, but a merge must still be deterministic
// about — is broken by comparing the canonical encodings.
func (r NodeRecord) dominates(o NodeRecord) bool {
	if r.Incarnation != o.Incarnation {
		return r.Incarnation > o.Incarnation
	}
	if r.Counter != o.Counter {
		return r.Counter > o.Counter
	}
	return bytes.Compare(mustJSON(r), mustJSON(o)) > 0
}

// WatermarkAtLeast reports whether r's durably-applied position covers o's:
// a later epoch subsumes every earlier one.
func (r NodeRecord) WatermarkAtLeast(o NodeRecord) bool {
	if r.WALEpoch != o.WALEpoch {
		return r.WALEpoch > o.WALEpoch
	}
	return r.WALOffset >= o.WALOffset
}

// Rebalance is an in-flight ring change carried in the View. While one is
// pending, coordinators dual-route writes whose owner differs between From
// and To; when the migration completes the ring becomes To and the
// rebalance clears — that version bump is the atomic read cutover.
type Rebalance struct {
	From Ring `json:"from"`
	To   Ring `json:"to"`
}

// Active reports whether a rebalance is pending.
func (rb Rebalance) Active() bool { return rb.To.Version != 0 }

// dominates orders rebalances by target version (content tie-break as for
// records). The zero Rebalance never dominates an active one.
func (rb Rebalance) dominates(o Rebalance) bool {
	if rb.To.Version != o.To.Version {
		return rb.To.Version > o.To.Version
	}
	return bytes.Compare(mustJSON(rb), mustJSON(o)) > 0
}

// View is the epoch-versioned cluster picture every member converges on.
type View struct {
	// Nodes maps node id to that node's freshest known record.
	Nodes map[string]NodeRecord `json:"nodes,omitempty"`
	// Ring is the committed consistent-hash placement.
	Ring Ring `json:"ring"`
	// Rebalance is the pending ring change, if any.
	Rebalance Rebalance `json:"rebalance,omitempty"`
}

// Clone deep-copies the view.
func (v View) Clone() View {
	out := v
	if v.Nodes != nil {
		out.Nodes = make(map[string]NodeRecord, len(v.Nodes))
		for id, r := range v.Nodes {
			out.Nodes[id] = r
		}
	}
	out.Ring.Groups = append([]string(nil), v.Ring.Groups...)
	out.Rebalance.From.Groups = append([]string(nil), v.Rebalance.From.Groups...)
	out.Rebalance.To.Groups = append([]string(nil), v.Rebalance.To.Groups...)
	return out
}

// normalize applies the view's internal invariant: a rebalance whose
// target ring has been committed (ring version caught up to or past it) is
// finished and clears. normalize is what keeps Merge associative in the
// face of that clearing — the cleared state is a pure function of the
// pointwise-joined fields, so re-merging an already-cleared view with a
// stale pending one clears it again.
func (v *View) normalize() {
	if v.Rebalance.Active() && v.Ring.Version >= v.Rebalance.To.Version {
		v.Rebalance = Rebalance{}
	}
}

// Merge joins two views: pointwise record dominance, ring and rebalance
// version dominance, then normalization. It is commutative, associative
// and idempotent (pinned by a property test), which is what lets views
// travel along any gossip path in any order and still converge.
func Merge(a, b View) View {
	out := a.Clone()
	if out.Nodes == nil && len(b.Nodes) > 0 {
		out.Nodes = make(map[string]NodeRecord, len(b.Nodes))
	}
	for id, rec := range b.Nodes {
		if cur, ok := out.Nodes[id]; !ok || rec.dominates(cur) {
			out.Nodes[id] = rec
		}
	}
	if b.Ring.dominates(out.Ring) {
		out.Ring = b.Ring.clone()
	}
	if b.Rebalance.dominates(out.Rebalance) {
		out.Rebalance = b.Rebalance
		out.Rebalance.From = out.Rebalance.From.clone()
		out.Rebalance.To = out.Rebalance.To.clone()
	}
	out.normalize()
	return out
}

// GroupNodes returns the view's records for one group, primaries first,
// each section ordered by descending watermark then id — the order a
// consumer should try them in.
func (v View) GroupNodes(group string) []NodeRecord {
	var out []NodeRecord
	for _, rec := range v.Nodes {
		if rec.Group == group {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ap, bp := a.Role == RolePrimary && !a.Fenced, b.Role == RolePrimary && !b.Fenced
		if ap != bp {
			return ap
		}
		if a.WALEpoch != b.WALEpoch || a.WALOffset != b.WALOffset {
			return a.WatermarkAtLeast(b)
		}
		return a.ID < b.ID
	})
	return out
}

// Groups returns the sorted set of group names present in the view's node
// records (which may include groups not yet in the ring — candidates for a
// join).
func (v View) Groups() []string {
	seen := map[string]bool{}
	for _, rec := range v.Nodes {
		if rec.Group != "" {
			seen[rec.Group] = true
		}
	}
	out := make([]string, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// EncodeView serializes a view to its JSON wire form. Encoding is
// deterministic (object keys sort), so equal views encode equal bytes —
// which the dominance tie-breaks rely on.
func EncodeView(v View) []byte { return mustJSON(v) }

// DecodeView parses and validates a wire view. Every structural invariant
// the merge and routing code relies on is enforced here, so a corrupt or
// malicious peer cannot poison a local view: map keys must match record
// ids, ids must be non-empty, and both rings (plus the rebalance's) must
// be canonical. The fuzz target pins "never panics, and whatever decodes
// cleanly re-encodes and merges safely".
func DecodeView(data []byte) (View, error) {
	var v View
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&v); err != nil {
		return View{}, fmt.Errorf("membership: decoding view: %w", err)
	}
	for id, rec := range v.Nodes {
		if id == "" || rec.ID != id {
			return View{}, fmt.Errorf("membership: view node key %q does not match record id %q", id, rec.ID)
		}
	}
	for _, r := range []Ring{v.Ring, v.Rebalance.From, v.Rebalance.To} {
		if err := r.validate(); err != nil {
			return View{}, err
		}
	}
	if v.Rebalance.Active() && v.Rebalance.To.Version <= v.Rebalance.From.Version {
		return View{}, fmt.Errorf("membership: rebalance target version %d not past source %d",
			v.Rebalance.To.Version, v.Rebalance.From.Version)
	}
	v.normalize()
	return v, nil
}

func mustJSON(v interface{}) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// Only unmarshalable types reach here; every type in this package
		// marshals.
		panic(err)
	}
	return data
}
