package membership

import (
	"testing"
)

// FuzzDecodeView hammers the gossip wire decoder with arbitrary bytes:
// heartbeat bodies arrive from the network, so DecodeView must either
// reject input or return a view that is safe to merge and re-encode —
// never panic, and never produce a view whose re-encoding fails its own
// validation (that would poison every future gossip round).
func FuzzDecodeView(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nodes":{"n1":{"id":"n1","url":"http://n1","group":"a","role":"primary","inc":1,"ctr":2,"wal_epoch":3,"wal_offset":4}}}`))
	f.Add(EncodeView(View{
		Nodes: map[string]NodeRecord{"n1": {ID: "n1", Group: "a", Role: RoleFollower, Incarnation: 1}},
		Ring:  NewRing(2, []string{"a", "b"}),
	}))
	f.Add(EncodeView(View{
		Ring: NewRing(1, []string{"a"}),
		Rebalance: Rebalance{
			From: NewRing(1, []string{"a"}),
			To:   NewRing(2, []string{"a", "b"}),
		},
	}))
	f.Add([]byte(`{"ring":{"version":1,"groups":["b","a"]}}`))
	f.Add([]byte(`{"nodes":{"x":{"id":"y"}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeView(data)
		if err != nil {
			return // rejected input is a fine outcome
		}
		// An accepted view must survive the full gossip cycle: merge
		// (normalizing) and the wire round trip.
		merged := Merge(v, v)
		out, err := DecodeView(EncodeView(merged))
		if err != nil {
			t.Fatalf("accepted view failed its own round trip: %v\nin: %q", err, data)
		}
		if string(EncodeView(out)) != string(EncodeView(merged)) {
			t.Fatalf("round trip not stable:\nfirst  %s\nsecond %s", EncodeView(merged), EncodeView(out))
		}
	})
}
