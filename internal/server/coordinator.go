package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"warping/internal/index"
	"warping/internal/membership"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/replica"
	"warping/internal/retry"
	"warping/internal/ts"
)

// GroupSpec names one replicated shard group and its member base URLs.
// Any member may be the primary; the coordinator discovers which by
// probing and by reacting to 421 responses, so promotions do not require
// a coordinator restart.
type GroupSpec struct {
	Name     string
	Replicas []string
}

// CoordinatorConfig tunes the fan-out path. Zero values select defaults.
type CoordinatorConfig struct {
	// Groups is the static cluster layout: one entry per shard group.
	// Ignored when Seeds is set.
	Groups []GroupSpec
	// Seeds switches the coordinator to dynamic topology: instead of a
	// fixed -groups list, it gossips with the membership seed servers and
	// derives the group set, each group's replicas and the write placement
	// ring from the merged view — so failovers, group joins and removals
	// need no coordinator restart.
	Seeds []string
	// DarkTTL is how long a group that failed an entire fan-out is skipped
	// ("dark") before a background probe may bring it back. While dark the
	// group contributes nothing and responses are degraded, but queries
	// stop paying its timeout. Default 2s.
	DarkTTL time.Duration
	// Opts must match the qbh.Options the replicas were built with; the
	// coordinator compiles query plans from it (qbh.NewQueryPlanner).
	Opts qbh.Options
	// ReplicaTimeout bounds each replica query attempt. Default 5s.
	ReplicaTimeout time.Duration
	// HedgeAfter is how long to wait on a replica before hedging the same
	// query to the group's next replica. The first response wins; the
	// loser is cancelled. Default 500ms.
	HedgeAfter time.Duration
	// WriteAttempts bounds write retries per replica (429/5xx/transport
	// errors back off and retry; 421 moves on to the next replica
	// immediately). Default 3.
	WriteAttempts int
	// Backoff paces write retries; Retry-After headers take precedence.
	Backoff retry.Backoff
	// Client is the HTTP client for all fan-out; nil builds a default.
	Client *http.Client
	// Logf receives fan-out diagnostics; nil selects log.Printf.
	Logf func(format string, args ...interface{})
}

func (c *CoordinatorConfig) fill() {
	if c.ReplicaTimeout <= 0 {
		c.ReplicaTimeout = 5 * time.Second
	}
	if c.DarkTTL <= 0 {
		c.DarkTTL = 2 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 500 * time.Millisecond
	}
	if c.WriteAttempts <= 0 {
		c.WriteAttempts = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// topology is one immutable snapshot of the cluster the coordinator
// routes against: the fan-out group set with each group's replicas, and
// the placement ring (plus any in-flight rebalance). In static mode it is
// fixed at construction (ring version 0 over the configured groups); in
// seed mode every merged membership view rebuilds it.
type topology struct {
	groups []GroupSpec
	ring   membership.Ring
	reb    membership.Rebalance
}

func (t topology) group(name string) (GroupSpec, bool) {
	for _, g := range t.groups {
		if g.Name == name {
			return g, true
		}
	}
	return GroupSpec{}, false
}

// errGroupDark marks a group skipped because its dark-cache verdict has
// not expired: the group recently failed an entire fan-out and a
// background probe has not yet seen it answer.
var errGroupDark = errors.New("coordinator: group is dark (recent total failure; background probe pending)")

// Coordinator implements Backend over a cluster of replicated shard
// groups, so NewBackend serves the ordinary public API in front of it.
// Queries compile to a plan once, fan out to one replica per group with
// per-replica timeouts and hedged retries, and merge top-K; when a whole
// group is unreachable the response is partial and marked degraded, and
// the group goes dark for DarkTTL so later queries stop paying its
// timeout. Writes route by the consistent-hash ring to the owning group's
// primary with bounded retry, dual-routing to the future owner while a
// rebalance is in flight.
type Coordinator struct {
	cfg  CoordinatorConfig
	plan func(ts.Series, float64) *index.Plan

	mu        sync.Mutex
	top       topology
	primaries map[string]string    // group name -> last known primary URL
	dark      map[string]time.Time // group name -> dark verdict expiry
	probing   map[string]bool      // group name -> background probe running

	agent  *membership.Agent // seed mode only
	closed chan struct{}

	// Song id allocation. The coordinator is the cluster's id allocator:
	// per-group max+1 allocation cannot survive a rebalance, because a
	// migrated song raises the receiving group's frontier into the donor's
	// id range and the next local allocation collides with an id that
	// still exists elsewhere — aliasing two distinct songs on every read
	// path that dedupes by id. nextID is seeded lazily from the global
	// maximum across all groups and only ever moves forward.
	idMu    sync.Mutex
	idReady bool
	nextID  int64

	rr atomic.Uint64 // rotates which replica each group's query starts at
}

// NewCoordinator builds the fan-out backend for a cluster layout — static
// (cfg.Groups) or discovered from the membership seeds (cfg.Seeds).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.fill()
	c := &Coordinator{
		cfg:       cfg,
		plan:      qbh.NewQueryPlanner(cfg.Opts),
		primaries: make(map[string]string),
		dark:      make(map[string]time.Time),
		probing:   make(map[string]bool),
		closed:    make(chan struct{}),
	}
	if len(cfg.Seeds) > 0 {
		agent, err := membership.StartAgent(membership.AgentConfig{
			Seeds:  cfg.Seeds,
			OnView: c.absorbView, // observer: no Self record
			Client: cfg.Client,
			Logf:   cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		c.agent = agent
		// StartAgent already ran one synchronous gossip round; on a healthy
		// cluster the topology is populated before the first query.
		c.absorbView(agent.View())
		return c, nil
	}
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("coordinator: no shard groups configured")
	}
	names := make([]string, 0, len(cfg.Groups))
	for _, g := range cfg.Groups {
		if len(g.Replicas) == 0 {
			return nil, fmt.Errorf("coordinator: group %q has no replicas", g.Name)
		}
		names = append(names, g.Name)
	}
	c.top = topology{groups: cfg.Groups, ring: membership.NewRing(0, names)}
	return c, nil
}

// Close stops the membership agent and background probes. The coordinator
// itself is stateless beyond caches, so Close does not flush anything.
func (c *Coordinator) Close() error {
	select {
	case <-c.closed:
		return nil
	default:
	}
	close(c.closed)
	if c.agent != nil {
		c.agent.Stop()
	}
	return nil
}

// topology returns the current routing snapshot.
func (c *Coordinator) topology() topology {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.top
}

// MembershipView reports the coordinator's current merged membership view
// (seed mode only; ok is false in static mode). The server's /stats
// handler surfaces it.
func (c *Coordinator) MembershipView() (membership.View, bool) {
	if c.agent == nil {
		return membership.View{}, false
	}
	return c.agent.View(), true
}

// absorbView rebuilds the routing topology from a merged membership view.
// The fan-out set is the committed ring's groups plus, while a rebalance
// is pending, the target ring's (a joining group holds dual-written songs
// before it owns any arc — reads must see them). Replica order comes from
// the view (primaries first, then by watermark), and the primary cache is
// refreshed so writes stop paying a 421 round trip after failovers.
func (c *Coordinator) absorbView(v membership.View) {
	fanout := append([]string(nil), v.Ring.Groups...)
	if v.Rebalance.Active() {
		for _, g := range v.Rebalance.To.Groups {
			if !v.Ring.Contains(g) {
				fanout = append(fanout, g)
			}
		}
	}
	top := topology{ring: v.Ring, reb: v.Rebalance}
	primaries := map[string]string{}
	for _, name := range fanout {
		recs := v.GroupNodes(name)
		if len(recs) == 0 {
			continue // no known members: nothing to route to
		}
		spec := GroupSpec{Name: name}
		for _, rec := range recs {
			spec.Replicas = append(spec.Replicas, rec.URL)
			if rec.Role == membership.RolePrimary && !rec.Fenced && primaries[name] == "" {
				primaries[name] = rec.URL
			}
		}
		top.groups = append(top.groups, spec)
	}
	c.mu.Lock()
	c.top = top
	for name, u := range primaries {
		c.primaries[name] = u
	}
	c.mu.Unlock()
}

// groupResult is one group's contribution to a fanned-out query.
type groupResult struct {
	resp *QueryResponse
	err  error
}

// QueryCtx implements the Backend query path: one plan, fanned to every
// group, merged. A group that fails entirely contributes nothing and
// flips stats.Degraded — the contract for partial results.
func (c *Coordinator) QueryCtx(ctx context.Context, pitch ts.Series, topK int, delta float64, lim index.Limits) ([]qbh.SongMatch, index.QueryStats, error) {
	if len(pitch) == 0 {
		return nil, index.QueryStats{}, nil
	}
	top := c.topology()
	if len(top.groups) == 0 {
		return nil, index.QueryStats{}, fmt.Errorf("coordinator: no reachable topology (membership view empty)")
	}
	p := c.plan(pitch, delta)
	// The cache key is computed once here and shipped with the plan, so
	// every replica's result cache agrees on the query's identity — a hit
	// on one replica of a group is a hit on all of them.
	body, err := json.Marshal(PlannedRequest{Plan: p.Wire(), TopK: topK, CacheKey: p.CacheKey(topK)})
	if err != nil {
		return nil, index.QueryStats{}, err
	}

	results := make([]groupResult, len(top.groups))
	var wg sync.WaitGroup
	for i, g := range top.groups {
		if c.isDark(g.Name) {
			// Recent total failure: skip the group without paying its
			// timeout again; the background probe decides when it returns.
			results[i] = groupResult{nil, errGroupDark}
			continue
		}
		wg.Add(1)
		go func(i int, g GroupSpec) {
			defer wg.Done()
			resp, err := c.queryGroup(ctx, g, body)
			results[i] = groupResult{resp, err}
			if err != nil && ctx.Err() == nil {
				c.markDark(g.Name)
			}
		}(i, g)
	}
	wg.Wait()

	var stats index.QueryStats
	var matches []qbh.SongMatch
	failed := 0
	for i, r := range results {
		if r.err != nil {
			failed++
			c.cfg.Logf("coordinator: group %q unreachable: %v", top.groups[i].Name, r.err)
			continue
		}
		stats.Add(index.QueryStats{
			Candidates:      r.resp.Candidates,
			CoarseSurvivors: r.resp.CoarseSurvivors,
			KeoghSurvivors:  r.resp.KeoghSurvivors,
			LBSurvivors:     r.resp.LBSurvivors,
			ExactDTW:        r.resp.ExactDTW,
			LogicalPages:    r.resp.LogicalPages,
			PageAccesses:    r.resp.PageAccesses,
			Degraded:        r.resp.Degraded,
			Cached:          r.resp.Cached,
		})
		for _, m := range r.resp.Matches {
			matches = append(matches, qbh.SongMatch{SongID: m.SongID, Title: m.Title, Dist: m.Dist})
		}
	}
	if failed == len(results) {
		// Nothing answered: that is an outage, not a degraded ranking.
		return nil, stats, fmt.Errorf("coordinator: all %d shard groups unreachable", failed)
	}
	if failed > 0 {
		stats.Degraded = true
	}
	// Dedupe by song id before ranking: a rebalance leaves the moving
	// songs on their old owner (migration copies, never deletes) and
	// dual-writes land on two groups, so the same song can come back from
	// two groups with the same distance. One copy ranks; with the dedupe
	// the merged result stays bit-identical to a single node over the
	// logical corpus throughout a migration.
	if len(matches) > 1 {
		seen := make(map[int64]int, len(matches))
		kept := matches[:0]
		for _, m := range matches {
			if j, ok := seen[m.SongID]; ok {
				if m.Dist < kept[j].Dist {
					kept[j] = m
				}
				continue
			}
			seen[m.SongID] = len(kept)
			kept = append(kept, m)
		}
		matches = kept
	}
	// Re-sort the union of per-group top-Ks with the same total order the
	// replicas use ((Dist, SongID, Title)), then truncate to topK. Sorting
	// on Dist alone with sort.Slice is unstable: equal-distance matches
	// landing in different groups would be ordered by goroutine completion,
	// so repeated queries — or the same query against different shardings —
	// could return different rankings. With the full tie-break the merged
	// result is bit-identical to a single-node query over the union corpus.
	sort.Slice(matches, func(i, j int) bool {
		a, b := matches[i], matches[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if a.SongID != b.SongID {
			return a.SongID < b.SongID
		}
		return a.Title < b.Title
	})
	if len(matches) > topK {
		matches = matches[:topK]
	}
	return matches, stats, nil
}

// queryGroup asks one replica of the group, hedging to siblings: a second
// attempt launches when the first is slow (HedgeAfter) or fails, and the
// first successful response wins. The rotation spreads read load across
// replicas between queries.
//
// Dedupe invariant: the replicas of a group hold the same corpus, so when
// a hedge fires the group has two or more in-flight attempts that would
// each return the full per-group result. Exactly ONE response may reach
// the caller — the merge loop in QueryCtx sums QueryStats and concatenates
// matches per group, so a second response from a hedge loser would double
// both. The first `return r.resp, nil` below is that dedupe point: the
// deferred cancel() aborts the losers and their late sends land in the
// buffered channel (capacity len(order), so they never block) and are
// dropped with it.
func (c *Coordinator) queryGroup(ctx context.Context, g GroupSpec, body []byte) (*QueryResponse, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the hedge loser
	start := int(c.rr.Add(1))
	order := make([]string, len(g.Replicas))
	for i := range g.Replicas {
		order[i] = g.Replicas[(start+i)%len(g.Replicas)]
	}

	ch := make(chan groupResult, len(order))
	launched := 0
	launch := func() {
		u := order[launched]
		launched++
		go func() {
			resp, err := c.postPlanned(ctx, u, body)
			ch <- groupResult{resp, err}
		}()
	}
	launch()
	hedge := time.NewTimer(c.cfg.HedgeAfter)
	defer hedge.Stop()

	pending := 1
	var lastErr error
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.resp, nil
			}
			lastErr = r.err
			if launched < len(order) {
				launch()
				pending++
			}
		case <-hedge.C:
			if launched < len(order) {
				launch()
				pending++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func (c *Coordinator) postPlanned(ctx context.Context, baseURL string, body []byte) (*QueryResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ReplicaTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/query/planned", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", baseURL, resp.Status)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: decoding response: %w", baseURL, err)
	}
	return &out, nil
}

// isDark reports whether the group's dark verdict is still in force.
func (c *Coordinator) isDark(group string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Before(c.dark[group])
}

// markDark records a total fan-out failure for the group and launches the
// background re-probe (one per group at a time). Until a probe sees the
// group answer, queries skip it — degraded but fast — instead of paying
// its full timeout on every request.
func (c *Coordinator) markDark(group string) {
	c.mu.Lock()
	c.dark[group] = time.Now().Add(c.cfg.DarkTTL)
	spawn := !c.probing[group]
	if spawn {
		c.probing[group] = true
	}
	c.mu.Unlock()
	if spawn {
		c.cfg.Logf("coordinator: group %q dark for %v; probing in background", group, c.cfg.DarkTTL)
		go c.probeLoop(group)
	}
}

// probeLoop probes one replica of a dark group every DarkTTL until the
// group answers (the verdict clears and queries resume) or the
// coordinator closes. The probe is GET /stats — cheap, and served by
// primaries and followers alike.
func (c *Coordinator) probeLoop(group string) {
	t := time.NewTicker(c.cfg.DarkTTL)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
		}
		g, ok := c.topology().group(group)
		if !ok {
			break // group left the topology; nothing to probe
		}
		alive := false
		for _, u := range g.Replicas {
			var out StatsResponse
			if err := c.getJSON(context.Background(), u+"/stats", &out); err == nil {
				alive = true
				break
			}
		}
		if !alive {
			c.mu.Lock()
			c.dark[group] = time.Now().Add(c.cfg.DarkTTL)
			c.mu.Unlock()
			continue
		}
		break
	}
	c.mu.Lock()
	delete(c.dark, group)
	c.probing[group] = false
	c.mu.Unlock()
	c.cfg.Logf("coordinator: group %q back from dark", group)
}

// AddSongTitled routes the write to the ring owner's primary. The
// coordinator allocates the song id itself (allocateID) and ships the
// song id-preservingly through the import endpoint, which carries the
// same guarantees as a direct client write: only an unfenced primary
// accepts it (421 otherwise) and the reply waits for the semi-sync
// quorum. The last known primary is tried first; a 421 moves on to the
// next replica, 429/5xx back off — honoring Retry-After — and retry the
// same one up to WriteAttempts times. While a rebalance is pending and
// the title's owner moves, the write is dual-routed: the current owner
// acknowledges durability, then the same song ships under the same id
// to the future owner, so the read cutover at commit cannot miss writes
// that raced the migration's copy passes.
func (c *Coordinator) AddSongTitled(title string, melody music.Melody) (music.Song, error) {
	top := c.topology()
	if top.ring.Empty() {
		return music.Song{}, fmt.Errorf("coordinator: no placement ring yet (membership view empty)")
	}
	owner := top.ring.Owner(title)
	g, ok := top.group(owner)
	if !ok {
		return music.Song{}, fmt.Errorf("coordinator: owner group %q has no known replicas", owner)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(len(g.Replicas)*c.cfg.WriteAttempts)*c.cfg.ReplicaTimeout)
	defer cancel()

	id, err := c.allocateID(ctx, top)
	if err != nil {
		return music.Song{}, err
	}
	song := music.Song{ID: id, Title: title, Melody: melody}
	stream, err := replica.EncodeExport([]music.Song{song})
	if err != nil {
		return music.Song{}, fmt.Errorf("coordinator: encoding song: %w", err)
	}

	var lastErr error
	for _, u := range c.writeOrder(g) {
		err := retry.Do(ctx, c.cfg.WriteAttempts, c.cfg.Backoff, func() (bool, time.Duration, error) {
			applied, st, ra, err := c.postImport(ctx, u, stream)
			switch {
			case err == nil:
				if applied == 0 {
					// A retried import whose first response was lost: the
					// song is already durable under this id. (The allocator
					// never reuses ids, so it cannot be a foreign song.)
					c.cfg.Logf("coordinator: write %d %q was already applied", id, title)
				}
				return false, 0, nil
			case st == http.StatusMisdirectedRequest:
				return false, 0, err // wrong replica: stop retrying here, move on
			case st == http.StatusTooManyRequests || st >= 500 || st == 0:
				return true, ra, err
			default:
				return false, 0, err // 4xx: the request itself is bad
			}
		})
		if err == nil {
			c.setPrimary(g.Name, u)
			if err := c.dualWrite(ctx, top, song); err != nil {
				// The write is durable on the current owner but NOT on the
				// future one; acknowledging it could strand it if the old
				// owner later leaves the ring. Refuse the ack — a client
				// retry is idempotent in effect (worst case a duplicate
				// title under a fresh id, which ranking tolerates).
				return music.Song{}, err
			}
			return song, nil
		}
		lastErr = err
	}
	return music.Song{}, fmt.Errorf("coordinator: write to group %q failed: %w", g.Name, lastErr)
}

// allocateID hands out a cluster-unique song id. On first use it seeds
// the counter one past the global maximum, taking the max over every
// reachable replica of every group (a lagging follower may not have the
// newest ids yet, so one reachable replica per group is required but all
// are consulted). A group with no reachable replica blocks allocation —
// guessing low would risk handing out an id that already names a
// different song there. Groups that join later must join empty (they
// receive songs only through migration and dual-writes, which preserve
// ids this allocator issued), so the counter never needs to re-seed.
func (c *Coordinator) allocateID(ctx context.Context, top topology) (int64, error) {
	c.idMu.Lock()
	defer c.idMu.Unlock()
	if !c.idReady {
		next := int64(0)
		for _, g := range top.groups {
			var reachable bool
			var lastErr error
			for _, u := range g.Replicas {
				var infos []SongInfo
				if err := c.getJSON(ctx, u+"/songs", &infos); err != nil {
					lastErr = err
					continue
				}
				reachable = true
				for _, s := range infos {
					if s.ID >= next {
						next = s.ID + 1
					}
				}
			}
			if !reachable {
				return 0, fmt.Errorf("coordinator: id allocation: group %q unreachable: %w", g.Name, lastErr)
			}
		}
		c.nextID = next
		c.idReady = true
	}
	id := c.nextID
	c.nextID++
	return id, nil
}

// dualWrite ships the just-acknowledged song to its owner under a pending
// rebalance's target ring, when that differs from the current owner. The
// import path is id-preserving and idempotent, so racing the migration's
// copy passes is harmless — the song lands once whichever side wins.
func (c *Coordinator) dualWrite(ctx context.Context, top topology, song music.Song) error {
	if !top.reb.Active() {
		return nil
	}
	next := top.reb.To.Owner(song.Title)
	if next == "" || next == top.ring.Owner(song.Title) {
		return nil
	}
	g, ok := top.group(next)
	if !ok {
		return fmt.Errorf("coordinator: dual-write: future owner %q has no known replicas", next)
	}
	stream, err := replica.EncodeExport([]music.Song{song})
	if err != nil {
		return fmt.Errorf("coordinator: dual-write: %w", err)
	}
	var lastErr error
	for _, u := range c.writeOrder(g) {
		err := retry.Do(ctx, c.cfg.WriteAttempts, c.cfg.Backoff, func() (bool, time.Duration, error) {
			_, st, ra, err := c.postImport(ctx, u, stream)
			switch {
			case err == nil:
				return false, 0, nil
			case st == http.StatusMisdirectedRequest:
				return false, 0, err
			case st == http.StatusTooManyRequests || st >= 500 || st == 0:
				return true, ra, err
			default:
				return false, 0, err
			}
		})
		if err == nil {
			c.setPrimary(g.Name, u)
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("coordinator: dual-write to group %q failed: %w", next, lastErr)
}

// postImport performs one id-preserving import attempt against a replica.
// postImport ships an export container to one replica. It returns the
// number of songs newly applied there (the import is idempotent by id),
// the HTTP status (0 for transport errors) and any Retry-After hint.
func (c *Coordinator) postImport(ctx context.Context, baseURL string, stream []byte) (applied, status int, ra time.Duration, err error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.ReplicaTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, baseURL+membership.DefaultImportPath, bytes.NewReader(stream))
	if err != nil {
		return 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		ra, _ = retry.ParseRetryAfter(resp.Header)
		return 0, resp.StatusCode, ra, fmt.Errorf("%s: %s", baseURL, resp.Status)
	}
	var out struct {
		Applied int `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, resp.StatusCode, 0, fmt.Errorf("%s: decoding import reply: %w", baseURL, err)
	}
	return out.Applied, resp.StatusCode, 0, nil
}

// writeOrder lists the group's replicas with the cached primary first.
func (c *Coordinator) writeOrder(g GroupSpec) []string {
	c.mu.Lock()
	primary := c.primaries[g.Name]
	c.mu.Unlock()
	order := make([]string, 0, len(g.Replicas))
	if primary != "" {
		order = append(order, primary)
	}
	for _, u := range g.Replicas {
		if u != primary {
			order = append(order, u)
		}
	}
	return order
}

func (c *Coordinator) setPrimary(group, u string) {
	c.mu.Lock()
	c.primaries[group] = u
	c.mu.Unlock()
}

// groupStats fetches /stats from any live replica of the group.
func (c *Coordinator) groupStats(ctx context.Context, g GroupSpec) (StatsResponse, error) {
	var lastErr error
	for _, u := range g.Replicas {
		var out StatsResponse
		if err := c.getJSON(ctx, u+"/stats", &out); err != nil {
			lastErr = err
			continue
		}
		return out, nil
	}
	return StatsResponse{}, lastErr
}

func (c *Coordinator) getJSON(ctx context.Context, u string, out interface{}) error {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.ReplicaTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// NumSongs counts distinct songs across groups (migration copies dedupe
// by id); unreachable groups contribute zero (the catalogue endpoints are
// monitoring surfaces, not consistency ones).
func (c *Coordinator) NumSongs() int {
	return len(c.Songs())
}

// NumPhrases sums indexed phrases across groups.
func (c *Coordinator) NumPhrases() int {
	ctx := context.Background()
	total := 0
	for _, g := range c.topology().groups {
		if st, err := c.groupStats(ctx, g); err == nil {
			total += st.Phrases
		}
	}
	return total
}

// Songs merges the group catalogues, deduplicated by id (a rebalance
// leaves copies of the moving songs on their old owner) and sorted by id.
// Melodies are not shipped — the coordinator serves the catalogue
// listing, which only needs id, title and note count; NumNotes is
// approximated by a zero melody.
func (c *Coordinator) Songs() []music.Song {
	ctx := context.Background()
	var out []music.Song
	seen := map[int64]bool{}
	for _, g := range c.topology().groups {
		var infos []SongInfo
		var got bool
		for _, u := range g.Replicas {
			if err := c.getJSON(ctx, u+"/songs", &infos); err == nil {
				got = true
				break
			}
		}
		if !got {
			continue
		}
		for _, s := range infos {
			if seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			out = append(out, music.Song{ID: s.ID, Title: s.Title})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
