package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"warping/internal/index"
	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/retry"
	"warping/internal/ts"
)

// GroupSpec names one replicated shard group and its member base URLs.
// Any member may be the primary; the coordinator discovers which by
// probing and by reacting to 421 responses, so promotions do not require
// a coordinator restart.
type GroupSpec struct {
	Name     string
	Replicas []string
}

// CoordinatorConfig tunes the fan-out path. Zero values select defaults.
type CoordinatorConfig struct {
	// Groups is the cluster layout: one entry per shard group.
	Groups []GroupSpec
	// Opts must match the qbh.Options the replicas were built with; the
	// coordinator compiles query plans from it (qbh.NewQueryPlanner).
	Opts qbh.Options
	// ReplicaTimeout bounds each replica query attempt. Default 5s.
	ReplicaTimeout time.Duration
	// HedgeAfter is how long to wait on a replica before hedging the same
	// query to the group's next replica. The first response wins; the
	// loser is cancelled. Default 500ms.
	HedgeAfter time.Duration
	// WriteAttempts bounds write retries per replica (429/5xx/transport
	// errors back off and retry; 421 moves on to the next replica
	// immediately). Default 3.
	WriteAttempts int
	// Backoff paces write retries; Retry-After headers take precedence.
	Backoff retry.Backoff
	// Client is the HTTP client for all fan-out; nil builds a default.
	Client *http.Client
	// Logf receives fan-out diagnostics; nil selects log.Printf.
	Logf func(format string, args ...interface{})
}

func (c *CoordinatorConfig) fill() {
	if c.ReplicaTimeout <= 0 {
		c.ReplicaTimeout = 5 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 500 * time.Millisecond
	}
	if c.WriteAttempts <= 0 {
		c.WriteAttempts = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Coordinator implements Backend over a cluster of replicated shard
// groups, so NewBackend serves the ordinary public API in front of it.
// Queries compile to a plan once, fan out to one replica per group with
// per-replica timeouts and hedged retries, and merge top-K; when a whole
// group is unreachable the response is partial and marked degraded.
// Writes route to the owning group's primary with bounded retry.
type Coordinator struct {
	cfg  CoordinatorConfig
	plan func(ts.Series, float64) *index.Plan

	mu        sync.Mutex
	primaries map[string]string // group name -> last known primary URL

	rr atomic.Uint64 // rotates which replica each group's query starts at
}

// NewCoordinator builds the fan-out backend for a cluster layout.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.fill()
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("coordinator: no shard groups configured")
	}
	for _, g := range cfg.Groups {
		if len(g.Replicas) == 0 {
			return nil, fmt.Errorf("coordinator: group %q has no replicas", g.Name)
		}
	}
	return &Coordinator{
		cfg:       cfg,
		plan:      qbh.NewQueryPlanner(cfg.Opts),
		primaries: make(map[string]string),
	}, nil
}

// groupResult is one group's contribution to a fanned-out query.
type groupResult struct {
	resp *QueryResponse
	err  error
}

// QueryCtx implements the Backend query path: one plan, fanned to every
// group, merged. A group that fails entirely contributes nothing and
// flips stats.Degraded — the contract for partial results.
func (c *Coordinator) QueryCtx(ctx context.Context, pitch ts.Series, topK int, delta float64, lim index.Limits) ([]qbh.SongMatch, index.QueryStats, error) {
	if len(pitch) == 0 {
		return nil, index.QueryStats{}, nil
	}
	p := c.plan(pitch, delta)
	body, err := json.Marshal(PlannedRequest{Plan: p.Wire(), TopK: topK})
	if err != nil {
		return nil, index.QueryStats{}, err
	}

	results := make([]groupResult, len(c.cfg.Groups))
	var wg sync.WaitGroup
	for i, g := range c.cfg.Groups {
		wg.Add(1)
		go func(i int, g GroupSpec) {
			defer wg.Done()
			resp, err := c.queryGroup(ctx, g, body)
			results[i] = groupResult{resp, err}
		}(i, g)
	}
	wg.Wait()

	var stats index.QueryStats
	var matches []qbh.SongMatch
	failed := 0
	for i, r := range results {
		if r.err != nil {
			failed++
			c.cfg.Logf("coordinator: group %q unreachable: %v", c.cfg.Groups[i].Name, r.err)
			continue
		}
		stats.Add(index.QueryStats{
			Candidates:      r.resp.Candidates,
			CoarseSurvivors: r.resp.CoarseSurvivors,
			KeoghSurvivors:  r.resp.KeoghSurvivors,
			LBSurvivors:     r.resp.LBSurvivors,
			ExactDTW:        r.resp.ExactDTW,
			PageAccesses:    r.resp.PageAccesses,
			Degraded:        r.resp.Degraded,
		})
		for _, m := range r.resp.Matches {
			matches = append(matches, qbh.SongMatch{SongID: m.SongID, Title: m.Title, Dist: m.Dist})
		}
	}
	if failed == len(results) {
		// Nothing answered: that is an outage, not a degraded ranking.
		return nil, stats, fmt.Errorf("coordinator: all %d shard groups unreachable", failed)
	}
	if failed > 0 {
		stats.Degraded = true
	}
	// Re-sort the union of per-group top-Ks with the same total order the
	// replicas use ((Dist, SongID, Title)), then truncate to topK. Sorting
	// on Dist alone with sort.Slice is unstable: equal-distance matches
	// landing in different groups would be ordered by goroutine completion,
	// so repeated queries — or the same query against different shardings —
	// could return different rankings. With the full tie-break the merged
	// result is bit-identical to a single-node query over the union corpus.
	sort.Slice(matches, func(i, j int) bool {
		a, b := matches[i], matches[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if a.SongID != b.SongID {
			return a.SongID < b.SongID
		}
		return a.Title < b.Title
	})
	if len(matches) > topK {
		matches = matches[:topK]
	}
	return matches, stats, nil
}

// queryGroup asks one replica of the group, hedging to siblings: a second
// attempt launches when the first is slow (HedgeAfter) or fails, and the
// first successful response wins. The rotation spreads read load across
// replicas between queries.
//
// Dedupe invariant: the replicas of a group hold the same corpus, so when
// a hedge fires the group has two or more in-flight attempts that would
// each return the full per-group result. Exactly ONE response may reach
// the caller — the merge loop in QueryCtx sums QueryStats and concatenates
// matches per group, so a second response from a hedge loser would double
// both. The first `return r.resp, nil` below is that dedupe point: the
// deferred cancel() aborts the losers and their late sends land in the
// buffered channel (capacity len(order), so they never block) and are
// dropped with it.
func (c *Coordinator) queryGroup(ctx context.Context, g GroupSpec, body []byte) (*QueryResponse, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the hedge loser
	start := int(c.rr.Add(1))
	order := make([]string, len(g.Replicas))
	for i := range g.Replicas {
		order[i] = g.Replicas[(start+i)%len(g.Replicas)]
	}

	ch := make(chan groupResult, len(order))
	launched := 0
	launch := func() {
		u := order[launched]
		launched++
		go func() {
			resp, err := c.postPlanned(ctx, u, body)
			ch <- groupResult{resp, err}
		}()
	}
	launch()
	hedge := time.NewTimer(c.cfg.HedgeAfter)
	defer hedge.Stop()

	pending := 1
	var lastErr error
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.resp, nil
			}
			lastErr = r.err
			if launched < len(order) {
				launch()
				pending++
			}
		case <-hedge.C:
			if launched < len(order) {
				launch()
				pending++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func (c *Coordinator) postPlanned(ctx context.Context, baseURL string, body []byte) (*QueryResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ReplicaTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/query/planned", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", baseURL, resp.Status)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: decoding response: %w", baseURL, err)
	}
	return &out, nil
}

// groupFor places a song by rendezvous (highest-random-weight) hashing of
// its title: every coordinator instance computes the same owner with no
// shared state, and adding a group only moves the songs that rehash to it.
func (c *Coordinator) groupFor(title string) GroupSpec {
	best, bestScore := 0, uint64(0)
	for i, g := range c.cfg.Groups {
		h := fnv.New64a()
		_, _ = h.Write([]byte(g.Name))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(title))
		if s := h.Sum64(); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return c.cfg.Groups[best]
}

// AddSongTitled routes the write to the owning group's primary. The last
// known primary is tried first; a 421 (not the primary) moves on to the
// next replica, 429/5xx back off — honoring Retry-After — and retry the
// same one up to WriteAttempts times.
func (c *Coordinator) AddSongTitled(title string, melody music.Melody) (music.Song, error) {
	g := c.groupFor(title)
	midiData, err := midi.EncodeMelody(melody, 500000)
	if err != nil {
		return music.Song{}, fmt.Errorf("coordinator: encoding melody: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(len(g.Replicas)*c.cfg.WriteAttempts)*c.cfg.ReplicaTimeout)
	defer cancel()

	var lastErr error
	for _, u := range c.writeOrder(g) {
		var info SongInfo
		err := retry.Do(ctx, c.cfg.WriteAttempts, c.cfg.Backoff, func() (bool, time.Duration, error) {
			st, ra, err := c.postSong(ctx, u, title, midiData, &info)
			switch {
			case err == nil:
				return false, 0, nil
			case st == http.StatusMisdirectedRequest:
				return false, 0, err // wrong replica: stop retrying here, move on
			case st == http.StatusTooManyRequests || st >= 500 || st == 0:
				return true, ra, err
			default:
				return false, 0, err // 4xx: the request itself is bad
			}
		})
		if err == nil {
			c.setPrimary(g.Name, u)
			return music.Song{ID: info.ID, Title: info.Title, Melody: melody}, nil
		}
		lastErr = err
	}
	return music.Song{}, fmt.Errorf("coordinator: write to group %q failed: %w", g.Name, lastErr)
}

// writeOrder lists the group's replicas with the cached primary first.
func (c *Coordinator) writeOrder(g GroupSpec) []string {
	c.mu.Lock()
	primary := c.primaries[g.Name]
	c.mu.Unlock()
	order := make([]string, 0, len(g.Replicas))
	if primary != "" {
		order = append(order, primary)
	}
	for _, u := range g.Replicas {
		if u != primary {
			order = append(order, u)
		}
	}
	return order
}

func (c *Coordinator) setPrimary(group, u string) {
	c.mu.Lock()
	c.primaries[group] = u
	c.mu.Unlock()
}

// postSong performs one write attempt; it returns the HTTP status (0 for
// transport errors) and any Retry-After hint.
func (c *Coordinator) postSong(ctx context.Context, baseURL, title string, midiData []byte, out *SongInfo) (int, time.Duration, error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.ReplicaTimeout)
	defer cancel()
	u := baseURL + "/songs?title=" + url.QueryEscape(title)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, u, bytes.NewReader(midiData))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "audio/midi")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusCreated {
		ra, _ := retry.ParseRetryAfter(resp.Header)
		return resp.StatusCode, ra, fmt.Errorf("%s: %s", baseURL, resp.Status)
	}
	return resp.StatusCode, 0, json.NewDecoder(resp.Body).Decode(out)
}

// groupStats fetches /stats from any live replica of the group.
func (c *Coordinator) groupStats(ctx context.Context, g GroupSpec) (StatsResponse, error) {
	var lastErr error
	for _, u := range g.Replicas {
		var out StatsResponse
		if err := c.getJSON(ctx, u+"/stats", &out); err != nil {
			lastErr = err
			continue
		}
		return out, nil
	}
	return StatsResponse{}, lastErr
}

func (c *Coordinator) getJSON(ctx context.Context, u string, out interface{}) error {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.ReplicaTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", u, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// NumSongs sums songs across groups; unreachable groups contribute zero
// (the catalogue endpoints are monitoring surfaces, not consistency ones).
func (c *Coordinator) NumSongs() int {
	ctx := context.Background()
	total := 0
	for _, g := range c.cfg.Groups {
		if st, err := c.groupStats(ctx, g); err == nil {
			total += st.Songs
		}
	}
	return total
}

// NumPhrases sums indexed phrases across groups.
func (c *Coordinator) NumPhrases() int {
	ctx := context.Background()
	total := 0
	for _, g := range c.cfg.Groups {
		if st, err := c.groupStats(ctx, g); err == nil {
			total += st.Phrases
		}
	}
	return total
}

// Songs concatenates the group catalogues, sorted by id. Melodies are not
// shipped — the coordinator serves the catalogue listing, which only needs
// id, title and note count; NumNotes is approximated by a zero melody.
func (c *Coordinator) Songs() []music.Song {
	ctx := context.Background()
	var out []music.Song
	for _, g := range c.cfg.Groups {
		var infos []SongInfo
		var got bool
		for _, u := range g.Replicas {
			if err := c.getJSON(ctx, u+"/songs", &infos); err == nil {
				got = true
				break
			}
		}
		if !got {
			continue
		}
		for _, s := range infos {
			out = append(out, music.Song{ID: s.ID, Title: s.Title})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
