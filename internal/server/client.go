package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Client is a typed client for the QBH HTTP API, for programs embedding a
// remote humming-search service.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// Stats fetches database statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.getJSON("/stats", &out)
	return out, err
}

// Songs fetches the song catalogue.
func (c *Client) Songs() ([]SongInfo, error) {
	var out []SongInfo
	err := c.getJSON("/songs", &out)
	return out, err
}

// QueryWAV submits a mono 16-bit PCM WAV hum and returns ranked matches.
func (c *Client) QueryWAV(wavData []byte, topK int, delta float64) (QueryResponse, error) {
	var out QueryResponse
	err := c.postJSON("/query"+queryString(topK, delta), "audio/wav", wavData, &out)
	return out, err
}

// QueryPitch submits a pitch series (MIDI pitches, one per 10 ms frame;
// zeros mark silence) and returns ranked matches.
func (c *Client) QueryPitch(pitch []float64, topK int, delta float64) (QueryResponse, error) {
	body, err := json.Marshal(pitch)
	if err != nil {
		return QueryResponse{}, err
	}
	var out QueryResponse
	err = c.postJSON("/query/pitch"+queryString(topK, delta), "application/json", body, &out)
	return out, err
}

// AddSong uploads a Standard MIDI File and indexes its melody.
func (c *Client) AddSong(title string, midiData []byte) (SongInfo, error) {
	var out SongInfo
	err := c.postJSON("/songs?title="+url.QueryEscape(title), "audio/midi", midiData, &out)
	return out, err
}

func queryString(topK int, delta float64) string {
	return "?top=" + strconv.Itoa(topK) + "&delta=" + strconv.FormatFloat(delta, 'f', -1, 64)
}

func (c *Client) getJSON(path string, out interface{}) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) postJSON(path, contentType string, body []byte, out interface{}) error {
	resp, err := c.http.Post(c.base+path, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out interface{}) error {
	if resp.StatusCode >= 400 {
		var e errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (status %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
