package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"warping/internal/membership"
	"warping/internal/retry"
)

// Client is a typed client for the QBH HTTP API, for programs embedding a
// remote humming-search service. Every call has a context-aware variant;
// the plain methods use context.Background() with the configured default
// timeout. When the server sheds load (429), the client backs off —
// honoring the Retry-After header, with capped exponential backoff and
// jitter otherwise — and retries up to its attempt budget.
type Client struct {
	base     string
	http     *http.Client
	timeout  time.Duration
	attempts int
	backoff  retry.Backoff
	seeds    []string
}

// ClientConfig tunes the client; zero values select defaults.
type ClientConfig struct {
	// HTTPClient is the transport; nil selects http.DefaultClient.
	HTTPClient *http.Client
	// Timeout is the default per-request deadline applied when the
	// caller's context has none. Default 30s; negative disables.
	Timeout time.Duration
	// RetryAttempts is the total attempt budget when the server answers
	// 429. Default 3; 1 disables retry.
	RetryAttempts int
	// Backoff paces 429 retries when the server sends no Retry-After.
	Backoff retry.Backoff
	// Seeds are membership seed-server URLs. A 421 answer (the write
	// landed on a node that is not its group's primary) with no usable
	// Location or Retry-After makes the client fetch a fresh view from
	// the seeds and re-resolve the primary before retrying. Empty
	// disables view-based re-resolution; Location hints still work.
	Seeds []string
}

// NewClient creates a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return NewClientConfig(baseURL, ClientConfig{HTTPClient: httpClient})
}

// NewClientConfig creates a client with explicit timeout and retry policy.
func NewClientConfig(baseURL string, cfg ClientConfig) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 3
	}
	return &Client{
		base:     baseURL,
		http:     cfg.HTTPClient,
		timeout:  cfg.Timeout,
		attempts: cfg.RetryAttempts,
		backoff:  cfg.Backoff,
		seeds:    cfg.Seeds,
	}
}

// Stats fetches database statistics.
func (c *Client) Stats() (StatsResponse, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats with caller-controlled cancellation.
func (c *Client) StatsCtx(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", "", nil, &out)
	return out, err
}

// Songs fetches the song catalogue.
func (c *Client) Songs() ([]SongInfo, error) {
	return c.SongsCtx(context.Background())
}

// SongsCtx is Songs with caller-controlled cancellation.
func (c *Client) SongsCtx(ctx context.Context) ([]SongInfo, error) {
	var out []SongInfo
	err := c.do(ctx, http.MethodGet, "/songs", "", nil, &out)
	return out, err
}

// QueryWAV submits a mono 16-bit PCM WAV hum and returns ranked matches.
func (c *Client) QueryWAV(wavData []byte, topK int, delta float64) (QueryResponse, error) {
	return c.QueryWAVCtx(context.Background(), wavData, topK, delta)
}

// QueryWAVCtx is QueryWAV with caller-controlled cancellation.
func (c *Client) QueryWAVCtx(ctx context.Context, wavData []byte, topK int, delta float64) (QueryResponse, error) {
	var out QueryResponse
	err := c.do(ctx, http.MethodPost, "/query"+queryString(topK, delta), "audio/wav", wavData, &out)
	return out, err
}

// QueryPitch submits a pitch series (MIDI pitches, one per 10 ms frame;
// zeros mark silence) and returns ranked matches.
func (c *Client) QueryPitch(pitch []float64, topK int, delta float64) (QueryResponse, error) {
	return c.QueryPitchCtx(context.Background(), pitch, topK, delta)
}

// QueryPitchCtx is QueryPitch with caller-controlled cancellation.
func (c *Client) QueryPitchCtx(ctx context.Context, pitch []float64, topK int, delta float64) (QueryResponse, error) {
	body, err := json.Marshal(pitch)
	if err != nil {
		return QueryResponse{}, err
	}
	var out QueryResponse
	err = c.do(ctx, http.MethodPost, "/query/pitch"+queryString(topK, delta), "application/json", body, &out)
	return out, err
}

// AddSong uploads a Standard MIDI File and indexes its melody.
func (c *Client) AddSong(title string, midiData []byte) (SongInfo, error) {
	return c.AddSongCtx(context.Background(), title, midiData)
}

// AddSongCtx is AddSong with caller-controlled cancellation. A retried 429
// is safe: the server never indexed the rejected upload.
func (c *Client) AddSongCtx(ctx context.Context, title string, midiData []byte) (SongInfo, error) {
	var out SongInfo
	err := c.do(ctx, http.MethodPost, "/songs?title="+url.QueryEscape(title), "audio/midi", midiData, &out)
	return out, err
}

func queryString(topK int, delta float64) string {
	return "?top=" + strconv.Itoa(topK) + "&delta=" + strconv.FormatFloat(delta, 'f', -1, 64)
}

// do runs one logical API call: default deadline, request build, 429/421
// retry loop. A transport error never retries — a POST may have reached
// the server — and statuses other than 429 (congestion) and 421
// (misdirected write, reroutable) are answers, not conditions to wait out.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out interface{}) error {
	if c.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	target := c.base
	return retry.Do(ctx, c.attempts, c.backoff, func() (bool, time.Duration, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, target+path, rd)
		if err != nil {
			return false, 0, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return false, 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			ra, _ := retry.ParseRetryAfter(resp.Header)
			return true, ra, decodeResponse(resp, nil)
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			if next, ra, ok := c.reroute(resp.Header, target); ok {
				target = next
				return true, ra, decodeResponse(resp, nil)
			}
		}
		return false, 0, decodeResponse(resp, out)
	})
}

// reroute picks the next target for a misdirected (421) write, in hint
// order: the Location header (a follower names its primary directly), a
// bare Retry-After (the target is mid-promotion and will be the primary
// shortly — stay and wait), and finally a fresh membership view from the
// seeds. Reports ok=false when no hint yields a target, which turns the
// 421 into the call's final answer.
func (c *Client) reroute(hdr http.Header, cur string) (next string, delay time.Duration, ok bool) {
	if loc := hdr.Get("Location"); loc != "" {
		if u, err := url.Parse(loc); err == nil && u.Scheme != "" && u.Host != "" {
			return u.Scheme + "://" + u.Host, 0, true
		}
	}
	if ra, ok := retry.ParseRetryAfter(hdr); ok {
		return cur, ra, true
	}
	if next := c.resolvePrimary(cur); next != "" {
		return next, 0, true
	}
	return "", 0, false
}

// resolvePrimary maps a stale write target to its group's current
// unfenced primary via a fresh seed view. A target the view no longer
// knows falls back to the view's sole group, if there is exactly one —
// the common single-group deployment where the stale URL already left
// the cluster. The current target is never returned: it just answered
// 421, so re-sending unrerouted is a wasted attempt.
func (c *Client) resolvePrimary(cur string) string {
	if len(c.seeds) == 0 {
		return ""
	}
	v, err := membership.FetchView(c.http, c.seeds)
	if err != nil {
		return ""
	}
	group := ""
	for _, rec := range v.Nodes {
		if rec.URL == cur {
			group = rec.Group
			break
		}
	}
	if group == "" {
		gs := v.Groups()
		if len(gs) != 1 {
			return ""
		}
		group = gs[0]
	}
	for _, rec := range v.GroupNodes(group) {
		if rec.Role == membership.RolePrimary && !rec.Fenced && rec.URL != "" && rec.URL != cur {
			return rec.URL
		}
	}
	return ""
}

// decodeResponse interprets one API response and always drains and closes
// the body, error path included, so the underlying connection returns to
// the keep-alive pool instead of being torn down.
func decodeResponse(resp *http.Response, out interface{}) error {
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		var e errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (status %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: status %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
