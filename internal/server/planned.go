package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"warping/internal/index"
	"warping/internal/qbh"
)

// plannedQuerier is implemented by backends that can execute a
// precomputed query plan without redoing the envelope transform
// (*qbh.Concurrent, *qbh.Durable, replica nodes). The coordinator ships
// plans to replicas through POST /query/planned.
type plannedQuerier interface {
	QueryPlanCtx(ctx context.Context, p *index.Plan, topK int, lim index.Limits) ([]qbh.SongMatch, index.QueryStats, error)
}

// keyedPlannedQuerier is the cache-aware superset of plannedQuerier: the
// coordinator computes the quantized cache key once and ships it with the
// plan, so every replica looks up (and fills) its result cache under the
// same identity without requantizing.
type keyedPlannedQuerier interface {
	QueryPlanKeyCtx(ctx context.Context, p *index.Plan, topK int, lim index.Limits, key string) ([]qbh.SongMatch, index.QueryStats, error)
}

// PlannedRequest is the POST /query/planned payload: a serialized query
// plan — normal form, k-envelope, feature box, all computed once by the
// coordinator — plus the result count and the coordinator-computed result
// cache key (empty when the coordinator predates caching; the replica
// then derives its own key).
type PlannedRequest struct {
	Plan     index.PlanWire `json:"plan"`
	TopK     int            `json:"top"`
	CacheKey string         `json:"cache_key,omitempty"`
}

// Handle registers an additional route on the handler's mux — replication
// endpoints (replica.Node.Mount) and anything else that should share the
// server's panic containment.
func (h *Handler) Handle(pattern string, handler http.Handler) {
	h.mux.Handle(pattern, handler)
}

// EnablePlannedQueries registers POST /query/planned. It is separate from
// NewBackend because only cluster members need it: the endpoint trusts the
// shipped envelope (structural validation only), which is fine between a
// coordinator and its replicas but not for the public edge.
func (h *Handler) EnablePlannedQueries() {
	h.mux.HandleFunc("/query/planned", h.handleQueryPlanned)
}

func (h *Handler) handleQueryPlanned(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST with a plan body")
		return
	}
	pq, ok := h.sys.(plannedQuerier)
	if !ok {
		httpError(w, http.StatusNotImplemented, "backend cannot execute shipped plans")
		return
	}
	if !h.admit(w, r) {
		return
	}
	defer h.release()
	var req PlannedRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "parsing plan: %v", err)
		return
	}
	if req.TopK < 1 || req.TopK > 100 {
		httpError(w, http.StatusBadRequest, "invalid top %d", req.TopK)
		return
	}
	plan, err := index.PlanFromWire(req.Plan)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if h.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.cfg.QueryTimeout)
		defer cancel()
	}
	lim := index.Limits{MaxExactDTW: h.cfg.MaxExactDTW, CandidateHook: h.candidateHook}
	var matches []qbh.SongMatch
	var stats index.QueryStats
	if kq, ok := pq.(keyedPlannedQuerier); ok && req.CacheKey != "" {
		matches, stats, err = kq.QueryPlanKeyCtx(ctx, plan, req.TopK, lim, req.CacheKey)
	} else {
		matches, stats, err = pq.QueryPlanCtx(ctx, plan, req.TopK, lim)
	}
	if err != nil {
		// A plan/index mismatch is the caller's fault; anything else is a
		// deadline or cancellation, as in respondQuery.
		if ctx.Err() == nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		httpError(w, http.StatusServiceUnavailable, "query aborted: %v", err)
		return
	}
	resp := QueryResponse{
		VoicedFrames:    plan.SeriesLen(),
		Candidates:      stats.Candidates,
		CoarseSurvivors: stats.CoarseSurvivors,
		KeoghSurvivors:  stats.KeoghSurvivors,
		LBSurvivors:     stats.LBSurvivors,
		ExactDTW:        stats.ExactDTW,
		LogicalPages:    stats.LogicalPages,
		PageAccesses:    stats.PageAccesses,
		Degraded:        stats.Degraded,
		Cached:          stats.Cached,
	}
	for _, m := range matches {
		resp.Matches = append(resp.Matches, MatchResponse{SongID: m.SongID, Title: m.Title, Dist: m.Dist})
	}
	writeJSON(w, resp)
}
