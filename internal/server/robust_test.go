package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"warping/internal/hum"
	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/qbh"
)

// newRobustServer builds a handler with explicit limits and returns it
// alongside the test server so tests can reach unexported knobs.
func newRobustServer(t *testing.T, cfg Config) (*Handler, *httptest.Server, []music.Song) {
	t.Helper()
	songs := music.BuiltinSongs()
	sys, err := qbh.Build(songs, qbh.Options{PhraseMin: 8, PhraseMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithConfig(sys, cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return h, srv, songs
}

func pitchBody(t *testing.T, songs []music.Song, seed int64) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pitch := hum.GoodSinger().RenderPitch(songs[0].Melody, r)
	body, err := json.Marshal([]float64(pitch))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestAdmissionControl429(t *testing.T) {
	h, srv, songs := newRobustServer(t, Config{MaxConcurrent: 1, QueueTimeout: 50 * time.Millisecond})
	inHook := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	h.candidateHook = func() {
		once.Do(func() {
			close(inHook)
			<-release
		})
	}

	body := pitchBody(t, songs, 46)
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/query/pitch?top=1", "application/json", bytes.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		defer resp.Body.Close()
		firstDone <- resp.StatusCode
	}()

	// Wait until the first query holds the only admission slot.
	select {
	case <-inHook:
	case <-time.After(5 * time.Second):
		t.Fatal("first query never reached verification")
	}

	// The slot is occupied: a second query must be shed with 429.
	resp, err := http.Post(srv.URL+"/query/pitch?top=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first query finished with %d, want 200", code)
	}
}

func TestQueryDeadline503(t *testing.T) {
	h, srv, songs := newRobustServer(t, Config{QueryTimeout: 30 * time.Millisecond})
	h.candidateHook = func() { time.Sleep(10 * time.Millisecond) }
	start := time.Now()
	resp, err := http.Post(srv.URL+"/query/pitch?top=1", "application/json", bytes.NewReader(pitchBody(t, songs, 47)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timed-out query took %v", elapsed)
	}
}

func TestDegradedResponse(t *testing.T) {
	_, srv, songs := newRobustServer(t, Config{MaxExactDTW: 1})
	resp, err := http.Post(srv.URL+"/query/pitch?top=3", "application/json", bytes.NewReader(pitchBody(t, songs, 48)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Degraded {
		t.Error("budget-capped query not marked degraded")
	}
	if qr.ExactDTW > 1 {
		t.Errorf("ExactDTW = %d with budget 1", qr.ExactDTW)
	}
}

func TestOversizedBody413(t *testing.T) {
	_, srv, _ := newRobustServer(t, Config{MaxBodyBytes: 1024})
	big := bytes.Repeat([]byte("a"), 4096)
	// /query/pitch parses JSON incrementally, so the body must be valid
	// JSON long enough to cross the cap before the parser can object.
	bigJSON := []byte("[" + string(bytes.Repeat([]byte("60,"), 2000)) + "60]")
	for _, c := range []struct {
		path string
		body []byte
	}{
		{"/query", big},
		{"/query/pitch", bigJSON},
		{"/songs", big},
	} {
		resp, err := http.Post(srv.URL+c.path, "application/octet-stream", bytes.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", c.path, resp.StatusCode)
		}
	}
}

func TestPitchValidation(t *testing.T) {
	_, srv, _ := newRobustServer(t, Config{MaxPitchFrames: 100})
	long := make([]float64, 200)
	for i := range long {
		long[i] = 60
	}
	body, _ := json.Marshal(long)
	resp, err := http.Post(srv.URL+"/query/pitch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over-cap pitch array: status %d, want 400", resp.StatusCode)
	}
	// Non-finite values cannot arrive through strict JSON, but the
	// validator must still reject them (defense in depth for future
	// ingestion paths).
	if err := validatePitch([]float64{60, math.NaN()}, 100); err == nil {
		t.Error("NaN accepted")
	}
	if err := validatePitch([]float64{60, math.Inf(1)}, 100); err == nil {
		t.Error("+Inf accepted")
	}
	if err := validatePitch([]float64{60, 62, 64}, 100); err != nil {
		t.Errorf("valid pitch rejected: %v", err)
	}
}

func TestPanicRecovery(t *testing.T) {
	h, srv, songs := newRobustServer(t, Config{})
	h.candidateHook = func() { panic("injected fault") }
	resp, err := http.Post(srv.URL+"/query/pitch?top=1", "application/json", bytes.NewReader(pitchBody(t, songs, 49)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	// The process (and handler) must keep serving after the panic.
	h.candidateHook = nil
	resp2, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic /stats status %d", resp2.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	h, srv, _ := newRobustServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	h.SetReady(false)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz: status %d, want 503", resp.StatusCode)
	}
	// Liveness is unaffected by draining.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz: status %d, want 200", resp2.StatusCode)
	}
}

// TestConcurrentUploadsUniqueIDs is the server-level TOCTOU regression
// test: parallel POST /songs must produce distinct ids.
func TestConcurrentUploadsUniqueIDs(t *testing.T) {
	_, srv, _ := newRobustServer(t, Config{MaxConcurrent: 8})
	const uploads = 8
	bodies := make([][]byte, uploads)
	for i := range bodies {
		tune := music.GenerateMelody(rand.New(rand.NewSource(int64(400+i))), 40)
		data, err := midi.EncodeMelody(tune, 500000)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = data
	}
	ids := make(chan int64, uploads)
	var wg sync.WaitGroup
	for i := 0; i < uploads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(fmt.Sprintf("%s/songs?title=Up%d", srv.URL, i), "audio/midi", bytes.NewReader(bodies[i]))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("upload %d: status %d", i, resp.StatusCode)
				return
			}
			var info SongInfo
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				t.Error(err)
				return
			}
			ids <- info.ID
		}(i)
	}
	wg.Wait()
	close(ids)
	seen := map[int64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate song id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != uploads {
		t.Fatalf("%d unique ids for %d uploads", len(seen), uploads)
	}
}
