package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"warping/internal/hum"
	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/wav"
)

func newTestServer(t *testing.T) (*httptest.Server, []music.Song) {
	t.Helper()
	songs := music.BuiltinSongs()
	for _, s := range music.GenerateSongs(41, 30, 150, 250) {
		s.ID += int64(len(music.BuiltinSongs()))
		songs = append(songs, s)
	}
	sys, err := qbh.Build(songs, qbh.Options{PhraseMin: 8, PhraseMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(sys))
	t.Cleanup(srv.Close)
	return srv, songs
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestStats(t *testing.T) {
	srv, songs := newTestServer(t)
	var stats StatsResponse
	resp := getJSON(t, srv.URL+"/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if stats.Songs != len(songs) || stats.Phrases == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Shards == nil {
		t.Fatal("/stats has no shards section")
	}
	if stats.Shards.Count != 1 || stats.Shards.Backend != "rtree" {
		t.Errorf("shards = %+v, want 1 rtree shard", stats.Shards)
	}
}

// A sharded system surfaces its partition layout in /stats, and the
// per-shard lens account for every phrase.
func TestStatsShardedLayout(t *testing.T) {
	songs := music.GenerateSongs(43, 20, 150, 250)
	sys, err := qbh.Build(songs, qbh.Options{PhraseMin: 8, PhraseMax: 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(sys))
	t.Cleanup(srv.Close)
	var stats StatsResponse
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.Shards == nil {
		t.Fatal("/stats has no shards section")
	}
	if stats.Shards.Count != 4 || len(stats.Shards.Lens) != 4 {
		t.Fatalf("shards = %+v, want 4", stats.Shards)
	}
	total := 0
	for _, n := range stats.Shards.Lens {
		total += n
	}
	if total != stats.Phrases {
		t.Errorf("shard lens sum %d, want %d phrases", total, stats.Phrases)
	}
}

func TestSongsList(t *testing.T) {
	srv, songs := newTestServer(t)
	var list []SongInfo
	getJSON(t, srv.URL+"/songs", &list)
	if len(list) != len(songs) {
		t.Fatalf("got %d songs", len(list))
	}
	if list[0].Title != songs[0].Title || list[0].Notes == 0 {
		t.Errorf("first song = %+v", list[0])
	}
}

func TestQueryWAV(t *testing.T) {
	srv, songs := newTestServer(t)
	r := rand.New(rand.NewSource(42))
	audio := hum.GoodSinger().RenderAudio(songs[1].Melody, r)
	var buf bytes.Buffer
	if err := wav.Encode(&buf, audio, 8000); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/query?top=3&delta=0.1", "audio/wav", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Matches) != 3 || qr.VoicedFrames == 0 || qr.PageAccesses == 0 {
		t.Fatalf("response = %+v", qr)
	}
	if qr.Matches[0].SongID != songs[1].ID {
		t.Errorf("top match %+v, want song %d", qr.Matches[0], songs[1].ID)
	}
	// Every exact DTW verification is an LB survivor, and the server must
	// surface the cumulative counts across growth rounds.
	if qr.LBSurvivors != qr.ExactDTW {
		t.Errorf("LBSurvivors = %d, ExactDTW = %d; want equal", qr.LBSurvivors, qr.ExactDTW)
	}
}

func TestQueryPitch(t *testing.T) {
	srv, songs := newTestServer(t)
	r := rand.New(rand.NewSource(43))
	pitch := hum.GoodSinger().RenderPitch(songs[2].Melody, r)
	body, _ := json.Marshal([]float64(pitch))
	resp, err := http.Post(srv.URL+"/query/pitch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Matches) == 0 || qr.Matches[0].SongID != songs[2].ID {
		t.Fatalf("response = %+v", qr)
	}
}

func TestAddSongThenQuery(t *testing.T) {
	srv, _ := newTestServer(t)
	// Upload a new tune as MIDI.
	tune := music.GenerateMelody(rand.New(rand.NewSource(44)), 60)
	data, err := midi.EncodeMelody(tune, 500000)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/songs?title=Fresh+Upload", "audio/midi", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var info SongInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Title != "Fresh Upload" {
		t.Errorf("info = %+v", info)
	}
	// Query with a rendition of one phrase of the uploaded tune (the
	// database matches whole phrases).
	r := rand.New(rand.NewSource(45))
	phrase := music.SegmentPhrases(tune, 8, 20)[0]
	pitch := hum.GoodSinger().RenderPitch(phrase, r)
	body, _ := json.Marshal([]float64(pitch))
	qresp, err := http.Post(srv.URL+"/query/pitch?top=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(qresp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Matches) != 1 || qr.Matches[0].SongID != info.ID {
		t.Fatalf("uploaded song not retrieved: %+v", qr)
	}
}

func TestErrorPaths(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"stats wrong method", func() (*http.Response, error) {
			return http.Post(srv.URL+"/stats", "", nil)
		}, http.StatusMethodNotAllowed},
		{"query wrong method", func() (*http.Response, error) {
			return http.Get(srv.URL + "/query")
		}, http.StatusMethodNotAllowed},
		{"query bad wav", func() (*http.Response, error) {
			return http.Post(srv.URL+"/query", "audio/wav", bytes.NewReader([]byte("junk")))
		}, http.StatusBadRequest},
		{"query bad top", func() (*http.Response, error) {
			return http.Post(srv.URL+"/query?top=0", "audio/wav", bytes.NewReader(nil))
		}, http.StatusBadRequest},
		{"query bad delta", func() (*http.Response, error) {
			return http.Post(srv.URL+"/query?delta=7", "audio/wav", bytes.NewReader(nil))
		}, http.StatusBadRequest},
		{"pitch bad json", func() (*http.Response, error) {
			return http.Post(srv.URL+"/query/pitch", "application/json", bytes.NewReader([]byte("{")))
		}, http.StatusBadRequest},
		{"pitch too short", func() (*http.Response, error) {
			return http.Post(srv.URL+"/query/pitch", "application/json", bytes.NewReader([]byte("[60,60]")))
		}, http.StatusBadRequest},
		{"add song bad midi", func() (*http.Response, error) {
			return http.Post(srv.URL+"/songs", "audio/midi", bytes.NewReader([]byte("nope")))
		}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (error %q)", c.name, resp.StatusCode, c.status, e.Error)
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv, songs := newTestServer(t)
	r := rand.New(rand.NewSource(46))
	// Pre-render performances (rand.Rand is not goroutine-safe).
	bodies := make([][]byte, 8)
	for i := range bodies {
		pitch := hum.GoodSinger().RenderPitch(songs[i%5].Melody, r)
		bodies[i], _ = json.Marshal([]float64(pitch))
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(bodies))
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b []byte) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/query/pitch?top=1", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var qr QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				errs <- err
				return
			}
			if len(qr.Matches) != 1 {
				errs <- fmt.Errorf("request %d: %d matches", i, len(qr.Matches))
			}
		}(i, b)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
