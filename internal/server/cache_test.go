package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"warping/internal/music"
	"warping/internal/pager"
	"warping/internal/qbh"
)

// End-to-end cache contract: the first /query/pitch executes and is not
// marked cached, the identical repeat is served from cache with
// "cached": true and the same matches, /stats grows a result_cache block
// with a sane hit rate, and an upload invalidates the entry.
func TestQueryCachedMarker(t *testing.T) {
	songs := music.BuiltinSongs()
	sys, err := qbh.Build(songs, qbh.Options{PhraseMin: 8, PhraseMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableResultCache(1 << 20)
	srv := httptest.NewServer(New(sys))
	t.Cleanup(srv.Close)

	pitch, err := json.Marshal([]float64(music.OdeToJoy().TimeSeries()))
	if err != nil {
		t.Fatal(err)
	}
	post := func() QueryResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/query/pitch?top=3", "application/json", bytes.NewReader(pitch))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}

	first := post()
	if first.Cached {
		t.Fatal("first query marked cached")
	}
	if len(first.Matches) == 0 {
		t.Fatal("no matches for a builtin melody")
	}
	repeat := post()
	if !repeat.Cached {
		t.Fatal("repeat query not marked cached")
	}
	if len(repeat.Matches) != len(first.Matches) || repeat.Matches[0] != first.Matches[0] {
		t.Fatalf("cached matches diverge: %+v vs %+v", repeat.Matches, first.Matches)
	}

	var stats StatsResponse
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.ResultCache == nil {
		t.Fatal("/stats has no result_cache block with the cache enabled")
	}
	rc := stats.ResultCache
	if rc.Hits != 1 || rc.Misses != 1 || rc.Entries == 0 {
		t.Fatalf("result_cache = %+v, want 1 hit / 1 miss", rc)
	}
	if rc.HitRate != 0.5 {
		t.Fatalf("hit_rate = %v, want 0.5", rc.HitRate)
	}

	// An upload bumps the corpus epoch: the same query re-executes.
	mid, err := sys.AddSongTitled("invalidator", music.TwinkleTwinkle())
	if err != nil {
		t.Fatal(err)
	}
	_ = mid
	after := post()
	if after.Cached {
		t.Fatal("query after upload served a stale cache entry")
	}
}

// A backend without the cache enabled has no result_cache block, and the
// hit_rate field never reports the pool's optimistic untouched value.
func TestStatsNoCacheBlockWhenDisabled(t *testing.T) {
	sys, err := qbh.Build(music.BuiltinSongs(), qbh.Options{PhraseMin: 8, PhraseMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(sys))
	t.Cleanup(srv.Close)
	var stats StatsResponse
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.ResultCache != nil {
		t.Fatalf("result_cache present with cache disabled: %+v", stats.ResultCache)
	}
}

// poolStubBackend reports an untouched buffer pool: zero lookups. The
// pager's Stats.HitRate is optimistically 1 in that state, but /stats
// must report 0 — a monitoring surface cannot claim a perfect hit rate
// before the first lookup.
type poolStubBackend struct {
	Backend
	st pager.Stats
}

func (p *poolStubBackend) PoolStats() (pager.Stats, bool) { return p.st, true }

func TestStatsBufferPoolHitRateUntouched(t *testing.T) {
	sys, err := qbh.Build(music.BuiltinSongs(), qbh.Options{PhraseMin: 8, PhraseMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	stub := &poolStubBackend{Backend: qbh.NewConcurrent(sys), st: pager.Stats{PageSize: 4096, PoolPages: 8}}
	srv := httptest.NewServer(NewBackend(stub, Config{}))
	t.Cleanup(srv.Close)
	var stats StatsResponse
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.BufferPool == nil {
		t.Fatal("/stats has no buffer_pool block")
	}
	if stats.BufferPool.HitRate != 0 {
		t.Fatalf("untouched pool hit_rate = %v, want 0", stats.BufferPool.HitRate)
	}
	// Once lookups happen the real ratio is reported.
	stub.st.Hits, stub.st.Misses = 3, 1
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.BufferPool.HitRate != 0.75 {
		t.Fatalf("hit_rate = %v, want 0.75", stats.BufferPool.HitRate)
	}
}
