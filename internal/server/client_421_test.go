package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"warping/internal/membership"
)

// fakeWriteNode is a stand-in for one replica HTTP server in the 421
// tests: respond decides each POST /songs answer, hits counts them.
type fakeWriteNode struct {
	srv  *httptest.Server
	hits atomic.Int32
}

func newFakeWriteNode(respond func(hit int32, w http.ResponseWriter, r *http.Request)) *fakeWriteNode {
	n := &fakeWriteNode{}
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		respond(n.hits.Add(1), w, r)
	}))
	return n
}

func accept(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write([]byte(`{"id":7,"title":"t","notes":1}`))
}

func misdirect(w http.ResponseWriter, hdr map[string]string) {
	for k, v := range hdr {
		w.Header().Set(k, v)
	}
	httpError(w, http.StatusMisdirectedRequest, "not the primary")
}

// seedServer serves a membership view at the registry's view path — the
// client's re-resolution source.
func seedServer(t *testing.T, view func() membership.View) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != membership.PathView {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write(membership.EncodeView(view()))
	}))
}

// TestClient421Reroute drives the misdirected-write handling through its
// hint ladder: Location header, Retry-After, seed-view re-resolution —
// and the bounded failure paths when no hint resolves.
func TestClient421Reroute(t *testing.T) {
	rec := func(id, url, group, role string, fenced bool) membership.NodeRecord {
		return membership.NodeRecord{ID: id, URL: url, Group: group, Role: role, Fenced: fenced}
	}
	cases := []struct {
		name string
		// build returns the client config (seeds etc.) and the stale
		// target's URL; primary is the node that must take the write.
		run func(t *testing.T, primary *fakeWriteNode) (ClientConfig, string)
		// wantErr, when non-empty, must appear in the final error.
		wantErr string
		// wantPrimaryHits is the expected write count on primary.
		wantPrimaryHits int32
	}{
		{
			// A follower that knows its primary answers 421 with a
			// Location hint; no seeds needed.
			name: "location hint",
			run: func(t *testing.T, primary *fakeWriteNode) (ClientConfig, string) {
				stale := newFakeWriteNode(func(_ int32, w http.ResponseWriter, r *http.Request) {
					misdirect(w, map[string]string{"Location": primary.srv.URL + r.URL.RequestURI()})
				})
				t.Cleanup(stale.srv.Close)
				return ClientConfig{}, stale.srv.URL
			},
			wantPrimaryHits: 1,
		},
		{
			// A node mid-promotion sends Retry-After with no Location:
			// the client stays on the same target and the second attempt
			// lands after the promotion completes.
			name: "mid-promotion retry-after",
			run: func(t *testing.T, primary *fakeWriteNode) (ClientConfig, string) {
				return ClientConfig{}, primary.srv.URL
			},
			wantPrimaryHits: 2,
		},
		{
			// A stale ring pointed the write at a demoted node that has
			// no hint to offer; the seed view maps the target to its
			// group and the group to its current primary.
			name: "stale ring via seed view",
			run: func(t *testing.T, primary *fakeWriteNode) (ClientConfig, string) {
				stale := newFakeWriteNode(func(_ int32, w http.ResponseWriter, _ *http.Request) {
					misdirect(w, nil)
				})
				t.Cleanup(stale.srv.Close)
				seed := seedServer(t, func() membership.View {
					return membership.View{Nodes: map[string]membership.NodeRecord{
						"old": rec("old", stale.srv.URL, "g", membership.RoleFollower, false),
						"new": rec("new", primary.srv.URL, "g", membership.RolePrimary, false),
					}}
				})
				t.Cleanup(seed.Close)
				return ClientConfig{Seeds: []string{seed.URL}}, stale.srv.URL
			},
			wantPrimaryHits: 1,
		},
		{
			// Mid-promotion with a fenced old primary: the view still
			// carries the fenced record; re-resolution must skip it and
			// pick the unfenced successor.
			name: "fenced old primary via seed view",
			run: func(t *testing.T, primary *fakeWriteNode) (ClientConfig, string) {
				fenced := newFakeWriteNode(func(_ int32, w http.ResponseWriter, _ *http.Request) {
					misdirect(w, nil)
				})
				t.Cleanup(fenced.srv.Close)
				seed := seedServer(t, func() membership.View {
					return membership.View{Nodes: map[string]membership.NodeRecord{
						"old": rec("old", fenced.srv.URL, "g", membership.RolePrimary, true),
						"new": rec("new", primary.srv.URL, "g", membership.RolePrimary, false),
					}}
				})
				t.Cleanup(seed.Close)
				return ClientConfig{Seeds: []string{seed.URL}}, fenced.srv.URL
			},
			wantPrimaryHits: 1,
		},
		{
			// The target already left the cluster; with exactly one
			// group in the view, its primary takes the write anyway.
			name: "departed target, single-group fallback",
			run: func(t *testing.T, primary *fakeWriteNode) (ClientConfig, string) {
				gone := newFakeWriteNode(func(_ int32, w http.ResponseWriter, _ *http.Request) {
					misdirect(w, nil)
				})
				t.Cleanup(gone.srv.Close)
				seed := seedServer(t, func() membership.View {
					return membership.View{Nodes: map[string]membership.NodeRecord{
						"new": rec("new", primary.srv.URL, "g", membership.RolePrimary, false),
					}}
				})
				t.Cleanup(seed.Close)
				return ClientConfig{Seeds: []string{seed.URL}}, gone.srv.URL
			},
			wantPrimaryHits: 1,
		},
		{
			// No Location, no Retry-After, no seeds: the 421 is final
			// after a single attempt — nothing to reroute with.
			name: "no hints, no seeds",
			run: func(t *testing.T, _ *fakeWriteNode) (ClientConfig, string) {
				stale := newFakeWriteNode(func(_ int32, w http.ResponseWriter, _ *http.Request) {
					misdirect(w, nil)
				})
				t.Cleanup(stale.srv.Close)
				return ClientConfig{}, stale.srv.URL
			},
			wantErr: "status 421",
		},
		{
			// The view knows only the misdirected target itself; with no
			// other unfenced primary the 421 is final, not an infinite
			// self-retry.
			name: "view has no successor",
			run: func(t *testing.T, _ *fakeWriteNode) (ClientConfig, string) {
				stale := newFakeWriteNode(func(_ int32, w http.ResponseWriter, _ *http.Request) {
					misdirect(w, nil)
				})
				t.Cleanup(stale.srv.Close)
				seed := seedServer(t, func() membership.View {
					return membership.View{Nodes: map[string]membership.NodeRecord{
						"old": rec("old", stale.srv.URL, "g", membership.RolePrimary, false),
					}}
				})
				t.Cleanup(seed.Close)
				return ClientConfig{Seeds: []string{seed.URL}}, stale.srv.URL
			},
			wantErr: "status 421",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			primary := newFakeWriteNode(func(hit int32, w http.ResponseWriter, r *http.Request) {
				// For the retry-after case the first write arrives
				// mid-promotion; every other case accepts immediately.
				if tc.name == "mid-promotion retry-after" && hit == 1 {
					misdirect(w, map[string]string{"Retry-After": "0"})
					return
				}
				accept(w, r)
			})
			t.Cleanup(primary.srv.Close)

			cfg, target := tc.run(t, primary)
			cfg.Timeout = 5 * time.Second
			cfg.RetryAttempts = 3
			cfg.Backoff = testBackoff
			client := NewClientConfig(target, cfg)

			info, err := client.AddSong("t", []byte("MThd"))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("AddSong error = %v, want %q", err, tc.wantErr)
				}
				if primary.hits.Load() != 0 {
					t.Fatalf("primary took %d writes on a failing case", primary.hits.Load())
				}
				return
			}
			if err != nil {
				t.Fatalf("AddSong: %v", err)
			}
			if info.ID != 7 {
				t.Fatalf("AddSong returned %+v from the wrong server", info)
			}
			if got := primary.hits.Load(); got != tc.wantPrimaryHits {
				t.Fatalf("primary hits = %d, want %d", got, tc.wantPrimaryHits)
			}
		})
	}
}
