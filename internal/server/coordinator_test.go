package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"warping/internal/hum"
	"warping/internal/index"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/replica"
	"warping/internal/retry"
	"warping/internal/store"
	"warping/internal/ts"
)

var clusterOpts = qbh.Options{PhraseMin: 8, PhraseMax: 20}

var testBackoff = retry.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond}

// clusterGroup is one replicated shard group running in-process.
type clusterGroup struct {
	spec    GroupSpec
	nodes   []*replica.Node
	servers []*httptest.Server
}

func (g *clusterGroup) close() {
	for _, srv := range g.servers {
		srv.Close()
	}
}

// startGroup brings up a primary plus followers, all seeded with the same
// base corpus, each serving the full API + replication endpoints.
func startGroup(t *testing.T, name string, base []music.Song, followers int) *clusterGroup {
	t.Helper()
	g := &clusterGroup{spec: GroupSpec{Name: name}}
	openNode := func(cfg replica.NodeConfig) *replica.Node {
		dir := t.TempDir()
		d, err := qbh.OpenDurable(dir, qbh.DurableOptions{
			FS:                 store.OS(),
			Logf:               func(string, ...interface{}) {},
			SnapshotWALRecords: -1,
			SnapshotWALBytes:   -1,
			Build:              func() (*qbh.System, error) { return qbh.Build(base, clusterOpts) },
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.FollowerID = dir
		cfg.Backoff = testBackoff
		cfg.PollWait = 200 * time.Millisecond
		cfg.Logf = func(string, ...interface{}) {}
		n, err := replica.NewNode(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		h := NewBackend(n, Config{})
		h.EnablePlannedQueries()
		n.Mount(h)
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		g.nodes = append(g.nodes, n)
		g.servers = append(g.servers, srv)
		g.spec.Replicas = append(g.spec.Replicas, srv.URL)
		return n
	}
	openNode(replica.NodeConfig{Group: name, Role: replica.RolePrimary})
	for i := 0; i < followers; i++ {
		openNode(replica.NodeConfig{Group: name, Role: replica.RoleFollower, PrimaryURL: g.servers[0].URL})
	}
	return g
}

func testCoordinator(t *testing.T, groups ...*clusterGroup) *Coordinator {
	t.Helper()
	cfg := CoordinatorConfig{
		Opts:       clusterOpts,
		HedgeAfter: 100 * time.Millisecond,
		Backoff:    testBackoff,
		Logf:       func(string, ...interface{}) {},
	}
	for _, g := range groups {
		cfg.Groups = append(cfg.Groups, g.spec)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func hummedPitch(songs []music.Song, which int, seed int64) ts.Series {
	r := rand.New(rand.NewSource(seed))
	return hum.StripSilence(hum.GoodSinger().RenderPitch(songs[which%len(songs)].Melody, r))
}

// splitCorpus deals the catalogue into two disjoint halves.
func splitCorpus() (all, a, b []music.Song) {
	all = music.BuiltinSongs()
	for _, s := range music.GenerateSongs(91, 10, 100, 200) {
		s.ID += int64(len(music.BuiltinSongs()))
		all = append(all, s)
	}
	for i, s := range all {
		if i%2 == 0 {
			a = append(a, s)
		} else {
			b = append(b, s)
		}
	}
	return all, a, b
}

func TestCoordinatorMatchesSingleNode(t *testing.T) {
	all, half1, half2 := splitCorpus()
	single, err := qbh.Build(all, clusterOpts)
	if err != nil {
		t.Fatal(err)
	}
	ga := startGroup(t, "a", half1, 1)
	gb := startGroup(t, "b", half2, 1)
	coord := testCoordinator(t, ga, gb)

	for q := 0; q < 3; q++ {
		pitch := hummedPitch(all, q*3, int64(100+q))
		want, _, err := single.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := coord.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Degraded {
			t.Fatalf("query %d degraded with all groups up", q)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d matches, single node had %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].SongID != want[i].SongID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("query %d rank %d: got song %d dist %g, single node song %d dist %g",
					q, i, got[i].SongID, got[i].Dist, want[i].SongID, want[i].Dist)
			}
		}
	}
}

func TestCoordinatorGroupDownReturnsPartialDegraded(t *testing.T) {
	_, half1, half2 := splitCorpus()
	ga := startGroup(t, "a", half1, 0)
	gb := startGroup(t, "b", half2, 0)
	coord := testCoordinator(t, ga, gb)
	coord.cfg.ReplicaTimeout = 2 * time.Second

	gb.close() // the whole group goes dark

	pitch := hummedPitch(half1, 0, 7)
	got, stats, err := coord.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{})
	if err != nil {
		t.Fatalf("partial query errored: %v", err)
	}
	if !stats.Degraded {
		t.Fatal("whole group down but response not marked degraded")
	}
	if len(got) == 0 {
		t.Fatal("no partial results from the surviving group")
	}
	// The served HTTP response carries the degraded marker too.
	h := NewBackend(coord, Config{})
	srv := httptest.NewServer(h)
	defer srv.Close()
	body, _ := json.Marshal([]float64(hummedPitch(half1, 0, 7)))
	resp, err := http.Post(srv.URL+"/query/pitch?top=5", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Degraded {
		t.Fatal("HTTP response not marked degraded")
	}

	// All groups down: that is an error, not an empty success.
	ga.close()
	if _, _, err := coord.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{}); err == nil {
		t.Fatal("all groups down but query succeeded")
	}
}

func TestCoordinatorWriteFindsPrimaryPast421(t *testing.T) {
	_, half1, _ := splitCorpus()
	g := startGroup(t, "a", half1, 1)
	// List the follower first: the first write attempt gets 421 and the
	// coordinator must move on to the primary.
	g.spec.Replicas = []string{g.spec.Replicas[1], g.spec.Replicas[0]}
	coord := testCoordinator(t, g)

	before := g.nodes[0].NumSongs()
	song, err := coord.AddSongTitled("routed write", half1[0].Melody)
	if err != nil {
		t.Fatal(err)
	}
	if song.Title != "routed write" {
		t.Fatalf("echoed title %q", song.Title)
	}
	if got := g.nodes[0].NumSongs(); got != before+1 {
		t.Fatalf("primary has %d songs, want %d", got, before+1)
	}
	// The discovered primary is cached for the next write.
	coord.mu.Lock()
	cached := coord.primaries["a"]
	coord.mu.Unlock()
	if cached != g.servers[0].URL {
		t.Fatalf("cached primary %q, want %q", cached, g.servers[0].URL)
	}
}

func TestCoordinatorWriteHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/songs" {
			_ = json.NewEncoder(w).Encode([]SongInfo{}) // id allocator seed scan
			return
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			httpError(w, http.StatusTooManyRequests, "busy")
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]int{"applied": 1, "received": 1})
	}))
	defer fake.Close()

	coord, err := NewCoordinator(CoordinatorConfig{
		Groups:  []GroupSpec{{Name: "g", Replicas: []string{fake.URL}}},
		Opts:    clusterOpts,
		Backoff: testBackoff,
		Logf:    func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AddSongTitled("retry me", music.BuiltinSongs()[0].Melody); err != nil {
		t.Fatalf("write failed despite retry budget: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d attempts, want 2 (429 then success)", got)
	}
}

func TestCoordinatorHedgesPastSlowReplica(t *testing.T) {
	canned, _ := json.Marshal(QueryResponse{
		Matches: []MatchResponse{{SongID: 7, Title: "fast", Dist: 1}},
	})
	slowReleased := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server can detect the hedge's cancel.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-slowReleased:
		case <-r.Context().Done():
		}
	}))
	// LIFO: release the parked handler before Close waits on it.
	defer slow.Close()
	defer close(slowReleased)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(canned)
	}))
	defer fast.Close()

	coord, err := NewCoordinator(CoordinatorConfig{
		Groups:     []GroupSpec{{Name: "g", Replicas: []string{slow.URL, fast.URL}}},
		Opts:       clusterOpts,
		HedgeAfter: 30 * time.Millisecond,
		Backoff:    testBackoff,
		Logf:       func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the rotation so the slow replica is tried first.
	coord.rr.Store(uint64(len(coord.cfg.Groups[0].Replicas) - 1))

	start := time.Now()
	got, _, err := coord.QueryCtx(context.Background(), hummedPitch(music.BuiltinSongs(), 0, 3), 5, 0.1, index.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SongID != 7 {
		t.Fatalf("hedged query returned %v", got)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("hedge took %v; the slow replica was waited on", elapsed)
	}
}

// A slow replica whose response arrives after the hedge has already won
// must not contribute a second copy of the group's stats or matches: the
// merge sees exactly one response per group. A regression here (merging
// every response that lands in the channel) would double Candidates and
// duplicate matches whenever a hedge loser eventually succeeds.
func TestCoordinatorHedgeCountsStatsOnce(t *testing.T) {
	slowResp, _ := json.Marshal(QueryResponse{
		Matches:         []MatchResponse{{SongID: 1, Title: "slow", Dist: 1}},
		Candidates:      999,
		CoarseSurvivors: 999,
		KeoghSurvivors:  999,
		LBSurvivors:     999,
		ExactDTW:        999,
	})
	fastResp, _ := json.Marshal(QueryResponse{
		Matches:         []MatchResponse{{SongID: 7, Title: "fast", Dist: 2}},
		Candidates:      42,
		CoarseSurvivors: 30,
		KeoghSurvivors:  20,
		LBSurvivors:     10,
		ExactDTW:        10,
	})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		// Long past HedgeAfter: the fast sibling wins, then this response
		// (success or cancelled, depending on timing) must be discarded.
		time.Sleep(80 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(slowResp)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(fastResp)
	}))
	defer fast.Close()

	coord, err := NewCoordinator(CoordinatorConfig{
		Groups:     []GroupSpec{{Name: "g", Replicas: []string{slow.URL, fast.URL}}},
		Opts:       clusterOpts,
		HedgeAfter: 10 * time.Millisecond,
		Backoff:    testBackoff,
		Logf:       func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the rotation so the slow replica is tried first.
	coord.rr.Store(uint64(len(coord.cfg.Groups[0].Replicas) - 1))

	got, stats, err := coord.QueryCtx(context.Background(), hummedPitch(music.BuiltinSongs(), 0, 3), 5, 0.1, index.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SongID != 7 {
		t.Fatalf("hedged query returned %v, want just the fast replica's match", got)
	}
	want := index.QueryStats{Candidates: 42, CoarseSurvivors: 30, KeoghSurvivors: 20, LBSurvivors: 10, ExactDTW: 10}
	if stats != want {
		t.Fatalf("merged stats %+v, want the hedge winner's alone %+v", stats, want)
	}
}

// Equal-distance matches from different groups must rank exactly as a
// single node would — by (Dist, SongID) — no matter which group's response
// is appended to the union first. The group holding the larger SongID is
// listed first, so a Dist-only sort would leave it ahead; per-stage stats
// must sum across groups at the same time.
func TestCoordinatorMergeTieBreakDeterministic(t *testing.T) {
	mk := func(id int64, title string) *httptest.Server {
		resp, _ := json.Marshal(QueryResponse{
			Matches:         []MatchResponse{{SongID: id, Title: title, Dist: 2.5}},
			Candidates:      5,
			CoarseSurvivors: 4,
			KeoghSurvivors:  3,
			LBSurvivors:     2,
			ExactDTW:        2,
		})
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(resp)
		}))
	}
	hi := mk(9, "tied-hi")
	defer hi.Close()
	lo := mk(4, "tied-lo")
	defer lo.Close()

	coord, err := NewCoordinator(CoordinatorConfig{
		Groups: []GroupSpec{
			{Name: "a", Replicas: []string{hi.URL}},
			{Name: "b", Replicas: []string{lo.URL}},
		},
		Opts:    clusterOpts,
		Backoff: testBackoff,
		Logf:    func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	pitch := hummedPitch(music.BuiltinSongs(), 0, 3)
	for trial := 0; trial < 4; trial++ {
		got, stats, err := coord.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0].SongID != 4 || got[1].SongID != 9 {
			t.Fatalf("trial %d: merged order %v, want SongID 4 before 9 on the distance tie", trial, got)
		}
		want := index.QueryStats{Candidates: 10, CoarseSurvivors: 8, KeoghSurvivors: 6, LBSurvivors: 4, ExactDTW: 4}
		if stats != want {
			t.Fatalf("trial %d: merged stats %+v, want per-stage sums %+v", trial, stats, want)
		}
	}
}
