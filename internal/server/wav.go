package server

import "warping/internal/wav"

// decodeWAV is a seam for the wav package (kept separate so the handler
// file reads as pure HTTP logic).
func decodeWAV(data []byte) ([]float64, int, error) {
	return wav.Decode(data)
}
