package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"warping/internal/hum"
	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/retry"
	"warping/internal/wav"
)

func TestClientStatsAndSongs(t *testing.T) {
	srv, songs := newTestServer(t)
	c := NewClient(srv.URL, nil)
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Songs != len(songs) {
		t.Errorf("stats = %+v", stats)
	}
	list, err := c.Songs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != len(songs) {
		t.Errorf("songs = %d", len(list))
	}
}

func TestClientQueryPitch(t *testing.T) {
	srv, songs := newTestServer(t)
	c := NewClient(srv.URL, nil)
	r := rand.New(rand.NewSource(51))
	phrase := music.SegmentPhrases(songs[0].Melody, 8, 20)[0]
	pitch := hum.GoodSinger().RenderPitch(phrase, r)
	resp, err := c.QueryPitch(pitch, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 3 || resp.Matches[0].SongID != songs[0].ID {
		t.Errorf("matches = %+v", resp.Matches)
	}
}

func TestClientQueryWAV(t *testing.T) {
	srv, songs := newTestServer(t)
	c := NewClient(srv.URL, nil)
	r := rand.New(rand.NewSource(52))
	audio := hum.GoodSinger().RenderAudio(songs[2].Melody, r)
	var buf bytes.Buffer
	if err := wav.Encode(&buf, audio, 8000); err != nil {
		t.Fatal(err)
	}
	resp, err := c.QueryWAV(buf.Bytes(), 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].SongID != songs[2].ID {
		t.Errorf("matches = %+v", resp.Matches)
	}
}

func TestClientAddSong(t *testing.T) {
	srv, _ := newTestServer(t)
	c := NewClient(srv.URL, nil)
	tune := music.GenerateMelody(rand.New(rand.NewSource(53)), 50)
	data, err := midi.EncodeMelody(tune, 500000)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.AddSong("Client Upload & Co", data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Title != "Client Upload & Co" || info.Notes != 50 {
		t.Errorf("info = %+v", info)
	}
}

func TestClientErrorSurface(t *testing.T) {
	srv, _ := newTestServer(t)
	c := NewClient(srv.URL, nil)
	if _, err := c.QueryWAV([]byte("junk"), 3, 0.1); err == nil {
		t.Error("bad WAV accepted")
	}
	if _, err := c.AddSong("x", []byte("junk")); err == nil {
		t.Error("bad MIDI accepted")
	}
	// The error message from the server must surface.
	_, err := c.QueryPitch([]float64{60}, 3, 0.1)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("too short")) {
		t.Errorf("error = %v", err)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if _, err := c.Stats(); err == nil {
		t.Error("dead server reachable?")
	}
}

func TestQueryResponseJSONShape(t *testing.T) {
	// The wire format is part of the API contract.
	data, err := json.Marshal(QueryResponse{
		Matches:      []MatchResponse{{SongID: 1, Title: "t", Dist: 2.5}},
		VoicedFrames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `"matches":[{"song_id":1,"title":"t","dist":2.5}]`
	if !bytes.Contains(data, []byte(want)) {
		t.Errorf("JSON = %s", data)
	}
	if !bytes.Contains(data, []byte(`"lb_survivors":0`)) {
		t.Errorf("JSON missing lb_survivors field: %s", data)
	}
}

func TestClientRetriesOn429WithRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			httpError(w, http.StatusTooManyRequests, "at capacity")
			return
		}
		writeJSON(w, StatsResponse{Songs: 7})
	}))
	defer srv.Close()

	c := NewClientConfig(srv.URL, ClientConfig{
		RetryAttempts: 3,
		Backoff:       retry.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats after retries: %v", err)
	}
	if st.Songs != 7 || calls.Load() != 3 {
		t.Fatalf("songs=%d calls=%d, want 7 and 3", st.Songs, calls.Load())
	}
}

func TestClientGivesUpAfterRetryBudget(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		httpError(w, http.StatusTooManyRequests, "at capacity")
	}))
	defer srv.Close()

	c := NewClientConfig(srv.URL, ClientConfig{
		RetryAttempts: 2,
		Backoff:       retry.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	if _, err := c.Stats(); err == nil {
		t.Fatal("persistent 429 did not surface an error")
	}
	if calls.Load() != 2 {
		t.Fatalf("%d attempts, budget was 2", calls.Load())
	}
}

func TestClientCtxCancelAborts(t *testing.T) {
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-blocked:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(blocked)

	c := NewClient(srv.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.StatsCtx(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled call returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call did not return")
	}
}

func TestClientDefaultTimeoutApplies(t *testing.T) {
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-blocked:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(blocked)

	c := NewClientConfig(srv.URL, ClientConfig{Timeout: 50 * time.Millisecond})
	start := time.Now()
	if _, err := c.Stats(); err == nil {
		t.Fatal("stalled server did not time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, configured 50ms", elapsed)
	}
}
