package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/store"
)

func testMIDI(t *testing.T, seed int64) []byte {
	t.Helper()
	tune := music.GenerateMelody(rand.New(rand.NewSource(seed)), 30)
	data, err := midi.EncodeMelody(tune, 500000)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func openDurableBackend(t *testing.T, dir string, fsys store.FS, build func() (*qbh.System, error)) *qbh.Durable {
	t.Helper()
	d, err := qbh.OpenDurable(dir, qbh.DurableOptions{
		FS:    fsys,
		Build: build,
		Logf:  func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func durableTestBuild() (*qbh.System, error) {
	return qbh.Build(music.GenerateSongs(7, 5, 30, 50), qbh.Options{
		NormalLen: 32, Dim: 4, PhraseMin: 8, PhraseMax: 12,
	})
}

// POST /songs through a durable backend must survive a server restart.
func TestServerDurableUploadSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := openDurableBackend(t, dir, store.OS(), durableTestBuild)
	h := NewBackend(d, Config{})
	srv := httptest.NewServer(h)

	midiBytes := testMIDI(t, 41)
	resp, err := http.Post(srv.URL+"/songs?title=Durable+Upload", "audio/midi", bytes.NewReader(midiBytes))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var created SongInfo
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a new backend over the same directory must already hold the
	// uploaded song, with no builder involved.
	d2 := openDurableBackend(t, dir, store.OS(), nil)
	defer d2.Close()
	srv2 := httptest.NewServer(NewBackend(d2, Config{}))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/songs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var songs []SongInfo
	if err := json.NewDecoder(resp.Body).Decode(&songs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range songs {
		if s.ID == created.ID && s.Title == "Durable Upload" {
			found = true
		}
	}
	if !found {
		t.Fatalf("uploaded song missing after restart: %+v", songs)
	}
}

// /stats exposes the durability section for durable backends and omits it
// for memory-only ones.
func TestServerStatsDurabilitySection(t *testing.T) {
	d := openDurableBackend(t, t.TempDir(), store.OS(), durableTestBuild)
	defer d.Close()
	srv := httptest.NewServer(NewBackend(d, Config{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil {
		t.Fatal("durable backend /stats has no durability section")
	}
	if st.Durability.SnapshotBytes == 0 || st.Durability.Dir == "" {
		t.Errorf("durability section incomplete: %+v", st.Durability)
	}

	sys, err := durableTestBuild()
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(New(sys))
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 StatsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.Durability != nil {
		t.Error("memory-only backend /stats has a durability section")
	}
}

// An fsync failure turns POST /songs into a 503, never a false 201.
func TestServerDurableFsyncFailure503(t *testing.T) {
	ffs := store.NewFaultFS(store.OS())
	d := openDurableBackend(t, t.TempDir(), ffs, durableTestBuild)
	defer d.Close()
	srv := httptest.NewServer(NewBackend(d, Config{}))
	defer srv.Close()

	ffs.FailSyncs(errors.New("disk detached"))
	resp, err := http.Post(srv.URL+"/songs?title=Doomed", "audio/midi", bytes.NewReader(testMIDI(t, 42)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}
