// Package server exposes a query-by-humming system over HTTP — the
// deployable face of the library. The API is deliberately small:
//
//	GET  /stats                 database size and configuration
//	GET  /songs                 the song catalogue (id, title, note count)
//	POST /query?top=K&delta=D   body: mono 16-bit PCM WAV of a hum
//	POST /query/pitch?...       body: JSON array of MIDI pitches (10 ms frames)
//	POST /songs?title=T         body: Standard MIDI File; indexes the melody
//
// Responses are JSON. The handler serializes access to the underlying
// system (index queries mutate shared cost counters), so it is safe under
// concurrent requests.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"warping/internal/audio"
	"warping/internal/hum"
	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/ts"
)

// maxBodyBytes bounds uploads (a minute of 8 kHz 16-bit audio is ~1 MB).
const maxBodyBytes = 16 << 20

// Handler serves the QBH API over a concurrent system wrapper.
type Handler struct {
	sys *qbh.Concurrent
	mux *http.ServeMux
}

// New builds the HTTP handler around a built system.
func New(sys *qbh.System) *Handler {
	h := &Handler{sys: qbh.NewConcurrent(sys), mux: http.NewServeMux()}
	h.mux.HandleFunc("/stats", h.handleStats)
	h.mux.HandleFunc("/songs", h.handleSongs)
	h.mux.HandleFunc("/query", h.handleQueryWAV)
	h.mux.HandleFunc("/query/pitch", h.handleQueryPitch)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Songs   int `json:"songs"`
	Phrases int `json:"phrases"`
}

// SongInfo is one /songs row.
type SongInfo struct {
	ID    int64  `json:"id"`
	Title string `json:"title"`
	Notes int    `json:"notes"`
}

// MatchResponse is one ranked query result.
type MatchResponse struct {
	SongID int64   `json:"song_id"`
	Title  string  `json:"title"`
	Dist   float64 `json:"dist"`
}

// QueryResponse is the /query payload.
type QueryResponse struct {
	Matches      []MatchResponse `json:"matches"`
	VoicedFrames int             `json:"voiced_frames"`
	Candidates   int             `json:"candidates"`
	ExactDTW     int             `json:"exact_dtw"`
	PageAccesses int             `json:"page_accesses"`
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, StatsResponse{Songs: h.sys.NumSongs(), Phrases: h.sys.NumPhrases()})
}

func (h *Handler) handleSongs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		songs := h.sys.Songs()
		out := make([]SongInfo, len(songs))
		for i, s := range songs {
			out[i] = SongInfo{ID: s.ID, Title: s.Title, Notes: s.Melody.NumNotes()}
		}
		writeJSON(w, out)
	case http.MethodPost:
		h.handleAddSong(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (h *Handler) handleAddSong(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	melody, err := midi.DecodeMelody(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing MIDI: %v", err)
		return
	}
	title := r.URL.Query().Get("title")
	if title == "" {
		title = fmt.Sprintf("Uploaded Song %d", h.sys.NumSongs())
	}
	// Allocate the next free id.
	var id int64
	for _, s := range h.sys.Songs() {
		if s.ID >= id {
			id = s.ID + 1
		}
	}
	song := music.Song{ID: id, Title: title, Melody: melody}
	if err := h.sys.AddSong(song); err != nil {
		httpError(w, http.StatusBadRequest, "indexing: %v", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, SongInfo{ID: id, Title: title, Notes: melody.NumNotes()})
}

// queryParams extracts top and delta with defaults.
func queryParams(r *http.Request) (topK int, delta float64, err error) {
	topK, delta = 5, 0.1
	if v := r.URL.Query().Get("top"); v != "" {
		topK, err = strconv.Atoi(v)
		if err != nil || topK < 1 || topK > 100 {
			return 0, 0, fmt.Errorf("invalid top %q", v)
		}
	}
	if v := r.URL.Query().Get("delta"); v != "" {
		delta, err = strconv.ParseFloat(v, 64)
		if err != nil || delta < 0 || delta > 1 {
			return 0, 0, fmt.Errorf("invalid delta %q", v)
		}
	}
	return topK, delta, nil
}

func (h *Handler) handleQueryWAV(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST with a WAV body")
		return
	}
	topK, delta, err := queryParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	samples, rate, err := decodeWAV(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing WAV: %v", err)
		return
	}
	pitch := hum.StripSilence(audio.TrackPitch(samples, rate))
	h.respondQuery(w, pitch, topK, delta)
}

func (h *Handler) handleQueryPitch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST with a JSON pitch array")
		return
	}
	topK, delta, err := queryParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var pitches []float64
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(&pitches); err != nil {
		httpError(w, http.StatusBadRequest, "parsing pitch JSON: %v", err)
		return
	}
	pitch := hum.StripSilence(ts.Series(pitches))
	h.respondQuery(w, pitch, topK, delta)
}

func (h *Handler) respondQuery(w http.ResponseWriter, pitch ts.Series, topK int, delta float64) {
	if len(pitch) < 10 {
		httpError(w, http.StatusBadRequest, "query too short: %d voiced frames", len(pitch))
		return
	}
	matches, stats := h.sys.Query(pitch, topK, delta)
	resp := QueryResponse{
		VoicedFrames: len(pitch),
		Candidates:   stats.Candidates,
		ExactDTW:     stats.ExactDTW,
		PageAccesses: stats.PageAccesses,
	}
	for _, m := range matches {
		resp.Matches = append(resp.Matches, MatchResponse{SongID: m.SongID, Title: m.Title, Dist: m.Dist})
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}
