// Package server exposes a query-by-humming system over HTTP — the
// deployable face of the library. The API is deliberately small:
//
//	GET  /stats                 database size and configuration
//	GET  /songs                 the song catalogue (id, title, note count)
//	POST /query?top=K&delta=D   body: mono 16-bit PCM WAV of a hum
//	POST /query/pitch?...       body: JSON array of MIDI pitches (10 ms frames)
//	POST /songs?title=T         body: Standard MIDI File; indexes the melody
//	GET  /healthz               liveness probe (always 200 while serving)
//	GET  /readyz                readiness probe (503 while draining)
//
// Responses are JSON. Queries are read-pure and run concurrently with each
// other, with snapshots, and with uploads: the phrase index is sharded
// with one lock per shard, so an upload write-locks only the shards
// receiving its phrases while queries fan out across all shards in
// parallel (/stats carries a "shards" section with the layout). The
// expensive endpoints sit behind an admission semaphore: when every slot
// is busy past the queue timeout the server sheds load with 429 and a
// Retry-After header instead of queueing unboundedly. Each query carries
// a deadline and an exact-DTW budget; a budget-capped response is marked
// "degraded": true. Handler panics become 500s without killing the
// process.
//
// With a durable backend (NewBackend over *qbh.Durable), POST /songs is
// acknowledged only after the write is fsynced to the write-ahead log, a
// failed fsync answers 503 instead of a false 201, and /stats carries a
// "durability" section (snapshot age, WAL size, fsync latency).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"warping/internal/audio"
	"warping/internal/hum"
	"warping/internal/index"
	"warping/internal/membership"
	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/pager"
	"warping/internal/qbh"
	"warping/internal/replica"
	"warping/internal/ts"
)

// Backend is the system surface the handler serves: concurrent queries,
// catalogue reads and durable-or-not song uploads. *qbh.Concurrent (memory
// only) and *qbh.Durable (WAL + snapshots) both implement it.
type Backend interface {
	QueryCtx(ctx context.Context, pitch ts.Series, topK int, delta float64, lim index.Limits) ([]qbh.SongMatch, index.QueryStats, error)
	NumSongs() int
	NumPhrases() int
	Songs() []music.Song
	AddSongTitled(title string, melody music.Melody) (music.Song, error)
}

// durabilityReporter is implemented by backends that persist writes
// (*qbh.Durable); /stats surfaces their durability state when present.
type durabilityReporter interface {
	DurabilityStats() qbh.DurabilityStats
}

// shardReporter is implemented by backends whose index is partitioned
// (*qbh.Concurrent and *qbh.Durable); /stats surfaces the shard layout and
// per-shard sizes when present.
type shardReporter interface {
	ShardStats() qbh.ShardStats
}

// primaryHinter is implemented by backends that know where their group's
// primary lives (*replica.Node followers). A misdirected write's 421
// then carries the primary URL as a Location header, so the client can
// reroute without fetching a membership view.
type primaryHinter interface {
	PrimaryHint() string
}

// replicationReporter is implemented by backends in a replica group
// (*replica.Node); /stats surfaces the role, fencing state and — on a
// primary — the per-follower ack watermarks failover elects by.
type replicationReporter interface {
	State() replica.StateResponse
	AckWatermarks() map[string]string
}

// membershipReporter is implemented by backends that hold a gossip
// membership view (*Coordinator); /stats surfaces it when present.
// Replica roles surface theirs through Handler.SetMembershipView, since
// the gossip agent lives beside the node, not inside it.
type membershipReporter interface {
	MembershipView() (membership.View, bool)
}

// poolReporter is implemented by backends whose storage can run
// out-of-core (*qbh.System, *qbh.Concurrent, *qbh.Durable); /stats
// surfaces the buffer-pool counters when paged mode is active.
type poolReporter interface {
	PoolStats() (pager.Stats, bool)
}

// cacheReporter is implemented by backends with a normalized-query result
// cache (*qbh.Concurrent, *qbh.Durable); /stats surfaces the hit/miss/
// invalidation counters when the cache is enabled.
type cacheReporter interface {
	CacheStats() (qbh.CacheStats, bool)
}

// Config tunes the serving path. The zero value of any field selects the
// default.
type Config struct {
	// MaxConcurrent is the number of admission slots for the expensive
	// endpoints (/query, /query/pitch, POST /songs). Default: GOMAXPROCS,
	// at least 2.
	MaxConcurrent int
	// QueueTimeout is how long a request waits for an admission slot
	// before being shed with 429. Default 2s.
	QueueTimeout time.Duration
	// QueryTimeout is the per-query deadline; a query that exceeds it is
	// cancelled and answered with 503. Default 15s. Negative disables.
	QueryTimeout time.Duration
	// MaxExactDTW caps exact DTW verifications per query; responses that
	// hit the cap are marked degraded. Default 100000. Negative disables.
	MaxExactDTW int
	// MaxBodyBytes bounds upload bodies; larger bodies get 413.
	// Default 16 MiB (a minute of 8 kHz 16-bit audio is ~1 MB).
	MaxBodyBytes int64
	// MaxPitchFrames bounds the /query/pitch array length. Default 60000
	// (ten minutes of 10 ms frames).
	MaxPitchFrames int
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
		if c.MaxConcurrent < 2 {
			c.MaxConcurrent = 2
		}
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 15 * time.Second
	}
	if c.MaxExactDTW == 0 {
		c.MaxExactDTW = 100000
	}
	if c.MaxExactDTW < 0 {
		c.MaxExactDTW = 0 // index.Limits semantics: 0 = unlimited
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxPitchFrames <= 0 {
		c.MaxPitchFrames = 60000
	}
}

// Handler serves the QBH API over a Backend.
type Handler struct {
	sys   Backend
	mux   *http.ServeMux
	cfg   Config
	sem   chan struct{}
	ready atomic.Bool
	// candidateHook, when non-nil, is passed to every query's
	// index.Limits — fault injection for tests (slow queries, blocking).
	candidateHook func()
	// viewFn, when set, supplies the gossip membership view for /stats —
	// the wiring for replica roles, whose agent lives outside the backend.
	viewFn func() (membership.View, bool)
}

// SetMembershipView wires an external membership-view source (a gossip
// agent) into /stats. Backends that hold their own view (the
// coordinator) are picked up automatically and don't need this.
func (h *Handler) SetMembershipView(fn func() (membership.View, bool)) {
	h.viewFn = fn
}

// New builds the HTTP handler around a built system with default Config.
func New(sys *qbh.System) *Handler {
	return NewWithConfig(sys, Config{})
}

// NewWithConfig builds the HTTP handler with explicit serving limits. The
// system is memory-only; use NewBackend with a *qbh.Durable for a serving
// path whose uploads survive restarts.
func NewWithConfig(sys *qbh.System, cfg Config) *Handler {
	return NewBackend(qbh.NewConcurrent(sys), cfg)
}

// NewBackend builds the HTTP handler over an explicit backend, typically a
// *qbh.Durable so POST /songs is crash-safe.
func NewBackend(sys Backend, cfg Config) *Handler {
	cfg.fill()
	h := &Handler{
		sys: sys,
		mux: http.NewServeMux(),
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxConcurrent),
	}
	h.ready.Store(true)
	h.mux.HandleFunc("/stats", h.handleStats)
	h.mux.HandleFunc("/songs", h.handleSongs)
	h.mux.HandleFunc("/query", h.handleQueryWAV)
	h.mux.HandleFunc("/query/pitch", h.handleQueryPitch)
	h.mux.HandleFunc("/healthz", h.handleHealthz)
	h.mux.HandleFunc("/readyz", h.handleReadyz)
	return h
}

// SetReady flips the /readyz state; a draining server sets it false so
// load balancers stop routing new traffic while in-flight requests finish.
func (h *Handler) SetReady(ready bool) { h.ready.Store(ready) }

// ServeHTTP implements http.Handler with panic containment.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(p)
			}
			log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			// Best effort: if the handler already wrote headers this is a
			// no-op and the client sees a truncated response.
			httpError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	h.mux.ServeHTTP(w, r)
}

// acquire takes an admission slot, waiting at most QueueTimeout. It
// reports false when the request should be shed (timeout or client gone).
func (h *Handler) acquire(ctx context.Context) bool {
	select {
	case h.sem <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(h.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case h.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (h *Handler) release() { <-h.sem }

// admit wraps acquire with the 429 + Retry-After overload response.
func (h *Handler) admit(w http.ResponseWriter, r *http.Request) bool {
	if h.acquire(r.Context()) {
		return true
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, "server at capacity (%d concurrent requests), retry shortly", h.cfg.MaxConcurrent)
	return false
}

// StatsResponse is the /stats payload. Durability is present only when
// the backend persists writes (a data directory is configured); Shards is
// present when the backend exposes its index partition layout.
type StatsResponse struct {
	Songs       int                  `json:"songs"`
	Phrases     int                  `json:"phrases"`
	Shards      *ShardsResponse      `json:"shards,omitempty"`
	BufferPool  *BufferPoolResponse  `json:"buffer_pool,omitempty"`
	ResultCache *ResultCacheResponse `json:"result_cache,omitempty"`
	Durability  *DurabilityResponse  `json:"durability,omitempty"`
	Replication *ReplicationResponse `json:"replication,omitempty"`
	Membership  *MembershipResponse  `json:"membership,omitempty"`
}

// BufferPoolResponse reports the out-of-core page pool in /stats, present
// only when the backend runs paged storage. HitRate is Hits/(Hits+Misses);
// Misses are real disk reads — the physical counterpart of the per-query
// logical_pages counter.
type BufferPoolResponse struct {
	PageSize   int     `json:"page_size"`
	PoolPages  int     `json:"pool_pages"`
	Resident   int     `json:"resident"`
	Pinned     int     `json:"pinned"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Evictions  uint64  `json:"evictions"`
	Writebacks uint64  `json:"writebacks"`
	Overflows  uint64  `json:"overflows"`
	HitRate    float64 `json:"hit_rate"`
}

// ResultCacheResponse reports the normalized-query result cache in
// /stats, present only when the backend was started with a cache budget.
// HitRate is Hits/(Hits+Misses), 0 before the first lookup; an
// epoch-invalidated lookup counts as both an invalidation and a miss.
type ResultCacheResponse struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Invalidations int64   `json:"invalidations"`
	Entries       int     `json:"entries"`
	Bytes         int64   `json:"bytes"`
	MaxBytes      int64   `json:"max_bytes"`
	HitRate       float64 `json:"hit_rate"`
}

// ShardsResponse reports the index partition layout in /stats: writes lock
// one shard, queries fan out across all of them in parallel.
type ShardsResponse struct {
	Count   int    `json:"count"`
	Backend string `json:"backend"`
	// Lens is the number of indexed phrases in each shard (balance
	// monitoring: the id hash should keep these within a few percent of
	// one another).
	Lens []int `json:"lens"`
}

// DurabilityResponse reports the storage-layer state in /stats.
type DurabilityResponse struct {
	Dir             string  `json:"dir"`
	SnapshotAgeSec  float64 `json:"snapshot_age_sec"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	Snapshots       int64   `json:"snapshots"`
	WALRecords      int64   `json:"wal_records"`
	WALBytes        int64   `json:"wal_bytes"`
	WALSyncs        int64   `json:"wal_syncs"`
	LastFsyncMicros int64   `json:"last_fsync_micros"`
}

// ReplicationResponse reports the node's place in its replica group in
// /stats: role, fencing state, replication frontier, and — on a primary
// — the per-follower durably-applied watermarks failover elects by.
type ReplicationResponse struct {
	Group  string `json:"group"`
	Role   string `json:"role"`
	Fenced bool   `json:"fenced,omitempty"`
	Epoch  int64  `json:"epoch"`
	Offset int64  `json:"offset"`
	// AckWatermarks maps follower id to its confirmed "epoch:offset"
	// position in the primary's WAL stream.
	AckWatermarks map[string]string `json:"ack_watermarks,omitempty"`
}

// MembershipResponse reports the merged gossip view in /stats.
type MembershipResponse struct {
	RingVersion uint64           `json:"ring_version"`
	RingGroups  []string         `json:"ring_groups,omitempty"`
	Rebalancing bool             `json:"rebalancing,omitempty"`
	Nodes       []MemberResponse `json:"nodes,omitempty"`
}

// MemberResponse is one node row of the membership view.
type MemberResponse struct {
	ID        string `json:"id"`
	URL       string `json:"url,omitempty"`
	Group     string `json:"group"`
	Role      string `json:"role"`
	Fenced    bool   `json:"fenced,omitempty"`
	WALEpoch  int64  `json:"wal_epoch"`
	WALOffset int64  `json:"wal_offset"`
}

// SongInfo is one /songs row.
type SongInfo struct {
	ID    int64  `json:"id"`
	Title string `json:"title"`
	Notes int    `json:"notes"`
}

// MatchResponse is one ranked query result.
type MatchResponse struct {
	SongID int64   `json:"song_id"`
	Title  string  `json:"title"`
	Dist   float64 `json:"dist"`
}

// QueryResponse is the /query payload.
type QueryResponse struct {
	Matches      []MatchResponse `json:"matches"`
	VoicedFrames int             `json:"voiced_frames"`
	Candidates   int             `json:"candidates"`
	// CoarseSurvivors and KeoghSurvivors expose the intermediate cascade
	// stages (coarse New_PAA box, then LB_Keogh) so pruning power is
	// observable per stage across the cluster, not just end to end.
	CoarseSurvivors int `json:"coarse_survivors"`
	KeoghSurvivors  int `json:"keogh_survivors"`
	LBSurvivors int `json:"lb_survivors"`
	ExactDTW    int `json:"exact_dtw"`
	// LogicalPages counts index nodes/buckets visited — the paper's
	// page-access measure, independent of caching. PageAccesses is the
	// physical cost: real buffer-pool misses when the backend runs
	// out-of-core, equal to LogicalPages in all-in-RAM mode.
	LogicalPages int `json:"logical_pages"`
	PageAccesses int `json:"page_accesses"`
	// Degraded reports that the query hit its exact-DTW budget and the
	// ranking is best-effort rather than exact.
	Degraded bool `json:"degraded,omitempty"`
	// Cached reports that the result was served from the normalized-query
	// result cache; the work counters above describe the cached execution.
	Cached bool `json:"cached,omitempty"`
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := StatsResponse{Songs: h.sys.NumSongs(), Phrases: h.sys.NumPhrases()}
	if sr, ok := h.sys.(shardReporter); ok {
		st := sr.ShardStats()
		resp.Shards = &ShardsResponse{Count: st.Shards, Backend: st.Backend, Lens: st.Lens}
	}
	if pr, ok := h.sys.(poolReporter); ok {
		if st, paged := pr.PoolStats(); paged {
			// A pool that has served no requests has no hit rate; Stats.HitRate
			// reports the optimistic 1 in that state, but a monitoring surface
			// must not claim a perfect rate (or NaN) before the first lookup.
			rate := st.HitRate()
			if st.Hits+st.Misses == 0 {
				rate = 0
			}
			resp.BufferPool = &BufferPoolResponse{
				PageSize:   st.PageSize,
				PoolPages:  st.PoolPages,
				Resident:   st.Resident,
				Pinned:     st.Pinned,
				Hits:       st.Hits,
				Misses:     st.Misses,
				Evictions:  st.Evictions,
				Writebacks: st.Writeback,
				Overflows:  st.Overflows,
				HitRate:    rate,
			}
		}
	}
	if cr, ok := h.sys.(cacheReporter); ok {
		if st, enabled := cr.CacheStats(); enabled {
			resp.ResultCache = &ResultCacheResponse{
				Hits:          st.Hits,
				Misses:        st.Misses,
				Invalidations: st.Invalidations,
				Entries:       st.Entries,
				Bytes:         st.Bytes,
				MaxBytes:      st.MaxBytes,
				HitRate:       st.HitRate(),
			}
		}
	}
	if dr, ok := h.sys.(durabilityReporter); ok {
		st := dr.DurabilityStats()
		resp.Durability = &DurabilityResponse{
			Dir:             st.Dir,
			SnapshotAgeSec:  st.SnapshotAge.Seconds(),
			SnapshotBytes:   st.SnapshotBytes,
			Snapshots:       st.Snapshots,
			WALRecords:      st.WALRecords,
			WALBytes:        st.WALBytes,
			WALSyncs:        st.WALSyncs,
			LastFsyncMicros: st.LastFsync.Microseconds(),
		}
	}
	if rr, ok := h.sys.(replicationReporter); ok {
		st := rr.State()
		resp.Replication = &ReplicationResponse{
			Group:         st.Group,
			Role:          string(st.Role),
			Fenced:        st.Fenced,
			Epoch:         st.Epoch,
			Offset:        st.Offset,
			AckWatermarks: rr.AckWatermarks(),
		}
	}
	if view, ok := h.membershipView(); ok {
		m := &MembershipResponse{
			RingVersion: view.Ring.Version,
			RingGroups:  view.Ring.Groups,
			Rebalancing: view.Rebalance.Active(),
		}
		for _, g := range view.Groups() {
			for _, rec := range view.GroupNodes(g) {
				m.Nodes = append(m.Nodes, MemberResponse{
					ID:        rec.ID,
					URL:       rec.URL,
					Group:     rec.Group,
					Role:      rec.Role,
					Fenced:    rec.Fenced,
					WALEpoch:  rec.WALEpoch,
					WALOffset: rec.WALOffset,
				})
			}
		}
		resp.Membership = m
	}
	writeJSON(w, resp)
}

// membershipView finds the gossip view to surface: the explicitly wired
// source first (replica roles), then the backend's own (coordinator).
func (h *Handler) membershipView() (membership.View, bool) {
	if h.viewFn != nil {
		return h.viewFn()
	}
	if mr, ok := h.sys.(membershipReporter); ok {
		return mr.MembershipView()
	}
	return membership.View{}, false
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (h *Handler) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !h.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func (h *Handler) handleSongs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		songs := h.sys.Songs()
		out := make([]SongInfo, len(songs))
		for i, s := range songs {
			out[i] = SongInfo{ID: s.ID, Title: s.Title, Notes: s.Melody.NumNotes()}
		}
		writeJSON(w, out)
	case http.MethodPost:
		h.handleAddSong(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// readBody drains the request body under the upload cap, distinguishing
// oversized bodies (413) from transport errors (400).
func (h *Handler) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		} else {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

func (h *Handler) handleAddSong(w http.ResponseWriter, r *http.Request) {
	if !h.admit(w, r) {
		return
	}
	defer h.release()
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	melody, err := midi.DecodeMelody(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing MIDI: %v", err)
		return
	}
	title := r.URL.Query().Get("title")
	if title == "" {
		title = fmt.Sprintf("Uploaded Song %d", h.sys.NumSongs())
	}
	// The id is allocated inside AddSongTitled under the system's write
	// lock, so concurrent uploads cannot race to the same id.
	song, err := h.sys.AddSongTitled(title, melody)
	if err != nil {
		switch {
		// A durability failure is a server-side storage problem, not a bad
		// request: the write was NOT acknowledged and must be retried.
		case errors.Is(err, qbh.ErrNotDurable):
			httpError(w, http.StatusServiceUnavailable, "storing: %v", err)
		// Misdirected write in a replica group: the client must resend to
		// the primary. 421 is not retryable-here, unlike 503; a follower
		// that knows its primary names it in Location so the client can
		// reroute without a membership-view fetch.
		case errors.Is(err, replica.ErrNotPrimary):
			if ph, ok := h.sys.(primaryHinter); ok {
				if hint := ph.PrimaryHint(); hint != "" {
					w.Header().Set("Location", hint+r.URL.RequestURI())
				}
			}
			httpError(w, http.StatusMisdirectedRequest, "%v", err)
		// Durable locally but the follower quorum did not confirm: not
		// acknowledged, safe to retry.
		case errors.Is(err, replica.ErrNotReplicated):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "indexing: %v", err)
		}
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, SongInfo{ID: song.ID, Title: title, Notes: melody.NumNotes()})
}

// queryParams extracts top and delta with defaults.
func queryParams(r *http.Request) (topK int, delta float64, err error) {
	topK, delta = 5, 0.1
	if v := r.URL.Query().Get("top"); v != "" {
		topK, err = strconv.Atoi(v)
		if err != nil || topK < 1 || topK > 100 {
			return 0, 0, fmt.Errorf("invalid top %q", v)
		}
	}
	if v := r.URL.Query().Get("delta"); v != "" {
		delta, err = strconv.ParseFloat(v, 64)
		if err != nil || delta < 0 || delta > 1 {
			return 0, 0, fmt.Errorf("invalid delta %q", v)
		}
	}
	return topK, delta, nil
}

func (h *Handler) handleQueryWAV(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST with a WAV body")
		return
	}
	topK, delta, err := queryParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !h.admit(w, r) {
		return
	}
	defer h.release()
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	samples, rate, err := decodeWAV(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing WAV: %v", err)
		return
	}
	pitch := hum.StripSilence(audio.TrackPitch(samples, rate))
	h.respondQuery(w, r, pitch, topK, delta)
}

func (h *Handler) handleQueryPitch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST with a JSON pitch array")
		return
	}
	topK, delta, err := queryParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !h.admit(w, r) {
		return
	}
	defer h.release()
	var pitches []float64
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes))
	if err := dec.Decode(&pitches); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "parsing pitch JSON: %v", err)
		return
	}
	if err := validatePitch(pitches, h.cfg.MaxPitchFrames); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pitch := hum.StripSilence(ts.Series(pitches))
	h.respondQuery(w, r, pitch, topK, delta)
}

// validatePitch rejects inputs that would poison normalization: non-finite
// values and absurdly long frame arrays.
func validatePitch(pitches []float64, maxFrames int) error {
	if len(pitches) > maxFrames {
		return fmt.Errorf("pitch array has %d frames, cap is %d", len(pitches), maxFrames)
	}
	for i, v := range pitches {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite pitch value at frame %d", i)
		}
	}
	return nil
}

func (h *Handler) respondQuery(w http.ResponseWriter, r *http.Request, pitch ts.Series, topK int, delta float64) {
	if len(pitch) < 10 {
		httpError(w, http.StatusBadRequest, "query too short: %d voiced frames", len(pitch))
		return
	}
	ctx := r.Context()
	if h.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.cfg.QueryTimeout)
		defer cancel()
	}
	lim := index.Limits{MaxExactDTW: h.cfg.MaxExactDTW, CandidateHook: h.candidateHook}
	matches, stats, err := h.sys.QueryCtx(ctx, pitch, topK, delta, lim)
	if err != nil {
		// Deadline hit or the client went away; either way the result is
		// partial, so answer with an error (best-effort for a gone client).
		httpError(w, http.StatusServiceUnavailable, "query aborted: %v", err)
		return
	}
	resp := QueryResponse{
		VoicedFrames:    len(pitch),
		Candidates:      stats.Candidates,
		CoarseSurvivors: stats.CoarseSurvivors,
		KeoghSurvivors:  stats.KeoghSurvivors,
		LBSurvivors:     stats.LBSurvivors,
		ExactDTW:        stats.ExactDTW,
		LogicalPages:    stats.LogicalPages,
		PageAccesses:    stats.PageAccesses,
		Degraded:        stats.Degraded,
		Cached:          stats.Cached,
	}
	for _, m := range matches {
		resp.Matches = append(resp.Matches, MatchResponse{SongID: m.SongID, Title: m.Title, Dist: m.Dist})
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}
