package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"warping/internal/index"
	"warping/internal/music"
)

// TestCoordinatorDarkGroupCache is the regression test for the per-group
// dark verdict cache: a never-responding group costs its timeout exactly
// once; while the verdict holds, queries skip the group (fast, degraded)
// instead of re-paying the timeout, and the background probe brings the
// group back once it answers again.
func TestCoordinatorDarkGroupCache(t *testing.T) {
	aliveResp, _ := json.Marshal(QueryResponse{
		Matches: []MatchResponse{{SongID: 1, Title: "alive", Dist: 1}},
	})
	darkResp, _ := json.Marshal(QueryResponse{
		Matches: []MatchResponse{{SongID: 2, Title: "recovered", Dist: 2}},
	})
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/stats" {
			_ = json.NewEncoder(w).Encode(StatsResponse{})
			return
		}
		_, _ = w.Write(aliveResp)
	}))
	defer alive.Close()

	// The dark group hangs until its request is cancelled; flipping
	// recovered makes it answer everything again.
	var recovered atomic.Bool
	dark := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !recovered.Load() {
			_, _ = io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/stats" {
			_ = json.NewEncoder(w).Encode(StatsResponse{})
			return
		}
		_, _ = w.Write(darkResp)
	}))
	defer dark.Close()

	const timeout = 300 * time.Millisecond
	coord, err := NewCoordinator(CoordinatorConfig{
		Groups: []GroupSpec{
			{Name: "a", Replicas: []string{alive.URL}},
			{Name: "b", Replicas: []string{dark.URL}},
		},
		Opts:           clusterOpts,
		ReplicaTimeout: timeout,
		DarkTTL:        100 * time.Millisecond,
		Backoff:        testBackoff,
		Logf:           func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	pitch := hummedPitch(music.BuiltinSongs(), 0, 3)

	// First query pays the dark group's timeout and marks it dark.
	start := time.Now()
	got, stats, err := coord.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded || len(got) != 1 || got[0].SongID != 1 {
		t.Fatalf("first query: degraded=%v matches=%v, want degraded partial from group a", stats.Degraded, got)
	}
	if elapsed := time.Since(start); elapsed < timeout {
		t.Fatalf("first query returned in %v; expected to pay the %v timeout once", elapsed, timeout)
	}

	// While the verdict holds, queries skip the group: fast and degraded.
	start = time.Now()
	got, stats, err = coord.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= timeout {
		t.Fatalf("second query took %v; the dark cache did not skip the group", elapsed)
	}
	if !stats.Degraded || len(got) != 1 || got[0].SongID != 1 {
		t.Fatalf("second query: degraded=%v matches=%v, want degraded partial from group a", stats.Degraded, got)
	}

	// Once the group answers again, the background probe clears the
	// verdict and full fan-out resumes.
	recovered.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, stats, err = coord.QueryCtx(context.Background(), pitch, 5, 0.1, index.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Degraded && len(got) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group never came back from dark: degraded=%v matches=%v", stats.Degraded, got)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
