package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"warping/internal/qbh"
	"warping/internal/retry"
	"warping/internal/store"
)

// PositionFileName persists a follower's durably-applied position in the
// primary's stream ("epoch:offset"), inside the follower's data dir. It
// is written only after the records up to it are applied through the
// follower's own durable store, so a restart can only under-report —
// which re-ships records that replay as no-ops.
const PositionFileName = "replica.pos"

func loadPosition(d *qbh.Durable) (qbh.ReplicationState, error) {
	data, err := readFile(d.FS(), filepath.Join(d.Dir(), PositionFileName))
	if os.IsNotExist(err) {
		// No position yet: the zero position is from epoch 0, which no
		// primary ever serves (epochs start at 1), so the first pull
		// answers SnapshotNeeded and the follower full-syncs.
		return qbh.ReplicationState{}, nil
	}
	if err != nil {
		return qbh.ReplicationState{}, fmt.Errorf("replica: read position: %w", err)
	}
	pos, err := qbh.ParseReplicationState(strings.TrimSpace(string(data)))
	if err != nil {
		return qbh.ReplicationState{}, fmt.Errorf("replica: corrupt position file: %w", err)
	}
	return pos, nil
}

func (n *Node) savePosition(pos qbh.ReplicationState) error {
	path := filepath.Join(n.Dir(), PositionFileName)
	if err := store.WriteFileAtomic(n.FS(), path, []byte(pos.String())); err != nil {
		return fmt.Errorf("replica: persist position: %w", err)
	}
	n.mu.Lock()
	n.pos = pos
	n.mu.Unlock()
	return nil
}

func readFile(fsys store.FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// pullLoop tails the primary until Stop. Errors back off with jitter and
// the loop keeps trying: a dead primary is indistinguishable from a slow
// one, and the follower keeps serving reads either way.
func (n *Node) pullLoop() {
	defer close(n.done)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-n.stop
		cancel()
	}()
	attempt := 0
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		if err := n.pullOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			attempt++
			n.cfg.Logf("replica: pull from %s failed (attempt %d): %v", n.primaryURL(), attempt, err)
			if err := retry.Sleep(ctx, n.cfg.Backoff.Delay(attempt)); err != nil {
				return
			}
			continue
		}
		attempt = 0
	}
}

// pullOnce performs one long-poll round trip: fetch records (or learn a
// snapshot is needed), apply them durably, persist the new position.
func (n *Node) pullOnce(ctx context.Context) error {
	pos := n.Position()
	wait := n.cfg.PollWait
	url := fmt.Sprintf("%s%s?pos=%s&wait=%d&follower=%s",
		n.primaryURL(), PathWAL, pos.String(), wait.Milliseconds(), n.cfg.FollowerID)
	// The request deadline leaves the server's long-poll room to expire
	// on its own; anything slower than that is a stuck connection.
	rctx, cancel := context.WithTimeout(ctx, wait+DefaultSyncTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: primary returned %s", resp.Status)
	}
	var wr WALResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return fmt.Errorf("replica: decode wal response: %w", err)
	}
	if wr.SnapshotNeeded {
		return n.syncFromSnapshot(ctx)
	}
	for _, rec := range wr.Records {
		if _, err := n.ApplyReplicated(rec.Payload); err != nil {
			return fmt.Errorf("replica: apply record at %d: %w", rec.Offset, err)
		}
	}
	next := qbh.ReplicationState{Epoch: wr.Epoch, Offset: wr.NextOffset}
	if next != pos {
		return n.savePosition(next)
	}
	return nil
}

// syncFromSnapshot re-bases the follower on the primary's snapshot: apply
// any songs it is missing (idempotent, concurrent with reads) and resume
// tailing from the position the snapshot reports.
func (n *Node) syncFromSnapshot(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.primaryURL()+PathSnapshot, nil)
	if err != nil {
		return err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot fetch returned %s", resp.Status)
	}
	pos, err := qbh.ParseReplicationState(resp.Header.Get(PositionHeader))
	if err != nil {
		return fmt.Errorf("replica: snapshot position header: %w", err)
	}
	applied, err := n.ApplySnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: apply snapshot: %w", err)
	}
	n.cfg.Logf("replica: snapshot sync applied %d songs, resuming at %v", applied, pos)
	return n.savePosition(pos)
}

func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}

// BootstrapFromPrimary prepares a fresh follower data directory: it
// downloads the primary's snapshot container into place and records the
// position to resume from, so a subsequent OpenDurable (which refuses an
// empty corpus) starts with the primary's songs. A directory that already
// has a snapshot is left alone.
func BootstrapFromPrimary(fsys store.FS, dir, primaryURL string, client *http.Client) error {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := fsys.Stat(filepath.Join(dir, qbh.SnapshotFileName)); err == nil {
		return nil
	}
	resp, err := client.Get(primaryURL + PathSnapshot)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: bootstrap snapshot returned %s", resp.Status)
	}
	pos, err := qbh.ParseReplicationState(resp.Header.Get(PositionHeader))
	if err != nil {
		return fmt.Errorf("replica: bootstrap position header: %w", err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: bootstrap read snapshot: %w", err)
	}
	if err := store.WriteFileAtomic(fsys, filepath.Join(dir, qbh.SnapshotFileName), data); err != nil {
		return err
	}
	return store.WriteFileAtomic(fsys, filepath.Join(dir, PositionFileName), []byte(pos.String()))
}
