package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"warping/internal/membership"
)

// TestMembershipPathPin keeps the endpoint paths the membership package
// drives (it cannot import this package) in lockstep with the ones this
// package actually mounts.
func TestMembershipPathPin(t *testing.T) {
	pins := []struct{ ours, theirs string }{
		{PathPromote, membership.DefaultPromotePath},
		{PathRepoint, membership.DefaultRepointPath},
		{PathExport, membership.DefaultExportPath},
		{PathImport, membership.DefaultImportPath},
	}
	for _, p := range pins {
		if p.ours != p.theirs {
			t.Errorf("path drift: replica mounts %q, membership drives %q", p.ours, p.theirs)
		}
	}
	if string(RolePrimary) != membership.RolePrimary || string(RoleFollower) != membership.RoleFollower {
		t.Errorf("role constant drift between replica and membership")
	}
}

// TestObserveViewFences drives the fencing check directly: a primary that
// sees a same-group unfenced primary with a later WAL epoch must fence
// itself and refuse writes; anything else must not fence it.
func TestObserveViewFences(t *testing.T) {
	base := testSongs(1, 3, 0)
	n, _ := startPrimary(t, base, NodeConfig{Group: "g1", Logf: t.Logf})
	myEpoch := n.Durable.Epoch()

	mkView := func(rec membership.NodeRecord) membership.View {
		return membership.View{Nodes: map[string]membership.NodeRecord{rec.ID: rec}}
	}
	benign := []membership.NodeRecord{
		{ID: "self", Group: "g1", Role: membership.RolePrimary, WALEpoch: myEpoch + 5},  // own record
		{ID: "other", Group: "g2", Role: membership.RolePrimary, WALEpoch: myEpoch + 5}, // other group
		{ID: "other", Group: "g1", Role: membership.RoleFollower, WALEpoch: myEpoch + 5},
		{ID: "other", Group: "g1", Role: membership.RolePrimary, WALEpoch: myEpoch}, // same epoch
		{ID: "other", Group: "g1", Role: membership.RolePrimary, Fenced: true, WALEpoch: myEpoch + 5},
	}
	for _, rec := range benign {
		n.ObserveView("self", mkView(rec))
		if n.Fenced() {
			t.Fatalf("fenced by benign record %+v", rec)
		}
	}
	extra := testSongs(9, 1, 100)[0]
	if _, err := n.AddSongTitled("pre-fence", extra.Melody); err != nil {
		t.Fatalf("unfenced primary refused write: %v", err)
	}

	n.ObserveView("self", mkView(membership.NodeRecord{
		ID: "successor", Group: "g1", Role: membership.RolePrimary, WALEpoch: myEpoch + 1,
	}))
	if !n.Fenced() {
		t.Fatal("primary did not fence on a higher-epoch successor")
	}
	if _, err := n.AddSongTitled("post-fence", extra.Melody); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("fenced primary write: got %v, want ErrNotPrimary", err)
	}
	if !n.State().Fenced {
		t.Fatal("fenced flag missing from state")
	}
	// The fenced flag travels in the node's own membership record.
	if rec := n.MembershipRecord("self", "http://self"); !rec.Fenced {
		t.Fatal("fenced flag missing from membership record")
	}
}

// TestRepoint checks the repoint handler's role gate and that a follower's
// pull target and primary hint actually move.
func TestRepoint(t *testing.T) {
	base := testSongs(2, 3, 0)
	primary, psrv := startPrimary(t, base, NodeConfig{Group: "g", Logf: t.Logf})
	follower := startFollower(t, t.TempDir(), base, psrv.URL)
	if got := follower.PrimaryHint(); got != psrv.URL {
		t.Fatalf("primary hint = %q, want %q", got, psrv.URL)
	}

	fmux := http.NewServeMux()
	follower.Mount(fmux)
	fsrv := httptest.NewServer(fmux)
	defer fsrv.Close()

	resp, err := http.Post(fsrv.URL+PathRepoint+"?primary=http://next:1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repoint returned %s", resp.Status)
	}
	if got := follower.primaryURL(); got != "http://next:1" {
		t.Fatalf("pull target after repoint = %q", got)
	}
	if got := follower.PrimaryHint(); got != "http://next:1" {
		t.Fatalf("primary hint after repoint = %q", got)
	}

	// Repointing a primary (and a repoint without a target) is refused.
	if primary.PrimaryHint() != "" {
		t.Fatal("primary reported a primary hint")
	}
	for _, u := range []string{psrv.URL + PathRepoint + "?primary=http://x", fsrv.URL + PathRepoint} {
		resp, err := http.Post(u, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		drainClose(resp.Body)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("POST %s returned %s, want 409", u, resp.Status)
		}
	}
}

// TestExportImport round-trips a migration leg: export the songs a target
// ring places on a group, import them on another node, and check the
// placement filter, id preservation and idempotency.
func TestExportImport(t *testing.T) {
	srcSongs := testSongs(3, 24, 0)
	src, ssrv := startPrimary(t, srcSongs, NodeConfig{Group: "a", Logf: t.Logf})
	dst, dsrv := startPrimary(t, testSongs(4, 1, 1000), NodeConfig{Group: "b", Logf: t.Logf})

	ring := membership.NewRing(2, []string{"a", "b"})
	wantMoving := 0
	for _, song := range src.Songs() {
		if ring.Owner(song.Title) == "b" {
			wantMoving++
		}
	}
	if wantMoving == 0 || wantMoving == src.NumSongs() {
		t.Fatalf("test corpus does not split across the ring (%d/%d moving)", wantMoving, src.NumSongs())
	}

	export := func() []byte {
		body, err := json.Marshal(membership.ExportRequest{Ring: ring, Group: "b"})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ssrv.URL+PathExport, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("export returned %s", resp.Status)
		}
		if got := resp.Header.Get(membership.ExportCountHeader); got != strconv.Itoa(wantMoving) {
			t.Fatalf("export count header = %q, want %d", got, wantMoving)
		}
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	importInto := func(stream []byte, wantApplied int) {
		resp, err := http.Post(dsrv.URL+PathImport, "application/octet-stream", bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("import returned %s", resp.Status)
		}
		var out struct{ Applied, Received int }
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Applied != wantApplied || out.Received != wantMoving {
			t.Fatalf("import applied %d/%d, want %d/%d", out.Applied, out.Received, wantApplied, wantMoving)
		}
	}

	stream := export()
	before := dst.NumSongs()
	importInto(stream, wantMoving)
	if got := dst.NumSongs(); got != before+wantMoving {
		t.Fatalf("destination has %d songs after import, want %d", got, before+wantMoving)
	}
	// Shipped songs keep their ids and the source keeps its copies.
	for _, song := range src.Songs() {
		if ring.Owner(song.Title) == "b" && !dst.HasSong(song.ID) {
			t.Fatalf("song %d (%q) missing on destination", song.ID, song.Title)
		}
	}
	if src.NumSongs() != len(srcSongs) {
		t.Fatalf("source lost songs during export: %d", src.NumSongs())
	}
	// Second import of the same stream is a pure no-op.
	importInto(stream, 0)

	// A follower refuses imports with 421 (writes go to the primary).
	follower := startFollower(t, t.TempDir(), srcSongs, ssrv.URL)
	fmux := http.NewServeMux()
	follower.Mount(fmux)
	fsrv := httptest.NewServer(fmux)
	defer fsrv.Close()
	resp, err := http.Post(fsrv.URL+PathImport, "application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower import returned %s, want 421", resp.Status)
	}
}

// TestDefaultPromotePathWorks is a behavioral pin: POSTing membership's
// default promote path against a mounted follower actually promotes it.
func TestDefaultPromotePathWorks(t *testing.T) {
	base := testSongs(5, 2, 0)
	_, psrv := startPrimary(t, base, NodeConfig{Group: "g", Logf: t.Logf})
	follower := startFollower(t, t.TempDir(), base, psrv.URL)
	fmux := http.NewServeMux()
	follower.Mount(fmux)
	fsrv := httptest.NewServer(fmux)
	defer fsrv.Close()

	resp, err := http.Post(fsrv.URL+membership.DefaultPromotePath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote returned %s", resp.Status)
	}
	if follower.Role() != RolePrimary {
		t.Fatalf("follower role after promote = %q", follower.Role())
	}
}

// TestObserveRingInstallsCompactionReaper checks the membership-driven
// reaping pipeline: a committed ring containing this node's group installs a
// compaction keep-filter that drops migrated-away songs at the next
// snapshot, while a pending rebalance, a ring missing the group, or an
// empty ring all clear the filter (reaping on an uncommitted or partial
// view could destroy the only copy of a song mid-migration).
func TestObserveRingInstallsCompactionReaper(t *testing.T) {
	base := testSongs(6, 24, 0)
	n, _ := startPrimary(t, base, NodeConfig{Group: "a", Logf: t.Logf})

	ring := membership.NewRing(3, []string{"a", "b"})
	wantKeep := 0
	for _, song := range n.Songs() {
		if ring.Owner(song.Title) == "a" {
			wantKeep++
		}
	}
	if wantKeep == 0 || wantKeep == len(base) {
		t.Fatalf("test corpus does not split across the ring (%d/%d kept)", wantKeep, len(base))
	}

	snapshot := func() {
		if err := n.Durable.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}

	// A pending rebalance must suppress reaping even with a committed ring.
	n.ObserveView("self", membership.View{
		Ring:      ring,
		Rebalance: membership.Rebalance{From: ring, To: membership.NewRing(4, []string{"a", "b", "c"})},
	})
	snapshot()
	if n.NumSongs() != len(base) {
		t.Fatalf("reaped during pending rebalance: %d songs left", n.NumSongs())
	}

	// A ring that does not place this group must not reap (the node may be
	// draining; its songs are exported, not destroyed locally by surprise).
	n.ObserveView("self", membership.View{Ring: membership.NewRing(3, []string{"b", "c"})})
	snapshot()
	if n.NumSongs() != len(base) {
		t.Fatalf("reaped under a ring missing our group: %d songs left", n.NumSongs())
	}

	// The committed ring installs the filter; compaction reaps foreign songs.
	n.ObserveView("self", membership.View{Ring: ring})
	snapshot()
	if got := n.NumSongs(); got != wantKeep {
		t.Fatalf("after committed-ring compaction: %d songs, want %d", got, wantKeep)
	}
	if got := n.Durable.ReapedSongs(); got != int64(len(base)-wantKeep) {
		t.Fatalf("ReapedSongs = %d, want %d", got, len(base)-wantKeep)
	}
	for _, song := range n.Songs() {
		if ring.Owner(song.Title) != "a" {
			t.Fatalf("song %q survived compaction but is owned by %q", song.Title, ring.Owner(song.Title))
		}
	}

	// An empty ring clears the filter again.
	n.ObserveView("self", membership.View{})
	snapshot()
	if got := n.NumSongs(); got != wantKeep {
		t.Fatalf("empty ring still reaped: %d songs, want %d", got, wantKeep)
	}
}
