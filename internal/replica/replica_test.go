package replica

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/retry"
	"warping/internal/store"
)

var testOpts = qbh.Options{NormalLen: 32, Dim: 4, PhraseMin: 8, PhraseMax: 12}

func testSongs(seed int64, count int, idOffset int64) []music.Song {
	songs := music.GenerateSongs(seed, count, 20, 30)
	for i := range songs {
		songs[i].ID += idOffset
	}
	return songs
}

func openDurable(t *testing.T, dir string, base []music.Song) *qbh.Durable {
	t.Helper()
	d, err := qbh.OpenDurable(dir, qbh.DurableOptions{
		FS:                 store.OS(),
		Logf:               func(string, ...interface{}) {},
		SnapshotWALRecords: -1,
		SnapshotWALBytes:   -1,
		Build:              func() (*qbh.System, error) { return qbh.Build(base, testOpts) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fastBackoff keeps test-time retries tight.
var fastBackoff = retry.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}

// startPrimary opens a primary node over a fresh durable store and serves
// its replication endpoints over httptest.
func startPrimary(t *testing.T, base []music.Song, cfg NodeConfig) (*Node, *httptest.Server) {
	t.Helper()
	d := openDurable(t, t.TempDir(), base)
	cfg.Role = RolePrimary
	n, err := NewNode(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	mux := http.NewServeMux()
	n.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return n, srv
}

// startFollower opens a follower in dir pulling from primaryURL.
func startFollower(t *testing.T, dir string, base []music.Song, primaryURL string) *Node {
	t.Helper()
	d := openDurable(t, dir, base)
	n, err := NewNode(d, NodeConfig{
		Role:       RoleFollower,
		PrimaryURL: primaryURL,
		FollowerID: dir,
		PollWait:   200 * time.Millisecond,
		Backoff:    fastBackoff,
		Logf:       func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func waitConverged(t *testing.T, primary, follower *Node, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if follower.Digest() == primary.Digest() && follower.NumSongs() == primary.NumSongs() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never converged: %d/%d songs, digest match %v",
		follower.NumSongs(), primary.NumSongs(), follower.Digest() == primary.Digest())
}

func TestFollowerConvergesViaWALShipping(t *testing.T) {
	base := testSongs(1, 3, 0)
	primary, srv := startPrimary(t, base, NodeConfig{})
	follower := startFollower(t, t.TempDir(), base, srv.URL)

	for _, s := range testSongs(2, 5, 100) {
		if err := primary.AddSong(s); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, primary, follower, 5*time.Second)

	// The follower's position frontier matches the primary's.
	if pos := follower.Position(); !pos.AtLeast(primary.ReplState()) {
		t.Fatalf("follower position %v behind primary frontier %v", pos, primary.ReplState())
	}
	// And the primary recorded its ack watermark.
	if primary.Followers() == 0 {
		t.Fatal("primary recorded no follower ack watermark")
	}
}

func TestFreshFollowerSyncsFromSnapshot(t *testing.T) {
	base := testSongs(3, 4, 0)
	primary, srv := startPrimary(t, base, NodeConfig{})
	// The follower starts with a different, smaller corpus and a zero
	// position: its first pull answers SnapshotNeeded.
	follower := startFollower(t, t.TempDir(), testSongs(3, 1, 0), srv.URL)
	waitConverged(t, primary, follower, 5*time.Second)
}

func TestFollowerResumesAcrossRestart(t *testing.T) {
	base := testSongs(4, 3, 0)
	primary, srv := startPrimary(t, base, NodeConfig{})
	dir := t.TempDir()
	follower := startFollower(t, dir, base, srv.URL)

	for _, s := range testSongs(5, 3, 200) {
		if err := primary.AddSong(s); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, primary, follower, 5*time.Second)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// More writes while the follower is down.
	for _, s := range testSongs(6, 3, 300) {
		if err := primary.AddSong(s); err != nil {
			t.Fatal(err)
		}
	}
	// Restart from the same directory: resume from the persisted
	// position, no snapshot round trip needed.
	follower2 := startFollower(t, dir, nil, srv.URL)
	waitConverged(t, primary, follower2, 5*time.Second)
}

func TestFollowerCatchesUpPastCompaction(t *testing.T) {
	base := testSongs(7, 3, 0)
	primary, srv := startPrimary(t, base, NodeConfig{})
	dir := t.TempDir()
	follower := startFollower(t, dir, base, srv.URL)
	waitConverged(t, primary, follower, 5*time.Second)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// While the follower is down: writes, then a snapshot compaction that
	// resets the WAL. The follower's saved position is from a dead epoch.
	for _, s := range testSongs(8, 3, 400) {
		if err := primary.AddSong(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Snapshot(); err != nil {
		t.Fatal(err)
	}
	follower2 := startFollower(t, dir, nil, srv.URL)
	waitConverged(t, primary, follower2, 5*time.Second)
}

func TestWritesRejectedOnFollower(t *testing.T) {
	base := testSongs(9, 3, 0)
	_, srv := startPrimary(t, base, NodeConfig{})
	follower := startFollower(t, t.TempDir(), base, srv.URL)

	if _, err := follower.AddSongTitled("nope", testSongs(10, 1, 500)[0].Melody); err == nil {
		t.Fatal("follower accepted a write")
	} else if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower write error = %v, want ErrNotPrimary", err)
	}
}

func TestPromoteFollowerAcceptsWrites(t *testing.T) {
	base := testSongs(11, 3, 0)
	primary, srv := startPrimary(t, base, NodeConfig{})
	follower := startFollower(t, t.TempDir(), base, srv.URL)

	for _, s := range testSongs(12, 2, 600) {
		if err := primary.AddSong(s); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, primary, follower, 5*time.Second)

	if err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	if follower.Role() != RolePrimary {
		t.Fatal("role not primary after promote")
	}
	// The promoted node holds everything the old primary acked and now
	// accepts writes of its own.
	if follower.Digest() != primary.Digest() {
		t.Fatal("promoted follower lost state")
	}
	if _, err := follower.AddSongTitled("post-promotion", testSongs(13, 1, 700)[0].Melody); err != nil {
		t.Fatalf("promoted node rejected write: %v", err)
	}
}

func TestSemiSyncWriteWaitsForFollower(t *testing.T) {
	base := testSongs(14, 3, 0)
	primary, srv := startPrimary(t, base, NodeConfig{
		MinSyncFollowers: 1,
		SyncTimeout:      5 * time.Second,
	})
	startFollower(t, t.TempDir(), base, srv.URL)

	// The write only returns once the follower's ack watermark covers it.
	if err := primary.AddSong(testSongs(15, 1, 800)[0]); err != nil {
		t.Fatalf("semi-sync write failed: %v", err)
	}
	// The follower's recorded ack must now be at the primary's frontier.
	if primary.Followers() != 1 {
		t.Fatalf("followers = %d, want 1", primary.Followers())
	}
}

func TestSemiSyncWriteFailsWithoutFollowers(t *testing.T) {
	base := testSongs(16, 3, 0)
	primary, _ := startPrimary(t, base, NodeConfig{
		MinSyncFollowers: 1,
		SyncTimeout:      100 * time.Millisecond,
	})
	err := primary.AddSong(testSongs(17, 1, 900)[0])
	if !errors.Is(err, ErrNotReplicated) {
		t.Fatalf("quorumless semi-sync write error = %v, want ErrNotReplicated", err)
	}
	// The write is still locally durable (it ships when a follower shows
	// up) — it is just not acknowledged.
	if !primary.HasSong(testSongs(17, 1, 900)[0].ID) {
		t.Fatal("unconfirmed write vanished from the primary")
	}
}

func TestBootstrapFromPrimary(t *testing.T) {
	base := testSongs(18, 4, 0)
	primary, srv := startPrimary(t, base, NodeConfig{})
	dir := t.TempDir()
	if err := BootstrapFromPrimary(store.OS(), dir, srv.URL, srv.Client()); err != nil {
		t.Fatal(err)
	}
	// The bootstrapped directory opens without a builder — the snapshot
	// is in place — and matches the primary.
	d, err := qbh.OpenDurable(dir, qbh.DurableOptions{
		FS:                 store.OS(),
		Logf:               func(string, ...interface{}) {},
		SnapshotWALRecords: -1,
		SnapshotWALBytes:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	if d.Digest() != primary.Digest() {
		t.Fatal("bootstrapped corpus differs from primary")
	}
	pos, err := loadPosition(d)
	if err != nil {
		t.Fatal(err)
	}
	if pos.Epoch != primary.Epoch() {
		t.Fatalf("bootstrapped position epoch %d, primary epoch %d", pos.Epoch, primary.Epoch())
	}
	// Bootstrapping again is a no-op: the directory is already primed.
	if err := BootstrapFromPrimary(store.OS(), dir, srv.URL, srv.Client()); err != nil {
		t.Fatal(err)
	}
}


// TestBootstrappedEpochNeverZero pins the invariant the zero replication
// position relies on: a live node's epoch is always >= 1, including a
// node whose directory was seeded by BootstrapFromPrimary (which ships a
// snapshot but no epoch file, so OpenDurable skips the initial
// compaction that would otherwise mint epoch 1).
func TestBootstrappedEpochNeverZero(t *testing.T) {
	base := testSongs(31, 4, 0)
	_, srv := startPrimary(t, base, NodeConfig{})
	dir := t.TempDir()
	if err := BootstrapFromPrimary(store.OS(), dir, srv.URL, srv.Client()); err != nil {
		t.Fatal(err)
	}
	d, err := qbh.OpenDurable(dir, qbh.DurableOptions{
		FS:                 store.OS(),
		Logf:               func(string, ...interface{}) {},
		SnapshotWALRecords: -1,
		SnapshotWALBytes:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	if d.Epoch() < 1 {
		t.Fatalf("bootstrapped store opened at epoch %d; 0 must never be live", d.Epoch())
	}
}

// TestPromoteStartsFreshEpoch: promotion must start a WAL generation
// strictly after the dead primary's, so a position the old primary issued
// epoch-mismatches against the promoted node and forces a snapshot
// re-sync instead of reading alien offsets out of the new log.
func TestPromoteStartsFreshEpoch(t *testing.T) {
	base := testSongs(32, 4, 0)
	primary, srv := startPrimary(t, base, NodeConfig{})
	follower := startFollower(t, t.TempDir(), base, srv.URL)
	for _, s := range testSongs(33, 3, 100) {
		if err := primary.AddSong(s); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, primary, follower, 5*time.Second)

	oldPos := primary.ReplState() // what a sibling follower would hold
	if err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := follower.Epoch(); got <= oldPos.Epoch {
		t.Fatalf("promoted epoch %d not past old primary epoch %d", got, oldPos.Epoch)
	}
	// A replica presenting the dead primary's position gets told to
	// snapshot-sync, never served records from the new log.
	if _, _, err := follower.WALRecordsFrom(oldPos, 1<<20); !errors.Is(err, qbh.ErrSnapshotNeeded) {
		t.Fatalf("old-primary position served from new log: err=%v", err)
	}
}
