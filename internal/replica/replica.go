// Package replica turns single-node durable QBH systems into replicated
// shard groups. Each group has one primary and any number of followers:
//
//   - The primary is an ordinary qbh.Durable — writes are acknowledged
//     after the group-committed WAL fsync — that additionally serves its
//     durability artifacts over HTTP: the checksummed snapshot container
//     and offset-addressed WAL records (store.WALRecord framing).
//   - Followers pull: a long-polling tail of the primary's WAL, applied
//     idempotently (by song id) into the follower's own durable store, so
//     a follower is itself crash-safe and can be promoted. A follower
//     whose position is gone — the primary compacted past it, or the
//     follower is brand new — re-syncs from the snapshot and resumes
//     tailing from the position the snapshot reports.
//   - Each pull carries the follower's durably-applied position; the
//     primary keeps these ack watermarks, and with MinSyncFollowers > 0 a
//     write is only acknowledged to the client once enough followers have
//     that position (semi-synchronous replication) — the mode under which
//     killing the primary provably loses no acknowledged write, because a
//     promotable follower always holds it.
//
// Followers serve read traffic with the same query endpoints as the
// primary; only writes are role-gated (ErrNotPrimary). The whole protocol
// is four HTTP endpoints (PathState, PathWAL, PathSnapshot, PathPromote),
// deliberately resumable and idempotent at every step: any request can be
// retried, any segment can be re-shipped, any snapshot re-applied.
package replica

import (
	"errors"
	"time"
)

// Role is a node's current duty in its shard group. A follower can be
// promoted at runtime; a primary never demotes (restart it as a follower
// instead — its durable state carries over).
type Role string

const (
	RolePrimary  Role = "primary"
	RoleFollower Role = "follower"
)

// Replication protocol endpoints, mounted next to the public query API.
const (
	// PathState (GET) reports role, group, position and corpus digest.
	PathState = "/replica/state"
	// PathWAL (GET) returns durable WAL records from ?pos=epoch:offset,
	// long-polling up to ?wait= when the follower is caught up. The
	// request's pos doubles as the follower's durable ack watermark;
	// ?follower= names the puller.
	PathWAL = "/replica/wal"
	// PathSnapshot (GET) streams the snapshot container; the
	// PositionHeader carries the epoch:offset to resume tailing from.
	PathSnapshot = "/replica/snapshot"
	// PathPromote (POST) switches a follower to primary duty.
	PathPromote = "/replica/promote"
)

// PositionHeader carries an "epoch:offset" replication position on
// snapshot responses.
const PositionHeader = "X-Qbh-Replica-Position"

// ErrNotPrimary marks a write sent to a follower: the client must route
// it to the group's primary (the server maps this to 421).
var ErrNotPrimary = errors.New("replica: not the primary")

// ErrNotReplicated marks a write that is durable on the primary but was
// not confirmed by the configured number of followers within the sync
// timeout. The write exists locally and will ship when followers catch
// up, but it is NOT acknowledged: after a primary failure plus promotion
// it may be lost, so callers must surface the failure (the server maps
// this to 503).
var ErrNotReplicated = errors.New("replica: write not confirmed by follower quorum")

// StateResponse is the PathState payload.
type StateResponse struct {
	Group string `json:"group"`
	Role  Role   `json:"role"`
	// Fenced marks a deposed primary refusing writes (see PathRepoint's
	// sibling docs in membership.go).
	Fenced bool  `json:"fenced,omitempty"`
	Epoch  int64 `json:"epoch"`
	Offset int64 `json:"offset"`
	Songs  int    `json:"songs"`
	// Digest fingerprints the song corpus (hex); equal digests mean
	// identical replicas.
	Digest string `json:"digest"`
	// Followers is the number of followers with a recorded ack watermark
	// (primary only).
	Followers int `json:"followers,omitempty"`
}

// RecordWire is one shipped WAL record; Payload is base64 in JSON.
type RecordWire struct {
	Offset  int64  `json:"offset"`
	Payload []byte `json:"payload"`
}

// WALResponse is the PathWAL payload. SnapshotNeeded tells the follower
// its position is from a dead log generation: fetch PathSnapshot, apply,
// resume from the position the snapshot reports.
type WALResponse struct {
	Epoch          int64        `json:"epoch"`
	Records        []RecordWire `json:"records,omitempty"`
	NextOffset     int64        `json:"next_offset"`
	SnapshotNeeded bool         `json:"snapshot_needed,omitempty"`
}

// Tunables with package-wide defaults; NodeConfig zero values select
// these.
const (
	// DefaultPollWait is the server-side long-poll ceiling for PathWAL.
	DefaultPollWait = 10 * time.Second
	// DefaultSyncTimeout bounds how long a semi-sync write waits for its
	// follower quorum before returning ErrNotReplicated.
	DefaultSyncTimeout = 5 * time.Second
	// DefaultMaxBatchBytes bounds one shipped WAL batch's payload.
	DefaultMaxBatchBytes = 4 << 20
)
