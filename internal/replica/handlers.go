package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"warping/internal/qbh"
)

// Mount registers the replication endpoints. The argument is satisfied by
// *http.ServeMux and by the server package's Handler.
func (n *Node) Mount(mux interface {
	Handle(pattern string, handler http.Handler)
}) {
	mux.Handle(PathState, http.HandlerFunc(n.handleState))
	mux.Handle(PathWAL, http.HandlerFunc(n.handleWAL))
	mux.Handle(PathSnapshot, http.HandlerFunc(n.handleSnapshot))
	mux.Handle(PathPromote, http.HandlerFunc(n.handlePromote))
	mux.Handle(PathRepoint, http.HandlerFunc(n.handleRepoint))
	mux.Handle(PathExport, http.HandlerFunc(n.handleExport))
	mux.Handle(PathImport, http.HandlerFunc(n.handleImport))
}

func replyJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (n *Node) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	replyJSON(w, n.State())
}

// handleWAL serves durable WAL records from ?pos=epoch:offset onward. A
// caught-up follower long-polls: the handler parks on the durable-commit
// broadcast for up to ?wait= and returns an empty batch on timeout. The
// request's pos is the follower's durable ack watermark and is recorded
// before serving, which is what semi-sync writes wait on.
func (n *Node) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	pos, err := qbh.ParseReplicationState(q.Get("pos"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad pos: %v", err), http.StatusBadRequest)
		return
	}
	wait := time.Duration(0)
	if s := q.Get("wait"); s != "" {
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad wait", http.StatusBadRequest)
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > n.cfg.PollWait {
		wait = n.cfg.PollWait
	}
	n.recordAck(q.Get("follower"), pos)

	deadline := time.Now().Add(wait)
	for {
		// Subscribe before reading: a commit that lands between the read
		// and the park still closes this channel, so no wake-up is lost.
		notify := n.DurableNotify()
		recs, next, err := n.WALRecordsFrom(pos, n.cfg.MaxBatchBytes)
		switch {
		case errors.Is(err, qbh.ErrSnapshotNeeded):
			replyJSON(w, WALResponse{Epoch: n.Epoch(), SnapshotNeeded: true})
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(recs) > 0 || wait == 0 || time.Now().After(deadline) {
			resp := WALResponse{Epoch: next.Epoch, NextOffset: next.Offset}
			for _, rec := range recs {
				resp.Records = append(resp.Records, RecordWire{Offset: rec.Offset, Payload: rec.Payload})
			}
			replyJSON(w, resp)
			return
		}
		t := time.NewTimer(time.Until(deadline))
		select {
		case <-notify:
			t.Stop()
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
}

// handleSnapshot streams the snapshot container. PositionHeader carries
// the epoch:offset the consumer resumes tailing from after applying it.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rc, pos, size, err := n.OpenSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set(PositionHeader, pos.String())
	_, _ = io.Copy(w, rc)
}

func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := n.Promote(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	replyJSON(w, n.State())
}
