// Kill-a-replica chaos tests: each replica runs as a real OS process (the
// test binary re-execed in helper mode) and dies by SIGKILL — no graceful
// shutdown, no flushing, exactly what a machine failure looks like. The
// parent process plays coordinator and asserts the cluster-level
// invariants: queries keep answering (and stay byte-identical to a
// single-node system) while a follower dies; a primary killed right after
// acknowledging semi-sync writes loses none of them after promotion; a
// whole group going dark yields partial, degraded results rather than an
// outage.
package replica_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"warping/internal/hum"
	"warping/internal/index"
	"warping/internal/midi"
	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/replica"
	"warping/internal/retry"
	"warping/internal/server"
	"warping/internal/store"
	"warping/internal/ts"
)

const helperEnv = "QBH_CHAOS_HELPER"

var chaosOpts = qbh.Options{PhraseMin: 8, PhraseMax: 20}

// chaosCorpus derives the deterministic corpus both the parent (for
// expectations) and the helper processes (for building) use.
func chaosCorpus(seed int64, offset int64) []music.Song {
	songs := music.GenerateSongs(seed, 8, 100, 200)
	for i := range songs {
		songs[i].ID += offset
	}
	return songs
}

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

// helperMain is the re-execed replica process: open the durable store,
// wrap it in a Node, serve the full API + replication endpoints, print
// the bound address, and run until killed.
func helperMain() {
	dir := os.Getenv("QBH_CHAOS_DIR")
	role := replica.Role(os.Getenv("QBH_CHAOS_ROLE"))
	primaryURL := os.Getenv("QBH_CHAOS_PRIMARY")
	seed, _ := strconv.ParseInt(os.Getenv("QBH_CHAOS_SEED"), 10, 64)
	offset, _ := strconv.ParseInt(os.Getenv("QBH_CHAOS_OFFSET"), 10, 64)
	minSync, _ := strconv.Atoi(os.Getenv("QBH_CHAOS_MINSYNC"))

	base := chaosCorpus(seed, offset)
	d, err := qbh.OpenDurable(dir, qbh.DurableOptions{
		FS:                 store.OS(),
		SnapshotWALRecords: -1,
		SnapshotWALBytes:   -1,
		Build:              func() (*qbh.System, error) { return qbh.Build(base, chaosOpts) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: open durable: %v\n", err)
		os.Exit(1)
	}
	n, err := replica.NewNode(d, replica.NodeConfig{
		Group:            os.Getenv("QBH_CHAOS_GROUP"),
		Role:             role,
		PrimaryURL:       primaryURL,
		MinSyncFollowers: minSync,
		PollWait:         200 * time.Millisecond,
		Backoff:          retry.Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: new node: %v\n", err)
		os.Exit(1)
	}
	h := server.NewBackend(n, server.Config{})
	h.EnablePlannedQueries()
	n.Mount(h)

	srv := &http.Server{Handler: h}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR=http://%s\n", ln.Addr().String())
	_ = srv.Serve(ln)
}

// replicaProc is one killable replica process.
type replicaProc struct {
	cmd *exec.Cmd
	url string
	dir string
}

// startReplicaProc re-execs the test binary as a replica node and waits
// for it to report its address.
func startReplicaProc(t *testing.T, dir string, env map[string]string) *replicaProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), helperEnv+"=1", "QBH_CHAOS_DIR="+dir)
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &replicaProc{cmd: cmd, dir: dir}
	t.Cleanup(func() { p.kill() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if s, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
				addrCh <- s
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatal("replica process exited before reporting its address")
		}
		p.url = addr
	case <-time.After(60 * time.Second):
		t.Fatal("replica process never reported its address")
	}
	return p
}

// kill delivers SIGKILL: no cleanup, no flush — a crash.
func (p *replicaProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + replica.PathState)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("replica at %s never became ready", url)
}

func replicaState(t *testing.T, url string) replica.StateResponse {
	t.Helper()
	var st replica.StateResponse
	resp, err := http.Get(url + replica.PathState)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFollowerSynced(t *testing.T, primaryURL, followerURL string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		p := replicaState(t, primaryURL)
		f := replicaState(t, followerURL)
		if p.Digest == f.Digest && p.Songs == f.Songs {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("follower never synced with primary")
}

func chaosPitch(songs []music.Song, which int, seed int64) ts.Series {
	r := rand.New(rand.NewSource(seed))
	return hum.StripSilence(hum.GoodSinger().RenderPitch(songs[which%len(songs)].Melody, r))
}

func newChaosCoordinator(t *testing.T, groups ...server.GroupSpec) *server.Coordinator {
	t.Helper()
	coord, err := server.NewCoordinator(server.CoordinatorConfig{
		Groups:         groups,
		Opts:           chaosOpts,
		ReplicaTimeout: 10 * time.Second,
		HedgeAfter:     150 * time.Millisecond,
		Backoff:        retry.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Logf:           func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestChaosFollowerSIGKILLDuringQueries kills a follower while the
// coordinator streams queries through the group. Every query must keep
// answering — hedged over to the survivor — and every result must be
// identical to a single-node system over the same corpus.
func TestChaosFollowerSIGKILLDuringQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tests spawn real processes")
	}
	corpus := chaosCorpus(50, 0)
	single, err := qbh.Build(corpus, chaosOpts)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]string{"QBH_CHAOS_SEED": "50", "QBH_CHAOS_OFFSET": "0", "QBH_CHAOS_GROUP": "g"}
	primary := startReplicaProc(t, t.TempDir(), merge(env, "QBH_CHAOS_ROLE", "primary"))
	waitReady(t, primary.url)
	follower := startReplicaProc(t, t.TempDir(), merge(env, "QBH_CHAOS_ROLE", "follower", "QBH_CHAOS_PRIMARY", primary.url))
	waitReady(t, follower.url)
	waitFollowerSynced(t, primary.url, follower.url)

	coord := newChaosCoordinator(t, server.GroupSpec{Name: "g", Replicas: []string{follower.url, primary.url}})

	check := func(round int) {
		pitch := chaosPitch(corpus, round, int64(60+round))
		want, _, err := single.QueryCtx(context.Background(), pitch, 3, 0.1, index.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := coord.QueryCtx(context.Background(), pitch, 3, 0.1, index.Limits{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.Degraded {
			t.Fatalf("round %d degraded with the primary still alive", round)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d matches, single node had %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i].SongID != want[i].SongID {
				t.Fatalf("round %d rank %d: song %d, single node had %d", round, i, got[i].SongID, want[i].SongID)
			}
		}
	}

	check(0)
	follower.kill() // mid-stream: the next queries hit a dead replica first
	for round := 1; round < 4; round++ {
		check(round)
	}
}

// TestChaosPrimarySIGKILLLosesNoAckedWrite runs the group semi-sync
// (MinSyncFollowers=1), acknowledges writes, SIGKILLs the primary, and
// promotes the follower: every acknowledged write must be present on the
// promoted node. This is the zero-loss contract semi-sync buys.
func TestChaosPrimarySIGKILLLosesNoAckedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tests spawn real processes")
	}
	env := map[string]string{"QBH_CHAOS_SEED": "70", "QBH_CHAOS_OFFSET": "0", "QBH_CHAOS_GROUP": "g"}
	primary := startReplicaProc(t, t.TempDir(), merge(env, "QBH_CHAOS_ROLE", "primary", "QBH_CHAOS_MINSYNC", "1"))
	waitReady(t, primary.url)
	follower := startReplicaProc(t, t.TempDir(), merge(env, "QBH_CHAOS_ROLE", "follower", "QBH_CHAOS_PRIMARY", primary.url))
	waitReady(t, follower.url)
	waitFollowerSynced(t, primary.url, follower.url)

	// Acknowledge writes through the public API: each 201 means the write
	// is fsynced on the primary AND confirmed applied by the follower.
	cli := server.NewClient(primary.url, nil)
	extra := chaosCorpus(71, 1000)
	var acked []string
	for i, s := range extra[:4] {
		title := fmt.Sprintf("acked-%d", i)
		midiData, err := midi.EncodeMelody(s.Melody, 500000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.AddSong(title, midiData); err != nil {
			t.Fatalf("write %d not acknowledged: %v", i, err)
		}
		acked = append(acked, title)
	}

	primary.kill() // immediately after the last ack

	// Promote the follower and verify every acknowledged write survived.
	resp, err := http.Post(follower.url+replica.PathPromote, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %s", resp.Status)
	}
	songs, err := server.NewClient(follower.url, nil).Songs()
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(songs))
	for _, s := range songs {
		have[s.Title] = true
	}
	for _, title := range acked {
		if !have[title] {
			t.Fatalf("acknowledged write %q lost after primary SIGKILL + promotion", title)
		}
	}
	// The promoted primary accepts writes.
	w, err := server.NewClient(follower.url, nil).AddSong("post-promotion", mustMelody(t, extra[5].Melody))
	if err != nil {
		t.Fatalf("promoted node rejected write: %v", err)
	}
	if w.Title != "post-promotion" {
		t.Fatalf("promoted write echoed %q", w.Title)
	}
}

// TestChaosWholeGroupDownDegraded kills every process of one group: the
// coordinator must answer with the surviving group's results, marked
// degraded — partial, not an outage.
func TestChaosWholeGroupDownDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tests spawn real processes")
	}
	corpusA := chaosCorpus(80, 0)
	envA := map[string]string{"QBH_CHAOS_SEED": "80", "QBH_CHAOS_OFFSET": "0", "QBH_CHAOS_GROUP": "a"}
	envB := map[string]string{"QBH_CHAOS_SEED": "81", "QBH_CHAOS_OFFSET": "500", "QBH_CHAOS_GROUP": "b"}
	pa := startReplicaProc(t, t.TempDir(), merge(envA, "QBH_CHAOS_ROLE", "primary"))
	pb := startReplicaProc(t, t.TempDir(), merge(envB, "QBH_CHAOS_ROLE", "primary"))
	waitReady(t, pa.url)
	waitReady(t, pb.url)

	coord := newChaosCoordinator(t,
		server.GroupSpec{Name: "a", Replicas: []string{pa.url}},
		server.GroupSpec{Name: "b", Replicas: []string{pb.url}},
	)

	pb.kill() // the whole of group b goes dark: connection refused, instantly

	got, stats, err := coord.QueryCtx(context.Background(), chaosPitch(corpusA, 0, 9), 3, 0.1, index.Limits{})
	if err != nil {
		t.Fatalf("partial query errored: %v", err)
	}
	if !stats.Degraded {
		t.Fatal("group down but result not marked degraded")
	}
	if len(got) == 0 {
		t.Fatal("no partial results from the surviving group")
	}
}

// TestChaosFollowerTornWALCatchesUp crashes a follower, corrupts its WAL
// tail the way a torn write would, restarts it, and requires convergence:
// recovery truncates the torn tail and the pull loop re-ships the rest.
func TestChaosFollowerTornWALCatchesUp(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tests spawn real processes")
	}
	env := map[string]string{"QBH_CHAOS_SEED": "90", "QBH_CHAOS_OFFSET": "0", "QBH_CHAOS_GROUP": "g"}
	primary := startReplicaProc(t, t.TempDir(), merge(env, "QBH_CHAOS_ROLE", "primary"))
	waitReady(t, primary.url)
	fdir := t.TempDir()
	follower := startReplicaProc(t, fdir, merge(env, "QBH_CHAOS_ROLE", "follower", "QBH_CHAOS_PRIMARY", primary.url))
	waitReady(t, follower.url)
	waitFollowerSynced(t, primary.url, follower.url)

	// Write through the primary so the follower has replicated WAL state.
	cli := server.NewClient(primary.url, nil)
	for i, s := range chaosCorpus(91, 2000)[:3] {
		if _, err := cli.AddSong(fmt.Sprintf("pre-crash-%d", i), mustMelody(t, s.Melody)); err != nil {
			t.Fatal(err)
		}
	}
	waitFollowerSynced(t, primary.url, follower.url)
	follower.kill()

	// A torn write: garbage at the WAL tail, as if power died mid-append.
	f, err := os.OpenFile(filepath.Join(fdir, qbh.WALFileName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	restarted := startReplicaProc(t, fdir, merge(env, "QBH_CHAOS_ROLE", "follower", "QBH_CHAOS_PRIMARY", primary.url))
	waitReady(t, restarted.url)
	waitFollowerSynced(t, primary.url, restarted.url)
}

func merge(base map[string]string, kv ...string) map[string]string {
	out := make(map[string]string, len(base)+len(kv)/2)
	for k, v := range base {
		out[k] = v
	}
	for i := 0; i+1 < len(kv); i += 2 {
		out[kv[i]] = kv[i+1]
	}
	return out
}

func mustMelody(t *testing.T, m music.Melody) []byte {
	t.Helper()
	data, err := midi.EncodeMelody(m, 500000)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
