package replica

import (
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"warping/internal/music"
	"warping/internal/qbh"
	"warping/internal/retry"
)

// NodeConfig configures one replica node. Zero values select defaults.
type NodeConfig struct {
	// Group names the shard group this node belongs to (monitoring only;
	// the data placement is decided by the coordinator's group map).
	Group string
	// Role is the starting role. A follower additionally needs
	// PrimaryURL.
	Role Role
	// PrimaryURL is the base URL of the group primary (follower only).
	PrimaryURL string
	// FollowerID identifies this follower in ack watermarks; defaults to
	// the data directory path.
	FollowerID string
	// MinSyncFollowers > 0 makes writes semi-synchronous: a write is
	// acknowledged only once this many followers have durably applied it.
	// 0 (default) acknowledges after the local group-committed fsync and
	// ships asynchronously.
	MinSyncFollowers int
	// SyncTimeout bounds the semi-sync quorum wait (DefaultSyncTimeout).
	SyncTimeout time.Duration
	// PollWait caps the server-side long-poll on PathWAL
	// (DefaultPollWait).
	PollWait time.Duration
	// MaxBatchBytes bounds one shipped WAL batch (DefaultMaxBatchBytes).
	MaxBatchBytes int
	// Client is the HTTP client for follower pulls; nil builds one
	// without a global timeout (long-polls need open-ended requests; the
	// per-request contexts bound everything else).
	Client *http.Client
	// Backoff paces follower retry after pull errors.
	Backoff retry.Backoff
	// Logf receives replication diagnostics; nil selects log.Printf.
	Logf func(format string, args ...interface{})
}

func (c *NodeConfig) fill(d *qbh.Durable) {
	if c.Role == "" {
		c.Role = RolePrimary
	}
	if c.FollowerID == "" {
		c.FollowerID = d.DurabilityStats().Dir
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = DefaultSyncTimeout
	}
	if c.PollWait <= 0 {
		c.PollWait = DefaultPollWait
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Node is one member of a replicated shard group: a durable QBH system
// plus the replication machinery for its current role. It embeds the
// Durable, so it serves the full query surface (and implements the
// server's Backend interface); writes are role-gated.
type Node struct {
	*qbh.Durable
	cfg NodeConfig

	mu   sync.Mutex
	role Role
	// primary is the follower's current pull target; PathRepoint changes
	// it after a failover.
	primary string
	// fenced marks a deposed primary that observed its successor in the
	// membership view: it refuses writes until restarted as a follower.
	fenced bool
	// acks maps follower id -> the position that follower has durably
	// applied (primary side). ackCh is closed and replaced whenever acks
	// advance; semi-sync writes wait on it.
	acks  map[string]qbh.ReplicationState
	ackCh chan struct{}
	// pos is the follower's durably-applied position in the primary's
	// stream, persisted in the data directory across restarts.
	pos qbh.ReplicationState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewNode wraps an open Durable for replication duty. A follower starts
// its pull loop immediately; call Stop (or Close) to end it.
func NewNode(d *qbh.Durable, cfg NodeConfig) (*Node, error) {
	cfg.fill(d)
	n := &Node{
		Durable: d,
		cfg:     cfg,
		role:    cfg.Role,
		primary: cfg.PrimaryURL,
		acks:    make(map[string]qbh.ReplicationState),
		ackCh:   make(chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	switch cfg.Role {
	case RolePrimary:
		close(n.done) // no background loop to wait for
	case RoleFollower:
		if cfg.PrimaryURL == "" {
			return nil, fmt.Errorf("replica: follower needs a primary URL")
		}
		pos, err := loadPosition(d)
		if err != nil {
			return nil, err
		}
		n.pos = pos
		go n.pullLoop()
	default:
		return nil, fmt.Errorf("replica: unknown role %q", cfg.Role)
	}
	return n, nil
}

// Role reports the node's current duty.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Position reports the follower's durably-applied position (zero for a
// primary, whose position is its own ReplState frontier).
func (n *Node) Position() qbh.ReplicationState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pos
}

// Promote switches a follower to primary duty: the pull loop stops (any
// in-flight batch finishes applying first, so the promoted state is
// consistent), the durable store starts a fresh WAL generation strictly
// after the old primary's epoch — so positions the dead primary issued
// can never alias offsets into this node's log; stale replicas
// epoch-mismatch and re-sync from the snapshot — and writes start being
// accepted. Promoting a primary is a no-op. The caller's orchestration
// layer is responsible for making sure the old primary is actually gone
// and for repointing the group's remaining followers (promote the
// furthest-ahead follower: compare durable positions via PathState).
func (n *Node) Promote() error {
	n.mu.Lock()
	if n.role == RolePrimary {
		n.mu.Unlock()
		return nil
	}
	pulled := n.pos
	n.mu.Unlock()
	n.stopPull()
	if err := n.Durable.PromoteEpoch(pulled.Epoch); err != nil {
		return fmt.Errorf("replica: promoting: %w", err)
	}
	n.mu.Lock()
	n.role = RolePrimary
	n.mu.Unlock()
	n.cfg.Logf("replica: promoted to primary at %v (group %q)", n.Durable.ReplState(), n.cfg.Group)
	return nil
}

// stopPull ends the follower loop and waits for it to drain.
func (n *Node) stopPull() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
}

// Stop ends background replication work (follower pull loop). The
// underlying Durable stays open.
func (n *Node) Stop() { n.stopPull() }

// Close stops replication and closes the underlying durable store.
func (n *Node) Close() error {
	n.stopPull()
	return n.Durable.Close()
}

// writeGate refuses writes on followers and on fenced primaries, both as
// ErrNotPrimary (the server maps it to 421 with a primary hint when the
// node knows one).
func (n *Node) writeGate() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RolePrimary {
		return fmt.Errorf("%w: writes go to the group primary", ErrNotPrimary)
	}
	if n.fenced {
		return fmt.Errorf("%w: primary fenced by a higher-epoch successor", ErrNotPrimary)
	}
	return nil
}

// AddSongTitled routes a client write: followers refuse (ErrNotPrimary),
// the primary ingests durably and — in semi-sync mode — waits for the
// follower quorum to confirm before acknowledging.
func (n *Node) AddSongTitled(title string, melody music.Melody) (music.Song, error) {
	if err := n.writeGate(); err != nil {
		return music.Song{}, err
	}
	song, err := n.Durable.AddSongTitled(title, melody)
	if err != nil {
		return music.Song{}, err
	}
	if err := n.waitQuorum(); err != nil {
		return music.Song{}, err
	}
	return song, nil
}

// AddSong is the id-preserving ingest path with the same role gate and
// quorum wait as AddSongTitled.
func (n *Node) AddSong(song music.Song) error {
	if err := n.writeGate(); err != nil {
		return err
	}
	if err := n.Durable.AddSong(song); err != nil {
		return err
	}
	return n.waitQuorum()
}

// waitQuorum blocks until MinSyncFollowers followers have durably applied
// everything up to the current frontier (which covers the caller's just-
// committed write), or the sync timeout passes. The frontier is re-read
// per wake-up: it can only advance, and waiting for "at least my write"
// is implied by waiting for any frontier at or past it.
func (n *Node) waitQuorum() error {
	need := n.cfg.MinSyncFollowers
	if need <= 0 {
		return nil
	}
	target := n.Durable.ReplState()
	deadline := time.Now().Add(n.cfg.SyncTimeout)
	for {
		n.mu.Lock()
		got := 0
		for _, pos := range n.acks {
			if pos.AtLeast(target) {
				got++
			}
		}
		ch := n.ackCh
		n.mu.Unlock()
		if got >= need {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("%w: %d/%d followers confirmed %v within %v",
				ErrNotReplicated, got, need, target, n.cfg.SyncTimeout)
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// recordAck stores a follower's durably-applied position and wakes
// semi-sync waiters.
func (n *Node) recordAck(follower string, pos qbh.ReplicationState) {
	if follower == "" {
		return
	}
	n.mu.Lock()
	if cur, ok := n.acks[follower]; !ok || pos.AtLeast(cur) {
		n.acks[follower] = pos
		close(n.ackCh)
		n.ackCh = make(chan struct{})
	}
	n.mu.Unlock()
}

// Followers reports how many followers have a recorded ack watermark.
func (n *Node) Followers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.acks)
}

// State assembles the PathState payload.
func (n *Node) State() StateResponse {
	st := n.Durable.ReplState()
	n.mu.Lock()
	role := n.role
	fenced := n.fenced
	followers := len(n.acks)
	pos := n.pos
	n.mu.Unlock()
	resp := StateResponse{
		Group:  n.cfg.Group,
		Role:   role,
		Fenced: fenced,
		Epoch:  st.Epoch,
		Offset: st.Offset,
		Songs:  n.NumSongs(),
		Digest: fmt.Sprintf("%016x", n.Digest()),
	}
	if role == RolePrimary {
		resp.Followers = followers
	} else {
		// A follower's meaningful position is where it is in the
		// primary's stream, not its own local WAL.
		resp.Epoch, resp.Offset = pos.Epoch, pos.Offset
	}
	return resp
}
