package replica

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"warping/internal/membership"
	"warping/internal/music"
	"warping/internal/store"
)

// Dynamic-topology endpoints, mounted next to the replication protocol.
// membership's Default*Path constants mirror these; a pin test keeps the
// two packages from drifting apart (membership cannot import this package
// — it would invert the dependency).
const (
	// PathRepoint (POST ?primary=URL) retargets a follower's pull loop at
	// a new primary — the director calls it on the survivors after a
	// failover promotes their sibling.
	PathRepoint = "/replica/repoint"
	// PathExport (POST, ExportRequest body) streams the local songs that
	// the given ring places on the given group, as a store container — the
	// rebalancer's source leg.
	PathExport = "/replica/export"
	// PathImport (POST, export container body) applies shipped songs
	// id-preservingly and idempotently — the rebalancer's destination leg.
	// Role-gated like any write: the import lands on the destination
	// primary and replicates to its followers through the ordinary WAL.
	PathImport = "/replica/import"
)

// exportKind is the container kind of a PathExport stream.
const exportKind = "replica/export"

// EncodeExport serializes songs as a PathImport-consumable container —
// the same framing PathExport streams. The coordinator uses it to build
// the id-preserving second leg of a dual-routed write during a rebalance.
func EncodeExport(songs []music.Song) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(songs); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := store.WriteContainer(&out, exportKind, []store.Section{{Name: "songs", Data: payload.Bytes()}}); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// MembershipRecord assembles this node's self-description for the gossip
// agent: its role, and the durably-applied WAL position failover elects
// by — the primary's own frontier, or the follower's position in the
// primary's stream (exactly what semi-sync acks advance).
func (n *Node) MembershipRecord(id, url string) membership.NodeRecord {
	n.mu.Lock()
	role := n.role
	fenced := n.fenced
	pos := n.pos
	n.mu.Unlock()
	rec := membership.NodeRecord{
		ID:     id,
		URL:    url,
		Group:  n.cfg.Group,
		Role:   string(role),
		Fenced: fenced,
	}
	if role == RolePrimary {
		st := n.Durable.ReplState()
		rec.WALEpoch, rec.WALOffset = st.Epoch, st.Offset
	} else {
		rec.WALEpoch, rec.WALOffset = pos.Epoch, pos.Offset
	}
	return rec
}

// ObserveView is the node's fencing check, called with every merged view
// the gossip agent produces. A primary that sees another unfenced primary
// in its own group with a strictly later WAL epoch has been superseded —
// a failover promoted a follower while this node was presumed dead (the
// promotion opened a fresh WAL generation past anything this node wrote).
// It fences itself: writes answer ErrNotPrimary (HTTP 421) from then on,
// so a partitioned-but-alive old primary cannot accept writes the rest of
// the cluster will never see. Fencing is best-effort split-brain
// hygiene; the zero-acked-write-loss guarantee comes from semi-sync
// quorums, not from this check.
func (n *Node) ObserveView(selfID string, v membership.View) {
	n.observeRing(v)
	n.mu.Lock()
	role, fenced := n.role, n.fenced
	n.mu.Unlock()
	if role != RolePrimary || fenced {
		return
	}
	myEpoch := n.Durable.Epoch()
	for _, rec := range v.Nodes {
		if rec.ID == selfID || rec.Group != n.cfg.Group || rec.Fenced {
			continue
		}
		if rec.Role == membership.RolePrimary && rec.WALEpoch > myEpoch {
			n.mu.Lock()
			n.fenced = true
			n.mu.Unlock()
			n.cfg.Logf("replica: fenced: %s is primary of group %q at epoch %d (ours %d); refusing writes",
				rec.ID, n.cfg.Group, rec.WALEpoch, myEpoch)
			return
		}
	}
}

// observeRing keeps the durable layer's compaction reap filter in sync
// with the committed placement: once a ring change has been committed (no
// rebalance pending) and this node's group is a ring member, any local
// song whose title the ring places on another group was migrated away —
// the rebalancer shipped it before the cutover — and is reaped at the
// next snapshot compaction. While a rebalance is in flight, or when the
// view carries no ring (or one this group is not part of — a partial or
// bootstrap view), the filter is cleared: reaping on an uncommitted or
// incomplete picture could destroy the only copy of a song. Every node of
// the group installs the same filter, so primaries and followers converge
// independently through their own compactions without any WAL traffic.
func (n *Node) observeRing(v membership.View) {
	if v.Ring.Empty() || v.Rebalance.Active() || !v.Ring.Contains(n.cfg.Group) {
		n.Durable.SetCompactKeep(nil)
		return
	}
	ring, group := v.Ring, n.cfg.Group
	n.Durable.SetCompactKeep(func(song music.Song) bool {
		return ring.Owner(song.Title) == group
	})
}

// Fenced reports whether this primary has fenced itself.
func (n *Node) Fenced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fenced
}

// primaryURL is the follower's current pull target (repoint changes it).
func (n *Node) primaryURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary
}

// PrimaryHint returns the follower's current primary URL — the server
// attaches it as the Location header on 421 responses so a misdirected
// client can retry against the right node without a view fetch.
func (n *Node) PrimaryHint() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary {
		return ""
	}
	return n.primary
}

// SetPrimaryURL retargets a follower's pull loop. The in-flight long-poll
// still completes against the old primary (it can only deliver records the
// follower then durably applies — harmless wherever they came from); the
// next round pulls from the new target. Repointing a primary is refused.
func (n *Node) SetPrimaryURL(url string) error {
	if url == "" {
		return fmt.Errorf("replica: repoint needs a primary URL")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary {
		return fmt.Errorf("replica: cannot repoint a primary")
	}
	if n.primary != url {
		n.cfg.Logf("replica: repointing pull loop %s -> %s", n.primary, url)
		n.primary = url
	}
	return nil
}

// AckWatermarks returns a copy of the primary's per-follower durably-
// applied positions (the /stats surface for them).
func (n *Node) AckWatermarks() map[string]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]string, len(n.acks))
	for id, pos := range n.acks {
		out[id] = pos.String()
	}
	return out
}

func (n *Node) handleRepoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := n.SetPrimaryURL(r.URL.Query().Get("primary")); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	replyJSON(w, n.State())
}

// handleExport streams every local song the request's ring places on the
// request's group. Any role serves it (it is a read); the container lands
// on the destination primary via PathImport. The song set is collected
// before writing so the count can travel in a header — the rebalancer
// skips the import leg for empty exports.
func (n *Node) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req membership.ExportRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad export request", http.StatusBadRequest)
		return
	}
	if req.Group == "" || req.Ring.Empty() {
		http.Error(w, "export needs a ring and a group", http.StatusBadRequest)
		return
	}
	var moving []music.Song
	for _, song := range n.Songs() {
		if req.Ring.Owner(song.Title) == req.Group {
			moving = append(moving, song)
		}
	}
	w.Header().Set(membership.ExportCountHeader, strconv.Itoa(len(moving)))
	if len(moving) == 0 {
		w.WriteHeader(http.StatusOK)
		return
	}
	stream, err := EncodeExport(moving)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(stream); err != nil {
		n.cfg.Logf("replica: export stream to %s aborted: %v", r.RemoteAddr, err)
	}
}

// handleImport applies an export container: each song lands under its
// original id through the idempotent durable apply, then the batch waits
// for the semi-sync quorum once — imported songs get the same durability
// guarantee as client writes before the rebalancer counts them shipped.
func (n *Node) handleImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := n.writeGate(); err != nil {
		http.Error(w, err.Error(), http.StatusMisdirectedRequest)
		return
	}
	kind, sections, err := store.ReadContainer(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad export container: %v", err), http.StatusBadRequest)
		return
	}
	if kind != exportKind {
		http.Error(w, fmt.Sprintf("wrong container kind %q", kind), http.StatusBadRequest)
		return
	}
	var songs []music.Song
	for _, sec := range sections {
		if sec.Name != "songs" {
			continue
		}
		if err := gob.NewDecoder(bytes.NewReader(sec.Data)).Decode(&songs); err != nil {
			http.Error(w, fmt.Sprintf("bad songs section: %v", err), http.StatusBadRequest)
			return
		}
	}
	applied := 0
	for _, song := range songs {
		ok, err := n.Durable.ApplySong(song)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if ok {
			applied++
		}
	}
	if applied > 0 {
		if err := n.waitQuorum(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	replyJSON(w, map[string]int{"applied": applied, "received": len(songs)})
}
