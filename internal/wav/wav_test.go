package wav

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warping/internal/audio"
	"warping/internal/ts"
)

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = r.Float64()*2 - 1
	}
	var buf bytes.Buffer
	if err := Encode(&buf, samples, 8000); err != nil {
		t.Fatal(err)
	}
	got, rate, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 {
		t.Errorf("rate = %d", rate)
	}
	if len(got) != len(samples) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range samples {
		if math.Abs(got[i]-samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v vs %v", i, got[i], samples[i])
		}
	}
}

func TestEncodeClipping(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []float64{2.5, -3.0}, 8000); err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-4 || math.Abs(got[1]+1) > 1e-3 {
		t.Errorf("clipping wrong: %v", got)
	}
}

func TestEncodeInvalidRate(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("RIFF"),
		[]byte("RIFFxxxxWAVE"), // no chunks at all
		[]byte("not a wave file, just some bytes..."), //
	}
	for i, c := range cases {
		if _, _, err := Decode(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeRejectsStereoAndFloat(t *testing.T) {
	make44 := func(format, channels, bits uint16) []byte {
		var buf bytes.Buffer
		_ = Encode(&buf, []float64{0, 0.5}, 8000)
		b := buf.Bytes()
		binary.LittleEndian.PutUint16(b[20:22], format)
		binary.LittleEndian.PutUint16(b[22:24], channels)
		binary.LittleEndian.PutUint16(b[34:36], bits)
		return b
	}
	if _, _, err := Decode(make44(3, 1, 16)); err == nil {
		t.Error("float format accepted")
	}
	if _, _, err := Decode(make44(1, 2, 16)); err == nil {
		t.Error("stereo accepted")
	}
	if _, _, err := Decode(make44(1, 1, 8)); err == nil {
		t.Error("8-bit accepted")
	}
}

func TestDecodeSkipsUnknownChunks(t *testing.T) {
	// Hand-assemble: RIFF [JUNK chunk] [fmt ] [data].
	var body bytes.Buffer
	body.WriteString("WAVE")
	// JUNK chunk, odd size to exercise padding.
	body.WriteString("JUNK")
	junk := []byte{1, 2, 3}
	_ = binary.Write(&body, binary.LittleEndian, uint32(len(junk)))
	body.Write(junk)
	body.WriteByte(0) // pad
	// fmt chunk.
	body.WriteString("fmt ")
	_ = binary.Write(&body, binary.LittleEndian, uint32(16))
	_ = binary.Write(&body, binary.LittleEndian, uint16(1))    // PCM
	_ = binary.Write(&body, binary.LittleEndian, uint16(1))    // mono
	_ = binary.Write(&body, binary.LittleEndian, uint32(8000)) // rate
	_ = binary.Write(&body, binary.LittleEndian, uint32(16000))
	_ = binary.Write(&body, binary.LittleEndian, uint16(2))
	_ = binary.Write(&body, binary.LittleEndian, uint16(16))
	// data chunk with two samples.
	body.WriteString("data")
	_ = binary.Write(&body, binary.LittleEndian, uint32(4))
	_ = binary.Write(&body, binary.LittleEndian, int16(16384))
	_ = binary.Write(&body, binary.LittleEndian, int16(-16384))

	var file bytes.Buffer
	file.WriteString("RIFF")
	_ = binary.Write(&file, binary.LittleEndian, uint32(body.Len()))
	file.Write(body.Bytes())

	samples, rate, err := Decode(file.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 || len(samples) != 2 {
		t.Fatalf("rate=%d len=%d", rate, len(samples))
	}
	if samples[0] < 0.49 || samples[0] > 0.51 {
		t.Errorf("sample 0 = %v", samples[0])
	}
}

func TestDecodeTruncatedChunk(t *testing.T) {
	var buf bytes.Buffer
	_ = Encode(&buf, make([]float64, 100), 8000)
	b := buf.Bytes()
	if _, _, err := Decode(b[:50]); err == nil {
		t.Error("truncated data accepted")
	}
}

// Property: encode/decode round trip preserves samples to 16-bit accuracy
// for any signal.
func TestPropRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(500)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = math.Tanh(r.NormFloat64()) // stays in (-1,1)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, samples, 44100); err != nil {
			return false
		}
		got, rate, err := Decode(buf.Bytes())
		if err != nil || rate != 44100 || len(got) != n {
			return false
		}
		for i := range samples {
			if math.Abs(got[i]-samples[i]) > 1.0/32000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Integration: a synthesized hum survives a WAV round trip and still pitch-
// tracks correctly.
func TestWAVPitchTrackIntegration(t *testing.T) {
	frames := ts.Constant(60, 64) // E4
	w := audio.Synthesize(frames, audio.SynthesisOptions{})
	var buf bytes.Buffer
	if err := Encode(&buf, w, audio.DefaultSampleRate); err != nil {
		t.Fatal(err)
	}
	back, rate, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	pitch := audio.TrackPitch(back, rate)
	voiced := 0
	for _, p := range pitch[2 : len(pitch)-4] {
		if p > 0 {
			voiced++
			if math.Abs(p-64) > 0.5 {
				t.Fatalf("tracked %v after WAV round trip", p)
			}
		}
	}
	if voiced == 0 {
		t.Fatal("nothing voiced after round trip")
	}
}
