package wav

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the WAV parser with arbitrary bytes; it must only
// ever return errors, never panic, and successful parses must yield
// samples in a sane range.
func FuzzDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := Encode(&valid, []float64{0, 0.5, -0.5, 1, -1}, 8000); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:13])
	f.Add([]byte("RIFF"))
	f.Add([]byte{})
	f.Add([]byte("RIFFxxxxWAVEfmt "))

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, rate, err := Decode(data)
		if err != nil {
			return
		}
		if rate < 0 {
			t.Fatalf("negative sample rate %d", rate)
		}
		for i, v := range samples {
			if v < -1.0001 || v > 1.0001 {
				t.Fatalf("sample %d out of range: %v", i, v)
			}
		}
	})
}
