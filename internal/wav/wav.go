// Package wav reads and writes mono 16-bit PCM RIFF/WAVE files, the
// interchange format for the query-by-humming front end: a recorded hum can
// be loaded from disk, pitch-tracked and used as a query, and simulated
// performances can be exported for listening.
//
// Only the subset of the format the pipeline needs is supported: PCM
// (format tag 1), one channel, 16-bit samples. Files with extra chunks
// (LIST, fact, ...) are accepted; unknown chunks are skipped.
package wav

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Errors returned by the decoder.
var (
	ErrNotWAV      = errors.New("wav: not a RIFF/WAVE file")
	ErrUnsupported = errors.New("wav: unsupported encoding")
	ErrCorrupt     = errors.New("wav: corrupt file")
)

// Encode writes samples in [-1, 1] as a mono 16-bit PCM WAV file. Samples
// outside [-1, 1] are clipped.
func Encode(w io.Writer, samples []float64, sampleRate int) error {
	if sampleRate <= 0 {
		return fmt.Errorf("wav: invalid sample rate %d", sampleRate)
	}
	dataLen := len(samples) * 2
	var header [44]byte
	copy(header[0:4], "RIFF")
	binary.LittleEndian.PutUint32(header[4:8], uint32(36+dataLen))
	copy(header[8:12], "WAVE")
	copy(header[12:16], "fmt ")
	binary.LittleEndian.PutUint32(header[16:20], 16)                   // fmt chunk size
	binary.LittleEndian.PutUint16(header[20:22], 1)                    // PCM
	binary.LittleEndian.PutUint16(header[22:24], 1)                    // mono
	binary.LittleEndian.PutUint32(header[24:28], uint32(sampleRate))   // sample rate
	binary.LittleEndian.PutUint32(header[28:32], uint32(sampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(header[32:34], 2)                    // block align
	binary.LittleEndian.PutUint16(header[34:36], 16)                   // bits per sample
	copy(header[36:40], "data")
	binary.LittleEndian.PutUint32(header[40:44], uint32(dataLen))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, dataLen)
	for _, s := range samples {
		if s > 1 {
			s = 1
		}
		if s < -1 {
			s = -1
		}
		v := int16(math.Round(s * 32767))
		buf = append(buf, byte(v), byte(uint16(v)>>8))
	}
	_, err := w.Write(buf)
	return err
}

// Decode reads a mono 16-bit PCM WAV file, returning samples scaled to
// [-1, 1] and the sample rate.
func Decode(data []byte) (samples []float64, sampleRate int, err error) {
	if len(data) < 12 || string(data[0:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return nil, 0, ErrNotWAV
	}
	pos := 12
	var haveFmt bool
	var channels, bits int
	for pos+8 <= len(data) {
		id := string(data[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(data[pos+4 : pos+8]))
		pos += 8
		if size < 0 || pos+size > len(data) {
			return nil, 0, ErrCorrupt
		}
		chunk := data[pos : pos+size]
		switch id {
		case "fmt ":
			if size < 16 {
				return nil, 0, ErrCorrupt
			}
			format := int(binary.LittleEndian.Uint16(chunk[0:2]))
			channels = int(binary.LittleEndian.Uint16(chunk[2:4]))
			sampleRate = int(binary.LittleEndian.Uint32(chunk[4:8]))
			bits = int(binary.LittleEndian.Uint16(chunk[14:16]))
			if format != 1 {
				return nil, 0, fmt.Errorf("%w: format tag %d", ErrUnsupported, format)
			}
			if channels != 1 {
				return nil, 0, fmt.Errorf("%w: %d channels", ErrUnsupported, channels)
			}
			if bits != 16 {
				return nil, 0, fmt.Errorf("%w: %d-bit samples", ErrUnsupported, bits)
			}
			haveFmt = true
		case "data":
			if !haveFmt {
				return nil, 0, fmt.Errorf("%w: data chunk before fmt", ErrCorrupt)
			}
			if size%2 != 0 {
				return nil, 0, ErrCorrupt
			}
			samples = make([]float64, size/2)
			for i := range samples {
				v := int16(binary.LittleEndian.Uint16(chunk[2*i : 2*i+2]))
				samples[i] = float64(v) / 32767
			}
			return samples, sampleRate, nil
		default:
			// Skip unknown chunks (LIST, fact, ...).
		}
		pos += size
		if size%2 == 1 {
			pos++ // chunks are word-aligned
		}
	}
	return nil, 0, fmt.Errorf("%w: no data chunk", ErrCorrupt)
}
