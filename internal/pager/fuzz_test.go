package pager

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"warping/internal/store"
)

// FuzzPageCodec throws arbitrary bytes at a page slot on disk: ReadPage
// must never panic and must reject anything whose checksum does not verify
// with a typed error. Accepted pages must be byte-stable: re-stamping the
// payload through WritePage reproduces the identical on-disk bytes.
func FuzzPageCodec(f *testing.F) {
	const pageSize = 512
	dir, err := os.MkdirTemp("", "pagefuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "fuzz.pages")
	pf, err := store.CreatePageFile(store.OS(), path, pageSize, KindColumn)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { pf.Close() })
	pid := pf.Allocate()
	valid := make([]byte, pageSize)
	for i := range valid[store.PageHeaderSize:] {
		valid[store.PageHeaderSize+i] = byte(i * 3)
	}
	if err := pf.WritePage(pid, valid); err != nil {
		f.Fatal(err)
	}
	// Seed with the genuine on-disk page plus mutations of it.
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	onDisk := raw[64 : 64+pageSize] // page 0 starts after the 64-byte file header
	f.Add(append([]byte(nil), onDisk...))
	flipped := append([]byte(nil), onDisk...)
	flipped[100] ^= 0x40
	f.Add(flipped)
	wrongKind := append([]byte(nil), onDisk...)
	wrongKind[4] = KindRTree
	f.Add(wrongKind)
	f.Add([]byte{})

	var mu sync.Mutex // fuzz workers share the one file
	buf := make([]byte, pageSize)
	f.Fuzz(func(t *testing.T, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		page := make([]byte, pageSize)
		copy(page, data)
		fh, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.WriteAt(page, 64); err != nil {
			t.Fatal(err)
		}
		fh.Close()
		err = pf.ReadPage(pid, buf)
		if err != nil {
			if !errors.Is(err, store.ErrChecksum) && !errors.Is(err, store.ErrKind) &&
				!errors.Is(err, store.ErrTruncated) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		// Accepted: re-stamping the same payload must be byte-identical.
		if err := pf.WritePage(pid, buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := raw[64 : 64+pageSize]
		for i := range got {
			if got[i] != page[i] {
				t.Fatalf("byte %d diverged after round trip: %02x != %02x", i, got[i], page[i])
			}
		}
	})
}
