package pager

import (
	"fmt"

	"warping/internal/store"
)

// Column is an append-only sequence of fixed-width float64 records stored
// in page-size segments: record slot s lives in segment s/perPage at
// record offset s%perPage. Records never span pages. Appends and reads go
// through the buffer pool, so only the touched segments are resident.
//
// Concurrency contract: appends are serialized by the caller (the index
// shard's write lock); any number of Cursors may read concurrently with
// each other (shard read locks), never concurrently with an append to the
// same column.
type Column struct {
	f       *File
	pool    *Pool
	w       int      // floats per record
	perPage int      // records per page
	pids    []uint64 // page id of each segment
	count   int      // records appended
}

// NewColumn creates a column of w-float records backed by a fresh file.
func (s *Space) NewColumn(w int) (*Column, error) {
	if w <= 0 {
		return nil, fmt.Errorf("pager: column record width %d", w)
	}
	perPage := (s.pool.pageSize - store.PageHeaderSize) / (w * 8)
	if perPage < 1 {
		return nil, fmt.Errorf("pager: record of %d floats does not fit a %d-byte page", w, s.pool.pageSize)
	}
	f, err := s.NewFile(KindColumn)
	if err != nil {
		return nil, err
	}
	return &Column{f: f, pool: s.pool, w: w, perPage: perPage}, nil
}

// Width returns floats per record.
func (c *Column) Width() int { return c.w }

// Len returns the number of records appended.
func (c *Column) Len() int { return c.count }

// Append writes vals (exactly Width floats) as the next record.
func (c *Column) Append(vals []float64) error {
	if len(vals) != c.w {
		return fmt.Errorf("pager: append %d floats to column of width %d", len(vals), c.w)
	}
	slot := c.count
	seg := slot / c.perPage
	var fr *Frame
	var err error
	if seg == len(c.pids) {
		pid := c.f.Allocate()
		fr, err = c.pool.PinNew(c.f, pid)
		if err != nil {
			return err
		}
		c.pids = append(c.pids, pid)
	} else {
		fr, _, err = c.pool.Pin(c.f, c.pids[seg])
		if err != nil {
			return err
		}
	}
	off := (slot % c.perPage) * c.w
	copy(fr.Floats()[off:off+c.w], vals)
	c.pool.MarkDirty(fr)
	c.pool.Unpin(fr)
	c.count++
	return nil
}

// Close drops the column's cached pages and deletes its file.
func (c *Column) Close() error { return c.f.sp.Remove(c.f) }

// Cursor reads one column, keeping the last-touched segment pinned so
// sequential and clustered reads hit without re-pinning. Each concurrent
// reader owns its own Cursor and must Release it when done. The slice
// returned by At aliases pool memory and is valid only until the next At
// on the same Cursor or its Release.
type Cursor struct {
	col *Column
	seg int
	fr  *Frame
	fl  []float64
	// Misses counts pool misses this cursor caused — the real page
	// accesses attributed to the query driving it.
	Misses int
}

// Reader returns a cursor positioned nowhere.
func (c *Column) Reader() Cursor { return Cursor{col: c, seg: -1} }

// At returns record slot. The result aliases the pinned page.
func (cur *Cursor) At(slot int) ([]float64, error) {
	c := cur.col
	if slot < 0 || slot >= c.count {
		return nil, fmt.Errorf("pager: slot %d out of range (%d records)", slot, c.count)
	}
	seg := slot / c.perPage
	if seg != cur.seg || cur.fr == nil {
		if cur.fr != nil {
			c.pool.Unpin(cur.fr)
			cur.fr = nil
		}
		fr, miss, err := c.pool.Pin(c.f, c.pids[seg])
		if err != nil {
			cur.seg = -1
			return nil, err
		}
		if miss {
			cur.Misses++
		}
		cur.fr = fr
		cur.fl = fr.Floats()
		cur.seg = seg
	}
	off := (slot % c.perPage) * c.w
	return cur.fl[off : off+c.w : off+c.w], nil
}

// Release unpins the cursor's page. The cursor stays usable; the next At
// re-pins.
func (cur *Cursor) Release() {
	if cur.fr != nil {
		cur.col.pool.Unpin(cur.fr)
		cur.fr = nil
		cur.seg = -1
	}
}
