// Package pager is the out-of-core storage engine under the index: a
// fixed-size-page buffer pool (pin/unpin refcounts, clock eviction,
// dirty-page writeback, hit/miss statistics) over checksummed page files
// (store.PageFile). The layers above it — the columnar slot arenas and the
// R*-tree node store — address data by (file, page id) and touch bytes only
// through pinned frames, so the working set lives in the pool and cold
// pages live on disk.
//
// Page files are derived state: the durability source of truth remains the
// qbh snapshot + WAL, and a Space wipes stale spill files when it opens.
// The pager's only durability obligation is detection — a torn or
// bit-flipped page surfaces as a checksum error, never as silent garbage —
// and the fault-injection tests drive kill-at-every-byte-offset through
// evict-writebacks to prove it.
package pager

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"warping/internal/store"
)

// Page kinds, stamped into every page header of a file.
const (
	// KindColumn marks pages of a fixed-width float64 record column.
	KindColumn uint8 = 1
	// KindRTree marks pages holding serialized R*-tree nodes.
	KindRTree uint8 = 2
)

// Config sizes a Space. Zero values take defaults.
type Config struct {
	// PageSize is the fixed page size in bytes (power of two). Default 8192.
	PageSize int
	// PoolPages is the buffer-pool capacity in pages. Default 1024. The
	// pool allocates transient overflow frames rather than fail when every
	// frame is momentarily pinned, so this is a target, not a hard cap.
	PoolPages int
	// Dir is the backing directory for spill files. Required.
	Dir string
	// FS is the filesystem; nil means the real one.
	FS store.FS
}

// DefaultPageSize holds records of up to 1021 float64s per page.
const DefaultPageSize = 8192

// DefaultPoolPages caches 8 MiB at the default page size.
const DefaultPoolPages = 1024

func (c *Config) fill() {
	if c.PageSize == 0 {
		c.PageSize = DefaultPageSize
	}
	if c.PoolPages == 0 {
		c.PoolPages = DefaultPoolPages
	}
	if c.PoolPages < 8 {
		c.PoolPages = 8
	}
	if c.FS == nil {
		c.FS = store.OS()
	}
}

// Enabled reports whether the config names a backing directory — the switch
// between all-in-RAM arenas and paged mode.
func (c Config) Enabled() bool { return c.Dir != "" }

// FitPageSize returns the smallest valid page size (power of two, at least
// the configured or default size) whose payload holds one record of w
// float64s — records never span pages.
func (c Config) FitPageSize(w int) int {
	want := c.PageSize
	if want == 0 {
		want = DefaultPageSize
	}
	if need := w*8 + store.PageHeaderSize; want < need {
		want = need
	}
	ps := store.MinPageSize
	for ps < want {
		ps <<= 1
	}
	return ps
}

// Space is one directory of page files sharing one buffer pool. All index
// shards of a system share a Space; each column or tree gets its own file.
type Space struct {
	fsys store.FS
	dir  string
	pool *Pool

	mu     sync.Mutex
	nextID uint32
	files  map[uint32]*File
}

// File is a page file registered with a Space's pool.
type File struct {
	pf   *store.PageFile
	id   uint32
	path string
	sp   *Space
}

// Allocate reserves the next page id of the file.
func (f *File) Allocate() uint64 { return f.pf.Allocate() }

// NumPages returns the file's allocation high-water mark.
func (f *File) NumPages() uint64 { return f.pf.NumPages() }

// Open creates (or reuses) the spill directory, removes stale page files
// from prior runs — spill state is derived, so anything on disk from a
// previous process is garbage — and builds the buffer pool.
func Open(cfg Config) (*Space, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("pager: Config.Dir is required")
	}
	if cfg.PageSize < store.MinPageSize || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("pager: page size %d not a power of two >= %d", cfg.PageSize, store.MinPageSize)
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	// store.FS has no directory listing; enumerate with os and remove
	// through the FS so fault injection still observes the deletes.
	if entries, err := os.ReadDir(cfg.Dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".pages") {
				_ = cfg.FS.Remove(filepath.Join(cfg.Dir, e.Name()))
			}
		}
	}
	return &Space{
		fsys:  cfg.FS,
		dir:   cfg.Dir,
		pool:  newPool(cfg.PageSize, cfg.PoolPages),
		files: make(map[uint32]*File),
	}, nil
}

// Pool returns the shared buffer pool.
func (s *Space) Pool() *Pool { return s.pool }

// PageSize returns the fixed page size of the space.
func (s *Space) PageSize() int { return s.pool.pageSize }

// NewFile creates a fresh page file of the given kind.
func (s *Space) NewFile(kind uint8) (*File, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	path := filepath.Join(s.dir, fmt.Sprintf("%06d.pages", id))
	s.mu.Unlock()
	pf, err := store.CreatePageFile(s.fsys, path, s.pool.pageSize, kind)
	if err != nil {
		return nil, err
	}
	f := &File{pf: pf, id: id, path: path, sp: s}
	s.mu.Lock()
	s.files[id] = f
	s.mu.Unlock()
	return f, nil
}

// Remove drops every cached page of f, closes it, and deletes it from disk.
// The caller must guarantee no page of f is pinned.
func (s *Space) Remove(f *File) error {
	if err := s.pool.dropFile(f); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.files, f.id)
	s.mu.Unlock()
	err := f.pf.Close()
	if rerr := s.fsys.Remove(f.path); err == nil {
		err = rerr
	}
	return err
}

// Close closes every file. Spill contents are left on disk; the next Open
// wipes them. Pinned pages make Close fail.
func (s *Space) Close() error {
	s.mu.Lock()
	files := make([]*File, 0, len(s.files))
	for _, f := range s.files {
		files = append(files, f)
	}
	s.files = make(map[uint32]*File)
	s.mu.Unlock()
	var first error
	for _, f := range files {
		if err := s.pool.dropFile(f); err != nil && first == nil {
			first = err
		}
		if err := f.pf.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats snapshots the pool counters.
func (s *Space) Stats() Stats { return s.pool.Stats() }

// workerBound is how many verification workers higher layers should run:
// enough parallelism to hide page-miss latency without pinning a large
// fraction of a small pool at once.
func workerBound(poolPages int) int {
	n := runtime.GOMAXPROCS(0)
	if m := poolPages / 8; m < n && m > 0 {
		n = m
	}
	if n < 1 {
		n = 1
	}
	return n
}

// WorkerBound is the parallel-worker budget the index layers should respect
// when fanning out work whose every worker pins pages of this space: with a
// pathologically small pool, unbounded fan-out would turn the pool into
// pure overflow frames.
func (s *Space) WorkerBound() int { return workerBound(len(s.pool.frames)) }
