package pager

import (
	"fmt"
	"sync"
	"unsafe"

	"warping/internal/store"
)

// Frame is one pooled page. A pinned frame's memory is stable: it cannot be
// evicted or repurposed until every pin is released. Accessors expose the
// payload (the page minus its 16-byte checksum header) as bytes, words, or
// float64s; the frame arena is 8-aligned, so the reinterpretations are safe.
type Frame struct {
	words []uint64 // full page, pageSize/8 words
	file  *File
	pid   uint64
	pins  int
	dirty bool
	ref   bool // clock reference bit
	state uint8
	wait  chan struct{} // closed when a load or flush completes
}

const (
	frameEmpty uint8 = iota
	frameLoading
	frameReady
	frameFlushing
)

const headerWords = store.PageHeaderSize / 8

// Bytes returns the full page including its header (for codec-level work).
func (fr *Frame) Bytes() []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&fr.words[0])), len(fr.words)*8)
}

// Words returns the page payload as uint64 words.
func (fr *Frame) Words() []uint64 { return fr.words[headerWords:] }

// Floats returns the page payload as float64s.
func (fr *Frame) Floats() []float64 {
	w := fr.words[headerWords:]
	return unsafe.Slice((*float64)(unsafe.Pointer(&w[0])), len(w))
}

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	PageSize  int    `json:"page_size"`
	PoolPages int    `json:"pool_pages"`
	Resident  int    `json:"resident"`  // frames holding a valid page
	Pinned    int    `json:"pinned"`    // frames with at least one pin
	Hits      uint64 `json:"hits"`      // pins served from the pool
	Misses    uint64 `json:"misses"`    // pins that read from disk
	Evictions uint64 `json:"evictions"` // resident pages discarded for reuse
	Writeback uint64 `json:"writebacks"` // dirty pages written to disk
	Overflows uint64 `json:"overflows"` // transient frames allocated with all pinned
}

// HitRate returns hits/(hits+misses), or 1 when the pool is untouched.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Pool is a fixed-capacity buffer pool with clock eviction. One pool serves
// every file of a Space; pages are keyed by (file id, page id). Disk I/O —
// miss loads and dirty writebacks — happens outside the pool mutex, gated
// by per-frame loading/flushing states so concurrent pins of the same page
// coalesce onto one read and never observe a page mid-writeback.
type Pool struct {
	pageSize int

	mu     sync.Mutex
	table  map[pageKey]*Frame
	frames []*Frame // fixed clock ring
	extra  []*Frame // transient overflow frames, reclaimed before evicting
	hand   int

	hits, misses, evictions, writebacks, overflows uint64
}

type pageKey struct {
	file uint32
	pid  uint64
}

func newPool(pageSize, poolPages int) *Pool {
	p := &Pool{
		pageSize: pageSize,
		table:    make(map[pageKey]*Frame, poolPages),
		frames:   make([]*Frame, poolPages),
	}
	// One aligned arena for all fixed frames; a []uint64 backing guarantees
	// 8-byte alignment for the float64 reinterpretation.
	words := pageSize / 8
	arena := make([]uint64, words*poolPages)
	for i := range p.frames {
		p.frames[i] = &Frame{words: arena[i*words : (i+1)*words : (i+1)*words]}
	}
	return p
}

func (p *Pool) lock()   { p.mu.Lock() }
func (p *Pool) unlock() { p.mu.Unlock() }

// Pin fixes page (f, pid) in memory and returns its frame, plus whether the
// pin missed (read from disk) — the unit of real page-access accounting.
// Coalescing onto another goroutine's in-flight load counts as a hit: the
// I/O is charged to the query that initiated it. Every Pin must be paired
// with an Unpin.
func (p *Pool) Pin(f *File, pid uint64) (fr *Frame, miss bool, err error) {
	key := pageKey{f.id, pid}
	p.lock()
	for {
		fr, ok := p.table[key]
		if !ok {
			break
		}
		switch fr.state {
		case frameReady:
			fr.pins++
			fr.ref = true
			p.hits++
			p.unlock()
			return fr, false, nil
		case frameLoading, frameFlushing:
			// Another goroutine is moving this page; wait and re-check.
			wait := fr.wait
			p.unlock()
			<-wait
			p.lock()
		default:
			p.unlock()
			return nil, false, fmt.Errorf("pager: page (%d,%d) in unexpected state %d", f.id, pid, fr.state)
		}
	}
	p.misses++
	fr, err = p.grabFrame(key, f, pid)
	if err != nil {
		p.unlock()
		return nil, true, err
	}
	p.unlock()

	rerr := f.pf.ReadPage(pid, fr.Bytes())

	p.lock()
	close(fr.wait)
	fr.wait = nil
	if rerr != nil {
		delete(p.table, key)
		fr.state = frameEmpty
		fr.file = nil
		fr.pins = 0
		p.unlock()
		return nil, true, rerr
	}
	fr.state = frameReady
	fr.ref = true
	p.unlock()
	return fr, true, nil
}

// PinNew fixes a freshly allocated page without reading disk: the frame
// comes back zeroed, dirty, and pinned. The caller must have obtained pid
// from f.Allocate() and be its only writer.
func (p *Pool) PinNew(f *File, pid uint64) (*Frame, error) {
	key := pageKey{f.id, pid}
	p.lock()
	if _, ok := p.table[key]; ok {
		p.unlock()
		return nil, fmt.Errorf("pager: PinNew of resident page (%d,%d)", f.id, pid)
	}
	fr, err := p.grabFrame(key, f, pid)
	if err != nil {
		p.unlock()
		return nil, err
	}
	clear(fr.words)
	close(fr.wait)
	fr.wait = nil
	fr.state = frameReady
	fr.ref = true
	fr.dirty = true
	p.unlock()
	return fr, nil
}

// Unpin releases one pin.
func (p *Pool) Unpin(fr *Frame) {
	p.lock()
	if fr.pins <= 0 {
		p.unlock()
		panic("pager: Unpin of unpinned frame")
	}
	fr.pins--
	p.unlock()
}

// MarkDirty flags a pinned frame's page for writeback before eviction.
func (p *Pool) MarkDirty(fr *Frame) {
	p.lock()
	fr.dirty = true
	p.unlock()
}

// grabFrame returns a frame registered under key in state frameLoading with
// one guard pin, ready for the caller to fill. Called and returns with the
// pool locked; may unlock around victim writeback. Preference order:
// reclaim an unpinned overflow frame, clock-evict from the ring, and only
// when every fixed frame is pinned, allocate a transient overflow frame.
func (p *Pool) grabFrame(key pageKey, f *File, pid uint64) (*Frame, error) {
	fr := p.findVictim()
	if fr == nil {
		// Every frame pinned: allocate a transient frame rather than
		// deadlock. It joins the reclaim list and shrinks back under
		// pool pressure.
		p.overflows++
		fr = &Frame{words: make([]uint64, p.pageSize/8)}
		p.extra = append(p.extra, fr)
	}
	if fr.state == frameReady && fr.dirty {
		// Write the victim back outside the lock. The flushing state
		// plus guard pin keep it out of other scans, and concurrent
		// pins of the victim's page wait on fr.wait.
		fr.state = frameFlushing
		fr.pins = 1
		fr.wait = make(chan struct{})
		vf, vpid := fr.file, fr.pid
		p.unlock()
		werr := vf.pf.WritePage(vpid, fr.Bytes())
		p.lock()
		p.writebacks++
		close(fr.wait)
		fr.wait = nil
		fr.pins = 0
		fr.state = frameReady
		if werr != nil {
			// Keep the page resident and dirty; surface the error.
			return nil, werr
		}
		fr.dirty = false
		// Waiters woken by the close re-check the table under the lock
		// we now hold, so the frame is still ours to take.
	}
	if fr.state == frameReady {
		delete(p.table, pageKey{fr.file.id, fr.pid})
		p.evictions++
	}
	fr.file = f
	fr.pid = pid
	fr.pins = 1
	fr.dirty = false
	fr.ref = false
	fr.state = frameLoading
	fr.wait = make(chan struct{})
	p.table[key] = fr
	return fr, nil
}

// findVictim picks an evictable frame: first an unpinned overflow frame,
// then a clock scan of the ring (two sweeps: the first clears reference
// bits). Returns nil when every frame is pinned.
func (p *Pool) findVictim() *Frame {
	for i, fr := range p.extra {
		if fr.pins == 0 && (fr.state == frameReady || fr.state == frameEmpty) {
			if fr.state == frameReady && fr.dirty {
				// Dirty overflow frames still need the writeback path;
				// hand them to the caller like any dirty victim.
				return fr
			}
			// Clean: unlink from the overflow list and discard — the
			// caller gets a ring frame or a fresh one. Shrinking here
			// keeps steady-state memory at PoolPages.
			if fr.state == frameReady {
				delete(p.table, pageKey{fr.file.id, fr.pid})
				p.evictions++
			}
			p.extra[i] = p.extra[len(p.extra)-1]
			p.extra = p.extra[:len(p.extra)-1]
			return fr
		}
	}
	n := len(p.frames)
	for scanned := 0; scanned < 2*n; scanned++ {
		fr := p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if fr.pins != 0 || (fr.state != frameReady && fr.state != frameEmpty) {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		return fr
	}
	return nil
}

// FlushFile writes back every dirty resident page of f and syncs it.
func (p *Pool) FlushFile(f *File) error {
	if err := p.flush(func(fr *Frame) bool { return fr.file == f }); err != nil {
		return err
	}
	return f.pf.Sync()
}

// FlushAll writes back every dirty resident page of every file.
func (p *Pool) FlushAll() error {
	return p.flush(func(*Frame) bool { return true })
}

func (p *Pool) flush(match func(*Frame) bool) error {
	p.lock()
	var first error
	for _, fr := range p.allFrames() {
		if fr.state != frameReady || !fr.dirty || !match(fr) {
			continue
		}
		fr.state = frameFlushing
		fr.pins++
		fr.wait = make(chan struct{})
		vf, vpid := fr.file, fr.pid
		p.unlock()
		werr := vf.pf.WritePage(vpid, fr.Bytes())
		p.lock()
		p.writebacks++
		close(fr.wait)
		fr.wait = nil
		fr.pins--
		fr.state = frameReady
		if werr != nil {
			if first == nil {
				first = werr
			}
			continue
		}
		fr.dirty = false
	}
	p.unlock()
	return first
}

// dropFile discards every resident page of f without writeback. The caller
// guarantees no page of f is pinned, but an eviction-writeback of an f page
// (triggered by any other pool user) may be in flight — those are waited
// out, not errors.
func (p *Pool) dropFile(f *File) error {
	p.lock()
	defer p.unlock()
rescan:
	for {
		for _, fr := range p.allFrames() {
			if fr.state == frameEmpty || fr.file != f {
				continue
			}
			if fr.state == frameFlushing || fr.state == frameLoading {
				wait := fr.wait
				p.unlock()
				<-wait
				p.lock()
				continue rescan
			}
			if fr.pins != 0 {
				return fmt.Errorf("pager: dropping file %d with page %d pinned", f.id, fr.pid)
			}
		}
		break
	}
	for _, fr := range p.allFrames() {
		if fr.state != frameEmpty && fr.file == f {
			delete(p.table, pageKey{fr.file.id, fr.pid})
			fr.state = frameEmpty
			fr.file = nil
			fr.dirty = false
			fr.ref = false
		}
	}
	return nil
}

// allFrames returns the ring plus overflow frames; call with the pool locked.
func (p *Pool) allFrames() []*Frame {
	all := make([]*Frame, 0, len(p.frames)+len(p.extra))
	all = append(all, p.frames...)
	all = append(all, p.extra...)
	return all
}

// Reset flushes all dirty pages and then empties the pool — every later pin
// is a cold miss — and zeroes every stat counter (overflows included), so a
// benchmark that reuses the pool starts from a clean stat baseline. Fails
// if any page is pinned.
func (p *Pool) Reset() error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.lock()
	defer p.unlock()
	all := p.allFrames()
	for _, fr := range all {
		if fr.state == frameEmpty {
			continue
		}
		if fr.pins != 0 || fr.state != frameReady {
			return fmt.Errorf("pager: Reset with page (%d,%d) pinned", fr.file.id, fr.pid)
		}
	}
	for _, fr := range all {
		if fr.state != frameEmpty {
			delete(p.table, pageKey{fr.file.id, fr.pid})
			fr.state = frameEmpty
			fr.file = nil
			fr.dirty = false
			fr.ref = false
		}
	}
	p.extra = nil
	p.hits, p.misses, p.evictions, p.writebacks, p.overflows = 0, 0, 0, 0, 0
	return nil
}

// Stats snapshots the counters.
func (p *Pool) Stats() Stats {
	p.lock()
	defer p.unlock()
	s := Stats{
		PageSize:  p.pageSize,
		PoolPages: len(p.frames),
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
		Writeback: p.writebacks,
		Overflows: p.overflows,
	}
	for _, fr := range p.allFrames() {
		if fr.state != frameEmpty {
			s.Resident++
		}
		if fr.pins > 0 {
			s.Pinned++
		}
	}
	return s
}
