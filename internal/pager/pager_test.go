package pager

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"warping/internal/store"
)

func openSpace(t *testing.T, pageSize, poolPages int) *Space {
	t.Helper()
	sp, err := Open(Config{PageSize: pageSize, PoolPages: poolPages, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.Close() })
	return sp
}

func record(w, slot int) []float64 {
	v := make([]float64, w)
	for i := range v {
		v[i] = float64(slot*1000 + i)
	}
	return v
}

// TestColumnThrash appends far more records than the pool holds and reads
// them all back through eviction pressure, in order and shuffled.
func TestColumnThrash(t *testing.T) {
	sp := openSpace(t, 512, 8)
	const w, n = 16, 2000 // 31 records/page -> ~65 pages vs 8 frames
	col, err := sp.NewColumn(w)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		if err := col.Append(record(w, s)); err != nil {
			t.Fatal(err)
		}
	}
	cur := col.Reader()
	defer cur.Release()
	check := func(s int) {
		got, err := cur.At(s)
		if err != nil {
			t.Fatalf("At(%d): %v", s, err)
		}
		want := record(w, s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slot %d float %d: got %v want %v", s, i, got[i], want[i])
			}
		}
	}
	for s := 0; s < n; s++ {
		check(s)
	}
	// A big backwards stride defeats the clock cache and forces misses.
	for s := n - 1; s >= 0; s -= 37 {
		check(s)
	}
	st := sp.Stats()
	if st.Misses == 0 || st.Evictions == 0 || st.Writeback == 0 {
		t.Fatalf("expected misses/evictions/writebacks under thrash, got %+v", st)
	}
	if st.Pinned > 1 {
		t.Fatalf("pinned %d frames, expected at most the cursor's one", st.Pinned)
	}
}

// TestConcurrentReaders hammers one column from many goroutines with a pool
// far smaller than the data, proving pin coalescing and eviction are safe.
func TestConcurrentReaders(t *testing.T) {
	sp := openSpace(t, 512, 8)
	const w, n = 8, 1000
	col, err := sp.NewColumn(w)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		if err := col.Append(record(w, s)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cur := col.Reader()
			defer cur.Release()
			for i := 0; i < 3*n; i++ {
				s := (i*7 + g*13) % n
				got, err := cur.At(s)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != float64(s*1000) {
					errs <- fmt.Errorf("slot %d: got %v", s, got[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestOverflowUnderFullPins pins more pages than the pool has frames; the
// pool must overflow rather than deadlock, and shrink back afterwards.
func TestOverflowUnderFullPins(t *testing.T) {
	sp := openSpace(t, 512, 8)
	col, err := sp.NewColumn(60) // 1 record per 512B page
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for s := 0; s < n; s++ {
		if err := col.Append(record(60, s)); err != nil {
			t.Fatal(err)
		}
	}
	curs := make([]Cursor, n)
	for s := 0; s < n; s++ {
		curs[s] = col.Reader()
		if _, err := curs[s].At(s); err != nil {
			t.Fatalf("pin %d: %v", s, err)
		}
	}
	st := sp.Stats()
	if st.Pinned != n {
		t.Fatalf("pinned %d, want %d", st.Pinned, n)
	}
	if st.Overflows == 0 {
		t.Fatalf("expected overflow frames with %d pins over %d frames: %+v", n, 8, st)
	}
	for s := range curs {
		curs[s].Release()
	}
	if err := sp.Pool().Reset(); err != nil {
		t.Fatal(err)
	}
	if st := sp.Stats(); st.Resident != 0 || st.Pinned != 0 {
		t.Fatalf("after reset: %+v", st)
	}
}

// TestOpenWipesStaleSpill proves spill files from a previous process are
// removed: page files are derived state, never reused across opens.
func TestOpenWipesStaleSpill(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(Config{PageSize: 512, PoolPages: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	col, err := sp.NewColumn(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Append(record(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	sp2, err := Open(Config{PageSize: 512, PoolPages: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	// The first file created in the fresh space reuses id 0; creation must
	// not collide with a stale file.
	col2, err := sp2.NewColumn(4)
	if err != nil {
		t.Fatal(err)
	}
	if col2.Len() != 0 {
		t.Fatalf("fresh column has %d records", col2.Len())
	}
}

// TestRemoveColumn drops a column and proves its pool pages are gone.
func TestRemoveColumn(t *testing.T) {
	sp := openSpace(t, 512, 8)
	col, err := sp.NewColumn(4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 100; s++ {
		if err := col.Append(record(4, s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if st := sp.Stats(); st.Resident != 0 {
		t.Fatalf("resident pages after remove: %+v", st)
	}
}

// TestFitPageSize checks records always fit one page.
func TestFitPageSize(t *testing.T) {
	cases := []struct{ w, cfg, want int }{
		{4, 0, DefaultPageSize},
		{4, 512, 512},
		{100, 512, 1024},             // 100*8+16 = 816 -> 1024
		{1022, 0, DefaultPageSize},   // 1022*8+16 = 8192 fits exactly
		{1023, 0, 2 * DefaultPageSize},
		{4, 300, 512}, // non-power-of-two rounds up past MinPageSize
	}
	for _, c := range cases {
		if got := (Config{PageSize: c.cfg}).FitPageSize(c.w); got != c.want {
			t.Errorf("FitPageSize(w=%d, cfg=%d) = %d, want %d", c.w, c.cfg, got, c.want)
		}
	}
}

// buildAndThrash appends n records and reads them back with a stride that
// forces evict-writebacks, returning the first error.
func buildAndThrash(fsys store.FS, dir string, n int) error {
	sp, err := Open(Config{PageSize: 512, PoolPages: 8, Dir: dir, FS: fsys})
	if err != nil {
		return err
	}
	defer sp.Close()
	const w = 16
	col, err := sp.NewColumn(w)
	if err != nil {
		return err
	}
	for s := 0; s < n; s++ {
		if err := col.Append(record(w, s)); err != nil {
			return err
		}
	}
	cur := col.Reader()
	defer cur.Release()
	for s := 0; s < n; s += 29 {
		got, err := cur.At(s)
		if err != nil {
			return err
		}
		if got[0] != float64(s*1000) {
			return fmt.Errorf("slot %d: silent corruption: got %v", s, got[0])
		}
	}
	return sp.Pool().FlushAll()
}

// TestFaultSweepEvictWriteback kills the filesystem at every byte offset of
// the spill write stream — tearing file headers, page writes, and
// evict-writebacks at every possible boundary — and proves (a) the failure
// always surfaces as an error, never a panic or silent corruption, and (b)
// a fresh Space on the same directory recovers: stale spill is wiped and a
// full rebuild round-trips.
func TestFaultSweepEvictWriteback(t *testing.T) {
	const n = 400 // ~13 pages over an 8-frame pool: steady writeback traffic
	// Find the total bytes a clean run writes, to bound the sweep.
	probe := store.NewFaultFS(store.OS())
	dir := t.TempDir()
	if err := buildAndThrash(probe, dir, n); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	total := probe.BytesWritten()
	if total == 0 {
		t.Fatal("clean run wrote nothing")
	}
	step := int64(1)
	if testing.Short() || total > 4096 {
		step = total / 997 // ~1000 offsets, always hitting odd boundaries
		if step == 0 {
			step = 1
		}
	}
	for off := int64(0); off < total; off += step {
		ffs := store.NewFaultFS(store.OS())
		ffs.KillAfterBytes(off)
		dir := t.TempDir()
		err := buildAndThrash(ffs, dir, n)
		if err == nil {
			t.Fatalf("offset %d: kill did not surface", off)
		}
		if !errors.Is(err, store.ErrInjected) {
			// Secondary effects (checksum of a torn page read back) are
			// acceptable; silent corruption is not.
			if !errors.Is(err, store.ErrChecksum) && !errors.Is(err, store.ErrTruncated) {
				t.Fatalf("offset %d: unexpected error %v", off, err)
			}
		}
		// Recovery: a fresh space over the same directory (torn spill
		// files on disk) must wipe and rebuild without error.
		if err := buildAndThrash(store.OS(), dir, n); err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
	}
}

// TestTornPageDetected writes a page, tears its writeback mid-page, and
// proves a direct read of the torn page reports a checksum error rather
// than returning garbage.
func TestTornPageDetected(t *testing.T) {
	fsys := store.NewFaultFS(store.OS())
	dir := t.TempDir()
	path := dir + "/torn.pages"
	pf, err := store.CreatePageFile(fsys, path, 512, KindColumn)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := range buf[store.PageHeaderSize:] {
		buf[store.PageHeaderSize+i] = byte(i)
	}
	pid := pf.Allocate()
	if err := pf.WritePage(pid, buf); err != nil {
		t.Fatal(err)
	}
	// Tear halfway through the overwrite of the same page.
	fsys.KillAfterBytes(256)
	for i := range buf[store.PageHeaderSize:] {
		buf[store.PageHeaderSize+i] = byte(i + 1)
	}
	if err := pf.WritePage(pid, buf); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("torn write: %v", err)
	}
	pf.Close()
	pf2, err := store.OpenPageFile(store.OS(), path, KindColumn)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if err := pf2.ReadPage(pid, buf); !errors.Is(err, store.ErrChecksum) {
		t.Fatalf("read of torn page: %v, want ErrChecksum", err)
	}
}

// TestResetZeroesCounters proves Reset leaves a clean stat baseline: a
// pool that has seen misses, evictions and overflow frames reports all
// counters — overflows included — as zero afterwards, so cold-cache
// benchmarks that reuse a pool measure only their own traffic.
func TestResetZeroesCounters(t *testing.T) {
	sp := openSpace(t, 512, 8)
	col, err := sp.NewColumn(60) // 1 record per 512B page
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for s := 0; s < n; s++ {
		if err := col.Append(record(60, s)); err != nil {
			t.Fatal(err)
		}
	}
	// Pin past capacity to force overflow frames, then release.
	curs := make([]Cursor, n)
	for s := 0; s < n; s++ {
		curs[s] = col.Reader()
		if _, err := curs[s].At(s); err != nil {
			t.Fatalf("pin %d: %v", s, err)
		}
	}
	for s := range curs {
		curs[s].Release()
	}
	if st := sp.Stats(); st.Misses == 0 || st.Overflows == 0 {
		t.Fatalf("setup did not exercise the counters: %+v", st)
	}
	if err := sp.Pool().Reset(); err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 || st.Writeback != 0 || st.Overflows != 0 {
		t.Fatalf("counters survived Reset: %+v", st)
	}
	// The next pin is a real cold miss counted from the clean baseline.
	r := col.Reader()
	if _, err := r.At(0); err != nil {
		t.Fatal(err)
	}
	r.Release()
	if st := sp.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("post-reset baseline dirty: %+v", st)
	}
}
