// Package retry is the one backoff policy shared by every HTTP caller in
// the system: the typed API client, the replication follower's pull loop
// and the coordinator's per-group fan-out. Centralizing it keeps the
// retry behavior uniform — capped exponential growth with full jitter, and
// a server-supplied Retry-After always wins over the computed delay — so
// a fleet of clients backing off never synchronizes into retry waves.
package retry

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Backoff computes capped exponential delays with full jitter. The zero
// value selects the defaults (100ms base, 5s cap, doubling).
type Backoff struct {
	// Base is the delay scale for the first retry (default 100ms).
	Base time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// NoJitter disables randomization — only for tests that need
	// deterministic delays. Production callers must leave it false:
	// full jitter is what prevents thundering-herd retry waves.
	NoJitter bool
}

func (b Backoff) fill() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	return b
}

// Delay returns the wait before retry attempt (0-based): a uniformly
// random duration in (0, min(Base·2^attempt, Max)] — the "full jitter"
// policy, which decorrelates concurrent clients better than equal or
// proportional jitter.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.fill()
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.NoJitter {
		return d
	}
	return time.Duration(1 + rand.Int63n(int64(d)))
}

// maxRetryAfter bounds what a parsed Retry-After header can ask for. A
// delta-seconds value near MaxInt64 would overflow the Duration
// multiplication into a negative delay (which Do would then silently
// ignore, retrying immediately against an overloaded server); anything
// past a day is equally meaningless for a retry hint, so both forms clamp
// here. Do additionally caps the hint at the backoff policy's Max.
const maxRetryAfter = 24 * time.Hour

// ParseRetryAfter extracts a server-requested delay from a response's
// Retry-After header, supporting both the delta-seconds and HTTP-date
// forms. ok is false when the header is absent or unparseable. Delays are
// clamped to [0, maxRetryAfter]: a negative delta-seconds or a date in the
// past is still a well-formed directive — retry now — not a parse failure.
func ParseRetryAfter(h http.Header) (d time.Duration, ok bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0, true
		}
		if secs > int(maxRetryAfter/time.Second) {
			return maxRetryAfter, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			if d > maxRetryAfter {
				return maxRetryAfter, true
			}
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Sleep waits for d or until the context is done, reporting ctx.Err() in
// the latter case.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn up to attempts times. fn reports whether its error is worth
// retrying and may suggest a server-requested delay (<= 0 means "use the
// backoff policy"). Do returns nil on the first success, the last error
// once attempts are exhausted or fn says stop, and the context error if
// the deadline expires while backing off.
func Do(ctx context.Context, attempts int, b Backoff, fn func() (retryable bool, retryAfter time.Duration, err error)) error {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		retryable, after, err := fn()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt == attempts-1 {
			return lastErr
		}
		d := b.Delay(attempt)
		if after > 0 {
			// The server's request displaces the computed backoff, but
			// never beyond the policy's cap: a buggy or hostile
			// Retry-After must not park the caller for hours while its
			// context (and the user) wait.
			d = after
			if max := b.fill().Max; d > max {
				d = max
			}
		}
		if err := Sleep(ctx, d); err != nil {
			return lastErr
		}
	}
	return lastErr
}
