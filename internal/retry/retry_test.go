package retry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestDelayCapsAndGrows(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, NoJitter: true}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterWithinBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for i := 0; i < 200; i++ {
		d := b.Delay(3)
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("jittered delay %v out of (0, 80ms]", d)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if _, ok := ParseRetryAfter(h); ok {
		t.Error("absent header parsed")
	}
	h.Set("Retry-After", "2")
	if d, ok := ParseRetryAfter(h); !ok || d != 2*time.Second {
		t.Errorf("delta-seconds: got %v, %v", d, ok)
	}
	h.Set("Retry-After", time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat))
	if d, ok := ParseRetryAfter(h); !ok || d <= 0 || d > 3*time.Second {
		t.Errorf("http-date: got %v, %v", d, ok)
	}
	h.Set("Retry-After", "soon")
	if _, ok := ParseRetryAfter(h); ok {
		t.Error("garbage header parsed")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), 5, Backoff{Base: time.Millisecond, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			if calls < 3 {
				return true, 0, errors.New("transient")
			}
			return false, 0, nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil, 3", err, calls)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	calls := 0
	sentinel := errors.New("fatal")
	err := Do(context.Background(), 5, Backoff{Base: time.Millisecond},
		func() (bool, time.Duration, error) {
			calls++
			return false, 0, sentinel
		})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want sentinel after 1 call", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), 3, Backoff{Base: time.Millisecond, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			return true, 0, errors.New("always")
		})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want error after 3 calls", err, calls)
	}
}

func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, 3, Backoff{Base: time.Hour, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			return true, 0, errors.New("transient")
		})
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if calls > 1 {
		t.Fatalf("fn ran %d times under a cancelled context", calls)
	}
}

func TestDoUsesRetryAfterOverBackoff(t *testing.T) {
	start := time.Now()
	calls := 0
	_ = Do(context.Background(), 2, Backoff{Base: time.Hour, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			return true, 5 * time.Millisecond, errors.New("throttled")
		})
	if calls != 2 {
		t.Fatalf("calls=%d, want 2", calls)
	}
	// The hour-long backoff must have been displaced by the 5ms hint.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retry-after hint ignored: waited %v", elapsed)
	}
}
