package retry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestDelayCapsAndGrows(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, NoJitter: true}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterWithinBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for i := 0; i < 200; i++ {
		d := b.Delay(3)
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("jittered delay %v out of (0, 80ms]", d)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	httpDate := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name   string
		header string // "" means absent
		wantOK bool
		min    time.Duration // inclusive lower bound on the delay
		max    time.Duration // inclusive upper bound on the delay
	}{
		{name: "absent", header: "", wantOK: false},
		{name: "garbage", header: "soon", wantOK: false},
		{name: "delta seconds", header: "2", wantOK: true, min: 2 * time.Second, max: 2 * time.Second},
		{name: "zero delta", header: "0", wantOK: true, min: 0, max: 0},
		// A negative delta is a malformed-but-unambiguous directive to
		// retry now; treating it as unparseable would make the caller
		// fall back to exponential backoff and wait longer than asked.
		{name: "negative delta", header: "-7", wantOK: true, min: 0, max: 0},
		// Near-MaxInt64 delta-seconds must clamp, not overflow into a
		// negative Duration that Do would ignore.
		{name: "huge delta", header: "9223372036854775807", wantOK: true, min: maxRetryAfter, max: maxRetryAfter},
		{name: "day-plus delta", header: "1000000", wantOK: true, min: maxRetryAfter, max: maxRetryAfter},
		{name: "http date future", header: httpDate(3 * time.Second), wantOK: true, min: time.Millisecond, max: 3 * time.Second},
		// A date in the past clamps to zero delay, same as negative delta.
		{name: "http date past", header: httpDate(-time.Hour), wantOK: true, min: 0, max: 0},
		{name: "http date far future", header: httpDate(48 * time.Hour), wantOK: true, min: maxRetryAfter, max: maxRetryAfter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := http.Header{}
			if tc.header != "" {
				h.Set("Retry-After", tc.header)
			}
			d, ok := ParseRetryAfter(h)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v (d = %v)", ok, tc.wantOK, d)
			}
			if !ok {
				return
			}
			if d < tc.min || d > tc.max {
				t.Errorf("delay %v outside [%v, %v]", d, tc.min, tc.max)
			}
		})
	}
}

// A server-supplied Retry-After larger than the policy cap must be clamped
// by Do: otherwise one hostile or buggy header parks the caller far past
// any backoff the operator configured.
func TestDoCapsRetryAfterAtMaxBackoff(t *testing.T) {
	start := time.Now()
	calls := 0
	_ = Do(context.Background(), 2, Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			return true, time.Hour, errors.New("throttled")
		})
	if calls != 2 {
		t.Fatalf("calls=%d, want 2", calls)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hour-long Retry-After not capped at Max: waited %v", elapsed)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), 5, Backoff{Base: time.Millisecond, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			if calls < 3 {
				return true, 0, errors.New("transient")
			}
			return false, 0, nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil, 3", err, calls)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	calls := 0
	sentinel := errors.New("fatal")
	err := Do(context.Background(), 5, Backoff{Base: time.Millisecond},
		func() (bool, time.Duration, error) {
			calls++
			return false, 0, sentinel
		})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want sentinel after 1 call", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), 3, Backoff{Base: time.Millisecond, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			return true, 0, errors.New("always")
		})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want error after 3 calls", err, calls)
	}
}

func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, 3, Backoff{Base: time.Hour, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			return true, 0, errors.New("transient")
		})
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if calls > 1 {
		t.Fatalf("fn ran %d times under a cancelled context", calls)
	}
}

func TestDoUsesRetryAfterOverBackoff(t *testing.T) {
	start := time.Now()
	calls := 0
	_ = Do(context.Background(), 2, Backoff{Base: time.Hour, NoJitter: true},
		func() (bool, time.Duration, error) {
			calls++
			return true, 5 * time.Millisecond, errors.New("throttled")
		})
	if calls != 2 {
		t.Fatalf("calls=%d, want 2", calls)
	}
	// The hour-long backoff must have been displaced by the 5ms hint.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retry-after hint ignored: waited %v", elapsed)
	}
}
