// Package audio provides the acoustic front end of the query-by-humming
// pipeline: rendering a (possibly expressive) pitch contour to a PCM
// waveform, and estimating a pitch time series back from audio with an
// autocorrelation pitch tracker — our stand-in for the Tolonen-Karjalainen
// multi-pitch analysis model the paper cites [27].
//
// The paper's input stage is "acoustic input segmented into frames of 10ms,
// each frame resolved into a pitch"; TrackPitch reproduces exactly that
// interface.
package audio

import (
	"fmt"
	"math"
	"math/rand"

	"warping/internal/ts"
)

const (
	// DefaultSampleRate is sufficient for vocal pitch range (up to the
	// ~1 kHz fundamental, far above a hummed melody).
	DefaultSampleRate = 8000
	// FrameMs is the analysis hop size in milliseconds (paper: 10 ms).
	FrameMs = 10
	// minPitchHz and maxPitchHz bound the tracker's search range; they
	// generously cover the human humming range.
	minPitchHz = 60
	maxPitchHz = 800
)

// MIDIToFreq converts a (possibly fractional) MIDI pitch to Hz.
func MIDIToFreq(pitch float64) float64 {
	return 440 * math.Pow(2, (pitch-69)/12)
}

// FreqToMIDI converts a frequency in Hz to a fractional MIDI pitch.
// Non-positive frequencies return 0 (unvoiced marker).
func FreqToMIDI(freq float64) float64 {
	if freq <= 0 {
		return 0
	}
	return 69 + 12*math.Log2(freq/440)
}

// SynthesisOptions controls waveform rendering.
type SynthesisOptions struct {
	// SampleRate in Hz; DefaultSampleRate if zero.
	SampleRate int
	// Harmonics are the relative amplitudes of the overtone series
	// (element 0 = fundamental). A hummed "voice" default is used when
	// empty.
	Harmonics []float64
	// NoiseLevel adds white noise (breathiness); 0 = clean.
	NoiseLevel float64
	// VibratoCents and VibratoHz add pitch vibrato; 0 disables.
	VibratoCents float64
	VibratoHz    float64
	// Rand is the noise source; required when NoiseLevel > 0.
	Rand *rand.Rand
}

func (o *SynthesisOptions) fill() {
	if o.SampleRate == 0 {
		o.SampleRate = DefaultSampleRate
	}
	if len(o.Harmonics) == 0 {
		o.Harmonics = []float64{1, 0.4, 0.2}
	}
}

// Synthesize renders a frame-level pitch contour (one MIDI pitch per 10 ms
// frame; 0 marks silence) into a PCM waveform in [-1, 1]. The oscillator is
// phase-continuous across frames so pitch glides do not click.
func Synthesize(pitchFrames ts.Series, opts SynthesisOptions) []float64 {
	opts.fill()
	if opts.NoiseLevel > 0 && opts.Rand == nil {
		panic("audio: NoiseLevel requires a Rand source")
	}
	samplesPerFrame := opts.SampleRate * FrameMs / 1000
	out := make([]float64, len(pitchFrames)*samplesPerFrame)
	phase := 0.0
	vibPhase := 0.0
	for f, pitch := range pitchFrames {
		base := out[f*samplesPerFrame : (f+1)*samplesPerFrame]
		if pitch <= 0 {
			if opts.NoiseLevel > 0 {
				for i := range base {
					base[i] = opts.Rand.NormFloat64() * opts.NoiseLevel * 0.25
				}
			}
			continue
		}
		for i := range base {
			p := pitch
			if opts.VibratoCents > 0 {
				vibPhase += 2 * math.Pi * opts.VibratoHz / float64(opts.SampleRate)
				p += opts.VibratoCents / 100 * math.Sin(vibPhase)
			}
			freq := MIDIToFreq(p)
			phase += 2 * math.Pi * freq / float64(opts.SampleRate)
			var v float64
			for h, amp := range opts.Harmonics {
				v += amp * math.Sin(phase*float64(h+1))
			}
			if opts.NoiseLevel > 0 {
				v += opts.Rand.NormFloat64() * opts.NoiseLevel
			}
			base[i] = v * 0.5
		}
	}
	return out
}

// TrackPitch estimates a pitch time series from PCM audio: one MIDI pitch
// per 10 ms frame, 0 for unvoiced/silent frames. The estimator is a
// normalized autocorrelation over a 32 ms window with parabolic peak
// interpolation.
func TrackPitch(samples []float64, sampleRate int) ts.Series {
	if sampleRate <= 0 {
		panic(fmt.Sprintf("audio: invalid sample rate %d", sampleRate))
	}
	hop := sampleRate * FrameMs / 1000
	window := sampleRate * 32 / 1000
	if hop == 0 || window == 0 {
		panic("audio: sample rate too low for framing")
	}
	minLag := sampleRate / maxPitchHz
	maxLag := sampleRate / minPitchHz
	if minLag < 2 {
		minLag = 2
	}
	numFrames := len(samples) / hop
	out := make(ts.Series, 0, numFrames)
	for f := 0; f < numFrames; f++ {
		start := f * hop
		end := start + window
		if end > len(samples) {
			end = len(samples)
		}
		frame := samples[start:end]
		if len(frame) < minLag*2 {
			out = append(out, 0)
			continue
		}
		out = append(out, estimateFrame(frame, sampleRate, minLag, maxLag))
	}
	return out
}

// estimateFrame returns the MIDI pitch of one analysis frame, or 0.
func estimateFrame(frame []float64, sampleRate, minLag, maxLag int) float64 {
	n := len(frame)
	var energy float64
	for _, v := range frame {
		energy += v * v
	}
	if energy/float64(n) < 1e-4 { // silence gate
		return 0
	}
	if maxLag > n-1 {
		maxLag = n - 1
	}
	// Normalized autocorrelation r(lag) / r(0).
	r0 := energy
	bestLag := 0
	bestVal := 0.0
	acf := make([]float64, maxLag+1)
	for lag := minLag; lag <= maxLag; lag++ {
		var s float64
		for i := 0; i+lag < n; i++ {
			s += frame[i] * frame[i+lag]
		}
		// Length-normalize so long lags are not penalized.
		norm := s / float64(n-lag) * float64(n)
		acf[lag] = norm / r0
	}
	// Pick the first peak above a voicing threshold; prefer earlier lags
	// (higher frequencies) to avoid octave-down errors.
	const voicing = 0.5
	for lag := minLag + 1; lag < maxLag; lag++ {
		v := acf[lag]
		if v > voicing && v >= acf[lag-1] && v >= acf[lag+1] {
			bestLag = lag
			bestVal = v
			break
		}
	}
	if bestLag == 0 {
		// Fall back to the global maximum.
		for lag := minLag; lag <= maxLag; lag++ {
			if acf[lag] > bestVal {
				bestVal = acf[lag]
				bestLag = lag
			}
		}
		if bestVal < voicing {
			return 0
		}
	}
	// Parabolic interpolation around the peak for sub-sample precision.
	lag := float64(bestLag)
	if bestLag > minLag && bestLag < maxLag {
		y0, y1, y2 := acf[bestLag-1], acf[bestLag], acf[bestLag+1]
		den := y0 - 2*y1 + y2
		if den != 0 {
			delta := 0.5 * (y0 - y2) / den
			if delta > -1 && delta < 1 {
				lag += delta
			}
		}
	}
	return FreqToMIDI(float64(sampleRate) / lag)
}

// FrameEnergies returns the mean energy of each 10 ms frame — the loudness
// contour used by onset-based note segmentation (a hummer separates notes
// with small dips in breath pressure even without silence).
func FrameEnergies(samples []float64, sampleRate int) ts.Series {
	if sampleRate <= 0 {
		panic(fmt.Sprintf("audio: invalid sample rate %d", sampleRate))
	}
	hop := sampleRate * FrameMs / 1000
	if hop == 0 {
		panic("audio: sample rate too low for framing")
	}
	numFrames := len(samples) / hop
	out := make(ts.Series, numFrames)
	for f := 0; f < numFrames; f++ {
		frame := samples[f*hop : (f+1)*hop]
		var e float64
		for _, v := range frame {
			e += v * v
		}
		out[f] = e / float64(len(frame))
	}
	return out
}
