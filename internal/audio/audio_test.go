package audio

import (
	"math"
	"math/rand"
	"testing"

	"warping/internal/ts"
)

func TestMIDIFreqConversions(t *testing.T) {
	if f := MIDIToFreq(69); math.Abs(f-440) > 1e-9 {
		t.Errorf("A4 = %v Hz", f)
	}
	if f := MIDIToFreq(60); math.Abs(f-261.6256) > 0.001 {
		t.Errorf("C4 = %v Hz", f)
	}
	if p := FreqToMIDI(880); math.Abs(p-81) > 1e-9 {
		t.Errorf("880 Hz = MIDI %v", p)
	}
	if FreqToMIDI(0) != 0 || FreqToMIDI(-5) != 0 {
		t.Error("non-positive freq should map to 0")
	}
	// Round trip.
	for p := 40.0; p <= 84; p += 1.7 {
		if got := FreqToMIDI(MIDIToFreq(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
}

func TestSynthesizeLengthAndRange(t *testing.T) {
	frames := ts.Constant(50, 60) // 500 ms of C4
	w := Synthesize(frames, SynthesisOptions{})
	if len(w) != 50*DefaultSampleRate*FrameMs/1000 {
		t.Fatalf("len = %d", len(w))
	}
	for i, v := range w {
		if v < -1 || v > 1 {
			t.Fatalf("sample %d = %v out of range", i, v)
		}
	}
}

func TestSynthesizeSilence(t *testing.T) {
	frames := ts.Constant(10, 0)
	w := Synthesize(frames, SynthesisOptions{})
	for _, v := range w {
		if v != 0 {
			t.Fatal("silence frames should render as zero without noise")
		}
	}
}

func TestSynthesizeNoiseNeedsRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Synthesize(ts.Constant(2, 60), SynthesisOptions{NoiseLevel: 0.1})
}

func TestTrackPitchConstantTone(t *testing.T) {
	for _, pitch := range []float64{48, 55, 60, 67, 72} {
		frames := ts.Constant(60, pitch)
		w := Synthesize(frames, SynthesisOptions{})
		got := TrackPitch(w, DefaultSampleRate)
		if len(got) == 0 {
			t.Fatal("no frames")
		}
		// Ignore edge frames (window spills past the end).
		voiced := 0
		for _, v := range got[2 : len(got)-4] {
			if v == 0 {
				continue
			}
			voiced++
			if math.Abs(v-pitch) > 0.5 {
				t.Fatalf("pitch %v: tracked %v", pitch, v)
			}
		}
		if voiced < len(got)/2 {
			t.Fatalf("pitch %v: only %d voiced frames", pitch, voiced)
		}
	}
}

func TestTrackPitchSilence(t *testing.T) {
	w := make([]float64, DefaultSampleRate) // 1 s of silence
	got := TrackPitch(w, DefaultSampleRate)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("frame %d of silence tracked as %v", i, v)
		}
	}
}

func TestTrackPitchMelodySteps(t *testing.T) {
	// Three held notes; the tracker must follow the steps.
	var frames ts.Series
	for _, p := range []float64{60, 64, 67} {
		frames = append(frames, ts.Constant(40, p)...)
	}
	w := Synthesize(frames, SynthesisOptions{})
	got := TrackPitch(w, DefaultSampleRate)
	// Check mid-note frames (avoid transition frames).
	checks := []struct {
		frame int
		want  float64
	}{{20, 60}, {60, 64}, {100, 67}}
	for _, c := range checks {
		if c.frame >= len(got) {
			t.Fatalf("only %d frames", len(got))
		}
		if math.Abs(got[c.frame]-c.want) > 0.5 {
			t.Errorf("frame %d: got %v, want %v", c.frame, got[c.frame], c.want)
		}
	}
}

func TestTrackPitchWithNoiseAndVibrato(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	frames := ts.Constant(80, 62)
	w := Synthesize(frames, SynthesisOptions{
		NoiseLevel:   0.05,
		VibratoCents: 30,
		VibratoHz:    5,
		Rand:         r,
	})
	got := TrackPitch(w, DefaultSampleRate)
	var sum float64
	var count int
	for _, v := range got[2 : len(got)-4] {
		if v > 0 {
			sum += v
			count++
		}
	}
	if count == 0 {
		t.Fatal("nothing voiced")
	}
	if mean := sum / float64(count); math.Abs(mean-62) > 0.7 {
		t.Errorf("mean tracked pitch %v, want ~62", mean)
	}
}

func TestTrackPitchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	TrackPitch(make([]float64, 100), 0)
}

func BenchmarkTrackPitch(b *testing.B) {
	frames := ts.Constant(100, 60)
	w := Synthesize(frames, SynthesisOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrackPitch(w, DefaultSampleRate)
	}
}

func TestFrameEnergies(t *testing.T) {
	// Loud then silent: energies must reflect the split.
	frames := append(ts.Constant(20, 60), ts.Constant(20, 0)...)
	w := Synthesize(frames, SynthesisOptions{})
	e := FrameEnergies(w, DefaultSampleRate)
	if len(e) != 40 {
		t.Fatalf("frames = %d", len(e))
	}
	if e[10] <= e[30]*10 {
		t.Errorf("voiced energy %v not well above silent %v", e[10], e[30])
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad rate")
		}
	}()
	FrameEnergies(w, 0)
}
