package audio

import (
	"math"
	"math/cmplx"

	"warping/internal/fft"
	"warping/internal/ts"
)

// TrackPitchHPS estimates a pitch time series using the Harmonic Product
// Spectrum method: the magnitude spectrum of each 32 ms frame is multiplied
// with its 2x- and 3x-downsampled copies, which reinforces the fundamental
// and suppresses octave errors. It is the spectral-domain alternative to
// the autocorrelation tracker (TrackPitch); both implement the paper's
// "each frame is resolved into a pitch" interface, and the test suite
// cross-validates them against each other.
func TrackPitchHPS(samples []float64, sampleRate int) ts.Series {
	if sampleRate <= 0 {
		panic("audio: invalid sample rate")
	}
	hop := sampleRate * FrameMs / 1000
	window := sampleRate * 32 / 1000
	if hop == 0 || window == 0 {
		panic("audio: sample rate too low for framing")
	}
	// FFT length: next power of two >= 2*window for decent resolution.
	fftLen := 1
	for fftLen < 2*window {
		fftLen <<= 1
	}
	numFrames := len(samples) / hop
	out := make(ts.Series, 0, numFrames)
	buf := make([]complex128, fftLen)
	for f := 0; f < numFrames; f++ {
		start := f * hop
		end := start + window
		if end > len(samples) {
			end = len(samples)
		}
		frame := samples[start:end]
		var energy float64
		for _, v := range frame {
			energy += v * v
		}
		if len(frame) < window/2 || energy/float64(len(frame)) < 1e-4 {
			out = append(out, 0)
			continue
		}
		// Hann-windowed, zero-padded frame.
		for i := range buf {
			buf[i] = 0
		}
		for i, v := range frame {
			w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(len(frame)-1))
			buf[i] = complex(v*w, 0)
		}
		spec := fft.Forward(buf)
		out = append(out, hpsPitch(spec, fftLen, sampleRate))
	}
	return out
}

// hpsPitch picks the fundamental from one spectrum via the harmonic
// product, with parabolic interpolation on the product peak.
func hpsPitch(spec []complex128, fftLen, sampleRate int) float64 {
	half := fftLen / 2
	mag := make([]float64, half)
	for i := range mag {
		mag[i] = cmplx.Abs(spec[i])
	}
	binHz := float64(sampleRate) / float64(fftLen)
	minBin := int(minPitchHz/binHz) + 1
	maxBin := int(maxPitchHz / binHz)
	if maxBin*3 >= half {
		maxBin = half/3 - 1
	}
	if minBin < 1 {
		minBin = 1
	}
	if maxBin <= minBin {
		return 0
	}
	// Harmonic product over 3 harmonics (log domain to avoid underflow).
	best := minBin
	bestVal := math.Inf(-1)
	prod := make([]float64, maxBin+2)
	for b := minBin; b <= maxBin; b++ {
		v := math.Log(mag[b]+1e-12) + math.Log(mag[2*b]+1e-12) + math.Log(mag[3*b]+1e-12)
		prod[b] = v
		if v > bestVal {
			bestVal = v
			best = b
		}
	}
	// Voicing gate: the peak magnitude must stand out from the frame's
	// average spectral level.
	var avg float64
	for _, m := range mag[minBin:maxBin] {
		avg += m
	}
	avg /= float64(maxBin - minBin)
	if mag[best] < 4*avg {
		return 0
	}
	// Parabolic interpolation on the product curve.
	bin := float64(best)
	if best > minBin && best < maxBin {
		y0, y1, y2 := prod[best-1], prod[best], prod[best+1]
		den := y0 - 2*y1 + y2
		if den != 0 {
			delta := 0.5 * (y0 - y2) / den
			if delta > -1 && delta < 1 {
				bin += delta
			}
		}
	}
	return FreqToMIDI(bin * binHz)
}
