package audio

import (
	"math"
	"testing"

	"warping/internal/ts"
)

func TestHPSConstantTone(t *testing.T) {
	for _, pitch := range []float64{48, 55, 60, 67, 72} {
		frames := ts.Constant(60, pitch)
		w := Synthesize(frames, SynthesisOptions{})
		got := TrackPitchHPS(w, DefaultSampleRate)
		voiced := 0
		for _, v := range got[2 : len(got)-4] {
			if v == 0 {
				continue
			}
			voiced++
			if math.Abs(v-pitch) > 0.6 {
				t.Fatalf("pitch %v: HPS tracked %v", pitch, v)
			}
		}
		if voiced < len(got)/2 {
			t.Fatalf("pitch %v: only %d voiced frames", pitch, voiced)
		}
	}
}

func TestHPSSilence(t *testing.T) {
	got := TrackPitchHPS(make([]float64, DefaultSampleRate), DefaultSampleRate)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("silence frame %d tracked as %v", i, v)
		}
	}
}

// Cross-validation: both trackers must agree on clean melodic input.
func TestHPSAgreesWithAutocorrelation(t *testing.T) {
	var frames ts.Series
	for _, p := range []float64{57, 60, 64, 62} {
		frames = append(frames, ts.Constant(40, p)...)
	}
	w := Synthesize(frames, SynthesisOptions{})
	acf := TrackPitch(w, DefaultSampleRate)
	hps := TrackPitchHPS(w, DefaultSampleRate)
	if len(acf) != len(hps) {
		t.Fatalf("frame counts differ: %d vs %d", len(acf), len(hps))
	}
	agreements, comparisons := 0, 0
	for i := 4; i < len(acf)-4; i++ {
		if acf[i] == 0 || hps[i] == 0 {
			continue
		}
		comparisons++
		if math.Abs(acf[i]-hps[i]) <= 0.6 {
			agreements++
		}
	}
	if comparisons == 0 {
		t.Fatal("no voiced frames to compare")
	}
	// Note transitions confuse each tracker differently; 85%+ agreement
	// on steady-state frames is the expected regime.
	if float64(agreements)/float64(comparisons) < 0.85 {
		t.Errorf("trackers agree on only %d/%d frames", agreements, comparisons)
	}
}

func TestHPSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	TrackPitchHPS(make([]float64, 10), 0)
}

func BenchmarkTrackPitchHPS(b *testing.B) {
	frames := ts.Constant(100, 60)
	w := Synthesize(frames, SynthesisOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrackPitchHPS(w, DefaultSampleRate)
	}
}
