package core

import (
	"fmt"
	"math"

	"warping/internal/linalg"
)

// NewDFT returns the Discrete Fourier Transform dimensionality reduction
// for series of length n with N real features. The feature vector consists
// of the lowest-frequency Fourier coefficients in the order
//
//	[DC, cos f=1, sin f=1, cos f=2, sin f=2, ...]
//
// truncated to N entries. Every row is scaled to unit Euclidean norm
// (1/sqrt(n) for the DC and Nyquist rows, sqrt(2/n) for the others), so the
// rows form an orthonormal family and Euclidean distance on features is the
// tightest subset-of-coefficients DFT lower bound.
//
// Since cosine and sine rows have mixed signs, the envelope extension goes
// through the generic Lemma 3 sign-split of LinearTransform.
func NewDFT(n, N int) *LinearTransform {
	if N < 1 || N > n {
		panic(fmt.Sprintf("core: DFT N=%d out of range [1,%d]", N, n))
	}
	a := linalg.NewMatrix(N, n)
	row := 0
	// DC row.
	dc := 1 / math.Sqrt(float64(n))
	for j := 0; j < n; j++ {
		a.Set(row, j, dc)
	}
	row++
	scale := math.Sqrt(2 / float64(n))
	for f := 1; row < N; f++ {
		if 2*f == n {
			// Nyquist frequency: cosine alternates +-1, sine is zero;
			// the cosine row has norm sqrt(n)*1/sqrt(n) with scale
			// 1/sqrt(n).
			for j := 0; j < n; j++ {
				v := dc
				if j%2 == 1 {
					v = -dc
				}
				a.Set(row, j, v)
			}
			row++
			continue
		}
		if 2*f > n {
			panic(fmt.Sprintf("core: DFT cannot produce %d orthogonal rows from length %d", N, n))
		}
		// Cosine row.
		for j := 0; j < n; j++ {
			a.Set(row, j, scale*math.Cos(2*math.Pi*float64(f)*float64(j)/float64(n)))
		}
		row++
		if row == N {
			break
		}
		// Sine row.
		for j := 0; j < n; j++ {
			a.Set(row, j, scale*math.Sin(2*math.Pi*float64(f)*float64(j)/float64(n)))
		}
		row++
	}
	return NewLinearTransform("DFT", a)
}
