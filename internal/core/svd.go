package core

import (
	"fmt"

	"warping/internal/linalg"
	"warping/internal/ts"
)

// NewSVD returns the SVD (principal component) dimensionality reduction
// fitted on a training set of series, all of length n, keeping the top N
// components. The rows of the transform matrix are the orthonormal right
// singular vectors of the centered training matrix, so the transform is
// lower-bounding; the envelope extension uses the Lemma 3 sign-split since
// singular vectors have mixed signs.
//
// Following the paper's GEMINI usage, the projection is a plain linear map
// (no mean subtraction inside the transform): indexed series are expected
// to already be mean-normalized, which the query pipeline guarantees.
func NewSVD(training []ts.Series, N int) *LinearTransform {
	if len(training) == 0 {
		panic("core: SVD needs a non-empty training set")
	}
	n := len(training[0])
	if n == 0 {
		panic("core: SVD training series are empty")
	}
	if N < 1 || N > n {
		panic(fmt.Sprintf("core: SVD N=%d out of range [1,%d]", N, n))
	}
	data := linalg.NewMatrix(len(training), n)
	for i, s := range training {
		if len(s) != n {
			panic(fmt.Sprintf("core: SVD training series %d has length %d, want %d", i, len(s), n))
		}
		copy(data.Row(i), s)
	}
	pca := linalg.NewPCA(data, N)
	return NewLinearTransform("SVD", pca.Components)
}
