package core

import (
	"fmt"

	"warping/internal/linalg"
)

// Snapshot is a serializable description of a Transform, used by the index
// persistence layer. Linear transforms are stored by their full matrix, so
// even data-fitted transforms (SVD) restore exactly; Keogh_PAA is stored by
// its two shape parameters.
type Snapshot struct {
	// Kind discriminates the reconstruction: "linear" or "keogh_paa".
	Kind string
	// Name is the transform's reported name.
	Name string
	// N is the input length, Dim the output dimensionality.
	N, Dim int
	// Matrix holds the Dim x N transform matrix row-major (linear only).
	Matrix []float64
}

// SnapshotOf captures a Transform for serialization. It supports the
// transform types constructed by this package.
func SnapshotOf(t Transform) (Snapshot, error) {
	switch tr := t.(type) {
	case *LinearTransform:
		m := tr.Matrix()
		data := make([]float64, len(m.Data))
		copy(data, m.Data)
		return Snapshot{
			Kind: "linear", Name: tr.Name(),
			N: tr.InputLen(), Dim: tr.OutputLen(),
			Matrix: data,
		}, nil
	case *KeoghPAA:
		return Snapshot{
			Kind: "keogh_paa", Name: tr.Name(),
			N: tr.InputLen(), Dim: tr.OutputLen(),
		}, nil
	default:
		return Snapshot{}, fmt.Errorf("core: cannot snapshot transform type %T", t)
	}
}

// FromSnapshot reconstructs the Transform described by a Snapshot.
func FromSnapshot(s Snapshot) (Transform, error) {
	switch s.Kind {
	case "linear":
		if s.N <= 0 || s.Dim <= 0 || len(s.Matrix) != s.N*s.Dim {
			return nil, fmt.Errorf("core: snapshot matrix %d values, want %d x %d", len(s.Matrix), s.Dim, s.N)
		}
		m := linalg.NewMatrix(s.Dim, s.N)
		copy(m.Data, s.Matrix)
		return NewLinearTransform(s.Name, m), nil
	case "keogh_paa":
		if s.N <= 0 || s.Dim <= 0 || s.N%s.Dim != 0 {
			return nil, fmt.Errorf("core: invalid keogh_paa snapshot %d/%d", s.N, s.Dim)
		}
		return NewKeoghPAA(s.N, s.Dim), nil
	default:
		return nil, fmt.Errorf("core: unknown snapshot kind %q", s.Kind)
	}
}
