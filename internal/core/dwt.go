package core

import (
	"fmt"
	"math"

	"warping/internal/linalg"
)

// NewHaar returns the Haar Discrete Wavelet Transform dimensionality
// reduction for series of length n (a power of two) keeping the N coarsest
// coefficients: the scaling (average) coefficient followed by wavelet
// coefficients from the coarsest level down. The Haar basis is orthonormal,
// so the transform is lower-bounding; mixed signs in the wavelet rows mean
// the envelope extension uses the generic Lemma 3 sign-split.
func NewHaar(n, N int) *LinearTransform {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("core: Haar needs power-of-two length, got %d", n))
	}
	if N < 1 || N > n {
		panic(fmt.Sprintf("core: Haar N=%d out of range [1,%d]", N, n))
	}
	a := linalg.NewMatrix(N, n)
	// Row 0: scaling function, 1/sqrt(n) everywhere.
	s := 1 / math.Sqrt(float64(n))
	for j := 0; j < n; j++ {
		a.Set(0, j, s)
	}
	row := 1
	// Wavelet rows: level width is the support of each wavelet. The
	// coarsest wavelet spans the whole series (+ on the first half, - on
	// the second); each finer level halves the support and doubles the
	// count.
	for width := n; width >= 2 && row < N; width /= 2 {
		count := n / width
		norm := 1 / math.Sqrt(float64(width))
		for b := 0; b < count && row < N; b++ {
			start := b * width
			half := width / 2
			for j := 0; j < half; j++ {
				a.Set(row, start+j, norm)
				a.Set(row, start+half+j, -norm)
			}
			row++
		}
	}
	return NewLinearTransform("DWT", a)
}
