// Package core implements the paper's primary contribution: dimensionality
// reduction transforms extended to time-series *envelopes* so that the
// GEMINI indexing framework supports Dynamic Time Warping with no false
// negatives.
//
// The key objects are:
//
//   - Transform: a lower-bounding dimensionality reduction T. Applying T to
//     a series yields an N-dimensional feature vector; applying T to a
//     k-envelope yields a FeatureEnvelope (a box in feature space).
//   - Container invariance (Definition 8): if x lies inside envelope e,
//     then T(x) lies inside T(e). Theorem 1 then gives
//     D(T(x), T(Env_k(y))) <= D_DTW(k)(x, y),
//     the feature-space DTW lower bound the index prunes with.
//   - Lemma 3: every linear transform becomes container-invariant on
//     envelopes via a sign-split of its coefficients; LinearTransform
//     implements this generically for PAA, DFT, DWT (Haar) and SVD.
//   - NewPAA vs KeoghPAA: the paper's improved PAA envelope reduction
//     (frame averages of the envelope — provably tighter) versus the prior
//     state of the art (frame min/max), kept side by side so that every
//     experiment in the paper can be reproduced.
//
// Feature scaling. All transforms in this package emit features scaled so
// that the transform matrix rows are orthogonal with norm <= 1. Plain
// Euclidean distance between feature vectors is then a valid lower bound of
// the original Euclidean distance (and, through Theorem 1, of banded DTW),
// with no extra correction factors. For PAA this means features are
// (1/sqrt(m)) * frame sums — equivalent to the standard sqrt(n/N)-scaled
// LB_PAA — so the tightness numbers of Keogh_PAA and New_PAA are directly
// comparable.
package core

import (
	"fmt"
	"math"

	"warping/internal/dtw"
	"warping/internal/ts"
)

// FeatureEnvelope is an axis-aligned box in feature space: the image of a
// time-series envelope under a container-invariant transform.
type FeatureEnvelope struct {
	Lower []float64
	Upper []float64
}

// Len returns the feature-space dimensionality.
func (f FeatureEnvelope) Len() int { return len(f.Lower) }

// Valid reports whether Lower <= Upper pointwise with equal lengths.
func (f FeatureEnvelope) Valid() bool {
	if len(f.Lower) != len(f.Upper) {
		return false
	}
	for i := range f.Lower {
		if f.Lower[i] > f.Upper[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the feature point p lies in the box within tol.
func (f FeatureEnvelope) Contains(p []float64, tol float64) bool {
	if len(p) != len(f.Lower) {
		return false
	}
	for i, v := range p {
		if v < f.Lower[i]-tol || v > f.Upper[i]+tol {
			return false
		}
	}
	return true
}

// SquaredDistToBox returns the squared Euclidean distance from point p to
// the box (0 if inside). This is the feature-space analogue of the distance
// between a series and an envelope (Definition 7).
func SquaredDistToBox(p []float64, f FeatureEnvelope) float64 {
	if len(p) != len(f.Lower) {
		panic(fmt.Sprintf("core: point dim %d vs box dim %d", len(p), len(f.Lower)))
	}
	n := len(p)
	lo, up := f.Lower[:n], f.Upper[:n] // bounds-check elimination
	var sum float64
	i := 0
	// 4-wide blocks with two accumulator chains: feature spaces here are
	// typically 4-16 dimensional, so one or a few blocks cover the whole
	// point with no per-element loop bookkeeping. (The branchy compares
	// beat a branchless builtin-max form here: candidate features are
	// usually outside the box on the same side across dimensions, so the
	// branches predict well and cost less than max's NaN/±0 handling.)
	for ; i+4 <= n; i += 4 {
		pb := (*[4]float64)(p[i:])
		lb := (*[4]float64)(lo[i:])
		ub := (*[4]float64)(up[i:])
		var s0, s1 float64
		d0 := pb[0] - ub[0]
		if t := lb[0] - pb[0]; t > d0 {
			d0 = t
		}
		d1 := pb[1] - ub[1]
		if t := lb[1] - pb[1]; t > d1 {
			d1 = t
		}
		d2 := pb[2] - ub[2]
		if t := lb[2] - pb[2]; t > d2 {
			d2 = t
		}
		d3 := pb[3] - ub[3]
		if t := lb[3] - pb[3]; t > d3 {
			d3 = t
		}
		if d0 > 0 {
			s0 += d0 * d0
		}
		if d1 > 0 {
			s1 += d1 * d1
		}
		if d2 > 0 {
			s0 += d2 * d2
		}
		if d3 > 0 {
			s1 += d3 * d3
		}
		sum += s0 + s1
	}
	for ; i < n; i++ {
		v := p[i]
		switch {
		case v > up[i]:
			d := v - up[i]
			sum += d * d
		case v < lo[i]:
			d := lo[i] - v
			sum += d * d
		}
	}
	return sum
}

// DistToBox is the square root of SquaredDistToBox.
func DistToBox(p []float64, f FeatureEnvelope) float64 {
	return math.Sqrt(SquaredDistToBox(p, f))
}

// Transform is a lower-bounding dimensionality reduction transform together
// with its container-invariant extension to envelopes.
//
// Implementations guarantee, for series x, y of length InputLen and any
// band radius k:
//
//	Dist(Apply(x), Apply(y))            <= D(x, y)            (lower-bounding)
//	x in e                              => Apply(x) in ApplyEnvelope(e)
//	DistToBox(Apply(x), ApplyEnvelope(Env_k(y))) <= D_DTW(k)(x, y) (Theorem 1)
type Transform interface {
	// Name identifies the transform in reports ("New_PAA", "DFT", ...).
	Name() string
	// InputLen is the required input series length n.
	InputLen() int
	// OutputLen is the feature dimensionality N.
	OutputLen() int
	// Apply reduces a series of length InputLen to OutputLen features.
	Apply(x ts.Series) []float64
	// ApplyEnvelope maps a time-series envelope of length InputLen to a
	// feature-space envelope, container-invariantly.
	ApplyEnvelope(e dtw.Envelope) FeatureEnvelope
}

// LowerBoundDTW computes the paper's indexable DTW lower bound between a
// query q (as the envelope side, band radius k) and a candidate series x:
// the distance from T(x) to T(Env_k(q)). By Theorem 1 this never exceeds
// the banded DTW distance between x and q.
func LowerBoundDTW(t Transform, x, q ts.Series, k int) float64 {
	fx := t.Apply(x)
	fe := t.ApplyEnvelope(dtw.NewEnvelope(q, k))
	return DistToBox(fx, fe)
}
