package core

import (
	"warping/internal/dtw"
	"warping/internal/linalg"
	"warping/internal/ts"
)

// NewIdentity returns the identity "transform" (no dimensionality
// reduction). Its envelope lower bound is exactly LB_Keogh — the method the
// paper labels "LB" and uses as the sanity-check upper limit on tightness,
// since it uses all 2n envelope values.
func NewIdentity(n int) *LinearTransform {
	return NewLinearTransform("LB", linalg.Identity(n))
}

// Tightness returns T = (feature-space lower bound) / (true banded DTW
// distance) for a pair of series — the implementation-bias-free quality
// measure of Section 5.2. T is in [0, 1]; larger is tighter. When the true
// DTW distance is zero the tightness is reported as 1 (the bound, also
// zero, is perfect).
func Tightness(t Transform, x, y ts.Series, k int) float64 {
	true_ := dtw.Banded(x, y, k)
	if true_ == 0 {
		return 1
	}
	lb := LowerBoundDTW(t, x, y, k)
	return lb / true_
}

// MeanTightness averages Tightness over all ordered pairs (i != j) of the
// given series sample, reproducing the experimental protocol of Figure 6.
func MeanTightness(t Transform, sample []ts.Series, k int) float64 {
	var sum float64
	var count int
	for i, x := range sample {
		for j, y := range sample {
			if i == j {
				continue
			}
			sum += Tightness(t, x, y, k)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
