package core

import (
	"math/rand"
	"testing"

	"warping/internal/dtw"
	"warping/internal/ts"
)

func TestSnapshotRoundTripAllTransforms(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	const n, N = 64, 8
	for _, tr := range allTransforms(r, n, N) {
		snap, err := SnapshotOf(tr)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		back, err := FromSnapshot(snap)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if back.Name() != tr.Name() || back.InputLen() != tr.InputLen() || back.OutputLen() != tr.OutputLen() {
			t.Fatalf("%s: shape mismatch after round trip", tr.Name())
		}
		x := randomWalk(r, n)
		a, b := tr.Apply(x), back.Apply(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: feature %d differs", tr.Name(), i)
			}
		}
		e := dtw.NewEnvelope(x, 4)
		fa, fb := tr.ApplyEnvelope(e), back.ApplyEnvelope(e)
		for i := range fa.Lower {
			if fa.Lower[i] != fb.Lower[i] || fa.Upper[i] != fb.Upper[i] {
				t.Fatalf("%s: envelope differs", tr.Name())
			}
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Unknown transform type.
	if _, err := SnapshotOf(fakeTransform{}); err == nil {
		t.Error("unknown type snapshotted")
	}
	// Corrupt snapshots.
	bad := []Snapshot{
		{Kind: "nope"},
		{Kind: "linear", N: 4, Dim: 2, Matrix: []float64{1}}, // wrong size
		{Kind: "linear", N: 0, Dim: 2},
		{Kind: "keogh_paa", N: 10, Dim: 3}, // not divisible
		{Kind: "keogh_paa", N: 0, Dim: 0},
	}
	for i, s := range bad {
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
}

type fakeTransform struct{}

func (fakeTransform) Name() string                                 { return "fake" }
func (fakeTransform) InputLen() int                                { return 1 }
func (fakeTransform) OutputLen() int                               { return 1 }
func (fakeTransform) Apply(x ts.Series) []float64                  { return []float64{0} }
func (fakeTransform) ApplyEnvelope(e dtw.Envelope) FeatureEnvelope { return FeatureEnvelope{} }
