package core

import (
	"fmt"
	"math"

	"warping/internal/dtw"
	"warping/internal/linalg"
	"warping/internal/ts"
)

// paaMatrix builds the scaled PAA matrix: N frames of size m = n/N, each
// row holding 1/sqrt(m) over its frame. Rows are orthogonal with unit norm,
// so Euclidean distance on features lower-bounds the original distance
// tightly (this is the standard sqrt(n/N)-scaled LB_PAA).
func paaMatrix(n, N int) *linalg.Matrix {
	if N < 1 || N > n {
		panic(fmt.Sprintf("core: PAA N=%d out of range [1,%d]", N, n))
	}
	if n%N != 0 {
		panic(fmt.Sprintf("core: PAA needs N (%d) dividing n (%d)", N, n))
	}
	m := n / N
	w := 1 / math.Sqrt(float64(m))
	a := linalg.NewMatrix(N, n)
	for i := 0; i < N; i++ {
		row := a.Row(i)
		for j := i * m; j < (i+1)*m; j++ {
			row[j] = w
		}
	}
	return a
}

// NewPAA returns the paper's improved PAA transform ("New_PAA"): the
// Piecewise Aggregate Approximation whose envelope reduction takes frame
// *averages* of the upper and lower envelopes. Because all PAA coefficients
// are positive, the generic Lemma 3 sign-split degenerates to exactly this
// averaging, so NewPAA is simply the LinearTransform over the PAA matrix.
// n must be divisible by N.
func NewPAA(n, N int) *LinearTransform {
	return NewLinearTransform("New_PAA", paaMatrix(n, N))
}

// CoarsePAADim is the dimensionality of the coarse New_PAA pre-stage used
// by the multi-resolution verification cascade: the paper's own transform
// at a second, coarser resolution. Four dimensions keep the pre-stage box
// distance at a quarter of the full-dimensional cost while still pruning a
// useful fraction of candidates.
const CoarsePAADim = 4

// NewCoarsePAA returns the CoarsePAADim-dimensional New_PAA transform for
// series of length n — the coarse half of the two-resolution cascade. It
// is an independent instance of Theorem 1 (its box distance lower-bounds
// banded DTW on its own), so it composes soundly with any fine transform,
// PAA or not. n must be divisible by CoarsePAADim.
func NewCoarsePAA(n int) *LinearTransform {
	return NewLinearTransform("New_PAA_coarse", paaMatrix(n, CoarsePAADim))
}

// KeoghPAA is the prior state-of-the-art PAA envelope reduction (Keogh,
// VLDB 2002): features are the same scaled PAA, but the envelope is reduced
// by taking the frame *minimum* of the lower envelope and the frame
// *maximum* of the upper envelope. The resulting feature box always
// contains the NewPAA box, so its lower bound is never tighter (Figure 5 of
// the paper); it is included as the baseline for every experiment.
type KeoghPAA struct {
	n, frames int
}

// NewKeoghPAA returns the Keogh_PAA transform for series of length n
// reduced to N frames. n must be divisible by N.
func NewKeoghPAA(n, N int) *KeoghPAA {
	// Reuse paaMatrix for its argument validation.
	_ = paaMatrix(n, N)
	return &KeoghPAA{n: n, frames: N}
}

// Name implements Transform.
func (t *KeoghPAA) Name() string { return "Keogh_PAA" }

// InputLen implements Transform.
func (t *KeoghPAA) InputLen() int { return t.n }

// OutputLen implements Transform.
func (t *KeoghPAA) OutputLen() int { return t.frames }

// Apply implements Transform: identical features to NewPAA (scaled frame
// averages), so that the two methods differ only in envelope reduction.
func (t *KeoghPAA) Apply(x ts.Series) []float64 {
	if len(x) != t.n {
		panic(fmt.Sprintf("core: Keogh_PAA expects length %d, got %d", t.n, len(x)))
	}
	m := t.n / t.frames
	w := 1 / math.Sqrt(float64(m))
	out := make([]float64, t.frames)
	for i := 0; i < t.frames; i++ {
		var sum float64
		for j := i * m; j < (i+1)*m; j++ {
			sum += x[j]
		}
		out[i] = sum * w
	}
	return out
}

// ApplyEnvelope implements Transform with Keogh's min/max reduction. In the
// scaled feature space a frame's upper bound is sqrt(m) * max(upper) since
// sum(x over frame) <= m * max(upper) and features carry a 1/sqrt(m) factor.
func (t *KeoghPAA) ApplyEnvelope(e dtw.Envelope) FeatureEnvelope {
	if e.Len() != t.n {
		panic(fmt.Sprintf("core: Keogh_PAA expects envelope length %d, got %d", t.n, e.Len()))
	}
	m := t.n / t.frames
	s := math.Sqrt(float64(m))
	lo := make([]float64, t.frames)
	hi := make([]float64, t.frames)
	for i := 0; i < t.frames; i++ {
		mn := e.Lower[i*m]
		mx := e.Upper[i*m]
		for j := i*m + 1; j < (i+1)*m; j++ {
			if e.Lower[j] < mn {
				mn = e.Lower[j]
			}
			if e.Upper[j] > mx {
				mx = e.Upper[j]
			}
		}
		lo[i] = mn * s
		hi[i] = mx * s
	}
	return FeatureEnvelope{Lower: lo, Upper: hi}
}
