package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warping/internal/dtw"
	"warping/internal/linalg"
	"warping/internal/ts"
)

func randomSeries(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	for i := range s {
		s[i] = r.NormFloat64() * 3
	}
	return s
}

func randomWalk(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	for i := range s {
		v += r.NormFloat64()
		s[i] = v
	}
	return s
}

// allTransforms builds one of each transform family for length n, dim N.
// SVD is trained on a fixed random-walk sample.
func allTransforms(r *rand.Rand, n, N int) []Transform {
	training := make([]ts.Series, 40)
	for i := range training {
		training[i] = randomWalk(r, n).ZeroMean()
	}
	return []Transform{
		NewPAA(n, N),
		NewKeoghPAA(n, N),
		NewDFT(n, N),
		NewHaar(n, N),
		NewSVD(training, N),
		NewIdentity(n),
	}
}

func TestValidateAllTransforms(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, tr := range allTransforms(r, 64, 8) {
		lt, ok := tr.(*LinearTransform)
		if !ok {
			continue // Keogh_PAA has no matrix
		}
		if err := lt.Validate(1e-9); err != nil {
			t.Errorf("%s: %v", tr.Name(), err)
		}
	}
}

func TestTransformShapes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, tr := range allTransforms(r, 64, 8) {
		if tr.InputLen() != 64 {
			t.Errorf("%s InputLen = %d", tr.Name(), tr.InputLen())
		}
		wantOut := 8
		if tr.Name() == "LB" {
			wantOut = 64
		}
		if tr.OutputLen() != wantOut {
			t.Errorf("%s OutputLen = %d, want %d", tr.Name(), tr.OutputLen(), wantOut)
		}
		x := randomSeries(r, 64)
		if got := len(tr.Apply(x)); got != wantOut {
			t.Errorf("%s Apply len = %d", tr.Name(), got)
		}
		fe := tr.ApplyEnvelope(dtw.NewEnvelope(x, 3))
		if fe.Len() != wantOut || !fe.Valid() {
			t.Errorf("%s envelope len=%d valid=%v", tr.Name(), fe.Len(), fe.Valid())
		}
	}
}

// Property: every transform is lower-bounding on plain Euclidean distance.
func TestPropLowerBounding(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n, N = 64, 8
	transforms := allTransforms(r, n, N)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randomWalk(rr, n)
		y := randomWalk(rr, n)
		orig := ts.Dist(x, y)
		for _, tr := range transforms {
			fx, fy := tr.Apply(x), tr.Apply(y)
			var d float64
			for i := range fx {
				dd := fx[i] - fy[i]
				d += dd * dd
			}
			if math.Sqrt(d) > orig+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (Definition 8 / Lemma 3): container invariance. Any series z
// inside the envelope maps into the feature box.
func TestPropContainerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const n, N = 64, 8
	transforms := allTransforms(r, n, N)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		y := randomWalk(rr, n)
		k := 1 + rr.Intn(8)
		e := dtw.NewEnvelope(y, k)
		// Random series inside the envelope.
		z := make(ts.Series, n)
		for i := range z {
			z[i] = e.Lower[i] + rr.Float64()*(e.Upper[i]-e.Lower[i])
		}
		for _, tr := range transforms {
			fe := tr.ApplyEnvelope(e)
			if !fe.Contains(tr.Apply(z), 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 1): the feature-space envelope distance lower-bounds
// banded DTW, for every transform.
func TestPropTheorem1(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n, N = 64, 8
	transforms := allTransforms(r, n, N)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randomWalk(rr, n)
		q := randomWalk(rr, n)
		k := rr.Intn(10)
		trueDTW := dtw.Banded(x, q, k)
		for _, tr := range transforms {
			if LowerBoundDTW(tr, x, q, k) > trueDTW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: New_PAA is always at least as tight as Keogh_PAA (the paper's
// central claim, provable since avg-of-envelope is inside min/max box).
func TestPropNewPAADominatesKeogh(t *testing.T) {
	const n, N = 64, 8
	newPAA := NewPAA(n, N)
	keogh := NewKeoghPAA(n, N)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randomWalk(rr, n)
		q := randomWalk(rr, n)
		k := rr.Intn(12)
		lbNew := LowerBoundDTW(newPAA, x, q, k)
		lbKeogh := LowerBoundDTW(keogh, x, q, k)
		return lbNew >= lbKeogh-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the New_PAA feature box is contained in the Keogh_PAA box
// (Figure 5: "our bounds are tighter ... always the case").
func TestPropNewPAABoxInsideKeoghBox(t *testing.T) {
	const n, N = 64, 8
	newPAA := NewPAA(n, N)
	keogh := NewKeoghPAA(n, N)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		q := randomWalk(rr, n)
		k := rr.Intn(12)
		e := dtw.NewEnvelope(q, k)
		a := newPAA.ApplyEnvelope(e)
		b := keogh.ApplyEnvelope(e)
		for i := range a.Lower {
			if a.Lower[i] < b.Lower[i]-1e-9 || a.Upper[i] > b.Upper[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the full-dimensional identity transform reproduces LB_Keogh
// exactly.
func TestPropIdentityIsLBKeogh(t *testing.T) {
	const n = 48
	id := NewIdentity(n)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randomWalk(rr, n)
		q := randomWalk(rr, n)
		k := rr.Intn(10)
		return math.Abs(LowerBoundDTW(id, x, q, k)-dtw.LBKeogh(x, q, k)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: at k=0 (pure Euclidean) the envelope degenerates to a point and
// for every sign-split linear transform the bound equals the feature-space
// distance between the two feature vectors. Keogh_PAA is excluded: its
// min/max frame reduction does not collapse at k=0, which is exactly why it
// is looser than New_PAA even at zero warping width (Figure 7).
func TestPropZeroBandIsFeatureDistance(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const n, N = 64, 8
	transforms := allTransforms(r, n, N)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := randomWalk(rr, n)
		q := randomWalk(rr, n)
		for _, tr := range transforms {
			if tr.Name() == "Keogh_PAA" {
				continue
			}
			lb := LowerBoundDTW(tr, x, q, 0)
			fx, fq := tr.Apply(x), tr.Apply(q)
			var d float64
			for i := range fx {
				dd := fx[i] - fq[i]
				d += dd * dd
			}
			if math.Abs(lb-math.Sqrt(d)) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDFTApplyMatchesDefinition(t *testing.T) {
	// The first DFT feature (DC) must be sum(x)/sqrt(n).
	r := rand.New(rand.NewSource(8))
	n := 32
	x := randomSeries(r, n)
	d := NewDFT(n, 5)
	fx := d.Apply(x)
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(fx[0]-sum/math.Sqrt(float64(n))) > 1e-9 {
		t.Errorf("DC feature = %v", fx[0])
	}
}

func TestDFTNyquistRow(t *testing.T) {
	// n=8, N=8 includes the Nyquist row; all rows must stay orthonormal.
	d := NewDFT(8, 8)
	if err := d.Validate(1e-9); err != nil {
		t.Error(err)
	}
}

func TestHaarKnownCoefficients(t *testing.T) {
	// For x = [1,1,1,1,-1,-1,-1,-1] (n=8): scaling coeff 0, first wavelet
	// coeff (1/sqrt(8)) * (4 - (-4)) = 8/sqrt(8) = sqrt(8).
	x := ts.New(1, 1, 1, 1, -1, -1, -1, -1)
	h := NewHaar(8, 2)
	fx := h.Apply(x)
	if math.Abs(fx[0]) > 1e-12 {
		t.Errorf("scaling coeff = %v, want 0", fx[0])
	}
	if math.Abs(fx[1]-math.Sqrt(8)) > 1e-12 {
		t.Errorf("wavelet coeff = %v, want sqrt(8)", fx[1])
	}
}

func TestHaarFullReconstructionEnergy(t *testing.T) {
	// With N = n the Haar transform is orthonormal: energy is preserved.
	r := rand.New(rand.NewSource(9))
	n := 16
	x := randomSeries(r, n)
	h := NewHaar(n, n)
	fx := h.Apply(x)
	var ex, ef float64
	for i := range x {
		ex += x[i] * x[i]
		ef += fx[i] * fx[i]
	}
	if math.Abs(ex-ef) > 1e-9 {
		t.Errorf("energy %v != %v", ex, ef)
	}
}

func TestSVDOptimalAtZeroWidth(t *testing.T) {
	// SVD minimizes reconstruction error on the training distribution, so
	// on training-like data at k=0 its bound should be the tightest of
	// the reduced transforms (Figure 7 at warping width 0).
	r := rand.New(rand.NewSource(10))
	const n, N = 64, 8
	training := make([]ts.Series, 100)
	for i := range training {
		training[i] = randomWalk(r, n).ZeroMean()
	}
	svd := NewSVD(training, N)
	paa := NewPAA(n, N)
	dft := NewDFT(n, N)
	var tSVD, tPAA, tDFT float64
	const trials = 100
	for i := 0; i < trials; i++ {
		x := randomWalk(r, n).ZeroMean()
		y := randomWalk(r, n).ZeroMean()
		tSVD += Tightness(svd, x, y, 0)
		tPAA += Tightness(paa, x, y, 0)
		tDFT += Tightness(dft, x, y, 0)
	}
	if tSVD < tPAA || tSVD < tDFT {
		t.Errorf("SVD not tightest at k=0: svd=%.3f paa=%.3f dft=%.3f",
			tSVD/trials, tPAA/trials, tDFT/trials)
	}
}

func TestTightnessRange(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n, N = 64, 8
	tr := NewPAA(n, N)
	for i := 0; i < 50; i++ {
		x := randomWalk(r, n)
		y := randomWalk(r, n)
		k := r.Intn(8)
		tt := Tightness(tr, x, y, k)
		if tt < 0 || tt > 1+1e-9 {
			t.Fatalf("tightness %v out of range", tt)
		}
	}
	// Identical series: distance 0, tightness defined as 1.
	x := randomWalk(r, n)
	if Tightness(tr, x, x, 3) != 1 {
		t.Error("tightness of identical series should be 1")
	}
}

func TestMeanTightness(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	sample := make([]ts.Series, 6)
	for i := range sample {
		sample[i] = randomWalk(r, 64)
	}
	mt := MeanTightness(NewPAA(64, 8), sample, 4)
	if mt <= 0 || mt > 1 {
		t.Errorf("mean tightness = %v", mt)
	}
	if MeanTightness(NewPAA(64, 8), sample[:1], 4) != 0 {
		t.Error("single-series sample should give 0 (no pairs)")
	}
}

func TestSquaredDistToBox(t *testing.T) {
	fe := FeatureEnvelope{Lower: []float64{0, 0}, Upper: []float64{1, 1}}
	if d := SquaredDistToBox([]float64{0.5, 0.5}, fe); d != 0 {
		t.Errorf("inside point: %v", d)
	}
	if d := SquaredDistToBox([]float64{2, -1}, fe); d != 1+1 {
		t.Errorf("outside point: %v", d)
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	cases := []func(){
		func() { NewPAA(10, 3) },                    // N does not divide n
		func() { NewPAA(10, 0) },                    // N out of range
		func() { NewHaar(12, 4) },                   // not power of two
		func() { NewDFT(8, 9) },                     // N > n
		func() { NewSVD(nil, 2) },                   // empty training
		func() { NewPAA(8, 4).Apply(ts.New(1, 2)) }, // wrong input length
		func() {
			SquaredDistToBox([]float64{1}, FeatureEnvelope{Lower: []float64{0, 0}, Upper: []float64{1, 1}})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: random orthogonal-row linear transforms (not just the built-in
// families) satisfy container invariance via the sign-split — Lemma 3 holds
// for arbitrary matrices.
func TestPropLemma3Generic(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 4 + rr.Intn(20)
		N := 1 + rr.Intn(n)
		a := linalg.NewMatrix(N, n)
		for i := range a.Data {
			a.Data[i] = rr.NormFloat64()
		}
		tr := NewLinearTransform("random", a)
		y := randomWalk(rr, n)
		k := rr.Intn(5)
		e := dtw.NewEnvelope(y, k)
		fe := tr.ApplyEnvelope(e)
		if !fe.Valid() {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			z := make(ts.Series, n)
			for i := range z {
				z[i] = e.Lower[i] + rr.Float64()*(e.Upper[i]-e.Lower[i])
			}
			if !fe.Contains(tr.Apply(z), 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNewPAAApply(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomWalk(r, 256)
	tr := NewPAA(256, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Apply(x)
	}
}

func BenchmarkNewPAAEnvelope(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	q := randomWalk(r, 256)
	e := dtw.NewEnvelope(q, 12)
	tr := NewPAA(256, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ApplyEnvelope(e)
	}
}
