package core

import (
	"fmt"

	"warping/internal/dtw"
	"warping/internal/linalg"
	"warping/internal/ts"
)

// LinearTransform is a dimensionality reduction transform defined by an
// N x n matrix A: features X = A x. Its envelope extension uses the
// sign-split construction of Lemma 3, which is container-invariant for any
// real matrix.
//
// The transform is lower-bounding whenever the rows of A are mutually
// orthogonal with Euclidean norm at most 1; all constructors in this
// package produce such matrices. Validate checks this property.
type LinearTransform struct {
	name string
	a    *linalg.Matrix // N x n
	// positive is true when every coefficient of a is >= 0; the envelope
	// transform then reduces to transforming lower and upper separately
	// (the New_PAA fast path).
	positive bool
}

// NewLinearTransform wraps an N x n matrix as a Transform. The caller is
// responsible for the rows being orthogonal with norm <= 1 if the transform
// is to be lower-bounding; Validate can verify this.
func NewLinearTransform(name string, a *linalg.Matrix) *LinearTransform {
	positive := true
	for _, v := range a.Data {
		if v < 0 {
			positive = false
			break
		}
	}
	return &LinearTransform{name: name, a: a, positive: positive}
}

// Name implements Transform.
func (t *LinearTransform) Name() string { return t.name }

// InputLen implements Transform.
func (t *LinearTransform) InputLen() int { return t.a.Cols }

// OutputLen implements Transform.
func (t *LinearTransform) OutputLen() int { return t.a.Rows }

// Matrix returns the underlying transform matrix (shared, do not mutate).
func (t *LinearTransform) Matrix() *linalg.Matrix { return t.a }

// Apply implements Transform: X = A x.
func (t *LinearTransform) Apply(x ts.Series) []float64 {
	if len(x) != t.a.Cols {
		panic(fmt.Sprintf("core: %s expects length %d, got %d", t.name, t.a.Cols, len(x)))
	}
	return t.a.MulVec(x)
}

// ApplyEnvelope implements Transform using the Lemma 3 sign-split:
//
//	U^_j = sum_i a_ij * (u_i if a_ij >= 0 else l_i)
//	L^_j = sum_i a_ij * (l_i if a_ij >= 0 else u_i)
//
// For an all-positive matrix this reduces to (A l, A u).
func (t *LinearTransform) ApplyEnvelope(e dtw.Envelope) FeatureEnvelope {
	n := t.a.Cols
	if e.Len() != n {
		panic(fmt.Sprintf("core: %s expects envelope length %d, got %d", t.name, n, e.Len()))
	}
	if t.positive {
		return FeatureEnvelope{
			Lower: t.a.MulVec(e.Lower),
			Upper: t.a.MulVec(e.Upper),
		}
	}
	nOut := t.a.Rows
	lo := make([]float64, nOut)
	hi := make([]float64, nOut)
	for j := 0; j < nOut; j++ {
		row := t.a.Row(j)
		var l, u float64
		for i, aij := range row {
			if aij >= 0 {
				u += aij * e.Upper[i]
				l += aij * e.Lower[i]
			} else {
				u += aij * e.Lower[i]
				l += aij * e.Upper[i]
			}
		}
		lo[j] = l
		hi[j] = u
	}
	return FeatureEnvelope{Lower: lo, Upper: hi}
}

// Validate checks that the rows of the transform matrix are mutually
// orthogonal with norm at most 1 (within tol), the sufficient condition for
// the transform to be lower-bounding. It returns a descriptive error when
// the condition fails.
func (t *LinearTransform) Validate(tol float64) error {
	for i := 0; i < t.a.Rows; i++ {
		ri := t.a.Row(i)
		norm := linalg.Dot(ri, ri)
		if norm > 1+tol {
			return fmt.Errorf("core: %s row %d has norm^2 %.6f > 1", t.name, i, norm)
		}
		for j := i + 1; j < t.a.Rows; j++ {
			d := linalg.Dot(ri, t.a.Row(j))
			if d > tol || d < -tol {
				return fmt.Errorf("core: %s rows %d,%d not orthogonal (dot %.2e)", t.name, i, j, d)
			}
		}
	}
	return nil
}
