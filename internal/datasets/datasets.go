// Package datasets provides deterministic, seeded synthetic generators for
// the 24 time-series families of the paper's Figure 6 (originally drawn
// from the UCR Time Series Data Mining Archive, which is not redistributed
// here) plus the random-walk family of Figures 7 and 10.
//
// Each generator mimics the qualitative character of its family — period
// structure, smoothness, burstiness, drift — because those are the
// properties the tightness-of-lower-bound measure is sensitive to. The
// substitution is documented in DESIGN.md.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"warping/internal/ts"
)

// Generator produces one series of length n from the given source.
type Generator func(r *rand.Rand, n int) ts.Series

// Dataset is a named generator, ordered as in Figure 6 of the paper.
type Dataset struct {
	// ID is the 1-based position in Figure 6's x-axis.
	ID   int
	Name string
	Gen  Generator
}

// All returns the 24 Figure 6 dataset families in paper order.
func All() []Dataset {
	return []Dataset{
		{1, "Sunspot", Sunspot},
		{2, "Power", Power},
		{3, "Spot Exrates", SpotExrates},
		{4, "Shuttle", Shuttle},
		{5, "Water", Water},
		{6, "Chaotic", Chaotic},
		{7, "Streamgen", Streamgen},
		{8, "Ocean", Ocean},
		{9, "Tide", Tide},
		{10, "CSTR", CSTR},
		{11, "Winding", Winding},
		{12, "Dryer2", Dryer2},
		{13, "Ph Data", PhData},
		{14, "Power Plant", PowerPlant},
		{15, "Balleam", Balleam},
		{16, "Standard & Poor", StandardPoor},
		{17, "Soil Temp", SoilTemp},
		{18, "Wool", Wool},
		{19, "Infrasound", Infrasound},
		{20, "EEG", EEG},
		{21, "Koski EEG", KoskiEEG},
		{22, "Buoy Sensor", BuoySensor},
		{23, "Burst", Burst},
		{24, "Random walk", RandomWalk},
	}
}

// ByName returns the named dataset or an error.
func ByName(name string) (Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Sample draws count independent series of length n from the generator,
// each mean-subtracted (the experimental protocol of Section 5.2 subtracts
// the mean from each series).
func Sample(g Generator, count, n int, seed int64) []ts.Series {
	r := rand.New(rand.NewSource(seed))
	out := make([]ts.Series, count)
	for i := range out {
		out[i] = g(r, n).ZeroMean()
	}
	return out
}

// --- Generator implementations -----------------------------------------

// RandomWalk is a standard Gaussian random walk, "the most studied dataset
// of time series indexing".
func RandomWalk(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	for i := range s {
		v += r.NormFloat64()
		s[i] = v
	}
	return s
}

// Sunspot mimics the solar cycle: rectified ~11-sample-period oscillation
// with cycle-to-cycle amplitude variation and observation noise.
func Sunspot(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	period := 22 + r.Float64()*6
	phase := r.Float64() * 2 * math.Pi
	amp := 40 + r.Float64()*40
	for i := range s {
		c := math.Sin(2*math.Pi*float64(i)/period + phase)
		if c < 0 {
			c = -0.2 * c // asymmetric rectification
		}
		wobble := 1 + 0.3*math.Sin(2*math.Pi*float64(i)/(period*7))
		s[i] = amp*c*wobble + r.NormFloat64()*3
	}
	return s
}

// Power mimics electric load: strong daily cycle, weekday/weekend
// modulation, noise.
func Power(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	base := 100 + r.Float64()*50
	phase := r.Float64() * 2 * math.Pi
	for i := range s {
		day := math.Sin(2*math.Pi*float64(i)/24 + phase)
		week := 1.0
		if (i/24)%7 >= 5 {
			week = 0.7
		}
		s[i] = base + 30*day*week + r.NormFloat64()*4
	}
	return s
}

// SpotExrates mimics currency spot rates: a very smooth low-volatility
// random walk.
func SpotExrates(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 1 + r.Float64()
	for i := range s {
		v += r.NormFloat64() * 0.002
		s[i] = v
	}
	return s
}

// Shuttle mimics space-shuttle telemetry: long constant plateaus with
// abrupt level shifts and rare spikes.
func Shuttle(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	level := r.Float64() * 50
	for i := range s {
		if r.Float64() < 0.02 {
			level += (r.Float64() - 0.5) * 40
		}
		v := level
		if r.Float64() < 0.005 {
			v += (r.Float64() - 0.5) * 100
		}
		s[i] = v + r.NormFloat64()*0.2
	}
	return s
}

// Water mimics river flow: seasonal cycle plus slow trend plus skewed noise.
func Water(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	phase := r.Float64() * 2 * math.Pi
	trend := (r.Float64() - 0.5) * 0.05
	for i := range s {
		season := 20 * math.Sin(2*math.Pi*float64(i)/64+phase)
		spike := 0.0
		if r.Float64() < 0.03 {
			spike = r.Float64() * 30
		}
		s[i] = 50 + season + trend*float64(i) + spike + r.NormFloat64()*2
	}
	return s
}

// Chaotic is the logistic map in its chaotic regime, lightly smoothed.
func Chaotic(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	x := 0.1 + r.Float64()*0.8
	for i := range s {
		x = 3.97 * x * (1 - x)
		s[i] = x * 10
	}
	return ts.MovingAverage(s, 1)
}

// Streamgen mimics a synthetic stream generator: a chirp whose frequency
// drifts over time plus a level shift halfway.
func Streamgen(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	f0 := 0.01 + r.Float64()*0.03
	f1 := f0 * (2 + r.Float64()*2)
	shift := r.Float64() * 10
	for i := range s {
		t := float64(i) / float64(n)
		f := f0 + (f1-f0)*t
		v := 5 * math.Sin(2*math.Pi*f*float64(i))
		if i > n/2 {
			v += shift
		}
		s[i] = v + r.NormFloat64()*0.5
	}
	return s
}

// Ocean mimics narrowband ocean-wave height records.
func Ocean(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	p1 := 8 + r.Float64()*4
	p2 := p1 * (1.1 + r.Float64()*0.3)
	ph1 := r.Float64() * 2 * math.Pi
	ph2 := r.Float64() * 2 * math.Pi
	for i := range s {
		s[i] = 3*math.Sin(2*math.Pi*float64(i)/p1+ph1) +
			2*math.Sin(2*math.Pi*float64(i)/p2+ph2) +
			r.NormFloat64()*0.3
	}
	return s
}

// Tide mixes the semidiurnal and diurnal tidal constituents.
func Tide(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	ph1 := r.Float64() * 2 * math.Pi
	ph2 := r.Float64() * 2 * math.Pi
	for i := range s {
		t := float64(i)
		s[i] = 10*math.Sin(2*math.Pi*t/12.42+ph1) +
			4*math.Sin(2*math.Pi*t/24+ph2) +
			r.NormFloat64()*0.5
	}
	return s
}

// CSTR mimics a continuous stirred-tank reactor: first-order exponential
// responses to random setpoint steps.
func CSTR(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	target := r.Float64() * 10
	v := target
	tau := 0.05 + r.Float64()*0.1
	for i := range s {
		if r.Float64() < 0.03 {
			target = r.Float64() * 10
		}
		v += (target - v) * tau
		s[i] = v + r.NormFloat64()*0.05
	}
	return s
}

// Winding mimics an industrial web-winding process: smooth oscillation with
// AR-filtered disturbances.
func Winding(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	ar := 0.0
	ph := r.Float64() * 2 * math.Pi
	for i := range s {
		ar = 0.95*ar + r.NormFloat64()*0.3
		s[i] = 2*math.Sin(2*math.Pi*float64(i)/40+ph) + ar
	}
	return s
}

// Dryer2 mimics a hair-dryer system-identification record: low-pass
// filtered binary excitation.
func Dryer2(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	input := 1.0
	for i := range s {
		if r.Float64() < 0.1 {
			input = -input
		}
		v += (input*3 - v) * 0.2
		s[i] = v + r.NormFloat64()*0.1
	}
	return s
}

// PhData mimics pH titration: sigmoid transitions between plateaus.
func PhData(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	level := 4 + r.Float64()*2
	target := level
	for i := range s {
		if r.Float64() < 0.02 {
			target = 2 + r.Float64()*10
		}
		level += (target - level) * 0.08
		s[i] = level + r.NormFloat64()*0.05
	}
	return s
}

// PowerPlant mimics power-plant sensor data: daily cycle, drift, and heavy
// measurement noise.
func PowerPlant(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	drift := (r.Float64() - 0.5) * 0.1
	ph := r.Float64() * 2 * math.Pi
	for i := range s {
		s[i] = 200 + 15*math.Sin(2*math.Pi*float64(i)/96+ph) +
			drift*float64(i) + r.NormFloat64()*5
	}
	return s
}

// Balleam mimics a ball-and-beam control experiment: lightly damped
// oscillations re-excited at random times.
func Balleam(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	amp := 1.0
	phase := 0.0
	freq := 0.15 + r.Float64()*0.1
	for i := range s {
		if r.Float64() < 0.02 {
			amp = 0.5 + r.Float64()*2
			phase = r.Float64() * 2 * math.Pi
		}
		amp *= 0.995
		s[i] = amp*math.Sin(2*math.Pi*freq*float64(i)+phase) + r.NormFloat64()*0.05
	}
	return s
}

// StandardPoor mimics an equity index: geometric random walk.
func StandardPoor(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := math.Log(100 + r.Float64()*1000)
	for i := range s {
		v += 0.0002 + r.NormFloat64()*0.01
		s[i] = math.Exp(v)
	}
	return s
}

// SoilTemp mimics soil temperature: slow seasonal wave with damped daily
// ripple and low noise.
func SoilTemp(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	ph := r.Float64() * 2 * math.Pi
	for i := range s {
		t := float64(i)
		s[i] = 12 + 8*math.Sin(2*math.Pi*t/365+ph) +
			1.5*math.Sin(2*math.Pi*t/24) + r.NormFloat64()*0.3
	}
	return s
}

// Wool mimics wool price series: strongly autocorrelated AR(1) walk.
func Wool(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	for i := range s {
		v = 0.99*v + r.NormFloat64()
		s[i] = v * 5
	}
	return s
}

// Infrasound mimics infrasonic recordings: quiet background with sudden
// oscillatory wave packets.
func Infrasound(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	burst := 0
	freq := 0.2 + r.Float64()*0.2
	for i := range s {
		if burst == 0 && r.Float64() < 0.01 {
			burst = 20 + r.Intn(30)
		}
		v := r.NormFloat64() * 0.1
		if burst > 0 {
			v += 3 * math.Sin(2*math.Pi*freq*float64(i)) * float64(burst) / 40
			burst--
		}
		s[i] = v
	}
	return s
}

// EEG mimics an electroencephalogram: pink-ish noise from stacked AR
// processes.
func EEG(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	var slow, mid, fast float64
	for i := range s {
		slow = 0.99*slow + r.NormFloat64()*0.2
		mid = 0.9*mid + r.NormFloat64()*0.5
		fast = 0.5*fast + r.NormFloat64()
		s[i] = 4*slow + 2*mid + fast
	}
	return s
}

// KoskiEEG mimics the Koski EEG set: dominant alpha-band rhythm plus noise.
func KoskiEEG(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	period := 10 + r.Float64()*3
	ph := r.Float64() * 2 * math.Pi
	ar := 0.0
	for i := range s {
		ar = 0.8*ar + r.NormFloat64()
		s[i] = 5*math.Sin(2*math.Pi*float64(i)/period+ph) + ar
	}
	return s
}

// BuoySensor mimics buoy telemetry: a wandering baseline with spikes.
func BuoySensor(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	for i := range s {
		v += r.NormFloat64() * 0.5
		spike := 0.0
		if r.Float64() < 0.02 {
			spike = (r.Float64() - 0.3) * 15
		}
		s[i] = v + spike
	}
	return s
}

// Burst mimics bursty network/astronomy counts: near-zero background with
// clustered bursts.
func Burst(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	level := 0.0
	for i := range s {
		if r.Float64() < 0.02 {
			level = r.Float64() * 20
		}
		level *= 0.9
		s[i] = level + math.Abs(r.NormFloat64())*0.2
	}
	return s
}
