package datasets

import (
	"math"
	"math/rand"
	"testing"

	"warping/internal/ts"
)

func TestAllHas24InPaperOrder(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("got %d datasets, want 24", len(all))
	}
	for i, d := range all {
		if d.ID != i+1 {
			t.Errorf("dataset %q has ID %d at position %d", d.Name, d.ID, i)
		}
		if d.Name == "" || d.Gen == nil {
			t.Errorf("dataset %d incomplete", i)
		}
	}
	if all[23].Name != "Random walk" {
		t.Errorf("dataset 24 = %q, want Random walk", all[23].Name)
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("Chaotic")
	if err != nil || d.ID != 6 {
		t.Errorf("ByName(Chaotic) = %+v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestGeneratorsProduceFiniteValues(t *testing.T) {
	for _, d := range All() {
		r := rand.New(rand.NewSource(42))
		s := d.Gen(r, 256)
		if len(s) != 256 {
			t.Errorf("%s: length %d", d.Name, len(s))
			continue
		}
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite value at %d", d.Name, i)
				break
			}
		}
		if s.Std() == 0 {
			t.Errorf("%s: degenerate constant series", d.Name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, d := range All() {
		a := d.Gen(rand.New(rand.NewSource(7)), 128)
		b := d.Gen(rand.New(rand.NewSource(7)), 128)
		if !a.Equal(b) {
			t.Errorf("%s: not deterministic for fixed seed", d.Name)
		}
		c := d.Gen(rand.New(rand.NewSource(8)), 128)
		if a.Equal(c) {
			t.Errorf("%s: identical output for different seeds", d.Name)
		}
	}
}

func TestSampleProtocol(t *testing.T) {
	sample := Sample(RandomWalk, 50, 256, 1)
	if len(sample) != 50 {
		t.Fatalf("got %d series", len(sample))
	}
	for i, s := range sample {
		if len(s) != 256 {
			t.Fatalf("series %d length %d", i, len(s))
		}
		if math.Abs(s.Mean()) > 1e-9 {
			t.Fatalf("series %d not mean-subtracted: %v", i, s.Mean())
		}
	}
	// Series within a sample must differ.
	if sample[0].Equal(sample[1]) {
		t.Error("sample series identical")
	}
	// Same seed reproduces the sample.
	again := Sample(RandomWalk, 50, 256, 1)
	for i := range sample {
		if !sample[i].Equal(again[i]) {
			t.Fatal("Sample not reproducible")
		}
	}
}

func TestFamiliesAreDistinguishable(t *testing.T) {
	// Sanity: smooth families should have much lower first-difference
	// energy than noisy ones — guards against generators collapsing into
	// the same white-noise shape.
	roughness := func(g Generator) float64 {
		s := Sample(g, 10, 256, 3)
		var num, den float64
		for _, x := range s {
			for i := 1; i < len(x); i++ {
				d := x[i] - x[i-1]
				num += d * d
			}
			den += ts.SquaredDist(x, ts.Constant(len(x), 0))
		}
		return num / den
	}
	if roughness(SpotExrates) >= roughness(EEG) {
		t.Error("SpotExrates should be smoother than EEG")
	}
	if roughness(Tide) >= roughness(Burst) {
		t.Error("Tide should be smoother than Burst")
	}
}
