// Package spring implements the SPRING algorithm (Sakurai, Faloutsos &
// Yamamuro, ICDE 2007): subsequence matching under unconstrained DTW over a
// *stream*, in O(m) time and memory per arriving sample for a length-m
// query. Where internal/subseq indexes a static database of sequences,
// SPRING monitors live data — the natural streaming companion to this
// library's query-by-humming indexes (this paper's authors also built
// StatStream; monitoring hummable patterns in live feeds is squarely in
// that lineage).
//
// The algorithm maintains, per query prefix, the best warping-path cost of
// any stream subsequence ending at the current sample, together with that
// path's start position (the "star-padding + subsequence tracking" trick).
// A match is emitted once its cost cannot be improved by any path still in
// flight, which guarantees each reported match is locally optimal and
// non-overlapping.
package spring

import (
	"fmt"
	"math"

	"warping/internal/ts"
)

// Match is one reported stream match.
type Match struct {
	// Start and End are the inclusive stream positions (0-based) of the
	// matched subsequence.
	Start, End int
	// Dist is the DTW distance of the match.
	Dist float64
}

// Monitor is a streaming matcher for one query. Feed it samples with
// Update; matches are returned as soon as they are provably optimal.
type Monitor struct {
	query     ts.Series
	threshold float64 // squared
	d         []float64
	dPrev     []float64
	s         []int
	sPrev     []int
	pos       int
	// Current best pending match.
	dmin       float64
	start, end int
}

// NewMonitor creates a monitor for the query with a DTW distance threshold
// epsilon. The query must be non-empty and epsilon >= 0.
func NewMonitor(query ts.Series, epsilon float64) (*Monitor, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("spring: empty query")
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("spring: negative epsilon %v", epsilon)
	}
	m := &Monitor{
		query:     query.Clone(),
		threshold: epsilon * epsilon,
		d:         make([]float64, len(query)+1),
		dPrev:     make([]float64, len(query)+1),
		s:         make([]int, len(query)+1),
		sPrev:     make([]int, len(query)+1),
		dmin:      math.Inf(1),
	}
	for i := 1; i <= len(query); i++ {
		m.dPrev[i] = math.Inf(1)
	}
	return m, nil
}

// Update feeds one stream sample and returns any match that became final.
func (m *Monitor) Update(x float64) []Match {
	t := m.pos
	m.pos++
	q := m.query
	n := len(q)
	// Row for stream position t. Subsequence semantics: a path may start
	// here (prefix cost 0, start position t).
	m.d[0] = 0
	m.s[0] = t
	for i := 1; i <= n; i++ {
		diff := x - q[i-1]
		cost := diff * diff
		// min over (i-1, t) vertical, (i, t-1) horizontal, (i-1, t-1)
		// diagonal — standard DTW steps.
		best := m.d[i-1]
		src := m.s[i-1]
		if m.dPrev[i] < best {
			best = m.dPrev[i]
			src = m.sPrev[i]
		}
		if m.dPrev[i-1] < best {
			best = m.dPrev[i-1]
			src = m.sPrev[i-1]
		}
		if math.IsInf(best, 1) {
			m.d[i] = math.Inf(1)
			m.s[i] = src
		} else {
			m.d[i] = cost + best
			m.s[i] = src
		}
	}

	var out []Match
	// Report the pending match once no in-flight path can beat or extend
	// it: every prefix cost is either worse than dmin or starts after the
	// pending match ends.
	if !math.IsInf(m.dmin, 1) {
		canReport := true
		for i := 1; i <= n; i++ {
			if m.d[i] < m.dmin && m.s[i] <= m.end {
				canReport = false
				break
			}
		}
		if canReport {
			out = append(out, Match{Start: m.start, End: m.end, Dist: math.Sqrt(m.dmin)})
			m.dmin = math.Inf(1)
			// Disqualify paths overlapping the reported match.
			for i := 1; i <= n; i++ {
				if m.s[i] <= m.end {
					m.d[i] = math.Inf(1)
				}
			}
		}
	}
	// Track the best full match ending here.
	if m.d[n] <= m.threshold && m.d[n] < m.dmin {
		m.dmin = m.d[n]
		m.start = m.s[n]
		m.end = t
	}
	m.d, m.dPrev = m.dPrev, m.d
	m.s, m.sPrev = m.sPrev, m.s
	return out
}

// Flush reports the pending match, if any, at end of stream.
func (m *Monitor) Flush() []Match {
	if math.IsInf(m.dmin, 1) {
		return nil
	}
	out := []Match{{Start: m.start, End: m.end, Dist: math.Sqrt(m.dmin)}}
	m.dmin = math.Inf(1)
	return out
}

// Scan runs a monitor over a whole series and returns every match —
// convenience for offline use of the streaming matcher.
func Scan(stream, query ts.Series, epsilon float64) ([]Match, error) {
	m, err := NewMonitor(query, epsilon)
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, x := range stream {
		out = append(out, m.Update(x)...)
	}
	out = append(out, m.Flush()...)
	return out, nil
}
