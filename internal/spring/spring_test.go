package spring

import (
	"math"
	"math/rand"
	"testing"

	"warping/internal/dtw"
	"warping/internal/ts"
)

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(ts.Series{}, 1); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := NewMonitor(ts.New(1), -1); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestScanFindsExactOccurrences(t *testing.T) {
	query := ts.New(1, 2, 3, 2, 1)
	// Stream with two exact occurrences separated by flat noise.
	var stream ts.Series
	stream = append(stream, ts.Constant(10, 0)...)
	stream = append(stream, query...) // at 10..14
	stream = append(stream, ts.Constant(10, 0)...)
	stream = append(stream, query...) // at 25..29
	stream = append(stream, ts.Constant(10, 0)...)

	matches, err := Scan(stream, query, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	for i, want := range []int{10, 25} {
		if matches[i].Dist > 1e-9 {
			t.Errorf("match %d dist %v", i, matches[i].Dist)
		}
		// DTW may extend the match into flanking equal values (the 1s
		// border the 0s, not equal; starts must be exact here).
		if matches[i].Start != want || matches[i].End != want+4 {
			t.Errorf("match %d at [%d,%d], want [%d,%d]",
				i, matches[i].Start, matches[i].End, want, want+4)
		}
	}
}

func TestScanFindsWarpedOccurrence(t *testing.T) {
	query := ts.New(0, 5, 10, 5, 0)
	// Time-warped occurrence: each value held twice.
	var stream ts.Series
	stream = append(stream, ts.Constant(8, -10)...)
	for _, v := range query {
		stream = append(stream, v, v)
	}
	stream = append(stream, ts.Constant(8, -10)...)

	matches, err := Scan(stream, query, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	m := matches[0]
	if m.Dist > 1e-9 {
		t.Errorf("warped occurrence dist %v", m.Dist)
	}
	// With doubled samples a zero-cost path may skip one duplicate at
	// either end, so the reported span can shrink by one sample per side.
	if m.Start < 8 || m.Start > 9 || m.End < 16 || m.End > 17 {
		t.Errorf("match at [%d,%d], want within [8,17] covering [9,16]", m.Start, m.End)
	}
}

func TestScanNoFalsePositives(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	query := ts.New(0, 10, 0, 10, 0)
	stream := make(ts.Series, 300)
	for i := range stream {
		stream[i] = -50 + r.NormFloat64() // far from the query range
	}
	matches, err := Scan(stream, query, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("false positives: %v", matches)
	}
}

// Every reported match must genuinely be within epsilon: verify with an
// offline DTW computation of the reported subsequence.
func TestMatchesVerifyOffline(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	query := make(ts.Series, 12)
	for i := range query {
		query[i] = 5 * math.Sin(float64(i)/2)
	}
	stream := make(ts.Series, 500)
	v := 0.0
	for i := range stream {
		v += r.NormFloat64()
		stream[i] = v
	}
	// Plant two noisy occurrences.
	for _, at := range []int{100, 300} {
		for i, q := range query {
			stream[at+i] = q + r.NormFloat64()*0.2
		}
	}
	const eps = 3.0
	matches, err := Scan(stream, query, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 2 {
		t.Fatalf("planted occurrences not found: %v", matches)
	}
	for _, m := range matches {
		sub := stream[m.Start : m.End+1]
		d := dtw.Distance(sub, query)
		if math.Abs(d-m.Dist) > 1e-9 {
			t.Errorf("match [%d,%d]: reported %v, offline %v", m.Start, m.End, m.Dist, d)
		}
		if d > eps {
			t.Errorf("match [%d,%d] exceeds epsilon: %v", m.Start, m.End, d)
		}
	}
	// Matches must not overlap.
	for i := 1; i < len(matches); i++ {
		if matches[i].Start <= matches[i-1].End {
			t.Errorf("overlapping matches %v and %v", matches[i-1], matches[i])
		}
	}
}

func TestFlushReportsPending(t *testing.T) {
	query := ts.New(1, 2, 3)
	// Occurrence right at the end of the stream: only Flush can emit it.
	stream := append(ts.Constant(5, 0), query...)
	m, err := NewMonitor(query, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	for _, x := range stream {
		got = append(got, m.Update(x)...)
	}
	got = append(got, m.Flush()...)
	if len(got) != 1 || got[0].End != len(stream)-1 {
		t.Errorf("matches = %v", got)
	}
	// Flush is idempotent.
	if extra := m.Flush(); extra != nil {
		t.Errorf("second flush = %v", extra)
	}
}

func TestStreamingMatchesScan(t *testing.T) {
	// Feeding sample by sample must equal the batch Scan.
	r := rand.New(rand.NewSource(3))
	query := ts.New(0, 3, 6, 3, 0, -3)
	stream := make(ts.Series, 400)
	for i := range stream {
		stream[i] = r.NormFloat64() * 4
	}
	batch, err := Scan(stream, query, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMonitor(query, 4)
	var inc []Match
	for _, x := range stream {
		inc = append(inc, m.Update(x)...)
	}
	inc = append(inc, m.Flush()...)
	if len(batch) != len(inc) {
		t.Fatalf("batch %d vs incremental %d matches", len(batch), len(inc))
	}
	for i := range batch {
		if batch[i] != inc[i] {
			t.Fatalf("match %d differs: %v vs %v", i, batch[i], inc[i])
		}
	}
}

func BenchmarkMonitorUpdate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	query := make(ts.Series, 64)
	for i := range query {
		query[i] = r.NormFloat64()
	}
	m, _ := NewMonitor(query, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(r.NormFloat64())
	}
}
