// Package contour implements the note-contour baseline that the paper
// compares against (Table 2): the hummed query is segmented into discrete
// notes, reduced to a melodic-contour string over a small alphabet, and
// matched against the database by edit distance, optionally accelerated by
// q-gram filtering.
//
// The note segmentation step is deliberately the weak link — the paper's
// argument is that "no good algorithm is known to segment such a time
// series of pitches into discrete notes", so this stage makes the same
// class of errors (merged and split notes) as the commercial transcriber
// the authors used.
package contour

import (
	"fmt"
	"math"
	"strings"

	"warping/internal/music"
	"warping/internal/ts"
)

// Alphabet selects the contour granularity.
type Alphabet int

const (
	// Alphabet3 uses U (up), D (down), S (same) — the classic 3-letter
	// contour of Ghias et al.
	Alphabet3 Alphabet = 3
	// Alphabet5 refines to u/U (slightly/much higher) and d/D, plus S.
	// The split between "slightly" and "much" is at 2 semitones.
	Alphabet5 Alphabet = 5
)

// String renders the melodic contour of a melody: one letter per interval
// between successive notes (length len(m)-1).
func String(m music.Melody, a Alphabet) string {
	var b strings.Builder
	for i := 1; i < len(m); i++ {
		diff := m[i].Pitch - m[i-1].Pitch
		b.WriteByte(letter(diff, a))
	}
	return b.String()
}

func letter(diff int, a Alphabet) byte {
	switch a {
	case Alphabet3:
		switch {
		case diff > 0:
			return 'U'
		case diff < 0:
			return 'D'
		default:
			return 'S'
		}
	case Alphabet5:
		switch {
		case diff > 2:
			return 'U'
		case diff > 0:
			return 'u'
		case diff < -2:
			return 'D'
		case diff < 0:
			return 'd'
		default:
			return 'S'
		}
	default:
		panic(fmt.Sprintf("contour: unknown alphabet %d", a))
	}
}

// SegmentNotes transcribes a frame-level pitch series into discrete notes:
// pitches are rounded to the nearest semitone, consecutive equal semitones
// form a run, silence (zero) frames break runs, and runs shorter than
// minFrames are merged into their longer neighbor (they are usually pitch-
// tracking glitches or glide frames). framesPerTick converts run lengths to
// note durations.
//
// This is the error-prone preprocessing stage the paper criticizes: a
// wavering hum splits one intended note into several, and a glide merges
// two notes into one.
func SegmentNotes(pitch ts.Series, framesPerTick, minFrames int) music.Melody {
	if framesPerTick < 1 {
		panic("contour: framesPerTick < 1")
	}
	if minFrames < 1 {
		minFrames = 1
	}
	type run struct {
		semitone int
		frames   int
	}
	var runs []run
	for _, v := range pitch {
		if v <= 0 {
			// Silence breaks the current run but emits nothing.
			runs = append(runs, run{semitone: -1})
			continue
		}
		st := int(math.Round(v))
		if len(runs) > 0 && runs[len(runs)-1].semitone == st {
			runs[len(runs)-1].frames++
		} else {
			runs = append(runs, run{semitone: st, frames: 1})
		}
	}
	// Drop silence markers and absorb glitch runs into the previous note.
	// A silence prevents merging the notes on either side: the hummer
	// articulated them separately.
	var clean []run
	broke := false
	for _, r := range runs {
		if r.semitone < 0 {
			broke = true
			continue
		}
		if r.frames < minFrames {
			if len(clean) > 0 && !broke {
				clean[len(clean)-1].frames += r.frames
			}
			continue
		}
		if len(clean) > 0 && !broke && clean[len(clean)-1].semitone == r.semitone {
			clean[len(clean)-1].frames += r.frames
			continue
		}
		clean = append(clean, r)
		broke = false
	}
	var m music.Melody
	for _, r := range clean {
		d := (r.frames + framesPerTick/2) / framesPerTick
		if d < 1 {
			d = 1
		}
		st := r.semitone
		if st < 0 {
			st = 0
		}
		if st > 127 {
			st = 127
		}
		m = append(m, music.Note{Pitch: st, Duration: d})
	}
	return m
}

// EditDistance returns the Levenshtein distance between two strings with
// unit costs, in O(len(a)*len(b)) time and O(min) memory.
func EditDistance(a, b string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if v := prev[j] + 1; v < m {
				m = v
			}
			if v := curr[j-1] + 1; v < m {
				m = v
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

// QGramProfile counts the q-grams of s.
func QGramProfile(s string, q int) map[string]int {
	if q < 1 {
		panic("contour: q < 1")
	}
	out := make(map[string]int)
	for i := 0; i+q <= len(s); i++ {
		out[s[i:i+q]]++
	}
	return out
}

// CommonQGrams returns the size of the multiset intersection of two q-gram
// profiles. If EditDistance(a, b) <= k then a and b share at least
// max(|a|,|b|) - q + 1 - k*q q-grams, so a small common count safely rules
// out close matches — the "q-grams" speed-up the paper mentions for string
// matching.
func CommonQGrams(a, b map[string]int) int {
	var common int
	for g, ca := range a {
		if cb, ok := b[g]; ok {
			if cb < ca {
				common += cb
			} else {
				common += ca
			}
		}
	}
	return common
}

// SegmentNotesOnset transcribes a pitch series into notes using loudness
// onsets in addition to pitch changes: a local energy dip below dipRatio of
// the neighbouring level starts a new note even when the pitch holds (a
// hummer re-articulating the same note). This is the second segmentation
// process of the paper's Table 2 protocol ("we used the silence information
// between pitches to segment notes" alongside the commercial transcriber);
// callers take the better rank of the two.
//
// energy must be frame-aligned with pitch (one value per 10 ms frame).
func SegmentNotesOnset(pitch, energy ts.Series, framesPerTick, minFrames int, dipRatio float64) music.Melody {
	if len(energy) != len(pitch) {
		panic("contour: pitch/energy length mismatch")
	}
	if dipRatio <= 0 || dipRatio >= 1 {
		panic("contour: dipRatio must be in (0,1)")
	}
	// Mark onset frames: energy local minimum below dipRatio * the
	// surrounding average, with voiced neighbours.
	smoothed := ts.MovingAverage(energy, 5)
	cut := make([]bool, len(pitch))
	for i := 2; i < len(pitch)-2; i++ {
		if energy[i] <= energy[i-1] && energy[i] <= energy[i+1] &&
			smoothed[i] > 0 && energy[i] < dipRatio*smoothed[i] {
			cut[i] = true
		}
	}
	// Replace pitch with 0 at cut frames so the base segmenter splits
	// there, then reuse its run logic.
	marked := pitch.Clone()
	for i, c := range cut {
		if c {
			marked[i] = 0
		}
	}
	return SegmentNotes(marked, framesPerTick, minFrames)
}
