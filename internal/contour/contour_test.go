package contour

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"warping/internal/hum"
	"warping/internal/music"
	"warping/internal/ts"
)

func TestContourString3(t *testing.T) {
	m := music.Melody{{Pitch: 60, Duration: 1}, {Pitch: 62, Duration: 1}, {Pitch: 62, Duration: 1}, {Pitch: 59, Duration: 1}}
	if got := String(m, Alphabet3); got != "USD" {
		t.Errorf("contour = %q, want USD", got)
	}
}

func TestContourString5(t *testing.T) {
	m := music.Melody{{Pitch: 60, Duration: 1}, {Pitch: 61, Duration: 1}, {Pitch: 65, Duration: 1}, {Pitch: 64, Duration: 1}, {Pitch: 57, Duration: 1}, {Pitch: 57, Duration: 1}}
	if got := String(m, Alphabet5); got != "uUdDS" {
		t.Errorf("contour = %q, want uUdDS", got)
	}
}

func TestContourSingleNote(t *testing.T) {
	m := music.Melody{{Pitch: 60, Duration: 4}}
	if got := String(m, Alphabet3); got != "" {
		t.Errorf("single-note contour = %q", got)
	}
}

func TestEditDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "xy", 2},
		{"kitten", "sitting", 3},
		{"UUDS", "UUDS", 0},
		{"UUDS", "UDDS", 1},
		{"abc", "acb", 2},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("ed(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: edit distance is a metric.
func TestPropEditDistanceMetric(t *testing.T) {
	letters := []byte("UDS")
	randStr := func(r *rand.Rand) string {
		n := r.Intn(25)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(letters[r.Intn(3)])
		}
		return b.String()
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randStr(r), randStr(r), randStr(r)
		if EditDistance(a, b) != EditDistance(b, a) {
			return false
		}
		if (a == b) != (EditDistance(a, b) == 0) {
			return false
		}
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQGramProfile(t *testing.T) {
	p := QGramProfile("UUDU", 2)
	if p["UU"] != 1 || p["UD"] != 1 || p["DU"] != 1 || len(p) != 3 {
		t.Errorf("profile = %v", p)
	}
	if got := QGramProfile("ab", 3); len(got) != 0 {
		t.Errorf("short string profile = %v", got)
	}
}

// Property: the q-gram count filter is sound — the bound never exceeds the
// actual common q-grams for strings within edit distance k.
func TestPropQGramFilterSound(t *testing.T) {
	letters := []byte("UDS")
	randStr := func(r *rand.Rand, n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(letters[r.Intn(3)])
		}
		return b.String()
	}
	const q = 3
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randStr(r, 5+r.Intn(30))
		b := randStr(r, 5+r.Intn(30))
		k := EditDistance(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		need := maxLen - q + 1 - k*q
		if need <= 0 {
			return true // bound vacuous
		}
		return CommonQGrams(QGramProfile(a, q), QGramProfile(b, q)) >= need
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentNotesCleanInput(t *testing.T) {
	// A perfect rendition must segment back into the same pitch sequence.
	m := music.TwinkleTwinkle()
	contour := hum.PerfectSinger().RenderPitch(m, rand.New(rand.NewSource(1)))
	got := SegmentNotes(contour, hum.FramesPerTick, 3)
	// Adjacent repeated notes merge (60,60 -> one long 60), so compare
	// the deduplicated pitch sequences.
	dedup := func(mm music.Melody) []int {
		var out []int
		for _, n := range mm {
			if len(out) == 0 || out[len(out)-1] != n.Pitch {
				out = append(out, n.Pitch)
			}
		}
		return out
	}
	a, b := dedup(m), dedup(got)
	if len(a) != len(b) {
		t.Fatalf("pitch runs: got %v, want %v", b, a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d: got %d, want %d", i, b[i], a[i])
		}
	}
}

func TestSegmentNotesGlitchAbsorption(t *testing.T) {
	// 20 frames of C4, 1 glitch frame, 20 frames of D4.
	var p ts.Series
	p = append(p, ts.Constant(20, 60)...)
	p = append(p, 73) // tracking glitch
	p = append(p, ts.Constant(20, 62)...)
	m := SegmentNotes(p, 10, 3)
	if len(m) != 2 || m[0].Pitch != 60 || m[1].Pitch != 62 {
		t.Errorf("melody = %v", m)
	}
}

func TestSegmentNotesSilenceBreaks(t *testing.T) {
	var p ts.Series
	p = append(p, ts.Constant(15, 60)...)
	p = append(p, ts.Constant(5, 0)...) // breath
	p = append(p, ts.Constant(15, 60)...)
	m := SegmentNotes(p, 10, 3)
	if len(m) != 2 {
		t.Errorf("expected silence to split the note: %v", m)
	}
}

func TestSegmentNotesEmpty(t *testing.T) {
	if m := SegmentNotes(ts.Series{}, 10, 3); len(m) != 0 {
		t.Errorf("melody from empty series: %v", m)
	}
	if m := SegmentNotes(ts.Constant(10, 0), 10, 3); len(m) != 0 {
		t.Errorf("melody from silence: %v", m)
	}
}

func TestDBQueryRanking(t *testing.T) {
	db := NewDB(Alphabet3, 0)
	db.Add(1, music.TwinkleTwinkle())
	db.Add(2, music.OdeToJoy())
	db.Add(3, music.FrereJacques())
	db.Add(4, music.AmazingGrace())
	// Query with an exact copy: must rank first with distance 0.
	res, _ := db.Query(music.OdeToJoy(), 4)
	if res[0].ID != 2 || res[0].Dist != 0 {
		t.Errorf("results = %v", res)
	}
	rank, _ := db.Rank(music.OdeToJoy(), 2)
	if rank != 1 {
		t.Errorf("rank = %d", rank)
	}
	if rank, _ := db.Rank(music.OdeToJoy(), 99); rank != 0 {
		t.Errorf("absent id rank = %d", rank)
	}
}

func TestDBQGramFilterConsistency(t *testing.T) {
	// With and without the q-gram filter the top results must agree.
	r := rand.New(rand.NewSource(2))
	plain := NewDB(Alphabet3, 0)
	filtered := NewDB(Alphabet3, 3)
	var melodies []music.Melody
	for i := 0; i < 200; i++ {
		m := music.GenerateMelody(r, 15+r.Intn(15))
		melodies = append(melodies, m)
		plain.Add(int64(i), m)
		filtered.Add(int64(i), m)
	}
	for trial := 0; trial < 10; trial++ {
		q := melodies[r.Intn(len(melodies))]
		a, _ := plain.Query(q, 5)
		b, sb := filtered.Query(q, 5)
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("trial %d: dist[%d] %d vs %d", trial, i, a[i].Dist, b[i].Dist)
			}
		}
		if sb.Pruned == 0 {
			t.Log("q-gram filter pruned nothing (allowed but unexpected)")
		}
	}
}

func TestContourAmbiguity(t *testing.T) {
	// The core weakness the paper reports: many melodies share short
	// contours. Two different melodies with the same up/down pattern are
	// indistinguishable under Alphabet3.
	a := music.Melody{{Pitch: 60, Duration: 1}, {Pitch: 62, Duration: 1}, {Pitch: 60, Duration: 1}}
	b := music.Melody{{Pitch: 50, Duration: 1}, {Pitch: 60, Duration: 1}, {Pitch: 40, Duration: 1}}
	if String(a, Alphabet3) != String(b, Alphabet3) {
		t.Error("expected identical 3-letter contours")
	}
	if String(a, Alphabet5) == String(b, Alphabet5) {
		t.Error("5-letter contour should distinguish them")
	}
}

func TestSegmentNotesOnsetSplitsRearticulation(t *testing.T) {
	// Two re-articulated C4s: constant pitch, but an energy dip between.
	pitch := ts.Constant(40, 60)
	energy := ts.Constant(40, 1.0)
	energy[20] = 0.05 // articulation dip
	energy[19] = 0.5
	energy[21] = 0.5
	m := SegmentNotesOnset(pitch, energy, 10, 3, 0.35)
	if len(m) != 2 {
		t.Errorf("expected the dip to split the note: %v", m)
	}
	// Without the energy information the same input is one note.
	if got := SegmentNotes(pitch, 10, 3); len(got) != 1 {
		t.Errorf("baseline should merge: %v", got)
	}
}

func TestSegmentNotesOnsetNoDips(t *testing.T) {
	pitch := ts.Constant(30, 64)
	energy := ts.Constant(30, 1.0)
	m := SegmentNotesOnset(pitch, energy, 10, 3, 0.35)
	if len(m) != 1 || m[0].Pitch != 64 {
		t.Errorf("flat energy should not split: %v", m)
	}
}

func TestSegmentNotesOnsetPanics(t *testing.T) {
	cases := []func(){
		func() { SegmentNotesOnset(ts.Constant(5, 60), ts.Constant(4, 1), 10, 3, 0.3) },
		func() { SegmentNotesOnset(ts.Constant(5, 60), ts.Constant(5, 1), 10, 3, 0) },
		func() { SegmentNotesOnset(ts.Constant(5, 60), ts.Constant(5, 1), 10, 3, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
