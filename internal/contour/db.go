package contour

import (
	"container/heap"
	"sort"

	"warping/internal/music"
)

// DB is a contour-string melody database queried by edit distance, with an
// optional q-gram pre-filter that prunes entries whose q-gram overlap with
// the query proves their edit distance exceeds the current kth best.
type DB struct {
	alphabet Alphabet
	q        int
	entries  []dbEntry
}

type dbEntry struct {
	id      int64
	str     string
	profile map[string]int
}

// NewDB creates a contour database with the given alphabet and q-gram
// length (q = 0 disables the filter).
func NewDB(a Alphabet, q int) *DB {
	return &DB{alphabet: a, q: q}
}

// Len returns the number of entries.
func (db *DB) Len() int { return len(db.entries) }

// Add inserts a melody under an id.
func (db *DB) Add(id int64, m music.Melody) {
	s := String(m, db.alphabet)
	e := dbEntry{id: id, str: s}
	if db.q > 0 {
		e.profile = QGramProfile(s, db.q)
	}
	db.entries = append(db.entries, e)
}

// Result is one ranked match.
type Result struct {
	ID int64
	// Dist is the edit distance between contour strings.
	Dist int
}

// QueryStats reports filter effectiveness.
type QueryStats struct {
	// EditDistances is the number of full edit-distance computations.
	EditDistances int
	// Pruned is the number of entries eliminated by the q-gram and
	// length filters.
	Pruned int
}

// distHeap is a max-heap over the current topK distances.
type distHeap []int

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Query takes an already-segmented query melody, reduces it to a contour
// string, and returns the topK closest entries by edit distance (ascending,
// ties by id). With q > 0, entries provably farther than the current kth
// best are pruned without computing the edit distance.
func (db *DB) Query(query music.Melody, topK int) ([]Result, QueryStats) {
	qs := String(query, db.alphabet)
	var stats QueryStats
	var qProfile map[string]int
	if db.q > 0 {
		qProfile = QGramProfile(qs, db.q)
	}
	var results []Result
	top := &distHeap{}
	kthBest := func() int {
		if top.Len() < topK {
			return 1 << 30
		}
		return (*top)[0]
	}
	for _, e := range db.entries {
		if db.q > 0 {
			bound := kthBest()
			// Length filter: edit distance >= |len difference|.
			dl := len(e.str) - len(qs)
			if dl < 0 {
				dl = -dl
			}
			if dl > bound {
				stats.Pruned++
				continue
			}
			// q-gram count filter: ed(a,b) <= k implies common q-grams
			// >= max(|a|,|b|) - q + 1 - k*q.
			maxLen := len(e.str)
			if len(qs) > maxLen {
				maxLen = len(qs)
			}
			need := maxLen - db.q + 1 - bound*db.q
			if need > 0 && CommonQGrams(qProfile, e.profile) < need {
				stats.Pruned++
				continue
			}
		}
		stats.EditDistances++
		d := EditDistance(qs, e.str)
		results = append(results, Result{ID: e.id, Dist: d})
		heap.Push(top, d)
		if top.Len() > topK {
			heap.Pop(top)
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Dist != results[j].Dist {
			return results[i].Dist < results[j].Dist
		}
		return results[i].ID < results[j].ID
	})
	if len(results) > topK {
		results = results[:topK]
	}
	return results, stats
}

// Rank returns the 1-based rank of targetID in a full-database query (the
// quality measure of Table 2), or 0 if the id is absent.
func (db *DB) Rank(query music.Melody, targetID int64) (int, QueryStats) {
	res, stats := db.Query(query, len(db.entries))
	for i, r := range res {
		if r.ID == targetID {
			return i + 1, stats
		}
	}
	return 0, stats
}
