package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Fatal("Set/At broken")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row should be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone aliases data")
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 {
		t.Error("transpose values wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {0, 1, 0}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 1 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestIdentityAndDot(t *testing.T) {
	id := Identity(3)
	v := []float64{2, 3, 4}
	got := id.MulVec(v)
	for i := range v {
		if got[i] != v[i] {
			t.Fatal("identity MulVec changed the vector")
		}
	}
	if Dot(v, v) != 4+9+16 {
		t.Errorf("Dot = %v", Dot(v, v))
	}
}

func randomSymmetric(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenSymDiagonal(t *testing.T) {
	d := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}})
	values, vectors := EigenSym(d)
	want := []float64{7, 3, -1}
	for i, v := range want {
		if math.Abs(values[i]-v) > 1e-10 {
			t.Errorf("values[%d] = %v, want %v", i, values[i], v)
		}
	}
	// Each eigenvector row must be a signed unit basis vector.
	for i := 0; i < 3; i++ {
		row := vectors.Row(i)
		var nonzero int
		for _, v := range row {
			if math.Abs(v) > 1e-8 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Errorf("row %d = %v not a basis vector", i, row)
		}
	}
}

func TestEigenSym2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	values, vectors := EigenSym(m)
	if math.Abs(values[0]-3) > 1e-10 || math.Abs(values[1]-1) > 1e-10 {
		t.Fatalf("values = %v", values)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	v0 := vectors.Row(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-9 || math.Abs(v0[0]-v0[1]) > 1e-9 {
		t.Errorf("v0 = %v", v0)
	}
}

// Property: A v_i = lambda_i v_i and rows orthonormal, for random symmetric A.
func TestPropEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randomSymmetric(r, n)
		values, vectors := EigenSym(a)
		// Orthonormality.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				d := Dot(vectors.Row(i), vectors.Row(j))
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(d-want) > 1e-8 {
					return false
				}
			}
		}
		// A v = lambda v.
		for i := 0; i < n; i++ {
			av := a.MulVec(vectors.Row(i))
			for j := range av {
				if math.Abs(av[j]-values[i]*vectors.At(i, j)) > 1e-7 {
					return false
				}
			}
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if values[i] > values[i-1]+1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: trace is preserved by the eigendecomposition.
func TestPropEigenTrace(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		a := randomSymmetric(r, n)
		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		values, _ := EigenSym(a)
		var sum float64
		for _, v := range values {
			sum += v
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPCARecoversStructure(t *testing.T) {
	// Data living almost exactly on a 1-D line in 4-D space: the first
	// principal component should align with the line direction.
	r := rand.New(rand.NewSource(99))
	dir := []float64{0.5, 0.5, 0.5, 0.5} // unit vector
	data := NewMatrix(200, 4)
	for i := 0; i < 200; i++ {
		tval := r.NormFloat64() * 10
		for j := 0; j < 4; j++ {
			data.Set(i, j, tval*dir[j]+r.NormFloat64()*0.01)
		}
	}
	p := NewPCA(data, 2)
	c0 := p.Components.Row(0)
	// |cos angle| with dir should be ~1.
	cos := math.Abs(Dot(c0, dir))
	if cos < 0.999 {
		t.Errorf("first PC misaligned: |cos| = %v", cos)
	}
	if p.Variances[0] < 100*p.Variances[1] {
		t.Errorf("variances not separated: %v", p.Variances)
	}
}

func TestPCAOrthonormalComponents(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := NewMatrix(50, 8)
	for i := range data.Data {
		data.Data[i] = r.NormFloat64()
	}
	p := NewPCA(data, 4)
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			d := Dot(p.Components.Row(i), p.Components.Row(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-8 {
				t.Fatalf("components not orthonormal: <%d,%d> = %v", i, j, d)
			}
		}
	}
}

// Property: projection onto orthonormal rows never increases the norm of a
// centered vector (Bessel's inequality) — this is what makes the SVD
// transform lower-bounding.
func TestPropPCAProjectionContractive(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	data := NewMatrix(60, 10)
	for i := range data.Data {
		data.Data[i] = r.NormFloat64()
	}
	p := NewPCA(data, 5)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := make([]float64, 10)
		y := make([]float64, 10)
		for i := range x {
			x[i] = rr.NormFloat64()
			y[i] = rr.NormFloat64()
		}
		px, py := p.Project(x), p.Project(y)
		var dOrig, dProj float64
		for i := range x {
			d := x[i] - y[i]
			dOrig += d * d
		}
		for i := range px {
			d := px[i] - py[i]
			dProj += d * d
		}
		return dProj <= dOrig+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPCAPanics(t *testing.T) {
	data := NewMatrix(3, 3)
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			NewPCA(data, k)
		}()
	}
}
