// Package linalg provides the small dense linear-algebra kernel needed for
// the SVD dimensionality-reduction transform: a row-major matrix type, a
// cyclic Jacobi eigensolver for symmetric matrices, and a principal-
// component decomposition built on it.
package linalg

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum float64
		for j, rv := range row {
			sum += rv * v[j]
		}
		out[i] = sum
	}
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}
