package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// a matrix whose ROWS are the corresponding orthonormal eigenvectors.
//
// The input must be square and (numerically) symmetric; only the upper
// triangle is trusted. Convergence is to machine precision for the modest
// sizes (n <= a few hundred) used by the SVD transform.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("linalg: EigenSym needs square matrix, got %dx%d", n, a.Cols))
	}
	m := a.Clone()
	// Symmetrize to guard against tiny asymmetries in the input.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m.At(i, j) * m.At(i, j)
			}
		}
		return s
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				// Rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation J(p,q,theta): m = J^T m J.
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors (rows of v are vectors, so
				// rotate columns of v^T == rows combine).
				for k := 0; k < n; k++ {
					vkp := v.At(p, k)
					vkq := v.At(q, k)
					v.Set(p, k, c*vkp-s*vkq)
					v.Set(q, k, s*vkp+c*vkq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort descending by eigenvalue, permuting vector rows alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	vectors = NewMatrix(n, n)
	for r, id := range idx {
		sortedVals[r] = values[id]
		copy(vectors.Row(r), v.Row(id))
	}
	return sortedVals, vectors
}
