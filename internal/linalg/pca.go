package linalg

import "fmt"

// PCA holds the result of a principal-component analysis of a data matrix
// whose rows are observations (time series) and whose columns are time
// positions. Components' rows are the orthonormal principal directions in
// descending order of explained variance — exactly the right singular
// vectors of the mean-centered data matrix, which is what the SVD
// dimensionality-reduction transform of the paper indexes on.
type PCA struct {
	Mean       []float64 // column means of the training data
	Components *Matrix   // k x n, rows orthonormal
	Variances  []float64 // eigenvalues (explained variance per component)
}

// NewPCA computes the top-k principal components of the rows of data
// (observations x dimensions). k must be in [1, cols]. The implementation
// forms the n x n covariance matrix and diagonalizes it with the Jacobi
// eigensolver, which is robust and exact enough for the n <= few hundred
// dimensional series this library indexes.
func NewPCA(data *Matrix, k int) *PCA {
	rows, cols := data.Rows, data.Cols
	if rows == 0 || cols == 0 {
		panic("linalg: PCA of empty matrix")
	}
	if k < 1 || k > cols {
		panic(fmt.Sprintf("linalg: PCA k=%d out of range [1,%d]", k, cols))
	}
	mean := make([]float64, cols)
	for i := 0; i < rows; i++ {
		row := data.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(rows)
	}
	// Covariance C = (1/rows) * sum (x - mean)(x - mean)^T.
	cov := NewMatrix(cols, cols)
	centered := make([]float64, cols)
	for i := 0; i < rows; i++ {
		row := data.Row(i)
		for j := range centered {
			centered[j] = row[j] - mean[j]
		}
		for a := 0; a < cols; a++ {
			ca := centered[a]
			if ca == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := a; b < cols; b++ {
				crow[b] += ca * centered[b]
			}
		}
	}
	inv := 1 / float64(rows)
	for a := 0; a < cols; a++ {
		for b := a; b < cols; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	values, vectors := EigenSym(cov)
	comp := NewMatrix(k, cols)
	for i := 0; i < k; i++ {
		copy(comp.Row(i), vectors.Row(i))
	}
	return &PCA{Mean: mean, Components: comp, Variances: values[:k]}
}

// Project maps a single observation onto the principal components,
// returning k coefficients. Note: following the paper's SVD indexing, the
// projection does NOT subtract the training mean — the transform must be a
// plain linear map so that the envelope sign-split machinery (Lemma 3)
// applies. Because indexed series are already mean-subtracted, the training
// mean is near zero anyway.
func (p *PCA) Project(x []float64) []float64 {
	return p.Components.MulVec(x)
}
