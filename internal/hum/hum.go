// Package hum simulates human hummers. The paper's experiments use
// recordings of real people ("we asked people with different musical skills
// to hum for the system"); this package substitutes parameterized singer
// models that reproduce the documented error characteristics:
//
//   - wrong absolute pitch (only ~1 in 10,000 people has perfect pitch):
//     a global transposition drawn per performance;
//   - tempo scaling (half to double the original tempo), uniform over the
//     performance;
//   - relative pitch errors: per-note deviations in semitones;
//   - local timing variation: per-note duration jitter — exactly the
//     error DTW is meant to absorb;
//   - portamento (pitch glides between notes), vibrato and breath noise.
//
// Two render paths are provided. RenderPitch produces the frame-level pitch
// contour directly; Hum runs the full acoustic pipeline (synthesize a
// waveform, re-estimate pitch with the autocorrelation tracker) so the
// system is exercised end to end, including pitch-tracking artifacts.
package hum

import (
	"math/rand"

	"warping/internal/audio"
	"warping/internal/music"
	"warping/internal/ts"
)

// FramesPerTick is the nominal number of 10 ms pitch frames per melody tick
// (16th note) at tempo factor 1.0 — a 16th of 120 ms, i.e. 125 BPM.
const FramesPerTick = 12

// Singer is a parameterized hummer model.
type Singer struct {
	// Name labels the model in reports.
	Name string
	// PitchShiftStd is the standard deviation (semitones) of the global
	// transposition drawn once per performance.
	PitchShiftStd float64
	// PitchErrorStd is the per-note relative pitch error (semitones).
	PitchErrorStd float64
	// TempoMin and TempoMax bound the global tempo factor drawn per
	// performance (1.0 = nominal; the paper observes 0.5-2.0).
	TempoMin, TempoMax float64
	// TimingJitter is the per-note duration jitter as a fraction of the
	// nominal duration (0.3 = up to +-30%).
	TimingJitter float64
	// GlideFrames is the length of the portamento between notes.
	GlideFrames int
	// BreathProb is the chance of a short silent gap before a note.
	BreathProb float64
	// DropNoteProb is the chance of skipping a note entirely (poor
	// hummers forget or elide notes); the first note is never dropped.
	DropNoteProb float64
	// RepeatNoteProb is the chance of stuttering a note (humming it
	// twice).
	RepeatNoteProb float64
	// NoiseLevel and VibratoCents feed the audio synthesis path.
	NoiseLevel   float64
	VibratoCents float64
}

// GoodSinger returns a competent amateur: small pitch errors, mild tempo
// drift. Matches the "better singers" cohort of Table 2.
func GoodSinger() Singer {
	return Singer{
		Name:          "good",
		PitchShiftStd: 2.0,
		PitchErrorStd: 0.15,
		TempoMin:      0.85,
		TempoMax:      1.2,
		TimingJitter:  0.12,
		GlideFrames:   2,
		BreathProb:    0.05,
		NoiseLevel:    0.02,
		VibratoCents:  10,
	}
}

// PoorSinger returns a poor hummer ("for example, by one of the authors"):
// large per-note pitch errors and heavy timing variation. Matches the
// Table 3 cohort.
func PoorSinger() Singer {
	return Singer{
		Name:           "poor",
		PitchShiftStd:  5.0,
		PitchErrorStd:  1.1,
		TempoMin:       0.55,
		TempoMax:       1.8,
		TimingJitter:   0.5,
		GlideFrames:    5,
		BreathProb:     0.15,
		DropNoteProb:   0.08,
		RepeatNoteProb: 0.06,
		NoiseLevel:     0.06,
		VibratoCents:   25,
	}
}

// PerfectSinger returns a machine-accurate rendition (for tests and
// calibration): no pitch or timing error at nominal tempo.
func PerfectSinger() Singer {
	return Singer{Name: "perfect", TempoMin: 1, TempoMax: 1}
}

// RenderPitch produces the frame-level pitch contour of one performance of
// m: one (possibly fractional) MIDI pitch per 10 ms frame, with 0 marking
// breaths. Deterministic for a fixed source r.
func (s Singer) RenderPitch(m music.Melody, r *rand.Rand) ts.Series {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	shift := r.NormFloat64() * s.PitchShiftStd
	tempo := s.TempoMin
	if s.TempoMax > s.TempoMin {
		tempo += r.Float64() * (s.TempoMax - s.TempoMin)
	}
	if tempo <= 0 {
		tempo = 1
	}
	var out ts.Series
	prevPitch := 0.0
	for i, n := range m {
		if i > 0 && s.DropNoteProb > 0 && r.Float64() < s.DropNoteProb {
			continue
		}
		repeats := 1
		if s.RepeatNoteProb > 0 && r.Float64() < s.RepeatNoteProb {
			repeats = 2
		}
		target := float64(n.Pitch) + shift + r.NormFloat64()*s.PitchErrorStd
		frames := int(float64(n.Duration*FramesPerTick)/tempo + 0.5)
		if frames < 2 {
			frames = 2
		}
		if s.TimingJitter > 0 {
			j := 1 + (r.Float64()*2-1)*s.TimingJitter
			frames = int(float64(frames)*j + 0.5)
			if frames < 2 {
				frames = 2
			}
		}
		if i > 0 && s.BreathProb > 0 && r.Float64() < s.BreathProb {
			gap := 2 + r.Intn(6)
			for g := 0; g < gap; g++ {
				out = append(out, 0)
			}
			prevPitch = 0
		}
		glide := s.GlideFrames
		if i == 0 || prevPitch == 0 || glide >= frames {
			glide = 0
		}
		for rep := 0; rep < repeats; rep++ {
			for f := 0; f < frames; f++ {
				p := target
				if rep == 0 && f < glide {
					frac := float64(f+1) / float64(glide+1)
					p = prevPitch + (target-prevPitch)*frac
				}
				out = append(out, p)
			}
			if repeats > 1 && rep == 0 {
				// Tiny gap articulates the stutter.
				out = append(out, 0, 0)
			}
		}
		prevPitch = target
	}
	return out
}

// RenderAudio renders a performance to a PCM waveform at the default
// sample rate.
func (s Singer) RenderAudio(m music.Melody, r *rand.Rand) []float64 {
	contour := s.RenderPitch(m, r)
	return audio.Synthesize(contour, audio.SynthesisOptions{
		NoiseLevel:   s.NoiseLevel,
		VibratoCents: s.VibratoCents,
		VibratoHz:    5.5,
		Rand:         r,
	})
}

// Hum performs the full pipeline of Section 3.1: the performance is
// rendered to audio, the pitch tracker resolves each 10 ms frame to a
// pitch, and silent frames are dropped ("we simply ignore the silent
// information in the user input humming"). The result is the query time
// series handed to the search system.
func (s Singer) Hum(m music.Melody, r *rand.Rand) ts.Series {
	w := s.RenderAudio(m, r)
	return StripSilence(audio.TrackPitch(w, audio.DefaultSampleRate))
}

// StripSilence removes unvoiced (zero) frames from a pitch series.
func StripSilence(p ts.Series) ts.Series {
	out := make(ts.Series, 0, len(p))
	for _, v := range p {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}
