package hum

import (
	"math"
	"math/rand"
	"testing"

	"warping/internal/dtw"
	"warping/internal/music"
	"warping/internal/ts"
)

func TestPerfectSingerRendersExactContour(t *testing.T) {
	m := music.Melody{{Pitch: 60, Duration: 2}, {Pitch: 64, Duration: 1}}
	s := PerfectSinger()
	r := rand.New(rand.NewSource(1))
	got := s.RenderPitch(m, r)
	want := 2*FramesPerTick + 1*FramesPerTick
	if len(got) != want {
		t.Fatalf("frames = %d, want %d", len(got), want)
	}
	for i := 0; i < 2*FramesPerTick; i++ {
		if got[i] != 60 {
			t.Fatalf("frame %d = %v", i, got[i])
		}
	}
	for i := 2 * FramesPerTick; i < want; i++ {
		if got[i] != 64 {
			t.Fatalf("frame %d = %v", i, got[i])
		}
	}
}

func TestRenderPitchDeterministic(t *testing.T) {
	m := music.TwinkleTwinkle()
	s := PoorSinger()
	a := s.RenderPitch(m, rand.New(rand.NewSource(5)))
	b := s.RenderPitch(m, rand.New(rand.NewSource(5)))
	if !a.Equal(b) {
		t.Error("render not deterministic for fixed seed")
	}
	c := s.RenderPitch(m, rand.New(rand.NewSource(6)))
	if a.Equal(c) {
		t.Error("different seeds produced identical performances")
	}
}

func TestGoodSingerStaysNearMelody(t *testing.T) {
	m := music.OdeToJoy()
	s := GoodSinger()
	r := rand.New(rand.NewSource(2))
	contour := StripSilence(s.RenderPitch(m, r))
	// After removing the global shift, the contour should stay within a
	// semitone of the melody's normal form under DTW.
	ref := m.TimeSeries()
	const norm = 256
	d := dtw.NormalizedDistance(contour, ref, norm, 0.1)
	// Per-sample RMS deviation below ~1 semitone.
	if d/math.Sqrt(norm) > 1.0 {
		t.Errorf("good singer too far from melody: per-sample %v", d/math.Sqrt(norm))
	}
}

func TestPoorSingerWorseThanGood(t *testing.T) {
	m := music.AmazingGrace()
	ref := m.TimeSeries()
	const norm = 256
	avg := func(s Singer, seed int64) float64 {
		r := rand.New(rand.NewSource(seed))
		var sum float64
		for i := 0; i < 10; i++ {
			c := StripSilence(s.RenderPitch(m, r))
			sum += dtw.NormalizedDistance(c, ref, norm, 0.1)
		}
		return sum / 10
	}
	good := avg(GoodSinger(), 3)
	poor := avg(PoorSinger(), 3)
	if poor <= good {
		t.Errorf("poor singer (%v) not worse than good (%v)", poor, good)
	}
}

func TestTempoScalingBounds(t *testing.T) {
	m := music.Melody{{Pitch: 60, Duration: 8}}
	s := Singer{TempoMin: 0.5, TempoMax: 2}
	r := rand.New(rand.NewSource(4))
	nominal := 8 * FramesPerTick
	for i := 0; i < 50; i++ {
		got := len(s.RenderPitch(m, r))
		// Tempo factor 2 halves duration; 0.5 doubles it.
		if got < nominal/2-2 || got > nominal*2+2 {
			t.Fatalf("frames %d outside [%d, %d]", got, nominal/2, nominal*2)
		}
	}
}

func TestBreathsInsertSilence(t *testing.T) {
	m := music.GenerateMelody(rand.New(rand.NewSource(7)), 40)
	s := Singer{TempoMin: 1, TempoMax: 1, BreathProb: 1} // breathe before every note
	contour := s.RenderPitch(m, rand.New(rand.NewSource(8)))
	zeros := 0
	for _, v := range contour {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("no breaths inserted despite BreathProb 1")
	}
	if got := StripSilence(contour); len(got) != len(contour)-zeros {
		t.Error("StripSilence wrong")
	}
}

func TestHumFullPipeline(t *testing.T) {
	m := music.FrereJacques()
	s := GoodSinger()
	r := rand.New(rand.NewSource(9))
	q := s.Hum(m, r)
	if len(q) < 50 {
		t.Fatalf("hum produced only %d voiced frames", len(q))
	}
	// The tracked pitch series must be recognizably close to the melody:
	// compare normal forms under DTW.
	ref := m.TimeSeries()
	const norm = 256
	d := dtw.NormalizedDistance(q, ref, norm, 0.1)
	if d/math.Sqrt(norm) > 1.5 {
		t.Errorf("tracked hum too far from melody: %v per sample", d/math.Sqrt(norm))
	}
	// And closer to its own melody than to a very different one.
	other := ts.Series(music.Greensleeves().TimeSeries())
	dOther := dtw.NormalizedDistance(q, other, norm, 0.1)
	if d >= dOther {
		t.Errorf("hum closer to wrong melody: own %v vs other %v", d, dOther)
	}
}

func TestRenderPanicsOnInvalidMelody(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GoodSinger().RenderPitch(music.Melody{}, rand.New(rand.NewSource(1)))
}

func TestDropNotes(t *testing.T) {
	m := music.GenerateMelody(rand.New(rand.NewSource(20)), 50)
	s := Singer{TempoMin: 1, TempoMax: 1, DropNoteProb: 0.5}
	r := rand.New(rand.NewSource(21))
	contour := s.RenderPitch(m, r)
	full := PerfectSinger().RenderPitch(m, rand.New(rand.NewSource(22)))
	if len(contour) >= len(full) {
		t.Errorf("dropping notes did not shorten: %d vs %d", len(contour), len(full))
	}
	// The first note is never dropped: the contour starts at note 0's pitch.
	if contour[0] != float64(m[0].Pitch) {
		t.Errorf("first frame %v, want %d", contour[0], m[0].Pitch)
	}
}

func TestRepeatNotes(t *testing.T) {
	m := music.Melody{{Pitch: 60, Duration: 4}, {Pitch: 64, Duration: 4}}
	s := Singer{TempoMin: 1, TempoMax: 1, RepeatNoteProb: 1}
	contour := s.RenderPitch(m, rand.New(rand.NewSource(23)))
	// Every note doubles (plus 2-frame stutter gaps).
	want := 2*(4+4)*FramesPerTick + 2*2
	if len(contour) != want {
		t.Errorf("frames = %d, want %d", len(contour), want)
	}
	zeros := 0
	for _, v := range contour {
		if v == 0 {
			zeros++
		}
	}
	if zeros != 4 {
		t.Errorf("stutter gaps = %d frames, want 4", zeros)
	}
}
