package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warping/internal/ts"
)

// naiveDTW is a straightforward full-matrix reference implementation of the
// (optionally banded) squared DTW distance.
func naiveDTW(x, y ts.Series, k int) float64 {
	n, m := len(x), len(y)
	const inf = math.MaxFloat64
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if k >= 0 && abs(i-j) > k {
				continue
			}
			d := x[i] - y[j]
			d *= d
			switch {
			case i == 0 && j == 0:
				cost[i][j] = d
			case i == 0:
				if cost[i][j-1] < inf {
					cost[i][j] = d + cost[i][j-1]
				}
			case j == 0:
				if cost[i-1][j] < inf {
					cost[i][j] = d + cost[i-1][j]
				}
			default:
				best := cost[i-1][j-1]
				if cost[i-1][j] < best {
					best = cost[i-1][j]
				}
				if cost[i][j-1] < best {
					best = cost[i][j-1]
				}
				if best < inf {
					cost[i][j] = d + best
				}
			}
		}
	}
	return cost[n-1][m-1]
}

func randomSeries(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	for i := range s {
		s[i] = r.NormFloat64() * 5
	}
	return s
}

func randomWalk(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	for i := range s {
		v += r.NormFloat64()
		s[i] = v
	}
	return s
}

func TestDTWIdentical(t *testing.T) {
	x := ts.New(1, 2, 3, 4)
	if d := Distance(x, x); d != 0 {
		t.Errorf("Distance(x,x) = %v", d)
	}
}

func TestDTWKnownValue(t *testing.T) {
	// Classic example: x=[1,2,3], y=[1,2,2,3]. DTW can align the repeated
	// 2 with zero extra cost.
	x := ts.New(1, 2, 3)
	y := ts.New(1, 2, 2, 3)
	if d := SquaredDistance(x, y); d != 0 {
		t.Errorf("SquaredDistance = %v, want 0", d)
	}
	// Euclidean-style mismatch still costs.
	z := ts.New(1, 2, 4)
	if d := SquaredDistance(x, z); d != 1 {
		t.Errorf("SquaredDistance = %v, want 1", d)
	}
}

func TestDTWSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		x := randomSeries(r, 1+r.Intn(30))
		y := randomSeries(r, 1+r.Intn(30))
		if d1, d2 := SquaredDistance(x, y), SquaredDistance(y, x); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
	}
}

func TestDTWMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		x := randomSeries(r, 1+r.Intn(40))
		y := randomSeries(r, 1+r.Intn(40))
		got := SquaredDistance(x, y)
		want := naiveDTW(x, y, -1)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestBandedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(40)
		k := r.Intn(n + 2)
		x := randomSeries(r, n)
		y := randomSeries(r, n)
		got := SquaredBanded(x, y, k)
		want := naiveDTW(x, y, k)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d k=%d): got %v want %v", trial, n, k, got, want)
		}
	}
}

func TestBandedZeroIsEuclidean(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	x := randomSeries(r, 32)
	y := randomSeries(r, 32)
	if got, want := SquaredBanded(x, y, 0), ts.SquaredDist(x, y); math.Abs(got-want) > 1e-9 {
		t.Errorf("k=0: got %v want %v", got, want)
	}
}

func TestBandedFullIsUnconstrained(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	x := randomSeries(r, 24)
	y := randomSeries(r, 24)
	if got, want := SquaredBanded(x, y, 23), SquaredDistance(x, y); math.Abs(got-want) > 1e-9 {
		t.Errorf("full band: got %v want %v", got, want)
	}
}

// Property: the banded distance is non-increasing in k and always at least
// the unconstrained DTW distance.
func TestPropBandMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		x := randomSeries(r, n)
		y := randomSeries(r, n)
		full := SquaredDistance(x, y)
		last := math.MaxFloat64
		for k := 0; k < n; k++ {
			d := SquaredBanded(x, y, k)
			if d > last+1e-9 || d < full-1e-9 {
				return false
			}
			last = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBandRadius(t *testing.T) {
	cases := []struct {
		n     int
		delta float64
		want  int
	}{
		{100, 0.05, 2}, // (0.05*100-1)/2 = 2
		{100, 0.1, 4},
		{100, 0.2, 9},
		{128, 0.1, 5},
		{100, 0, 0},
		{100, -1, 0},
		{100, 1, 99},
		{100, 2, 99},
		{10, 0.01, 0},
	}
	for _, c := range cases {
		if got := BandRadius(c.n, c.delta); got != c.want {
			t.Errorf("BandRadius(%d, %v) = %d, want %d", c.n, c.delta, got, c.want)
		}
	}
}

func TestWarpingWidthRoundTrip(t *testing.T) {
	n := 256
	for _, delta := range []float64{0.02, 0.05, 0.1, 0.2} {
		k := BandRadius(n, delta)
		w := WarpingWidth(n, k)
		if w > delta+1e-12 {
			t.Errorf("delta=%v: width %v exceeds requested", delta, w)
		}
	}
}

func TestUTWUpsampleInvariance(t *testing.T) {
	x := ts.New(1, 5, 2, 7)
	for w := 1; w <= 5; w++ {
		if d := UTW(x, x.Upsample(w)); d > 1e-12 {
			t.Errorf("UTW(x, upsample %d) = %v", w, d)
		}
	}
}

func TestUTWEqualLengthIsScaledEuclidean(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	x := randomSeries(r, 16)
	y := randomSeries(r, 16)
	// For equal lengths, Definition 2 reduces to sum (x_i-y_i)^2 * n / n^2.
	want := ts.SquaredDist(x, y) / 16
	if got := SquaredUTW(x, y); math.Abs(got-want) > 1e-9 {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestUTWSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	x := randomSeries(r, 6)
	y := randomSeries(r, 15)
	if d1, d2 := SquaredUTW(x, y), SquaredUTW(y, x); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestNormalizedDistanceInvariance(t *testing.T) {
	// Shifting and uniformly scaling the tempo of one series must not
	// change the normalized distance.
	x := ts.New(60, 60, 62, 62, 64, 64, 64, 64, 62, 62, 60, 60, 60, 60, 60, 60)
	y := ts.New(60, 62, 64, 64, 65, 65, 64, 64, 62, 60, 62, 62, 60, 60, 60, 60)
	const m = 64
	base := NormalizedDistance(x, y, m, 0.1)
	warped := NormalizedDistance(x.Upsample(2).Shift(12), y, m, 0.1)
	if math.Abs(base-warped) > 1e-9 {
		t.Errorf("normalized distance not invariant: %v vs %v", base, warped)
	}
}

func BenchmarkDTWFull256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomWalk(r, 256)
	y := randomWalk(r, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredDistance(x, y)
	}
}

func BenchmarkDTWBanded256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomWalk(r, 256)
	y := randomWalk(r, 256)
	k := BandRadius(256, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredBanded(x, y, k)
	}
}

func TestDistanceMatrixInPackage(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	series := make([]ts.Series, 9)
	for i := range series {
		series[i] = randomWalk(r, 30)
	}
	m := DistanceMatrix(series, 3)
	for i := range series {
		for j := range series {
			want := Banded(series[i], series[j], 3)
			if math.Abs(m[i][j]-want) > 1e-9 {
				t.Fatalf("[%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
	if got := DistanceMatrix(series[:1], 3); len(got) != 1 || got[0][0] != 0 {
		t.Error("singleton matrix wrong")
	}
	if got := DistanceMatrix(nil, 3); len(got) != 0 {
		t.Error("empty matrix wrong")
	}
}

func TestUTWPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SquaredUTW(ts.Series{}, ts.New(1))
}

func TestBandedPanics(t *testing.T) {
	cases := []func(){
		func() { SquaredBanded(ts.Series{}, ts.Series{}, 1) },
		func() { SquaredBanded(ts.New(1), ts.New(1, 2), 1) },
		func() { SquaredBanded(ts.New(1), ts.New(2), -1) },
		func() { SquaredDistance(ts.Series{}, ts.New(1)) },
		func() { SquaredBandedWithin(ts.Series{}, ts.Series{}, 1, 5) },
		func() { SquaredBandedWithin(ts.New(1), ts.New(1, 2), 1, 5) },
		func() { SquaredBandedWithin(ts.New(1), ts.New(2), -1, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
