package dtw

import (
	"math"
	"testing"

	"warping/internal/ts"
)

// fuzzSeries decodes a byte string into two equal-length series, a band
// radius and a cutoff, rejecting degenerate inputs. Each byte becomes one
// sample in [-8, 8) so values stay well-conditioned.
func fuzzSeries(data []byte) (x, y ts.Series, k int, cutoff2 float64, ok bool) {
	if len(data) < 6 {
		return nil, nil, 0, 0, false
	}
	kByte := data[0]
	cutByte := data[1]
	payload := data[2:]
	n := len(payload) / 2
	if n < 1 || n > 96 {
		return nil, nil, 0, 0, false
	}
	x = make(ts.Series, n)
	y = make(ts.Series, n)
	for i := 0; i < n; i++ {
		x[i] = float64(payload[i])/16 - 8
		y[i] = float64(payload[n+i])/16 - 8
	}
	k = int(kByte) % (n + 2) // includes k = n-1 and beyond
	cutoff2 = float64(cutByte) * float64(cutByte) / 4
	return x, y, k, cutoff2, true
}

func addSeed(f *testing.F, k, cut byte, xs, ys []byte) {
	f.Helper()
	data := append([]byte{k, cut}, append(append([]byte{}, xs...), ys...)...)
	f.Add(data)
}

func fuzzSeeds(f *testing.F) {
	addSeed(f, 0, 10, []byte{1, 2, 3, 4}, []byte{4, 3, 2, 1})
	addSeed(f, 2, 0, []byte{128, 128, 128, 128, 128}, []byte{0, 64, 128, 192, 255})
	addSeed(f, 5, 100, []byte{10, 20, 30, 40, 50, 60, 70, 80}, []byte{80, 70, 60, 50, 40, 30, 20, 10})
	addSeed(f, 255, 255, []byte{1, 1}, []byte{255, 255})
	var long [64]byte
	for i := range long {
		long[i] = byte(i * 4)
	}
	addSeed(f, 7, 50, long[:], long[:])
}

// FuzzSquaredBandedWithin pins the early-abandoning DP against the plain
// SquaredBanded reference for any cutoff: a true return must carry the
// exact distance (within float tolerance) with exact <= cutoff2, and an
// abandoned return must only happen when the exact distance genuinely
// exceeds the cutoff (no false dismissals).
func FuzzSquaredBandedWithin(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		x, y, k, cutoff2, ok := fuzzSeries(data)
		if !ok {
			t.Skip()
		}
		exact := SquaredBanded(x, y, k)
		got, within := SquaredBandedWithin(x, y, k, cutoff2)
		tol := 1e-9 * (1 + exact)
		if within {
			if math.Abs(got-exact) > tol {
				t.Fatalf("within but got %v, exact %v (n=%d k=%d)", got, exact, len(x), k)
			}
			if exact > cutoff2+tol {
				t.Fatalf("within but exact %v > cutoff2 %v", exact, cutoff2)
			}
		} else {
			if exact <= cutoff2-tol {
				t.Fatalf("false dismissal: exact %v <= cutoff2 %v", exact, cutoff2)
			}
			if got <= cutoff2 {
				t.Fatalf("abandoned but returned %v <= cutoff2 %v", got, cutoff2)
			}
		}
		// The workspace form must agree bit-for-bit with the allocating
		// form, even when reused across inputs.
		var w Workspace
		w.SquaredBandedWithin(y, x, k, cutoff2) // dirty the buffers
		got2, within2 := w.SquaredBandedWithin(x, y, k, cutoff2)
		if within2 != within || got2 != got {
			t.Fatalf("workspace (%v,%v) != allocating (%v,%v)", got2, within2, got, within)
		}
	})
}

// FuzzVerificationCascade checks the whole bound cascade on arbitrary
// series: every lower bound added by the PR (forward LB_Keogh with early
// abandoning, reversed-role LB_Keogh) stays below the exact banded DTW
// distance, so no stage can ever dismiss a true match.
func FuzzVerificationCascade(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		x, q, k, _, ok := fuzzSeries(data)
		if !ok {
			t.Skip()
		}
		if k > len(x)-1 {
			k = len(x) - 1
		}
		exact := SquaredBanded(x, q, k)
		tol := 1e-9 * (1 + exact)

		env := NewEnvelope(q, k)
		forward, ok2 := SquaredDistToEnvelopeWithin(x, env, math.MaxFloat64)
		if !ok2 {
			t.Fatal("infinite cutoff abandoned")
		}
		if forward > exact+tol {
			t.Fatalf("forward LB %v > exact %v (n=%d k=%d)", forward, exact, len(x), k)
		}
		var w Workspace
		reversed, _ := w.SquaredReversedLBKeoghWithin(x, q, k, math.MaxFloat64)
		if reversed > exact+tol {
			t.Fatalf("reversed LB %v > exact %v (n=%d k=%d)", reversed, exact, len(x), k)
		}
		// Cutoff at the exact distance: no stage may dismiss the match.
		if _, ok := SquaredDistToEnvelopeWithin(x, env, exact+tol); !ok {
			t.Fatal("forward LB dismissed a true match")
		}
		if _, ok := w.SquaredReversedLBKeoghWithin(x, q, k, exact+tol); !ok {
			t.Fatal("reversed LB dismissed a true match")
		}
		if _, ok := w.SquaredBandedWithin(x, q, k, exact+tol); !ok {
			t.Fatal("exact stage dismissed a true match")
		}
	})
}

// FuzzLBImprovedChain pins the two-pass bound on arbitrary series:
// LB_Keogh <= LB_Improved <= banded DTW, and LB_Improved may never dismiss
// a true match — the exactness guarantee the cascade rests on.
func FuzzLBImprovedChain(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		x, q, k, _, ok := fuzzSeries(data)
		if !ok {
			t.Skip()
		}
		if k > len(x)-1 {
			k = len(x) - 1
		}
		exact := SquaredBanded(x, q, k)
		tol := 1e-9 * (1 + exact)

		env := NewEnvelope(q, k)
		forward, ok2 := SquaredDistToEnvelopeWithin(x, env, math.MaxFloat64)
		if !ok2 {
			t.Fatal("infinite cutoff abandoned")
		}
		var w Workspace
		improved, ok3 := w.SquaredLBImprovedWithin(q, x, env, k, forward, math.MaxFloat64)
		if !ok3 {
			t.Fatal("infinite cutoff abandoned")
		}
		if improved < forward {
			t.Fatalf("LB_Improved %v < LB_Keogh %v (n=%d k=%d)", improved, forward, len(x), k)
		}
		if improved > exact+tol {
			t.Fatalf("LB_Improved %v > exact %v (n=%d k=%d)", improved, exact, len(x), k)
		}
		// Cutoff at the exact distance: the bound may not dismiss the match,
		// even with dirty workspace buffers from the earlier call.
		if _, ok := w.SquaredLBImprovedWithin(q, x, env, k, forward, exact+tol); !ok {
			t.Fatal("LB_Improved dismissed a true match")
		}
	})
}

// FuzzWarpingWidthBandRadius checks the conversion guards: any (n, k,
// delta) must produce finite, in-range values, and the round trip must
// obey the documented clamp.
func FuzzWarpingWidthBandRadius(f *testing.F) {
	f.Add(int64(0), int64(0), float64(0))
	f.Add(int64(0), int64(5), float64(1))
	f.Add(int64(1), int64(0), float64(0.5))
	f.Add(int64(128), int64(6), float64(0.1))
	f.Add(int64(-4), int64(-4), float64(-1))
	f.Fuzz(func(t *testing.T, n, k int64, delta float64) {
		if n > 1<<20 || n < -1<<20 || k > 1<<20 || k < -1<<20 {
			t.Skip()
		}
		r := BandRadius(int(n), delta)
		if r < 0 {
			t.Fatalf("BandRadius(%d, %v) = %d < 0", n, delta, r)
		}
		if n > 0 && r > int(n)-1 {
			t.Fatalf("BandRadius(%d, %v) = %d > n-1", n, delta, r)
		}
		w := WarpingWidth(int(n), int(k))
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			t.Fatalf("WarpingWidth(%d, %d) = %v", n, k, w)
		}
	})
}
