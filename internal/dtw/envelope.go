package dtw

import (
	"fmt"
	"math"

	"warping/internal/ts"
)

// Envelope is the k-envelope of a time series (Definition 6): Lower[i] and
// Upper[i] are the minimum and maximum of the series over the window
// [i-k, i+k]. Any series that stays within a warping band of radius k of the
// original is pointwise contained in its k-envelope.
type Envelope struct {
	Lower ts.Series
	Upper ts.Series
}

// NewEnvelope computes the k-envelope of x in O(n).
func NewEnvelope(x ts.Series, k int) Envelope {
	return Envelope{
		Lower: ts.SlidingMin(x, k),
		Upper: ts.SlidingMax(x, k),
	}
}

// PointEnvelope returns the degenerate envelope whose lower and upper bounds
// both equal x (the k = 0 envelope). Transforming a point envelope is the
// same as transforming the series.
func PointEnvelope(x ts.Series) Envelope {
	return Envelope{Lower: x.Clone(), Upper: x.Clone()}
}

// Len returns the envelope length.
func (e Envelope) Len() int { return len(e.Lower) }

// Valid reports whether the envelope is well-formed: equal lengths and
// Lower <= Upper pointwise.
func (e Envelope) Valid() bool {
	if len(e.Lower) != len(e.Upper) {
		return false
	}
	for i := range e.Lower {
		if e.Lower[i] > e.Upper[i] {
			return false
		}
	}
	return true
}

// Contains reports whether x lies pointwise within the envelope, allowing a
// tolerance tol for floating-point slack.
func (e Envelope) Contains(x ts.Series, tol float64) bool {
	if len(x) != len(e.Lower) {
		return false
	}
	for i, v := range x {
		if v < e.Lower[i]-tol || v > e.Upper[i]+tol {
			return false
		}
	}
	return true
}

// Shift returns the envelope translated by delta.
func (e Envelope) Shift(delta float64) Envelope {
	return Envelope{Lower: e.Lower.Shift(delta), Upper: e.Upper.Shift(delta)}
}

// SquaredDistToEnvelope returns the squared Euclidean distance between a
// series and an envelope (Definition 7): the distance to the nearest series
// contained in the envelope, which decomposes pointwise.
func SquaredDistToEnvelope(x ts.Series, e Envelope) float64 {
	if len(x) != e.Len() {
		panic(fmt.Sprintf("dtw: series length %d vs envelope length %d", len(x), e.Len()))
	}
	// Route through the blocked kernel with an infinite cutoff: the
	// abandon branch never fires and the full sum comes back.
	d, _ := SquaredDistToEnvelopeWithin(x, e, math.Inf(1))
	return d
}

// DistToEnvelope returns the Euclidean distance between a series and an
// envelope.
func DistToEnvelope(x ts.Series, e Envelope) float64 {
	return math.Sqrt(SquaredDistToEnvelope(x, e))
}

// LBKeogh returns the LB_Keogh lower bound on the banded DTW distance
// between x and y with band radius k (Lemma 2): the distance from x to the
// k-envelope of y. It never exceeds Banded(x, y, k).
func LBKeogh(x, y ts.Series, k int) float64 {
	return DistToEnvelope(x, NewEnvelope(y, k))
}

// SquaredLBKeogh is the squared form of LBKeogh.
func SquaredLBKeogh(x, y ts.Series, k int) float64 {
	return SquaredDistToEnvelope(x, NewEnvelope(y, k))
}

// GlobalEnvelope returns the whole-series min/max envelope used by the
// global lower-bounding technique of Yi et al.: a constant envelope with the
// series minimum and maximum at every position. It is the k >= n-1 envelope
// and yields the loosest (2-value) bound the paper compares against.
func GlobalEnvelope(x ts.Series) Envelope {
	mn, mx := x.Min(), x.Max()
	n := len(x)
	return Envelope{Lower: ts.Constant(n, mn), Upper: ts.Constant(n, mx)}
}
