package dtw

import (
	"runtime"
	"sync"

	"warping/internal/ts"
)

// DistanceMatrix computes the symmetric pairwise banded DTW distance matrix
// of the series (all equal length), parallelized across CPUs. Entry [i][j]
// is Banded(series[i], series[j], k); the diagonal is zero. This is the
// building block for DTW-based clustering and batch analyses.
func DistanceMatrix(series []ts.Series, k int) [][]float64 {
	n := len(series)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	if n < 2 {
		return out
	}
	// Flatten the upper triangle into a work list and shard it.
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for _, p := range pairs[lo:hi] {
				d := Banded(series[p.i], series[p.j], k)
				out[p.i][p.j] = d
				out[p.j][p.i] = d
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
