package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warping/internal/ts"
)

func TestWithinExactWhenUnderCutoff(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(50)
		k := r.Intn(n)
		x := randomWalk(r, n)
		y := randomWalk(r, n)
		exact := SquaredBanded(x, y, k)
		got, ok := SquaredBandedWithin(x, y, k, exact*1.01+1)
		if !ok {
			t.Fatalf("trial %d: abandoned despite sufficient cutoff", trial)
		}
		if math.Abs(got-exact) > 1e-9*(1+exact) {
			t.Fatalf("trial %d: got %v want %v", trial, got, exact)
		}
	}
}

func TestWithinAbandonsWhenOverCutoff(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(50)
		k := r.Intn(n)
		x := randomWalk(r, n)
		y := randomWalk(r, n).Shift(100) // guaranteed far apart
		exact := SquaredBanded(x, y, k)
		cutoff := exact / 10
		got, ok := SquaredBandedWithin(x, y, k, cutoff)
		if ok {
			t.Fatalf("trial %d: did not abandon (exact %v, cutoff %v)", trial, exact, cutoff)
		}
		if got <= cutoff {
			t.Fatalf("trial %d: abandon value %v not above cutoff %v", trial, got, cutoff)
		}
	}
}

// Property: the (value, ok) contract holds for arbitrary cutoffs — ok iff
// exact <= cutoff, and when ok the value is exact.
func TestPropWithinContract(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		k := r.Intn(n)
		x := randomWalk(r, n)
		y := randomWalk(r, n)
		exact := SquaredBanded(x, y, k)
		cutoff := exact * (r.Float64() * 2) // sometimes below, sometimes above
		got, ok := SquaredBandedWithin(x, y, k, cutoff)
		if ok != (exact <= cutoff+1e-12) {
			// Tolerate the exact-boundary case.
			if math.Abs(exact-cutoff) > 1e-9 {
				return false
			}
		}
		if ok && math.Abs(got-exact) > 1e-9*(1+exact) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWithinZeroBand(t *testing.T) {
	x := ts.New(1, 2, 3)
	y := ts.New(1, 2, 5)
	if d, ok := SquaredBandedWithin(x, y, 0, 10); !ok || d != 4 {
		t.Errorf("got %v %v", d, ok)
	}
	if _, ok := SquaredBandedWithin(x, y, 0, 3); ok {
		t.Error("should abandon at cutoff 3")
	}
}

func TestWithinNegativeCutoff(t *testing.T) {
	x := ts.New(1, 2)
	if _, ok := SquaredBandedWithin(x, x, 1, -1); ok {
		t.Error("negative cutoff should never succeed")
	}
}

func BenchmarkBandedVsWithin(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomWalk(r, 256)
	y := randomWalk(r, 256).Shift(50) // far apart: abandon helps
	k := BandRadius(256, 0.1)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SquaredBanded(x, y, k)
		}
	})
	b.Run("abandon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SquaredBandedWithin(x, y, k, 100)
		}
	})
}
