package dtw

import (
	"fmt"
	"math"

	"warping/internal/ts"
)

// PathPoint is one alignment step of a warping path: element I of x is
// matched with element J of y (0-based).
type PathPoint struct {
	I, J int
}

// Path is a full warping path from (0,0) to (n-1, m-1).
type Path []PathPoint

// Valid reports whether the path satisfies the monotonicity and continuity
// constraints of the paper for series of lengths n and m: starts at (0,0),
// ends at (n-1,m-1), and each step advances each coordinate by 0 or 1 (not
// both 0).
func (p Path) Valid(n, m int) bool {
	if len(p) == 0 {
		return false
	}
	if p[0] != (PathPoint{0, 0}) || p[len(p)-1] != (PathPoint{n - 1, m - 1}) {
		return false
	}
	for t := 1; t < len(p); t++ {
		di := p[t].I - p[t-1].I
		dj := p[t].J - p[t-1].J
		if di < 0 || di > 1 || dj < 0 || dj > 1 || (di == 0 && dj == 0) {
			return false
		}
	}
	return true
}

// Cost returns the squared cost of aligning x and y along the path.
func (p Path) Cost(x, y ts.Series) float64 {
	var sum float64
	for _, pt := range p {
		d := x[pt.I] - y[pt.J]
		sum += d * d
	}
	return sum
}

// Align computes the unconstrained DTW alignment between x and y and returns
// both the squared distance and the optimal warping path. It uses O(n*m)
// memory; use SquaredDistance when the path is not needed.
func Align(x, y ts.Series) (float64, Path) {
	return alignBanded(x, y, -1)
}

// AlignBanded computes the k-Local DTW alignment (equal lengths) and returns
// the squared distance and path.
func AlignBanded(x, y ts.Series, k int) (float64, Path) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dtw: AlignBanded needs equal lengths, got %d and %d", len(x), len(y)))
	}
	if k < 0 {
		panic("dtw: negative band radius")
	}
	return alignBanded(x, y, k)
}

// alignBanded runs the full-matrix DP. k < 0 means unconstrained.
func alignBanded(x, y ts.Series, k int) (float64, Path) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		panic("dtw: empty series")
	}
	const inf = math.MaxFloat64
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	inBand := func(i, j int) bool {
		return k < 0 || abs(i-j) <= k
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if !inBand(i, j) {
				continue
			}
			d := x[i] - y[j]
			d *= d
			switch {
			case i == 0 && j == 0:
				cost[i][j] = d
			case i == 0:
				if cost[i][j-1] < inf {
					cost[i][j] = d + cost[i][j-1]
				}
			case j == 0:
				if cost[i-1][j] < inf {
					cost[i][j] = d + cost[i-1][j]
				}
			default:
				best := cost[i-1][j-1]
				if cost[i-1][j] < best {
					best = cost[i-1][j]
				}
				if cost[i][j-1] < best {
					best = cost[i][j-1]
				}
				if best < inf {
					cost[i][j] = d + best
				}
			}
		}
	}
	// Backtrack.
	path := Path{{n - 1, m - 1}}
	i, j := n-1, m-1
	for i > 0 || j > 0 {
		bi, bj := i, j
		best := inf
		if i > 0 && j > 0 && cost[i-1][j-1] < best {
			best, bi, bj = cost[i-1][j-1], i-1, j-1
		}
		if i > 0 && cost[i-1][j] < best {
			best, bi, bj = cost[i-1][j], i-1, j
		}
		if j > 0 && cost[i][j-1] < best {
			best, bi, bj = cost[i][j-1], i, j-1
		}
		_ = best
		i, j = bi, bj
		path = append(path, PathPoint{i, j})
	}
	// Reverse in place.
	for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
		path[a], path[b] = path[b], path[a]
	}
	return cost[n-1][m-1], path
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
