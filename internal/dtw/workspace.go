package dtw

import (
	"math"

	"warping/internal/ts"
)

// Workspace holds the scratch buffers of the candidate-verification hot
// path: the two dynamic-programming rows of banded DTW, the envelope
// buffers of the reversed LB_Keogh pass, and the monotonic-deque scratch of
// the sliding-window extremes. A zero Workspace is ready to use; buffers
// grow on demand and are retained, so steady-state verification performs no
// heap allocations.
//
// A Workspace must not be shared between goroutines. Callers that verify
// candidates concurrently should give each worker its own (the index
// package keeps a sync.Pool of them).
type Workspace struct {
	prev, curr []float64
	lo, up     ts.Series
	win        ts.WindowScratch
}

// NewWorkspace returns an empty workspace. Equivalent to new(Workspace);
// provided for discoverability.
func NewWorkspace() *Workspace { return new(Workspace) }

// rows returns the two DP rows, grown to width and cleared by the caller.
func (w *Workspace) rows(width int) ([]float64, []float64) {
	if cap(w.prev) < width {
		w.prev = make([]float64, width)
		w.curr = make([]float64, width)
	}
	return w.prev[:width], w.curr[:width]
}

// EnvelopeInto computes the k-envelope of x into the workspace's envelope
// buffers and returns it. The envelope aliases workspace memory: it is
// valid until the next EnvelopeInto or SquaredReversedLBKeoghWithin call on
// the same workspace.
func (w *Workspace) EnvelopeInto(x ts.Series, k int) Envelope {
	w.lo = ts.SlidingMinInto(w.lo, x, k, &w.win)
	w.up = ts.SlidingMaxInto(w.up, x, k, &w.win)
	return Envelope{Lower: w.lo, Upper: w.up}
}

// SquaredDistToEnvelopeWithin is SquaredDistToEnvelope with early
// abandoning: it returns (d, true) with the exact squared distance when
// d <= cutoff2, and (v, false) with some partial sum v > cutoff2 as soon as
// the accumulating distance exceeds the cutoff. A negative cutoff2 abandons
// immediately.
func SquaredDistToEnvelopeWithin(x ts.Series, e Envelope, cutoff2 float64) (float64, bool) {
	if len(x) != e.Len() {
		panic("dtw: series length vs envelope length mismatch")
	}
	if cutoff2 < 0 {
		return cutoff2 + 1, false
	}
	var sum float64
	lo, up := e.Lower[:len(x)], e.Upper[:len(x)] // bounds-check elimination
	for i, v := range x {
		switch {
		case v > up[i]:
			d := v - up[i]
			sum += d * d
		case v < lo[i]:
			d := lo[i] - v
			sum += d * d
		default:
			continue
		}
		if sum > cutoff2 {
			return sum, false
		}
	}
	return sum, true
}

// SquaredReversedLBKeoghWithin computes the reversed-role LB_Keogh bound
// with early abandoning: the squared distance from the query q to the
// k-envelope of the candidate x. By the symmetry of Lemma 2 this is a lower
// bound of the banded DTW distance just like the usual query-envelope
// orientation, and the two bounds prune different candidates — running both
// is the two-pass scheme of Lemire's "Faster Retrieval with a Two-Pass
// Dynamic-Time-Warping Lower Bound". The candidate envelope is built in the
// workspace buffers (O(n), allocation-free in steady state).
func (w *Workspace) SquaredReversedLBKeoghWithin(q, x ts.Series, k int, cutoff2 float64) (float64, bool) {
	return SquaredDistToEnvelopeWithin(q, w.EnvelopeInto(x, k), cutoff2)
}

// SquaredBandedWithin is the package-level SquaredBandedWithin computed in
// the workspace's DP rows: identical results, no per-call allocation.
func (w *Workspace) SquaredBandedWithin(x, y ts.Series, k int, cutoff2 float64) (float64, bool) {
	n := len(x)
	if n == 0 {
		panic("dtw: empty series")
	}
	if len(y) != n {
		panic("dtw: SquaredBandedWithin needs equal lengths")
	}
	if k < 0 {
		panic("dtw: negative band radius")
	}
	if cutoff2 < 0 {
		return cutoff2 + 1, false
	}
	if k == 0 {
		// Euclidean with early abandon.
		var sum float64
		for i := range x {
			d := x[i] - y[i]
			sum += d * d
			if sum > cutoff2 {
				return sum, false
			}
		}
		return sum, true
	}
	const inf = math.MaxFloat64
	width := 2*k + 1
	prev, curr := w.rows(width)

	// Row i=1 is a running sum: dp(1,j) = dp(1,j-1) + d². Cell (1,1) sits
	// at slot k; the row minimum is that first cell since the sum only
	// grows. No other row reads outside the band cells written here: for a
	// guarded read from row i-1, the source column provably lies inside
	// [max(1,i-1-k), min(n,i-1+k)], so no clearing pass is needed between
	// rows (and dirty buffers from earlier calls are never observed).
	hi := 1 + k
	if hi > n {
		hi = n
	}
	run := 0.0
	for j := 1; j <= hi; j++ {
		d := x[0] - y[j-1]
		run += d * d
		curr[j-1+k] = run
	}
	if curr[k] > cutoff2 {
		return curr[k], false
	}
	prev, curr = curr, prev

	k2 := 2 * k
	for i := 2; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi = i + k
		if hi > n {
			hi = n
		}
		xi := x[i-1]
		rowMin := inf
		s := lo - i + k
		for j := lo; j <= hi; j, s = j+1, s+1 {
			// best = min of diagonal dp(i-1,j-1), above dp(i-1,j), left
			// dp(i,j-1), each guarded by band membership in its row.
			var best float64
			if j > 1 {
				best = prev[s] // diagonal: always in row i-1's band
				if s < k2 {
					if v := prev[s+1]; v < best {
						best = v
					}
				}
			} else {
				best = prev[s+1] // j==1: only the above neighbor exists
			}
			if j > lo {
				if v := curr[s-1]; v < best {
					best = v
				}
			}
			if best == inf {
				curr[s] = inf
				continue
			}
			d := xi - y[j-1]
			c := d*d + best
			curr[s] = c
			if c < rowMin {
				rowMin = c
			}
		}
		if rowMin > cutoff2 {
			return rowMin, false
		}
		prev, curr = curr, prev
	}
	d := prev[k]
	return d, d <= cutoff2
}

// SquaredBandedExact returns the exact squared banded DTW distance using
// the workspace buffers (no cutoff, no allocation).
func (w *Workspace) SquaredBandedExact(x, y ts.Series, k int) float64 {
	d, _ := w.SquaredBandedWithin(x, y, k, math.MaxFloat64)
	return d
}
