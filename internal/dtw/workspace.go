package dtw

import (
	"math"

	"warping/internal/ts"
)

// Workspace holds the scratch buffers of the candidate-verification hot
// path: the two dynamic-programming rows of banded DTW, the envelope
// buffers of the reversed LB_Keogh pass, and the monotonic-deque scratch of
// the sliding-window extremes. A zero Workspace is ready to use; buffers
// grow on demand and are retained, so steady-state verification performs no
// heap allocations.
//
// A Workspace must not be shared between goroutines. Callers that verify
// candidates concurrently should give each worker its own (the index
// package keeps a sync.Pool of them).
type Workspace struct {
	prev, curr []float64
	lo, up     ts.Series
	proj       ts.Series
	win        ts.WindowScratch
}

// NewWorkspace returns an empty workspace. Equivalent to new(Workspace);
// provided for discoverability.
func NewWorkspace() *Workspace { return new(Workspace) }

// rows returns the two DP rows, grown to width and cleared by the caller.
func (w *Workspace) rows(width int) ([]float64, []float64) {
	if cap(w.prev) < width {
		w.prev = make([]float64, width)
		w.curr = make([]float64, width)
	}
	return w.prev[:width], w.curr[:width]
}

// EnvelopeInto computes the k-envelope of x into the workspace's envelope
// buffers and returns it. The envelope aliases workspace memory: it is
// valid until the next EnvelopeInto, SquaredReversedLBKeoghWithin or
// SquaredLBImprovedWithin call on the same workspace.
func (w *Workspace) EnvelopeInto(x ts.Series, k int) Envelope {
	w.lo = ts.SlidingMinInto(w.lo, x, k, &w.win)
	w.up = ts.SlidingMaxInto(w.up, x, k, &w.win)
	return Envelope{Lower: w.lo, Upper: w.up}
}

// lbBlockLen is the blocking width of the LB_Keogh kernel: long enough to
// amortize the early-abandon branch and keep four independent accumulator
// chains busy, short enough that an abandoning candidate wastes at most
// one block of work.
const lbBlockLen = 16

// lbBlock16Go accumulates one 16-wide block of the envelope distance in
// pure Go: the portable implementation of lbBlock16 and the reference the
// assembly kernel is tested against. The fixed-size array pointers
// eliminate every bounds check inside the loop, and the four accumulator
// chains break the floating-point add dependency so the loop is
// throughput-bound instead of latency-bound. The compares stay branchy on
// purpose: envelope deviations are locally correlated (a candidate below
// the envelope tends to stay below for a stretch), so the branches predict
// well — measured faster than a branchless form built on the builtin
// float max, whose NaN/±0 semantics cost more than the rare misprediction
// saves. (The amd64 assembly version is branchless via MAXPD, which has
// none of that overhead.)
func lbBlock16Go(x, lo, up *[lbBlockLen]float64) float64 {
	var s0, s1, s2, s3 float64
	for j := 0; j < lbBlockLen; j += 4 {
		v0, v1, v2, v3 := x[j], x[j+1], x[j+2], x[j+3]
		d0 := v0 - up[j]
		if t := lo[j] - v0; t > d0 {
			d0 = t
		}
		d1 := v1 - up[j+1]
		if t := lo[j+1] - v1; t > d1 {
			d1 = t
		}
		d2 := v2 - up[j+2]
		if t := lo[j+2] - v2; t > d2 {
			d2 = t
		}
		d3 := v3 - up[j+3]
		if t := lo[j+3] - v3; t > d3 {
			d3 = t
		}
		if d0 > 0 {
			s0 += d0 * d0
		}
		if d1 > 0 {
			s1 += d1 * d1
		}
		if d2 > 0 {
			s2 += d2 * d2
		}
		if d3 > 0 {
			s3 += d3 * d3
		}
	}
	return (s0 + s1) + (s2 + s3)
}

// SquaredDistToEnvelopeWithin is SquaredDistToEnvelope with early
// abandoning: it returns (d, true) with the exact squared distance when
// d <= cutoff2, and (v, false) with some partial sum v > cutoff2 as soon as
// the accumulating distance exceeds the cutoff. A negative cutoff2 abandons
// immediately.
//
// The distance runs in 16-wide blocks (see lbBlock16; SSE2 assembly on
// amd64) with the abandon check hoisted to block granularity, plus a
// scalar tail with per-element abandoning for the last n mod 16 elements.
// With the block kernel at well under a nanosecond per element, block
// granularity beats any scalar prologue even for candidates that abandon
// within the first few elements — an abandoning candidate wastes at most
// one block of work. The abandon decision and the ok==true value are
// unchanged by the blocking; only the partial sum returned on a
// block-granular abandon may overshoot the cutoff by up to one block's
// contribution.
func SquaredDistToEnvelopeWithin(x ts.Series, e Envelope, cutoff2 float64) (float64, bool) {
	if len(x) != e.Len() {
		panic("dtw: series length vs envelope length mismatch")
	}
	if cutoff2 < 0 {
		return cutoff2 + 1, false
	}
	n := len(x)
	lo, up := e.Lower[:n], e.Upper[:n] // bounds-check elimination
	var sum float64
	i := 0
	for ; i+lbBlockLen <= n; i += lbBlockLen {
		sum += lbBlock16(
			(*[lbBlockLen]float64)(x[i:]),
			(*[lbBlockLen]float64)(lo[i:]),
			(*[lbBlockLen]float64)(up[i:]),
		)
		if sum > cutoff2 {
			return sum, false
		}
	}
	for ; i < n; i++ {
		v := x[i]
		switch {
		case v > up[i]:
			d := v - up[i]
			sum += d * d
		case v < lo[i]:
			d := lo[i] - v
			sum += d * d
		default:
			continue
		}
		if sum > cutoff2 {
			return sum, false
		}
	}
	return sum, true
}

// projBlock16Go clamps one 16-wide block of a candidate into an envelope in
// pure Go: the portable implementation of projBlock16 and the reference the
// assembly kernel is tested against. The fixed-size array pointers
// eliminate every bounds check; the branchy clamp predicts well for the
// same reason lbBlock16Go's compares do — envelope deviations are locally
// correlated. (The amd64 assembly version is branchless via MINPD/MAXPD.)
func projBlock16Go(dst, x, lo, up *[lbBlockLen]float64) {
	for j := 0; j < lbBlockLen; j++ {
		v := x[j]
		if v > up[j] {
			v = up[j]
		} else if v < lo[j] {
			v = lo[j]
		}
		dst[j] = v
	}
}

// ProjectOntoEnvelopeInto writes the elementwise projection of x onto the
// envelope e — each sample clamped into [e.Lower[i], e.Upper[i]] — into
// dst, growing it as needed, and returns it. This is the h(x) of Lemire's
// LB_Improved: the closest series to x that fits inside the envelope. Runs
// in 16-wide blocks (see projBlock16; SSE2 assembly on amd64) plus a scalar
// tail.
func ProjectOntoEnvelopeInto(dst, x ts.Series, e Envelope) ts.Series {
	if len(x) != e.Len() {
		panic("dtw: series length vs envelope length mismatch")
	}
	n := len(x)
	if cap(dst) < n {
		dst = make(ts.Series, n)
	}
	dst = dst[:n]
	lo, up := e.Lower[:n], e.Upper[:n] // bounds-check elimination
	i := 0
	for ; i+lbBlockLen <= n; i += lbBlockLen {
		projBlock16(
			(*[lbBlockLen]float64)(dst[i:]),
			(*[lbBlockLen]float64)(x[i:]),
			(*[lbBlockLen]float64)(lo[i:]),
			(*[lbBlockLen]float64)(up[i:]),
		)
	}
	for ; i < n; i++ {
		v := x[i]
		if v > up[i] {
			v = up[i]
		} else if v < lo[i] {
			v = lo[i]
		}
		dst[i] = v
	}
	return dst
}

// SquaredLBImprovedWithin completes Lemire's LB_Improved bound given the
// already-computed forward term: fwd must be the squared LB_Keogh distance
// from candidate x to the query envelope env (with fwd <= cutoff2). The
// second pass projects x onto env, builds the k-envelope of the projection
// in the workspace buffers, and accumulates the squared distance from q to
// that envelope with early abandoning against the remaining budget
// cutoff2-fwd. Since every warping path from q to x is at least as long as
// the forward deviation plus the deviation of q from the projected
// candidate's envelope (Lemire, "Faster Retrieval with a Two-Pass
// Dynamic-Time-Warping Lower Bound"), the sum lower-bounds the squared
// banded DTW distance; it dominates LB_Keogh because the second term is
// nonnegative. Returns (d, true) with the exact bound when d <= cutoff2,
// and (v, false) with some v > cutoff2 on abandon. The projection and
// envelope alias workspace memory.
func (w *Workspace) SquaredLBImprovedWithin(q, x ts.Series, env Envelope, k int, fwd, cutoff2 float64) (float64, bool) {
	w.proj = ProjectOntoEnvelopeInto(w.proj, x, env)
	res, ok := SquaredDistToEnvelopeWithin(q, w.EnvelopeInto(w.proj, k), cutoff2-fwd)
	return fwd + res, ok
}

// SquaredReversedLBKeoghWithin computes the reversed-role LB_Keogh bound
// with early abandoning: the squared distance from the query q to the
// k-envelope of the candidate x. By the symmetry of Lemma 2 this is a lower
// bound of the banded DTW distance just like the usual query-envelope
// orientation, and the two bounds prune different candidates — running both
// is the two-pass scheme of Lemire's "Faster Retrieval with a Two-Pass
// Dynamic-Time-Warping Lower Bound". The candidate envelope is built in the
// workspace buffers (O(n), allocation-free in steady state).
func (w *Workspace) SquaredReversedLBKeoghWithin(q, x ts.Series, k int, cutoff2 float64) (float64, bool) {
	return SquaredDistToEnvelopeWithin(q, w.EnvelopeInto(x, k), cutoff2)
}

// SquaredBandedWithin is the package-level SquaredBandedWithin computed in
// the workspace's DP rows: identical results, no per-call allocation.
func (w *Workspace) SquaredBandedWithin(x, y ts.Series, k int, cutoff2 float64) (float64, bool) {
	n := len(x)
	if n == 0 {
		panic("dtw: empty series")
	}
	if len(y) != n {
		panic("dtw: SquaredBandedWithin needs equal lengths")
	}
	if k < 0 {
		panic("dtw: negative band radius")
	}
	if cutoff2 < 0 {
		return cutoff2 + 1, false
	}
	if k == 0 {
		// Euclidean with early abandon.
		var sum float64
		for i := range x {
			d := x[i] - y[i]
			sum += d * d
			if sum > cutoff2 {
				return sum, false
			}
		}
		return sum, true
	}
	width := 2*k + 1
	prev, curr := w.rows(width)

	// Row i=1 is a running sum: dp(1,j) = dp(1,j-1) + d². Cell (1,1) sits
	// at slot k; the row minimum is that first cell since the sum only
	// grows. No other row reads outside the band cells written here: for a
	// guarded read from row i-1, the source column provably lies inside
	// [max(1,i-1-k), min(n,i-1+k)], so no clearing pass is needed between
	// rows (and dirty buffers from earlier calls are never observed).
	hi := 1 + k
	if hi > n {
		hi = n
	}
	run := 0.0
	for j := 1; j <= hi; j++ {
		d := x[0] - y[j-1]
		run += d * d
		curr[j-1+k] = run
	}
	if curr[k] > cutoff2 {
		return curr[k], false
	}
	prev, curr = curr, prev

	// Band-boundary cells are peeled out of the inner loop: the first cell
	// of a row has no left neighbor (and at j==1 no diagonal either), the
	// last cell at slot 2k has no "above" neighbor, and every interior cell
	// has all three — min(diagonal prev[s], above prev[s+1], left
	// curr[s-1]) with no band-membership branches. Every guarded read in
	// the seed formulation hit a written, finite cell, so no infinity
	// checks are needed anywhere.
	k2 := 2 * k
	for i := 2; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi = i + k
		if hi > n {
			hi = n
		}
		xi := x[i-1]
		s := lo - i + k

		// First cell: no left neighbor; at j==1 the diagonal dp(i-1,0)
		// does not exist either.
		best := prev[s+1] // above: always in row i-1's band at the first cell
		if lo > 1 {
			if v := prev[s]; v < best {
				best = v
			}
		}
		d := xi - y[lo-1]
		c := d*d + best
		curr[s] = c
		rowMin := c

		// The last cell sits at slot 2k exactly when hi == i+k (unclamped);
		// its "above" dp(i-1, i+k) is outside row i-1's band.
		hiIn := hi
		if hi-i+k == k2 {
			hiIn = hi - 1
		}
		for j := lo + 1; j <= hiIn; j++ {
			s++
			best := prev[s]
			if v := prev[s+1]; v < best {
				best = v
			}
			if v := curr[s-1]; v < best {
				best = v
			}
			d := xi - y[j-1]
			c := d*d + best
			curr[s] = c
			if c < rowMin {
				rowMin = c
			}
		}
		if hiIn != hi && hi > lo {
			s++
			best := prev[s] // diagonal; no above at slot 2k
			if v := curr[s-1]; v < best {
				best = v
			}
			d := xi - y[hi-1]
			c := d*d + best
			curr[s] = c
			if c < rowMin {
				rowMin = c
			}
		}
		if rowMin > cutoff2 {
			return rowMin, false
		}
		prev, curr = curr, prev
	}
	d := prev[k]
	return d, d <= cutoff2
}

// SquaredBandedExact returns the exact squared banded DTW distance using
// the workspace buffers (no cutoff, no allocation).
func (w *Workspace) SquaredBandedExact(x, y ts.Series, k int) float64 {
	d, _ := w.SquaredBandedWithin(x, y, k, math.MaxFloat64)
	return d
}
