package dtw

import (
	"math"
	"math/rand"
	"testing"

	"warping/internal/ts"
)

func randSeries(r *rand.Rand, n int) ts.Series {
	s := make(ts.Series, n)
	v := 0.0
	for i := range s {
		v += r.NormFloat64()
		s[i] = v
	}
	return s
}

// Workspace-backed banded DTW must agree exactly with the allocating form
// and with SquaredBanded, including across reuse (dirty buffers).
func TestWorkspaceSquaredBandedWithinMatches(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	w := NewWorkspace()
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(64)
		x, y := randSeries(r, n), randSeries(r, n)
		k := r.Intn(n + 2) // includes k >= n-1
		exact := SquaredBanded(x, y, k)
		cutoff2 := exact * (0.5 + r.Float64())
		got, ok := w.SquaredBandedWithin(x, y, k, cutoff2)
		if ok != (exact <= cutoff2) && math.Abs(exact-cutoff2) > 1e-9 {
			t.Fatalf("trial %d: ok=%v exact=%v cutoff2=%v", trial, ok, exact, cutoff2)
		}
		if ok && math.Abs(got-exact) > 1e-9*(1+exact) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, exact)
		}
		if !ok && got <= cutoff2 {
			t.Fatalf("trial %d: abandoned but returned %v <= cutoff2 %v", trial, got, cutoff2)
		}
		// The allocating form must agree bit-for-bit.
		got2, ok2 := SquaredBandedWithin(x, y, k, cutoff2)
		if ok != ok2 || got != got2 {
			t.Fatalf("trial %d: workspace (%v,%v) vs allocating (%v,%v)", trial, got, ok, got2, ok2)
		}
	}
}

func TestWorkspaceEnvelopeInto(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	w := NewWorkspace()
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(50)
		x := randSeries(r, n)
		k := r.Intn(n + 1)
		got := w.EnvelopeInto(x, k)
		want := NewEnvelope(x, k)
		if !got.Lower.Equal(want.Lower) || !got.Upper.Equal(want.Upper) {
			t.Fatalf("trial %d (n=%d k=%d): envelope mismatch", trial, n, k)
		}
	}
}

// The reversed-role LB_Keogh must lower-bound banded DTW (Lemma 2 applied
// with the roles of query and candidate swapped) — the exactness of the
// two-pass cascade rests on this.
func TestReversedLBKeoghLowerBounds(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	w := NewWorkspace()
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(64)
		q, x := randSeries(r, n), randSeries(r, n)
		k := r.Intn(n)
		exact := SquaredBanded(x, q, k)
		lb, ok := w.SquaredReversedLBKeoghWithin(q, x, k, math.MaxFloat64)
		if !ok {
			t.Fatalf("trial %d: infinite cutoff abandoned", trial)
		}
		if lb > exact+1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): reversed LB %v > exact %v", trial, n, k, lb, exact)
		}
		// Early abandoning must preserve the no-false-dismissal property:
		// if the bound abandons at cutoff2, the exact distance exceeds it.
		cutoff2 := exact * 0.99
		if _, ok := w.SquaredReversedLBKeoghWithin(q, x, k, cutoff2); !ok && exact <= cutoff2 {
			t.Fatalf("trial %d: false dismissal at cutoff2=%v exact=%v", trial, cutoff2, exact)
		}
	}
}

func TestSquaredDistToEnvelopeWithin(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		x, y := randSeries(r, n), randSeries(r, n)
		k := r.Intn(n)
		e := NewEnvelope(y, k)
		want := SquaredDistToEnvelope(x, e)
		got, ok := SquaredDistToEnvelopeWithin(x, e, math.MaxFloat64)
		if !ok || math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("trial %d: got (%v,%v), want %v", trial, got, ok, want)
		}
		if want > 0 {
			if v, ok := SquaredDistToEnvelopeWithin(x, e, want*0.5); ok {
				t.Fatalf("trial %d: cutoff half of %v not abandoned (returned %v)", trial, want, v)
			}
		}
	}
	if _, ok := SquaredDistToEnvelopeWithin(ts.Series{1}, PointEnvelope(ts.Series{1}), -1); ok {
		t.Error("negative cutoff must abandon immediately")
	}
}

// Table-driven contract tests for the BandRadius/WarpingWidth guards.
func TestBandRadiusWarpingWidthEdgeCases(t *testing.T) {
	radiusCases := []struct {
		n     int
		delta float64
		want  int
	}{
		{0, 0.5, 0},  // n = 0: no band, not a negative radius
		{-3, 1, 0},   // negative n guarded
		{0, 1, 0},    // n = 0 with full width
		{1, 0, 0},    // delta = 0: Euclidean
		{1, 1, 0},    // n = 1: n-1 = 0
		{128, 0, 0},  // delta = 0 at real length
		{128, 1, 127},
		{128, -0.5, 0},
		{128, 2.5, 127},
		{128, 0.1, 5},
	}
	for _, tc := range radiusCases {
		if got := BandRadius(tc.n, tc.delta); got != tc.want {
			t.Errorf("BandRadius(%d, %v) = %d, want %d", tc.n, tc.delta, got, tc.want)
		}
	}

	widthCases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 0},  // the old NaN case: WarpingWidth(0, k) divided by zero
		{0, 5, 0},
		{-1, 3, 0},
		{1, 0, 1},
		{128, -2, 1.0 / 128}, // negative k clamped to 0
		{128, 0, 1.0 / 128},
		{128, 5, 11.0 / 128},
	}
	for _, tc := range widthCases {
		got := WarpingWidth(tc.n, tc.k)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("WarpingWidth(%d, %d) = %v, want finite", tc.n, tc.k, got)
			continue
		}
		if math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("WarpingWidth(%d, %d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}

	// Round trip: while the band is narrower than the series the
	// conversion inverts exactly; wider bands clamp to full DTW.
	for _, n := range []int{1, 2, 3, 64, 128, 129} {
		for k := 0; k <= n-1; k++ {
			got := BandRadius(n, WarpingWidth(n, k))
			want := k
			if 2*k+1 >= n {
				want = n - 1
			}
			if got != want {
				t.Errorf("round trip n=%d k=%d: got %d, want %d", n, k, got, want)
			}
		}
	}
	// Degenerate round trips stay in range.
	for _, n := range []int{0, 1} {
		for _, delta := range []float64{0, 1} {
			k := BandRadius(n, delta)
			if k < 0 || (n > 0 && k > n-1) {
				t.Errorf("BandRadius(%d, %v) = %d out of range", n, delta, k)
			}
			if w := WarpingWidth(n, k); math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				t.Errorf("WarpingWidth(%d, %d) = %v", n, k, w)
			}
		}
	}
}

// Steady-state verification does zero heap allocations.
func TestWorkspaceZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	const n, k = 128, 6
	q := randSeries(r, n)
	x := randSeries(r, n)
	env := NewEnvelope(q, k)
	w := NewWorkspace()
	// Warm up the buffers.
	w.SquaredReversedLBKeoghWithin(q, x, k, math.MaxFloat64)
	w.SquaredBandedWithin(x, q, k, math.MaxFloat64)
	allocs := testing.AllocsPerRun(100, func() {
		SquaredDistToEnvelopeWithin(x, env, math.MaxFloat64)
		w.SquaredReversedLBKeoghWithin(q, x, k, math.MaxFloat64)
		w.SquaredBandedWithin(x, q, k, math.MaxFloat64)
	})
	if allocs != 0 {
		t.Errorf("verification cascade allocates %v per run, want 0", allocs)
	}
}
