package dtw

import (
	"math/rand"
	"testing"
)

// randBlock fills a block with a candidate that wanders in and out of a
// random envelope: roughly a third of elements above, a third below, a
// third inside, so every branch of the kernel is exercised.
func randBlock(r *rand.Rand) (x, lo, up [lbBlockLen]float64) {
	for i := range x {
		a, b := r.NormFloat64(), r.NormFloat64()
		if a > b {
			a, b = b, a
		}
		lo[i], up[i] = a, b
		switch r.Intn(3) {
		case 0:
			x[i] = b + r.Float64() // above the envelope
		case 1:
			x[i] = a - r.Float64() // below
		default:
			x[i] = a + (b-a)*r.Float64() // inside: contributes zero
		}
	}
	return
}

// The active lbBlock16 (assembly on amd64, the Go kernel elsewhere) must
// be bit-identical to the portable reference on finite inputs: the
// cascade's abandon decisions, and through them every query result, hinge
// on the two agreeing exactly.
func TestLBBlock16AsmMatchesGo(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10000; trial++ {
		x, lo, up := randBlock(r)
		got := lbBlock16(&x, &lo, &up)
		want := lbBlock16Go(&x, &lo, &up)
		if got != want {
			t.Fatalf("trial %d: lbBlock16 = %v, lbBlock16Go = %v", trial, got, want)
		}
	}
}

// Degenerate blocks: all-zero, exactly-on-envelope, and huge deviations.
func TestLBBlock16Edges(t *testing.T) {
	var x, lo, up [lbBlockLen]float64
	if got := lbBlock16(&x, &lo, &up); got != 0 {
		t.Fatalf("zero block: got %v", got)
	}
	for i := range x {
		x[i] = float64(i)
		lo[i] = float64(i) // x exactly on both bounds
		up[i] = float64(i)
	}
	if got := lbBlock16(&x, &lo, &up); got != 0 {
		t.Fatalf("on-envelope block: got %v", got)
	}
	for i := range x {
		x[i] = 1e150
		lo[i], up[i] = -1, 1
	}
	got, want := lbBlock16(&x, &lo, &up), lbBlock16Go(&x, &lo, &up)
	if got != want {
		t.Fatalf("huge block: asm %v, go %v", got, want)
	}
}

func BenchmarkLBBlock16(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x, lo, up := randBlock(r)
	var sink float64
	b.Run("active", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += lbBlock16(&x, &lo, &up)
		}
	})
	b.Run("go", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += lbBlock16Go(&x, &lo, &up)
		}
	})
	_ = sink
}
