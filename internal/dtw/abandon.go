package dtw

import (
	"warping/internal/ts"
)

// SquaredBandedWithin computes the squared k-Local DTW distance with early
// abandoning: as soon as every cell of a dynamic-programming row exceeds
// the squared cutoff, the computation stops, because DTW cell values are
// non-decreasing along any warping path.
//
// It returns (d, true) with the exact squared distance when d <= cutoff2,
// and (v, false) with some value > cutoff2 otherwise. With a range query's
// epsilon^2 as the cutoff this skips most of the DP work for non-matching
// candidates — the refinement-step optimization of the UCR-suite lineage.
// For repeated verification without per-call allocations, use a Workspace
// and its SquaredBandedWithin method; this function is the convenience form
// that allocates fresh DP rows.
func SquaredBandedWithin(x, y ts.Series, k int, cutoff2 float64) (float64, bool) {
	var w Workspace
	return w.SquaredBandedWithin(x, y, k, cutoff2)
}
