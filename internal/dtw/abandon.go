package dtw

import (
	"math"

	"warping/internal/ts"
)

// SquaredBandedWithin computes the squared k-Local DTW distance with early
// abandoning: as soon as every cell of a dynamic-programming row exceeds
// the squared cutoff, the computation stops, because DTW cell values are
// non-decreasing along any warping path.
//
// It returns (d, true) with the exact squared distance when d <= cutoff2,
// and (v, false) with some value > cutoff2 otherwise. With a range query's
// epsilon^2 as the cutoff this skips most of the DP work for non-matching
// candidates — the refinement-step optimization of the UCR-suite lineage.
func SquaredBandedWithin(x, y ts.Series, k int, cutoff2 float64) (float64, bool) {
	n := len(x)
	if n == 0 {
		panic("dtw: empty series")
	}
	if len(y) != n {
		panic("dtw: SquaredBandedWithin needs equal lengths")
	}
	if k < 0 {
		panic("dtw: negative band radius")
	}
	if cutoff2 < 0 {
		return cutoff2 + 1, false
	}
	if k == 0 {
		// Euclidean with early abandon.
		var sum float64
		for i := range x {
			d := x[i] - y[i]
			sum += d * d
			if sum > cutoff2 {
				return sum, false
			}
		}
		return sum, true
	}
	const inf = math.MaxFloat64
	width := 2*k + 1
	prev := make([]float64, width)
	curr := make([]float64, width)
	for i := 1; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		xi := x[i-1]
		rowMin := inf
		for j := lo; j <= hi; j++ {
			d := xi - y[j-1]
			var best float64
			switch {
			case i == 1 && j == 1:
				best = 0
			default:
				best = inf
				if i > 1 && j > 1 && j-1 >= i-1-k && j-1 <= i-1+k {
					if v := prev[j-i+k]; v < best {
						best = v
					}
				}
				if i > 1 && j >= i-1-k && j <= i-1+k {
					if v := prev[j-i+k+1]; v < best {
						best = v
					}
				}
				if j > lo {
					if v := curr[j-i+k-1]; v < best {
						best = v
					}
				}
			}
			if best == inf {
				curr[j-i+k] = inf
			} else {
				curr[j-i+k] = d*d + best
				if curr[j-i+k] < rowMin {
					rowMin = curr[j-i+k]
				}
			}
		}
		if rowMin > cutoff2 {
			return rowMin, false
		}
		for s := 0; s < width; s++ {
			j := s + i - k
			if j < lo || j > hi {
				curr[s] = inf
			}
		}
		prev, curr = curr, prev
	}
	d := prev[k]
	return d, d <= cutoff2
}
