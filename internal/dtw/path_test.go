package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warping/internal/ts"
)

func TestAlignCostMatchesDistance(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		x := randomSeries(r, 1+r.Intn(25))
		y := randomSeries(r, 1+r.Intn(25))
		d, p := Align(x, y)
		if !p.Valid(len(x), len(y)) {
			t.Fatalf("trial %d: invalid path %v", trial, p)
		}
		if math.Abs(p.Cost(x, y)-d) > 1e-9*(1+d) {
			t.Fatalf("trial %d: path cost %v != distance %v", trial, p.Cost(x, y), d)
		}
		if math.Abs(d-SquaredDistance(x, y)) > 1e-9*(1+d) {
			t.Fatalf("trial %d: Align %v != SquaredDistance %v", trial, d, SquaredDistance(x, y))
		}
	}
}

func TestAlignBandedConstraint(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(30)
		k := r.Intn(n)
		x := randomSeries(r, n)
		y := randomSeries(r, n)
		d, p := AlignBanded(x, y, k)
		if !p.Valid(n, n) {
			t.Fatalf("invalid path")
		}
		for _, pt := range p {
			if abs(pt.I-pt.J) > k {
				t.Fatalf("path leaves band: %v with k=%d", pt, k)
			}
		}
		if math.Abs(d-SquaredBanded(x, y, k)) > 1e-9*(1+d) {
			t.Fatalf("Align %v != SquaredBanded %v", d, SquaredBanded(x, y, k))
		}
	}
}

func TestPathLengthBounds(t *testing.T) {
	// max(n,m) <= L <= n+m-1 per the paper.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		m := 1 + r.Intn(30)
		x := randomSeries(r, n)
		y := randomSeries(r, m)
		_, p := Align(x, y)
		lo := n
		if m > lo {
			lo = m
		}
		return len(p) >= lo && len(p) <= n+m-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPathValidRejects(t *testing.T) {
	if (Path{}).Valid(1, 1) {
		t.Error("empty path valid")
	}
	if (Path{{0, 0}, {2, 1}}).Valid(3, 2) {
		t.Error("jump of 2 accepted")
	}
	if (Path{{0, 0}, {0, 0}, {1, 1}}).Valid(2, 2) {
		t.Error("stationary step accepted")
	}
	if (Path{{0, 0}, {1, 1}}).Valid(3, 2) {
		t.Error("path not reaching the end accepted")
	}
	if !(Path{{0, 0}, {1, 1}, {2, 1}}).Valid(3, 2) {
		t.Error("valid path rejected")
	}
}

func TestAlignSingletons(t *testing.T) {
	d, p := Align(ts.New(3), ts.New(5))
	if d != 4 {
		t.Errorf("d = %v", d)
	}
	if len(p) != 1 || p[0] != (PathPoint{0, 0}) {
		t.Errorf("p = %v", p)
	}
}
