//go:build amd64

package dtw

// lbBlock16 is the SSE2 implementation of lbBlock16Go (lbblock_amd64.s).
// SSE2 is part of the amd64 baseline, so no feature detection is needed.
// The kernel processes two float64 lanes per instruction with the same
// accumulator structure as the Go version — lane pairs map onto the same
// four partial sums, combined in the same order — so for finite inputs the
// result is bit-identical to lbBlock16Go (TestLBBlock16AsmMatchesGo).
//
//go:noescape
func lbBlock16(x, lo, up *[lbBlockLen]float64) float64
