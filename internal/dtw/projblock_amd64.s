//go:build amd64

#include "textflag.h"

// func projBlock16(dst, x, lo, up *[16]float64)
//
// SSE2 envelope-projection kernel: dst[i] = clamp(x[i], lo[i], up[i]) for
// each of the 16 elements, two float64 lanes per instruction. The clamp is
// branchless — min with the upper envelope, then max with the lower — so
// there is no misprediction cost regardless of how the candidate wanders
// around the envelope. MINPD/MAXPD return the source operand on exact ties,
// which differs from the Go kernel's branchy clamp only in the sign of
// zero; callers square the projection, so the distinction never surfaces.
//
// One chunk: X0 = x, X0 = min(X0, up), X0 = max(X0, lo), store.
#define CHUNK(off) \
	MOVUPD off(AX), X0; \
	MOVUPD off(CX), X1; \
	MINPD  X1, X0; \
	MOVUPD off(BX), X1; \
	MAXPD  X1, X0; \
	MOVUPD X0, off(DI)

TEXT ·projBlock16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), AX
	MOVQ lo+16(FP), BX
	MOVQ up+24(FP), CX

	CHUNK(0)   // elements 0,1
	CHUNK(16)  // elements 2,3
	CHUNK(32)  // elements 4,5
	CHUNK(48)  // elements 6,7
	CHUNK(64)  // elements 8,9
	CHUNK(80)  // elements 10,11
	CHUNK(96)  // elements 12,13
	CHUNK(112) // elements 14,15

	RET
