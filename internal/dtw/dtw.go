// Package dtw implements Dynamic Time Warping distances and the envelope
// machinery used to lower-bound them.
//
// Three distances from the paper are provided:
//
//   - Distance / SquaredDistance: unconstrained DTW (Definition 1),
//     computed by dynamic programming in O(n*m).
//   - Banded / SquaredBanded: k-Local DTW (Definition 4), the Sakoe-Chiba
//     band of half-width k, computed in O(k*n).
//   - UTW / SquaredUTW: Uniform Time Warping (Definition 2), the purely
//     diagonal special case that handles different lengths by stretching.
//
// Definition 5 of the paper combines them: the "DTW distance" between two
// series is the banded LDTW distance between their UTW normal forms; see
// NormalizedDistance.
//
// The package also provides k-envelopes (Definition 6) and the LB_Keogh
// lower bound (Lemma 2), the full-dimensional bound that the index uses as a
// second-stage filter.
package dtw

import (
	"fmt"
	"math"

	"warping/internal/ts"
)

// SquaredDistance returns the squared unconstrained DTW distance between x
// and y using O(min(n,m)) memory. Both series must be non-empty.
func SquaredDistance(x, y ts.Series) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		panic("dtw: empty series")
	}
	// Keep the inner loop over the shorter series.
	if m > n {
		x, y = y, x
		n, m = m, n
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		curr[0] = inf
		xi := x[i-1]
		for j := 1; j <= m; j++ {
			d := xi - y[j-1]
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if curr[j-1] < best {
				best = curr[j-1] // deletion
			}
			curr[j] = d*d + best
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// Distance returns the unconstrained DTW distance (the square root of
// SquaredDistance).
func Distance(x, y ts.Series) float64 {
	return math.Sqrt(SquaredDistance(x, y))
}

// SquaredBanded returns the squared k-Local DTW distance (Definition 4):
// cell (i, j) may only be matched when |i-j| <= k. The series must have
// equal length (apply UTW normal forms first for unequal lengths; see
// NormalizedDistance). k >= 0; k = 0 degenerates to the squared Euclidean
// distance and k >= n-1 to unconstrained DTW.
func SquaredBanded(x, y ts.Series, k int) float64 {
	n := len(x)
	if n == 0 {
		panic("dtw: empty series")
	}
	if len(y) != n {
		panic(fmt.Sprintf("dtw: SquaredBanded needs equal lengths, got %d and %d", n, len(y)))
	}
	if k < 0 {
		panic("dtw: negative band radius")
	}
	if k == 0 {
		return ts.SquaredDist(x, y)
	}
	if k >= n-1 {
		return SquaredDistance(x, y)
	}
	const inf = math.MaxFloat64
	width := 2*k + 1
	// Row i stores cells j in [i-k, i+k]; slot index j-(i-k).
	prev := make([]float64, width)
	curr := make([]float64, width)
	for i := 1; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		xi := x[i-1]
		for j := lo; j <= hi; j++ {
			d := xi - y[j-1]
			var best float64
			switch {
			case i == 1 && j == 1:
				best = 0
			default:
				best = inf
				// match: prev row, j-1 -> slot (j-1)-(i-1-k) = j-i+k
				if i > 1 && j > 1 && j-1 >= i-1-k && j-1 <= i-1+k {
					if v := prev[j-i+k]; v < best {
						best = v
					}
				}
				// insertion: prev row, same j -> slot j-(i-1-k) = j-i+k+1
				if i > 1 && j >= i-1-k && j <= i-1+k {
					if v := prev[j-i+k+1]; v < best {
						best = v
					}
				}
				// deletion: same row, j-1 -> slot (j-1)-(i-k) = j-i+k-1
				if j > lo {
					if v := curr[j-i+k-1]; v < best {
						best = v
					}
				}
			}
			if best == inf {
				curr[j-i+k] = inf
			} else {
				curr[j-i+k] = d*d + best
			}
		}
		// Clear slots outside [lo, hi] so stale values never leak.
		for s := 0; s < width; s++ {
			j := s + i - k
			if j < lo || j > hi {
				curr[s] = inf
			}
		}
		prev, curr = curr, prev
	}
	return prev[n-(n-k)] // slot of j = n in row n: n-(n-k) = k
}

// Banded returns the k-Local DTW distance (square root of SquaredBanded).
func Banded(x, y ts.Series, k int) float64 {
	return math.Sqrt(SquaredBanded(x, y, k))
}

// BandRadius converts a warping width delta = (2k+1)/n into the band radius
// k for series of length n, mirroring the paper's parameterization. A
// delta <= 0 yields 0 (Euclidean); delta >= 1 yields n-1 (full DTW).
//
// Contract: the result is always in [0, max(n-1, 0)]. A non-positive n has
// no meaningful band and yields 0 rather than a negative radius, so the
// value is always safe to pass to the banded DTW and envelope functions.
func BandRadius(n int, delta float64) int {
	if n <= 0 {
		return 0
	}
	if delta <= 0 {
		return 0
	}
	if delta >= 1 {
		return n - 1
	}
	k := int((delta*float64(n) - 1) / 2)
	if k < 0 {
		k = 0
	}
	if k > n-1 {
		k = n - 1
	}
	return k
}

// WarpingWidth converts a band radius k back into the warping width
// delta = (2k+1)/n.
//
// Contract: n <= 0 yields 0 (there is no warping width for an empty
// series; the naive formula would divide by zero and return NaN or +Inf),
// and a negative k is treated as 0. For n >= 1 and 0 <= k <= n-1 the value
// lies in (0, 2). While 2k+1 < n the conversion round-trips:
// BandRadius(n, WarpingWidth(n, k)) == k; for wider bands WarpingWidth
// reaches >= 1 and BandRadius clamps to n-1 (full DTW), matching the
// paper's reading of delta as the covered fraction of the warping matrix.
func WarpingWidth(n, k int) float64 {
	if n <= 0 {
		return 0
	}
	if k < 0 {
		k = 0
	}
	return float64(2*k+1) / float64(n)
}

// SquaredUTW returns the squared Uniform Time Warping distance between
// series of possibly different lengths (Definition 2): both time axes are
// stretched to their least common multiple and compared point by point,
// normalized by m*n... The normalization in Definition 2 divides the raw
// squared sum (computed over lcm-length stretches, scaled up to length m*n)
// by m*n, which makes UTW(x, x.Upsample(w)) = 0 and keeps the magnitude
// comparable to a per-unit-length Euclidean distance.
func SquaredUTW(x, y ts.Series) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		panic("dtw: empty series")
	}
	l := ts.LCM(n, m)
	xs := x.Upsample(l / n)
	ys := y.Upsample(l / m)
	// Definition 2 sums over mn points; we summed over l = lcm points.
	// Each lcm point stands for mn/l original points.
	scale := float64(n) * float64(m) / float64(l)
	return ts.SquaredDist(xs, ys) * scale / (float64(m) * float64(n))
}

// UTW returns the Uniform Time Warping distance.
func UTW(x, y ts.Series) float64 {
	return math.Sqrt(SquaredUTW(x, y))
}

// NormalizedDistance implements Definition 5: both series are brought to
// their UTW normal form of length m (stretch + mean subtraction), then the
// banded LDTW distance with warping width delta is returned.
func NormalizedDistance(x, y ts.Series, m int, delta float64) float64 {
	xn := x.NormalForm(m)
	yn := y.NormalForm(m)
	return Banded(xn, yn, BandRadius(m, delta))
}
