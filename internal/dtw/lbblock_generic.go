//go:build !amd64

package dtw

// lbBlock16 falls back to the portable Go kernel on architectures without
// an assembly implementation.
func lbBlock16(x, lo, up *[lbBlockLen]float64) float64 {
	return lbBlock16Go(x, lo, up)
}
