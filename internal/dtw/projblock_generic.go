//go:build !amd64

package dtw

// projBlock16 falls back to the portable Go kernel on architectures without
// an assembly implementation.
func projBlock16(dst, x, lo, up *[lbBlockLen]float64) {
	projBlock16Go(dst, x, lo, up)
}
