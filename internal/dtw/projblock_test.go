package dtw

import (
	"math"
	"math/rand"
	"testing"
)

// The active projBlock16 (assembly on amd64, the Go kernel elsewhere) must
// be bit-identical to the portable reference on finite inputs: LB_Improved
// distances, and through them every abandon decision, hinge on the two
// agreeing exactly. (Signed-zero ties are the one documented exception;
// random finite data never produces them.)
func TestProjBlock16AsmMatchesGo(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10000; trial++ {
		x, lo, up := randBlock(r)
		var got, want [lbBlockLen]float64
		projBlock16(&got, &x, &lo, &up)
		projBlock16Go(&want, &x, &lo, &up)
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("trial %d elem %d: projBlock16 = %v, projBlock16Go = %v",
					trial, j, got[j], want[j])
			}
		}
	}
}

// Degenerate blocks: all-zero, exactly-on-envelope, and huge deviations.
func TestProjBlock16Edges(t *testing.T) {
	var x, lo, up, dst [lbBlockLen]float64
	projBlock16(&dst, &x, &lo, &up)
	for j, v := range dst {
		if v != 0 {
			t.Fatalf("zero block elem %d: got %v", j, v)
		}
	}
	for i := range x {
		x[i] = float64(i)
		lo[i] = float64(i) // x exactly on both bounds
		up[i] = float64(i)
	}
	projBlock16(&dst, &x, &lo, &up)
	for j, v := range dst {
		if v != x[j] {
			t.Fatalf("on-envelope elem %d: got %v want %v", j, v, x[j])
		}
	}
	for i := range x {
		x[i] = 1e150
		lo[i], up[i] = -1, 1
	}
	var want [lbBlockLen]float64
	projBlock16(&dst, &x, &lo, &up)
	projBlock16Go(&want, &x, &lo, &up)
	if dst != want {
		t.Fatalf("huge block: asm %v, go %v", dst, want)
	}
}

// ProjectOntoEnvelopeInto must clamp every element into the envelope and
// leave inside-envelope elements untouched, for any length (blocks + tail).
func TestProjectOntoEnvelope(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 7, 16, 17, 33, 128, 131} {
		x := randSeries(r, n)
		q := randSeries(r, n)
		env := NewEnvelope(q, 3)
		got := ProjectOntoEnvelopeInto(nil, x, env)
		for i := range got {
			want := x[i]
			if want > env.Upper[i] {
				want = env.Upper[i]
			} else if want < env.Lower[i] {
				want = env.Lower[i]
			}
			if got[i] != want {
				t.Fatalf("n=%d elem %d: got %v want %v", n, i, got[i], want)
			}
		}
		// Reuse must not allocate or corrupt: a second call into the same
		// buffer yields the same values.
		again := ProjectOntoEnvelopeInto(got, x, env)
		if &again[0] != &got[0] {
			t.Fatalf("n=%d: reuse reallocated", n)
		}
	}
}

func BenchmarkProjBlock16(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x, lo, up := randBlock(r)
	var dst [lbBlockLen]float64
	b.Run("active", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			projBlock16(&dst, &x, &lo, &up)
		}
	})
	b.Run("go", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			projBlock16Go(&dst, &x, &lo, &up)
		}
	})
	_ = dst
}
