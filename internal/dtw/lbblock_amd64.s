//go:build amd64

#include "textflag.h"

// func lbBlock16(x, lo, up *[16]float64) float64
//
// SSE2 LB_Keogh block kernel: for each of the 16 elements accumulate
// max(x-up, lo-x, 0)^2, two float64 lanes per instruction. The four
// logical accumulators of the Go kernel (elements j, j+1, j+2, j+3 of
// each 4-group) live as two xmm registers of two lanes each:
//
//	X4 = {s0, s1}  (elements 0,4,8,12 and 1,5,9,13)
//	X5 = {s2, s3}  (elements 2,6,10,14 and 3,7,11,15)
//
// and the final combine is (s0+s1) + (s2+s3) — the same association as
// the Go version, so finite inputs produce bit-identical sums. The
// max-with-zero keeps inside-envelope elements contributing exactly +0,
// matching the Go kernel's branch that skips them.
//
// One chunk: X3 = (x-up), X2 = (lo-x), X3 = max(X3, X2, 0), acc += X3*X3.
#define CHUNK(off, acc) \
	MOVUPD off(AX), X0; \
	MOVUPD off(CX), X1; \
	MOVUPD off(BX), X2; \
	MOVAPD X0, X3; \
	SUBPD  X1, X3; \
	SUBPD  X0, X2; \
	MAXPD  X2, X3; \
	MAXPD  X6, X3; \
	MULPD  X3, X3; \
	ADDPD  X3, acc

TEXT ·lbBlock16(SB), NOSPLIT, $0-32
	MOVQ  x+0(FP), AX
	MOVQ  lo+8(FP), BX
	MOVQ  up+16(FP), CX
	XORPS X4, X4            // {s0, s1}
	XORPS X5, X5            // {s2, s3}
	XORPS X6, X6            // constant zero

	CHUNK(0, X4)            // elements 0,1
	CHUNK(16, X5)           // elements 2,3
	CHUNK(32, X4)           // elements 4,5
	CHUNK(48, X5)           // elements 6,7
	CHUNK(64, X4)           // elements 8,9
	CHUNK(80, X5)           // elements 10,11
	CHUNK(96, X4)           // elements 12,13
	CHUNK(112, X5)          // elements 14,15

	// (s0+s1) + (s2+s3), same association as the Go kernel.
	MOVAPD   X4, X0
	UNPCKHPD X0, X0
	ADDSD    X0, X4
	MOVAPD   X5, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X5
	ADDSD    X5, X4
	MOVSD    X4, ret+24(FP)
	RET
