//go:build amd64

package dtw

// projBlock16 is the SSE2 implementation of projBlock16Go
// (projblock_amd64.s). SSE2 is part of the amd64 baseline, so no feature
// detection is needed. MINPD/MAXPD resolve exact ties toward the envelope
// operand, which only matters for signed zeros (±0 compare equal); every
// downstream use squares the projected values, so results are bit-identical
// to the Go kernel for all finite inputs (TestProjBlock16AsmMatchesGo).
//
//go:noescape
func projBlock16(dst, x, lo, up *[lbBlockLen]float64)
