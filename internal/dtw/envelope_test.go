package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warping/internal/ts"
)

func TestEnvelopeBasics(t *testing.T) {
	x := ts.New(3, 1, 4, 1, 5)
	e := NewEnvelope(x, 1)
	if !e.Valid() {
		t.Fatal("envelope invalid")
	}
	if !e.Contains(x, 0) {
		t.Fatal("envelope must contain its own series")
	}
	wantLo := ts.New(1, 1, 1, 1, 1)
	wantHi := ts.New(3, 4, 4, 5, 5)
	if !e.Lower.Equal(wantLo) || !e.Upper.Equal(wantHi) {
		t.Errorf("envelope = %v / %v", e.Lower, e.Upper)
	}
}

func TestPointEnvelope(t *testing.T) {
	x := ts.New(2, 7)
	e := PointEnvelope(x)
	if !e.Lower.Equal(x) || !e.Upper.Equal(x) {
		t.Error("point envelope should equal the series")
	}
	e.Lower[0] = -1
	if x[0] != 2 {
		t.Error("point envelope aliases input")
	}
}

func TestDistToEnvelopeZeroInside(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	x := randomSeries(r, 50)
	e := NewEnvelope(x, 3)
	if d := DistToEnvelope(x, e); d != 0 {
		t.Errorf("distance of series to own envelope = %v", d)
	}
}

func TestDistToEnvelopeKnown(t *testing.T) {
	e := Envelope{Lower: ts.New(0, 0), Upper: ts.New(1, 1)}
	x := ts.New(2, -2) // 1 above, 2 below
	if d := SquaredDistToEnvelope(x, e); d != 1+4 {
		t.Errorf("squared dist = %v, want 5", d)
	}
}

func TestGlobalEnvelope(t *testing.T) {
	x := ts.New(1, 9, 4)
	g := GlobalEnvelope(x)
	if !g.Lower.Equal(ts.New(1, 1, 1)) || !g.Upper.Equal(ts.New(9, 9, 9)) {
		t.Errorf("global envelope = %v / %v", g.Lower, g.Upper)
	}
}

// Property (Lemma 2): LB_Keogh lower-bounds the banded DTW distance.
func TestPropLBKeoghLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		k := r.Intn(n)
		x := randomWalk(r, n)
		y := randomWalk(r, n)
		return LBKeogh(x, y, k) <= Banded(x, y, k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the global envelope bound is looser than (<=) LB_Keogh.
func TestPropGlobalLooserThanKeogh(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		k := r.Intn(n)
		x := randomWalk(r, n)
		y := randomWalk(r, n)
		g := DistToEnvelope(x, GlobalEnvelope(y))
		return g <= LBKeogh(x, y, k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: any series formed by warping y within the band stays inside the
// k-envelope of y.
func TestPropEnvelopeContainsWarps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		k := 1 + r.Intn(5)
		y := randomWalk(r, n)
		e := NewEnvelope(y, k)
		// Build z with z_i = y_{i+off}, |off| <= k.
		z := make(ts.Series, n)
		for i := range z {
			off := r.Intn(2*k+1) - k
			j := i + off
			if j < 0 {
				j = 0
			}
			if j >= n {
				j = n - 1
			}
			z[i] = y[j]
		}
		return e.Contains(z, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: envelopes widen with k, so distances to them shrink.
func TestPropEnvelopeDistMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		x := randomWalk(r, n)
		y := randomWalk(r, n)
		last := math.MaxFloat64
		for k := 0; k < n; k += 1 + n/8 {
			d := SquaredLBKeogh(x, y, k)
			if d > last+1e-9 {
				return false
			}
			last = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeShift(t *testing.T) {
	e := NewEnvelope(ts.New(1, 2, 3), 1)
	s := e.Shift(10)
	if !s.Lower.Equal(e.Lower.Shift(10)) || !s.Upper.Equal(e.Upper.Shift(10)) {
		t.Error("Shift mismatch")
	}
}

func TestEnvelopeValidRejects(t *testing.T) {
	bad := Envelope{Lower: ts.New(2), Upper: ts.New(1)}
	if bad.Valid() {
		t.Error("crossed envelope reported valid")
	}
	mismatch := Envelope{Lower: ts.New(1, 2), Upper: ts.New(1)}
	if mismatch.Valid() {
		t.Error("length-mismatched envelope reported valid")
	}
}
