package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openReadWAL(t *testing.T) *WAL {
	t.Helper()
	w, _, err := OpenWAL(OS(), filepath.Join(t.TempDir(), "wal.log"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestReadFromRoundTrip(t *testing.T) {
	w := openReadWAL(t)
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}

	// Full scan from the start, unbounded.
	recs, next, err := w.ReadFrom(WALStartOffset, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d: got %q, want %q", i, r.Payload, want[i])
		}
	}
	if next != w.DurableOffset() {
		t.Fatalf("next = %d, durable = %d", next, w.DurableOffset())
	}

	// Resume from every record boundary: the tail from there matches.
	for i, r := range recs {
		tail, _, err := w.ReadFrom(r.Offset, 0)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", r.Offset, err)
		}
		if len(tail) != len(want)-i {
			t.Fatalf("ReadFrom(%d): %d records, want %d", r.Offset, len(tail), len(want)-i)
		}
		if !bytes.Equal(tail[0].Payload, want[i]) {
			t.Fatalf("ReadFrom(%d): first record %q, want %q", r.Offset, tail[0].Payload, want[i])
		}
	}

	// Caught-up read: no records, same offset back.
	recs, caught, err := w.ReadFrom(next, 0)
	if err != nil || len(recs) != 0 || caught != next {
		t.Fatalf("caught-up read: recs=%d next=%d err=%v", len(recs), caught, err)
	}
}

func TestReadFromPagination(t *testing.T) {
	w := openReadWAL(t)
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	// maxBytes below one payload still makes progress: at least one record.
	off := int64(WALStartOffset)
	total := 0
	for rounds := 0; ; rounds++ {
		if rounds > 20 {
			t.Fatal("pagination does not terminate")
		}
		recs, next, err := w.ReadFrom(off, 150)
		if err != nil {
			t.Fatal(err)
		}
		if next == off {
			break
		}
		if len(recs) == 0 {
			t.Fatal("progress with zero records")
		}
		if len(recs) > 2 {
			t.Fatalf("page of %d records exceeds 150-byte budget", len(recs))
		}
		total += len(recs)
		off = next
	}
	if total != 10 {
		t.Fatalf("paginated %d records, want 10", total)
	}
}

func TestReadFromRejectsBadOffsets(t *testing.T) {
	w := openReadWAL(t)
	if err := w.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, 3, WALStartOffset + 1, w.DurableOffset() - 1, w.DurableOffset() + 1, 1 << 40} {
		if _, _, err := w.ReadFrom(off, 0); !errors.Is(err, ErrOffsetOutOfRange) && !errors.Is(err, ErrChecksum) {
			t.Errorf("ReadFrom(%d): err = %v, want offset-out-of-range or checksum", off, err)
		}
	}
}

func TestReadFromSeesOnlyDurableRecords(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	w, _, err := OpenWAL(fsys, filepath.Join(dir, "wal.log"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	durable := w.DurableOffset()

	// Append without committing: bytes are written but not fsynced.
	_ = w.Begin([]byte("unsynced"))
	if got := w.DurableOffset(); got != durable {
		t.Fatalf("durable offset moved to %d before fsync", got)
	}
	recs, next, err := w.ReadFrom(WALStartOffset, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "durable" {
		t.Fatalf("read %d records, want only the durable one", len(recs))
	}
	if next != durable {
		t.Fatalf("next = %d, want durable watermark %d", next, durable)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = w.ReadFrom(durable, 0)
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "unsynced" {
		t.Fatalf("after sync: recs=%v err=%v", recs, err)
	}
}

func TestReadFromConcurrentWithAppends(t *testing.T) {
	w := openReadWAL(t)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := w.Append([]byte(fmt.Sprintf("r%04d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Tail the log while the writer runs; every record must arrive intact
	// and in order.
	seen := 0
	off := int64(WALStartOffset)
	for seen < n {
		recs, next, err := w.ReadFrom(off, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if want := fmt.Sprintf("r%04d", seen); string(r.Payload) != want {
				t.Fatalf("record %d: got %q, want %q", seen, r.Payload, want)
			}
			seen++
		}
		off = next
	}
	wg.Wait()
}

func TestReadFromAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := OpenWAL(OS(), path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn tail: half a record header of garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, rec, err := OpenWAL(OS(), path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.DroppedBytes != 3 {
		t.Fatalf("recovery dropped %d bytes, want 3", rec.DroppedBytes)
	}
	recs, _, err := w2.ReadFrom(WALStartOffset, 0)
	if err != nil || len(recs) != 5 {
		t.Fatalf("after reopen: %d records err=%v, want 5", len(recs), err)
	}
}
