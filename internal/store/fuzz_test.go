package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzContainerRead throws arbitrary bytes at the container parser: it
// must never panic, and every rejection must be one of the typed errors
// (or a round-trippable accept).
func FuzzContainerRead(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteContainer(&valid, "fuzz/kind", []Section{
		{Name: "a", Data: []byte("payload-a")},
		{Name: "b", Data: bytes.Repeat([]byte{7}, 100)},
	})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:11])
	f.Add([]byte("QBHSNAP\x00garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, sections, err := ReadContainer(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Accepted input must re-encode and re-parse to the same sections.
		var out bytes.Buffer
		if err := WriteContainer(&out, kind, sections); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		kind2, sections2, err := ReadContainer(bytes.NewReader(out.Bytes()))
		if err != nil || kind2 != kind || len(sections2) != len(sections) {
			t.Fatalf("round trip diverged: %v", err)
		}
	})
}

// FuzzWALRecover writes arbitrary bytes as a WAL file: recovery must never
// panic, and whenever it succeeds the log must remain appendable with the
// new record surviving a clean reopen (torn tails truncated, not fatal).
func FuzzWALRecover(f *testing.F) {
	dir, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })

	seedPath := filepath.Join(dir, "seed.log")
	w, _, err := OpenWAL(OS(), seedPath, 0)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = w.Append(bytes.Repeat([]byte{byte(i + 1)}, 10+i))
	}
	w.Close()
	seed, _ := os.ReadFile(seedPath)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add(walMagic[:])
	f.Add([]byte{})
	f.Add([]byte("notawal!"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, rec, err := OpenWAL(OS(), path, 0)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped recovery error: %v", err)
			}
			return
		}
		if err := w.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		w.Close()
		w2, rec2, err := OpenWAL(OS(), path, 0)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer w2.Close()
		if len(rec2.Records) != len(rec.Records)+1 {
			t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(rec.Records)+1)
		}
		last := rec2.Records[len(rec2.Records)-1]
		if string(last) != "appended-after-recovery" {
			t.Fatalf("appended record corrupted: %q", last)
		}
	})
}
