package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Offset-addressed WAL reads for replication shipping. A follower tracks
// its replay position as a byte offset into the primary's log and asks for
// "everything durable past offset O"; the primary answers from a second
// read-only handle so shipping never perturbs the append path. Offsets are
// stable within one log generation — Reset (snapshot compaction) starts a
// new generation, which callers track as an epoch above this layer and
// resolve by shipping a snapshot instead.

// ErrOffsetOutOfRange marks a read from an offset that is not a record
// boundary of the current log: before the file header, past the durable
// watermark, or inside a record. The caller's position is from another log
// generation (or corrupt) and must be re-established from a snapshot.
var ErrOffsetOutOfRange = errors.New("store: wal offset out of range")

// WALStartOffset is the offset of the first record in any WAL: reads start
// here on a freshly reset (or brand-new) log.
const WALStartOffset = walHeaderSize

// WALRecord is one shipped log record: its byte offset in the log plus the
// payload. Offset+len(framing)+len(Payload) is the next record's offset.
type WALRecord struct {
	Offset  int64
	Payload []byte
}

// End returns the offset immediately after this record — the position a
// consumer that applied it should resume from.
func (r WALRecord) End() int64 {
	return r.Offset + walRecHdrSize + int64(len(r.Payload))
}

// DurableOffset reports the byte offset up to which the log is known
// fsynced. Records at offsets below it are safe to ship; bytes past it may
// still be torn away by a crash.
func (w *WAL) DurableOffset() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// ReadFrom returns durable records starting at offset, at least one (when
// any exists) and up to maxBytes of payload in total (<= 0 selects 1 MiB).
// next is the offset to resume from; next == offset with no records means
// the reader is caught up. Reads use a separate handle and only run up to
// the durable watermark, so they are safe concurrently with appends; they
// are NOT safe concurrently with Reset, which the caller must exclude (the
// replication layer holds its shipping lock across snapshot+reset).
//
// An offset that does not land on a record boundary — typically a position
// from a previous log generation — returns ErrOffsetOutOfRange.
func (w *WAL) ReadFrom(offset int64, maxBytes int) (recs []WALRecord, next int64, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	w.mu.Lock()
	limit := w.synced
	fsys, path := w.fsys, w.path
	w.mu.Unlock()

	if offset < WALStartOffset || offset > limit {
		return nil, 0, fmt.Errorf("%w: offset %d outside [%d, %d]", ErrOffsetOutOfRange, offset, WALStartOffset, limit)
	}
	if offset == limit {
		return nil, offset, nil
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, 0, err
	}

	next = offset
	total := 0
	var rh [walRecHdrSize]byte
	for next < limit && (total == 0 || total < maxBytes) {
		if limit-next < walRecHdrSize {
			return nil, 0, fmt.Errorf("%w: %d bytes of durable log after offset %d cannot hold a record", ErrOffsetOutOfRange, limit-next, next)
		}
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			return nil, 0, fmt.Errorf("store: wal read at %d: %w", next, err)
		}
		length := binary.LittleEndian.Uint32(rh[:4])
		crc := binary.LittleEndian.Uint32(rh[4:8])
		if length > maxWALRecord || next+walRecHdrSize+int64(length) > limit {
			// A length field that runs past the durable watermark means the
			// offset was mid-record: this is not a boundary.
			return nil, 0, fmt.Errorf("%w: no record boundary at offset %d", ErrOffsetOutOfRange, next)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, 0, fmt.Errorf("store: wal read at %d: %w", next, err)
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, 0, fmt.Errorf("%w: record at offset %d", ErrChecksum, next)
		}
		recs = append(recs, WALRecord{Offset: next, Payload: payload})
		total += len(payload)
		next += walRecHdrSize + int64(length)
	}
	return recs, next, nil
}
