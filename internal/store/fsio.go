// Package store is the crash-safe durability layer: a versioned,
// checksummed snapshot container written with atomic replacement, and a
// write-ahead log with group commit and torn-tail recovery. All file I/O
// goes through the FS interface, so tests can inject faults — short
// writes, fsync failures, rename failures, and kills at arbitrary byte
// offsets — and prove the recovery invariants hold.
package store

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File operations the store performs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS abstracts the handful of filesystem operations the store uses.
// OS() is the real filesystem; FaultFS wraps any FS with fault injection.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making renames and creates in it durable.
	SyncDir(dir string) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
