package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Write-ahead log format. An 8-byte file header ("QBHWAL\x00" plus a
// version byte) is followed by records:
//
//	payloadLen uint32 (little-endian)
//	crc        uint32 CRC-32C of the payload
//	payload    []byte
//
// A record is durable once the file has been fsynced past it. Recovery
// scans records until the first torn or corrupt one and truncates the file
// there: a crash mid-append loses at most the records that were never
// acknowledged.

var walMagic = [8]byte{'Q', 'B', 'H', 'W', 'A', 'L', 0, 1}

const (
	walHeaderSize = 8
	walRecHdrSize = 8
	// maxWALRecord bounds a single record so a corrupt length field cannot
	// force a huge allocation during recovery.
	maxWALRecord = 64 << 20
)

// WAL is an append-only, checksummed record log with group commit.
// Begin/commit pairs let callers append under their own lock and wait for
// durability outside it, so one fsync can cover many appends.
type WAL struct {
	fsys   FS
	path   string
	window time.Duration

	mu      sync.Mutex
	f       File
	err     error // sticky: after a failed fsync durability cannot be trusted
	size    int64 // bytes written, including the header
	synced  int64 // bytes known durable
	records int64
	pending *walBatch

	syncs       int64
	lastSyncDur time.Duration
	lastSyncAt  time.Time
}

type walBatch struct {
	done chan struct{}
	err  error
}

// WALStats is a point-in-time snapshot of log size and fsync activity.
type WALStats struct {
	Records  int64
	Bytes    int64 // file size including the 8-byte header
	Syncs    int64
	LastSync time.Duration // latency of the most recent fsync
	SyncedAt time.Time     // completion time of the most recent fsync
}

// Recovered reports what OpenWAL found in an existing log.
type Recovered struct {
	Records      [][]byte
	DroppedBytes int64 // torn/corrupt tail bytes truncated away
}

// OpenWAL opens or creates the log at path, replaying intact records and
// truncating any torn tail. window is the group-commit window: zero means
// every commit fsyncs immediately; a positive window batches concurrent
// commits into one fsync. A file that is not a WAL (wrong magic or
// version) is rejected with a typed error rather than truncated.
func OpenWAL(fsys FS, path string, window time.Duration) (*WAL, Recovered, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovered{}, err
	}
	w := &WAL{fsys: fsys, path: path, window: window, f: f}
	rec, err := w.recover()
	if err != nil {
		_ = f.Close()
		return nil, Recovered{}, err
	}
	return w, rec, nil
}

func (w *WAL) recover() (Recovered, error) {
	var rec Recovered
	fi, err := w.fsys.Stat(w.path)
	if err != nil {
		return rec, err
	}
	fileSize := fi.Size()

	var hdr [walHeaderSize]byte
	n, err := io.ReadFull(w.f, hdr[:])
	switch {
	case err == io.EOF || err == io.ErrUnexpectedEOF:
		// Empty or torn at creation: (re)initialize. A torn header can
		// only come from a crash before the first record was acknowledged.
		rec.DroppedBytes = int64(n)
		if err := w.reinitLocked(); err != nil {
			return rec, err
		}
		return rec, w.fsys.SyncDir(filepath.Dir(w.path))
	case err != nil:
		return rec, err
	}
	if hdr != walMagic {
		if [7]byte(hdr[:7]) == [7]byte(walMagic[:7]) {
			return rec, fmt.Errorf("%w: wal version %d (supported: %d)", ErrVersion, hdr[7], walMagic[7])
		}
		return rec, fmt.Errorf("%w: not a wal file", ErrBadMagic)
	}

	// Scan records until the first torn or corrupt one.
	off := int64(walHeaderSize)
	var rh [walRecHdrSize]byte
	for {
		if _, err := io.ReadFull(w.f, rh[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return rec, err
		}
		length := binary.LittleEndian.Uint32(rh[:4])
		crc := binary.LittleEndian.Uint32(rh[4:8])
		if length > maxWALRecord {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(w.f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return rec, err
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		rec.Records = append(rec.Records, payload)
		off += walRecHdrSize + int64(length)
	}
	rec.DroppedBytes = fileSize - off
	if rec.DroppedBytes > 0 {
		if err := w.f.Truncate(off); err != nil {
			return rec, err
		}
		if err := w.f.Sync(); err != nil {
			return rec, err
		}
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return rec, err
	}
	w.size = off
	w.synced = off
	w.records = int64(len(rec.Records))
	return rec, nil
}

// reinitLocked truncates the file to a fresh, durable header.
func (w *WAL) reinitLocked() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := w.f.Write(walMagic[:]); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = walHeaderSize
	w.synced = walHeaderSize
	w.records = 0
	return nil
}

// Begin appends one record and returns a commit func that blocks until the
// record is durable (fsynced) and reports the outcome. Callers holding a
// lock append inside it and commit outside, letting the group-commit
// window merge fsyncs across callers. After any fsync failure the log is
// poisoned: every Begin and commit returns the sticky error.
func (w *WAL) Begin(payload []byte) func() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		err := w.err
		return func() error { return err }
	}
	if len(payload) > maxWALRecord {
		err := fmt.Errorf("store: wal record too large (%d bytes)", len(payload))
		return func() error { return err }
	}
	rec := make([]byte, walRecHdrSize+len(payload))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[walRecHdrSize:], payload)
	if _, err := w.f.Write(rec); err != nil {
		// The file may now hold a torn record; recovery truncates it.
		w.err = fmt.Errorf("store: wal append: %w", err)
		err = w.err
		return func() error { return err }
	}
	w.size += int64(len(rec))
	w.records++
	if w.window <= 0 {
		return func() error { return w.Sync() }
	}
	if w.pending == nil {
		w.pending = &walBatch{done: make(chan struct{})}
		time.AfterFunc(w.window, func() { _ = w.Sync() })
	}
	b := w.pending
	return func() error {
		<-b.done
		return b.err
	}
}

// Append is Begin plus an immediate commit: it returns once the record is
// durable.
func (w *WAL) Append(payload []byte) error { return w.Begin(payload)() }

// Sync fsyncs everything appended so far and releases the pending
// group-commit batch with the result.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *WAL) flushLocked() error {
	b := w.pending
	w.pending = nil
	err := w.syncLocked()
	if b != nil {
		b.err = err
		close(b.done)
	}
	return err
}

func (w *WAL) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if w.synced == w.size {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("store: wal fsync: %w", err)
		return w.err
	}
	w.synced = w.size
	w.syncs++
	w.lastSyncDur = time.Since(start)
	w.lastSyncAt = time.Now()
	return nil
}

// Reset empties the log after its contents have been made durable
// elsewhere (a snapshot). Any pending group-commit batch is released with
// success — the snapshot covers those records. Reset also clears a sticky
// fsync error: the failed appends are durable via the snapshot too.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if b := w.pending; b != nil {
		w.pending = nil
		b.err = nil
		close(b.done)
	}
	w.err = nil
	if err := w.reinitLocked(); err != nil {
		w.err = fmt.Errorf("store: wal reset: %w", err)
		return w.err
	}
	return nil
}

// Stats reports current log size and fsync activity.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Records:  w.records,
		Bytes:    w.size,
		Syncs:    w.syncs,
		LastSync: w.lastSyncDur,
		SyncedAt: w.lastSyncAt,
	}
}

// Err reports the sticky failure state, nil while the log is healthy.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes pending commits and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.flushLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
