package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestPageFileRoundTrip(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "x.pages")
	pf, err := CreatePageFile(fsys, path, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 20
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		pid := pf.Allocate()
		if pid != uint64(i) {
			t.Fatalf("pid %d, want %d", pid, i)
		}
		buf := make([]byte, 512)
		rng.Read(buf[PageHeaderSize:])
		want[i] = append([]byte(nil), buf[PageHeaderSize:]...)
		if err := pf.WritePage(pid, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one page to prove in-place update works.
	buf := make([]byte, 512)
	rng.Read(buf[PageHeaderSize:])
	want[3] = append([]byte(nil), buf[PageHeaderSize:]...)
	if err := pf.WritePage(3, buf); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := OpenPageFile(fsys, path, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if pf2.NumPages() != n {
		t.Fatalf("NumPages = %d, want %d", pf2.NumPages(), n)
	}
	if pf2.PageSize() != 512 {
		t.Fatalf("PageSize = %d", pf2.PageSize())
	}
	got := make([]byte, 512)
	for i := 0; i < n; i++ {
		if err := pf2.ReadPage(uint64(i), got); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if string(got[PageHeaderSize:]) != string(want[i]) {
			t.Fatalf("page %d payload mismatch", i)
		}
	}
}

func TestPageFileRejectsCorruption(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "x.pages")
	pf, err := CreatePageFile(fsys, path, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	for i := range buf[PageHeaderSize:] {
		buf[PageHeaderSize+i] = byte(i)
	}
	pid := pf.Allocate()
	if err := pf.WritePage(pid, buf); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte on disk behind the PageFile's back.
	raw, err := fsys.OpenFile(path, 0x2 /* os.O_RDWR */, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(pageFileHeaderSize + PageHeaderSize + 5)
	if _, err := raw.Seek(off, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	if err := pf.ReadPage(pid, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt page read: %v, want ErrChecksum", err)
	}
	pf.Close()
}

func TestPageFileRejectsMisdirectedPage(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "x.pages")
	pf, err := CreatePageFile(fsys, path, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	p0, p1 := pf.Allocate(), pf.Allocate()
	if err := pf.WritePage(p0, buf); err != nil {
		t.Fatal(err)
	}
	if err := pf.WritePage(p1, buf); err != nil {
		t.Fatal(err)
	}
	// Forge page 1 with page 0's recorded id but a valid checksum: a
	// misdirected write. ReadPage(1) must reject it.
	forged := make([]byte, 256)
	forged[4] = 1 // kind
	binary.LittleEndian.PutUint64(forged[8:16], 0)
	binary.LittleEndian.PutUint32(forged, crc32.Checksum(forged[4:], castagnoli))
	raw, err := fsys.OpenFile(path, 0x2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Seek(pageFileHeaderSize+256, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(forged); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	if err := pf.ReadPage(1, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("misdirected page read: %v, want ErrChecksum", err)
	}
	pf.Close()
}

func TestPageFileWrongKind(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "x.pages")
	pf, err := CreatePageFile(fsys, path, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()
	if _, err := OpenPageFile(fsys, path, 4); !errors.Is(err, ErrKind) {
		t.Fatalf("open with wrong kind: %v, want ErrKind", err)
	}
}

func TestPageFileBadPageSize(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "x.pages")
	if _, err := CreatePageFile(fsys, path, 300, 1); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
	if _, err := CreatePageFile(fsys, path, 128, 1); err == nil {
		t.Fatal("tiny page size accepted")
	}
}
