package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func walRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("record-%03d:%s", i, bytes.Repeat([]byte{byte(i)}, i*7%40)))
	}
	return recs
}

func openTestWAL(t *testing.T, fsys FS, path string, window time.Duration) (*WAL, Recovered) {
	t.Helper()
	w, rec, err := OpenWAL(fsys, path, window)
	if err != nil {
		t.Fatal(err)
	}
	return w, rec
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, rec := openTestWAL(t, OS(), path, 0)
	if len(rec.Records) != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("fresh wal: %+v", rec)
	}
	want := walRecords(20)
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Records != 20 || st.Syncs != 20 {
		t.Errorf("stats: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec2 := openTestWAL(t, OS(), path, 0)
	defer w2.Close()
	if len(rec2.Records) != len(want) || rec2.DroppedBytes != 0 {
		t.Fatalf("recovered %d records, dropped %d", len(rec2.Records), rec2.DroppedBytes)
	}
	for i := range want {
		if !bytes.Equal(rec2.Records[i], want[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

// Truncating the file at every possible offset must recover a clean prefix
// of the records — no error, no panic, no partial record.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _ := openTestWAL(t, OS(), path, 0)
	want := walRecords(12)
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n <= len(full); n++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, rec := openTestWAL(t, OS(), torn, 0)
		for i, r := range rec.Records {
			if !bytes.Equal(r, want[i]) {
				t.Fatalf("cut at %d: record %d corrupted", n, i)
			}
		}
		if n == len(full) && len(rec.Records) != len(want) {
			t.Fatalf("full file lost records: %d", len(rec.Records))
		}
		// The truncated log must accept new appends and survive a reopen.
		if err := w2.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", n, err)
		}
		w2.Close()
		w3, rec3 := openTestWAL(t, OS(), torn, 0)
		if len(rec3.Records) != len(rec.Records)+1 {
			t.Fatalf("cut at %d: reopen lost appended record", n)
		}
		w3.Close()
	}
}

// A corrupt byte mid-log truncates at the first bad record; later records
// are dropped rather than trusted.
func TestWALCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _ := openTestWAL(t, OS(), path, 0)
	want := walRecords(10)
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	full, _ := os.ReadFile(path)
	for _, i := range []int{walHeaderSize + 9, len(full) / 2, len(full) - 3} {
		mut := bytes.Clone(full)
		mut[i] ^= 0x40
		p := filepath.Join(dir, "mut.log")
		os.WriteFile(p, mut, 0o644)
		w2, rec := openTestWAL(t, OS(), p, 0)
		w2.Close()
		if rec.DroppedBytes == 0 {
			t.Fatalf("flip at %d: nothing dropped", i)
		}
		for j, r := range rec.Records {
			if !bytes.Equal(r, want[j]) {
				t.Fatalf("flip at %d: surviving record %d corrupted", i, j)
			}
		}
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "foreign.log")
	os.WriteFile(p, []byte("definitely not a wal file"), 0o644)
	if _, _, err := OpenWAL(OS(), p, 0); !errors.Is(err, ErrBadMagic) {
		t.Errorf("foreign file: got %v, want ErrBadMagic", err)
	}
	// Wrong version byte.
	bad := bytes.Clone(walMagic[:])
	bad[7] = 9
	os.WriteFile(p, bad, 0o644)
	if _, _, err := OpenWAL(OS(), p, 0); !errors.Is(err, ErrVersion) {
		t.Errorf("future wal version: got %v, want ErrVersion", err)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, OS(), path, 0)
	for _, r := range walRecords(5) {
		w.Append(r)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Records != 0 || st.Bytes != walHeaderSize {
		t.Errorf("after reset: %+v", st)
	}
	if err := w.Append([]byte("after reset")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, rec := openTestWAL(t, OS(), path, 0)
	defer w2.Close()
	if len(rec.Records) != 1 || string(rec.Records[0]) != "after reset" {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
}

// Group commit: concurrent appenders share fsyncs, every commit really
// waits for durability, and the fsync count stays below one per append.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, OS(), path, 2*time.Millisecond)
	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				errs <- w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Records != writers*perWriter {
		t.Fatalf("records = %d", st.Records)
	}
	if st.Syncs > st.Records {
		t.Errorf("more fsyncs (%d) than appends (%d)", st.Syncs, st.Records)
	}
	w.Close()
	_, rec := openTestWAL(t, OS(), path, 0)
	if len(rec.Records) != writers*perWriter {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
}

// After a failed fsync the log is poisoned: the failed commit and all
// later appends report errors instead of silently pretending durability.
func TestWALStickyFsyncError(t *testing.T) {
	ffs := NewFaultFS(OS())
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, ffs, path, 0)
	defer w.Close()
	if err := w.Append([]byte("healthy")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncs(errors.New("disk on fire"))
	if err := w.Append([]byte("doomed")); err == nil {
		t.Fatal("append acked despite fsync failure")
	}
	ffs.FailSyncs(nil)
	if err := w.Append([]byte("still doomed")); err == nil {
		t.Fatal("poisoned wal accepted an append")
	}
	if w.Err() == nil {
		t.Fatal("no sticky error")
	}
	// Reset (after a snapshot) heals the log.
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("healed")); err != nil {
		t.Fatal(err)
	}
}

// Kill the filesystem at every byte offset of the write stream: reopening
// must always yield a prefix of the appended records, with every record
// whose Append was acknowledged present.
func TestWALKillAtEveryWriteOffset(t *testing.T) {
	want := walRecords(8)
	for offset := int64(0); ; offset++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		ffs := NewFaultFS(OS())
		ffs.KillAfterBytes(offset)
		acked := 0
		w, _, err := OpenWAL(ffs, path, 0)
		if err == nil {
			for _, r := range want {
				if err := w.Append(r); err != nil {
					break
				}
				acked++
			}
			_ = w.Close() // kill leaves the handle open; release the descriptor
		}
		killed := ffs.Killed()
		// Reopen with a healthy filesystem, as after a process restart.
		w2, rec := openTestWAL(t, OS(), path, 0)
		w2.Close()
		if len(rec.Records) < acked {
			t.Fatalf("offset %d: %d acked but only %d recovered", offset, acked, len(rec.Records))
		}
		for i, r := range rec.Records {
			if i >= len(want) || !bytes.Equal(r, want[i]) {
				t.Fatalf("offset %d: recovered record %d is not a clean prefix", offset, i)
			}
		}
		if !killed {
			if acked != len(want) {
				t.Fatalf("no kill but only %d acked", acked)
			}
			break // budget exceeded the full run; sweep complete
		}
	}
}
