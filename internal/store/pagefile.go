package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Paged-file kind, version 1. A page file is the store's random-access
// sibling of the snapshot container: fixed-size pages, each independently
// checksummed, reached by page id instead of sequential read. It backs the
// buffer pool in internal/pager. All integers are little-endian.
//
// File layout:
//
//	header     [64]byte at offset 0
//	  magic      [8]byte  "QBHPAGE\x00"
//	  version    uint32   currently 1
//	  pageSize   uint32   bytes per page, power of two
//	  kind       uint8    application page kind (see pager)
//	  pad        [43]byte zero
//	  headerCRC  uint32   CRC-32C of the first 60 bytes
//	page pid   at offset 64 + pid*pageSize, repeated:
//	  crc        uint32   CRC-32C of bytes 4..pageSize (kind, pid, payload)
//	  kind       uint8    must match the file kind
//	  pad        [3]byte  zero
//	  pid        uint64   page id, guards against misdirected reads
//	  payload    [pageSize-16]byte
//
// Torn or bit-flipped pages surface as ErrChecksum; a foreign file as
// ErrBadMagic; a future format as ErrVersion — the same typed errors the
// snapshot container uses, so callers handle both formats uniformly.
//
// Unlike snapshots, page files are not written atomically: they are derived
// state (spill files), rebuilt from the snapshot+WAL on open. Their only
// durability job is to never return a page that differs from what was
// written — the checksums guarantee detection, the layers above guarantee
// recovery.

var pageMagic = [8]byte{'Q', 'B', 'H', 'P', 'A', 'G', 'E', 0}

const (
	pageFileVersion = 1

	// PageHeaderSize is the per-page header; payload is PageSize minus this.
	PageHeaderSize = 16
	// pageFileHeaderSize is the file header before the first page.
	pageFileHeaderSize = 64

	// MinPageSize bounds the page size from below so a page always holds
	// its header plus a useful payload.
	MinPageSize = 256
)

// ErrPoolExhausted is defined here with the other typed errors so every
// paged-storage failure mode lives in one package.
var ErrPoolExhausted = errors.New("store: buffer pool exhausted (all pages pinned)")

// PageFile is a fixed-page-size random-access file of checksummed pages.
// All I/O goes through a store.FS File via Seek (the FS interface has no
// ReadAt/WriteAt), serialized by an internal mutex, so fault-injecting
// filesystems see every write and can tear it.
type PageFile struct {
	mu       sync.Mutex
	f        File
	pageSize int
	kind     uint8
	npages   uint64 // allocation high-water mark
}

// CreatePageFile creates (truncating) a page file with the given page size
// and kind, writing and syncing the file header.
func CreatePageFile(fsys FS, path string, pageSize int, kind uint8) (*PageFile, error) {
	if pageSize < MinPageSize || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("store: page size %d not a power of two >= %d", pageSize, MinPageSize)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, pageFileHeaderSize)
	copy(hdr, pageMagic[:])
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], pageFileVersion)
	le.PutUint32(hdr[12:], uint32(pageSize))
	hdr[16] = kind
	le.PutUint32(hdr[60:], crc32.Checksum(hdr[:60], castagnoli))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return &PageFile{f: f, pageSize: pageSize, kind: kind}, nil
}

// OpenPageFile opens an existing page file, validating the header and the
// expected kind, and recovering the page count from the file length.
func OpenPageFile(fsys FS, path string, kind uint8) (*PageFile, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, pageFileHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: page file header", ErrTruncated)
		}
		return nil, err
	}
	le := binary.LittleEndian
	if [8]byte(hdr[:8]) != pageMagic {
		f.Close()
		return nil, fmt.Errorf("%w: % x", ErrBadMagic, hdr[:8])
	}
	if le.Uint32(hdr[60:]) != crc32.Checksum(hdr[:60], castagnoli) {
		f.Close()
		return nil, fmt.Errorf("%w: page file header", ErrChecksum)
	}
	if v := le.Uint32(hdr[8:]); v != pageFileVersion {
		f.Close()
		return nil, fmt.Errorf("%w: %d (supported: %d)", ErrVersion, v, pageFileVersion)
	}
	pageSize := int(le.Uint32(hdr[12:]))
	if pageSize < MinPageSize || pageSize&(pageSize-1) != 0 {
		f.Close()
		return nil, fmt.Errorf("%w: page size %d", ErrChecksum, pageSize)
	}
	if hdr[16] != kind {
		f.Close()
		return nil, fmt.Errorf("%w: page kind %d, want %d", ErrKind, hdr[16], kind)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	npages := uint64(0)
	if end > pageFileHeaderSize {
		npages = uint64(end-pageFileHeaderSize) / uint64(pageSize)
	}
	return &PageFile{f: f, pageSize: pageSize, kind: kind, npages: npages}, nil
}

// PageSize returns the fixed page size in bytes.
func (pf *PageFile) PageSize() int { return pf.pageSize }

// Kind returns the application page kind byte.
func (pf *PageFile) Kind() uint8 { return pf.kind }

// NumPages returns the allocation high-water mark.
func (pf *PageFile) NumPages() uint64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.npages
}

// Allocate reserves the next page id. The page has no on-disk bytes until
// the first WritePage; reading it before then returns ErrTruncated.
func (pf *PageFile) Allocate() uint64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pid := pf.npages
	pf.npages++
	return pid
}

func (pf *PageFile) offset(pid uint64) int64 {
	return pageFileHeaderSize + int64(pid)*int64(pf.pageSize)
}

// ReadPage reads page pid into buf (len must be PageSize) and verifies its
// checksum and recorded id. The payload is buf[PageHeaderSize:].
func (pf *PageFile) ReadPage(pid uint64, buf []byte) error {
	if len(buf) != pf.pageSize {
		return fmt.Errorf("store: ReadPage buffer %d bytes, want %d", len(buf), pf.pageSize)
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pid >= pf.npages {
		return fmt.Errorf("store: page %d out of range (%d pages)", pid, pf.npages)
	}
	if _, err := pf.f.Seek(pf.offset(pid), io.SeekStart); err != nil {
		return err
	}
	if _, err := io.ReadFull(pf.f, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: page %d", ErrTruncated, pid)
		}
		return err
	}
	le := binary.LittleEndian
	if le.Uint32(buf) != crc32.Checksum(buf[4:], castagnoli) {
		return fmt.Errorf("%w: page %d", ErrChecksum, pid)
	}
	if buf[4] != pf.kind {
		return fmt.Errorf("%w: page %d kind %d, want %d", ErrKind, pid, buf[4], pf.kind)
	}
	if got := le.Uint64(buf[8:16]); got != pid {
		return fmt.Errorf("%w: page %d holds id %d (misdirected write)", ErrChecksum, pid, got)
	}
	return nil
}

// WritePage stamps buf's page header (kind, pid, checksum) and writes it at
// page pid. buf must be PageSize bytes; bytes 0..PageHeaderSize are
// overwritten, the payload beyond them is written as-is.
func (pf *PageFile) WritePage(pid uint64, buf []byte) error {
	if len(buf) != pf.pageSize {
		return fmt.Errorf("store: WritePage buffer %d bytes, want %d", len(buf), pf.pageSize)
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pid >= pf.npages {
		return fmt.Errorf("store: page %d not allocated (%d pages)", pid, pf.npages)
	}
	le := binary.LittleEndian
	buf[4] = pf.kind
	buf[5], buf[6], buf[7] = 0, 0, 0
	le.PutUint64(buf[8:16], pid)
	le.PutUint32(buf, crc32.Checksum(buf[4:], castagnoli))
	if _, err := pf.f.Seek(pf.offset(pid), io.SeekStart); err != nil {
		return err
	}
	_, err := pf.f.Write(buf)
	return err
}

// Sync flushes written pages to stable storage.
func (pf *PageFile) Sync() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.f.Sync()
}

// Close closes the underlying file without syncing.
func (pf *PageFile) Close() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.f.Close()
}
